package ecmsketch

import "ecmsketch/internal/core"

// Event is one stream arrival in batched form: a key observed at a tick,
// with an optional multiplicity (N == 0 counts as 1). Batches are the unit
// of ingest amortization: one AddBatch call takes each internal lock once
// for the whole slice instead of once per arrival, and is the natural unit
// for future asynchronous pipelines.
type Event = core.Event

// Ingestor is the write side of every sketch front end in this library:
// the plain Sketch, the mutex-guarded SafeSketch, the lock-striped Sharded
// engine, and the remote ecmclient.Client all satisfy it, so ingest
// pipelines can be written once against the interface and pointed at any
// of them.
//
// # Tick clamping contract
//
// Ticks must be non-decreasing per Ingestor. Rather than rejecting bad
// input, every ingest path validates and clamps it — this is the single
// authoritative statement of how:
//
//   - Ticks are 1-based. Tick 0 means "before the stream" and is clamped
//     to 1.
//   - Single-event paths (Add, AddN, AddString) pass the tick through to
//     the counters it lands in; a tick that regresses behind a counter's
//     own clock is clamped forward to that clock, biasing the arrival
//     slightly newer instead of dropping it. (Merged streams from loosely
//     synchronized sites interleave slightly out of order; see Reorderer
//     for bounded-buffer resequencing when that bias matters.)
//   - AddBatch validates once per batch, not once per counter update: each
//     event's tick is clamped to the running maximum of the batch and to
//     the engine clock at batch entry, so the applied sequence is
//     non-decreasing engine-wide. Every front end applies the same rule,
//     which is why identical batch streams produce identical answers from
//     Sketch, SafeSketch and Sharded.
type Ingestor interface {
	// Add registers one arrival of key at tick t.
	Add(key uint64, t Tick)
	// AddN registers n arrivals of key at tick t.
	AddN(key uint64, t Tick, n uint64)
	// AddString registers one arrival of a string-keyed item (digested via
	// KeyString).
	AddString(key string, t Tick)
	// AddBatch registers a slice of arrivals in one call, applied in slice
	// order under the batch clamping contract above.
	AddBatch(events []Event)
	// Advance moves the window clock forward without an arrival.
	Advance(t Tick)
}

// Notifier receives change notes from a mutating engine — the hook the
// standing-query subsystem evaluates incrementally off. Sharded delivers
// notes synchronously on the mutating goroutine, after its own locks are
// released, so a notifier may query the engine; implementations must not
// block (the StandingRegistry evaluates under one mutex and hands delivery
// to bounded queues).
type Notifier interface {
	// NoteKey notes one touched key (single-event ingest).
	NoteKey(key uint64)
	// NoteEvents notes a landed batch; the slice must not be retained.
	NoteEvents(events []Event)
	// NoteAdvance notes a pure clock advance (expiry only, no arrivals).
	NoteAdvance()
}

// Querier is the read side: sliding-window point, self-join, inner-product
// and total-count queries over any suffix of the window (the last r ticks).
// All local implementations answer within the paper's (ε, δ) guarantees;
// the remote client forwards the server's answers unchanged.
type Querier interface {
	// Estimate answers a point query for key over the last r ticks.
	Estimate(key uint64, r Tick) float64
	// EstimateString answers a point query for a string key.
	EstimateString(key string, r Tick) float64
	// InnerProduct estimates the inner product against another sketch's
	// stream over the last r ticks. The other sketch must be compatible
	// (same dimensions, seed and window configuration).
	InnerProduct(other *Sketch, r Tick) (float64, error)
	// SelfJoin estimates the second frequency moment F₂ over the last r
	// ticks.
	SelfJoin(r Tick) float64
	// EstimateTotal estimates ‖a_r‖₁, the total arrival count over the last
	// r ticks.
	EstimateTotal(r Tick) float64
	// Now reports the latest tick observed.
	Now() Tick
}

// QueryBatch is a multi-key sliding-window query request — the read-side
// counterpart of the Event batch on ingest: point estimates for every key in
// Keys plus an optional total count and self-join size, all answered from
// one consistent cut of the stream over the same window suffix.
//
// Consistency is the point. On a concurrent engine, a sequence of single-key
// Estimate calls interleaves with writers and each call may observe a
// different stream state; a QueryBatch is evaluated against one snapshot.
// On the Sharded engine every answer in the batch — including the point
// estimates — comes from the Theorem-4 merged view, so point answers carry
// the view's (slightly inflated) merge error in exchange for the consistent
// cut; latency-insensitive single-key lookups that prefer the zero-merge-
// error path should keep using Estimate, which routes to the key's stripe.
type QueryBatch = core.QueryBatch

// QueryResult answers a QueryBatch: per-key estimates in request order, the
// optional aggregates, and the engine clock (Now) the cut was taken at.
type QueryResult = core.QueryResult

// BatchQuerier is the batched read side: multi-key point queries plus
// optional aggregates answered from one consistent snapshot. Implemented by
// every sketch front end — Sketch, SafeSketch, Sharded, and the remote
// ecmclient.Client (which answers via one POST /v1/query round trip).
type BatchQuerier interface {
	// QueryBatch answers a multi-key query from one consistent cut. The
	// error is always nil on local single-sketch backends; the sharded
	// engine reports merged-view build failures and the remote client
	// reports transport failures.
	QueryBatch(q QueryBatch) (QueryResult, error)
}

// DirectQuerier is the zero-merge read side: multi-key point queries where
// each key is answered from the single stripe that owns it, with no merged
// view built or consulted. The trade against QueryBatch is explicit:
//
//   - zero merge error (each key's cells are read where its arrivals
//     landed) and no rebuild cost on the read path, but
//   - no consistency across the batch — on a concurrent engine the
//     per-stripe answers form an inconsistent cut that writers may
//     interleave with, and
//   - point queries only: Total/SelfJoin aggregates need the merged view
//     and are rejected.
//
// On single-sketch backends (Sketch, SafeSketch) direct and batched point
// answers coincide. Implemented by every front end; the remote client
// forwards to POST /v1/query?direct=1.
type DirectQuerier interface {
	QueryDirect(q QueryBatch) (QueryResult, error)
}

// SetMergeParallelism caps the worker pool Merge, PatchMerged and the
// sharded engine's view rebuild fan cell replay across; n <= 0 restores the
// automatic choice (GOMAXPROCS), 1 forces the sequential path. Parallel and
// sequential paths produce byte-identical sketches; the knob exists for
// benchmarking and for capping merge CPU next to latency-critical ingest.
func SetMergeParallelism(n int) { core.SetMergeParallelism(n) }

// MergeParallelism reports the configured merge worker cap (0 = automatic).
func MergeParallelism() int { return core.MergeParallelism() }

// Snapshotter produces merge-ready summaries: the wire encoding consumed by
// Unmarshal/Merge, and a decoded independent copy. A Sharded engine and a
// remote Client synthesize their snapshot by merging (resp. fetching) on
// demand, so Snapshot can be more expensive than on a plain Sketch.
//
// Every Snapshotter is also a valid in-process coordinator site: wrap it
// with NewLocalSite and a Coordinator will aggregate its snapshots with
// those of other sites — local or networked — over one shared merge path.
type Snapshotter interface {
	// Marshal serializes the (merged) sketch state.
	Marshal() []byte
	// Snapshot returns an independent *Sketch copy of the current state.
	Snapshot() (*Sketch, error)
}

// Cursor names a producer state in the delta-snapshot protocol: the
// producing engine instance (a process-random epoch) plus one
// arrival-mutation version per part — a single version for Sketch and
// SafeSketch, one per stripe for Sharded. Cursors are opaque to pullers:
// obtained from one DeltaSnapshot, echoed on the next. String/ParseCursor
// give the URL-safe wire form (?since= and X-Ecm-Cursor on the HTTP API).
type Cursor = core.Cursor

// ParseCursor decodes Cursor.String output; "" and "0" are the zero cursor
// ("no baseline, send me a full snapshot").
func ParseCursor(s string) (Cursor, error) { return core.ParseCursor(s) }

// DeltaState is the receiving half of the delta-snapshot protocol: it holds
// one producer's parts, applies DeltaSnapshot payloads (full or
// incremental), and materializes the combined summary on demand. The
// Coordinator keeps one per site when delta pulls are enabled; it is
// exported for custom pull loops.
type DeltaState = core.DeltaState

// DeltaSnapshotter is the cursor-based incremental side of the snapshot
// contract. DeltaSnapshot(since) returns the bytes that carry a puller
// holding the state named by since to the current state:
//
//   - full == false: an incremental delta — only the cells (and, on the
//     sharded engine, only the stripes) whose version moved since the
//     cursor, plus the clock that lets the receiver replay expiry. An idle
//     engine answers with a few-byte empty delta.
//   - full == true: a complete snapshot, returned whenever since is not
//     recognized (zero cursor, another engine instance's epoch after a
//     restart or reconfiguration, versions from the future). Pullers
//     re-baseline from it; nothing is ever assumed about the puller.
//
// The returned cursor names the state the payload brings the puller to and
// is what the puller presents next time. Payloads are applied with
// DeltaState. Implemented by Sketch, SafeSketch, Sharded and the remote
// ecmclient.Client (which forwards to GET /v1/snapshot?since=).
type DeltaSnapshotter interface {
	DeltaSnapshot(since Cursor) (payload []byte, cursor Cursor, full bool, err error)
}

// Engine is the full contract of an ECM-sketch backend — ingest, single-key
// and batched query, and snapshot (full and incremental). Local sketches,
// the sharded engine and the remote HTTP client are interchangeable behind
// it.
type Engine interface {
	Ingestor
	Querier
	BatchQuerier
	Snapshotter
	DeltaSnapshotter
}

// IngestQuerier is the intersection trackers like TopK need from their
// backing sketch: writes plus point queries, without snapshot capability.
type IngestQuerier interface {
	Ingestor
	Querier
}

// Compile-time interface conformance for every local front end.
// (ecmclient.Client asserts its own conformance in its package.)
var (
	_ Ingestor = (*Sketch)(nil)
	_ Ingestor = (*SafeSketch)(nil)
	_ Ingestor = (*Sharded)(nil)

	_ Querier = (*Sketch)(nil)
	_ Querier = (*SafeSketch)(nil)
	_ Querier = (*Sharded)(nil)

	_ BatchQuerier = (*Sketch)(nil)
	_ BatchQuerier = (*SafeSketch)(nil)
	_ BatchQuerier = (*Sharded)(nil)

	_ DirectQuerier = (*Sketch)(nil)
	_ DirectQuerier = (*SafeSketch)(nil)
	_ DirectQuerier = (*Sharded)(nil)

	_ DeltaSnapshotter = (*Sketch)(nil)
	_ DeltaSnapshotter = (*SafeSketch)(nil)
	_ DeltaSnapshotter = (*Sharded)(nil)

	_ Engine = (*Sketch)(nil)
	_ Engine = (*SafeSketch)(nil)
	_ Engine = (*Sharded)(nil)

	// Every local front end can serve as an in-process coordinator site.
	_ SnapshotSource = (*Sketch)(nil)
	_ SnapshotSource = (*SafeSketch)(nil)
	_ SnapshotSource = (*Sharded)(nil)

	// The standing-query registry is the canonical Notifier.
	_ Notifier = (*StandingRegistry)(nil)
)
