package ecmsketch_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ecmsketch"
)

// TestEngineBatchEquivalence is the property test behind the batch clamping
// contract (see Ingestor): the plain Sketch, the mutex-guarded SafeSketch
// and the lock-striped Sharded engine must produce IDENTICAL
// Estimate/SelfJoin/EstimateTotal answers for the same randomized batch
// stream — including regressed and zero ticks, which every front end clamps
// the same way, once per batch.
//
// Identity (not mere closeness) holds because ε is small relative to the
// stream: no size-class ever exceeds its budget, so no bucket merges happen
// in any engine, stripe cells partition the single sketch's cells exactly,
// and the Theorem 4 merged view reassembles them without loss.
func TestEngineBatchEquivalence(t *testing.T) {
	const (
		keys   = 32
		window = ecmsketch.Tick(1 << 30)
	)
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(41 + trial)))
			p := ecmsketch.Params{
				Epsilon:      0.01,
				Delta:        0.05,
				WindowLength: window,
				Seed:         uint64(7 + trial),
			}
			single, err := ecmsketch.New(p)
			if err != nil {
				t.Fatal(err)
			}
			safe, err := ecmsketch.NewSafe(p)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 1 << (trial % 3)})
			if err != nil {
				t.Fatal(err)
			}
			engines := []struct {
				name string
				e    ecmsketch.Engine
			}{{"single", single}, {"safe", safe}, {"sharded", sharded}}

			check := func(stage string) {
				t.Helper()
				for _, r := range []ecmsketch.Tick{window, window / 2, 1000, 1} {
					for key := uint64(0); key < keys; key++ {
						want := engines[0].e.Estimate(key, r)
						for _, eng := range engines[1:] {
							if got := eng.e.Estimate(key, r); got != want {
								t.Fatalf("%s: Estimate(%d, %d): %s=%v, single=%v", stage, key, r, eng.name, got, want)
							}
						}
					}
					wantTotal := engines[0].e.EstimateTotal(r)
					wantSJ := engines[0].e.SelfJoin(r)
					for _, eng := range engines[1:] {
						if got := eng.e.EstimateTotal(r); got != wantTotal {
							t.Fatalf("%s: EstimateTotal(%d): %s=%v, single=%v", stage, r, eng.name, got, wantTotal)
						}
						if got := eng.e.SelfJoin(r); got != wantSJ {
							t.Fatalf("%s: SelfJoin(%d): %s=%v, single=%v", stage, r, eng.name, got, wantSJ)
						}
					}
				}
			}

			var tick ecmsketch.Tick
			events := 0
			for events < 90 {
				batch := make([]ecmsketch.Event, rng.Intn(20)+1)
				for i := range batch {
					switch rng.Intn(5) {
					case 0:
						// Regressed tick: jumps backwards by up to 40.
						back := ecmsketch.Tick(rng.Intn(40))
						if back > tick {
							back = tick
						}
						batch[i] = ecmsketch.Event{Key: rng.Uint64() % keys, Tick: tick - back, N: uint64(rng.Intn(3) + 1)}
					case 1:
						// Zero tick (clamped to the clock) and zero N (counts as 1).
						batch[i] = ecmsketch.Event{Key: rng.Uint64() % keys, Tick: 0, N: 0}
					default:
						tick += ecmsketch.Tick(rng.Intn(50))
						batch[i] = ecmsketch.Event{Key: rng.Uint64() % keys, Tick: tick, N: uint64(rng.Intn(3) + 1)}
					}
				}
				events += len(batch)
				for _, eng := range engines {
					eng.e.AddBatch(batch)
				}
				// Querying mid-stream advances counters lazily; doing so on
				// every engine must not break the equivalence of later batches.
				if rng.Intn(3) == 0 {
					check("mid-stream")
				}
			}
			for _, eng := range engines[1:] {
				if got, want := eng.e.Now(), engines[0].e.Now(); got != want {
					t.Fatalf("Now: %s=%d, single=%d", eng.name, got, want)
				}
			}
			check("final")
		})
	}
}
