// Benchmarks regenerating every table and figure of the paper's evaluation
// at a reduced, benchmark-friendly scale. Each Benchmark{Table,Fig}* runs
// the corresponding experiment and reports the headline quantities via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the same series the
// paper does (full-scale runs: cmd/ecmbench).
package ecmsketch_test

import (
	"sync"
	"testing"

	"ecmsketch/internal/core"
	"ecmsketch/internal/experiments"
	"ecmsketch/internal/window"
)

// benchEvents is the per-dataset stream length used by benchmarks; large
// enough for the comparative shapes to show, small enough for -bench=. runs.
const benchEvents = 30000

var (
	benchOnce sync.Once
	benchWC   experiments.Dataset
	benchSN   experiments.Dataset
)

func benchDatasets(b *testing.B) (experiments.Dataset, experiments.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		if benchWC, err = experiments.LoadWC98(benchEvents); err != nil {
			panic(err)
		}
		if benchSN, err = experiments.LoadSNMP(benchEvents); err != nil {
			panic(err)
		}
	})
	return benchWC, benchSN
}

// BenchmarkTable2Complexity measures one sliding-window counter of each kind
// (memory, ns/update, ns/query) across ε — the empirical check behind the
// complexity table.
func BenchmarkTable2Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunComplexity([]float64{0.05, 0.1, 0.2}, 50000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Eps == 0.1 {
					b.ReportMetric(float64(r.MemoryBytes), r.Algo.String()+"-bytes")
				}
			}
		}
	}
}

// BenchmarkTable3UpdateRate_* measures sustained sketch ingest throughput at
// ε=0.1 (the paper's Table 3), one sub-benchmark per variant and dataset.
func BenchmarkTable3UpdateRate(b *testing.B) {
	wc, sn := benchDatasets(b)
	for _, ds := range []experiments.Dataset{wc, sn} {
		for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
			b.Run(ds.Name+"/"+algo.String(), func(b *testing.B) {
				s, err := core.New(core.Params{
					Epsilon:      0.1,
					Delta:        0.1,
					Algorithm:    algo,
					WindowLength: ds.Window,
					UpperBound:   ds.UpperBound,
					Seed:         1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := ds.Events[i%len(ds.Events)]
					s.Add(ev.Key, ev.Time) // wrapped times clamp monotonically
				}
			})
		}
	}
}

// BenchmarkFig4Centralized runs the centralized error-vs-memory sweep and
// reports the ε=0.1 point-query memory of each variant plus the worst
// observed error, mirroring Figure 4's axes.
func BenchmarkFig4Centralized(b *testing.B) {
	wc, _ := benchDatasets(b)
	cfg := experiments.CentralizedConfig{
		Epsilons:     []float64{0.1, 0.2},
		Delta:        0.1,
		Algorithms:   []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW},
		MaxPointKeys: 300,
		SkipRWBelow:  0.1,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunCentralized(wc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var worst float64
			for _, r := range rows {
				if r.Skipped {
					continue
				}
				if r.Eps == 0.1 && r.Query == core.PointQuery {
					b.ReportMetric(float64(r.Memory), "ECM-"+r.Algo.String()+"-bytes")
				}
				if r.MaxErr > worst {
					worst = r.MaxErr
				}
			}
			b.ReportMetric(worst, "max-observed-err")
		}
	}
}

// BenchmarkFig5Distributed runs the native-topology aggregation sweep and
// reports transfer volume per variant at ε=0.1 — Figure 5's axes.
func BenchmarkFig5Distributed(b *testing.B) {
	wc, _ := benchDatasets(b)
	cfg := experiments.DistributedConfig{
		Epsilons:     []float64{0.1},
		Delta:        0.1,
		MaxPointKeys: 200,
		SkipRWBelow:  0.1,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunDistributed(wc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Skipped || r.Query != core.PointQuery {
					continue
				}
				b.ReportMetric(float64(r.Transfer), "ECM-"+r.Algo.String()+"-transfer-bytes")
				b.ReportMetric(r.AvgErr, "ECM-"+r.Algo.String()+"-avg-err")
			}
		}
	}
}

// BenchmarkTable4Ratio runs the centralized-vs-distributed comparison and
// reports the EH point-query inflation ratio — Table 4's headline cell.
func BenchmarkTable4Ratio(b *testing.B) {
	wc, _ := benchDatasets(b)
	ds := experiments.SubsetEvents(wc, 20000)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunCentralizedVsDistributed(ds, []float64{0.1}, 0.1, 200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Algo == window.AlgoEH && r.Query == core.PointQuery {
					b.ReportMetric(r.Ratio, "centr-vs-distr-ratio")
				}
			}
		}
	}
}

// BenchmarkFig6Scaling runs the artificial-network sweep (1..8 nodes at
// bench scale) and reports error and transfer at the extremes — Figure 6's
// axes.
func BenchmarkFig6Scaling(b *testing.B) {
	_, sn := benchDatasets(b)
	ds := experiments.SubsetEvents(sn, 15000)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunScaling(ds, 0.1, 0.1, 8, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Algo == window.AlgoEH && r.Query == core.PointQuery && (r.Nodes == 1 || r.Nodes == 8) {
					b.ReportMetric(r.AvgErr, "err-at-"+itoa(r.Nodes)+"-nodes")
					b.ReportMetric(float64(r.Transfer), "transfer-at-"+itoa(r.Nodes)+"-nodes")
				}
			}
		}
	}
}

// BenchmarkHeavyHitters exercises the Section 6.1 group-testing detection.
func BenchmarkHeavyHitters(b *testing.B) {
	wc, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunHeavyHitters(wc, 0.02, []float64{0.01}, 14)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].Recall, "recall")
			b.ReportMetric(rows[0].Precision, "precision")
		}
	}
}

// BenchmarkGeometricMonitoring exercises the Section 6.2 protocol and
// reports its communication savings over the ship-everything baseline.
func BenchmarkGeometricMonitoring(b *testing.B) {
	wc, _ := benchDatasets(b)
	ds := experiments.SubsetEvents(wc, 10000)
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunGeometric(ds, 4, 0.5, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(row.Savings, "comm-savings-x")
			b.ReportMetric(float64(row.Syncs), "syncs")
		}
	}
}

// BenchmarkAblationEpsilonSplit compares the paper's memory-optimal ε-split
// against the point split on self-join workloads (DESIGN.md §4).
func BenchmarkAblationEpsilonSplit(b *testing.B) {
	wc, _ := benchDatasets(b)
	ds := experiments.SubsetEvents(wc, 15000)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationSplit(ds, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Memory), r.Split+"-bytes")
			}
		}
	}
}

// BenchmarkAblationMergeReplay compares Theorem 4's half/half bucket replay
// against the endpoint-only ablation during aggregation.
func BenchmarkAblationMergeReplay(b *testing.B) {
	cfg := window.Config{Length: 50000, Epsilon: 0.1}
	build := func() []*window.EH {
		hs := make([]*window.EH, 4)
		for i := range hs {
			h, err := window.NewEH(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for t := window.Tick(1); t <= 40000; t += window.Tick(1 + i%3) {
				h.Add(t)
			}
			hs[i] = h
		}
		return hs
	}
	hs := build()
	b.Run("half-half", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := window.MergeEH(cfg, hs...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("endpoint-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := window.MergeEHEndpointOnly(cfg, hs...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBucketLayout compares the per-level deque layout of the
// exponential histogram (the paper's §7.1 choice, implemented here) against
// a deterministic wave, whose flat fixed arrays are the natural alternative
// layout, on identical streams.
func BenchmarkAblationBucketLayout(b *testing.B) {
	cfg := window.Config{Length: 1 << 20, Epsilon: 0.1, UpperBound: 1 << 20, Delta: 0.1}
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW} {
		b.Run(algo.String(), func(b *testing.B) {
			c, err := window.New(algo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(window.Tick(i + 1))
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkMotivation runs the full-history-CM-vs-ECM comparison and reports
// the stale-mass leak of each summary.
func BenchmarkMotivation(b *testing.B) {
	wc, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunMotivation(wc, 0.01, 0.1, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(rows[0].StaleLeak, "cm-stale-leak")
			b.ReportMetric(rows[1].StaleLeak, "ecm-stale-leak")
		}
	}
}

// BenchmarkGeomScaling runs the monitoring scaling study with balancing on.
func BenchmarkGeomScaling(b *testing.B) {
	wc, _ := benchDatasets(b)
	ds := experiments.SubsetEvents(wc, 10000)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunGeometricScaling(ds, []int{4}, []bool{true}, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 1 {
			b.ReportMetric(rows[0].Savings, "comm-savings-x")
		}
	}
}

// BenchmarkPlanAblation runs the Section 5.1 ε-planning comparison.
func BenchmarkPlanAblation(b *testing.B) {
	wc, _ := benchDatasets(b)
	ds := experiments.SubsetEvents(wc, 15000)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPlanAblation(ds, 0.15, 150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RootErr, r.Strategy+"-root-err")
			}
		}
	}
}
