package ecmsketch

import (
	"ecmsketch/internal/distrib"
	"ecmsketch/internal/workload"
)

// Cluster simulates a set of distributed sites, each summarizing its local
// sub-stream in an ECM-sketch, plus the balanced-binary-tree aggregation
// path of the paper's distributed experiments. Sites run as goroutines;
// every aggregation edge ships a serialized sketch whose size is charged to
// the cluster's Network accounting.
type Cluster = distrib.Cluster

// Network is the communication-cost accounting of a Cluster.
type Network = distrib.Network

// StreamEvent is one synthetic-workload arrival routed to a site (key,
// time, site). It is distinct from the batch-ingest Event type of the
// Ingestor interfaces, which carries no site affinity.
type StreamEvent = workload.Event

// NewCluster builds n sites with identically configured, mergeable sketches.
func NewCluster(p Params, n int) (*Cluster, error) { return distrib.NewCluster(p, n) }

// StreamConfig parameterizes a synthetic workload stream.
type StreamConfig = workload.Config

// StreamGenerator produces reproducible synthetic event streams, including
// the wc'98-like and snmp-like stand-ins used by the experiment harness.
type StreamGenerator = workload.Generator

// NewStream builds a synthetic stream generator.
func NewStream(cfg StreamConfig) (*StreamGenerator, error) { return workload.NewGenerator(cfg) }

// Oracle tracks exact sliding-window statistics; useful for validating
// sketch output in tests and demos.
type Oracle = workload.Oracle

// NewOracle builds an exact oracle over a window of the given length.
func NewOracle(length Tick) *Oracle { return workload.NewOracle(length) }
