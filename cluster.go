package ecmsketch

import (
	"crypto/x509"
	"net/http"
	"time"

	"ecmsketch/internal/coord"
	"ecmsketch/internal/distrib"
	"ecmsketch/internal/workload"
)

// Cluster simulates a set of distributed sites, each summarizing its local
// sub-stream in an ECM-sketch, plus the balanced-binary-tree aggregation
// path of the paper's distributed experiments. Sites run as goroutines;
// every aggregation edge ships a sketch summary whose wire size is charged
// to the cluster's Network accounting. Aggregation runs on the same
// coordinator core as networked deployments (see Coordinator), so the
// simulation's merged result is bit-identical to a real coordinator's over
// the same event log.
type Cluster = distrib.Cluster

// Network is the communication-cost accounting of a Cluster or Coordinator.
type Network = coord.Network

// Site is one summary source behind a coordinator transport: it produces a
// frozen snapshot of a site's stream — full (Snapshot) or incremental
// against a cursor (Delta) — plus the wire size shipping it costs, measured
// at the transport boundary. NewLocalSite adapts any in-process engine;
// NewHTTPSite pulls a remote ecmserve deployment.
type Site = coord.Site

// Coordinator aggregates a set of sites' summaries — in-process, networked,
// or a mix — into one sketch of the combined stream, with the paper's
// balanced-binary-tree accounting. SetDeltaPulls(true) switches its pulls
// to the cursor-based incremental protocol (per-site retained baselines,
// transparent full-pull fallback on any cursor invalidation). See
// cmd/ecmcoord for the deployable coordinator server built on it.
type Coordinator = coord.Coordinator

// SnapshotSource is what an in-process coordinator site needs from its
// engine: Sketch, SafeSketch, Sharded and ecmclient.Client all satisfy it
// (it is the snapshot half of the Snapshotter interface).
type SnapshotSource = coord.SnapshotSource

// NewCoordinator builds a coordinator over the given sites with fresh
// network accounting.
func NewCoordinator(sites ...Site) *Coordinator { return coord.New(sites...) }

// NewLocalSite adapts an in-process engine as a coordinator site named
// name. Its snapshots are arena clones (no marshal+decode round trip) and
// its transfers are charged at the exact wire size the encoding would have.
func NewLocalSite(name string, src SnapshotSource) Site { return coord.NewLocalSite(name, src) }

// NewHTTPSite builds a coordinator site pulling GET /v1/snapshot from the
// ecmserve deployment at baseURL (legacy /sketch deployments are supported
// via fallback). A nil client uses http.DefaultClient; pass one with a
// Timeout for production pulls.
func NewHTTPSite(baseURL string, hc *http.Client) Site { return coord.NewHTTPSite(baseURL, hc) }

// NewHTTPSiteWithAuth is NewHTTPSite carrying "Authorization: Bearer <token>"
// on every pull — for sites started with an ecmserver AuthToken. An empty
// token sends no header.
func NewHTTPSiteWithAuth(baseURL string, hc *http.Client, token string) Site {
	s := coord.NewHTTPSite(baseURL, hc)
	s.SetAuthToken(token)
	return s
}

// RefreshStats describes one successful Coordinator.Refresh round: how many
// members contributed (and how many of those were stale baselines or
// excluded outright), the bytes pulled, and whether the persistent merged
// view was patched cell-by-cell or rebuilt wholesale.
type RefreshStats = coord.RefreshStats

// SiteStatus is one coordinator member's health record: consecutive
// failures, backoff rounds until its next probe, and whether a retained
// baseline lets it contribute while unreachable.
type SiteStatus = coord.SiteStatus

// NewPullClient returns an HTTP client tuned for coordinator pulls: one
// keep-alive transport shared by every site pulled through it (idle pools
// sized for hundreds of site hosts), dial/TLS/overall timeouts, and — when
// rootCAs is non-nil — a private trust pool for https:// sites instead of
// the system roots.
func NewPullClient(timeout time.Duration, rootCAs *x509.CertPool) *http.Client {
	return coord.NewPullClient(timeout, rootCAs)
}

// PullStagger is the deterministic offset in [0, window) at which a
// coordinator fetches the site named name within each pull round — a stable
// hash of the name, so a fleet of sites spreads over the window instead of
// being hit in one burst (see Coordinator.SetPullStagger).
func PullStagger(name string, window time.Duration) time.Duration {
	return coord.PullStagger(name, window)
}

// StreamEvent is one synthetic-workload arrival routed to a site (key,
// time, site). It is distinct from the batch-ingest Event type of the
// Ingestor interfaces, which carries no site affinity.
type StreamEvent = workload.Event

// NewCluster builds n sites with identically configured, mergeable sketches.
func NewCluster(p Params, n int) (*Cluster, error) { return distrib.NewCluster(p, n) }

// StreamConfig parameterizes a synthetic workload stream.
type StreamConfig = workload.Config

// StreamGenerator produces reproducible synthetic event streams, including
// the wc'98-like and snmp-like stand-ins used by the experiment harness.
type StreamGenerator = workload.Generator

// NewStream builds a synthetic stream generator.
func NewStream(cfg StreamConfig) (*StreamGenerator, error) { return workload.NewGenerator(cfg) }

// Oracle tracks exact sliding-window statistics; useful for validating
// sketch output in tests and demos.
type Oracle = workload.Oracle

// NewOracle builds an exact oracle over a window of the given length.
func NewOracle(length Tick) *Oracle { return workload.NewOracle(length) }
