package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ecmsketch"
)

// The -coordtree mode simulates the paper's multi-level coordinator
// hierarchy (Section 5.1) at scale, in process: a 3-level tree of
// coordinators over b³ leaf sites (b³ = -treesites, rounded to the nearest
// cube; 1000 by default), with a slow-moving stream trickling into a
// fraction of the leaves every interval. Three configurations of the same
// tree run in lockstep over identically seeded streams:
//
//   - full:        full-snapshot pulls at every level, wholesale re-merge —
//     the pre-delta behavior.
//   - delta:       cursor-based delta pulls at the leaf level, but each
//     coordinator rebuilds its view wholesale, so coordinator-to-coordinator
//     transfers are still full snapshots — the pre-PR-8 behavior.
//   - incremental: delta pulls at every level. Each coordinator patches one
//     persistent root from the changed cells (Refresh) and serves
//     cursor-based deltas upward from it, so every edge of the tree ships
//     deltas in steady state.
//
// Recorded per mode: bootstrap bytes, steady-state bytes per interval
// summed over every tree edge, merge time per interval, and the staleness
// distribution (p50/p99 of the delay from the leaves finishing an
// interval's arrivals to the root view reflecting them). The three roots
// are asserted byte-identical every interval — the hierarchy-level
// equivalence gate CI runs at 3×27 scale.
//
// Usage:
//
//	ecmbench -coordtree -label tree-1000 -out BENCH_coord.json
//	ecmbench -coordtree -treesites 27 -treeintervals 6   # CI smoke
const (
	coordTreeLevels  = 3
	coordTreeKeys    = 600 // distinct keys per leaf
	coordTreePreload = 3000
	coordTreeChurn   = 4  // keys mutated per touched leaf per interval
	coordTreeTouch   = 20 // percent of leaves touched per interval
	coordTreeWarmup  = 2
)

func coordTreeParams() ecmsketch.Params {
	return ecmsketch.Params{Epsilon: 0.15, Delta: 0.15, WindowLength: 1 << 16, Seed: 77}
}

// CoordTreeResult is one mode of the -coordtree bench.
type CoordTreeResult struct {
	Mode              string  `json:"mode"` // full | delta | incremental
	Sites             int     `json:"sites"`
	Levels            int     `json:"levels"`
	Fanout            int     `json:"fanout"`
	Coordinators      int     `json:"coordinators"`
	Intervals         int     `json:"intervals"`
	BootstrapBytes    int64   `json:"bootstrap_bytes"`
	SteadyBytesPerInt float64 `json:"steady_bytes_per_interval"`
	MergeNsPerInt     float64 `json:"merge_ns_per_interval"`
	StalenessP50Ns    int64   `json:"staleness_p50_ns"`
	StalenessP99Ns    int64   `json:"staleness_p99_ns"`
	DeltaPulls        uint64  `json:"delta_pulls"`
	FullPulls         uint64  `json:"full_pulls"`
}

// CoordTreeRun is one labelled -coordtree invocation.
type CoordTreeRun struct {
	Label string `json:"label"`
	Sites int    `json:"sites"`
	// Reductions are steady-state full-mode bytes over each cheaper mode's —
	// the headline the delta-serving hierarchy is judged on.
	DeltaReduction       float64           `json:"steady_byte_reduction_delta"`
	IncrementalReduction float64           `json:"steady_byte_reduction_incremental"`
	Results              []CoordTreeResult `json:"results"`
}

// staleView adapts a wholesale-rebuilt coordinator's latest view as a pull
// source for its parent: full snapshots only, so a delta-pulling parent
// degrades to full transfers — exactly how a pre-PR-8 coordinator served.
type staleView struct {
	view *ecmsketch.Sketch
}

func (s *staleView) Snapshot() (*ecmsketch.Sketch, error) { return s.view.Snapshot() }

// coordTree is one configured instance of the 3-level hierarchy.
type coordTree struct {
	mode   string
	leaves []*ecmsketch.Sketch
	// nodes holds every coordinator, bottom level first; node i's parent
	// pulls it through either the coordinator itself (incremental) or its
	// staleView (wholesale).
	nodes []*ecmsketch.Coordinator
	views []*staleView // wholesale modes only, aligned with nodes
	root  *ecmsketch.Coordinator
}

// newCoordTreeLeaves builds the b³ leaf engines. The three mode trees share
// one leaf set: a sketch instance carries a per-instance delta epoch in its
// encoding, so byte-identity across modes is only meaningful over the very
// same leaves (which is also the honest comparison — three pull strategies
// over one fleet).
func newCoordTreeLeaves(b int) ([]*ecmsketch.Sketch, error) {
	p := coordTreeParams()
	leaves := make([]*ecmsketch.Sketch, b*b*b)
	for i := range leaves {
		sk, err := ecmsketch.New(p)
		if err != nil {
			return nil, err
		}
		leaves[i] = sk
	}
	return leaves, nil
}

// buildCoordTree wires the shared leaves under b² + b + 1 coordinators.
func buildCoordTree(mode string, b int, leaves []*ecmsketch.Sketch) (*coordTree, error) {
	t := &coordTree{mode: mode, leaves: leaves}
	incr := mode == "incremental"
	useDelta := mode != "full"
	newNode := func(sites []ecmsketch.Site) *ecmsketch.Coordinator {
		co := ecmsketch.NewCoordinator(sites...)
		co.SetDeltaPulls(useDelta)
		t.nodes = append(t.nodes, co)
		if !incr {
			t.views = append(t.views, &staleView{})
		}
		return co
	}
	// childSite exposes coordinator child j of the just-built level to its
	// parent: the live coordinator (serves deltas) or its frozen view.
	childSite := func(j int, name string) ecmsketch.Site {
		if incr {
			return ecmsketch.NewLocalSite(name, t.nodes[j])
		}
		return ecmsketch.NewLocalSite(name, t.views[j])
	}
	for g := 0; g < b*b; g++ { // level 1: over leaves
		sites := make([]ecmsketch.Site, b)
		for k := 0; k < b; k++ {
			sites[k] = ecmsketch.NewLocalSite(fmt.Sprintf("leaf-%d", g*b+k), t.leaves[g*b+k])
		}
		newNode(sites)
	}
	for g := 0; g < b; g++ { // level 2: over level-1 coordinators
		sites := make([]ecmsketch.Site, b)
		for k := 0; k < b; k++ {
			sites[k] = childSite(g*b+k, fmt.Sprintf("low-%d", g*b+k))
		}
		newNode(sites)
	}
	rootSites := make([]ecmsketch.Site, b) // level 3: the root
	for k := 0; k < b; k++ {
		rootSites[k] = childSite(b*b+k, fmt.Sprintf("mid-%d", k))
	}
	t.root = newNode(rootSites)
	return t, nil
}

// preload seeds every leaf with the same deterministic stream shape (keys
// biased per leaf) and advances all clocks to a shared tick.
func (t *coordTree) preload() {
	for i, sk := range t.leaves {
		for e := 0; e < coordTreePreload; e++ {
			sk.Add(uint64(e%coordTreeKeys)+uint64(i)<<20, uint64(e/8+1))
		}
		sk.Advance(coordTreePreload / 8)
	}
}

// mutate trickles churn into a deterministic subset of leaves — the
// slow-moving regime where most sites have nothing new to report — and
// advances every clock.
func (t *coordTree) mutate(interval int) {
	base := uint64(coordTreePreload/8) + uint64(interval)*100
	for i, sk := range t.leaves {
		if (i+interval)%(100/coordTreeTouch) == 0 {
			for k := 0; k < coordTreeChurn; k++ {
				sk.Add(uint64((interval*coordTreeChurn+k*37)%coordTreeKeys)+uint64(i)<<20, base)
			}
		}
		sk.Advance(base + 10)
	}
}

// sweep refreshes every coordinator bottom-up once and returns the root
// view plus the time the merges took.
func (t *coordTree) sweep() (*ecmsketch.Sketch, time.Duration, error) {
	start := time.Now()
	if t.mode == "incremental" {
		for _, co := range t.nodes {
			if err := co.Refresh(); err != nil {
				return nil, 0, err
			}
		}
		root, err := t.root.Snapshot()
		return root, time.Since(start), err
	}
	for i, co := range t.nodes {
		view, _, err := co.AggregateFlat()
		if err != nil {
			return nil, 0, err
		}
		t.views[i].view = view
	}
	return t.views[len(t.views)-1].view, time.Since(start), nil
}

// pulledBytes sums payload transfers over every edge of the tree.
func (t *coordTree) pulledBytes() int64 {
	var total int64
	for _, co := range t.nodes {
		total += co.PulledBytes()
	}
	return total
}

func (t *coordTree) pullCounts() (deltas, fulls uint64) {
	for _, co := range t.nodes {
		deltas += co.DeltaPulls()
		fulls += co.FullPulls()
	}
	return
}

func runCoordTreeBench(label, out string, sites, intervals int, check bool) error {
	b := int(math.Round(math.Cbrt(float64(sites))))
	if b < 2 {
		b = 2
	}
	actual := b * b * b
	run := CoordTreeRun{Label: label, Sites: actual}
	modes := []string{"full", "delta", "incremental"}
	leaves, err := newCoordTreeLeaves(b)
	if err != nil {
		return err
	}
	trees := make([]*coordTree, len(modes))
	for i, mode := range modes {
		t, err := buildCoordTree(mode, b, leaves)
		if err != nil {
			return err
		}
		trees[i] = t
	}
	trees[0].preload()
	fmt.Printf("coordtree: %d sites, %d levels, fanout %d, %d coordinators/tree, %d intervals\n",
		actual, coordTreeLevels, b, b*b+b+1, intervals)

	results := make([]CoordTreeResult, len(modes))
	staleness := make([][]time.Duration, len(modes))
	var mergeNs, steady [3]int64
	for interval := 0; interval < intervals; interval++ {
		if interval > 0 {
			trees[0].mutate(interval) // shared leaves: mutate once
		}
		roots := make([][]byte, len(modes))
		for i, t := range trees {
			before := t.pulledBytes()
			root, elapsed, err := t.sweep()
			if err != nil {
				return fmt.Errorf("%s tree interval %d: %w", t.mode, interval, err)
			}
			pulled := t.pulledBytes() - before
			if interval == 0 {
				results[i].BootstrapBytes = pulled
			} else if interval >= coordTreeWarmup {
				steady[i] += pulled
				mergeNs[i] += elapsed.Nanoseconds()
				staleness[i] = append(staleness[i], elapsed)
			}
			if check {
				roots[i] = root.Marshal()
			}
		}
		if check {
			for i := 1; i < len(roots); i++ {
				if string(roots[0]) != string(roots[i]) {
					return fmt.Errorf("interval %d: %s root differs from full root — hierarchy equivalence broken",
						interval, modes[i])
				}
			}
		}
	}

	steadyIntervals := intervals - coordTreeWarmup
	for i, t := range trees {
		r := &results[i]
		r.Mode = t.mode
		r.Sites, r.Levels, r.Fanout = actual, coordTreeLevels, b
		r.Coordinators = b*b + b + 1
		r.Intervals = intervals
		r.SteadyBytesPerInt = float64(steady[i]) / float64(steadyIntervals)
		r.MergeNsPerInt = float64(mergeNs[i]) / float64(steadyIntervals)
		r.StalenessP50Ns, r.StalenessP99Ns = percentiles(staleness[i])
		r.DeltaPulls, r.FullPulls = t.pullCounts()
		fmt.Printf("%-11s bootstrap %9dB  steady %11.0f B/interval  merge %8.2f ms/interval  staleness p50 %6.2f ms p99 %6.2f ms  (delta %d / full %d)\n",
			r.Mode, r.BootstrapBytes, r.SteadyBytesPerInt, r.MergeNsPerInt/1e6,
			float64(r.StalenessP50Ns)/1e6, float64(r.StalenessP99Ns)/1e6,
			r.DeltaPulls, r.FullPulls)
	}
	if d := results[1].SteadyBytesPerInt; d > 0 {
		run.DeltaReduction = results[0].SteadyBytesPerInt / d
	}
	if d := results[2].SteadyBytesPerInt; d > 0 {
		run.IncrementalReduction = results[0].SteadyBytesPerInt / d
	}
	run.Results = results
	fmt.Printf("steady-state byte reduction vs full: delta %.1f×, incremental %.1f×\n",
		run.DeltaReduction, run.IncrementalReduction)
	if check && run.IncrementalReduction <= run.DeltaReduction {
		return fmt.Errorf("incremental mode reduction %.1f× not above delta mode %.1f× — upward delta serving is not engaging",
			run.IncrementalReduction, run.DeltaReduction)
	}
	return appendRun(out, "coordtree", run)
}

// percentiles reports the p50 and p99 of a latency sample.
func percentiles(d []time.Duration) (p50, p99 int64) {
	if len(d) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p50 = s[len(s)/2].Nanoseconds()
	p99 = s[(len(s)*99)/100].Nanoseconds()
	return
}
