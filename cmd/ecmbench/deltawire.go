package main

import (
	"fmt"
	"net/http/httptest"
	"time"

	"ecmsketch"
	"ecmsketch/ecmserver"
)

// The -deltawire mode measures what the delta-snapshot protocol is for:
// steady-state coordinator bandwidth on a slow-moving stream. Two real
// ecmserver sites run over loopback HTTP; two coordinators pull them every
// interval — one with full-snapshot pulls (the pre-delta behavior), one
// with cursor-based delta pulls — while the stream mutates a small fraction
// of its keys between pulls. Recorded per mode: bootstrap bytes, steady-
// state bytes per interval (payload accounting, the same figure the
// coordinator's Network charges on both transports), and the wall time of a
// full aggregate pull (best of rounds, per the repo's bench protocol —
// byte counts are deterministic, latency on a shared box is not).
//
// Usage:
//
//	ecmbench -deltawire -label delta-baseline -out BENCH_coord.json
//
// The operating point: 2 sites, ε=0.02 δ=0.05 EH sketches over a 2^20-tick
// window, 4 stripes, 4000 preloaded keys per site, 16 keys (0.4% of the key
// space, well under the ≤10%-churn regime the protocol targets) mutated per
// site per interval over 12 intervals, of which the last 10 are counted as
// steady state.

const (
	deltaWireSites     = 2
	deltaWireKeys      = 4000
	deltaWirePreload   = 60000
	deltaWireChurn     = 16
	deltaWireIntervals = 12
	deltaWireWarmup    = 2 // intervals before steady-state accounting starts
	deltaWireRounds    = 3 // best-of for latency; bytes are deterministic
)

func deltaWireParams() ecmsketch.Params {
	return ecmsketch.Params{
		Epsilon: 0.02, Delta: 0.05, WindowLength: 1 << 20, Seed: 1234,
	}
}

// DeltaWireResult is one pull mode of the -deltawire bench.
type DeltaWireResult struct {
	Mode              string  `json:"mode"` // full-pull | delta-pull
	Sites             int     `json:"sites"`
	TotalKeys         int     `json:"total_keys"`
	ChurnPerInterval  int     `json:"churn_keys_per_interval"`
	Intervals         int     `json:"intervals"`
	BootstrapBytes    int64   `json:"bootstrap_bytes"`
	SteadyBytesPerInt float64 `json:"steady_bytes_per_interval"`
	NsPerInterval     float64 `json:"ns_per_interval"` // one aggregate pull, best of rounds
	DeltaPulls        uint64  `json:"delta_pulls"`
	FullPulls         uint64  `json:"full_pulls"`
	Rounds            int     `json:"rounds"`
}

// DeltaWireRun is one labelled -deltawire invocation.
type DeltaWireRun struct {
	Label string `json:"label"`
	// Reduction is steady-state full bytes over delta bytes — the headline
	// the protocol is judged on.
	Reduction float64           `json:"steady_state_byte_reduction"`
	Results   []DeltaWireResult `json:"results"`
}

// deltaWireSitesUp builds the site servers with identical preloaded
// streams (per-site key bias) and returns them with their engines.
func deltaWireSitesUp() ([]*httptest.Server, []*ecmsketch.Sharded, func(), error) {
	servers := make([]*httptest.Server, deltaWireSites)
	engines := make([]*ecmsketch.Sharded, deltaWireSites)
	p := deltaWireParams()
	for i := range servers {
		srv, err := ecmserver.New(ecmserver.Config{
			Epsilon: p.Epsilon, Delta: p.Delta, WindowLength: p.WindowLength,
			Seed: p.Seed, Shards: 4,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		eng := srv.Engine()
		batch := make([]ecmsketch.Event, 0, 1024)
		for e := 0; e < deltaWirePreload; e++ {
			batch = append(batch, ecmsketch.Event{
				Key:  uint64(e%deltaWireKeys) + uint64(i)*1_000_000,
				Tick: uint64(e/8 + 1),
			})
			if len(batch) == cap(batch) {
				eng.AddBatch(batch)
				batch = batch[:0]
			}
		}
		eng.AddBatch(batch)
		eng.Advance(uint64(deltaWirePreload / 8))
		engines[i] = eng
		servers[i] = httptest.NewServer(srv)
	}
	stop := func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
	return servers, engines, stop, nil
}

// deltaWireMutate moves churn keys on every site — the slow-moving stream.
func deltaWireMutate(engines []*ecmsketch.Sharded, interval int) {
	base := uint64(deltaWirePreload/8) + uint64(interval)*100
	for i, eng := range engines {
		evs := make([]ecmsketch.Event, 0, deltaWireChurn)
		for k := 0; k < deltaWireChurn; k++ {
			key := uint64((interval*deltaWireChurn+k*31)%deltaWireKeys) + uint64(i)*1_000_000
			evs = append(evs, ecmsketch.Event{Key: key, Tick: base + uint64(k%7)})
		}
		eng.AddBatch(evs)
		eng.Advance(base + 10)
	}
}

// runDeltaWireMode drives one coordinator mode over a fresh deployment and
// reports its accounting plus the per-interval pull latency.
func runDeltaWireMode(deltaPulls bool) (DeltaWireResult, error) {
	res := DeltaWireResult{
		Sites: deltaWireSites, TotalKeys: deltaWireKeys,
		ChurnPerInterval: deltaWireChurn, Intervals: deltaWireIntervals,
		Rounds: deltaWireRounds,
	}
	if deltaPulls {
		res.Mode = "delta-pull"
	} else {
		res.Mode = "full-pull"
	}
	best := time.Duration(0)
	for round := 0; round < deltaWireRounds; round++ {
		servers, engines, stop, err := deltaWireSitesUp()
		if err != nil {
			return res, err
		}
		sites := make([]ecmsketch.Site, len(servers))
		for i, ts := range servers {
			sites[i] = ecmsketch.NewHTTPSite(ts.URL, nil)
		}
		co := ecmsketch.NewCoordinator(sites...)
		co.SetDeltaPulls(deltaPulls)
		var steady int64
		var elapsed time.Duration
		var prevBytes int64
		for interval := 0; interval < deltaWireIntervals; interval++ {
			if interval > 0 {
				deltaWireMutate(engines, interval)
			}
			start := time.Now()
			if _, _, err := co.AggregateTree(); err != nil {
				stop()
				return res, err
			}
			elapsed += time.Since(start)
			pulled := co.PulledBytes()
			if interval == 0 {
				res.BootstrapBytes = pulled
			} else if interval >= deltaWireWarmup {
				steady += pulled - prevBytes
			}
			prevBytes = pulled
		}
		res.SteadyBytesPerInt = float64(steady) / float64(deltaWireIntervals-deltaWireWarmup)
		res.DeltaPulls = co.DeltaPulls()
		res.FullPulls = co.FullPulls()
		if best == 0 || elapsed < best {
			best = elapsed
		}
		stop()
	}
	res.NsPerInterval = float64(best.Nanoseconds()) / float64(deltaWireIntervals)
	return res, nil
}

func runDeltaWireBench(label, out string) error {
	run := DeltaWireRun{Label: label}
	for _, delta := range []bool{false, true} {
		res, err := runDeltaWireMode(delta)
		if err != nil {
			return err
		}
		run.Results = append(run.Results, res)
		fmt.Printf("%-11s sites=%d churn=%d/%d keys  bootstrap %8dB  steady %10.0f B/interval  %8.2f ms/pull  (delta %d / full %d)\n",
			res.Mode, res.Sites, res.ChurnPerInterval, res.TotalKeys,
			res.BootstrapBytes, res.SteadyBytesPerInt,
			res.NsPerInterval/1e6, res.DeltaPulls, res.FullPulls)
	}
	if d := run.Results[1].SteadyBytesPerInt; d > 0 {
		run.Reduction = run.Results[0].SteadyBytesPerInt / d
	}
	fmt.Printf("steady-state byte reduction: %.1f×\n", run.Reduction)
	return appendRun(out, "deltawire", run)
}
