package main

import (
	"fmt"
	"sync"
	"testing"

	"ecmsketch"
)

// The -ingest mode measures the ingest hot path of the local engines
// (single Sketch, SafeSketch, Sharded in sync and async pipeline modes) and
// writes machine-readable results,
// so layout and locking changes leave a recorded perf trajectory in the repo
// (BENCH_ingest.json) instead of numbers lost in terminal scrollback.
//
// Usage:
//
//	ecmbench -ingest -label per-object-eh -out BENCH_ingest.json
//	ecmbench -ingest -label flat-arena-eh -out BENCH_ingest.json  # appends
//
// All figures are per event. The operating point is the acceptance point of
// the flat-engine refactor: EH counters, ε=0.05, δ=0.05, 2^20-tick window,
// 4096 distinct keys.

// IngestResult is one engine/mode measurement.
type IngestResult struct {
	Engine       string  `json:"engine"`       // single | safe | sharded | sharded-async
	Mode         string  `json:"mode"`         // add | batch64 | batch1024 | fresh-batch64
	Goroutines   int     `json:"goroutines"`   // concurrent writers
	NsPerEvent   float64 `json:"ns_per_event"` // wall-clock ns per ingested event
	BytesPerOp   int64   `json:"bytes_per_event"`
	AllocsPerOp  float64 `json:"allocs_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// IngestRun is one labelled invocation of the -ingest mode.
type IngestRun struct {
	Label   string         `json:"label"`
	Results []IngestResult `json:"results"`
}

func benchParams() ecmsketch.Params {
	return ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20}
}

// ingestEngines enumerates the engine constructors under test.
func ingestEngines() []struct {
	name string
	mk   func() (ecmsketch.Ingestor, error)
} {
	return []struct {
		name string
		mk   func() (ecmsketch.Ingestor, error)
	}{
		{"single", func() (ecmsketch.Ingestor, error) { return ecmsketch.New(benchParams()) }},
		{"safe", func() (ecmsketch.Ingestor, error) { return ecmsketch.NewSafe(benchParams()) }},
		{"sharded", func() (ecmsketch.Ingestor, error) {
			return ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: benchParams(), Shards: 16})
		}},
		{"sharded-async", func() (ecmsketch.Ingestor, error) {
			return ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: benchParams(), Shards: 16, Async: true})
		}},
	}
}

// runIngestOnce drives one engine with nGoroutines writers, each feeding
// events in batches of batchSize (1 means single AddN calls), splitting the
// b.N event budget across the writers. A positive resetEvery empties the
// sketch each time that many events have been ingested, so the measurement
// includes the synopsis growth phase (where allocation behaviour lives)
// instead of only the steady state; it is only meaningful single-goroutine.
//
// A fresh engine is constructed per invocation: testing.Benchmark re-runs
// the closure with growing b.N while calibrating, and each run restarts
// ticks at 1 — reusing an engine would leave its clock at the previous
// run's high-water mark and clamp a prefix of the next run onto one
// constant tick, measuring a degenerate stream.
func runIngestOnce(mk func() (ecmsketch.Ingestor, error), goroutines, batchSize, resetEvery int) func(b *testing.B) {
	return func(b *testing.B) {
		ing, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		var wg sync.WaitGroup
		per := b.N/goroutines + 1
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				base := uint64(g) << 32
				if batchSize <= 1 {
					for i := 0; i < per; i++ {
						ing.AddN(base|uint64(i%4096), ecmsketch.Tick(i+1), 1)
					}
					return
				}
				batch := make([]ecmsketch.Event, 0, batchSize)
				tick := ecmsketch.Tick(0)
				for i := 0; i < per; i++ {
					if resetEvery > 0 && i%resetEvery == 0 && i > 0 {
						ing.AddBatch(batch)
						batch = batch[:0]
						if sk, ok := ing.(*ecmsketch.Sketch); ok {
							sk.Reset()
							tick = 0
						}
					}
					tick++
					batch = append(batch, ecmsketch.Event{Key: base | uint64(i%4096), Tick: tick})
					if len(batch) == cap(batch) {
						ing.AddBatch(batch)
						batch = batch[:0]
					}
				}
				ing.AddBatch(batch)
			}(g)
		}
		wg.Wait()
		// Async engines buffer ingest in per-stripe queues; the measurement
		// is only honest if it includes draining them, so the flush barrier
		// stays inside the timer. Teardown (stopping the stripe owners)
		// does not, and must run regardless: testing.Benchmark re-invokes
		// this closure while calibrating, and each invocation builds a
		// fresh engine whose pipeline goroutines would otherwise leak.
		if f, ok := ing.(interface{ Flush() }); ok {
			f.Flush()
		}
		b.StopTimer()
		if c, ok := ing.(interface{ Close() error }); ok {
			c.Close()
		}
	}
}

func runIngestBench(label, out string) error {
	modes := []struct {
		name       string
		goroutines int
		batch      int
		resetEvery int
	}{
		{"add", 1, 1, 0},
		{"batch64", 1, 64, 0},
		{"batch1024", 1, 1024, 0},
		{"fresh-batch64", 1, 64, 1 << 17},
		{"batch64", 4, 64, 0},
		{"batch64", 16, 64, 0},
	}
	run := IngestRun{Label: label}
	for _, eng := range ingestEngines() {
		for _, m := range modes {
			if eng.name == "single" && m.goroutines > 1 {
				continue // plain Sketch is single-goroutine by contract
			}
			if eng.name != "single" && m.resetEvery > 0 {
				continue // growth-phase mode relies on Sketch.Reset
			}
			if m.goroutines > 4 && eng.name != "sharded" && eng.name != "sharded-async" {
				continue // writer-scaling mode targets the striped engines
			}
			r := testing.Benchmark(runIngestOnce(eng.mk, m.goroutines, m.batch, m.resetEvery))
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			res := IngestResult{
				Engine:       eng.name,
				Mode:         m.name,
				Goroutines:   m.goroutines,
				NsPerEvent:   ns,
				BytesPerOp:   r.AllocedBytesPerOp(),
				AllocsPerOp:  float64(r.MemAllocs) / float64(r.N),
				EventsPerSec: 1e9 / ns,
			}
			run.Results = append(run.Results, res)
			fmt.Printf("%-8s %-14s goroutines=%d  %8.1f ns/event  %6d B/event  %8.4f allocs/event  %10.0f events/s\n",
				res.Engine, res.Mode, res.Goroutines, res.NsPerEvent, res.BytesPerOp, res.AllocsPerOp, res.EventsPerSec)
		}
	}
	return appendRun(out, "ingest", run)
}

// runIngestSmoke is the CI regression gate for the batch ingest pipeline: a
// paired, same-process comparison of per-event AddN against AddBatch on a
// single Sketch at the acceptance operating point. The two sides are
// interleaved and the minimum of three rounds taken, so one background-noise
// spike cannot fail the build; the gate then requires the batch pipeline to
// keep its required 1.25x edge over per-event ingest, with a 20% noise
// allowance (net: batch must not be slower than per-event). The sync-vs-async
// Sharded pair is measured and printed alongside for trend visibility but not
// gated — writer scaling depends on the runner's core count, which this gate
// must not.
func runIngestSmoke() error {
	const (
		requiredSpeedup = 1.25
		noiseTolerance  = 0.80
	)
	mks := map[string]func() (ecmsketch.Ingestor, error){}
	for _, eng := range ingestEngines() {
		mks[eng.name] = eng.mk
	}
	single, sharded, shardedAsync := mks["single"], mks["sharded"], mks["sharded-async"]
	minNs := func(goroutines, batch int, mk func() (ecmsketch.Ingestor, error)) float64 {
		best := 0.0
		for round := 0; round < 3; round++ {
			r := testing.Benchmark(runIngestOnce(mk, goroutines, batch, 0))
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	addNs := minNs(1, 1, single)
	batchNs := minNs(1, 1024, single)
	syncNs := minNs(4, 64, sharded)
	asyncNs := minNs(4, 64, shardedAsync)
	speedup := addNs / batchNs
	fmt.Printf("ingest smoke: add %.1f ns/event, batch1024 %.1f ns/event, speedup %.2fx (gate: >= %.2fx)\n",
		addNs, batchNs, speedup, requiredSpeedup*noiseTolerance)
	fmt.Printf("ingest smoke: sharded batch64 x4 writers sync %.1f ns/event, async %.1f ns/event (informational)\n",
		syncNs, asyncNs)
	if speedup < requiredSpeedup*noiseTolerance {
		return fmt.Errorf("batch ingest regressed: %.2fx speedup over per-event, need >= %.2fx",
			speedup, requiredSpeedup*noiseTolerance)
	}
	return nil
}
