// Command ecmbench regenerates every table and figure of the paper's
// evaluation (Section 7) on the synthetic trace stand-ins, printing the same
// rows/series the paper reports.
//
// Usage:
//
//	ecmbench -exp all                 # everything, default scale
//	ecmbench -exp fig4 -dataset wc98  # one figure, one dataset
//	ecmbench -exp table3 -events 1000000
//
// Experiments: table2, table3, table4, fig4, fig5, fig6, heavy, geom,
// geomscale, plan, motivation, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ecmsketch/internal/experiments"
	"ecmsketch/internal/window"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table2|table3|table4|fig4|fig5|fig6|heavy|geom|geomscale|plan|motivation|ablation|all")
		dataset = flag.String("dataset", "both", "dataset: wc98|snmp|both")
		events  = flag.Int("events", experiments.DefaultScale, "stream length per dataset")
		ingest  = flag.Bool("ingest", false, "measure engine ingest throughput and append JSON results to -out instead of running paper experiments")
		ismoke  = flag.Bool("ingestsmoke", false, "paired same-process ingest regression gate: exit non-zero if the batch pipeline loses its required edge over per-event ingest (20% noise tolerance)")
		query   = flag.Bool("query", false, "measure merged-view query latency under concurrent readers/writers and append JSON results to -out")
		qwire   = flag.Bool("querywire", false, "measure wire-level QueryBatch round trips (ecmclient → ecmserver over loopback HTTP) and append JSON results to -out")
		dwire   = flag.Bool("deltawire", false, "measure full-pull vs delta-pull coordinator bytes and latency over a slow-moving stream (loopback HTTP) and append JSON results to -out")
		pushfan = flag.Bool("pushfan", false, "measure standing-query SSE fan-out: notify latency and memory across many in-process subscribers, append JSON results to -out")
		subs    = flag.Int("subs", 10000, "subscriber count for -pushfan")
		ctree   = flag.Bool("coordtree", false, "simulate a 3-level coordinator hierarchy (full vs delta vs incremental re-merge) over -treesites leaves, gate root byte-identity across modes, and append JSON results to -out")
		tsites  = flag.Int("treesites", 1000, "leaf-site count for -coordtree (rounded to the nearest cube)")
		tints   = flag.Int("treeintervals", 14, "pull intervals per mode for -coordtree")
		tcheck  = flag.Bool("treecheck", true, "-coordtree: assert the three modes' root views byte-identical every interval")
		mscale  = flag.Bool("mergescale", false, "measure parallel merge scaling (coordinator refresh + sharded view rebuild vs worker count) plus direct-vs-merged point reads, gate parallel/sequential byte-identity every interval, and append JSON results to -out")
		mints   = flag.Int("mergeintervals", 12, "steady-state intervals per worker setting for -mergescale")
		mcheck  = flag.Bool("mergecheck", true, "-mergescale: gate root byte-identity, the workers=4 regression bound, and the direct-read contract")
		recov   = flag.Bool("recover", false, "measure durable-state costs (checkpoint write/restore time, WAL replay events/s, ingest overhead WAL on/off) on a file-backed store and append JSON results to -out")
		revents = flag.Int("recoverevents", 200000, "pre-checkpoint event count for -recover (a quarter more is ingested as the WAL replay set)")
		label   = flag.String("label", "dev", "label recorded with -ingest/-query results")
		out     = flag.String("out", "", "output file for -ingest/-query results (default BENCH_ingest.json / BENCH_query.json)")
	)
	flag.Parse()
	if *ingest {
		path := *out
		if path == "" {
			path = "BENCH_ingest.json"
		}
		if err := runIngestBench(*label, path); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *ismoke {
		if err := runIngestSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *query {
		path := *out
		if path == "" {
			path = "BENCH_query.json"
		}
		if err := runQueryBench(*label, path); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *qwire {
		path := *out
		if path == "" {
			path = "BENCH_query.json"
		}
		if err := runWireBench(*label, path); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *dwire {
		path := *out
		if path == "" {
			path = "BENCH_coord.json"
		}
		if err := runDeltaWireBench(*label, path); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *ctree {
		path := *out
		if path == "" {
			path = "BENCH_coord.json"
		}
		if err := runCoordTreeBench(*label, path, *tsites, *tints, *tcheck); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *mscale {
		path := *out
		if path == "" {
			path = "BENCH_coord.json"
		}
		if err := runMergeScaleBench(*label, path, *mints, *mcheck); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *recov {
		path := *out
		if path == "" {
			path = "BENCH_durable.json"
		}
		if err := runRecoverBench(*label, path, *revents); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *pushfan {
		path := *out
		if path == "" {
			path = "BENCH_push.json"
		}
		if err := runPushFanBench(*label, path, *subs); err != nil {
			fmt.Fprintln(os.Stderr, "ecmbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *dataset, *events); err != nil {
		fmt.Fprintln(os.Stderr, "ecmbench:", err)
		os.Exit(1)
	}
}

var knownExperiments = map[string]bool{
	"all": true, "table2": true, "table3": true, "table4": true,
	"fig4": true, "fig5": true, "fig6": true,
	"heavy": true, "geom": true, "geomscale": true,
	"ablation": true, "plan": true, "motivation": true,
}

func run(exp, dataset string, events int) error {
	if !knownExperiments[exp] {
		return fmt.Errorf("unknown experiment %q (want one of: %s)", exp, strings.Join(experimentNames(), ", "))
	}
	all := exp == "all"
	if all || exp == "table2" {
		runTable2()
		if exp == "table2" {
			return nil
		}
	}
	datasets, err := loadDatasets(dataset, events)
	if err != nil {
		return err
	}
	for _, ds := range datasets {
		if all || exp == "fig4" {
			if err := runFig4(ds); err != nil {
				return err
			}
		}
		if all || exp == "table3" {
			if err := runTable3(ds); err != nil {
				return err
			}
		}
		if all || exp == "fig5" {
			if err := runFig5(ds); err != nil {
				return err
			}
		}
		if all || exp == "table4" {
			if err := runTable4(ds); err != nil {
				return err
			}
		}
		if all || exp == "fig6" {
			if err := runFig6(ds); err != nil {
				return err
			}
		}
		if all || exp == "heavy" {
			if err := runHeavy(ds); err != nil {
				return err
			}
		}
		if all || exp == "geom" {
			if err := runGeom(ds); err != nil {
				return err
			}
		}
		if all || exp == "geomscale" {
			if err := runGeomScale(ds); err != nil {
				return err
			}
		}
		if all || exp == "ablation" {
			if err := runAblation(ds); err != nil {
				return err
			}
		}
		if all || exp == "plan" {
			if err := runPlan(ds); err != nil {
				return err
			}
		}
		if all || exp == "motivation" {
			if err := runMotivation(ds); err != nil {
				return err
			}
		}
	}
	return nil
}

func runMotivation(ds experiments.Dataset) error {
	header(fmt.Sprintf("Motivation (%s): full-history Count-Min vs ECM on windowed queries", ds.Name))
	rows, err := experiments.RunMotivation(ds, 0.01, 0.1, 800)
	if err != nil {
		return err
	}
	experiments.PrintMotivation(os.Stdout, rows)
	if len(rows) == 2 {
		fmt.Println("shape checks:")
		fmt.Println(experiments.CheckShape("full-history CM leaks expired mass; ECM does not",
			rows[0].StaleLeak > 0.7 && rows[1].StaleLeak < 0.5*rows[0].StaleLeak))
		fmt.Println(experiments.CheckShape("ECM error far below CM's on windowed queries",
			rows[1].AvgErr*2 < rows[0].AvgErr))
	}
	return nil
}

func runGeomScale(ds experiments.Dataset) error {
	header(fmt.Sprintf("Geometric monitoring scaling (%s): sites vs communication, ± balancing", ds.Name))
	rows, err := experiments.RunGeometricScaling(ds,
		[]int{2, 4, 8, 16}, []bool{false, true}, 40000)
	if err != nil {
		return err
	}
	experiments.PrintGeomScaling(os.Stdout, rows)
	return nil
}

func runPlan(ds experiments.Dataset) error {
	header(fmt.Sprintf("Multi-level ε planning (%s): naive vs planned per-site ε (Section 5.1)", ds.Name))
	rows, err := experiments.RunPlanAblation(ds, 0.15, 800)
	if err != nil {
		return err
	}
	experiments.PrintPlanAblation(os.Stdout, rows)
	ok := true
	for _, r := range rows {
		if r.Strategy == "planned" && r.RootErr > 0.15 {
			ok = false
		}
	}
	fmt.Println("shape checks:")
	fmt.Println(experiments.CheckShape("planned hierarchy meets the target error at the root", ok))
	return nil
}

func experimentNames() []string {
	names := make([]string, 0, len(knownExperiments))
	for n := range knownExperiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func loadDatasets(which string, events int) ([]experiments.Dataset, error) {
	var out []experiments.Dataset
	if which == "wc98" || which == "both" {
		ds, err := experiments.LoadWC98(events)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	if which == "snmp" || which == "both" {
		ds, err := experiments.LoadSNMP(events)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unknown dataset %q", which)
	}
	return out, nil
}

func header(title string) {
	fmt.Printf("\n===== %s =====\n", title)
}

func runTable2() {
	header("Table 2: complexity of ECM-sketch sliding-window counters (analytic)")
	for _, l := range experiments.AnalyticComplexity() {
		fmt.Println(l)
	}
	header("Table 2 empirical check: one counter, memory & cost vs eps")
	rows, err := experiments.RunComplexity([]float64{0.05, 0.1, 0.2}, 200000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		return
	}
	experiments.PrintComplexity(os.Stdout, rows)
}

func runFig4(ds experiments.Dataset) error {
	header(fmt.Sprintf("Figure 4 (%s): observed error vs memory, centralized", ds.Name))
	rows, err := experiments.RunCentralized(ds, experiments.DefaultCentralizedConfig())
	if err != nil {
		return err
	}
	experiments.PrintCentralized(os.Stdout, rows)
	printFig4Shape(rows)
	return nil
}

func printFig4Shape(rows []experiments.CentralizedRow) {
	var ehMem, rwMem int
	boundOK := true
	for _, r := range rows {
		if r.Skipped {
			continue
		}
		if r.AvgErr > r.Eps {
			boundOK = false
		}
		if r.Eps == 0.10 && r.Query.String() == "point" {
			switch r.Algo {
			case window.AlgoEH:
				ehMem = r.Memory
			case window.AlgoRW:
				rwMem = r.Memory
			}
		}
	}
	fmt.Println("shape checks:")
	fmt.Println(experiments.CheckShape("observed error < configured eps everywhere", boundOK))
	if ehMem > 0 && rwMem > 0 {
		fmt.Println(experiments.CheckShape(
			fmt.Sprintf("RW memory >= 10x EH at eps=0.1 (%.1fx)", float64(rwMem)/float64(ehMem)),
			rwMem >= 10*ehMem))
	}
}

func runTable3(ds experiments.Dataset) error {
	header(fmt.Sprintf("Table 3 (%s): update rate, eps=0.1", ds.Name))
	rows, err := experiments.RunUpdateRates(ds, 0.1, 0.1,
		[]window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW})
	if err != nil {
		return err
	}
	experiments.PrintUpdateRates(os.Stdout, rows)
	if len(rows) == 3 {
		fmt.Println("shape checks:")
		// The paper measures EH ≈ 1.27× DW; both are O(1) amortized, so the
		// deterministic pair is expected to be comparable (within 25%) with
		// RW far behind.
		fmt.Println(experiments.CheckShape("EH and DW comparable (within 25%)",
			rows[0].UpdatesPerSec >= 0.75*rows[1].UpdatesPerSec))
		fmt.Println(experiments.CheckShape("RW slowest by a wide margin",
			rows[2].UpdatesPerSec*2 < rows[0].UpdatesPerSec))
	}
	return nil
}

func runFig5(ds experiments.Dataset) error {
	header(fmt.Sprintf("Figure 5 (%s): observed error vs transfer volume, %d sites", ds.Name, ds.Sites))
	rows, err := experiments.RunDistributed(ds, experiments.DefaultDistributedConfig())
	if err != nil {
		return err
	}
	experiments.PrintDistributed(os.Stdout, rows)
	var ehT, rwT int64
	for _, r := range rows {
		if r.Skipped || r.Eps != 0.10 || r.Query != 0 {
			continue
		}
		switch r.Algo {
		case window.AlgoEH:
			ehT = r.Transfer
		case window.AlgoRW:
			rwT = r.Transfer
		}
	}
	if ehT > 0 && rwT > 0 {
		fmt.Println("shape checks:")
		fmt.Println(experiments.CheckShape(
			fmt.Sprintf("RW transfer >= 10x EH at eps=0.1 (%.1fx)", float64(rwT)/float64(ehT)),
			rwT >= 10*ehT))
	}
	return nil
}

func runTable4(ds experiments.Dataset) error {
	header(fmt.Sprintf("Table 4 (%s): centralized vs distributed observed error", ds.Name))
	rows, err := experiments.RunCentralizedVsDistributed(ds, []float64{0.1, 0.2}, 0.1, 1000)
	if err != nil {
		return err
	}
	experiments.PrintRatios(os.Stdout, rows)
	ok := true
	for _, r := range rows {
		if r.Ratio > 2 {
			ok = false
		}
	}
	fmt.Println("shape checks:")
	fmt.Println(experiments.CheckShape("error inflation due to aggregation stays mild (ratio <= 2)", ok))
	return nil
}

func runFig6(ds experiments.Dataset) error {
	header(fmt.Sprintf("Figure 6 (%s): error and network cost vs number of nodes", ds.Name))
	rows, err := experiments.RunScaling(ds, 0.1, 0.1, 256, 800)
	if err != nil {
		return err
	}
	experiments.PrintScaling(os.Stdout, rows)
	return nil
}

func runHeavy(ds experiments.Dataset) error {
	header(fmt.Sprintf("Section 6.1 (%s): sliding-window heavy hitters via group testing", ds.Name))
	rows, err := experiments.RunHeavyHitters(ds, 0.02, []float64{0.005, 0.01, 0.02, 0.05}, 15)
	if err != nil {
		return err
	}
	experiments.PrintHeavyHitters(os.Stdout, rows)
	return nil
}

func runGeom(ds experiments.Dataset) error {
	header(fmt.Sprintf("Section 6.2 (%s): geometric threshold monitoring (self-join)", ds.Name))
	row, err := experiments.RunGeometric(ds, 4, 0.5, 50000)
	if err != nil {
		return err
	}
	experiments.PrintGeom(os.Stdout, row)
	return nil
}

func runAblation(ds experiments.Dataset) error {
	header(fmt.Sprintf("Ablation (%s): optimal vs point eps-split for self-join queries", ds.Name))
	rows, err := experiments.RunAblationSplit(ds, 0.1)
	if err != nil {
		return err
	}
	experiments.PrintAblationSplit(os.Stdout, rows)
	return nil
}
