package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"ecmsketch"
)

// The -mergescale mode measures how the parallel merge path scales:
//
//   - coordinator refresh: one incremental coordinator per worker setting
//     (1, 2, 4, 8), all pulling the same leaf fleet, with the root patch's
//     merge_ns recorded per interval (from RefreshStats) and the roots
//     asserted byte-identical across settings every interval — the
//     parallel-vs-sequential equivalence gate at hierarchy level.
//   - sharded view rebuild: one Sharded engine per worker setting fed an
//     identical stream, with the stripe clone+merge wall time recorded from
//     RebuildStats after each forced rebuild.
//   - direct vs merged point reads: the paired read-path comparison —
//     QueryDirect (zero-merge, routed to the owning stripe) against a cold
//     merged-view point read (the view invalidated before each query, so
//     every read pays a rebuild) — with ViewRebuilds asserted unchanged
//     across the direct reads.
//
// Worker settings drive both runtime.GOMAXPROCS and SetMergeParallelism, so
// a multi-core host shows real scaling; a single-core host shows the
// parallel path's overhead honestly (the checks still run — byte-identity
// is a correctness property, not a speed one).
//
// Usage:
//
//	ecmbench -mergescale -label par-1 -out BENCH_coord.json
//	GOMAXPROCS=4 ecmbench -mergescale -mergeintervals 6   # CI smoke
const (
	mergeScaleLeaves  = 16
	mergeScaleKeys    = 400 // distinct keys per leaf
	mergeScalePreload = 4000
	mergeScaleChurn   = 16 // keys mutated per touched leaf per interval
	mergeScaleWarmup  = 2

	mergeScaleRebuildEvents = 50_000
	mergeScaleDirectKeys    = 256
	mergeScaleDirectIters   = 64
)

// mergeScaleWorkers are the worker-pool sizes benchmarked, sequential first
// (the baseline every other setting is gated against).
var mergeScaleWorkers = []int{1, 2, 4, 8}

// mergeScaleParams sizes the sketch so the worker pool engages: 2048 cells
// comfortably clears the per-worker floor at every benchmarked setting.
func mergeScaleParams() ecmsketch.Params {
	return ecmsketch.Params{
		Epsilon: 0.1, Delta: 0.1, Width: 512, Depth: 4,
		WindowLength: 1 << 16, Seed: 99,
	}
}

// MergeScaleResult is one worker setting of the -mergescale bench.
type MergeScaleResult struct {
	Workers int `json:"workers"`
	// RefreshMergeNsPerInt is the coordinator root patch's wall time
	// (RefreshStats.MergeNs) averaged over the steady-state intervals;
	// RefreshWallNsPerInt includes the pulls (the staleness a downstream
	// reader observes per round).
	RefreshMergeNsPerInt float64 `json:"refresh_merge_ns_per_interval"`
	RefreshWallNsPerInt  float64 `json:"refresh_wall_ns_per_interval"`
	// RebuildMergeNsPerInt is the sharded engine's stripe clone+merge wall
	// time (RebuildStats) averaged over the forced rebuilds.
	RebuildMergeNsPerInt float64 `json:"rebuild_merge_ns_per_interval"`
	// Speedups are the sequential setting's times over this one.
	RefreshSpeedup float64 `json:"refresh_speedup_vs_seq"`
	RebuildSpeedup float64 `json:"rebuild_speedup_vs_seq"`
}

// MergeScaleDirect is the paired direct-vs-merged point-read comparison.
type MergeScaleDirect struct {
	Keys             int     `json:"keys"`
	DirectNsPerKey   float64 `json:"direct_ns_per_key"`
	ColdViewNsPerKey float64 `json:"cold_view_ns_per_key"`
	Speedup          float64 `json:"speedup"`
	// DirectRebuilds is the engine's ViewRebuilds delta across every direct
	// read — always 0: direct reads never build the merged view.
	DirectRebuilds uint64 `json:"direct_rebuilds"`
}

// MergeScaleRun is one labelled -mergescale invocation.
type MergeScaleRun struct {
	Label        string             `json:"label"`
	HostProcs    int                `json:"host_procs"`
	Sites        int                `json:"sites"`
	Intervals    int                `json:"intervals"`
	ByteIdentity bool               `json:"byte_identity"`
	Results      []MergeScaleResult `json:"results"`
	Direct       MergeScaleDirect   `json:"direct"`
}

// mergeScaleSet pins both knobs a worker setting controls. GOMAXPROCS is
// raised to at least the setting so the pool is not capped below it on
// small hosts; the merge cap itself does the limiting.
func mergeScaleSet(workers, hostProcs int) {
	procs := hostProcs
	if workers > procs {
		procs = workers
	}
	runtime.GOMAXPROCS(procs)
	ecmsketch.SetMergeParallelism(workers)
}

// mergeScaleLeafFleet builds and preloads the shared leaf engines.
func mergeScaleLeafFleet() ([]*ecmsketch.Sketch, error) {
	p := mergeScaleParams()
	leaves := make([]*ecmsketch.Sketch, mergeScaleLeaves)
	for i := range leaves {
		sk, err := ecmsketch.New(p)
		if err != nil {
			return nil, err
		}
		for e := 0; e < mergeScalePreload; e++ {
			sk.Add(uint64(e%mergeScaleKeys)+uint64(i)<<20, uint64(e/8+1))
		}
		sk.Advance(mergeScalePreload / 8)
		leaves[i] = sk
	}
	return leaves, nil
}

// mergeScaleMutate trickles churn into a quarter of the leaves and advances
// every clock, deterministically per interval.
func mergeScaleMutate(leaves []*ecmsketch.Sketch, interval int) {
	base := uint64(mergeScalePreload/8) + uint64(interval)*100
	for i, sk := range leaves {
		if (i+interval)%4 == 0 {
			for k := 0; k < mergeScaleChurn; k++ {
				sk.Add(uint64((interval*mergeScaleChurn+k*37)%mergeScaleKeys)+uint64(i)<<20, base)
			}
		}
		sk.Advance(base + 10)
	}
}

// mergeScaleShardedStream feeds the identical deterministic stream every
// rebuild-bench engine ingests.
func mergeScaleShardedStream(eng *ecmsketch.Sharded) {
	batch := make([]ecmsketch.Event, 0, 1024)
	for e := 0; e < mergeScaleRebuildEvents; e++ {
		batch = append(batch, ecmsketch.Event{
			Key:  uint64(e % (mergeScaleKeys * 4)),
			Tick: uint64(e/16 + 1),
		})
		if len(batch) == cap(batch) {
			eng.AddBatch(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		eng.AddBatch(batch)
	}
}

func runMergeScaleBench(label, out string, intervals int, check bool) error {
	hostProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(hostProcs)
	defer ecmsketch.SetMergeParallelism(0)
	if intervals <= mergeScaleWarmup+1 {
		intervals = mergeScaleWarmup + 2
	}
	run := MergeScaleRun{
		Label: label, HostProcs: hostProcs,
		Sites: mergeScaleLeaves, Intervals: intervals,
	}
	fmt.Printf("mergescale: %d leaf sites, %d intervals, host GOMAXPROCS=%d, workers %v\n",
		mergeScaleLeaves, intervals, hostProcs, mergeScaleWorkers)

	// Coordinator refresh scaling: one incremental coordinator per worker
	// setting over one shared leaf fleet (each keeps its own pull cursors, so
	// every coordinator sees the same deltas). Roots are compared across
	// settings every interval.
	leaves, err := mergeScaleLeafFleet()
	if err != nil {
		return err
	}
	coords := make([]*ecmsketch.Coordinator, len(mergeScaleWorkers))
	for i := range coords {
		sites := make([]ecmsketch.Site, len(leaves))
		for j, sk := range leaves {
			sites[j] = ecmsketch.NewLocalSite(fmt.Sprintf("leaf-%d", j), sk)
		}
		co := ecmsketch.NewCoordinator(sites...)
		co.SetDeltaPulls(true)
		coords[i] = co
	}
	results := make([]MergeScaleResult, len(mergeScaleWorkers))
	var refreshMerge, refreshWall = make([]int64, len(coords)), make([]int64, len(coords))
	for interval := 0; interval < intervals; interval++ {
		if interval > 0 {
			mergeScaleMutate(leaves, interval)
		}
		var seqRoot []byte
		for i, co := range coords {
			mergeScaleSet(mergeScaleWorkers[i], hostProcs)
			start := time.Now()
			if err := co.Refresh(); err != nil {
				return fmt.Errorf("workers=%d interval %d: %w", mergeScaleWorkers[i], interval, err)
			}
			wall := time.Since(start).Nanoseconds()
			if interval >= mergeScaleWarmup {
				refreshMerge[i] += co.LastRefresh().MergeNs
				refreshWall[i] += wall
			}
			if !check {
				continue
			}
			root, err := co.Snapshot()
			if err != nil {
				return err
			}
			enc := root.Marshal()
			if i == 0 {
				seqRoot = enc
			} else if !bytes.Equal(seqRoot, enc) {
				return fmt.Errorf("interval %d: workers=%d root differs from sequential root — parallel merge equivalence broken",
					interval, mergeScaleWorkers[i])
			}
		}
	}
	run.ByteIdentity = check

	// Sharded rebuild scaling: twin engines, identical streams, forced
	// rebuilds. (Byte-identity of the parallel rebuild is pinned by the
	// engine's unit tests; twin engines are not byte-comparable — each
	// carries instance-random identifier salts — so this half measures time
	// only.)
	rebuildNs := make([]int64, len(mergeScaleWorkers))
	for i, w := range mergeScaleWorkers {
		mergeScaleSet(w, hostProcs)
		eng, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: mergeScaleParams(), Shards: 8})
		if err != nil {
			return err
		}
		mergeScaleShardedStream(eng)
		base := uint64(mergeScaleRebuildEvents/16 + 1)
		for interval := 0; interval < intervals; interval++ {
			for k := 0; k < 64; k++ { // churn every stripe so the rebuild clones them all
				eng.Add(uint64(k*131), base+uint64(interval))
			}
			eng.SelfJoin(0) // forces the view rebuild (MergeTTL 0: always fresh)
			if interval >= mergeScaleWarmup {
				ns, _ := eng.RebuildStats()
				rebuildNs[i] += ns
			}
		}
		eng.Close()
	}

	steady := float64(intervals - mergeScaleWarmup)
	for i, w := range mergeScaleWorkers {
		r := &results[i]
		r.Workers = w
		r.RefreshMergeNsPerInt = float64(refreshMerge[i]) / steady
		r.RefreshWallNsPerInt = float64(refreshWall[i]) / steady
		r.RebuildMergeNsPerInt = float64(rebuildNs[i]) / steady
		if refreshMerge[i] > 0 {
			r.RefreshSpeedup = float64(refreshMerge[0]) / float64(refreshMerge[i])
		}
		if rebuildNs[i] > 0 {
			r.RebuildSpeedup = float64(rebuildNs[0]) / float64(rebuildNs[i])
		}
		fmt.Printf("workers=%d  refresh merge %9.2f µs/interval (%.2fx)  wall %9.2f µs  rebuild %9.2f µs/interval (%.2fx)\n",
			w, r.RefreshMergeNsPerInt/1e3, r.RefreshSpeedup,
			r.RefreshWallNsPerInt/1e3, r.RebuildMergeNsPerInt/1e3, r.RebuildSpeedup)
	}
	run.Results = results

	// Paired read-path comparison on one engine at the host's natural
	// setting: zero-merge direct reads vs cold merged-view point reads.
	runtime.GOMAXPROCS(hostProcs)
	ecmsketch.SetMergeParallelism(0)
	direct, err := runMergeScaleDirect()
	if err != nil {
		return err
	}
	run.Direct = direct
	fmt.Printf("direct reads %9.1f ns/key  cold merged-view reads %9.1f ns/key  (%.1fx, %d rebuilds during direct)\n",
		direct.DirectNsPerKey, direct.ColdViewNsPerKey, direct.Speedup, direct.DirectRebuilds)

	if check {
		if r4 := results[2]; r4.RefreshMergeNsPerInt > results[0].RefreshMergeNsPerInt*1.2 {
			return fmt.Errorf("workers=4 refresh merge %.0fns slower than sequential %.0fns beyond 20%% tolerance — parallel path regressed",
				r4.RefreshMergeNsPerInt, results[0].RefreshMergeNsPerInt)
		}
		if direct.DirectRebuilds != 0 {
			return fmt.Errorf("direct reads triggered %d view rebuilds — zero-merge contract broken", direct.DirectRebuilds)
		}
		if direct.Speedup < 5 {
			return fmt.Errorf("direct reads only %.1fx faster than cold merged-view reads (want >= 5x)", direct.Speedup)
		}
	}
	return appendRun(out, "mergescale", run)
}

// runMergeScaleDirect measures QueryDirect against merged-view point reads
// with the view invalidated before every batch (each read pays a rebuild —
// the cost profile direct reads exist to avoid).
func runMergeScaleDirect() (MergeScaleDirect, error) {
	var d MergeScaleDirect
	eng, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: mergeScaleParams(), Shards: 8})
	if err != nil {
		return d, err
	}
	defer eng.Close()
	mergeScaleShardedStream(eng)
	keys := make([]uint64, mergeScaleDirectKeys)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	q := ecmsketch.QueryBatch{Keys: keys}
	base := uint64(mergeScaleRebuildEvents/16 + 2)

	// Cold merged-view reads: invalidate, query, repeat.
	start := time.Now()
	for it := 0; it < mergeScaleDirectIters; it++ {
		eng.Add(1, base+uint64(it))
		if _, err := eng.QueryBatch(q); err != nil {
			return d, err
		}
	}
	coldNs := time.Since(start).Nanoseconds()

	rebuildsBefore := eng.ViewRebuilds()
	start = time.Now()
	for it := 0; it < mergeScaleDirectIters; it++ {
		if _, err := eng.QueryDirect(q); err != nil {
			return d, err
		}
	}
	directNs := time.Since(start).Nanoseconds()
	d.Keys = mergeScaleDirectKeys
	d.DirectRebuilds = eng.ViewRebuilds() - rebuildsBefore
	perKey := float64(mergeScaleDirectIters * mergeScaleDirectKeys)
	d.DirectNsPerKey = float64(directNs) / perKey
	d.ColdViewNsPerKey = float64(coldNs) / perKey
	if directNs > 0 {
		d.Speedup = float64(coldNs) / float64(directNs)
	}
	return d, nil
}
