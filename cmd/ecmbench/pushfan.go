package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecmsketch"
	"ecmsketch/ecmserver"
	"ecmsketch/internal/standing"
)

// The -pushfan mode measures the standing-query push path end to end: an
// ecmserver with threshold queries registered, thousands of SSE watch
// streams attached through the real /v1/watch handler (over in-process
// pipes, so no socket or fd limits apply), and ingest bursts that make
// every query fire. Reported per run: notify latency percentiles — wall
// time from the registry stamping the notification to a subscriber parsing
// it off its stream — delivered/dropped counts, and the heap cost per
// subscriber. The acceptance point of the subsystem is >= 10,000
// subscribers with bounded memory and ingest never blocking on delivery.

// PushFanResult is one -pushfan measurement.
type PushFanResult struct {
	Subscribers   int     `json:"subscribers"`
	Subscriptions int     `json:"subscriptions"`
	Rounds        int     `json:"rounds"`
	Delivered     uint64  `json:"delivered"`
	Dropped       uint64  `json:"dropped"` // server-side queue drops
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	FanoutPerSec  float64 `json:"fanout_per_sec"` // deliveries/s during the burst phase
	HeapPerSub    float64 `json:"heap_bytes_per_subscriber"`
}

// PushFanRun is one labelled invocation of the -pushfan mode.
type PushFanRun struct {
	Label   string          `json:"label"`
	Results []PushFanResult `json:"results"`
}

const (
	pushFanSubscriptions = 8
	pushFanRounds        = 20
	pushFanWindow        = 10_000
	pushFanThreshold     = 50.0
)

// sseConn adapts an io.Pipe as the response side of one watch stream: the
// handler writes SSE frames into the pipe, the subscriber goroutine scans
// them out. Implements http.Flusher, which the handler requires.
type sseConn struct {
	pw *io.PipeWriter
	h  http.Header
}

func (c *sseConn) Header() http.Header         { return c.h }
func (c *sseConn) Write(p []byte) (int, error) { return c.pw.Write(p) }
func (c *sseConn) WriteHeader(int)             {}
func (c *sseConn) Flush()                      {}

// pushFanWatcher runs one subscriber: attach via the real handler, signal
// ready once the hello frame arrives, then record one latency sample per
// notify (receive time minus the notification's at stamp).
type pushFanWatcher struct {
	latencies []time.Duration
}

func runPushFanBench(label, out string, subscribers int) error {
	if subscribers <= 0 {
		return fmt.Errorf("pushfan: -subs must be positive")
	}
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon: 0.05, Delta: 0.05, WindowLength: pushFanWindow,
		Algorithm: "eh", Shards: 4,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	engine := srv.Engine()
	// A 64-deep per-watcher queue is ample here (one notification per
	// watcher per round, drained continuously) and keeps the per-subscriber
	// footprint honest; drops, if any, are reported.
	srv.Standing().SetLimits(0, 64)

	// A handful of subscriptions, one rising threshold each; the watch
	// streams fan out across them. Every burst round fires each query once,
	// so each round delivers one notification per subscriber.
	nsubs := pushFanSubscriptions
	if subscribers < nsubs {
		nsubs = subscribers
	}
	subIDs := make([]string, nsubs)
	for i := 0; i < nsubs; i++ {
		info, err := srv.Standing().Subscribe([]ecmsketch.StandingQuery{{
			Kind:  ecmsketch.StandingThreshold,
			Key:   uint64(i + 1),
			Value: pushFanThreshold,
		}})
		if err != nil {
			return err
		}
		subIDs[i] = info.ID
	}

	var baseline runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseline)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		ready     sync.WaitGroup
		done      sync.WaitGroup
		delivered atomic.Uint64
	)
	watchers := make([]*pushFanWatcher, subscribers)
	for i := range watchers {
		w := &pushFanWatcher{}
		watchers[i] = w
		id := subIDs[i%nsubs]
		ready.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			pr, pw := io.Pipe()
			conn := &sseConn{pw: pw, h: make(http.Header)}
			req := httptest.NewRequest(http.MethodGet, "/v1/watch?sub="+url.QueryEscape(id), nil).WithContext(ctx)
			go func() {
				srv.ServeHTTP(conn, req)
				pw.Close()
			}()
			// Unblock any in-flight handler write when the run ends.
			go func() { <-ctx.Done(); pr.Close() }()
			sc := bufio.NewScanner(pr)
			sc.Buffer(make([]byte, 0, 512), 64*1024)
			helloSeen := false
			var event string
			for sc.Scan() {
				line := sc.Bytes()
				switch {
				case bytes.HasPrefix(line, []byte("event: ")):
					event = string(line[len("event: "):])
				case bytes.HasPrefix(line, []byte("data: ")):
					switch event {
					case "hello":
						if !helloSeen {
							helloSeen = true
							ready.Done()
						}
					case "notify":
						n, err := standing.ParseNotificationJSON(line[len("data: "):])
						if err == nil {
							w.latencies = append(w.latencies, time.Since(time.Unix(0, n.At)))
							delivered.Add(1)
						}
					}
				}
			}
			if !helloSeen {
				ready.Done()
			}
		}()
	}
	ready.Wait()

	var attached runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&attached)
	heapPerSub := float64(int64(attached.HeapInuse)-int64(baseline.HeapInuse)) / float64(subscribers)

	// Burst rounds: every key crosses its threshold (rising edge, fires),
	// then the window slides past the burst so the next round crosses again.
	start := time.Now()
	tick := uint64(1)
	expected := uint64(0)
	for round := 0; round < pushFanRounds; round++ {
		events := make([]ecmsketch.Event, nsubs)
		for i := 0; i < nsubs; i++ {
			events[i] = ecmsketch.Event{Key: uint64(i + 1), Tick: tick, N: 100}
		}
		engine.AddBatch(events)
		expected += uint64(subscribers)
		// Let the fan-out drain before disarming, so per-round latencies are
		// not polluted by the advance pass evaluating on the same goroutine.
		waitDeliveries(&delivered, expected, 10*time.Second)
		tick += pushFanWindow + 1
		engine.Advance(tick)
		tick++
	}
	elapsed := time.Since(start)
	cancel()
	done.Wait()

	var all []time.Duration
	for _, w := range watchers {
		all = append(all, w.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	_, _, _, droppedSrv := srv.Standing().Stats()

	res := PushFanResult{
		Subscribers:   subscribers,
		Subscriptions: nsubs,
		Rounds:        pushFanRounds,
		Delivered:     delivered.Load(),
		Dropped:       droppedSrv,
		P50Ms:         quantileMs(all, 0.50),
		P99Ms:         quantileMs(all, 0.99),
		MaxMs:         quantileMs(all, 1),
		FanoutPerSec:  float64(delivered.Load()) / elapsed.Seconds(),
		HeapPerSub:    heapPerSub,
	}
	fmt.Printf("pushfan: %d subscribers over %d subscriptions, %d rounds\n", subscribers, nsubs, pushFanRounds)
	fmt.Printf("  delivered %d (dropped %d)  p50 %.3f ms  p99 %.3f ms  max %.3f ms\n",
		res.Delivered, res.Dropped, res.P50Ms, res.P99Ms, res.MaxMs)
	fmt.Printf("  fan-out %.0f deliveries/s, heap %.0f B/subscriber\n", res.FanoutPerSec, res.HeapPerSub)
	return appendRun(out, "pushfan", PushFanRun{Label: label, Results: []PushFanResult{res}})
}

// waitDeliveries spins (with a sleep) until the delivery counter reaches want
// or the deadline passes — queue drops mean the counter may stop short, and
// the bench reports them rather than hanging.
func waitDeliveries(got *atomic.Uint64, want uint64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for got.Load() < want && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
