package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecmsketch"
)

// The -query mode measures the read side of the Sharded engine under
// contention: global (merged-view) queries at 1, 4 and 16 concurrent
// readers while writers keep the stream moving, plus the stripe-routed
// point-query path for reference. It writes machine-readable results, so
// read-path changes leave a recorded perf trajectory in the repo
// (BENCH_query.json) next to the ingest one.
//
// Usage:
//
//	ecmbench -query -label mutex-full-merge -out BENCH_query.json
//	ecmbench -query -label snapshot-engine  -out BENCH_query.json  # appends
//
// All figures are per query. The operating point: 16 stripes, EH counters,
// ε=0.05, δ=0.05, 2^20-tick window, ~260k preloaded events, MergeTTL 5ms
// (a dashboard-style staleness budget: the merged view is rebuilt
// continuously while readers poll), 2 writers streaming batches of 256.
//
// This file deliberately restricts itself to the API surface that predates
// the snapshot query engine (NewSharded/AddBatch/SelfJoin/EstimateTotal/
// Estimate), so paired before/after rounds can copy it unchanged into a
// baseline worktree and build it there.

// QueryBenchResult is one mode measurement of the -query mode.
type QueryBenchResult struct {
	Mode          string  `json:"mode"` // selfjoin | total | point
	Readers       int     `json:"readers"`
	Writers       int     `json:"writers"`
	NsPerQuery    float64 `json:"ns_per_query"` // wall-clock ns per answered query
	QueriesPerSec float64 `json:"queries_per_sec"`
	// ViewRebuilds counts merged-view builds during the timed run; 0 when
	// the engine predates rebuild accounting (the baseline).
	ViewRebuilds uint64 `json:"view_rebuilds,omitempty"`
}

// QueryBenchRun is one labelled invocation of the -query mode.
type QueryBenchRun struct {
	Label   string             `json:"label"`
	Results []QueryBenchResult `json:"results"`
}

// rebuildCounter probes (structurally, so the baseline still compiles) for
// the snapshot engine's rebuild accounting.
type rebuildCounter interface{ ViewRebuilds() uint64 }

const (
	queryBenchShards  = 16
	queryBenchTTL     = 5 * time.Millisecond
	queryBenchPreload = 1 << 18
	queryBenchKeys    = 4096
	queryBenchWriters = 2
)

func queryBenchParams() ecmsketch.Params {
	return ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20}
}

// newQueryEngine builds and preloads the engine under test, returning it
// with the tick clock to continue writing from.
func newQueryEngine() (*ecmsketch.Sharded, uint64, error) {
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
		Params: queryBenchParams(), Shards: queryBenchShards, MergeTTL: queryBenchTTL,
	})
	if err != nil {
		return nil, 0, err
	}
	batch := make([]ecmsketch.Event, 0, 256)
	tick := uint64(0)
	for i := 0; i < queryBenchPreload; i++ {
		tick++
		batch = append(batch, ecmsketch.Event{Key: uint64(i % queryBenchKeys), Tick: tick})
		if len(batch) == cap(batch) {
			sh.AddBatch(batch)
			batch = batch[:0]
		}
	}
	sh.AddBatch(batch)
	return sh, tick, nil
}

// runQueryOnce drives one engine with `readers` goroutines splitting the
// b.N query budget while `writers` un-metered goroutines stream batches of
// 256 events with advancing ticks. query answers one query; its results
// feed a sink so the calls cannot be elided. rebuildsOut receives the
// engine's merged-view rebuild count for the run (0 on engines without
// rebuild accounting); testing.Benchmark invokes the closure repeatedly
// while calibrating, so the value left behind is the full-length run's.
func runQueryOnce(readers int, query func(sh *ecmsketch.Sharded, key uint64) float64, rebuildsOut *uint64) func(b *testing.B) {
	return func(b *testing.B) {
		sh, startTick, err := newQueryEngine()
		if err != nil {
			b.Fatal(err)
		}
		var tick atomic.Uint64
		tick.Store(startTick)
		stop := make(chan struct{})
		var writersWG sync.WaitGroup
		for w := 0; w < queryBenchWriters; w++ {
			writersWG.Add(1)
			go func(w int) {
				defer writersWG.Done()
				batch := make([]ecmsketch.Event, 256)
				n := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					t := tick.Add(1)
					for i := range batch {
						n++
						batch[i] = ecmsketch.Event{Key: (n*uint64(w+1) + n) % queryBenchKeys, Tick: t}
					}
					sh.AddBatch(batch)
				}
			}(w)
		}
		b.ResetTimer()
		var readersWG sync.WaitGroup
		per := b.N/readers + 1
		var sink atomic.Uint64
		for g := 0; g < readers; g++ {
			readersWG.Add(1)
			go func(g int) {
				defer readersWG.Done()
				var acc float64
				for i := 0; i < per; i++ {
					acc += query(sh, uint64((g*per+i)%queryBenchKeys))
				}
				sink.Add(uint64(acc))
			}(g)
		}
		readersWG.Wait()
		b.StopTimer()
		close(stop)
		writersWG.Wait()
		if sink.Load() == 0 {
			b.Fatal("queries returned nothing; engine degenerate")
		}
		*rebuildsOut = 0
		if rc, ok := any(sh).(rebuildCounter); ok {
			*rebuildsOut = rc.ViewRebuilds()
		}
	}
}

func runQueryBench(label, out string) error {
	window := queryBenchParams().WindowLength
	queries := map[string]func(sh *ecmsketch.Sharded, key uint64) float64{
		"selfjoin": func(sh *ecmsketch.Sharded, _ uint64) float64 { return sh.SelfJoin(window / 2) },
		"total":    func(sh *ecmsketch.Sharded, _ uint64) float64 { return sh.EstimateTotal(window / 2) },
		"point":    func(sh *ecmsketch.Sharded, key uint64) float64 { return sh.Estimate(key, window/2) },
	}
	modes := []struct {
		mode    string
		readers int
	}{
		{"selfjoin", 1},
		{"selfjoin", 4},
		{"selfjoin", 16},
		{"total", 16},
		{"point", 16},
	}
	run := QueryBenchRun{Label: label}
	for _, m := range modes {
		var rebuilds uint64
		r := testing.Benchmark(runQueryOnce(m.readers, queries[m.mode], &rebuilds))
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := QueryBenchResult{
			Mode:          m.mode,
			Readers:       m.readers,
			Writers:       queryBenchWriters,
			NsPerQuery:    ns,
			QueriesPerSec: 1e9 / ns,
			ViewRebuilds:  rebuilds,
		}
		run.Results = append(run.Results, res)
		fmt.Printf("%-10s readers=%-3d writers=%d  %12.1f ns/query  %12.0f queries/s\n",
			res.Mode, res.Readers, res.Writers, res.NsPerQuery, res.QueriesPerSec)
	}
	return appendRun(out, "query", run)
}

// appendRun appends the run to the JSON array in path, creating it if
// absent, so before/after invocations of a bench mode accumulate in one
// committed file. Existing entries are carried over as raw JSON, so runs of
// a different shape sharing the file (engine -query vs wire -querywire)
// keep every field verbatim. Shared by the -ingest, -query and -querywire
// modes; it lives in this file so paired baseline rounds can copy query.go
// (plus main.go) into an older checkout and still build.
func appendRun(path, kind string, run any) error {
	var runs []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("existing %s is not a %s-run array: %w", path, kind, err)
		}
	}
	enc, err := json.Marshal(run)
	if err != nil {
		return err
	}
	runs = append(runs, enc)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
