package main

// The -recover mode measures the durable subsystem end to end on a
// file-backed store in a temp directory: checkpoint write and restore
// time, WAL replay throughput against the state it rebuilds, and the
// ingest overhead of running with the WAL on versus off. Results append to
// BENCH_durable.json so durability-layer changes leave a recorded perf
// trajectory like the ingest and coordinator benches do.
//
// Usage:
//
//	ecmbench -recover -label dev -out BENCH_durable.json
//	ecmbench -recover -recoverevents 50000 -label ci-smoke -out /tmp/d.json
//
// Each algorithm ingests -recoverevents events, checkpoints, ingests a
// further quarter of that as the replay set, and crashes without flushing
// state (the WAL is synced; the checkpoint is not rewritten). Recovery
// time is then split into its two phases by recovering twice: once from a
// cleanly closed engine (snapshot restore only) and once from the crashed
// one (restore + replay).

import (
	"fmt"
	"os"
	"time"

	"ecmsketch"
)

// RecoverResult is one algorithm's durability measurement.
type RecoverResult struct {
	Algo          string `json:"algo"`
	Events        int    `json:"events"`         // ingested before the checkpoint
	ReplayEvents  int    `json:"replay_events"`  // ingested after it, recovered via WAL
	SnapshotBytes int    `json:"snapshot_bytes"` // checkpoint blob size (state size proxy)
	WALBytes      int64  `json:"wal_bytes"`      // WAL volume the crash recovery read

	CheckpointNs int64 `json:"checkpoint_ns"` // snapshot write (seal + capture + save)
	RestoreNs    int64 `json:"restore_ns"`    // snapshot load into a fresh engine
	ReplayNs     int64 `json:"replay_ns"`     // WAL replay on top of the restore

	ReplayEventsPerSec float64 `json:"replay_events_per_sec"`
	IngestNsWALOff     float64 `json:"ingest_ns_per_event_wal_off"`
	IngestNsWALOn      float64 `json:"ingest_ns_per_event_wal_on"`
	WALOverheadPct     float64 `json:"wal_overhead_pct"`
}

// RecoverRun is one labelled invocation of the -recover mode.
type RecoverRun struct {
	Label   string          `json:"label"`
	Events  int             `json:"events"`
	Results []RecoverResult `json:"results"`
}

// recoverParams is the ingest-bench operating point with a window long
// enough that the replay set stays live state, not expired history.
func recoverParams(algo string) ecmsketch.Params {
	p := ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20}
	switch algo {
	case "dw":
		p.Algorithm = ecmsketch.AlgoDW
	case "rw":
		p.Algorithm = ecmsketch.AlgoRW
		// RW synopses are an order of magnitude larger; the default budget
		// would spend the bench in allocation. Same ε regime as the paper's
		// RW rows.
		p.Epsilon = 0.15
	}
	return p
}

// feedRecover streams [start, start+n) as batches of 256 over 4096 keys,
// one tick per 8 events, and returns ns/event including the Flush barrier.
func feedRecover(sh *ecmsketch.Sharded, start, n int) float64 {
	const batchSize = 256
	batch := make([]ecmsketch.Event, 0, batchSize)
	t0 := time.Now()
	for i := start; i < start+n; i++ {
		batch = append(batch, ecmsketch.Event{Key: uint64(i % 4096), Tick: ecmsketch.Tick(i/8 + 1)})
		if len(batch) == batchSize {
			sh.AddBatch(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		sh.AddBatch(batch)
	}
	sh.Flush()
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

func runRecoverBench(label, out string, events int) error {
	if events <= 0 {
		events = 200_000
	}
	run := RecoverRun{Label: label, Events: events}
	for _, algo := range []string{"eh", "dw", "rw"} {
		res, err := recoverOnce(algo, events)
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		run.Results = append(run.Results, res)
		fmt.Printf("%-3s %8d events  snapshot %7d B  checkpoint %6.2f ms  restore %6.2f ms  replay %8.0f events/s  ingest WAL off/on %6.1f/%6.1f ns/event (%+.1f%%)\n",
			res.Algo, res.Events, res.SnapshotBytes,
			float64(res.CheckpointNs)/1e6, float64(res.RestoreNs)/1e6,
			res.ReplayEventsPerSec, res.IngestNsWALOff, res.IngestNsWALOn, res.WALOverheadPct)
	}
	return appendRun(out, "recover", run)
}

func recoverOnce(algo string, events int) (RecoverResult, error) {
	res := RecoverResult{Algo: algo, Events: events, ReplayEvents: events / 4}
	p := recoverParams(algo)

	// Baseline: the same stream with no durability attached.
	plain, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 8})
	if err != nil {
		return res, err
	}
	res.IngestNsWALOff = feedRecover(plain, 0, events)
	plain.Close()

	dir, err := os.MkdirTemp("", "ecmbench-recover-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	store, err := ecmsketch.NewFileStore(dir)
	if err != nil {
		return res, err
	}
	mk := func() (*ecmsketch.Sharded, error) {
		return ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 8,
			Durability: &ecmsketch.DurabilityConfig{
				Store: store,
				// Group commit: the fsync-per-batch default would measure the
				// disk, not the WAL path. Periodic checkpoints stay manual so
				// the phases below are cleanly separated.
				SyncInterval: 5 * time.Millisecond,
			}})
	}

	sh, err := mk()
	if err != nil {
		return res, err
	}
	res.IngestNsWALOn = feedRecover(sh, 0, events)
	res.WALOverheadPct = (res.IngestNsWALOn/res.IngestNsWALOff - 1) * 100

	t0 := time.Now()
	if err := sh.Checkpoint(); err != nil {
		return res, err
	}
	res.CheckpointNs = time.Since(t0).Nanoseconds()
	if blob, err := store.Load("snapshot"); err == nil {
		res.SnapshotBytes = len(blob)
	}

	// Phase split, part 1: a clean close leaves checkpoint-only state, so
	// the next open times the pure snapshot restore.
	if err := sh.Close(); err != nil {
		return res, err
	}
	t0 = time.Now()
	sh, err = mk()
	if err != nil {
		return res, err
	}
	res.RestoreNs = time.Since(t0).Nanoseconds()
	if !sh.DurabilityStats().Recovered {
		return res, fmt.Errorf("clean restart did not recover")
	}

	// Part 2: ingest the replay set on top, crash without a new checkpoint,
	// and time the recovery that must restore and replay.
	feedRecover(sh, events, res.ReplayEvents)
	res.WALBytes = int64(sh.DurabilityStats().WALBytes)
	sh.CloseAbrupt()
	t0 = time.Now()
	sh, err = mk()
	if err != nil {
		return res, err
	}
	recoverNs := time.Since(t0).Nanoseconds()
	ds := sh.DurabilityStats()
	if !ds.Recovered || ds.ReplayedRecords == 0 {
		return res, fmt.Errorf("crash recovery replayed nothing (recovered=%v records=%d)",
			ds.Recovered, ds.ReplayedRecords)
	}
	res.ReplayNs = recoverNs - res.RestoreNs
	if res.ReplayNs < 1 {
		res.ReplayNs = 1
	}
	res.ReplayEventsPerSec = float64(res.ReplayEvents) / (float64(res.ReplayNs) / 1e9)
	return res, sh.Close()
}
