package main

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/ecmclient"
	"ecmsketch/ecmserver"
)

// The -querywire mode measures the wire-level QueryBatch path: a real
// ecmserver over a loopback HTTP listener, queried through ecmclient, so
// the figures include JSON encode, the HTTP round trip, server-side
// token-streamed parsing and the consistent-cut evaluation — the number a
// dashboard actually pays per batch, where BENCH_query.json's engine modes
// stop at the engine boundary.
//
// Usage:
//
//	ecmbench -querywire -label wire-baseline -out BENCH_query.json
//
// The operating point matches the engine-side -query mode (16 stripes, EH,
// ε=0.05, δ=0.05, 2^20-tick window, ~260k preloaded events, MergeTTL 5ms,
// 2 writer goroutines streaming batches of 256 directly into the engine,
// throttled 200µs/batch so low-core boxes measure the wire rather than
// scheduler starvation); one client issues QueryBatch round trips of 1, 64
// and 1024 keys, with an engine-direct twin of every mode so the wire
// overhead is separable from the shared consistent-cut evaluation cost.
// Every mode is measured over best-of-N rounds on a fresh engine
// (interference on a shared box is one-sided, so the minimum is the signal
// — the repo's bench protocol) with the round count recorded in the result.

// wireBenchRounds is the best-of count per mode.
const wireBenchRounds = 3

// WireBenchResult is one mode of the -querywire mode; it shares
// BENCH_query.json with the engine-side results, distinguished by the
// mode prefix and the transport field.
type WireBenchResult struct {
	Mode          string  `json:"mode"` // <transport>-batch-<keys>: engine-batch-64, http-batch-64, ...
	Transport     string  `json:"transport"`
	Keys          int     `json:"keys"`
	Writers       int     `json:"writers"`
	Rounds        int     `json:"rounds"`
	NsPerQuery    float64 `json:"ns_per_query"` // per QueryBatch round trip, best of rounds
	NsPerKey      float64 `json:"ns_per_key"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// WireBenchRun is one labelled invocation of the -querywire mode.
type WireBenchRun struct {
	Label   string            `json:"label"`
	Results []WireBenchResult `json:"results"`
}

// batchQuerier is satisfied by both the engine and the HTTP client, so the
// same measurement loop times either end of the wire.
type batchQuerier interface {
	QueryBatch(q ecmsketch.QueryBatch) (ecmsketch.QueryResult, error)
}

// runWireOnce builds a fresh preloaded server, starts the standard writer
// load, and measures one QueryBatch shape against one transport. Fresh
// state per measurement keeps the modes comparable: with a shared engine,
// later modes would query an ever-larger live window and the figures would
// drift with run order.
func runWireOnce(overHTTP bool, keys int) func(b *testing.B) {
	return func(b *testing.B) {
		srv, err := ecmserver.New(ecmserver.Config{
			Epsilon: 0.05, Delta: 0.05,
			WindowLength: queryBenchParams().WindowLength,
			Shards:       queryBenchShards,
			MergeTTL:     queryBenchTTL,
		})
		if err != nil {
			b.Fatal(err)
		}
		engine := srv.Engine()
		batch := make([]ecmsketch.Event, 0, 256)
		tick := uint64(0)
		for i := 0; i < queryBenchPreload; i++ {
			tick++
			batch = append(batch, ecmsketch.Event{Key: uint64(i % queryBenchKeys), Tick: tick})
			if len(batch) == cap(batch) {
				engine.AddBatch(batch)
				batch = batch[:0]
			}
		}
		engine.AddBatch(batch)
		var bq batchQuerier = engine
		if overHTTP {
			ts := httptest.NewServer(srv)
			defer ts.Close()
			bq = ecmclient.New(ts.URL)
		}
		stop := make(chan struct{})
		var writersWG sync.WaitGroup
		var tickCounter atomic.Uint64
		tickCounter.Store(tick)
		for w := 0; w < queryBenchWriters; w++ {
			writersWG.Add(1)
			go func(w int) {
				defer writersWG.Done()
				wb := make([]ecmsketch.Event, 256)
				n := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					t := tickCounter.Add(1)
					for i := range wb {
						n++
						wb[i] = ecmsketch.Event{Key: (n*uint64(w+1) + n) % queryBenchKeys, Tick: t}
					}
					engine.AddBatch(wb)
					// Yield between batches: on low-core boxes spinning
					// writers would starve the HTTP goroutines and the
					// figures would measure the scheduler, not the wire.
					// Both transports run under the identical load.
					time.Sleep(200 * time.Microsecond)
				}
			}(w)
		}
		q := ecmsketch.QueryBatch{Range: queryBenchParams().WindowLength / 2, Total: true}
		for k := 0; k < keys; k++ {
			q.Keys = append(q.Keys, uint64(k%queryBenchKeys))
		}
		var acc float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := bq.QueryBatch(q)
			if err != nil {
				b.Fatal(err)
			}
			acc += res.Total
		}
		b.StopTimer()
		close(stop)
		writersWG.Wait()
		if acc == 0 {
			b.Fatal("queries returned nothing; engine degenerate")
		}
	}
}

func runWireBench(label, out string) error {
	run := WireBenchRun{Label: label}
	for _, keys := range []int{1, 64, 1024} {
		// Engine-direct and HTTP rounds interleave per shape so both
		// transports see the same box conditions; the gap between them is
		// the wire overhead proper (JSON + HTTP + parse), the shared floor
		// is the consistent-cut evaluation under writer load.
		for _, transport := range []struct {
			name     string
			overHTTP bool
		}{{"engine", false}, {"http", true}} {
			best := 0.0
			for round := 0; round < wireBenchRounds; round++ {
				r := testing.Benchmark(runWireOnce(transport.overHTTP, keys))
				ns := float64(r.T.Nanoseconds()) / float64(r.N)
				if best == 0 || ns < best {
					best = ns
				}
			}
			res := WireBenchResult{
				Mode:          fmt.Sprintf("%s-batch-%d", transport.name, keys),
				Transport:     transport.name,
				Keys:          keys,
				Writers:       queryBenchWriters,
				Rounds:        wireBenchRounds,
				NsPerQuery:    best,
				NsPerKey:      best / float64(keys),
				QueriesPerSec: 1e9 / best,
			}
			run.Results = append(run.Results, res)
			fmt.Printf("%-16s keys=%-5d writers=%d  %12.1f ns/call  %10.1f ns/key  %10.0f calls/s\n",
				res.Mode, res.Keys, res.Writers, res.NsPerQuery, res.NsPerKey, res.QueriesPerSec)
		}
	}
	return appendRun(out, "querywire", run)
}
