package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecmsketch/internal/wire"
)

// TestCoordServerDirectQuery pins ?direct=1 and the GET form of /v1/query
// on the coordinator surface: point answers come from the same published
// view as the batched path (a coordinator has no stripes — direct is the
// client-uniform spelling), aggregates are rejected with 400 under
// direct=1, and the incremental stats carry the per-round merge_ns and
// worker count.
func TestCoordServerDirectQuery(t *testing.T) {
	sites := newEcmserverSites(t, 2)
	co := newCoordinator(http.DefaultClient, []string{sites[0].URL, sites[1].URL}, "")
	co.SetDeltaPulls(true)
	cs := newCoordServer(co, 0)
	cs.incremental = true
	defer cs.Close()
	if err := cs.refresh(); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cs)
	defer front.Close()

	get := func(path string, wantCode int) map[string]any {
		t.Helper()
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: %s, want %d", path, resp.Status, wantCode)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}

	// POST with and without direct=1 answer identically from the frozen view.
	post := func(path, body string, wantCode int) map[string]any {
		t.Helper()
		resp, err := http.Post(front.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s: %s, want %d", path, resp.Status, wantCode)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	body := `{"keys":[{"ikey":"0"},{"ikey":"500"}],"range":10000}`
	batched := post("/v1/query", body, 200)["estimates"].([]any)
	direct := post("/v1/query?direct=1", body, 200)["estimates"].([]any)
	for i := range batched {
		if batched[i] != direct[i] {
			t.Fatalf("estimate %d: direct %v != batched %v", i, direct[i], batched[i])
		}
	}
	post("/v1/query?direct=1", `{"keys":[{"ikey":"0"}],"total":true}`, 400)

	// GET form: same answers, same direct contract.
	viaGet := get("/v1/query?ikey=0&ikey=500&range=10000", 200)["estimates"].([]any)
	for i := range batched {
		if batched[i] != viaGet[i] {
			t.Fatalf("estimate %d: GET %v != POST %v", i, viaGet[i], batched[i])
		}
	}
	get("/v1/query?ikey=0&total=1&direct=1", 400)

	// Incremental stats surface the root patch's timing and parallelism.
	stats := get("/v1/stats", 200)
	lr, ok := stats["lastRefresh"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing lastRefresh: %v", stats)
	}
	if _, ok := lr["merge_ns"].(float64); !ok {
		t.Fatalf("lastRefresh merge_ns = %T, want number", lr["merge_ns"])
	}
	if w, ok := lr["workers"].(float64); !ok || w < 1 {
		t.Fatalf("lastRefresh workers = %v, want >= 1", lr["workers"])
	}
	lrS := get("/v1/stats?strings=1", 200)["lastRefresh"].(map[string]any)
	if _, ok := lrS["merge_ns"].(string); !ok {
		t.Fatalf("lastRefresh merge_ns with ?strings=1 = %T, want string", lrS["merge_ns"])
	}
}

// TestCoordServerProfilingMount pins the opt-in pprof surface: absent by
// default, mounted by mountProfiling, and behind the bearer wrapper when a
// token is configured.
func TestCoordServerProfilingMount(t *testing.T) {
	sites := newEcmserverSites(t, 1)
	co := newCoordinator(http.DefaultClient, []string{sites[0].URL}, "")
	cs := newCoordServer(co, 0)
	defer cs.Close()
	front := httptest.NewServer(cs)
	defer front.Close()
	resp, err := http.Get(front.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof reachable without mountProfiling: %s", resp.Status)
	}

	cs2 := newCoordServer(co, 0)
	defer cs2.Close()
	cs2.mountProfiling()
	authed := httptest.NewServer(wire.RequireBearer("tok", cs2))
	defer authed.Close()
	resp, err = http.Get(authed.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("pprof reachable without token: %s", resp.Status)
	}
	req, _ := http.NewRequest("GET", authed.URL+"/debug/pprof/cmdline", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof with token: %s", resp.Status)
	}
}
