// Command ecmcoord is the coordinator half of an ecmserve deployment: it
// pulls every site's frozen snapshot (GET /v1/snapshot, with a fallback to
// the legacy /sketch route), aggregates them over the shared coordinator
// core — the same balanced-binary-tree merge path the in-process simulation
// uses, so the merged summary is bit-identical to what a single-process
// deployment of the same event log computes — and answers queries about the
// global stream.
//
// One-shot mode answers a single query and exits:
//
//	ecmcoord -sites http://a:8080,http://b:8080 -key /index.html -range 3600000
//	ecmcoord -sites ... -selfjoin -range 3600000
//	ecmcoord -sites ... -total               # ||a||_1 of the whole window
//	ecmcoord -sites ... -out merged.sketch   # persist the merged summary
//
// Server mode re-pulls the sites on an interval and serves the /v1 query
// API over the latest merged sketch, making the coordinator itself a
// queryable — and pullable — site, so coordinators stack hierarchically:
//
//	ecmcoord -sites http://a:8080,http://b:8080 -serve :9090 -interval 5s
//
// Server-mode re-pulls are incremental by default (-delta): the
// coordinator presents each site the cursor from its previous pull and
// receives only the stripes and cells that changed since, falling back to
// a full pull transparently whenever a site restarts or invalidates the
// cursor. On slow-moving streams this cuts steady-state coordinator
// bandwidth by an order of magnitude or more; -delta=false restores
// full-snapshot pulls.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"ecmsketch"
)

func main() {
	var (
		sites     = flag.String("sites", "", "comma-separated site base URLs")
		key       = flag.String("key", "", "string key to point-query")
		ikey      = flag.Uint64("ikey", 0, "integer key to point-query (when key is empty)")
		useIKey   = flag.Bool("use-ikey", false, "query -ikey instead of -key")
		rng       = flag.Uint64("range", 0, "query range in ticks (0 = whole window)")
		selfjoin  = flag.Bool("selfjoin", false, "answer a self-join query")
		total     = flag.Bool("total", false, "estimate total arrivals in range")
		out       = flag.String("out", "", "write the merged sketch to this file")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-site HTTP timeout")
		serve     = flag.String("serve", "", "serve the /v1 query API over the merged sketch on this address instead of exiting")
		interval  = flag.Duration("interval", 10*time.Second, "site re-pull period in server mode")
		delta     = flag.Bool("delta", true, "server mode: pull incremental deltas (GET /v1/snapshot?since=) instead of full snapshots every interval; sites predating the delta protocol transparently degrade to full pulls")
		token     = flag.String("token", "", "server mode: require this bearer token on the served API")
		siteToken = flag.String("site-token", "", "bearer token sent with every site pull (for sites started with -token)")
	)
	flag.Parse()
	urls := splitSites(*sites)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "ecmcoord: -sites is required")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	co := newCoordinator(client, urls, *siteToken)
	if *serve != "" {
		if *interval <= 0 {
			fmt.Fprintln(os.Stderr, "ecmcoord: -interval must be positive in server mode")
			os.Exit(2)
		}
		// One-shot pulls are full by construction; only the re-pull loop has
		// a previous cursor to delta against.
		co.SetDeltaPulls(*delta)
		runServe(co, *serve, *interval, *token)
		return
	}
	merged, height, err := co.AggregateTree()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecmcoord:", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d site sketches over a height-%d tree (%d bytes pulled, global count %d, clock %d)\n",
		len(urls), height, co.PulledBytes(), merged.Count(), merged.Now())
	queryRange := *rng
	if queryRange == 0 {
		queryRange = merged.Params().WindowLength
	}
	switch {
	case *selfjoin:
		fmt.Printf("self-join over last %d ticks ≈ %.6g\n", queryRange, merged.SelfJoin(queryRange))
	case *total:
		fmt.Printf("total arrivals over last %d ticks ≈ %.0f\n", queryRange, merged.EstimateTotal(queryRange))
	case *useIKey:
		fmt.Printf("frequency of item %d over last %d ticks ≈ %.0f\n",
			*ikey, queryRange, merged.Estimate(*ikey, queryRange))
	case *key != "":
		fmt.Printf("frequency of %q over last %d ticks ≈ %.0f\n",
			*key, queryRange, merged.EstimateString(*key, queryRange))
	}
	if *out != "" {
		if err := os.WriteFile(*out, merged.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ecmcoord: writing merged sketch:", err)
			os.Exit(1)
		}
		fmt.Printf("merged sketch written to %s\n", *out)
	}
}

// newCoordinator builds the shared coordinator core over HTTP sites.
func newCoordinator(client *http.Client, siteURLs []string, siteToken string) *ecmsketch.Coordinator {
	sites := make([]ecmsketch.Site, len(siteURLs))
	for i, u := range siteURLs {
		sites[i] = ecmsketch.NewHTTPSiteWithAuth(u, client, siteToken)
	}
	return ecmsketch.NewCoordinator(sites...)
}

func splitSites(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSpace(u)
		if u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// PullAndMerge aggregates the sites' snapshots through the shared
// coordinator core and reports the snapshot payload bytes actually pulled
// (the aggregation-tree model's accounting, which also charges internal
// edges, stays on the coordinator's Network). Kept as the programmatic
// one-shot entry point (and for its tests); the CLI drives the same path
// via newCoordinator.
func PullAndMerge(client *http.Client, siteURLs []string) (*ecmsketch.Sketch, int, error) {
	co := newCoordinator(client, siteURLs, "")
	merged, _, err := co.AggregateTree()
	if err != nil {
		return nil, 0, err
	}
	return merged, int(co.PulledBytes()), nil
}
