// Command ecmcoord is the coordinator half of an ecmserve deployment: it
// pulls every site's frozen snapshot (GET /v1/snapshot, with a fallback to
// the legacy /sketch route), aggregates them over the shared coordinator
// core — the same balanced-binary-tree merge path the in-process simulation
// uses, so the merged summary is bit-identical to what a single-process
// deployment of the same event log computes — and answers queries about the
// global stream.
//
// One-shot mode answers a single query and exits:
//
//	ecmcoord -sites http://a:8080,http://b:8080 -key /index.html -range 3600000
//	ecmcoord -sites ... -selfjoin -range 3600000
//	ecmcoord -sites ... -total               # ||a||_1 of the whole window
//	ecmcoord -sites ... -out merged.sketch   # persist the merged summary
//
// Server mode re-pulls the sites on an interval and serves the /v1 query
// API over the latest merged sketch, making the coordinator itself a
// queryable — and pullable — site, so coordinators stack hierarchically:
//
//	ecmcoord -sites http://a:8080,http://b:8080 -serve :9090 -interval 5s
//
// Server-mode re-pulls are incremental by default (-delta): the
// coordinator presents each site the cursor from its previous pull and
// receives only the stripes and cells that changed since, falling back to
// a full pull transparently whenever a site restarts or invalidates the
// cursor. On slow-moving streams this cuts steady-state coordinator
// bandwidth by an order of magnitude or more; -delta=false restores
// full-snapshot pulls.
package main

import (
	"crypto/x509"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"ecmsketch"
)

func main() {
	var (
		sites       = flag.String("sites", "", "comma-separated site base URLs")
		key         = flag.String("key", "", "string key to point-query")
		ikey        = flag.Uint64("ikey", 0, "integer key to point-query (when key is empty)")
		useIKey     = flag.Bool("use-ikey", false, "query -ikey instead of -key")
		rng         = flag.Uint64("range", 0, "query range in ticks (0 = whole window)")
		selfjoin    = flag.Bool("selfjoin", false, "answer a self-join query")
		total       = flag.Bool("total", false, "estimate total arrivals in range")
		out         = flag.String("out", "", "write the merged sketch to this file")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-site HTTP timeout")
		serve       = flag.String("serve", "", "serve the /v1 query API over the merged sketch on this address instead of exiting")
		interval    = flag.Duration("interval", 10*time.Second, "site re-pull period in server mode")
		delta       = flag.Bool("delta", true, "server mode: pull incremental deltas (GET /v1/snapshot?since=) instead of full snapshots every interval; sites predating the delta protocol transparently degrade to full pulls")
		incremental = flag.Bool("incremental", true, "server mode: patch one persistent merged view from the changed cells each pull instead of re-merging from scratch, and serve cursor-based deltas upward on GET /v1/snapshot?since=")
		resilient   = flag.Bool("resilient", true, "server mode: keep serving on site failures — unreachable sites contribute their retained baseline (or are excluded) and re-enter via exponential-backoff probes")
		stagger     = flag.Duration("stagger", 0, "server mode: spread each pull round's site fetches deterministically over this window (0 = fetch all at once)")
		token       = flag.String("token", "", "server mode: require this bearer token on the served API")
		siteToken   = flag.String("site-token", "", "bearer token sent with every site pull (for sites started with -token)")
		tlsCert     = flag.String("tls-cert", "", "server mode: serve TLS with this certificate file (requires -tls-key)")
		tlsKey      = flag.String("tls-key", "", "server mode: private key file for -tls-cert")
		siteCA      = flag.String("site-ca", "", "PEM file of root CAs to trust when pulling https:// sites (default: system roots)")
		pprofOn     = flag.Bool("pprof", false, "server mode: mount net/http/pprof under /debug/pprof/ (behind -token auth when set)")
		dataDir     = flag.String("data-dir", "", "server mode: persist the merged root (with its delta-serving epoch) and dynamic membership under this directory; a restart keeps serving deltas to parents holding pre-restart cursors")
		snapIvl     = flag.Duration("snapshot-interval", time.Minute, "server mode: minimum period between merged-root persists (requires -data-dir)")
	)
	flag.Parse()
	urls := splitSites(*sites)
	if len(urls) == 0 && *serve == "" {
		fmt.Fprintln(os.Stderr, "ecmcoord: -sites is required")
		os.Exit(2)
	}
	client := newSiteClient(*timeout, *siteCA)
	co := newCoordinator(client, urls, *siteToken)
	if *serve != "" {
		if *interval <= 0 {
			fmt.Fprintln(os.Stderr, "ecmcoord: -interval must be positive in server mode")
			os.Exit(2)
		}
		if (*tlsCert == "") != (*tlsKey == "") {
			fmt.Fprintln(os.Stderr, "ecmcoord: -tls-cert and -tls-key must be set together")
			os.Exit(2)
		}
		// One-shot pulls are full by construction; only the re-pull loop has
		// a previous cursor to delta against.
		co.SetDeltaPulls(*delta)
		co.SetResilient(*resilient)
		co.SetPullStagger(*stagger)
		cs := newCoordServer(co, *interval)
		// Incremental patching needs cell-granular change feeds, which only
		// delta pulls produce; without -delta it degrades to tree re-merge.
		cs.incremental = *incremental && *delta
		cs.siteClient = client
		cs.siteToken = *siteToken
		if *pprofOn {
			cs.mountProfiling()
		}
		if *dataDir != "" {
			store, err := ecmsketch.NewFileStore(*dataDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecmcoord: opening -data-dir:", err)
				os.Exit(1)
			}
			cs.enableDurability(store, *snapIvl)
		}
		runServe(cs, *serve, *token, *tlsCert, *tlsKey)
		return
	}
	merged, height, err := co.AggregateTree()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecmcoord:", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d site sketches over a height-%d tree (%d bytes pulled, global count %d, clock %d)\n",
		len(urls), height, co.PulledBytes(), merged.Count(), merged.Now())
	queryRange := *rng
	if queryRange == 0 {
		queryRange = merged.Params().WindowLength
	}
	switch {
	case *selfjoin:
		fmt.Printf("self-join over last %d ticks ≈ %.6g\n", queryRange, merged.SelfJoin(queryRange))
	case *total:
		fmt.Printf("total arrivals over last %d ticks ≈ %.0f\n", queryRange, merged.EstimateTotal(queryRange))
	case *useIKey:
		fmt.Printf("frequency of item %d over last %d ticks ≈ %.0f\n",
			*ikey, queryRange, merged.Estimate(*ikey, queryRange))
	case *key != "":
		fmt.Printf("frequency of %q over last %d ticks ≈ %.0f\n",
			*key, queryRange, merged.EstimateString(*key, queryRange))
	}
	if *out != "" {
		if err := os.WriteFile(*out, merged.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ecmcoord: writing merged sketch:", err)
			os.Exit(1)
		}
		fmt.Printf("merged sketch written to %s\n", *out)
	}
}

// newSiteClient builds the pull client every site shares: one keep-alive
// transport (see ecmsketch.NewPullClient) with the per-site timeout, trusting
// the PEM roots in caFile — if any — instead of the system pool.
func newSiteClient(timeout time.Duration, caFile string) *http.Client {
	var roots *x509.CertPool
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecmcoord: reading -site-ca:", err)
			os.Exit(2)
		}
		roots = x509.NewCertPool()
		if !roots.AppendCertsFromPEM(pem) {
			fmt.Fprintf(os.Stderr, "ecmcoord: no certificates found in %s\n", caFile)
			os.Exit(2)
		}
	}
	return ecmsketch.NewPullClient(timeout, roots)
}

// newCoordinator builds the shared coordinator core over HTTP sites.
func newCoordinator(client *http.Client, siteURLs []string, siteToken string) *ecmsketch.Coordinator {
	sites := make([]ecmsketch.Site, len(siteURLs))
	for i, u := range siteURLs {
		sites[i] = ecmsketch.NewHTTPSiteWithAuth(u, client, siteToken)
	}
	return ecmsketch.NewCoordinator(sites...)
}

func splitSites(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSpace(u)
		if u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// PullAndMerge aggregates the sites' snapshots through the shared
// coordinator core and reports the snapshot payload bytes actually pulled
// (the aggregation-tree model's accounting, which also charges internal
// edges, stays on the coordinator's Network). Kept as the programmatic
// one-shot entry point (and for its tests); the CLI drives the same path
// via newCoordinator.
func PullAndMerge(client *http.Client, siteURLs []string) (*ecmsketch.Sketch, int, error) {
	co := newCoordinator(client, siteURLs, "")
	merged, _, err := co.AggregateTree()
	if err != nil {
		return nil, 0, err
	}
	return merged, int(co.PulledBytes()), nil
}
