// Command ecmcoord is the coordinator half of an ecmserve deployment: it
// pulls the serialized ECM-sketch of every site (GET /sketch), aggregates
// them with the order-preserving merge, and answers queries about the global
// stream — the network-monitoring workflow of the paper's introduction.
//
// Usage:
//
//	ecmcoord -sites http://a:8080,http://b:8080 -key /index.html -range 3600000
//	ecmcoord -sites ... -selfjoin -range 3600000
//	ecmcoord -sites ... -total               # ||a||_1 of the whole window
//	ecmcoord -sites ... -out merged.sketch   # persist the merged summary
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ecmsketch"
)

func main() {
	var (
		sites    = flag.String("sites", "", "comma-separated site base URLs")
		key      = flag.String("key", "", "string key to point-query")
		ikey     = flag.Uint64("ikey", 0, "integer key to point-query (when key is empty)")
		useIKey  = flag.Bool("use-ikey", false, "query -ikey instead of -key")
		rng      = flag.Uint64("range", 0, "query range in ticks (0 = whole window)")
		selfjoin = flag.Bool("selfjoin", false, "answer a self-join query")
		total    = flag.Bool("total", false, "estimate total arrivals in range")
		out      = flag.String("out", "", "write the merged sketch to this file")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-site HTTP timeout")
	)
	flag.Parse()
	urls := splitSites(*sites)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "ecmcoord: -sites is required")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	merged, transferred, err := PullAndMerge(client, urls)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecmcoord:", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d site sketches (%d bytes pulled, global count %d, clock %d)\n",
		len(urls), transferred, merged.Count(), merged.Now())
	queryRange := *rng
	if queryRange == 0 {
		queryRange = merged.Params().WindowLength
	}
	switch {
	case *selfjoin:
		fmt.Printf("self-join over last %d ticks ≈ %.6g\n", queryRange, merged.SelfJoin(queryRange))
	case *total:
		fmt.Printf("total arrivals over last %d ticks ≈ %.0f\n", queryRange, merged.EstimateTotal(queryRange))
	case *useIKey:
		fmt.Printf("frequency of item %d over last %d ticks ≈ %.0f\n",
			*ikey, queryRange, merged.Estimate(*ikey, queryRange))
	case *key != "":
		fmt.Printf("frequency of %q over last %d ticks ≈ %.0f\n",
			*key, queryRange, merged.EstimateString(*key, queryRange))
	}
	if *out != "" {
		if err := os.WriteFile(*out, merged.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ecmcoord: writing merged sketch:", err)
			os.Exit(1)
		}
		fmt.Printf("merged sketch written to %s\n", *out)
	}
}

func splitSites(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSpace(u)
		if u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// PullAndMerge fetches /sketch from every site and merges the results. It
// returns the merged sketch and the total bytes transferred.
func PullAndMerge(client *http.Client, siteURLs []string) (*ecmsketch.Sketch, int, error) {
	sketches := make([]*ecmsketch.Sketch, 0, len(siteURLs))
	transferred := 0
	for _, u := range siteURLs {
		enc, err := fetchSketch(client, u)
		if err != nil {
			return nil, 0, fmt.Errorf("site %s: %w", u, err)
		}
		transferred += len(enc)
		sk, err := ecmsketch.Unmarshal(enc)
		if err != nil {
			return nil, 0, fmt.Errorf("site %s: decoding sketch: %w", u, err)
		}
		sketches = append(sketches, sk)
	}
	merged, err := ecmsketch.Merge(sketches...)
	if err != nil {
		return nil, 0, fmt.Errorf("merging: %w", err)
	}
	return merged, transferred, nil
}

func fetchSketch(client *http.Client, baseURL string) ([]byte, error) {
	resp, err := client.Get(baseURL + "/sketch")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /sketch returned %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<30))
}
