package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"ecmsketch"
)

// fakeSite serves a marshaled site sketch the way ecmserve does.
func fakeSite(t *testing.T, seed uint64, feed func(*ecmsketch.Sketch)) *httptest.Server {
	t.Helper()
	sk, err := ecmsketch.New(ecmsketch.Params{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(sk)
	enc := sk.Marshal()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sketch" {
			http.NotFound(w, r)
			return
		}
		w.Write(enc)
	}))
}

func TestPullAndMerge(t *testing.T) {
	a := fakeSite(t, 9, func(s *ecmsketch.Sketch) {
		for i := ecmsketch.Tick(1); i <= 100; i++ {
			s.AddString("x", i)
		}
	})
	defer a.Close()
	b := fakeSite(t, 9, func(s *ecmsketch.Sketch) {
		for i := ecmsketch.Tick(1); i <= 50; i++ {
			s.AddString("x", i)
			s.AddString("y", i)
		}
	})
	defer b.Close()

	merged, transferred, err := PullAndMerge(http.DefaultClient, []string{a.URL, b.URL})
	if err != nil {
		t.Fatal(err)
	}
	if transferred <= 0 {
		t.Error("no transfer accounted")
	}
	if got := merged.EstimateString("x", 10000); got < 130 || got > 180 {
		t.Errorf("merged x = %v, want ≈150", got)
	}
	if got := merged.EstimateString("y", 10000); got < 40 || got > 80 {
		t.Errorf("merged y = %v, want ≈50", got)
	}
	if merged.Count() != 200 {
		t.Errorf("merged count = %d, want 200", merged.Count())
	}
}

func TestPullAndMergeIncompatibleSeeds(t *testing.T) {
	a := fakeSite(t, 1, func(s *ecmsketch.Sketch) { s.Add(1, 1) })
	defer a.Close()
	b := fakeSite(t, 2, func(s *ecmsketch.Sketch) { s.Add(1, 1) })
	defer b.Close()
	if _, _, err := PullAndMerge(http.DefaultClient, []string{a.URL, b.URL}); err == nil {
		t.Fatal("merging sketches with different seeds succeeded")
	}
}

func TestPullAndMergeHTTPErrors(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, _, err := PullAndMerge(http.DefaultClient, []string{bad.URL}); err == nil {
		t.Fatal("HTTP 500 not surfaced")
	}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a sketch"))
	}))
	defer garbage.Close()
	if _, _, err := PullAndMerge(http.DefaultClient, []string{garbage.URL}); err == nil {
		t.Fatal("garbage payload not surfaced")
	}
	if _, _, err := PullAndMerge(http.DefaultClient, []string{"http://127.0.0.1:1"}); err == nil {
		t.Fatal("connection failure not surfaced")
	}
}

func TestSplitSites(t *testing.T) {
	got := splitSites(" http://a:1/, ,http://b:2 ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("splitSites = %v", got)
	}
	if len(splitSites("")) != 0 {
		t.Error("empty input produced sites")
	}
}
