package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecmsketch"
	"ecmsketch/ecmserver"
)

// fakeSite serves a marshaled site sketch the way ecmserve does.
func fakeSite(t *testing.T, seed uint64, feed func(*ecmsketch.Sketch)) *httptest.Server {
	t.Helper()
	sk, err := ecmsketch.New(ecmsketch.Params{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(sk)
	enc := sk.Marshal()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sketch" {
			http.NotFound(w, r)
			return
		}
		w.Write(enc)
	}))
}

func TestPullAndMerge(t *testing.T) {
	a := fakeSite(t, 9, func(s *ecmsketch.Sketch) {
		for i := ecmsketch.Tick(1); i <= 100; i++ {
			s.AddString("x", i)
		}
	})
	defer a.Close()
	b := fakeSite(t, 9, func(s *ecmsketch.Sketch) {
		for i := ecmsketch.Tick(1); i <= 50; i++ {
			s.AddString("x", i)
			s.AddString("y", i)
		}
	})
	defer b.Close()

	merged, transferred, err := PullAndMerge(http.DefaultClient, []string{a.URL, b.URL})
	if err != nil {
		t.Fatal(err)
	}
	if transferred <= 0 {
		t.Error("no transfer accounted")
	}
	if got := merged.EstimateString("x", 10000); got < 130 || got > 180 {
		t.Errorf("merged x = %v, want ≈150", got)
	}
	if got := merged.EstimateString("y", 10000); got < 40 || got > 80 {
		t.Errorf("merged y = %v, want ≈50", got)
	}
	if merged.Count() != 200 {
		t.Errorf("merged count = %d, want 200", merged.Count())
	}
}

func TestPullAndMergeIncompatibleSeeds(t *testing.T) {
	a := fakeSite(t, 1, func(s *ecmsketch.Sketch) { s.Add(1, 1) })
	defer a.Close()
	b := fakeSite(t, 2, func(s *ecmsketch.Sketch) { s.Add(1, 1) })
	defer b.Close()
	if _, _, err := PullAndMerge(http.DefaultClient, []string{a.URL, b.URL}); err == nil {
		t.Fatal("merging sketches with different seeds succeeded")
	}
}

func TestPullAndMergeHTTPErrors(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, _, err := PullAndMerge(http.DefaultClient, []string{bad.URL}); err == nil {
		t.Fatal("HTTP 500 not surfaced")
	}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a sketch"))
	}))
	defer garbage.Close()
	if _, _, err := PullAndMerge(http.DefaultClient, []string{garbage.URL}); err == nil {
		t.Fatal("garbage payload not surfaced")
	}
	if _, _, err := PullAndMerge(http.DefaultClient, []string{"http://127.0.0.1:1"}); err == nil {
		t.Fatal("connection failure not surfaced")
	}
}

// newEcmserverSites starts n real ecmserver sites with identical
// configuration, each fed a distinct deterministic stream and advanced to a
// shared clock, and returns the servers.
func newEcmserverSites(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	out := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		srv, err := ecmserver.New(ecmserver.Config{
			Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: 21, Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var batch []ecmsketch.Event
		for e := 0; e < 3000; e++ {
			batch = append(batch, ecmsketch.Event{Key: uint64(e%61) + uint64(i)*500, Tick: uint64(e/3 + 1)})
		}
		srv.Engine().AddBatch(batch)
		srv.Engine().Advance(2000)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		out[i] = ts
	}
	return out
}

// TestEcmcoordMergesBitIdenticallyToInProcess is the CI smoke for the
// shared coordinator core: ecmcoord's networked pull-and-merge of two
// ecmserver sites must produce byte-for-byte the summary an in-process
// coordinator over the same engines computes.
func TestEcmcoordMergesBitIdenticallyToInProcess(t *testing.T) {
	sites := newEcmserverSites(t, 2)
	merged, transferred, err := PullAndMerge(http.DefaultClient, []string{sites[0].URL, sites[1].URL})
	if err != nil {
		t.Fatal(err)
	}
	if transferred <= 0 {
		t.Error("no transfer accounted")
	}
	local := make([]ecmsketch.Site, len(sites))
	for i, ts := range sites {
		local[i] = ecmsketch.NewLocalSite(fmt.Sprintf("site-%d", i),
			ts.Config.Handler.(*ecmserver.Server).Engine())
	}
	inproc, _, err := ecmsketch.NewCoordinator(local...).AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Marshal(), inproc.Marshal()) {
		t.Fatal("networked ecmcoord merge differs from in-process merge over the same engines")
	}
	if merged.Count() == 0 {
		t.Error("merged summary is empty; equivalence is vacuous")
	}
}

// TestCoordServer drives the server mode end to end: refresh, point and
// batch queries, stats provenance, snapshot re-pull (a coordinator is
// itself a site), and the 503 surface before any successful pull.
func TestCoordServer(t *testing.T) {
	sites := newEcmserverSites(t, 2)
	co := newCoordinator(http.DefaultClient, []string{sites[0].URL, sites[1].URL}, "")
	cs := newCoordServer(co, 0) // loop not started; refreshes are explicit
	defer cs.Close()
	if err := cs.refresh(); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cs)
	defer front.Close()

	getJSON := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Key 0 appears in site 0's stream ~50 times per full window.
	est := getJSON("/v1/estimate?ikey=0&range=10000")["estimate"].(float64)
	if est < 25 || est > 200 {
		t.Errorf("estimate = %v, want ≈50", est)
	}
	if tot := getJSON("/v1/total?range=10000")["total"].(float64); tot < 5000 || tot > 7000 {
		t.Errorf("total = %v, want ≈6000", tot)
	}
	if sj := getJSON("/v1/selfjoin?range=10000")["selfJoin"].(float64); sj <= 0 {
		t.Errorf("selfJoin = %v, want > 0", sj)
	}

	stats := getJSON("/v1/stats")
	if stats["role"] != "coordinator" || stats["sites"].(float64) != 2 {
		t.Errorf("stats = %v", stats)
	}
	if stats["count"].(float64) != 6000 {
		t.Errorf("stats count = %v, want 6000", stats["count"])
	}
	strStats := getJSON("/v1/stats?strings=1")
	if _, ok := strStats["count"].(string); !ok {
		t.Errorf("stats?strings=1 count = %T, want string", strStats["count"])
	}

	// Batched query from one consistent cut.
	resp, err := http.Post(front.URL+"/v1/query", "application/json",
		strings.NewReader(`{"keys":[{"ikey":"0"},{"ikey":"500"}],"range":10000,"total":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Estimates []float64 `json:"estimates"`
		Total     float64   `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Estimates) != 2 || qr.Estimates[0] <= 0 || qr.Estimates[1] <= 0 {
		t.Errorf("query estimates = %v", qr.Estimates)
	}
	if qr.Total < 5000 || qr.Total > 7000 {
		t.Errorf("query total = %v", qr.Total)
	}

	// The coordinator shares ecmserver's strict parser: unknown fields are
	// rejected identically on both tiers.
	bad, err := http.Post(front.URL+"/v1/query", "application/json",
		strings.NewReader(`{"keys":[{"ikey":"0"}],"rnage":10}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown query field accepted: %s", bad.Status)
	}

	// A coordinator is itself pullable: merging "the coordinator" as a
	// single site reproduces its merged summary bit-identically.
	repulled, _, err := PullAndMerge(http.DefaultClient, []string{front.URL})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repulled.Marshal(), cs.merged.Load().sk.Marshal()) {
		t.Error("re-pulled coordinator snapshot differs from its merged view")
	}

	// Refresh on demand keeps working after site ingest.
	sites[0].Config.Handler.(*ecmserver.Server).Engine().Add(12345, 2001)
	rr, err := http.Post(front.URL+"/v1/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if got := cs.merged.Load().sk.Count(); got != 6001 {
		t.Errorf("post-refresh count = %d, want 6001", got)
	}
}

// TestCoordServerNotReady pins the 503 surface of a coordinator that has
// never pulled successfully.
func TestCoordServerNotReady(t *testing.T) {
	co := newCoordinator(http.DefaultClient, []string{"http://127.0.0.1:1"}, "")
	cs := newCoordServer(co, 0)
	defer cs.Close()
	front := httptest.NewServer(cs)
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/total")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %s, want 503", resp.Status)
	}
	rr, err := http.Post(front.URL+"/v1/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusBadGateway {
		t.Errorf("refresh against dead sites = %s, want 502", rr.Status)
	}
}

func TestSplitSites(t *testing.T) {
	got := splitSites(" http://a:1/, ,http://b:2 ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("splitSites = %v", got)
	}
	if len(splitSites("")) != 0 {
		t.Error("empty input produced sites")
	}
}
