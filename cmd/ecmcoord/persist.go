package main

// Coordinator durability: with -data-dir the server mode persists its two
// pieces of restart-worthy state through the same pluggable store the leaf
// engines use — the merged root with its delta-serving epoch and version
// vector (blob "root", via Coordinator.ExportState), and the dynamic
// membership (blob "sites", as JSON name/url pairs). A restarted
// coordinator restores both before serving: parents holding pre-restart
// cursors keep receiving deltas instead of re-baselining, and sites
// registered at runtime via POST /v1/sites survive without re-registering.
//
// The root blob is refreshed after successful pull rounds, rate-limited by
// -snapshot-interval, and once more on SIGINT/SIGTERM; the sites blob is
// small and saved on every membership change. There is no coordinator WAL:
// the sites themselves are the log — anything a persisted root misses is
// re-pulled on the first refresh.

import (
	"encoding/json"
	"errors"
	"log"
	"time"

	"ecmsketch"
)

const (
	coordRootBlob  = "root"
	coordSitesBlob = "sites"
)

// persistedSite is one dynamic membership entry worth recreating.
type persistedSite struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// enableDurability attaches the store and restores whatever it holds.
// Restore failures are logged and discarded — the coordinator then
// bootstraps from the sites exactly as a memory-only one would.
func (cs *coordServer) enableDurability(store ecmsketch.DurableStore, interval time.Duration) {
	cs.store = store
	if interval <= 0 {
		interval = time.Minute
	}
	cs.persistIvl = interval
	cs.restoreSites()
	cs.restoreRoot()
}

func (cs *coordServer) restoreRoot() {
	blob, err := cs.store.Load(coordRootBlob)
	if errors.Is(err, ecmsketch.ErrDurableNotFound) {
		return
	}
	if err == nil {
		err = cs.co.RestoreState(blob)
	}
	if err != nil {
		log.Printf("ecmcoord: discarding persisted root: %v", err)
		return
	}
	// Publish the restored root for queries (and its provenance for stats)
	// so the surface is live before the first pull round completes; the
	// delta route serves from the coordinator's own root either way.
	if sk, err := cs.co.Snapshot(); err == nil {
		cs.merged.Store(&mergedView{sk: sk, height: 1, pulledAt: time.Now()})
	}
	log.Printf("ecmcoord: restored persisted merged root (resuming deltas from the same epoch)")
}

func (cs *coordServer) restoreSites() {
	blob, err := cs.store.Load(coordSitesBlob)
	if err != nil {
		if !errors.Is(err, ecmsketch.ErrDurableNotFound) {
			log.Printf("ecmcoord: discarding persisted membership: %v", err)
		}
		return
	}
	var saved []persistedSite
	if err := json.Unmarshal(blob, &saved); err != nil {
		log.Printf("ecmcoord: discarding persisted membership: %v", err)
		return
	}
	for _, ps := range saved {
		if ps.URL == "" {
			continue
		}
		site := ecmsketch.NewHTTPSiteWithAuth(ps.URL, cs.siteClient, cs.siteToken)
		if ps.Name != ps.URL {
			site.(interface{ SetName(string) }).SetName(ps.Name)
		}
		// AddSite replaces an existing member of the same name, so entries
		// also named by -sites register once, not twice.
		cs.co.AddSite(site)
	}
	if len(saved) > 0 {
		log.Printf("ecmcoord: restored %d persisted site registrations", len(saved))
	}
}

// persistSites snapshots the current HTTP membership. Called from the
// membership handlers on every change; a no-op without -data-dir.
func (cs *coordServer) persistSites() {
	if cs.store == nil {
		return
	}
	var out []persistedSite
	for _, s := range cs.co.Sites() {
		hs, ok := s.(interface {
			Name() string
			URL() string
		})
		if !ok {
			continue // in-process sites are not reconstructible from a blob
		}
		out = append(out, persistedSite{Name: hs.Name(), URL: hs.URL()})
	}
	blob, err := json.Marshal(out)
	if err == nil {
		err = cs.store.Save(coordSitesBlob, blob)
	}
	if err != nil {
		log.Printf("ecmcoord: persisting membership: %v", err)
	}
}

// maybePersistRoot saves the merged root if -snapshot-interval has elapsed
// since the last save. Called under refreshMu after successful refreshes,
// so saves serialize with view publication.
func (cs *coordServer) maybePersistRoot() {
	if cs.store == nil || time.Since(cs.lastPersist) < cs.persistIvl {
		return
	}
	cs.persistRootLocked()
}

// persistRootNow is the shutdown path: grab refreshMu so a concurrent
// refresh cannot interleave, then save unconditionally.
func (cs *coordServer) persistRootNow() {
	if cs.store == nil {
		return
	}
	cs.refreshMu.Lock()
	defer cs.refreshMu.Unlock()
	cs.persistRootLocked()
}

func (cs *coordServer) persistRootLocked() {
	blob := cs.co.ExportState()
	if blob == nil {
		return // nothing merged yet
	}
	if err := cs.store.Save(coordRootBlob, blob); err != nil {
		log.Printf("ecmcoord: persisting merged root: %v", err)
		return
	}
	cs.lastPersist = time.Now()
}
