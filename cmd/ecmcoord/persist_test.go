package main

// Restart tests for coordinator durability (persist.go): the merged root
// resumes serving upward deltas from the same epoch, and dynamic site
// registrations survive.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecmsketch"
)

// newDurableCoordServer is newIncrementalCoordServer plus a store.
func newDurableCoordServer(t *testing.T, siteURLs []string, store ecmsketch.DurableStore) *coordServer {
	t.Helper()
	cs := newIncrementalCoordServer(t, http.DefaultClient, siteURLs)
	cs.enableDurability(store, time.Minute)
	return cs
}

// TestCoordRootSurvivesRestart: a parent holding a cursor from before the
// coordinator restart receives a delta — not a re-baselining full — from
// the restarted coordinator, and the reconstruction matches its served
// snapshot.
func TestCoordRootSurvivesRestart(t *testing.T) {
	sites := newEcmserverSites(t, 2)
	urls := []string{sites[0].URL, sites[1].URL}
	store := ecmsketch.NewMemStore()

	cs1 := newDurableCoordServer(t, urls, store)
	if err := cs1.refresh(); err != nil {
		t.Fatal(err)
	}
	front1 := httptest.NewServer(cs1)

	// The parent's bootstrap pull: full, with a cursor to come back with.
	var st ecmsketch.DeltaState
	pull := func(front *httptest.Server, wantKind string) {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/snapshot?since=" + st.Cursor().String())
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if kind := resp.Header.Get("X-Ecm-Delta"); kind != wantKind {
			t.Fatalf("kind %q, want %q", kind, wantKind)
		}
		cur, err := ecmsketch.ParseCursor(resp.Header.Get("X-Ecm-Cursor"))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(body.Bytes(), cur, wantKind == "full"); err != nil {
			t.Fatalf("apply %s: %v", wantKind, err)
		}
	}
	pull(front1, "full")

	// More site traffic merged into the root, then a shutdown-style persist.
	mutateSites(sites, 1)
	if err := cs1.refresh(); err != nil {
		t.Fatal(err)
	}
	cs1.persistRootNow()
	front1.Close()
	cs1.Close()

	// The restarted coordinator restores the root before any pull round...
	cs2 := newDurableCoordServer(t, urls, store)
	front2 := httptest.NewServer(cs2)
	defer front2.Close()

	// ...so the parent's pre-restart cursor is answered with a delta.
	pull(front2, "delta")
	got, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(front2.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	legacy := new(bytes.Buffer)
	legacy.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got.Marshal(), legacy.Bytes()) {
		t.Fatal("post-restart delta reconstruction differs from the served snapshot")
	}

	// And after the restarted coordinator's own refresh rounds, the cursor
	// keeps yielding deltas (the in-place patch preserved the epoch).
	mutateSites(sites, 2)
	if err := cs2.refresh(); err != nil {
		t.Fatal(err)
	}
	pull(front2, "delta")
}

// TestCoordSitesSurviveRestart: a site registered at runtime via POST
// /v1/sites is still a member after a restart over the same store.
func TestCoordSitesSurviveRestart(t *testing.T) {
	sites := newEcmserverSites(t, 2)
	store := ecmsketch.NewMemStore()

	// Start with one static site; register the second dynamically.
	cs1 := newDurableCoordServer(t, []string{sites[0].URL}, store)
	front1 := httptest.NewServer(cs1)
	resp, err := http.Post(front1.URL+"/v1/sites", "application/json",
		strings.NewReader(`{"url": "`+sites[1].URL+`", "name": "dyn-site"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("site registration status %d", resp.StatusCode)
	}
	front1.Close()
	cs1.Close()

	// The restart sees only the static flag site, then restores the rest.
	cs2 := newDurableCoordServer(t, []string{sites[0].URL}, store)
	names := map[string]bool{}
	for _, s := range cs2.co.Sites() {
		names[s.Name()] = true
	}
	if !names["dyn-site"] {
		t.Fatalf("dynamic site lost across restart; members: %v", names)
	}
	if len(names) != 2 {
		t.Fatalf("membership %v, want the static site plus dyn-site", names)
	}

	// A removal persists too: drop the dynamic site, restart, still gone.
	if !cs2.co.RemoveSite("dyn-site") {
		t.Fatal("remove failed")
	}
	cs2.persistSites()
	cs3 := newDurableCoordServer(t, []string{sites[0].URL}, store)
	for _, s := range cs3.co.Sites() {
		if s.Name() == "dyn-site" {
			t.Fatal("removed site resurrected across restart")
		}
	}
}
