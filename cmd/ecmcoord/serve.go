package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ecmsketch"
	"ecmsketch/internal/standing"
	"ecmsketch/internal/wire"
)

// coordServer is the server mode of ecmcoord: it re-pulls and re-merges the
// sites on an interval and serves a read-only /v1 query surface over the
// latest merged sketch. The merged sketch is frozen at merge time (its
// clock was advanced by the final ⊕ and never moves again), so any number
// of concurrent queries on it are pure reads — the same immutable-view
// discipline the Sharded engine's query path uses, applied one level up.
//
// Because the surface includes GET /v1/snapshot and /v1/sketch, a running
// coordinator is itself a valid pull target: coordinators compose into the
// multi-level hierarchies of Section 5.1, each level re-summarizing the one
// below.
type coordServer struct {
	co       *ecmsketch.Coordinator
	interval time.Duration
	mux      *http.ServeMux

	// incremental switches the refresh loop from wholesale re-merge
	// (AggregateTree every interval) to change-driven patching of one
	// persistent root (Coordinator.Refresh), and the snapshot route from
	// full-only to cursor-based delta serving — the coordinator then speaks
	// upward exactly the protocol it speaks downward, so stacked
	// coordinators pull deltas from it.
	incremental bool

	// siteClient and siteToken build the HTTP sites behind dynamic
	// registrations (POST /v1/sites), matching the statically configured
	// pulls.
	siteClient *http.Client
	siteToken  string

	// store, when non-nil, persists the merged root (with its
	// delta-serving epoch and version vector) and the dynamic membership
	// across restarts; see persist.go. persistIvl rate-limits root saves;
	// lastPersist is guarded by refreshMu like the saves themselves.
	store       ecmsketch.DurableStore
	persistIvl  time.Duration
	lastPersist time.Time

	// refreshMu serializes refresh calls (the ticker loop and POST
	// /v1/refresh): without it, a slow periodic pull finishing after a
	// forced refresh would publish the older view over the newer one.
	refreshMu sync.Mutex

	merged   atomic.Pointer[mergedView]
	pulls    atomic.Uint64
	pullErrs atomic.Uint64
	lastErr  atomic.Pointer[string]

	// standing evaluates continuous queries over the merged view: each
	// refresh hands the registry the fresh root plus the union of cells the
	// delta pulls replaced since the previous refresh, so only predicates
	// reading a changed cell are re-checked. Subscriptions here require
	// explicit key lists on top-k queries — a coordinator only ever sees
	// cell replacements, never raw keys to learn candidates from.
	standing *ecmsketch.StandingRegistry

	stop     chan struct{}
	stopOnce sync.Once
}

// mergedView is one published coordinator state: an immutable merged sketch
// plus its provenance.
type mergedView struct {
	sk       *ecmsketch.Sketch
	height   int
	pulledAt time.Time
}

func newCoordServer(co *ecmsketch.Coordinator, interval time.Duration) *coordServer {
	cs := &coordServer{
		co:       co,
		interval: interval,
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
	}
	cs.mux.HandleFunc("GET /v1/estimate", cs.handleEstimate)
	cs.mux.HandleFunc("GET /v1/selfjoin", cs.handleSelfJoin)
	cs.mux.HandleFunc("GET /v1/total", cs.handleTotal)
	cs.mux.HandleFunc("POST /v1/query", cs.handleQuery)
	cs.mux.HandleFunc("GET /v1/query", cs.handleQueryGet)
	cs.mux.HandleFunc("GET /v1/stats", cs.handleStats)
	cs.mux.HandleFunc("GET /v1/sketch", cs.handleSnapshot)
	cs.mux.HandleFunc("GET /v1/snapshot", cs.handleSnapshot)
	cs.mux.HandleFunc("POST /v1/refresh", cs.handleRefresh)
	cs.mux.HandleFunc("GET /v1/sites", cs.handleSitesGet)
	cs.mux.HandleFunc("POST /v1/sites", cs.handleSitesAdd)
	cs.mux.HandleFunc("DELETE /v1/sites", cs.handleSitesRemove)
	cs.standing = ecmsketch.NewStandingRegistry(ecmsketch.StandingConfig{RequireKeys: true})
	svc := &standing.Service{Reg: cs.standing}
	cs.mux.HandleFunc("POST /v1/subscribe", svc.HandleSubscribe)
	cs.mux.HandleFunc("DELETE /v1/subscribe", svc.HandleUnsubscribe)
	cs.mux.HandleFunc("GET /v1/watch", svc.HandleWatch)
	return cs
}

func (cs *coordServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { cs.mux.ServeHTTP(w, r) }

// mountProfiling registers net/http/pprof under /debug/pprof/ on the
// coordinator mux. runServe wraps the whole mux with the bearer check, so
// with -token set the profiling surface requires the token like every API
// route — it is never exposed unauthenticated on an authenticated server.
func (cs *coordServer) mountProfiling() {
	cs.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	cs.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	cs.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	cs.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	cs.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// refresh pulls and re-merges the sites once, publishing the new view on
// success and keeping the previous one (recording the error) on failure —
// a flaky site degrades freshness, never availability. Refreshes are
// serialized so views publish in pull order.
func (cs *coordServer) refresh() error {
	cs.refreshMu.Lock()
	defer cs.refreshMu.Unlock()
	var root *ecmsketch.Sketch
	var height int
	var err error
	if cs.incremental {
		// Change-driven: patch the coordinator's persistent root from the
		// cells the delta pulls replaced, then publish one clone of it for
		// lock-free queries. The root itself stays live for delta serving.
		if err = cs.co.Refresh(); err == nil {
			root, err = cs.co.Snapshot()
			height = 1
		}
	} else {
		root, height, err = cs.co.AggregateTree()
	}
	if err != nil {
		cs.pullErrs.Add(1)
		msg := err.Error()
		cs.lastErr.Store(&msg)
		return err
	}
	// The final merge advanced root to the sites' high-water tick; settle it
	// explicitly so every later query is a pure read no matter which site
	// shapes arrived.
	root.Advance(root.Now())
	cs.merged.Store(&mergedView{sk: root, height: height, pulledAt: time.Now()})
	cs.pulls.Add(1)
	cs.lastErr.Store(nil)
	// Swap the standing-query evaluator onto the fresh root and re-check
	// only the predicates whose cells the pulls replaced (delta pulls feed
	// cell-granular change sets; full pulls mark everything changed). The
	// window and advance policy come from the root itself, not flags.
	cs.standing.SetWindow(root.Params().WindowLength)
	cs.standing.SetStrictAdvance(root.Params().Algorithm == ecmsketch.AlgoRW)
	cells, all := cs.co.TakeChangedCells()
	cs.standing.RefreshTarget(root, cells, all)
	cs.maybePersistRoot()
	return nil
}

// run re-pulls on the configured interval until Close. A non-positive
// interval (tests construct the server without a loop) is clamped so a
// stray run call cannot panic the ticker.
func (cs *coordServer) run() {
	interval := cs.interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-cs.stop:
			return
		case <-t.C:
			if err := cs.refresh(); err != nil {
				log.Printf("ecmcoord: pull failed (serving previous view): %v", err)
			}
		}
	}
}

// Close stops the re-pull loop (a no-op if it was never started).
// Idempotent; in-flight refreshes finish on their own.
func (cs *coordServer) Close() {
	cs.stopOnce.Do(func() { close(cs.stop) })
}

// runServe is the CLI entry of server mode. A non-empty token puts the whole
// surface — watch streams included — behind a bearer check; non-empty
// certFile/keyFile serve TLS (the flags a NewPullClient with a matching root
// CA pool verifies from the pulling side).
func runServe(cs *coordServer, addr, token, certFile, keyFile string) {
	if err := cs.refresh(); err != nil {
		// Sites may simply not be up yet; the loop keeps retrying.
		log.Printf("ecmcoord: initial pull failed (will retry every %v): %v", cs.interval, err)
	}
	go cs.run()
	if cs.store != nil {
		// A clean shutdown saves the freshest root so the restart resumes
		// serving deltas from it; an unclean death just restores the last
		// interval save and re-pulls the difference.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			cs.persistRootNow()
			os.Exit(0)
		}()
	}
	mode := "tree re-merge"
	if cs.incremental {
		mode = "incremental re-merge"
	}
	log.Printf("ecmcoord serving merged view of %d sites on %s (re-pull every %v, %s)",
		len(cs.co.Sites()), addr, cs.interval, mode)
	handler := wire.RequireBearer(token, cs)
	if certFile != "" || keyFile != "" {
		log.Fatal(http.ListenAndServeTLS(addr, certFile, keyFile, handler))
	}
	log.Fatal(http.ListenAndServe(addr, handler))
}

// view returns the current merged view, or nil (and a 503) before the first
// successful pull.
func (cs *coordServer) view(w http.ResponseWriter) *mergedView {
	v := cs.merged.Load()
	if v == nil {
		msg := "no merged view yet (no successful site pull)"
		if e := cs.lastErr.Load(); e != nil {
			msg += ": last error: " + *e
		}
		coordError(w, http.StatusServiceUnavailable, msg)
		return nil
	}
	return v
}

// The /v1 request/reply conventions are the shared internal/wire codec —
// the same parser, error shape, ?strings=1 encoding and snapshot writer
// ecmserver uses, so the coordinator surface cannot drift from the site
// surface.
func coordError(w http.ResponseWriter, code int, msg string) {
	wire.Error(w, code, fmt.Errorf("%s", msg))
}

func coordRespond(w http.ResponseWriter, v any) { wire.Respond(w, v) }

// coordKey resolves ?key= (string, digested) or ?ikey= (decimal uint64).
func coordKey(r *http.Request) (uint64, error) { return wire.ParseKey(r) }

func coordRange(r *http.Request, v *mergedView) (uint64, error) {
	raw := r.URL.Query().Get("range")
	if raw == "" {
		return v.sk.Params().WindowLength, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad range: %v", err)
	}
	if n == 0 {
		return v.sk.Params().WindowLength, nil
	}
	return n, nil
}

func (cs *coordServer) handleEstimate(w http.ResponseWriter, r *http.Request) {
	v := cs.view(w)
	if v == nil {
		return
	}
	key, err := coordKey(r)
	if err != nil {
		coordError(w, http.StatusBadRequest, err.Error())
		return
	}
	rng, err := coordRange(r, v)
	if err != nil {
		coordError(w, http.StatusBadRequest, err.Error())
		return
	}
	coordRespond(w, map[string]any{"estimate": v.sk.Estimate(key, rng), "range": wire.U64Field(wire.WantStrings(r), rng)})
}

func (cs *coordServer) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	v := cs.view(w)
	if v == nil {
		return
	}
	rng, err := coordRange(r, v)
	if err != nil {
		coordError(w, http.StatusBadRequest, err.Error())
		return
	}
	coordRespond(w, map[string]any{"selfJoin": v.sk.SelfJoin(rng), "range": wire.U64Field(wire.WantStrings(r), rng)})
}

func (cs *coordServer) handleTotal(w http.ResponseWriter, r *http.Request) {
	v := cs.view(w)
	if v == nil {
		return
	}
	rng, err := coordRange(r, v)
	if err != nil {
		coordError(w, http.StatusBadRequest, err.Error())
		return
	}
	coordRespond(w, map[string]any{"total": v.sk.EstimateTotal(rng), "range": wire.U64Field(wire.WantStrings(r), rng)})
}

// handleQuery answers a batched multi-key query from the merged view, with
// the exact request semantics of ecmserver's POST /v1/query (shared strict
// parser: bounded token-streamed keys, duplicate/unknown fields rejected).
// The whole batch is evaluated against one published view, so the answers
// form a consistent cut of the merged stream as of the last pull.
func (cs *coordServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	v := cs.view(w)
	if v == nil {
		return
	}
	q, err := wire.ParseQueryBody(r.Body)
	if err != nil {
		coordError(w, http.StatusBadRequest, err.Error())
		return
	}
	cs.answerQuery(w, r, v, q)
}

// handleQueryGet answers the GET form of /v1/query — repeated key=/ikey=
// parameters plus range=, total=1, selfJoin=1 — sharing the parser with
// ecmserver's GET route so the two tiers speak one spelling.
func (cs *coordServer) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	v := cs.view(w)
	if v == nil {
		return
	}
	q, err := wire.ParseQueryParams(r)
	if err != nil {
		coordError(w, http.StatusBadRequest, err.Error())
		return
	}
	cs.answerQuery(w, r, v, q)
}

// answerQuery evaluates a parsed QueryBatch against one published view.
// ?direct=1 is honored for client uniformity: a coordinator has no stripes
// to route to — its published root already is the zero-extra-merge answer
// surface — so direct reads answer from the same view with the point-only
// contract applied (aggregates rejected, exactly as a site server rejects
// them), and a client flipping direct=1 sees one behavior at every tier.
func (cs *coordServer) answerQuery(w http.ResponseWriter, r *http.Request, v *mergedView, q ecmsketch.QueryBatch) {
	var res ecmsketch.QueryResult
	var err error
	if wire.WantDirect(r) {
		res, err = v.sk.QueryDirect(q)
		if err != nil {
			coordError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else if res, err = v.sk.QueryBatch(q); err != nil {
		coordError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := map[string]any{"now": res.Now, "range": res.Range}
	if res.Estimates == nil {
		res.Estimates = []float64{}
	}
	out["estimates"] = res.Estimates
	if q.Total {
		out["total"] = res.Total
	}
	if q.SelfJoin {
		out["selfJoin"] = res.SelfJoin
	}
	if wire.WantStrings(r) {
		out["now"] = strconv.FormatUint(res.Now, 10)
		out["range"] = strconv.FormatUint(res.Range, 10)
	}
	coordRespond(w, out)
}

// handleStats reports coordinator provenance: site count, tree height,
// merged clock/count, pull and network accounting. ?strings=1 encodes the
// 64-bit tick/count fields as decimal strings, as on ecmserver.
func (cs *coordServer) handleStats(w http.ResponseWriter, r *http.Request) {
	asStrings := wire.WantStrings(r)
	u64 := func(v uint64) any { return wire.U64Field(asStrings, v) }
	out := map[string]any{
		"role":        "coordinator",
		"sites":       len(cs.co.Sites()),
		"pulls":       u64(cs.pulls.Load()),
		"pullErrors":  u64(cs.pullErrs.Load()),
		"netBytes":    u64(uint64(cs.co.Network().Bytes())),
		"netMessages": u64(uint64(cs.co.Network().Messages())),
		"pulledBytes": u64(uint64(cs.co.PulledBytes())),
		"deltaPulls":  u64(cs.co.DeltaPulls()),
		"fullPulls":   u64(cs.co.FullPulls()),
		"apiVersion":  "v1",
	}
	if cs.incremental {
		out["mode"] = "incremental"
		lr := cs.co.LastRefresh()
		out["lastRefresh"] = map[string]any{
			"round":        u64(lr.Round),
			"contributors": lr.Contributors,
			"stale":        lr.Stale,
			"excluded":     lr.Excluded,
			"pulledBytes":  u64(uint64(lr.PulledBytes)),
			"changedCells": lr.ChangedCells,
			"rebuiltAll":   lr.RebuiltAll,
			// The root patch's wall time and the worker-pool size its cell
			// replay fanned across (1 = sequential): the effective
			// parallelism of the merge step, per round.
			"merge_ns": u64(uint64(lr.MergeNs)),
			"workers":  lr.Workers,
		}
	} else {
		out["mode"] = "tree"
	}
	if cs.store != nil {
		cs.refreshMu.Lock()
		last := cs.lastPersist
		cs.refreshMu.Unlock()
		dur := map[string]any{"enabled": true}
		if !last.IsZero() {
			dur["lastPersistUnixMs"] = u64(uint64(last.UnixMilli()))
		}
		out["durability"] = dur
	} else {
		out["durability"] = map[string]any{"enabled": false}
	}
	subs, queries, watchers, dropped := cs.standing.Stats()
	out["standing"] = map[string]any{
		"subscriptions": subs,
		"queries":       queries,
		"watchers":      watchers,
		"dropped":       u64(dropped),
	}
	if e := cs.lastErr.Load(); e != nil {
		out["lastError"] = *e
	}
	if v := cs.merged.Load(); v != nil {
		out["height"] = v.height
		out["now"] = u64(v.sk.Now())
		out["count"] = u64(v.sk.Count())
		out["window"] = u64(v.sk.Params().WindowLength)
		out["pulledAtUnixMs"] = u64(uint64(v.pulledAt.UnixMilli()))
	}
	coordRespond(w, out)
}

// handleSnapshot ships the merged view's bytes, making the coordinator
// pullable by a higher-level coordinator (or persistable with curl), with
// gzip honored for WAN hierarchies.
//
// In incremental mode the route also speaks the delta protocol upward:
// ?since=<cursor> is answered from the persistent root — whose cells
// Refresh patches through ordinary arrival mutations, so their versions
// track exactly what changed — with an incremental payload (X-Ecm-Delta:
// delta) or a re-baselining full one, plus the X-Ecm-Cursor to present next
// time. A stacked parent coordinator therefore pulls cell-granular deltas
// from this coordinator through the same receiver path it uses against
// leaf servers. In tree mode (the wholesale re-merge) there is no change
// tracking to serve; ?since= gets a cursorless full reply and a
// delta-pulling parent degrades to full pulls, which is correct.
func (cs *coordServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if sinceRaw, ok := r.URL.Query()["since"]; ok && cs.incremental {
		var since ecmsketch.Cursor
		if len(sinceRaw) > 0 {
			// An unparsable cursor is an unrecognized one: reply full.
			since, _ = ecmsketch.ParseCursor(sinceRaw[0])
		}
		payload, cur, full, err := cs.co.DeltaSnapshot(since)
		if err != nil {
			// The only error surface is "no merged view yet" — same 503
			// contract as the query routes.
			coordError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		kind := wire.KindDelta
		if full {
			kind = wire.KindFull
		}
		meta := wire.SnapshotMeta{Cursor: cur.String(), Kind: kind}
		if v := cs.merged.Load(); v != nil {
			meta.Now, meta.Count = v.sk.Now(), v.sk.Count()
		}
		wire.WriteSnapshot(w, r, payload, meta)
		return
	}
	v := cs.view(w)
	if v == nil {
		return
	}
	wire.WriteSnapshot(w, r, v.sk.Marshal(), wire.SnapshotMeta{Now: v.sk.Now(), Count: v.sk.Count()})
}

// handleSitesGet reports the membership with per-site health: consecutive
// failures, backoff rounds left before the next probe, and whether a
// retained baseline lets the site keep contributing while unreachable.
func (cs *coordServer) handleSitesGet(w http.ResponseWriter, r *http.Request) {
	statuses := cs.co.SiteStatuses()
	sites := make([]map[string]any, len(statuses))
	for i, st := range statuses {
		e := map[string]any{
			"name":          st.Name,
			"healthy":       st.Healthy,
			"failures":      st.Failures,
			"backoffRounds": st.BackoffRounds,
			"hasBaseline":   st.HasBaseline,
		}
		if st.LastError != "" {
			e["lastError"] = st.LastError
		}
		sites[i] = e
	}
	coordRespond(w, map[string]any{"sites": sites})
}

// handleSitesAdd registers a site at runtime: POST /v1/sites with
// {"url": "http://host:port"} (optional "name" for a stable identity across
// re-registrations at new addresses). The site joins the next pull round;
// re-registering an existing name replaces the member and re-bootstraps it
// from a full baseline.
func (cs *coordServer) handleSitesAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL  string `json:"url"`
		Name string `json:"name"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		coordError(w, http.StatusBadRequest, "bad site registration: "+err.Error())
		return
	}
	if req.URL == "" {
		coordError(w, http.StatusBadRequest, "site registration requires a url")
		return
	}
	if _, err := url.ParseRequestURI(req.URL); err != nil {
		coordError(w, http.StatusBadRequest, "bad site url: "+err.Error())
		return
	}
	site := ecmsketch.NewHTTPSiteWithAuth(req.URL, cs.siteClient, cs.siteToken)
	if req.Name != "" {
		site.(interface{ SetName(string) }).SetName(req.Name)
	}
	cs.co.AddSite(site)
	cs.persistSites()
	coordRespond(w, map[string]any{"ok": true, "sites": len(cs.co.Sites())})
}

// handleSitesRemove drops the member named by ?name= (the site's base URL
// unless it registered under an explicit name). The next refresh rebuilds
// the merged view without its contribution.
func (cs *coordServer) handleSitesRemove(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		coordError(w, http.StatusBadRequest, "?name= is required")
		return
	}
	if !cs.co.RemoveSite(name) {
		coordError(w, http.StatusNotFound, "no site named "+name)
		return
	}
	cs.persistSites()
	coordRespond(w, map[string]any{"ok": true, "sites": len(cs.co.Sites())})
}

// handleRefresh forces an immediate re-pull: POST /v1/refresh. Deployments
// use it after known site catch-ups; tests use it for determinism.
func (cs *coordServer) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if err := cs.refresh(); err != nil {
		coordError(w, http.StatusBadGateway, err.Error())
		return
	}
	v := cs.merged.Load()
	coordRespond(w, map[string]any{"ok": true, "count": v.sk.Count(), "now": v.sk.Now()})
}
