package main

// End-to-end tests of the PR-8 serve-mode surface: a stacked coordinator
// hierarchy pulling deltas over real HTTP, the dynamic-membership routes,
// and TLS on both hops.

import (
	"bytes"
	"crypto/x509"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/ecmclient"
	"ecmsketch/ecmserver"
)

// newIncrementalCoordServer builds a serve-mode coordinator in the
// incremental+delta configuration the CLI defaults to, over the given site
// URLs, without starting the re-pull loop.
func newIncrementalCoordServer(t *testing.T, client *http.Client, siteURLs []string) *coordServer {
	t.Helper()
	co := newCoordinator(client, siteURLs, "")
	co.SetDeltaPulls(true)
	co.SetResilient(true)
	cs := newCoordServer(co, 0)
	cs.incremental = true
	cs.siteClient = client
	t.Cleanup(cs.Close)
	return cs
}

// mutateSites trickles a few arrivals into every site engine and advances
// the shared clock — the slow-moving regime deltas exist for.
func mutateSites(sites []*httptest.Server, round int) {
	tick := uint64(2000 + round*100)
	for i, ts := range sites {
		eng := ts.Config.Handler.(*ecmserver.Server).Engine()
		for k := 0; k < 3; k++ {
			eng.Add(uint64(round*17+k+i*500), tick)
		}
		eng.Advance(tick + 50)
	}
}

// TestStackedCoordServersShipDeltas is the tentpole over real HTTP: leaf
// ecmserver sites → a mid coordinator (incremental) → a top coordinator
// pulling the mid one. After bootstrap, the top coordinator's pulls from the
// mid tier are cursor-based deltas a fraction of the full view's size, and
// every level's view stays byte-identical to the level below's.
func TestStackedCoordServersShipDeltas(t *testing.T) {
	sites := newEcmserverSites(t, 3)
	mid := newIncrementalCoordServer(t, http.DefaultClient,
		[]string{sites[0].URL, sites[1].URL, sites[2].URL})
	if err := mid.refresh(); err != nil {
		t.Fatal(err)
	}
	midFront := httptest.NewServer(mid)
	defer midFront.Close()

	top := newIncrementalCoordServer(t, http.DefaultClient, []string{midFront.URL})
	if err := top.refresh(); err != nil {
		t.Fatal(err)
	}

	var fullSize, steadyDelta int64
	for round := 1; round < 6; round++ {
		mutateSites(sites, round)
		if err := mid.refresh(); err != nil {
			t.Fatalf("round %d: mid refresh: %v", round, err)
		}
		before := top.co.PulledBytes()
		if err := top.refresh(); err != nil {
			t.Fatalf("round %d: top refresh: %v", round, err)
		}
		pulled := top.co.PulledBytes() - before
		if round >= 2 {
			steadyDelta += pulled
		}
		// Top view == the mid coordinator's served snapshot, re-merged: pull
		// the mid snapshot and flat-merge it the way the top tier does.
		resp, err := http.Get(midFront.URL + "/v1/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		payload := new(bytes.Buffer)
		payload.ReadFrom(resp.Body)
		resp.Body.Close()
		midView, err := ecmsketch.Unmarshal(payload.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := top.merged.Load().sk.Count(), midView.Count(); got != want {
			t.Fatalf("round %d: top count %d != mid count %d", round, got, want)
		}
	}
	fullSize = int64(mid.merged.Load().sk.WireSize())
	if got := top.co.DeltaPulls(); got < 4 {
		t.Fatalf("top coordinator made %d delta pulls, want ≥4", got)
	}
	if avg := steadyDelta / 4; avg*5 > fullSize {
		t.Fatalf("steady-state top-tier pull %d bytes/round, not ≥5× below full %d", avg, fullSize)
	}

	// The mid coordinator's ?since= route speaks the wire protocol: a
	// bootstrap pull is full and carries a cursor; presenting it back yields
	// a delta reply.
	resp, err := http.Get(midFront.URL + "/v1/snapshot?since=")
	if err != nil {
		t.Fatal(err)
	}
	cur := resp.Header.Get("X-Ecm-Cursor")
	kind := resp.Header.Get("X-Ecm-Delta")
	resp.Body.Close()
	if cur == "" || kind != "full" {
		t.Fatalf("bootstrap ?since=: cursor %q kind %q, want cursor + full", cur, kind)
	}
	mutateSites(sites, 9)
	if err := mid.refresh(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(midFront.URL + "/v1/snapshot?since=" + cur)
	if err != nil {
		t.Fatal(err)
	}
	kind = resp.Header.Get("X-Ecm-Delta")
	resp.Body.Close()
	if kind != "delta" {
		t.Fatalf("?since=<cursor> answered %q, want delta", kind)
	}
}

// TestCoordServerSitesRoutes drives the membership surface over HTTP: list,
// register, re-register, remove, and the error shapes — via raw requests and
// the typed ecmclient helpers.
func TestCoordServerSitesRoutes(t *testing.T) {
	sites := newEcmserverSites(t, 3)
	cs := newIncrementalCoordServer(t, http.DefaultClient, []string{sites[0].URL})
	if err := cs.refresh(); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cs)
	defer front.Close()
	cl := ecmclient.New(front.URL)

	infos, err := cl.Sites()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != sites[0].URL || !infos[0].Healthy {
		t.Fatalf("initial membership = %+v", infos)
	}

	// Register two more sites, one under an explicit name.
	if err := cl.RegisterSite(sites[1].URL, ""); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterSite(sites[2].URL, "named-site"); err != nil {
		t.Fatal(err)
	}
	if err := cs.refresh(); err != nil {
		t.Fatal(err)
	}
	if got := cs.merged.Load().sk.Count(); got != 9000 {
		t.Fatalf("count after registration = %d, want 9000 (3 sites × 3000)", got)
	}
	infos, _ = cl.Sites()
	if len(infos) != 3 || infos[2].Name != "named-site" {
		t.Fatalf("membership after adds = %+v", infos)
	}

	// Remove one; the view sheds its contribution on the next refresh.
	if err := cl.UnregisterSite(sites[1].URL); err != nil {
		t.Fatal(err)
	}
	if err := cs.refresh(); err != nil {
		t.Fatal(err)
	}
	if got := cs.merged.Load().sk.Count(); got != 6000 {
		t.Fatalf("count after removal = %d, want 6000", got)
	}

	// Error shapes: bad JSON, missing url, unknown fields, absent name.
	for _, body := range []string{`{`, `{}`, `{"url":"http://x","bogus":1}`, `{"url":"not a url"}`} {
		resp, err := http.Post(front.URL+"/v1/sites", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST /v1/sites %q: %s, want 400", body, resp.Status)
		}
	}
	if err := cl.UnregisterSite("never-registered"); err == nil {
		t.Fatal("removing an unknown site should fail")
	}
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/v1/sites", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("DELETE without ?name=: %s, want 400", resp.Status)
	}

	// Stats carry the incremental-mode provenance.
	sr, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(sr.Body).Decode(&stats)
	sr.Body.Close()
	if stats["mode"] != "incremental" {
		t.Fatalf("stats mode = %v, want incremental", stats["mode"])
	}
	if _, ok := stats["lastRefresh"].(map[string]any); !ok {
		t.Fatalf("stats lastRefresh missing: %v", stats)
	}
}

// TestTLSRoundTrip pins the TLS surface end to end with a private CA: an
// ecmserver site behind TLS, pulled by a coordinator whose shared pull
// client trusts the test CA (the -site-ca path), itself queried by an
// ecmclient configured via WithRootCAs — and failing closed without the CA.
func TestTLSRoundTrip(t *testing.T) {
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: 21, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 600; e++ {
		srv.Engine().Add(uint64(e%31), uint64(e/2+1))
	}
	srv.Engine().Advance(500)
	site := httptest.NewTLSServer(srv)
	defer site.Close()

	roots := x509.NewCertPool()
	roots.AddCert(site.Certificate())

	// Without the CA the pull fails closed.
	if _, _, err := PullAndMerge(ecmsketch.NewPullClient(5*time.Second, nil), []string{site.URL}); err == nil {
		t.Fatal("pull of TLS site without its CA succeeded")
	}

	client := ecmsketch.NewPullClient(5*time.Second, roots)
	cs := newIncrementalCoordServer(t, client, []string{site.URL})
	if err := cs.refresh(); err != nil {
		t.Fatalf("TLS pull: %v", err)
	}
	if got := cs.merged.Load().sk.Count(); got != 600 {
		t.Fatalf("count over TLS = %d, want 600", got)
	}

	// Serve the coordinator itself over TLS and query it with the typed
	// client trusting the same test CA.
	front := httptest.NewTLSServer(cs)
	defer front.Close()
	frontRoots := x509.NewCertPool()
	frontRoots.AddCert(front.Certificate())
	cl := ecmclient.New(front.URL, ecmclient.WithRootCAs(frontRoots))
	st, err := cl.FetchStats()
	if err != nil {
		t.Fatalf("ecmclient over TLS: %v", err)
	}
	if st.Count != 600 {
		t.Fatalf("client stats count = %d, want 600", st.Count)
	}
	if _, err := ecmclient.New(front.URL).FetchStats(); err == nil {
		t.Fatal("client without the CA should fail closed")
	}

	// And a second-tier coordinator pulls the TLS-served coordinator too —
	// TLS on both hops of the hierarchy.
	top := newIncrementalCoordServer(t, ecmsketch.NewPullClient(5*time.Second, frontRoots), []string{front.URL})
	if err := top.refresh(); err != nil {
		t.Fatalf("stacked TLS pull: %v", err)
	}
	if got := top.merged.Load().sk.Count(); got != 600 {
		t.Fatalf("stacked TLS count = %d, want 600", got)
	}
}
