package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/ecmserver"
	"ecmsketch/internal/standing"
)

// The standing-query wire surface is mounted on two servers — ecmserver
// (site) and ecmcoord -serve (coordinator) — through the same
// standing.Service. These lifecycle tests are table-driven over both
// surfaces so the subscribe/watch/resume contract cannot drift between
// them: each surface provides its handler, its registry, and a fire hook
// that causes exactly one rising crossing of the watched key per call.

type standingSurface struct {
	name    string
	handler http.Handler
	reg     *ecmsketch.StandingRegistry
	// fire triggers exactly one rising threshold crossing on key 42
	// (threshold 50) per call.
	fire func(t *testing.T)
}

func standingSurfaces(t *testing.T) []*standingSurface {
	t.Helper()
	const window = 10_000

	// Site surface: a real ecmserver; crossings are driven by ingest, and
	// the disarm between fires is a window-sliding advance.
	srv := newTestSite(t, window)
	var siteTick uint64
	site := &standingSurface{
		name:    "ecmserver",
		handler: srv,
		reg:     srv.Standing(),
		fire: func(t *testing.T) {
			siteTick++
			srv.Engine().AddBatch([]ecmsketch.Event{{Key: 42, Tick: siteTick, N: 100}})
			siteTick += window + 1
			srv.Engine().Advance(siteTick)
		},
	}

	// Coordinator surface: two engines behind local sites, delta pulls on;
	// crossings are driven by mutating a site and forcing a refresh, so the
	// registry evaluates on the delta-apply path.
	engines := make([]*ecmsketch.Sharded, 2)
	sites := make([]ecmsketch.Site, 2)
	for i := range engines {
		eng, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
			Params: ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: window, Seed: 7},
			Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		sites[i] = ecmsketch.NewLocalSite(fmt.Sprintf("site-%d", i), eng)
	}
	co := ecmsketch.NewCoordinator(sites...)
	co.SetDeltaPulls(true)
	cs := newCoordServer(co, time.Hour)
	t.Cleanup(cs.Close)
	if err := cs.refresh(); err != nil {
		t.Fatal(err)
	}
	var coordTick uint64
	coord := &standingSurface{
		name:    "ecmcoord",
		handler: cs,
		reg:     cs.standing,
		fire: func(t *testing.T) {
			// t.Errorf, not Fatal: fire also runs on non-test goroutines.
			coordTick++
			engines[0].AddBatch([]ecmsketch.Event{{Key: 42, Tick: coordTick, N: 100}})
			if err := cs.refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
			coordTick += window + 1
			engines[0].Advance(coordTick)
			engines[1].Advance(coordTick)
			if err := cs.refresh(); err != nil {
				t.Errorf("refresh: %v", err)
			}
		},
	}
	return []*standingSurface{site, coord}
}

func newTestSite(t *testing.T, window uint64) *ecmserver.Server {
	t.Helper()
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon: 0.05, Delta: 0.05, WindowLength: window, Algorithm: "eh", Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// sseClient is one watch stream over a real HTTP connection.
type sseClient struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openWatch(t *testing.T, base, sub string, resume uint64, withResume bool) (*sseClient, error) {
	t.Helper()
	u := base + "/v1/watch?sub=" + sub
	if withResume {
		u += fmt.Sprintf("&resume=%d", resume)
	}
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("watch: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	return &sseClient{resp: resp, sc: sc}, nil
}

func (c *sseClient) close() { c.resp.Body.Close() }

// next reads one complete SSE event (skipping keep-alive comments).
// Returns event "" on stream end.
func (c *sseClient) next() (event, data string) {
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case line == "":
			if event != "" {
				return event, data
			}
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return "", ""
}

func (c *sseClient) expectHello(t *testing.T) {
	t.Helper()
	if ev, _ := c.next(); ev != "hello" {
		t.Fatalf("first event %q, want hello", ev)
	}
}

func (c *sseClient) expectNotify(t *testing.T) standing.Notification {
	t.Helper()
	ev, data := c.next()
	if ev != "notify" {
		t.Fatalf("event %q (data %q), want notify", ev, data)
	}
	n, err := standing.ParseNotificationJSON([]byte(data))
	if err != nil {
		t.Fatalf("bad notify payload %q: %v", data, err)
	}
	return n
}

func subscribeKey42(t *testing.T, s *standingSurface) ecmsketch.StandingSubscription {
	t.Helper()
	info, err := s.reg.Subscribe([]ecmsketch.StandingQuery{
		{Kind: ecmsketch.StandingThreshold, Key: 42, Value: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestStandingReconnectResume pins the no-dup/no-miss resume contract on
// both surfaces: receive a few, get kicked, miss a few while disconnected,
// reconnect with resume and receive exactly the missed ones.
func TestStandingReconnectResume(t *testing.T) {
	for _, s := range standingSurfaces(t) {
		t.Run(s.name, func(t *testing.T) {
			ts := httptest.NewServer(s.handler)
			defer ts.Close()
			info := subscribeKey42(t, s)

			c, err := openWatch(t, ts.URL, info.ID, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			c.expectHello(t)
			var last uint64
			for i := 0; i < 3; i++ {
				s.fire(t)
				n := c.expectNotify(t)
				if n.Seq != uint64(i+1) {
					t.Fatalf("live stream seq %d, want %d", n.Seq, i+1)
				}
				last = n.Seq
			}

			// Server sheds the connection; the stream ends without a bye.
			s.reg.Kick(info.ID)
			if ev, _ := c.next(); ev != "" {
				t.Fatalf("kicked stream sent %q, want clean end", ev)
			}
			c.close()

			// Crossings keep firing while nobody is attached.
			for i := 0; i < 2; i++ {
				s.fire(t)
			}

			// Reconnect with resume: the ring replays 4 and 5, no dup of 1-3,
			// no gap marker.
			c2, err := openWatch(t, ts.URL, info.ID, last, true)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.close()
			c2.expectHello(t)
			for want := last + 1; want <= last+2; want++ {
				n := c2.expectNotify(t)
				if n.Seq != want {
					t.Fatalf("resumed stream seq %d, want %d (no dup, no miss)", n.Seq, want)
				}
			}
			// And the stream is live again.
			s.fire(t)
			if n := c2.expectNotify(t); n.Seq != last+3 {
				t.Fatalf("post-resume live seq %d, want %d", n.Seq, last+3)
			}
		})
	}
}

// TestStandingDroppedMarker pins the explicit-gap contract: resuming past
// the replay ring's horizon yields a dropped marker naming the miss count
// before the retained notifications.
func TestStandingDroppedMarker(t *testing.T) {
	for _, s := range standingSurfaces(t) {
		t.Run(s.name, func(t *testing.T) {
			s.reg.SetLimits(4, 0) // 4-slot ring so the horizon is easy to cross
			ts := httptest.NewServer(s.handler)
			defer ts.Close()
			info := subscribeKey42(t, s)

			for i := 0; i < 7; i++ {
				s.fire(t)
			}
			// Resume from 0: seqs 1-3 are out of horizon (ring holds 4-7).
			c, err := openWatch(t, ts.URL, info.ID, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			defer c.close()
			c.expectHello(t)
			ev, data := c.next()
			if ev != "dropped" {
				t.Fatalf("first post-hello event %q (data %q), want dropped", ev, data)
			}
			if !strings.Contains(data, `"missed":3`) {
				t.Fatalf("dropped marker %q, want missed=3", data)
			}
			for want := uint64(4); want <= 7; want++ {
				if n := c.expectNotify(t); n.Seq != want {
					t.Fatalf("replay seq %d, want %d", n.Seq, want)
				}
			}
		})
	}
}

// TestStandingUnsubscribeSaysBye: removing the subscription ends attached
// streams with a bye frame, and later watches 404.
func TestStandingUnsubscribeSaysBye(t *testing.T) {
	for _, s := range standingSurfaces(t) {
		t.Run(s.name, func(t *testing.T) {
			ts := httptest.NewServer(s.handler)
			defer ts.Close()
			info := subscribeKey42(t, s)
			c, err := openWatch(t, ts.URL, info.ID, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			defer c.close()
			c.expectHello(t)

			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscribe?sub="+info.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("unsubscribe: %s", resp.Status)
			}
			if ev, _ := c.next(); ev != "bye" {
				t.Fatalf("event %q, want bye", ev)
			}
			if _, err := openWatch(t, ts.URL, info.ID, 0, false); err == nil {
				t.Fatal("watch after unsubscribe succeeded, want 404")
			}
		})
	}
}

// TestStandingLifecycleChurn hammers subscribe/watch/unsubscribe over real
// HTTP connections while crossings fire; meaningful under -race.
func TestStandingLifecycleChurn(t *testing.T) {
	for _, s := range standingSurfaces(t) {
		t.Run(s.name, func(t *testing.T) {
			ts := httptest.NewServer(s.handler)
			defer ts.Close()

			stop := make(chan struct{})
			var fires sync.WaitGroup
			fires.Add(1)
			go func() {
				defer fires.Done()
				for {
					select {
					case <-stop:
						return
					default:
						s.fire(t)
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						info, err := s.reg.Subscribe([]ecmsketch.StandingQuery{
							{Kind: ecmsketch.StandingThreshold, Key: 42, Value: 50},
						})
						if err != nil {
							t.Error(err)
							return
						}
						c, err := openWatch(t, ts.URL, info.ID, 0, false)
						if err != nil {
							t.Error(err)
							return
						}
						if ev, _ := c.next(); ev != "hello" {
							t.Errorf("first event %q, want hello", ev)
							c.close()
							return
						}
						if i%2 == 0 {
							s.reg.Kick(info.ID)
						}
						c.close()
						if !s.reg.Unsubscribe(info.ID) {
							t.Error("subscription vanished")
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			fires.Wait()
			if subs, _, _, _ := s.reg.Stats(); subs != 0 {
				t.Fatalf("%d subscriptions leaked", subs)
			}
		})
	}
}
