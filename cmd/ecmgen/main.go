// Command ecmgen writes a synthetic event stream as CSV ("key,tick" or
// "key,tick,site"), in the wc'98-like / snmp-like shapes of the experiment
// harness or fully custom. The output feeds ecmserve's /batch endpoint or
// any offline analysis.
//
// Usage:
//
//	ecmgen -preset wc98 -events 100000 > stream.csv
//	ecmgen -events 50000 -keys 4096 -skew 1.2 -sites 8 -duration 500000 -with-site
//	curl --data-binary @stream.csv http://localhost:8080/batch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"ecmsketch/internal/workload"
)

func main() {
	var (
		preset   = flag.String("preset", "", "wc98 | snmp | empty for custom")
		events   = flag.Int("events", 100000, "stream length")
		duration = flag.Uint64("duration", 2_000_000, "tick span")
		keys     = flag.Int("keys", 1<<15, "key domain size (custom preset)")
		skew     = flag.Float64("skew", 1.0, "Zipf exponent of key popularity (custom)")
		sites    = flag.Int("sites", 1, "number of sites (custom)")
		siteSkew = flag.Float64("site-skew", 0, "Zipf exponent of site load (custom)")
		diurnal  = flag.Bool("diurnal", false, "sinusoidal arrival-rate modulation (custom)")
		seed     = flag.Int64("seed", 1, "random seed")
		withSite = flag.Bool("with-site", false, "emit key,tick,site instead of key,tick")
		keyFmt   = flag.String("key-format", "k%d", "printf format turning the key rank into the emitted key")
	)
	flag.Parse()
	gen, err := build(*preset, *events, *duration, *keys, *skew, *sites, *siteSkew, *diurnal, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecmgen:", err)
		os.Exit(1)
	}
	if err := emit(os.Stdout, gen, *withSite, *keyFmt); err != nil {
		fmt.Fprintln(os.Stderr, "ecmgen:", err)
		os.Exit(1)
	}
}

func build(preset string, events int, duration uint64, keys int, skew float64, sites int, siteSkew float64, diurnal bool, seed int64) (*workload.Generator, error) {
	switch preset {
	case "wc98":
		return workload.WorldCup98Like(events, duration, seed)
	case "snmp":
		return workload.SNMPLike(events, duration, seed)
	case "":
		return workload.NewGenerator(workload.Config{
			Events:    events,
			Duration:  duration,
			KeyDomain: keys,
			Skew:      skew,
			Sites:     sites,
			SiteSkew:  siteSkew,
			Diurnal:   diurnal,
			Seed:      seed,
		})
	default:
		return nil, fmt.Errorf("unknown preset %q (want wc98, snmp or empty)", preset)
	}
}

func emit(w io.Writer, gen *workload.Generator, withSite bool, keyFmt string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for {
		ev, ok := gen.Next()
		if !ok {
			break
		}
		var err error
		if withSite {
			_, err = fmt.Fprintf(bw, keyFmt+",%d,%d\n", ev.Key, ev.Time, ev.Site)
		} else {
			_, err = fmt.Fprintf(bw, keyFmt+",%d\n", ev.Key, ev.Time)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
