package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestBuildPresets(t *testing.T) {
	for _, preset := range []string{"wc98", "snmp", ""} {
		g, err := build(preset, 100, 1000, 64, 1.0, 2, 0, false, 1)
		if err != nil {
			t.Fatalf("build(%q): %v", preset, err)
		}
		if g.Remaining() != 100 {
			t.Errorf("preset %q: %d events", preset, g.Remaining())
		}
	}
	if _, err := build("bogus", 100, 1000, 64, 1.0, 2, 0, false, 1); err == nil {
		t.Error("bogus preset accepted")
	}
	if _, err := build("", 0, 1000, 64, 1.0, 2, 0, false, 1); err == nil {
		t.Error("zero events accepted")
	}
}

func TestEmitFormat(t *testing.T) {
	g, err := build("", 50, 500, 16, 1.0, 3, 0, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := emit(&sb, g, false, "k%d"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		lines++
		parts := strings.Split(sc.Text(), ",")
		if len(parts) != 2 {
			t.Fatalf("line %q: want key,tick", sc.Text())
		}
		if !strings.HasPrefix(parts[0], "k") {
			t.Fatalf("key %q missing format prefix", parts[0])
		}
	}
	if lines != 50 {
		t.Errorf("emitted %d lines, want 50", lines)
	}
}

func TestEmitWithSite(t *testing.T) {
	g, err := build("", 20, 200, 16, 1.0, 3, 0, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := emit(&sb, g, true, "%d"); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if parts := strings.Split(line, ","); len(parts) != 3 {
			t.Fatalf("line %q: want key,tick,site", line)
		}
	}
}

func TestEmitDeterministic(t *testing.T) {
	render := func() string {
		g, err := build("wc98", 200, 5000, 0, 0, 0, 0, false, 42)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := emit(&sb, g, true, "%d"); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Error("same seed produced different streams")
	}
}
