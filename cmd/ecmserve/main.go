// Command ecmserve runs an ECM-sketch behind a small HTTP API, the shape a
// monitoring site would deploy: collectors POST arrivals, dashboards GET
// sliding-window estimates, and a coordinator can pull the serialized sketch
// to aggregate several sites (see cmd/ecmcoord in EXPERIMENTS.md workflows,
// or ecmsketch.Merge programmatically).
//
// Usage:
//
//	ecmserve -addr :8080 -epsilon 0.02 -delta 0.01 -window 3600000
//
// Endpoints (see handler docs below): POST /add, POST /batch,
// GET /estimate, GET /selfjoin, GET /total, GET /stats, GET /sketch.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		epsilon = flag.Float64("epsilon", 0.02, "total error budget")
		delta   = flag.Float64("delta", 0.01, "failure probability")
		window  = flag.Uint64("window", 3_600_000, "window length in ticks")
		algo    = flag.String("algo", "eh", "counter algorithm: eh|dw|rw")
		ubound  = flag.Uint64("ubound", 0, "u(N,S) arrival bound (waves; 0 = window length)")
		seed    = flag.Uint64("seed", 1, "hash seed (sites to be merged must share it)")
		topk    = flag.Int("topk", 0, "track the N hottest keys and serve GET /topk (0 = off)")
	)
	flag.Parse()
	srv, err := NewServer(ServerConfig{
		Epsilon:      *epsilon,
		Delta:        *delta,
		WindowLength: *window,
		Algorithm:    *algo,
		UpperBound:   *ubound,
		Seed:         *seed,
		TopK:         *topk,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecmserve:", err)
		os.Exit(1)
	}
	log.Printf("ecmserve listening on %s (eps=%v delta=%v window=%d algo=%s)",
		*addr, *epsilon, *delta, *window, *algo)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
