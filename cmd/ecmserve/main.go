// Command ecmserve runs a sharded ECM-sketch engine behind the versioned
// HTTP API of package ecmserver: collectors POST arrivals, dashboards GET
// sliding-window estimates, and a coordinator can pull the serialized
// sketch to aggregate several sites (see cmd/ecmcoord, or ecmsketch.Merge
// programmatically). The typed Go client for this API is package ecmclient.
//
// Usage:
//
//	ecmserve -addr :8080 -epsilon 0.02 -delta 0.01 -window 3600000 -shards 8
//
// Endpoints (see ecmserver handler docs): POST /v1/add, POST /v1/batch,
// POST /v1/events, GET /v1/estimate, GET /v1/interval, GET /v1/selfjoin,
// GET /v1/total, GET /v1/stats, GET /v1/sketch, POST /v1/advance, and
// GET /v1/topk with -topk. The unversioned paths remain as aliases.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecmsketch/ecmserver"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		epsilon = flag.Float64("epsilon", 0.02, "total error budget")
		delta   = flag.Float64("delta", 0.01, "failure probability")
		window  = flag.Uint64("window", 3_600_000, "window length in ticks")
		algo    = flag.String("algo", "eh", "counter algorithm: eh|dw|rw")
		ubound  = flag.Uint64("ubound", 0, "u(N,S) arrival bound (waves; 0 = window length)")
		seed    = flag.Uint64("seed", 1, "hash seed (sites to be merged must share it)")
		topk    = flag.Int("topk", 0, "track the N hottest keys and serve GET /v1/topk (0 = off)")
		shards  = flag.Int("shards", 0, "ingest lock stripes (0 = GOMAXPROCS)")
		ttl     = flag.Duration("merge-ttl", 250*time.Millisecond, "staleness bound of cached global-query view (0 = always fresh)")
		refresh = flag.Duration("refresh", 0, "background merged-view refresh period (0 = rebuild on the reader that trips merge-ttl)")
		token   = flag.String("token", "", "require this bearer token on every request (empty = open)")
		tlsCert = flag.String("tls-cert", "", "serve TLS with this certificate file (requires -tls-key); pullers trusting a private CA pass it to ecmcoord -site-ca or ecmclient.WithRootCAs")
		tlsKey  = flag.String("tls-key", "", "private key file for -tls-cert")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (behind -token auth when set)")
		dataDir = flag.String("data-dir", "", "persist epoch, snapshots, and a batch WAL under this directory; a restart replays to the pre-crash state and keeps serving deltas (empty = memory only)")
		snapIvl = flag.Duration("snapshot-interval", time.Minute, "how often to fold the WAL into a fresh snapshot (requires -data-dir)")
		walSync = flag.Duration("wal-sync", 0, "group-commit WAL fsync period; 0 fsyncs every batch (requires -data-dir)")
	)
	flag.Parse()
	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "ecmserve: -tls-cert and -tls-key must be set together")
		os.Exit(2)
	}
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon:          *epsilon,
		Delta:            *delta,
		WindowLength:     *window,
		Algorithm:        *algo,
		UpperBound:       *ubound,
		Seed:             *seed,
		TopK:             *topk,
		Shards:           *shards,
		MergeTTL:         *ttl,
		RefreshInterval:  *refresh,
		AuthToken:        *token,
		EnableProfiling:  *pprofOn,
		DataDir:          *dataDir,
		SnapshotInterval: *snapIvl,
		WALSyncInterval:  *walSync,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecmserve:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		// SIGINT/SIGTERM write a final checkpoint so the next start replays
		// nothing; an unclean death is covered by WAL replay instead.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := srv.Close(); err != nil {
				log.Printf("ecmserve: shutdown checkpoint: %v", err)
			}
			os.Exit(0)
		}()
		ds := srv.Engine().DurabilityStats()
		log.Printf("ecmserve durable state in %s (epoch=%x recovered=%v replayed=%d records)",
			*dataDir, ds.Epoch, ds.Recovered, ds.ReplayedRecords)
	}
	log.Printf("ecmserve listening on %s (eps=%v delta=%v window=%d algo=%s shards=%d)",
		*addr, *epsilon, *delta, *window, *algo, srv.Engine().Shards())
	if *tlsCert != "" {
		log.Fatal(http.ListenAndServeTLS(*addr, *tlsCert, *tlsKey, srv))
	}
	log.Fatal(http.ListenAndServe(*addr, srv))
}
