package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ecmsketch"
)

// ServerConfig configures the sketch behind the HTTP API.
type ServerConfig struct {
	Epsilon      float64
	Delta        float64
	WindowLength uint64
	Algorithm    string // "eh", "dw" or "rw"
	UpperBound   uint64
	Seed         uint64
	// TopK enables the /topk endpoint tracking this many hottest keys.
	TopK int
}

// Server is an HTTP front end over one ECM-sketch. All handlers are safe for
// concurrent use; updates take the write lock, queries the read lock.
type Server struct {
	mu     sync.RWMutex
	sketch *ecmsketch.Sketch
	topk   *ecmsketch.TopK // nil unless TopK > 0
	cfg    ServerConfig
	mux    *http.ServeMux
}

// NewServer builds the sketch and routes.
func NewServer(cfg ServerConfig) (*Server, error) {
	algo, err := parseAlgo(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	params := ecmsketch.Params{
		Epsilon:      cfg.Epsilon,
		Delta:        cfg.Delta,
		Algorithm:    algo,
		WindowLength: cfg.WindowLength,
		UpperBound:   cfg.UpperBound,
		Seed:         cfg.Seed,
	}
	sk, err := ecmsketch.New(params)
	if err != nil {
		return nil, err
	}
	s := &Server{sketch: sk, cfg: cfg, mux: http.NewServeMux()}
	if cfg.TopK > 0 {
		tk, err := ecmsketch.NewTopK(cfg.TopK, params)
		if err != nil {
			return nil, err
		}
		s.topk = tk
		s.mux.HandleFunc("GET /topk", s.handleTopK)
	}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /interval", s.handleInterval)
	s.mux.HandleFunc("GET /selfjoin", s.handleSelfJoin)
	s.mux.HandleFunc("GET /total", s.handleTotal)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /sketch", s.handleSketch)
	s.mux.HandleFunc("POST /advance", s.handleAdvance)
	return s, nil
}

func parseAlgo(s string) (ecmsketch.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "eh":
		return ecmsketch.AlgoEH, nil
	case "dw":
		return ecmsketch.AlgoDW, nil
	case "rw":
		return ecmsketch.AlgoRW, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want eh, dw or rw)", s)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// parseKey resolves the item key from either ?key= (string, digested) or
// ?ikey= (raw uint64).
func parseKey(r *http.Request) (uint64, error) {
	if k := r.URL.Query().Get("key"); k != "" {
		return ecmsketch.KeyString(k), nil
	}
	if k := r.URL.Query().Get("ikey"); k != "" {
		v, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad ikey: %v", err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("missing key or ikey parameter")
}

func parseU64(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func respond(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleAdd registers one arrival: POST /add?key=/home&t=12345[&n=3].
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t, err := parseU64(r, "t", 0)
	if err != nil || t == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or bad t parameter"))
		return
	}
	n, err := parseU64(r, "n", 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.sketch.AddN(key, t, n)
	if s.topk != nil {
		for i := uint64(0); i < n; i++ {
			s.topk.Offer(key, t)
		}
	}
	s.mu.Unlock()
	respond(w, map[string]any{"ok": true})
}

// handleBatch ingests newline-separated "key,tick[,count]" records:
// POST /batch with a text body. Returns the number of accepted records and
// the first error encountered, if any.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	accepted, lineNo := 0, 0
	var firstErr string
	s.mu.Lock()
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			if firstErr == "" {
				firstErr = fmt.Sprintf("line %d: want key,tick[,count]", lineNo)
			}
			continue
		}
		t, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			if firstErr == "" {
				firstErr = fmt.Sprintf("line %d: bad tick: %v", lineNo, err)
			}
			continue
		}
		n := uint64(1)
		if len(parts) >= 3 {
			if n, err = strconv.ParseUint(strings.TrimSpace(parts[2]), 10, 64); err != nil {
				if firstErr == "" {
					firstErr = fmt.Sprintf("line %d: bad count: %v", lineNo, err)
				}
				continue
			}
		}
		key := ecmsketch.KeyString(strings.TrimSpace(parts[0]))
		s.sketch.AddN(key, t, n)
		if s.topk != nil {
			for j := uint64(0); j < n; j++ {
				s.topk.Offer(key, t)
			}
		}
		accepted++
	}
	s.mu.Unlock()
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{"accepted": accepted}
	if firstErr != "" {
		resp["firstError"] = firstErr
	}
	respond(w, resp)
}

// handleEstimate answers a point query: GET /estimate?key=/home&range=60000.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock() // Estimate advances counters, so it mutates
	est := s.sketch.Estimate(key, rng)
	s.mu.Unlock()
	respond(w, map[string]any{"estimate": est, "range": rng})
}

// handleInterval answers a point query over an arbitrary tick interval:
// GET /interval?key=/home&from=1000&to=2000 estimates the key's frequency
// within (from, to]. Interval queries carry twice the window error of
// suffix queries.
func (s *Server) handleInterval(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	from, err := parseU64(r, "from", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	to, err := parseU64(r, "to", 0)
	if err != nil || to == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or bad to parameter"))
		return
	}
	s.mu.Lock()
	est := s.sketch.EstimateInterval(key, from, to)
	s.mu.Unlock()
	respond(w, map[string]any{"estimate": est, "from": from, "to": to})
}

// handleSelfJoin answers GET /selfjoin?range=60000.
func (s *Server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	est := s.sketch.SelfJoin(rng)
	s.mu.Unlock()
	respond(w, map[string]any{"selfJoin": est, "range": rng})
}

// handleTotal answers GET /total?range=60000 with the estimated ‖a_r‖₁.
func (s *Server) handleTotal(w http.ResponseWriter, r *http.Request) {
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	est := s.sketch.EstimateTotal(rng)
	s.mu.Unlock()
	respond(w, map[string]any{"total": est, "range": rng})
}

// handleStats reports sketch dimensions, clock and footprint.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	respond(w, map[string]any{
		"width":       s.sketch.Width(),
		"depth":       s.sketch.Depth(),
		"now":         s.sketch.Now(),
		"count":       s.sketch.Count(),
		"memoryBytes": s.sketch.MemoryBytes(),
		"epsilon":     s.cfg.Epsilon,
		"delta":       s.cfg.Delta,
		"window":      s.cfg.WindowLength,
		"algorithm":   s.cfg.Algorithm,
	})
}

// handleSketch ships the serialized sketch, letting a coordinator pull and
// merge several sites' summaries.
func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	enc := s.sketch.Marshal()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
	w.Write(enc)
}

// handleAdvance moves the window clock forward without an arrival:
// POST /advance?t=99999.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	t, err := parseU64(r, "t", 0)
	if err != nil || t == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or bad t parameter"))
		return
	}
	s.mu.Lock()
	s.sketch.Advance(t)
	s.mu.Unlock()
	respond(w, map[string]any{"ok": true, "now": t})
}

// handleTopK reports the current hottest keys: GET /topk?range=60000.
// Available only when the server was started with -topk N.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	items := s.topk.Top(rng)
	s.mu.Unlock()
	// Keys are rendered as decimal strings: uint64 digests exceed the
	// float64-exact integer range of JSON consumers.
	type entry struct {
		Key      string  `json:"key"`
		Estimate float64 `json:"estimate"`
	}
	out := make([]entry, len(items))
	for i, it := range items {
		out[i] = entry{Key: strconv.FormatUint(it.Key, 10), Estimate: it.Estimate}
	}
	respond(w, map[string]any{"top": out, "range": rng})
}
