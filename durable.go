package ecmsketch

// This file wires the internal/durable storage subsystem into the Sharded
// engine: periodic checkpoints (arena snapshots plus the version vectors
// the wire format omits), a CRC-framed WAL of applied mutations between
// checkpoints, and recovery that restores the pre-crash state — same
// epoch, same cell versions — so a restart invalidates no downstream
// delta cursor.
//
// Correctness hinges on three invariants:
//
//   - Per-stripe WAL order equals apply order: records are appended while
//     the stripe lock is still held, so replaying a segment in append
//     order replays each stripe's mutations in their original order
//     (cross-stripe interleaving is irrelevant — stripes are independent).
//   - Expiry runs in replay exactly where it ran originally. Batch records
//     carry the stripe clock from immediately before the apply; replay
//     restores it clock-only (SetClock — no settling), so per-cell expiry
//     happens at the replayed inserts and at replayed advance records and
//     nowhere else. That ordering is load-bearing: randomized-wave levels
//     evict at capacity before expiring, so settling a cell early or late
//     changes which entries survive. Clock advances that drop content —
//     explicit Advance calls, and read-path settles that actually expire
//     something — are therefore logged as advance records; settles that
//     drop nothing are not (cell-clock drift converges at the next settle).
//   - A checkpoint seals the active segment (sync, then rotate appends to
//     the next generation) before capturing stripes, so the sealed
//     segment is entirely covered by the blob and can be deleted; the new
//     segment may overlap the blob, which replay tolerates by skipping
//     records whose post-apply version the restored stripe already has.
//
// Anything that fails validation on the way back in — snapshot CRC or
// fingerprint, WAL segment header, a replay version cross-check — discards
// all durable state and starts under a fresh epoch: exactly the cursor
// invalidation pullers already handle, never corrupt state.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"ecmsketch/internal/core"
	"ecmsketch/internal/durable"
)

// DurableStore is the pluggable persistence hook durability rides on: an
// atomic blob store plus append-only logs. NewMemStore and NewFileStore
// are the in-tree implementations; any dependency-backed store (an
// object store, a KV engine) plugs in by implementing it.
type DurableStore = durable.Store

// DurableLog is the append-only log half of a DurableStore.
type DurableLog = durable.Log

// ErrDurableNotFound is what DurableStore.Load returns for a blob that has
// never been saved (or was deleted) — the signal callers branch on to
// bootstrap fresh instead of restoring.
var ErrDurableNotFound = durable.ErrNotFound

// NewMemStore returns the dependency-free in-memory store: state survives
// engine restarts exactly as long as the store value itself is retained.
func NewMemStore() DurableStore { return durable.NewMemStore() }

// NewFileStore returns the file-backed store rooted at dir (one flat
// directory per engine), creating it if needed. Blob saves are
// crash-atomic (temp file, fsync, rename, directory fsync).
func NewFileStore(dir string) (DurableStore, error) { return durable.NewFileStore(dir) }

// DurabilityConfig opts a Sharded engine into durable state.
type DurabilityConfig struct {
	// Store persists the engine's epoch, checkpoints and WAL. Required.
	Store DurableStore
	// SnapshotInterval is the checkpoint cadence: every interval the
	// engine writes a full snapshot blob and rotates the WAL, bounding
	// replay work at recovery. 0 checkpoints only at construction, Close
	// and explicit Checkpoint calls — the WAL then grows until one.
	SnapshotInterval time.Duration
	// SyncInterval is the fsync cadence of WAL appends. 0 (the default)
	// fsyncs every append: an applied write is durable when its call
	// returns, at a heavy ingest cost. A positive interval batches
	// fsyncs in the background: a crash may lose up to one interval of
	// the most recent acknowledged writes (always a per-stripe suffix —
	// never a gap), which is the usual group-commit trade. Flush and
	// Checkpoint always sync regardless.
	SyncInterval time.Duration
}

// DurabilityStats is the observability block /v1/stats exposes.
type DurabilityStats struct {
	Enabled            bool   `json:"enabled"`
	Epoch              uint64 `json:"epoch,omitempty"`
	Generation         uint64 `json:"generation,omitempty"`
	LastSnapshotTick   uint64 `json:"lastSnapshotTick"`
	LastSnapshotUnixMs int64  `json:"lastSnapshotUnixMs"`
	WALRecords         uint64 `json:"walRecords"` // since the last checkpoint
	WALBytes           uint64 `json:"walBytes"`   // since the last checkpoint
	LastFsyncNs        int64  `json:"lastFsyncNs"`
	Recovered          bool   `json:"recovered"`       // construction restored prior state
	ReplayedRecords    uint64 `json:"replayedRecords"` // WAL records replayed at recovery
	Errors             uint64 `json:"errors"`          // WAL append/sync/checkpoint failures
}

const durSnapshotBlob = "snapshot"

func durWALName(gen uint64) string { return fmt.Sprintf("wal-%d", gen) }

// durableState is the engine-side handle: the store, the active WAL
// segment and generation, and the stats counters.
type durableState struct {
	store     DurableStore
	fp        uint64
	syncEvery bool // fsync on every append (SyncInterval == 0)

	// mu guards the active segment (wal, gen, closed) and the encoding
	// scratch. Appends take it while holding a stripe lock; nothing under
	// mu ever takes a stripe lock, so the order is acyclic.
	mu     sync.Mutex
	wal    *durable.WAL
	gen    uint64
	closed bool
	buf    []byte

	// ckptMu serializes checkpoints (interval loop, Close, explicit calls).
	ckptMu sync.Mutex

	lastSnapTick atomic.Uint64
	lastSnapWall atomic.Int64
	errs         atomic.Uint64
	recovered    bool
	replayed     uint64

	snapStop, snapDone chan struct{}
	syncStop, syncDone chan struct{}
}

// initDurable recovers prior durable state (or discards to a fresh epoch)
// and starts the checkpoint/sync loops. Called from NewSharded after the
// stripes exist but before any background goroutine can mutate them.
func (sh *Sharded) initDurable(dc *DurabilityConfig) error {
	if dc.Store == nil {
		return errors.New("ecmsketch: DurabilityConfig.Store is required")
	}
	if dc.SnapshotInterval < 0 || dc.SyncInterval < 0 {
		return errors.New("ecmsketch: durability intervals must be non-negative")
	}
	d := &durableState{store: dc.Store, syncEvery: dc.SyncInterval == 0}
	sh.dur = d
	d.fp = sh.durableFingerprint()

	snap := sh.loadCheckpoint(d)
	activeGen := uint64(1)
	var replayedGens []uint64
	if snap != nil {
		if ok := sh.restoreCheckpoint(snap); ok {
			d.recovered = true
			activeGen = snap.Gen + 2
			replayedGens = []uint64{snap.Gen, snap.Gen + 1}
		} else if err := sh.resetStripes(); err != nil {
			return err
		}
	}

	// Open the new active segment (truncating any stale file from a dead
	// previous life), then persist the current state under it: from here
	// the blob covers everything before the segment, the segment covers
	// everything after.
	wal, err := d.openSegment(sh.epoch, activeGen)
	if err != nil {
		return err
	}
	d.wal = wal
	d.gen = activeGen
	if err := sh.writeCheckpointBlob(activeGen); err != nil {
		return err
	}
	for _, g := range replayedGens {
		_ = d.store.Delete(durWALName(g))
	}

	if dc.SnapshotInterval > 0 {
		d.snapStop = make(chan struct{})
		d.snapDone = make(chan struct{})
		go sh.durSnapshotLoop(dc.SnapshotInterval)
	}
	if dc.SyncInterval > 0 {
		d.syncStop = make(chan struct{})
		d.syncDone = make(chan struct{})
		go sh.durSyncLoop(dc.SyncInterval)
	}
	return nil
}

// durableFingerprint hashes the engine configuration: every Params field,
// the resolved Count-Min dimensions, and the stripe count. A persisted
// state with a different fingerprint was written by a differently
// configured engine and is discarded rather than reinterpreted. (Hashing a
// fresh stripe's encoding would be simpler but is not deterministic across
// process lifetimes: randomized-wave cells draw process-unique identifier
// salts at construction.)
func (sh *Sharded) durableFingerprint() uint64 {
	sk := sh.shards[0].sk
	p := sk.Params()
	h := fnv.New64a()
	fmt.Fprintf(h, "%g|%g|%v|%v|%v|%d|%d|%d|%d|%d|%d",
		p.Epsilon, p.Delta, p.Query, p.Algorithm, p.Model,
		p.WindowLength, p.UpperBound, p.Seed, sk.Width(), sk.Depth(), len(sh.shards))
	if p.Split != nil {
		fmt.Fprintf(h, "|%g|%g", p.Split.EpsCM, p.Split.EpsSW)
	}
	return h.Sum64()
}

// loadCheckpoint returns the persisted snapshot if it exists and passes
// every validation; nil means "nothing usable — start fresh".
func (sh *Sharded) loadCheckpoint(d *durableState) *durable.Snapshot {
	blob, err := d.store.Load(durSnapshotBlob)
	if err != nil {
		return nil
	}
	snap, err := durable.DecodeSnapshot(blob)
	if err != nil || snap.Fingerprint != d.fp || len(snap.Parts) != len(sh.shards) || snap.Epoch == 0 {
		return nil
	}
	return snap
}

// restoreCheckpoint installs the snapshot's stripes and replays the WAL
// segments it may be paired with. Reports false when anything fails
// validation — the caller then discards to a fresh epoch.
func (sh *Sharded) restoreCheckpoint(snap *durable.Snapshot) bool {
	// Decode and validate every part before installing any, so a failure
	// leaves the fresh stripes untouched.
	sks := make([]*Sketch, len(snap.Parts))
	for i := range snap.Parts {
		p := &snap.Parts[i]
		sk, err := core.Unmarshal(p.Enc)
		if err != nil || !sh.shards[i].sk.Compatible(sk) {
			return false
		}
		if err := sk.RestoreVersionVector(p.Ver, p.Vers); err != nil {
			return false
		}
		sks[i] = sk
	}
	for i, sk := range sks {
		sh.shards[i].sk = sk
	}
	if !sh.replayWAL(snap) {
		return false
	}
	sh.epoch = snap.Epoch
	now := snap.Now
	for i := range sh.shards {
		s := &sh.shards[i]
		s.count.Store(s.sk.Count())
		s.deltaVer.Store(s.sk.DeltaVersion())
		if n := s.sk.Now(); n > now {
			now = n
		}
	}
	sh.now.Store(now)
	return true
}

// replayWAL applies the snapshot generation's segment and its successor
// (at most those two can exist; the checkpoint that would have deleted
// the first also wrote a newer blob). Reports false on a validation
// failure; torn tails within a segment are not failures — durable.Replay
// already truncated them to the last intact frame.
func (sh *Sharded) replayWAL(snap *durable.Snapshot) bool {
	for gen := snap.Gen; gen <= snap.Gen+1; gen++ {
		log, err := sh.dur.store.OpenLog(durWALName(gen))
		if err != nil {
			return false
		}
		recs, err := durable.Replay(log)
		closeErr := log.Close()
		if err != nil || closeErr != nil {
			return false
		}
		if len(recs) == 0 {
			continue
		}
		hdr, err := durable.DecodeRecord(recs[0])
		if err != nil || hdr.Kind != durable.RecordHeader ||
			hdr.Epoch != snap.Epoch || hdr.Gen != gen || hdr.Fingerprint != sh.dur.fp {
			// A stale or foreign segment (e.g. left by a previous epoch's
			// life and never cleaned): its records mean nothing here.
			continue
		}
		for _, raw := range recs[1:] {
			rec, err := durable.DecodeRecord(raw)
			if err != nil {
				return false
			}
			if rec.Part >= uint64(len(sh.shards)) {
				return false
			}
			sk := sh.shards[rec.Part].sk
			switch rec.Kind {
			case durable.RecordAdvance:
				sk.Advance(rec.Tick)
			case durable.RecordBatch:
				if rec.Ver <= sk.DeltaVersion() {
					continue // already covered by the snapshot
				}
				// Restore the pre-apply clock without settling: expiry must
				// run only where the original ran it (see SetClock).
				sk.SetClock(rec.Tick)
				sk.AddBatch(rec.Events)
				if sk.DeltaVersion() != rec.Ver {
					// The record does not continue the restored state — a
					// gap or divergence durability must never paper over.
					return false
				}
			default:
				return false
			}
			sh.dur.replayed++
		}
	}
	return true
}

// resetStripes rebuilds every stripe empty (after a half-installed
// restore was abandoned), re-deriving the deterministic identifier salts.
func (sh *Sharded) resetStripes() error {
	for i := range sh.shards {
		s, err := New(sh.params)
		if err != nil {
			return err
		}
		s.SetIDSalt(0x9e37_79b9_7f4a_7c15 * uint64(i+1))
		s.NormalizeCellSalts()
		sh.shards[i].sk = s
		sh.shards[i].count.Store(0)
		sh.shards[i].deltaVer.Store(0)
	}
	return nil
}

// openSegment opens WAL segment gen empty and writes its header record,
// synced: a segment is identifiable before anything rides on it.
func (d *durableState) openSegment(epoch, gen uint64) (*durable.WAL, error) {
	log, err := d.store.OpenLog(durWALName(gen))
	if err != nil {
		return nil, err
	}
	if err := log.Truncate(0); err != nil {
		log.Close()
		return nil, err
	}
	w := durable.NewWAL(log)
	hdr := durable.AppendRecord(nil, &durable.Record{
		Kind: durable.RecordHeader, Epoch: epoch, Gen: gen, Fingerprint: d.fp,
	})
	if err := w.Append(hdr, true); err != nil {
		w.Close()
		return nil, err
	}
	w.ResetStats() // the header is framing, not logged work
	return w, nil
}

// writeCheckpointBlob captures every stripe (arena clone plus version
// vector under the stripe lock; encoding outside it) and atomically saves
// the snapshot blob at generation gen. Stripes are deliberately captured
// unsettled — replay reproduces insert-time expiry exactly (see the file
// comment), and settling is the receiver's job, as everywhere else in the
// delta protocol.
func (sh *Sharded) writeCheckpointBlob(gen uint64) error {
	d := sh.dur
	parts := make([]durable.SnapshotPart, len(sh.shards))
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		ver, vers := s.sk.VersionVector()
		snap, err := s.sk.Snapshot()
		s.mu.Unlock()
		if err != nil {
			return err
		}
		parts[i] = durable.SnapshotPart{Enc: snap.Marshal(), Ver: ver, Vers: vers}
	}
	blob := durable.Snapshot{
		Epoch: sh.epoch, Gen: gen, Now: sh.now.Load(), Fingerprint: d.fp, Parts: parts,
	}
	if err := d.store.Save(durSnapshotBlob, blob.Encode()); err != nil {
		return err
	}
	d.lastSnapTick.Store(blob.Now)
	d.lastSnapWall.Store(time.Now().UnixMilli())
	return nil
}

// Checkpoint writes a durable snapshot of the engine and rotates the WAL:
// the sealed segment is synced first (so nothing acknowledged is lost),
// captured entirely by the blob, and then deleted. Recovery after a
// checkpoint replays only what arrived since. Returns an error on engines
// built without a DurabilityConfig.
func (sh *Sharded) Checkpoint() error {
	d := sh.dur
	if d == nil {
		return errors.New("ecmsketch: engine has no durability configured")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("ecmsketch: engine is closed")
	}
	if err := d.wal.Sync(); err != nil {
		d.mu.Unlock()
		d.errs.Add(1)
		return err
	}
	oldGen := d.gen
	newWal, err := d.openSegment(sh.epoch, oldGen+1)
	if err != nil {
		d.mu.Unlock()
		d.errs.Add(1)
		return err
	}
	oldWal := d.wal
	d.wal = newWal
	d.gen = oldGen + 1
	d.mu.Unlock()

	// Appends now go to the new segment; every record in the sealed one
	// happened before its stripe's capture below, so the blob covers it.
	if err := sh.writeCheckpointBlob(oldGen + 1); err != nil {
		d.errs.Add(1)
		return err
	}
	if err := oldWal.Close(); err != nil {
		d.errs.Add(1)
	}
	return d.store.Delete(durWALName(oldGen))
}

// DurabilityStats reports the durability observability block; Enabled is
// false (and everything else zero) on engines without a DurabilityConfig.
func (sh *Sharded) DurabilityStats() DurabilityStats {
	d := sh.dur
	if d == nil {
		return DurabilityStats{}
	}
	d.mu.Lock()
	gen := d.gen
	recs, bytes, syncNs := d.wal.Stats()
	d.mu.Unlock()
	return DurabilityStats{
		Enabled:            true,
		Epoch:              sh.epoch,
		Generation:         gen,
		LastSnapshotTick:   d.lastSnapTick.Load(),
		LastSnapshotUnixMs: d.lastSnapWall.Load(),
		WALRecords:         recs,
		WALBytes:           bytes,
		LastFsyncNs:        syncNs,
		Recovered:          d.recovered,
		ReplayedRecords:    d.replayed,
		Errors:             d.errs.Load(),
	}
}

// settleStripe advances stripe si to the engine clock on behalf of a read,
// logging an advance record only when the settle actually dropped content —
// the one case replay must reproduce (randomized-wave capacity eviction
// depends on expiry position; see the file comment). Settles that drop
// nothing stay off the WAL, so steady-state reads cost no I/O. Must be
// called with the stripe lock held.
func (sh *Sharded) settleStripe(si int, now Tick) {
	s := &sh.shards[si]
	if sh.dur == nil {
		s.sk.Advance(now)
		return
	}
	changed := false
	s.sk.AdvanceNoting(now, func(int) { changed = true })
	if changed {
		sh.logAdvance(si, now)
	}
}

// logBatch appends one applied sub-batch to the WAL. Must be called while
// the part's stripe lock is still held: that is what makes per-stripe WAL
// order equal apply order, the invariant replay depends on.
func (sh *Sharded) logBatch(part int, preNow Tick, ver uint64, events []Event) {
	sh.dur.appendRecord(&durable.Record{
		Kind: durable.RecordBatch, Part: uint64(part), Tick: preNow, Ver: ver, Events: events,
	})
}

// logAdvance appends one applied clock advance; same locking contract as
// logBatch.
func (sh *Sharded) logAdvance(part int, t Tick) {
	sh.dur.appendRecord(&durable.Record{
		Kind: durable.RecordAdvance, Part: uint64(part), Tick: t,
	})
}

func (d *durableState) appendRecord(rec *durable.Record) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.buf = durable.AppendRecord(d.buf[:0], rec)
	err := d.wal.Append(d.buf, d.syncEvery)
	d.mu.Unlock()
	if err != nil {
		// Ingest cannot return errors; the engine keeps applying in memory
		// with durability degraded, and surfaces the failure in stats.
		d.errs.Add(1)
	}
}

// syncNow makes every appended WAL record durable; the Flush barrier and
// the background sync loop both land here.
func (d *durableState) syncNow() {
	d.mu.Lock()
	w := d.wal
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return
	}
	if err := w.Sync(); err != nil {
		d.errs.Add(1)
	}
}

func (sh *Sharded) durSnapshotLoop(interval time.Duration) {
	defer close(sh.dur.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sh.dur.snapStop:
			return
		case <-t.C:
			_ = sh.Checkpoint() // failures are counted in stats
		}
	}
}

func (sh *Sharded) durSyncLoop(interval time.Duration) {
	defer close(sh.dur.syncDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sh.dur.syncStop:
			return
		case <-t.C:
			sh.dur.syncNow()
		}
	}
}

func (d *durableState) stopLoops() {
	if d.snapStop != nil {
		close(d.snapStop)
		<-d.snapDone
	}
	if d.syncStop != nil {
		close(d.syncStop)
		<-d.syncDone
	}
}

// closeDurable finishes Close on a durable engine: a final checkpoint (a
// clean restart then replays nothing) and a synced shutdown of the WAL.
func (sh *Sharded) closeDurable() error {
	d := sh.dur
	d.stopLoops()
	err := sh.Checkpoint()
	d.mu.Lock()
	d.closed = true
	w := d.wal
	d.mu.Unlock()
	if serr := w.Sync(); serr != nil && err == nil {
		err = serr
	}
	if cerr := w.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// CloseAbrupt tears the engine down the way a crash would: background
// goroutines stop (so tests don't leak them), but nothing is flushed,
// synced or checkpointed — recovery must reconstruct the state from the
// last checkpoint plus the WAL. It exists for crash-recovery tests and
// the -recover benchmark; production shutdown is Close.
func (sh *Sharded) CloseAbrupt() error {
	sh.closeOnce.Do(func() {
		if sh.async != nil {
			sh.async.stop()
		}
		if sh.refreshStop != nil {
			close(sh.refreshStop)
			<-sh.refreshDone
		}
		if d := sh.dur; d != nil {
			d.stopLoops()
			d.mu.Lock()
			d.closed = true
			w := d.wal
			d.mu.Unlock()
			w.Close()
		}
	})
	return nil
}
