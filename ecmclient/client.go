// Package ecmclient is the typed Go client of the ecmserver /v1 HTTP API.
//
// Client implements the same ecmsketch.Ingestor / Querier / Snapshotter
// interfaces as the local sketch front ends, so code written against those
// interfaces — ingest pipelines, the TopK tracker, examples — can point at
// a remote ecmserve deployment by swapping the constructor and nothing
// else.
//
// Two method families coexist:
//
//   - Explicit, error-returning calls (AddEvents, Query, PointEstimate,
//     SelfJoinEstimate, FetchSketch, Stats, TopK, ...) for callers that
//     handle transport failures per request.
//   - The interface methods (Add, AddBatch, Estimate, SelfJoin, ...),
//     whose signatures carry no error; a transport failure there returns a
//     zero value and parks the error on the client, readable (and
//     clearable) via Err, in the bufio.Scanner sticky-error style.
package ecmclient

import (
	"bytes"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"ecmsketch"
	"ecmsketch/internal/wire"
)

// Client speaks the ecmserver /v1 API. It is safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	token string

	mu  sync.Mutex
	err error // first unconsumed transport failure of an interface call
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, TLS, proxies).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithAuthToken makes every request carry "Authorization: Bearer <token>" —
// the credential a server started with a non-empty AuthToken requires.
func WithAuthToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// WithRootCAs verifies https:// servers against the given trust pool
// instead of the system roots — for deployments running ecmserve/ecmcoord
// behind a private CA (-tls-cert/-tls-key). It replaces the transport with
// the shared keep-alive pull client (30-second overall timeout); compose
// custom timeouts via WithHTTPClient(ecmsketch.NewPullClient(...)) instead
// of stacking both options.
func WithRootCAs(roots *x509.CertPool) Option {
	return func(c *Client) { c.hc = ecmsketch.NewPullClient(30*time.Second, roots) }
}

// New builds a client for the ecmserver instance at baseURL
// (e.g. "http://collector-3:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: baseURL, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Err reports the first transport failure recorded by an interface-shaped
// call since the last Reset; nil means every such call succeeded.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Reset clears the sticky error.
func (c *Client) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.err = nil
}

func (c *Client) record(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// post issues a POST and decodes the JSON reply into out (ignored if nil).
func (c *Client) post(path string, q url.Values, body io.Reader, contentType string, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodPost, u, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.do(req, out)
}

func (c *Client) get(path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) del(path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// statusError is a non-200 reply, preserving the status code so callers
// can branch (e.g. the 404 fallback of FetchSnapshotBytes).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

func (c *Client) do(req *http.Request, out any) error {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("ecmclient: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var remote struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &remote) == nil && remote.Error != "" {
			return &statusError{resp.StatusCode, fmt.Sprintf("ecmclient: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, remote.Error)}
		}
		return &statusError{resp.StatusCode, fmt.Sprintf("ecmclient: %s %s: %s", req.Method, req.URL.Path, resp.Status)}
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("ecmclient: reading %s: %w", req.URL.Path, err)
		}
		*raw = b
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("ecmclient: decoding %s reply: %w", req.URL.Path, err)
	}
	return nil
}

// ---- explicit, error-returning API ----

// AddKey registers n arrivals of a pre-digested key at tick t.
func (c *Client) AddKey(key uint64, t ecmsketch.Tick, n uint64) error {
	q := url.Values{
		"ikey": {strconv.FormatUint(key, 10)},
		"t":    {strconv.FormatUint(t, 10)},
		"n":    {strconv.FormatUint(n, 10)},
	}
	return c.post("/v1/add", q, nil, "", nil)
}

// AddKeyString registers n arrivals of a string key (digested server-side,
// with the same KeyString digest as local sketches).
func (c *Client) AddKeyString(key string, t ecmsketch.Tick, n uint64) error {
	q := url.Values{
		"key": {key},
		"t":   {strconv.FormatUint(t, 10)},
		"n":   {strconv.FormatUint(n, 10)},
	}
	return c.post("/v1/add", q, nil, "", nil)
}

// AddEvents ships a batch of arrivals in one POST /v1/events request.
func (c *Client) AddEvents(events []ecmsketch.Event) error {
	if len(events) == 0 {
		return nil
	}
	type wireEvent struct {
		IKey string `json:"ikey"`
		T    uint64 `json:"t"`
		N    uint64 `json:"n,omitempty"`
	}
	wire := make([]wireEvent, len(events))
	for i, ev := range events {
		wire[i] = wireEvent{IKey: strconv.FormatUint(ev.Key, 10), T: ev.Tick, N: ev.N}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	return c.post("/v1/events", nil, bytes.NewReader(body), "application/json", nil)
}

// Query answers a multi-key query in one POST /v1/query round trip: point
// estimates for every key plus the optional aggregates, all evaluated by
// the server against one consistent cut of its stream. Keys are shipped as
// decimal digests; pre-digest string keys with ecmsketch.KeyString (the
// same digest the server applies to its own string keys).
func (c *Client) Query(q ecmsketch.QueryBatch) (ecmsketch.QueryResult, error) {
	return c.query(q, false)
}

func (c *Client) query(q ecmsketch.QueryBatch, direct bool) (ecmsketch.QueryResult, error) {
	type wireKey struct {
		IKey string `json:"ikey"`
	}
	req := struct {
		Keys     []wireKey `json:"keys,omitempty"`
		Range    uint64    `json:"range,omitempty"`
		Total    bool      `json:"total,omitempty"`
		SelfJoin bool      `json:"selfJoin,omitempty"`
	}{Range: q.Range, Total: q.Total, SelfJoin: q.SelfJoin}
	if len(q.Keys) > 0 {
		req.Keys = make([]wireKey, len(q.Keys))
		for i, k := range q.Keys {
			req.Keys[i] = wireKey{IKey: strconv.FormatUint(k, 10)}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return ecmsketch.QueryResult{}, err
	}
	var out struct {
		Estimates []float64 `json:"estimates"`
		Total     float64   `json:"total"`
		SelfJoin  float64   `json:"selfJoin"`
		Now       uint64    `json:"now"`
		Range     uint64    `json:"range"`
	}
	var params url.Values
	if direct {
		params = url.Values{"direct": {"1"}}
	}
	if err := c.post("/v1/query", params, bytes.NewReader(body), "application/json", &out); err != nil {
		return ecmsketch.QueryResult{}, err
	}
	return ecmsketch.QueryResult{
		Estimates: out.Estimates,
		Total:     out.Total,
		SelfJoin:  out.SelfJoin,
		Now:       out.Now,
		Range:     out.Range,
	}, nil
}

// AdvanceTo moves the server's window clock forward without an arrival.
func (c *Client) AdvanceTo(t ecmsketch.Tick) error {
	return c.post("/v1/advance", url.Values{"t": {strconv.FormatUint(t, 10)}}, nil, "", nil)
}

// PointEstimate answers a point query over the last r ticks.
func (c *Client) PointEstimate(key uint64, r ecmsketch.Tick) (float64, error) {
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	q := url.Values{
		"ikey":  {strconv.FormatUint(key, 10)},
		"range": {strconv.FormatUint(r, 10)},
	}
	if err := c.get("/v1/estimate", q, &out); err != nil {
		return 0, err
	}
	return out.Estimate, nil
}

// PointEstimateString answers a point query for a string key.
func (c *Client) PointEstimateString(key string, r ecmsketch.Tick) (float64, error) {
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	q := url.Values{"key": {key}, "range": {strconv.FormatUint(r, 10)}}
	if err := c.get("/v1/estimate", q, &out); err != nil {
		return 0, err
	}
	return out.Estimate, nil
}

// IntervalEstimate answers a point query over the tick interval (from, to].
func (c *Client) IntervalEstimate(key uint64, from, to ecmsketch.Tick) (float64, error) {
	var out struct {
		Estimate float64 `json:"estimate"`
	}
	q := url.Values{
		"ikey": {strconv.FormatUint(key, 10)},
		"from": {strconv.FormatUint(from, 10)},
		"to":   {strconv.FormatUint(to, 10)},
	}
	if err := c.get("/v1/interval", q, &out); err != nil {
		return 0, err
	}
	return out.Estimate, nil
}

// SelfJoinEstimate answers an F₂ query over the last r ticks.
func (c *Client) SelfJoinEstimate(r ecmsketch.Tick) (float64, error) {
	var out struct {
		SelfJoin float64 `json:"selfJoin"`
	}
	if err := c.get("/v1/selfjoin", url.Values{"range": {strconv.FormatUint(r, 10)}}, &out); err != nil {
		return 0, err
	}
	return out.SelfJoin, nil
}

// TotalEstimate answers a ‖a_r‖₁ query over the last r ticks.
func (c *Client) TotalEstimate(r ecmsketch.Tick) (float64, error) {
	var out struct {
		Total float64 `json:"total"`
	}
	if err := c.get("/v1/total", url.Values{"range": {strconv.FormatUint(r, 10)}}, &out); err != nil {
		return 0, err
	}
	return out.Total, nil
}

// FetchSketchBytes pulls the server's serialized merged sketch.
func (c *Client) FetchSketchBytes() ([]byte, error) {
	var raw []byte
	if err := c.get("/v1/sketch", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// FetchSketch pulls and decodes the server's merged sketch — ready to
// query locally or Merge with other sites' summaries.
func (c *Client) FetchSketch() (*ecmsketch.Sketch, error) {
	raw, err := c.FetchSketchBytes()
	if err != nil {
		return nil, err
	}
	return ecmsketch.Unmarshal(raw)
}

// FetchSnapshotBytes pulls the server's frozen merged view via the
// coordinator snapshot route (GET /v1/snapshot), falling back to /v1/sketch
// against servers predating it. The payload is identical; the snapshot
// route additionally carries X-Ecm-Now/X-Ecm-Count staleness headers for
// pullers that want them.
func (c *Client) FetchSnapshotBytes() ([]byte, error) {
	var raw []byte
	err := c.get("/v1/snapshot", nil, &raw)
	var se *statusError
	if errors.As(err, &se) && se.code == http.StatusNotFound {
		return c.FetchSketchBytes()
	}
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// SnapshotSince pulls the server's snapshot incrementally:
// GET /v1/snapshot?since=<cursor>, offering gzip. Given the cursor from a
// previous pull it returns the delta payload (full == false) or, when the
// server does not recognize the cursor — a restart, a reconfiguration, the
// zero cursor — a full baseline (full == true). Payloads are applied with
// an ecmsketch.DeltaState; the returned cursor is what to present next
// time. Servers predating the delta protocol (including the legacy /sketch
// fallback) answer with a plain full snapshot and a zero cursor, so pull
// loops degrade to full pulls instead of failing.
func (c *Client) SnapshotSince(since ecmsketch.Cursor) ([]byte, ecmsketch.Cursor, bool, error) {
	rep, err := wire.FetchSnapshotAuth(c.hc, c.base+"/v1/snapshot?since="+url.QueryEscape(since.String()), c.token)
	if err == nil && rep.Status == http.StatusNotFound {
		raw, err := c.FetchSketchBytes()
		if err != nil {
			return nil, ecmsketch.Cursor{}, false, err
		}
		return raw, ecmsketch.Cursor{}, true, nil
	}
	if err != nil {
		return nil, ecmsketch.Cursor{}, false, fmt.Errorf("ecmclient: GET /v1/snapshot: %w", err)
	}
	if rep.Status != http.StatusOK {
		return nil, ecmsketch.Cursor{}, false,
			&statusError{rep.Status, fmt.Sprintf("ecmclient: GET /v1/snapshot: status %d", rep.Status)}
	}
	cur, err := ecmsketch.ParseCursor(rep.Cursor)
	if err != nil {
		cur = ecmsketch.Cursor{}
	}
	full := rep.Kind != wire.KindDelta || cur.IsZero()
	return rep.Payload, cur, full, nil
}

// DeltaSnapshot completes the ecmsketch.DeltaSnapshotter contract (and
// with it ecmsketch.Engine): it is SnapshotSince with the transport failure
// additionally recorded in the sticky error, so a Client plugs into any
// pull loop — including coordinator sites — exactly like a local engine.
func (c *Client) DeltaSnapshot(since ecmsketch.Cursor) ([]byte, ecmsketch.Cursor, bool, error) {
	payload, cur, full, err := c.SnapshotSince(since)
	c.record(err)
	return payload, cur, full, err
}

// Stats is the server's engine accounting.
type Stats struct {
	Width        int            `json:"width"`
	Depth        int            `json:"depth"`
	Shards       int            `json:"shards"`
	Now          ecmsketch.Tick `json:"now"`
	Count        uint64         `json:"count"`
	MemoryBytes  int            `json:"memoryBytes"`
	ViewRebuilds uint64         `json:"viewRebuilds"`
	Epsilon      float64        `json:"epsilon"`
	Delta        float64        `json:"delta"`
	Window       uint64         `json:"window"`
	Algorithm    string         `json:"algorithm"`
	APIVersion   string         `json:"apiVersion"`
}

// FetchStats reports engine dimensions, clock and footprint.
func (c *Client) FetchStats() (Stats, error) {
	var out Stats
	err := c.get("/v1/stats", nil, &out)
	return out, err
}

// TopK reports the server's current hottest keys within the last r ticks
// (requires the server to run with TopK enabled).
func (c *Client) TopK(r ecmsketch.Tick) ([]ecmsketch.HeavyItem, error) {
	var out struct {
		Top []struct {
			Key      string  `json:"key"`
			Estimate float64 `json:"estimate"`
		} `json:"top"`
	}
	if err := c.get("/v1/topk", url.Values{"range": {strconv.FormatUint(r, 10)}}, &out); err != nil {
		return nil, err
	}
	items := make([]ecmsketch.HeavyItem, 0, len(out.Top))
	for _, e := range out.Top {
		key, err := strconv.ParseUint(e.Key, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ecmclient: bad key %q in topk reply: %v", e.Key, err)
		}
		items = append(items, ecmsketch.HeavyItem{Key: key, Estimate: e.Estimate})
	}
	return items, nil
}

// ---- ecmsketch.Ingestor / Querier / Snapshotter ----

var (
	_ ecmsketch.Engine        = (*Client)(nil)
	_ ecmsketch.DirectQuerier = (*Client)(nil)
)

// Add registers one arrival of key at tick t.
func (c *Client) Add(key uint64, t ecmsketch.Tick) { c.record(c.AddKey(key, t, 1)) }

// AddN registers n arrivals of key at tick t.
func (c *Client) AddN(key uint64, t ecmsketch.Tick, n uint64) { c.record(c.AddKey(key, t, n)) }

// AddString registers one arrival of a string-keyed item.
func (c *Client) AddString(key string, t ecmsketch.Tick) { c.record(c.AddKeyString(key, t, 1)) }

// AddBatch ships a batch of arrivals in one request.
func (c *Client) AddBatch(events []ecmsketch.Event) { c.record(c.AddEvents(events)) }

// Advance moves the server's window clock forward.
func (c *Client) Advance(t ecmsketch.Tick) { c.record(c.AdvanceTo(t)) }

// Estimate answers a point query over the last r ticks.
func (c *Client) Estimate(key uint64, r ecmsketch.Tick) float64 {
	v, err := c.PointEstimate(key, r)
	c.record(err)
	return v
}

// EstimateString answers a point query for a string key.
func (c *Client) EstimateString(key string, r ecmsketch.Tick) float64 {
	v, err := c.PointEstimateString(key, r)
	c.record(err)
	return v
}

// InnerProduct estimates the inner product between the server's stream and
// another (compatible) sketch's stream over the last r ticks, by pulling
// the server's merged sketch and running the query locally.
func (c *Client) InnerProduct(other *ecmsketch.Sketch, r ecmsketch.Tick) (float64, error) {
	sk, err := c.FetchSketch()
	if err != nil {
		return 0, err
	}
	return sk.InnerProduct(other, r)
}

// SelfJoin estimates F₂ over the last r ticks.
func (c *Client) SelfJoin(r ecmsketch.Tick) float64 {
	v, err := c.SelfJoinEstimate(r)
	c.record(err)
	return v
}

// EstimateTotal estimates ‖a_r‖₁ over the last r ticks.
func (c *Client) EstimateTotal(r ecmsketch.Tick) float64 {
	v, err := c.TotalEstimate(r)
	c.record(err)
	return v
}

// QueryBatch answers a multi-key query from one consistent server-side cut,
// in one round trip. It is Query with the transport failure additionally
// recorded in the sticky error, completing the ecmsketch.BatchQuerier
// contract.
func (c *Client) QueryBatch(q ecmsketch.QueryBatch) (ecmsketch.QueryResult, error) {
	res, err := c.Query(q)
	c.record(err)
	return res, err
}

// QueryDirect answers a point-only batch through the server's zero-merge
// path (POST /v1/query?direct=1): each key is read from the single stripe
// that owns it, with no merged view built or consulted. Zero merge error
// and no rebuild cost, but no consistency across the batch, and aggregate
// requests (Total/SelfJoin) are rejected by the server with 400 — the
// ecmsketch.DirectQuerier contract, forwarded. Transport failures are
// recorded in the sticky error like QueryBatch's.
func (c *Client) QueryDirect(q ecmsketch.QueryBatch) (ecmsketch.QueryResult, error) {
	res, err := c.query(q, true)
	c.record(err)
	return res, err
}

// Now reports the server's latest observed tick.
func (c *Client) Now() ecmsketch.Tick {
	st, err := c.FetchStats()
	c.record(err)
	return st.Now
}

// Marshal pulls the server's serialized merged sketch; nil on transport
// failure (recorded in Err).
func (c *Client) Marshal() []byte {
	raw, err := c.FetchSketchBytes()
	c.record(err)
	return raw
}

// Snapshot pulls and decodes the server's merged sketch via the snapshot
// route — the client half of the coordinator transport, so a Client wrapped
// in NewLocalSite aggregates like any other engine.
func (c *Client) Snapshot() (*ecmsketch.Sketch, error) {
	raw, err := c.FetchSnapshotBytes()
	if err != nil {
		return nil, err
	}
	return ecmsketch.Unmarshal(raw)
}

// SiteInfo is one coordinator member's health, as reported by a running
// ecmcoord's GET /v1/sites.
type SiteInfo struct {
	Name          string `json:"name"`
	Healthy       bool   `json:"healthy"`
	Failures      int    `json:"failures"`
	BackoffRounds uint64 `json:"backoffRounds"`
	LastError     string `json:"lastError"`
	HasBaseline   bool   `json:"hasBaseline"`
}

// Sites lists a coordinator's membership with per-site health. Only
// ecmcoord -serve deployments expose the route; against a plain ecmserve
// the call fails with a 404.
func (c *Client) Sites() ([]SiteInfo, error) {
	var out struct {
		Sites []SiteInfo `json:"sites"`
	}
	if err := c.get("/v1/sites", nil, &out); err != nil {
		return nil, err
	}
	return out.Sites, nil
}

// RegisterSite adds the ecmserve deployment at siteURL to a running
// coordinator's membership (POST /v1/sites); it joins the next pull round.
// A non-empty name gives the site a stable identity across re-registrations
// at new addresses — re-registering an existing name replaces the member
// and re-bootstraps it from a full baseline.
func (c *Client) RegisterSite(siteURL, name string) error {
	body, err := json.Marshal(map[string]string{"url": siteURL, "name": name})
	if err != nil {
		return err
	}
	return c.post("/v1/sites", nil, bytes.NewReader(body), "application/json", nil)
}

// UnregisterSite removes the member named name (the site's base URL unless
// it registered under an explicit name) from a running coordinator.
func (c *Client) UnregisterSite(name string) error {
	return c.del("/v1/sites", url.Values{"name": {name}}, nil)
}
