package ecmclient_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"ecmsketch"
	"ecmsketch/ecmclient"
	"ecmsketch/ecmserver"
)

func startServer(t *testing.T, topk int) (*httptest.Server, *ecmclient.Client) {
	t.Helper()
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon:      0.05,
		Delta:        0.05,
		WindowLength: 10000,
		Seed:         7,
		TopK:         topk,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, ecmclient.New(ts.URL)
}

func TestClientRoundTrip(t *testing.T) {
	_, c := startServer(t, 0)
	for i := ecmsketch.Tick(1); i <= 50; i++ {
		if err := c.AddKeyString("/home", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]ecmsketch.Event, 100)
	for i := range batch {
		batch[i] = ecmsketch.Event{Key: ecmsketch.KeyString("/search"), Tick: ecmsketch.Tick(51 + i)}
	}
	if err := c.AddEvents(batch); err != nil {
		t.Fatal(err)
	}
	est, err := c.PointEstimateString("/home", 10000)
	if err != nil {
		t.Fatal(err)
	}
	if est < 45 || est > 60 {
		t.Errorf("estimate = %v, want ≈50", est)
	}
	total, err := c.TotalEstimate(10000)
	if err != nil {
		t.Fatal(err)
	}
	if total < 135 || total > 170 {
		t.Errorf("total = %v, want ≈150", total)
	}
	if _, err := c.SelfJoinEstimate(10000); err != nil {
		t.Fatal(err)
	}
	st, err := c.FetchStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 150 || st.Shards != 4 || st.APIVersion != "v1" {
		t.Errorf("stats = %+v", st)
	}
	if err := c.AdvanceTo(60000); err != nil {
		t.Fatal(err)
	}
	if est, _ := c.PointEstimateString("/home", 10000); est != 0 {
		t.Errorf("estimate after expiry = %v, want 0", est)
	}
	if c.Err() != nil {
		t.Errorf("sticky error set by explicit calls: %v", c.Err())
	}
}

// feedAndQuery is the interface-driven pipeline of the interchangeability
// test: everything it touches is the Ingestor/Querier contract, so it runs
// identically against a plain Sketch, a Sharded engine, or a remote server.
func feedAndQuery(e ecmsketch.IngestQuerier) (hot float64, total float64) {
	var batch []ecmsketch.Event
	var now ecmsketch.Tick
	for i := 0; i < 500; i++ {
		now++
		key := uint64(i % 7)
		if i%2 == 0 {
			key = 42 // hot key: every second arrival
		}
		batch = append(batch, ecmsketch.Event{Key: key, Tick: now})
		if len(batch) == 100 {
			e.AddBatch(batch)
			batch = batch[:0]
		}
	}
	e.AddBatch(batch)
	e.AddN(42, now, 5)
	return e.Estimate(42, 10000), e.EstimateTotal(10000)
}

// TestClientInterchangeable runs the same pipeline against a local sketch,
// a sharded engine and the remote client, and requires near-identical
// answers — the acceptance gate for "one interface, three backends".
func TestClientInterchangeable(t *testing.T) {
	p := ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 10000, Seed: 7}
	local, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, remote := startServer(t, 0)

	backends := map[string]ecmsketch.IngestQuerier{
		"sketch": local, "sharded": sharded, "client": remote,
	}
	type answer struct{ hot, total float64 }
	got := map[string]answer{}
	for name, b := range backends {
		hot, total := feedAndQuery(b)
		got[name] = answer{hot, total}
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("remote pipeline recorded transport error: %v", err)
	}
	ref := got["sketch"]
	if ref.hot < 250 || ref.total < 450 {
		t.Fatalf("reference answers degenerate: %+v", ref)
	}
	for name, a := range got {
		if relDiff(a.hot, ref.hot) > 0.1 || relDiff(a.total, ref.total) > 0.1 {
			t.Errorf("%s answers %+v diverge from sketch reference %+v", name, a, ref)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return a
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestClientSketchPullAndMerge(t *testing.T) {
	_, siteA := startServer(t, 0)
	_, siteB := startServer(t, 0)
	for i := ecmsketch.Tick(1); i <= 30; i++ {
		siteA.Add(99, i)
		siteB.Add(99, i)
	}
	a, err := siteA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := siteB.FetchSketch()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ecmsketch.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est := m.Estimate(99, 10000); est < 50 || est > 70 {
		t.Errorf("merged estimate = %v, want ≈60", est)
	}
	// InnerProduct pulls the remote sketch and runs locally.
	ip, err := siteA.InnerProduct(b, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ip < 700 || ip > 1200 {
		t.Errorf("inner product = %v, want ≈900", ip)
	}
}

func TestClientTopK(t *testing.T) {
	_, c := startServer(t, 2)
	for i := ecmsketch.Tick(1); i <= 60; i++ {
		c.AddString("hot", i)
		if i%3 == 0 {
			c.AddString("warm", i)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	top, err := c.TopK(10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Key != ecmsketch.KeyString("hot") {
		t.Errorf("TopK = %v", top)
	}
}

func TestClientStickyError(t *testing.T) {
	ts, c := startServer(t, 0)
	ts.Close()
	c.Add(1, 1)
	if c.Err() == nil {
		t.Fatal("transport failure not recorded")
	}
	if got := c.Estimate(1, 100); got != 0 {
		t.Errorf("estimate against dead server = %v, want 0", got)
	}
	c.Reset()
	if c.Err() != nil {
		t.Error("Reset did not clear the sticky error")
	}
	if b := c.Marshal(); b != nil {
		t.Errorf("Marshal against dead server = %d bytes, want nil", len(b))
	}
	if c.Err() == nil {
		t.Error("Marshal failure not recorded")
	}
}

// TestClientQueryBatch round-trips a batched query and checks the wire
// answers are exactly — bit for bit, surviving the JSON float encoding —
// the answers a local Sharded engine with identical configuration and
// stream produces.
func TestClientQueryBatch(t *testing.T) {
	_, c := startServer(t, 0)
	local, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
		Params: ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 10000, Seed: 7},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	events := make([]ecmsketch.Event, 0, 3000)
	for i := 1; i <= 3000; i++ {
		events = append(events, ecmsketch.Event{Key: uint64(i % 97), Tick: ecmsketch.Tick(i)})
	}
	if err := c.AddEvents(events); err != nil {
		t.Fatal(err)
	}
	local.AddBatch(events)

	q := ecmsketch.QueryBatch{
		Keys:     []uint64{1, 5, 96, 1234},
		Range:    10000,
		Total:    true,
		SelfJoin: true,
	}
	want, err := local.QueryBatch(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Estimates) != len(want.Estimates) {
		t.Fatalf("estimates: %d entries, want %d", len(got.Estimates), len(want.Estimates))
	}
	for i := range want.Estimates {
		if got.Estimates[i] != want.Estimates[i] {
			t.Errorf("key %d: remote estimate %v != local %v", q.Keys[i], got.Estimates[i], want.Estimates[i])
		}
	}
	if got.Total != want.Total {
		t.Errorf("remote total %v != local %v", got.Total, want.Total)
	}
	if got.SelfJoin != want.SelfJoin {
		t.Errorf("remote selfJoin %v != local %v", got.SelfJoin, want.SelfJoin)
	}
	if got.Now != want.Now || got.Range != want.Range {
		t.Errorf("remote cut (now=%d, range=%d) != local (now=%d, range=%d)",
			got.Now, got.Range, want.Now, want.Range)
	}

	// The interface-shaped method matches the explicit one and records
	// transport failures in the sticky error.
	ifres, err := c.QueryBatch(q)
	if err != nil {
		t.Fatal(err)
	}
	if ifres.Total != want.Total {
		t.Errorf("QueryBatch total %v != local %v", ifres.Total, want.Total)
	}
	if c.Err() != nil {
		t.Errorf("sticky error after successful QueryBatch: %v", c.Err())
	}
}

func TestClientQueryBatchStickyError(t *testing.T) {
	ts, c := startServer(t, 0)
	ts.Close()
	if _, err := c.QueryBatch(ecmsketch.QueryBatch{Total: true}); err == nil {
		t.Fatal("QueryBatch against dead server must error")
	}
	if c.Err() == nil {
		t.Error("QueryBatch transport failure not recorded in sticky error")
	}
}

func TestClientBadRequestSurfacesServerError(t *testing.T) {
	_, c := startServer(t, 0)
	// Tick 0 is rejected server-side; the error body must surface.
	if err := c.AddKey(1, 0, 1); err == nil {
		t.Fatal("server-side validation error not surfaced")
	}
	// TopK is not enabled on this server.
	if _, err := c.TopK(10000); err == nil {
		t.Fatal("topk on a server without -topk must error")
	}
}

// TestClientSnapshotRoute pins that Snapshot pulls the /v1/snapshot route
// (and that the result matches the engine), and that servers predating the
// route are still served via the /v1/sketch fallback.
func TestClientSnapshotRoute(t *testing.T) {
	ts, client := startServer(t, 0)
	srv := ts.Config.Handler.(*ecmserver.Server)
	srv.Engine().Add(7, 100)

	snap, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count() != 1 || snap.Now() != 100 {
		t.Errorf("snapshot count=%d now=%d, want 1/100", snap.Count(), snap.Now())
	}

	// A legacy deployment: /v1/snapshot 404s, /v1/sketch answers.
	enc := snap.Marshal()
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sketch" {
			http.NotFound(w, r)
			return
		}
		w.Write(enc)
	}))
	defer legacy.Close()
	old := ecmclient.New(legacy.URL)
	fb, err := old.Snapshot()
	if err != nil {
		t.Fatalf("fallback snapshot: %v", err)
	}
	if fb.Count() != 1 {
		t.Errorf("fallback snapshot count = %d, want 1", fb.Count())
	}
}

// TestClientAsCoordinatorSite wires a remote server into an in-process
// coordinator through the client: the Engine interfaces make a remote site
// and a local engine interchangeable leaves of one aggregation tree.
func TestClientAsCoordinatorSite(t *testing.T) {
	ts, client := startServer(t, 0)
	srv := ts.Config.Handler.(*ecmserver.Server)
	for i := uint64(1); i <= 300; i++ {
		srv.Engine().Add(i%7, i)
	}
	local, err := ecmsketch.New(ecmsketch.Params{
		Epsilon: 0.05, Delta: 0.05, WindowLength: 10000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 300; i++ {
		local.Add(i%5+100, i)
	}
	co := ecmsketch.NewCoordinator(
		ecmsketch.NewLocalSite("remote-via-client", client),
		ecmsketch.NewLocalSite("local", local),
	)
	root, height, err := co.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if height != 1 {
		t.Errorf("height = %d, want 1", height)
	}
	if root.Count() != 600 {
		t.Errorf("root count = %d, want 600", root.Count())
	}
	if co.Network().Messages() != 2 {
		t.Errorf("messages = %d, want 2", co.Network().Messages())
	}
}
