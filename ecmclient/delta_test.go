package ecmclient_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"ecmsketch"
	"ecmsketch/ecmclient"
	"ecmsketch/ecmserver"
)

// TestSnapshotSince: the client half of the delta protocol — bootstrap
// baseline, incremental pulls, reconstruction identical to the full fetch.
func TestSnapshotSince(t *testing.T) {
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 100000, Seed: 11, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	eng := srv.Engine()
	for e := 0; e < 800; e++ {
		eng.Add(uint64(e%41), uint64(e+1))
	}

	c := ecmclient.New(ts.URL)
	var st ecmsketch.DeltaState
	payload, cur, full, err := c.SnapshotSince(st.Cursor())
	if err != nil || !full {
		t.Fatalf("bootstrap: full=%v err=%v", full, err)
	}
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	baselineLen := len(payload)

	eng.Add(31337, 900)
	payload, cur, full, err = c.SnapshotSince(st.Cursor())
	if err != nil || full {
		t.Fatalf("second pull: full=%v err=%v", full, err)
	}
	if len(payload)*4 > baselineLen {
		t.Fatalf("delta %dB not well below baseline %dB", len(payload), baselineLen)
	}
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	got, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.FetchSnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), want) {
		t.Fatal("delta reconstruction differs from a full fetch")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSinceLegacyServer: a server predating the delta protocol (no
// /v1/snapshot route at all) downgrades SnapshotSince to full pulls via the
// /v1/sketch fallback, with a zero cursor so the loop keeps asking full.
func TestSnapshotSinceLegacyServer(t *testing.T) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sk.Add(9, 5)
	enc := sk.Marshal()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sketch", func(w http.ResponseWriter, r *http.Request) {
		w.Write(enc)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := ecmclient.New(ts.URL)
	var st ecmsketch.DeltaState
	for pull := 0; pull < 2; pull++ {
		payload, cur, full, err := c.SnapshotSince(st.Cursor())
		if err != nil {
			t.Fatalf("pull %d: %v", pull, err)
		}
		if !full || !cur.IsZero() {
			t.Fatalf("pull %d: legacy server must downgrade to cursorless full pulls", pull)
		}
		if err := st.Apply(payload, cur, full); err != nil {
			t.Fatalf("pull %d: %v", pull, err)
		}
	}
	got, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != sk.Count() {
		t.Fatal("legacy downgrade lost content")
	}
}
