package ecmclient_test

import (
	"testing"

	"ecmsketch"
)

// TestClientQueryDirect pins the client's zero-merge read path: QueryDirect
// forwards through POST /v1/query?direct=1, point answers match the batched
// ones on a quiet engine, aggregates are rejected by the server, and the
// rejection is recorded in the sticky error like any transport failure.
func TestClientQueryDirect(t *testing.T) {
	_, c := startServer(t, 0)
	for i := ecmsketch.Tick(1); i <= 60; i++ {
		if err := c.AddKeyString("/home", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	q := ecmsketch.QueryBatch{
		Keys:  []uint64{ecmsketch.KeyString("/home"), ecmsketch.KeyString("/miss")},
		Range: 10000,
	}
	batched, err := c.QueryBatch(q)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	direct, err := c.QueryDirect(q)
	if err != nil {
		t.Fatalf("QueryDirect: %v", err)
	}
	if len(direct.Estimates) != 2 {
		t.Fatalf("direct estimates length %d, want 2", len(direct.Estimates))
	}
	for i := range q.Keys {
		if direct.Estimates[i] != batched.Estimates[i] {
			t.Fatalf("estimate %d: direct %v != batched %v", i, direct.Estimates[i], batched.Estimates[i])
		}
	}
	if direct.Range != 10000 {
		t.Fatalf("direct range %d, want 10000", direct.Range)
	}

	if _, err := c.QueryDirect(ecmsketch.QueryBatch{Keys: q.Keys, Total: true}); err == nil {
		t.Fatal("QueryDirect accepted a Total aggregate")
	}
	if c.Err() == nil {
		t.Fatal("aggregate rejection not recorded in sticky error")
	}
}
