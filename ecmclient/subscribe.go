package ecmclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"ecmsketch"
	"ecmsketch/internal/standing"
)

// Subscription is a live standing-query stream: notifications arrive on C
// until Close (or the server removes the subscription). The watch connection
// reconnects automatically with exponential backoff, resuming from the last
// delivered sequence number, so transient drops cost nothing when the
// server's replay ring still covers the gap; when it does not — or when the
// server sheds this consumer — a Notification with Kind
// ecmsketch.StandingDropped and Missed set reports how many notifications
// were lost. Delivery is therefore at-least-once with explicit gaps, never
// silent loss.
type Subscription struct {
	// C carries the stream. It closes after Close, or when the server says
	// bye (the subscription was unsubscribed server-side).
	C <-chan ecmsketch.Notification

	c      *Client
	id     string
	ch     chan ecmsketch.Notification
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

// ID is the server-side subscription ID (e.g. to unsubscribe out of band).
func (s *Subscription) ID() string { return s.id }

// Err reports why the stream ended: nil after a clean Close or a server-side
// unsubscribe, the terminal transport error otherwise.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Subscription) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Close ends the stream and removes the subscription server-side. Safe to
// call more than once.
func (s *Subscription) Close() error {
	s.cancel()
	// Best-effort server-side cleanup; the registry also drops the watcher
	// when the stream's request context ends.
	return s.c.Unsubscribe(s.id)
}

// Subscribe registers standing queries on the server (POST /v1/subscribe)
// and opens the watch stream (GET /v1/watch), delivering typed notifications
// on the returned Subscription's channel. The queries follow the
// ecmsketch.StandingQuery semantics; on coordinator surfaces, top-k queries
// must carry explicit Keys. buffer is the channel depth (<= 0 means 64); a
// consumer that stops draining stalls only its own channel — the server
// sheds it and the gap surfaces as a StandingDropped notification after the
// reconnect resume.
func (c *Client) Subscribe(ctx context.Context, queries []ecmsketch.StandingQuery, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = 64
	}
	body, err := marshalSubscribe(queries)
	if err != nil {
		return nil, err
	}
	var rep struct {
		Subscription string `json:"subscription"`
	}
	if err := c.post("/v1/subscribe", nil, bytes.NewReader(body), "application/json", &rep); err != nil {
		return nil, err
	}
	if rep.Subscription == "" {
		return nil, fmt.Errorf("ecmclient: subscribe reply carried no subscription ID")
	}
	ctx, cancel := context.WithCancel(ctx)
	sub := &Subscription{
		c:      c,
		id:     rep.Subscription,
		ch:     make(chan ecmsketch.Notification, buffer),
		cancel: cancel,
	}
	sub.C = sub.ch
	go sub.watchLoop(ctx)
	return sub, nil
}

// Unsubscribe removes a subscription server-side (DELETE /v1/subscribe);
// its watch streams end with a bye event.
func (c *Client) Unsubscribe(id string) error {
	u := c.base + "/v1/subscribe?sub=" + url.QueryEscape(id)
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// marshalSubscribe encodes queries in the subscribe wire shape (pre-digested
// keys travel as ikey decimal strings, like every other endpoint).
func marshalSubscribe(queries []ecmsketch.StandingQuery) ([]byte, error) {
	type wireKeyRef struct {
		IKey string `json:"ikey"`
	}
	type wireQuery struct {
		Kind        string       `json:"kind"`
		IKey        string       `json:"ikey,omitempty"`
		Keys        []wireKeyRef `json:"keys,omitempty"`
		K           int          `json:"k,omitempty"`
		Range       uint64       `json:"range,omitempty"`
		Value       float64      `json:"value,omitempty"`
		Below       bool         `json:"below,omitempty"`
		Factor      float64      `json:"factor,omitempty"`
		RankChanges bool         `json:"rankChanges,omitempty"`
	}
	out := struct {
		Queries []wireQuery `json:"queries"`
	}{Queries: make([]wireQuery, 0, len(queries))}
	for _, q := range queries {
		wq := wireQuery{
			Kind:        q.Kind.String(),
			K:           q.K,
			Range:       q.Range,
			Value:       q.Value,
			Below:       q.Below,
			Factor:      q.Factor,
			RankChanges: q.RankChanges,
		}
		if q.Kind != ecmsketch.StandingTopK {
			wq.IKey = strconv.FormatUint(q.Key, 10)
		}
		for _, k := range q.Keys {
			wq.Keys = append(wq.Keys, wireKeyRef{IKey: strconv.FormatUint(k, 10)})
		}
		out.Queries = append(out.Queries, wq)
	}
	return json.Marshal(out)
}

// watchLoop runs the connect → stream → backoff-and-resume cycle until the
// context ends or the server terminates the subscription.
func (s *Subscription) watchLoop(ctx context.Context) {
	defer close(s.ch)
	var (
		lastSeq uint64
		haveSeq bool // false only before the first hello
		backoff = 200 * time.Millisecond
	)
	for {
		terminal, err := s.watchOnce(ctx, &lastSeq, &haveSeq)
		if terminal || ctx.Err() != nil {
			if err != nil && ctx.Err() == nil {
				s.setErr(err)
			}
			return
		}
		// A stream that made progress resets the backoff ladder.
		if err == nil {
			backoff = 200 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// watchOnce opens one GET /v1/watch stream and pumps it. terminal reports
// that the loop must stop: the context ended, the server said bye or 404
// (subscription gone), or the request cannot be built.
func (s *Subscription) watchOnce(ctx context.Context, lastSeq *uint64, haveSeq *bool) (terminal bool, err error) {
	u := s.c.base + "/v1/watch?sub=" + url.QueryEscape(s.id)
	if *haveSeq {
		u += "&resume=" + strconv.FormatUint(*lastSeq, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return true, err
	}
	if s.c.token != "" {
		req.Header.Set("Authorization", "Bearer "+s.c.token)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusUnauthorized, http.StatusForbidden:
		// Gone or never ours; retrying would loop forever.
		return true, fmt.Errorf("ecmclient: GET /v1/watch: %s", resp.Status)
	default:
		return false, fmt.Errorf("ecmclient: GET /v1/watch: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			// Blank line dispatches the accumulated event.
			if done := s.dispatch(ctx, event, data, lastSeq, haveSeq); done {
				return true, nil
			}
			event, data = "", nil
		case line[0] == ':': // keep-alive comment
		case bytes.HasPrefix(line, []byte("event: ")):
			event = string(line[len("event: "):])
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append(data, line[len("data: "):]...)
		}
		// id: and retry: fields are redundant with the payload's seq and the
		// client's own backoff; skipped.
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return false, err
	}
	return ctx.Err() != nil, nil
}

// dispatch handles one SSE event. Returns true when the stream is finished
// for good (bye).
func (s *Subscription) dispatch(ctx context.Context, event string, data []byte, lastSeq *uint64, haveSeq *bool) bool {
	switch event {
	case "hello":
		var h struct {
			Seq string `json:"seq"`
		}
		if json.Unmarshal(data, &h) == nil && !*haveSeq {
			// First attach: gap accounting starts at the server's current
			// sequence; reconnects keep their own lastSeq and resume.
			if v, err := strconv.ParseUint(h.Seq, 10, 64); err == nil {
				*lastSeq, *haveSeq = v, true
			}
		}
	case "notify":
		n, err := standing.ParseNotificationJSON(data)
		if err != nil {
			return false
		}
		*lastSeq, *haveSeq = n.Seq, true
		s.deliver(ctx, n)
	case "dropped":
		var d struct {
			Missed uint64 `json:"missed"`
		}
		if json.Unmarshal(data, &d) == nil && d.Missed > 0 {
			s.deliver(ctx, ecmsketch.Notification{Kind: ecmsketch.StandingDropped, Missed: d.Missed})
		}
	case "bye":
		return true
	}
	return false
}

// deliver blocks until the consumer takes the notification (or the context
// ends): the client-side channel applies backpressure to this stream only —
// the server's own queue bound is what protects ingest.
func (s *Subscription) deliver(ctx context.Context, n ecmsketch.Notification) {
	select {
	case s.ch <- n:
	case <-ctx.Done():
	}
}
