package ecmclient_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/ecmclient"
	"ecmsketch/ecmserver"
	"ecmsketch/internal/standing"
)

// subscribeServer is an authenticated ecmserver plus a fire hook that
// causes exactly one rising crossing of key 42 (threshold 50) per call —
// the crossing arms, then the window slides past the burst to disarm.
func subscribeServer(t *testing.T) (*ecmserver.Server, *ecmclient.Client, func()) {
	t.Helper()
	const window = 10_000
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon:      0.05,
		Delta:        0.05,
		WindowLength: window,
		Algorithm:    "eh",
		Seed:         7,
		AuthToken:    "tok",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	var tick uint64
	fire := func() {
		tick++
		srv.Engine().AddBatch([]ecmsketch.Event{{Key: 42, Tick: tick, N: 100}})
		tick += window + 1
		srv.Engine().Advance(tick)
	}
	return srv, ecmclient.New(ts.URL, ecmclient.WithAuthToken("tok")), fire
}

func recvNotification(t *testing.T, sub *ecmclient.Subscription) ecmsketch.Notification {
	t.Helper()
	select {
	case n, ok := <-sub.C:
		if !ok {
			t.Fatalf("stream closed early (err: %v)", sub.Err())
		}
		return n
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a notification")
	}
	panic("unreachable")
}

// TestSubscribeDeliversAndResumes runs the typed client end to end against
// an authenticated server: deliveries arrive typed and in order; a
// server-side kick is healed by the automatic reconnect, resuming from the
// last delivered sequence with no duplicate and no miss; a server-side
// unsubscribe ends the stream cleanly.
func TestSubscribeDeliversAndResumes(t *testing.T) {
	srv, c, fire := subscribeServer(t)
	sub, err := c.Subscribe(context.Background(), []ecmsketch.StandingQuery{
		{Kind: ecmsketch.StandingThreshold, Key: 42, Value: 50},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitWatcher(t, srv, 1)
	for want := uint64(1); want <= 3; want++ {
		fire()
		n := recvNotification(t, sub)
		if n.Seq != want || n.Kind != ecmsketch.StandingThreshold || n.Key != 42 || !n.Rising {
			t.Fatalf("notification %+v, want rising threshold on key 42 seq %d", n, want)
		}
	}

	// Shed the connection server-side and fire twice more; whether the
	// client is reattached yet or the ring replays them on resume, seqs 4
	// and 5 must each arrive exactly once, in order.
	srv.Standing().Kick(sub.ID())
	fire()
	fire()
	for want := uint64(4); want <= 5; want++ {
		if n := recvNotification(t, sub); n.Seq != want {
			t.Fatalf("post-kick seq %d, want %d (no dup, no miss)", n.Seq, want)
		}
	}
	// And the healed stream is live.
	waitWatcher(t, srv, 1)
	fire()
	if n := recvNotification(t, sub); n.Seq != 6 {
		t.Fatalf("post-resume live seq %d, want 6", n.Seq)
	}

	// Server-side unsubscribe: bye ends the stream without error.
	if !srv.Standing().Unsubscribe(sub.ID()) {
		t.Fatal("subscription vanished")
	}
	select {
	case n, ok := <-sub.C:
		if ok {
			t.Fatalf("notification %+v after unsubscribe, want closed channel", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel did not close after server-side unsubscribe")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("clean bye reported error: %v", err)
	}
}

// waitWatcher blocks until the server counts n attached watchers — the
// reconnect loop runs on client-side backoff, so attachment is async.
func waitWatcher(t *testing.T, srv *ecmserver.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, watchers, _ := srv.Standing().Stats()
		if watchers == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchers = %d, want %d", watchers, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubscribeScriptedStream pins the client's SSE handling against a
// hand-scripted server: the resume query parameter carries the last
// delivered sequence, a dropped frame surfaces as a StandingDropped
// notification with the miss count, and bye closes the channel with no
// error.
func TestSubscribeScriptedStream(t *testing.T) {
	conns := make(chan string, 4) // resume param of each watch attach
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/subscribe", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"subscription":"scripted"}`)
	})
	mux.HandleFunc("DELETE /v1/subscribe", func(w http.ResponseWriter, r *http.Request) {})
	attach := 0
	mux.HandleFunc("GET /v1/watch", func(w http.ResponseWriter, r *http.Request) {
		attach++
		conns <- r.URL.Query().Get("resume")
		w.Header().Set("Content-Type", "text/event-stream")
		notify := func(n standing.Notification) {
			fmt.Fprintf(w, "event: notify\ndata: %s\n\n", standing.AppendNotificationJSON(nil, n))
		}
		switch attach {
		case 1:
			// Deliver seq 5, then die without a bye (forcing a resume).
			fmt.Fprint(w, "event: hello\ndata: {\"sub\":\"scripted\",\"seq\":\"0\"}\n\n")
			notify(standing.Notification{Seq: 5, Kind: standing.KindThreshold, Key: 42, Value: 60, Rising: true})
		default:
			// The ring no longer covers the gap: an explicit dropped marker,
			// one live notification, then a clean bye.
			fmt.Fprint(w, "event: hello\ndata: {\"sub\":\"scripted\",\"seq\":\"9\"}\n\n")
			fmt.Fprint(w, "event: dropped\ndata: {\"missed\":3}\n\n")
			notify(standing.Notification{Seq: 9, Kind: standing.KindThreshold, Key: 42, Value: 70, Rising: true})
			fmt.Fprint(w, "event: bye\ndata: {}\n\n")
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := ecmclient.New(ts.URL)
	sub, err := c.Subscribe(context.Background(), []ecmsketch.StandingQuery{
		{Kind: ecmsketch.StandingThreshold, Key: 42, Value: 50},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if resume := <-conns; resume != "" {
		t.Fatalf("first attach sent resume=%q, want none", resume)
	}
	if n := recvNotification(t, sub); n.Seq != 5 || n.Value != 60 {
		t.Fatalf("first notification %+v, want seq 5 value 60", n)
	}
	if resume := <-conns; resume != "5" {
		t.Fatalf("reconnect sent resume=%q, want 5 (last delivered seq)", resume)
	}
	if n := recvNotification(t, sub); n.Kind != ecmsketch.StandingDropped || n.Missed != 3 {
		t.Fatalf("notification %+v, want StandingDropped missed 3", n)
	}
	if n := recvNotification(t, sub); n.Seq != 9 {
		t.Fatalf("notification %+v, want seq 9", n)
	}
	select {
	case n, ok := <-sub.C:
		if ok {
			t.Fatalf("notification %+v after bye, want closed channel", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel did not close after bye")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("clean bye reported error: %v", err)
	}
}

// TestSubscribeTerminalOnWatch404: when the watch endpoint says the
// subscription is gone, the client must stop retrying, close the channel
// and surface the error.
func TestSubscribeTerminalOnWatch404(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/subscribe", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"subscription":"gone"}`)
	})
	mux.HandleFunc("DELETE /v1/subscribe", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /v1/watch", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unknown subscription", http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sub, err := ecmclient.New(ts.URL).Subscribe(context.Background(), []ecmsketch.StandingQuery{
		{Kind: ecmsketch.StandingThreshold, Key: 1, Value: 5},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("got a notification from a 404 watch")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel did not close on terminal 404")
	}
	if sub.Err() == nil {
		t.Fatal("terminal 404 left Err nil")
	}
}
