package ecmserver_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ecmsketch"
	"ecmsketch/ecmserver"
)

func newDeltaServer(t *testing.T) (*ecmserver.Server, *httptest.Server) {
	t.Helper()
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 1 << 62, Seed: 3, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestSnapshotSinceFlow drives the delta protocol over the raw HTTP
// surface: bootstrap baseline, incremental pull, and reconstruction
// byte-identical to the legacy full-snapshot route at every step.
func TestSnapshotSinceFlow(t *testing.T) {
	srv, ts := newDeltaServer(t)
	eng := srv.Engine()
	for e := 0; e < 1000; e++ {
		eng.Add(uint64(e%59), uint64(e+1))
	}

	var st ecmsketch.DeltaState
	pull := func(wantKind string) {
		t.Helper()
		resp, body := getRaw(t, ts.URL+"/v1/snapshot?since="+st.Cursor().String())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if kind := resp.Header.Get("X-Ecm-Delta"); kind != wantKind {
			t.Fatalf("kind %q, want %q", kind, wantKind)
		}
		cur, err := ecmsketch.ParseCursor(resp.Header.Get("X-Ecm-Cursor"))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(body, cur, wantKind == "full"); err != nil {
			t.Fatal(err)
		}
		got, err := st.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		_, legacy := getRaw(t, ts.URL+"/v1/snapshot")
		if !bytes.Equal(got.Marshal(), legacy) {
			t.Fatal("delta reconstruction differs from the legacy full route")
		}
	}

	pull("full")
	eng.Add(424242, 2000)
	pull("delta")
	eng.Advance(3000) // clock-only interval
	pull("delta")
}

// TestSnapshotGzip: the snapshot routes compress when (and only when) the
// request offers gzip and the payload is worth it.
func TestSnapshotGzip(t *testing.T) {
	srv, ts := newDeltaServer(t)
	eng := srv.Engine()
	for e := 0; e < 2000; e++ {
		eng.Add(uint64(e%211), uint64(e+1))
	}
	_, plain := getRaw(t, ts.URL+"/v1/snapshot")

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/snapshot", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req) // no transparent decompression
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("offered gzip, got Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if len(raw) >= len(plain) {
		t.Fatalf("gzip body %dB not smaller than identity %dB", len(raw), len(plain))
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inflated, plain) {
		t.Fatal("gzip payload does not inflate to the identity payload")
	}

	// A near-empty delta reply stays identity-coded: compressing a few
	// dozen bytes would grow them.
	resp2, body := getRaw(t, ts.URL+"/v1/snapshot?since=0")
	_ = body
	cur := resp2.Header.Get("X-Ecm-Cursor")
	req3, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/snapshot?since="+cur, nil)
	req3.Header.Set("Accept-Encoding", "gzip")
	resp3, err := http.DefaultTransport.RoundTrip(req3)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.Header.Get("Content-Encoding") == "gzip" {
		t.Fatal("tiny delta reply was gzipped")
	}
	if len(small) > 128 {
		t.Fatalf("idle delta reply is %dB", len(small))
	}
}

// TestScalarStringsAt2pow60: every scalar 64-bit reply field of the /v1
// surface — estimate range, interval from/to, selfjoin/total range, advance
// now — renders as an exact decimal string under ?strings=1 at ticks beyond
// 2^53, and stays numeric without it.
func TestScalarStringsAt2pow60(t *testing.T) {
	_, ts := newDeltaServer(t)
	const tick = uint64(1) << 60
	const tickStr = "1152921504606846976"

	post := func(path string) map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	get := func(path string) map[string]json.RawMessage {
		t.Helper()
		resp, body := getRaw(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		var out map[string]json.RawMessage
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	wantString := func(out map[string]json.RawMessage, field string) {
		t.Helper()
		if string(out[field]) != `"`+tickStr+`"` {
			t.Fatalf("%s = %s, want %q", field, out[field], tickStr)
		}
	}
	wantNumeric := func(out map[string]json.RawMessage, field string) {
		t.Helper()
		if len(out[field]) == 0 || out[field][0] == '"' {
			t.Fatalf("%s = %s, want a JSON number", field, out[field])
		}
	}

	out := post("/v1/advance?t=" + tickStr + "&strings=1")
	wantString(out, "now")
	out = post("/v1/advance?t=" + tickStr)
	wantNumeric(out, "now")

	out = get("/v1/estimate?ikey=5&range=" + tickStr + "&strings=1")
	wantString(out, "range")
	out = get("/v1/estimate?ikey=5&range=" + tickStr)
	wantNumeric(out, "range")

	out = get("/v1/interval?ikey=5&from=1&to=" + tickStr + "&strings=1")
	wantString(out, "to")
	if string(out["from"]) != `"1"` {
		t.Fatalf("from = %s, want \"1\"", out["from"])
	}

	out = get("/v1/selfjoin?range=" + tickStr + "&strings=1")
	wantString(out, "range")
	out = get("/v1/total?range=" + tickStr + "&strings=1")
	wantString(out, "range")
}
