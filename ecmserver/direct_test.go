package ecmserver

import (
	"fmt"
	"net/http/httptest"
	"testing"
)

// seedDirect ingests a small deterministic stream through the HTTP surface.
func seedDirect(t *testing.T, srv *Server) {
	t.Helper()
	for i := 0; i < 50; i++ {
		code, _ := doJSON(t, srv, "POST", fmt.Sprintf("/v1/add?ikey=%d&t=%d&n=3", i%5, i+1), "")
		if code != 200 {
			t.Fatalf("add %d: status %d", i, code)
		}
	}
}

// TestQueryDirectParam pins ?direct=1 on POST /v1/query: point answers equal
// the batched ones on a quiet engine, no merged view is built, and
// aggregate requests are rejected with 400.
func TestQueryDirectParam(t *testing.T) {
	srv := testServer(t)
	seedDirect(t, srv)

	body := `{"keys":[{"ikey":"0"},{"ikey":"3"},{"ikey":"99"}],"range":1000}`
	code, batched := doJSON(t, srv, "POST", "/v1/query", body)
	if code != 200 {
		t.Fatalf("batched query: status %d", code)
	}
	rebuilds := srv.Engine().ViewRebuilds()

	code, direct := doJSON(t, srv, "POST", "/v1/query?direct=1", body)
	if code != 200 {
		t.Fatalf("direct query: status %d", code)
	}
	b := batched["estimates"].([]any)
	d := direct["estimates"].([]any)
	if len(b) != 3 || len(d) != 3 {
		t.Fatalf("estimates lengths: batched %d direct %d", len(b), len(d))
	}
	for i := range b {
		if b[i] != d[i] {
			t.Fatalf("estimate %d: direct %v != batched %v", i, d[i], b[i])
		}
	}
	if got := srv.Engine().ViewRebuilds(); got != rebuilds {
		t.Fatalf("direct query triggered %d view rebuilds", got-rebuilds)
	}

	code, _ = doJSON(t, srv, "POST", "/v1/query?direct=1", `{"keys":[{"ikey":"1"}],"total":true}`)
	if code != 400 {
		t.Fatalf("direct query with total: status %d, want 400", code)
	}
}

// TestQueryGet pins the GET form of /v1/query: repeated key=/ikey=
// parameters in request order, range resolution, aggregates, and ?direct=1.
func TestQueryGet(t *testing.T) {
	srv := testServer(t)
	seedDirect(t, srv)

	code, out := doJSON(t, srv, "GET", "/v1/query?ikey=0&ikey=3&range=1000&total=1", "")
	if code != 200 {
		t.Fatalf("GET query: status %d", code)
	}
	ests := out["estimates"].([]any)
	if len(ests) != 2 {
		t.Fatalf("estimates length %d, want 2", len(ests))
	}
	if _, ok := out["total"]; !ok {
		t.Fatal("total=1 reply missing total")
	}

	// GET and POST answer identically for the same batch.
	code, post := doJSON(t, srv, "POST", "/v1/query", `{"keys":[{"ikey":"0"},{"ikey":"3"}],"range":1000}`)
	if code != 200 {
		t.Fatalf("POST query: status %d", code)
	}
	pests := post["estimates"].([]any)
	for i := range ests {
		if ests[i] != pests[i] {
			t.Fatalf("estimate %d: GET %v != POST %v", i, ests[i], pests[i])
		}
	}

	// Direct GET rejects aggregates like the POST form.
	if code, _ := doJSON(t, srv, "GET", "/v1/query?ikey=0&total=1&direct=1", ""); code != 400 {
		t.Fatalf("GET direct with total: status %d, want 400", code)
	}
	if code, _ := doJSON(t, srv, "GET", "/v1/query?ikey=0&direct=1", ""); code != 200 {
		t.Fatalf("GET direct: status %d", code)
	}
}

// TestStatsRebuildBlock pins the /v1/stats rebuild block: after a global
// query forces a view build, merge_ns and workers are present — and
// merge_ns honors ?strings=1 like every other 64-bit field.
func TestStatsRebuildBlock(t *testing.T) {
	srv := testServer(t)
	seedDirect(t, srv)
	if code, _ := doJSON(t, srv, "GET", "/v1/selfjoin?range=1000", ""); code != 200 {
		t.Fatal("selfjoin failed")
	}

	code, out := doJSON(t, srv, "GET", "/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	rb, ok := out["rebuild"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing rebuild block: %v", out)
	}
	if ns, ok := rb["merge_ns"].(float64); !ok || ns <= 0 {
		t.Fatalf("rebuild merge_ns = %v, want positive number", rb["merge_ns"])
	}
	if w, ok := rb["workers"].(float64); !ok || w < 1 {
		t.Fatalf("rebuild workers = %v, want >= 1", rb["workers"])
	}

	_, outS := doJSON(t, srv, "GET", "/v1/stats?strings=1", "")
	rbS := outS["rebuild"].(map[string]any)
	if _, ok := rbS["merge_ns"].(string); !ok {
		t.Fatalf("rebuild merge_ns with ?strings=1 = %T, want string", rbS["merge_ns"])
	}
}

// TestProfilingMount pins the pprof surface: absent by default, mounted
// with EnableProfiling, and behind the bearer check when a token is set —
// the profiling routes are never reachable unauthenticated on an
// authenticated server.
func TestProfilingMount(t *testing.T) {
	plain := testServer(t)
	req := httptest.NewRequest("GET", "/debug/pprof/cmdline", nil)
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, req)
	if rec.Code != 404 {
		t.Fatalf("pprof reachable without EnableProfiling: status %d", rec.Code)
	}

	srv, err := New(Config{
		Epsilon: 0.05, Delta: 0.05, WindowLength: 10000, Algorithm: "eh",
		Seed: 7, AuthToken: "s3cret", EnableProfiling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 401 {
		t.Fatalf("pprof reachable without token: status %d", rec.Code)
	}
	req = httptest.NewRequest("GET", "/debug/pprof/cmdline", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("pprof with token: status %d", rec.Code)
	}
}
