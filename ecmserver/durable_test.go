package ecmserver_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecmsketch"
	"ecmsketch/ecmserver"
)

// TestDeltaCursorSurvivesServerRestart pins the acceptance contract of the
// durable subsystem at the HTTP surface: a coordinator that pulled a
// baseline and holds a delta cursor keeps its cursor valid across a server
// restart on the same data store — the restarted server answers it with an
// incremental delta (X-Ecm-Delta: delta, not a re-baselining full), and the
// applied delta reconstructs the engine's merged state exactly.
func TestDeltaCursorSurvivesServerRestart(t *testing.T) {
	for _, clean := range []bool{true, false} {
		t.Run(map[bool]string{true: "clean_shutdown", false: "crash"}[clean], func(t *testing.T) {
			store := ecmsketch.NewMemStore()
			cfg := ecmserver.Config{
				Epsilon: 0.1, Delta: 0.1, WindowLength: 1 << 62, Seed: 3, Shards: 4,
				DurableStore: store,
			}
			srv1, err := ecmserver.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts1 := httptest.NewServer(srv1)

			ingest := func(ts *httptest.Server, lines string) {
				t.Helper()
				resp, err := http.Post(ts.URL+"/v1/batch", "text/plain", strings.NewReader(lines))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("batch status %d", resp.StatusCode)
				}
			}
			ingest(ts1, "alpha,100\nbeta,101\nalpha,102,3\ngamma,103\n")

			// The coordinator-side puller: baseline once, then deltas.
			var st ecmsketch.DeltaState
			pull := func(ts *httptest.Server, wantKind string) {
				t.Helper()
				resp, body := getRaw(t, ts.URL+"/v1/snapshot?since="+st.Cursor().String())
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("snapshot status %d", resp.StatusCode)
				}
				if kind := resp.Header.Get("X-Ecm-Delta"); kind != wantKind {
					t.Fatalf("kind %q, want %q", kind, wantKind)
				}
				cur, err := ecmsketch.ParseCursor(resp.Header.Get("X-Ecm-Cursor"))
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Apply(body, cur, wantKind == "full"); err != nil {
					t.Fatalf("apply %s: %v", wantKind, err)
				}
			}
			pull(ts1, "full")
			ingest(ts1, "delta-key,200\nalpha,201\n")
			pull(ts1, "delta")

			// More arrivals the held cursor has not seen, then the restart.
			ingest(ts1, "post-cursor,300\nbeta,301,2\n")
			epoch := srv1.Engine().DurabilityStats().Epoch
			ts1.Close()
			if clean {
				if err := srv1.Close(); err != nil {
					t.Fatal(err)
				}
			} else {
				srv1.Engine().Flush() // the durability barrier; then crash
				srv1.Engine().CloseAbrupt()
			}

			srv2, err := ecmserver.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Close()
			ts2 := httptest.NewServer(srv2)
			defer ts2.Close()

			// /v1/stats reports the durability block with the same epoch.
			_, statsBody := getRaw(t, ts2.URL+"/v1/stats")
			var stats struct {
				Durability struct {
					Enabled   bool    `json:"enabled"`
					Epoch     float64 `json:"epoch"`
					Recovered bool    `json:"recovered"`
				} `json:"durability"`
			}
			if err := json.Unmarshal(statsBody, &stats); err != nil {
				t.Fatal(err)
			}
			if !stats.Durability.Enabled || !stats.Durability.Recovered {
				t.Fatalf("stats durability block: %+v", stats.Durability)
			}
			if got := srv2.Engine().DurabilityStats().Epoch; got != epoch {
				t.Fatalf("epoch across restart: %x want %x", got, epoch)
			}

			// The pre-restart cursor is honored with a delta, and the
			// reconstruction matches the engine's merged state exactly.
			pull(ts2, "delta")
			got, err := st.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			_, legacy := getRaw(t, ts2.URL+"/v1/snapshot")
			if !bytes.Equal(got.Marshal(), legacy) {
				t.Fatal("post-restart delta reconstruction differs from the merged snapshot")
			}

			// And the restarted server keeps ingesting + serving deltas.
			ingest(ts2, "after-restart,400\n")
			pull(ts2, "delta")
		})
	}
}

// TestServerDataDir exercises the DataDir spelling of durability (the
// cmd/ecmserve flag path): state persists under the directory and a second
// server over the same directory recovers it.
func TestServerDataDir(t *testing.T) {
	dir := t.TempDir()
	cfg := ecmserver.Config{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 1 << 62, Seed: 3, Shards: 2,
		DataDir: dir,
	}
	srv1, err := ecmserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Engine().Add(ecmsketch.KeyString("persisted"), 100)
	count := srv1.Engine().Count()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := ecmserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if !srv2.Engine().DurabilityStats().Recovered {
		t.Fatal("DataDir restart did not recover")
	}
	if got := srv2.Engine().Count(); got != count {
		t.Fatalf("recovered count %d, want %d", got, count)
	}
	if est := srv2.Engine().Estimate(ecmsketch.KeyString("persisted"), 1<<62); est < 1 {
		t.Fatalf("recovered estimate %v, want >= 1", est)
	}
}
