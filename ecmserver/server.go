// Package ecmserver is the embeddable HTTP front end over an ECM-sketch
// engine: collectors POST arrivals, dashboards GET sliding-window
// estimates, and a coordinator can pull the serialized sketch to aggregate
// several sites (see cmd/ecmcoord, or ecmsketch.Merge programmatically).
//
// The engine behind the API is a lock-striped ecmsketch.Sharded, so
// concurrent collectors contend per key stripe instead of on one global
// lock. Routes are versioned under /v1/ (POST /v1/add, POST /v1/batch,
// POST /v1/events, GET /v1/estimate, ...); the unversioned paths of
// earlier deployments remain as thin aliases. cmd/ecmserve wires this
// package behind flags; ecmclient speaks the /v1 API as a typed Go client.
package ecmserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ecmsketch"
	"ecmsketch/internal/standing"
	"ecmsketch/internal/wire"
)

// Config configures the sketch engine behind the HTTP API.
type Config struct {
	Epsilon      float64
	Delta        float64
	WindowLength uint64
	Algorithm    string // "eh", "dw" or "rw"
	UpperBound   uint64
	Seed         uint64
	// TopK enables the /v1/topk endpoint tracking this many hottest keys.
	TopK int
	// Shards is the lock-stripe count of the engine; 0 means GOMAXPROCS.
	Shards int
	// MergeTTL bounds the staleness of global queries (selfjoin, total,
	// sketch pulls) served from the engine's cached merged view; 0 means
	// always fresh.
	MergeTTL time.Duration
	// RefreshInterval, when positive, rebuilds stale merged views in a
	// background goroutine instead of on the tail of whichever reader trips
	// the TTL; set it at or below MergeTTL. Servers configured with it
	// should be Closed on shutdown.
	RefreshInterval time.Duration
	// AuthToken, when non-empty, requires "Authorization: Bearer <AuthToken>"
	// on every route (constant-time compared); unauthenticated requests get
	// 401. Empty leaves the server open, as before.
	AuthToken string
	// EnableProfiling mounts net/http/pprof under /debug/pprof/ for CPU and
	// heap profiling of live ingest/merge workloads. The mount registers on
	// the same mux every API route lives on, inside the bearer wrapper: with
	// AuthToken set, profiles require the token like everything else — the
	// profiling surface is never reachable unauthenticated on an
	// authenticated server.
	EnableProfiling bool
	// DataDir, when non-empty, makes the engine durable: epoch, periodic
	// arena snapshots and a write-ahead log of ingested batches persist
	// under this directory, and a restarted server replays to exactly its
	// pre-crash state — same epoch, same cell versions — so coordinators
	// holding delta cursors keep pulling increments instead of
	// re-baselining. Empty (the default) keeps the engine memory-only.
	DataDir string
	// SnapshotInterval is the durable checkpoint cadence (see
	// ecmsketch.DurabilityConfig.SnapshotInterval); meaningful only with
	// DataDir or DurableStore set. 0 checkpoints only at startup and
	// shutdown, letting the WAL grow between them.
	SnapshotInterval time.Duration
	// WALSyncInterval is the WAL fsync cadence (see
	// ecmsketch.DurabilityConfig.SyncInterval): 0 fsyncs every append;
	// a positive interval group-commits in the background.
	WALSyncInterval time.Duration
	// DurableStore, when non-nil, supplies the persistence backend directly
	// (e.g. ecmsketch.NewMemStore in tests) and takes precedence over
	// DataDir.
	DurableStore ecmsketch.DurableStore
}

// Server is an HTTP front end over a sharded ECM-sketch engine. All
// handlers are safe for concurrent use; ingest contends only per key
// stripe.
type Server struct {
	engine  *ecmsketch.Sharded
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler // mux, wrapped with bearer auth when configured

	// topkMu guards the TopK candidate set; the stream itself lives in the
	// shared engine (single ingest, no private second sketch).
	topkMu sync.Mutex
	topk   *ecmsketch.TopK // nil unless TopK > 0

	// standing evaluates continuous queries incrementally off the engine's
	// change feed and fans fired notifications out over /v1/watch (SSE).
	standing *ecmsketch.StandingRegistry
}

// New builds the engine and routes.
func New(cfg Config) (*Server, error) {
	algo, err := ParseAlgo(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	params := ecmsketch.Params{
		Epsilon:      cfg.Epsilon,
		Delta:        cfg.Delta,
		Algorithm:    algo,
		WindowLength: cfg.WindowLength,
		UpperBound:   cfg.UpperBound,
		Seed:         cfg.Seed,
	}
	shCfg := ecmsketch.ShardedConfig{
		Params:          params,
		Shards:          cfg.Shards,
		MergeTTL:        cfg.MergeTTL,
		RefreshInterval: cfg.RefreshInterval,
	}
	store := cfg.DurableStore
	if store == nil && cfg.DataDir != "" {
		store, err = ecmsketch.NewFileStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
	}
	if store != nil {
		shCfg.Durability = &ecmsketch.DurabilityConfig{
			Store:            store,
			SnapshotInterval: cfg.SnapshotInterval,
			SyncInterval:     cfg.WALSyncInterval,
		}
	}
	engine, err := ecmsketch.NewSharded(shCfg)
	if err != nil {
		return nil, err
	}
	return NewOver(cfg, engine)
}

// NewOver builds the routes over an engine the caller already owns (and
// keeps using: the server adds no locking of its own beyond the engine's).
// cfg supplies the reply defaults — WindowLength for query ranges, the
// stats fields — and should match the engine's construction; the engine is
// not rebuilt or validated against it.
func NewOver(cfg Config, engine *ecmsketch.Sharded) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("ecmserver: NewOver requires an engine")
	}
	s := &Server{engine: engine, cfg: cfg, mux: http.NewServeMux()}
	if cfg.TopK > 0 {
		tk, err := ecmsketch.NewTopKOver(cfg.TopK, engine, cfg.WindowLength)
		if err != nil {
			return nil, err
		}
		s.topk = tk
		s.route("GET", "/topk", s.handleTopK)
	}
	s.route("POST", "/add", s.handleAdd)
	s.route("POST", "/batch", s.handleBatch)
	s.route("GET", "/estimate", s.handleEstimate)
	s.route("GET", "/interval", s.handleInterval)
	s.route("GET", "/selfjoin", s.handleSelfJoin)
	s.route("GET", "/total", s.handleTotal)
	s.route("GET", "/stats", s.handleStats)
	s.route("GET", "/sketch", s.handleSketch)
	s.route("POST", "/advance", s.handleAdvance)
	// JSON batch ingest, batched queries and coordinator snapshot pulls
	// exist only under the versioned prefix.
	s.mux.HandleFunc("POST /v1/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/query", s.handleQueryGet)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)

	// Standing queries: the registry re-checks its predicates incrementally
	// on the engine's change feed (synchronously after each mutation's locks
	// release) and pushes fired notifications to /v1/watch streams. The rw
	// engine's randomized expiry is not monotone under pure advances, so it
	// runs with the strict re-check policy.
	s.standing = ecmsketch.NewStandingRegistry(ecmsketch.StandingConfig{
		Window:        cfg.WindowLength,
		StrictAdvance: strings.EqualFold(cfg.Algorithm, "rw"),
	})
	s.standing.Bind(engine)
	engine.SetNotifier(s.standing)
	svc := &standing.Service{Reg: s.standing}
	s.mux.HandleFunc("POST /v1/subscribe", svc.HandleSubscribe)
	s.mux.HandleFunc("DELETE /v1/subscribe", svc.HandleUnsubscribe)
	s.mux.HandleFunc("GET /v1/watch", svc.HandleWatch)

	if cfg.EnableProfiling {
		// Registered inside the mux the bearer wrapper guards — see
		// Config.EnableProfiling. The default-mux side effects of importing
		// net/http/pprof are irrelevant here; these are explicit routes.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	s.handler = wire.RequireBearer(cfg.AuthToken, s.mux)
	return s, nil
}

// Close releases server-held background resources: the standing-query hook
// is detached from the engine (and every watch stream ended) before the
// engine's view refresher is stopped. Idempotent.
func (s *Server) Close() error {
	s.engine.SetNotifier(nil)
	return s.engine.Close()
}

// route registers a handler under the versioned /v1 prefix and the legacy
// unversioned path.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	s.mux.HandleFunc(method+" /v1"+path, h)
	s.mux.HandleFunc(method+" "+path, h)
}

// Engine exposes the sketch engine backing the server (e.g. to share it
// with other in-process consumers).
func (s *Server) Engine() *ecmsketch.Sharded { return s.engine }

// Standing exposes the standing-query registry behind /v1/subscribe and
// /v1/watch, for in-process subscribers and tests.
func (s *Server) Standing() *ecmsketch.StandingRegistry { return s.standing }

// ParseAlgo resolves the wire names of the counter algorithms.
func ParseAlgo(s string) (ecmsketch.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "eh":
		return ecmsketch.AlgoEH, nil
	case "dw":
		return ecmsketch.AlgoDW, nil
	case "rw":
		return ecmsketch.AlgoRW, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want eh, dw or rw)", s)
	}
}

// ServeHTTP implements http.Handler. When Config.AuthToken is set, every
// route — legacy aliases included — sits behind the bearer check.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// The /v1 request/reply conventions — key parsing, ?strings=1 encoding,
// the snapshot writer — live in the shared internal/wire codec, which
// cmd/ecmcoord's coordinator surface builds on too, so the two tiers
// cannot drift.
var (
	parseKey  = wire.ParseKey
	parseU64  = wire.ParseU64
	httpError = wire.Error
	respond   = wire.Respond
)

// ingest feeds one arrival through the engine, keeping the TopK candidate
// set in sync when enabled. The engine ingests the stream exactly once
// either way, and always outside topkMu — the stripe locks, not the
// candidate-set mutex, are the concurrency bottleneck.
func (s *Server) ingest(key uint64, t ecmsketch.Tick, n uint64) {
	s.engine.AddN(key, t, n)
	if s.topk != nil {
		s.topkMu.Lock()
		s.topk.Note(key)
		s.topkMu.Unlock()
	}
}

// ingestBatch feeds a batch through the engine's lock-amortized path and
// then registers the keys as TopK candidates without re-ingesting.
func (s *Server) ingestBatch(events []ecmsketch.Event) {
	s.engine.AddBatch(events)
	if s.topk != nil {
		s.topkMu.Lock()
		for _, ev := range events {
			s.topk.Note(ev.Key)
		}
		s.topkMu.Unlock()
	}
}

// handleAdd registers one arrival: POST /v1/add?key=/home&t=12345[&n=3].
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t, err := parseU64(r, "t", 0)
	if err != nil || t == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or bad t parameter"))
		return
	}
	n, err := parseU64(r, "n", 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.ingest(key, t, n)
	respond(w, map[string]any{"ok": true})
}

// ingestFlushEvery bounds the memory of streaming batch uploads: parsed
// events are flushed into the engine in chunks of this many, so arbitrarily
// long request bodies never accumulate in full.
const ingestFlushEvery = 4096

// handleBatch ingests newline-separated "key,tick[,count]" records:
// POST /v1/batch with a text body. Returns the number of accepted records
// and the first error encountered, if any. Records are applied in chunks
// as the body streams in, so a huge upload costs bounded memory (malformed
// lines are skipped, as reported, not rolled back).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	accepted, lineNo := 0, 0
	var firstErr string
	events := make([]ecmsketch.Event, 0, ingestFlushEvery)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			if firstErr == "" {
				firstErr = fmt.Sprintf("line %d: want key,tick[,count]", lineNo)
			}
			continue
		}
		t, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			if firstErr == "" {
				firstErr = fmt.Sprintf("line %d: bad tick: %v", lineNo, err)
			}
			continue
		}
		n := uint64(1)
		if len(parts) >= 3 {
			if n, err = strconv.ParseUint(strings.TrimSpace(parts[2]), 10, 64); err != nil {
				if firstErr == "" {
					firstErr = fmt.Sprintf("line %d: bad count: %v", lineNo, err)
				}
				continue
			}
		}
		key := ecmsketch.KeyString(strings.TrimSpace(parts[0]))
		events = append(events, ecmsketch.Event{Key: key, Tick: t, N: n})
		accepted++
		if len(events) == ingestFlushEvery {
			s.ingestBatch(events)
			events = events[:0]
		}
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.ingestBatch(events)
	resp := map[string]any{"accepted": accepted}
	if firstErr != "" {
		resp["firstError"] = firstErr
	}
	respond(w, resp)
}

// WireEvent is the JSON form of one batched arrival on POST /v1/events.
// Exactly one of Key (string, digested server-side) or IKey (decimal
// uint64, kept as a string so >2^53 digests survive non-Go JSON stacks)
// identifies the item.
type WireEvent struct {
	Key  string `json:"key,omitempty"`
	IKey string `json:"ikey,omitempty"`
	T    uint64 `json:"t"`
	N    uint64 `json:"n,omitempty"`
}

// handleEvents ingests a JSON array of arrivals: POST /v1/events with body
// [{"key":"/home","t":12345,"n":2}, {"ikey":"17446744073709551615","t":12346}].
// The array is decoded element by element and flushed into the engine in
// chunks, so body size does not bound memory; an error mid-stream returns
// 400 with the count already accepted (earlier chunks are not rolled back).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	accepted := 0
	fail := func(err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "accepted": accepted})
	}
	if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
		fail(fmt.Errorf("bad events body: want a JSON array"))
		return
	}
	events := make([]ecmsketch.Event, 0, ingestFlushEvery)
	for i := 0; dec.More(); i++ {
		var ev WireEvent
		if err := dec.Decode(&ev); err != nil {
			fail(fmt.Errorf("event %d: %v", i, err))
			return
		}
		var key uint64
		switch {
		case ev.Key != "":
			key = ecmsketch.KeyString(ev.Key)
		case ev.IKey != "":
			v, err := strconv.ParseUint(ev.IKey, 10, 64)
			if err != nil {
				fail(fmt.Errorf("event %d: bad ikey: %v", i, err))
				return
			}
			key = v
		default:
			fail(fmt.Errorf("event %d: missing key or ikey", i))
			return
		}
		if ev.T == 0 {
			fail(fmt.Errorf("event %d: missing or zero t", i))
			return
		}
		events = append(events, ecmsketch.Event{Key: key, Tick: ev.T, N: ev.N})
		if len(events) == ingestFlushEvery {
			s.ingestBatch(events)
			accepted += len(events)
			events = events[:0]
		}
	}
	if tok, err := dec.Token(); err != nil || tok != json.Delim(']') {
		fail(fmt.Errorf("bad events body: unterminated array"))
		return
	}
	s.ingestBatch(events)
	accepted += len(events)
	respond(w, map[string]any{"accepted": accepted})
}

// MaxQueryKeys re-exports the per-request key cap of POST /v1/query (see
// wire.MaxQueryKeys): a batch of point queries is answered in full, so the
// request size itself is capped and oversized batches are rejected with 400
// before their tail is even parsed.
const MaxQueryKeys = wire.MaxQueryKeys

// WireQueryKey identifies one queried item on POST /v1/query, mirroring
// WireEvent: exactly one of Key (string, digested server-side) or IKey
// (decimal uint64, kept as a string so >2^53 digests survive non-Go JSON
// stacks).
type WireQueryKey struct {
	Key  string `json:"key,omitempty"`
	IKey string `json:"ikey,omitempty"`
}

// WireQueryResult is the JSON reply of POST /v1/query: one estimate per
// requested key in request order, the aggregates if requested, and the
// engine clock the consistent cut was taken at. Now and Range are 64-bit
// ticks; requests carrying ?strings=1 receive them as decimal strings
// (see wantStrings) via wireQueryResultStrings instead.
type WireQueryResult struct {
	Estimates []float64 `json:"estimates"`
	Total     *float64  `json:"total,omitempty"`
	SelfJoin  *float64  `json:"selfJoin,omitempty"`
	Now       uint64    `json:"now"`
	Range     uint64    `json:"range"`
}

// wireQueryResultStrings is WireQueryResult with the 64-bit tick fields
// encoded as decimal strings, the ?strings=1 reply shape.
type wireQueryResultStrings struct {
	Estimates []float64 `json:"estimates"`
	Total     *float64  `json:"total,omitempty"`
	SelfJoin  *float64  `json:"selfJoin,omitempty"`
	Now       string    `json:"now"`
	Range     string    `json:"range"`
}

// ParseQueryBody decodes a POST /v1/query request body into a QueryBatch
// under the strict wire semantics of the versioned API; it delegates to the
// shared codec (wire.ParseQueryBody), which every tier serving the route —
// this site server, the ecmcoord coordinator surface — validates through.
func ParseQueryBody(body io.Reader) (ecmsketch.QueryBatch, error) {
	return wire.ParseQueryBody(body)
}

// handleQuery answers a batched multi-key query from one consistent cut of
// the engine's merged view: POST /v1/query with body
//
//	{"keys":[{"key":"/home"},{"ikey":"17446744073709551615"}],
//	 "range":60000,"total":true,"selfJoin":true}
//
// An omitted or zero range means the whole window; see ParseQueryBody for
// the strict body semantics.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := ParseQueryBody(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.answerQuery(w, r, q)
}

// handleQueryGet answers the GET form of /v1/query: repeated key=/ikey=
// parameters plus range=, total=1, selfJoin=1 — the curl-friendly spelling
// of the same batch the POST body carries. Both forms honor ?direct=1.
func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	q, err := wire.ParseQueryParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.answerQuery(w, r, q)
}

// answerQuery evaluates a parsed QueryBatch and writes the /v1 reply.
// ?direct=1 routes through the zero-merge path: each key answered from its
// owning stripe, no merged view built or consulted (aggregates rejected
// with 400, since they need the view) — an inconsistent cut traded for
// zero merge error and zero rebuild cost.
func (s *Server) answerQuery(w http.ResponseWriter, r *http.Request, q ecmsketch.QueryBatch) {
	var res ecmsketch.QueryResult
	var err error
	if wire.WantDirect(r) {
		res, err = s.engine.QueryDirect(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	} else if res, err = s.engine.QueryBatch(q); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := WireQueryResult{Estimates: res.Estimates, Now: res.Now, Range: res.Range}
	if out.Estimates == nil {
		out.Estimates = []float64{} // aggregate-only queries still reply with an array
	}
	if q.Total {
		out.Total = &res.Total
	}
	if q.SelfJoin {
		out.SelfJoin = &res.SelfJoin
	}
	if wantStrings(r) {
		respond(w, wireQueryResultStrings{
			Estimates: out.Estimates,
			Total:     out.Total,
			SelfJoin:  out.SelfJoin,
			Now:       strconv.FormatUint(out.Now, 10),
			Range:     strconv.FormatUint(out.Range, 10),
		})
		return
	}
	respond(w, out)
}

// handleEstimate answers a point query: GET /v1/estimate?key=/home&range=60000.
// Key-hash routing answers from the single shard owning the key.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	respond(w, map[string]any{"estimate": s.engine.Estimate(key, rng), "range": u64field(wantStrings(r), rng)})
}

// handleInterval answers a point query over an arbitrary tick interval:
// GET /v1/interval?key=/home&from=1000&to=2000 estimates the key's
// frequency within (from, to]. Interval queries carry twice the window
// error of suffix queries.
func (s *Server) handleInterval(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	from, err := parseU64(r, "from", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	to, err := parseU64(r, "to", 0)
	if err != nil || to == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or bad to parameter"))
		return
	}
	est := s.engine.EstimateInterval(key, from, to)
	asStrings := wantStrings(r)
	respond(w, map[string]any{"estimate": est, "from": u64field(asStrings, from), "to": u64field(asStrings, to)})
}

// handleSelfJoin answers GET /v1/selfjoin?range=60000 from the merged view.
func (s *Server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	respond(w, map[string]any{"selfJoin": s.engine.SelfJoin(rng), "range": u64field(wantStrings(r), rng)})
}

// handleTotal answers GET /v1/total?range=60000 with the estimated ‖a_r‖₁.
func (s *Server) handleTotal(w http.ResponseWriter, r *http.Request) {
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	respond(w, map[string]any{"total": s.engine.EstimateTotal(rng), "range": u64field(wantStrings(r), rng)})
}

// wantStrings and u64field are the shared ?strings=1 convention (see
// wire.WantStrings): string-encoded 64-bit tick/count reply fields for
// JSON consumers above 2^53. Every scalar 64-bit reply field of the /v1
// surface — now, count, range, from, to, window, viewRebuilds — honors it.
var (
	wantStrings = wire.WantStrings
	u64field    = wire.U64Field
)

// handleStats reports engine dimensions, clock and footprint. With
// ?strings=1, the 64-bit tick/count fields (now, count, window,
// viewRebuilds) are encoded as decimal strings.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	asStrings := wantStrings(r)
	subs, queries, watchers, dropped := s.standing.Stats()
	respond(w, map[string]any{
		"standing": map[string]any{
			"subscriptions": subs,
			"queries":       queries,
			"watchers":      watchers,
			"dropped":       u64field(asStrings, dropped),
		},
		"width":        s.engine.Width(),
		"depth":        s.engine.Depth(),
		"shards":       s.engine.Shards(),
		"now":          u64field(asStrings, s.engine.Now()),
		"count":        u64field(asStrings, s.engine.Count()),
		"memoryBytes":  s.engine.MemoryBytes(),
		"viewRebuilds": u64field(asStrings, s.engine.ViewRebuilds()),
		"rebuild":      rebuildStatsField(asStrings, s.engine),
		"epsilon":      s.cfg.Epsilon,
		"delta":        s.cfg.Delta,
		"window":       u64field(asStrings, s.cfg.WindowLength),
		"algorithm":    s.cfg.Algorithm,
		"apiVersion":   "v1",
		"durability":   durabilityStatsField(asStrings, s.engine),
	})
}

// durabilityStatsField renders the durability block of /v1/stats: whether
// the engine persists, the epoch it serves deltas under, the last
// checkpoint (engine tick and wall clock), the WAL volume accumulated since
// it, and the latency of the most recent fsync. Disabled engines report
// {"enabled": false} only. 64-bit counters honor ?strings=1.
func durabilityStatsField(asStrings bool, engine *ecmsketch.Sharded) map[string]any {
	st := engine.DurabilityStats()
	if !st.Enabled {
		return map[string]any{"enabled": false}
	}
	return map[string]any{
		"enabled":            true,
		"epoch":              u64field(asStrings, st.Epoch),
		"generation":         u64field(asStrings, st.Generation),
		"lastSnapshotTick":   u64field(asStrings, st.LastSnapshotTick),
		"lastSnapshotUnixMs": st.LastSnapshotUnixMs,
		"walRecords":         u64field(asStrings, st.WALRecords),
		"walBytes":           u64field(asStrings, st.WALBytes),
		"lastFsyncNs":        st.LastFsyncNs,
		"recovered":          st.Recovered,
		"replayedRecords":    u64field(asStrings, st.ReplayedRecords),
		"errors":             u64field(asStrings, st.Errors),
	}
}

// rebuildStatsField renders the merged-view rebuild timing block of
// /v1/stats: the wall time of the most recent rebuild's stripe clone+merge
// and the worker-pool size the per-stripe refresh fanned across (1 =
// sequential) — together, the effective parallelism of the merge path.
// merge_ns is a 64-bit field and honors ?strings=1 like every other.
func rebuildStatsField(asStrings bool, engine *ecmsketch.Sharded) map[string]any {
	mergeNs, workers := engine.RebuildStats()
	return map[string]any{
		"merge_ns": u64field(asStrings, uint64(mergeNs)),
		"workers":  workers,
	}
}

// handleSketch ships the serialized merged view, letting a coordinator pull
// and merge several sites' summaries. Honors Accept-Encoding: gzip.
func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	enc := s.engine.Marshal()
	if enc == nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("merging shards failed"))
		return
	}
	wire.WriteSnapshot(w, r, enc, wire.SnapshotMeta{Now: s.engine.Now(), Count: s.engine.Count()})
}

// handleSnapshot is the coordinator pull route, in two modes:
//
// Without ?since=, GET /v1/snapshot ships the engine's frozen merged-view
// bytes — the same payload as /v1/sketch, under the name the transport
// layer (coord.HTTPSite, ecmclient.Snapshot) speaks — plus X-Ecm-Now and
// X-Ecm-Count headers so pullers can gauge staleness and stream volume
// without decoding the body. Headers and payload come from one Snapshot of
// the merged view (not separate engine reads), so they describe exactly
// the bytes shipped even under concurrent ingest. Pre-delta clients keep
// working unchanged.
//
// With ?since=<cursor>, the reply follows the delta protocol: an
// incremental payload holding only the stripes/cells whose version moved
// since the cursor (X-Ecm-Delta: delta), or a full multipart baseline when
// the cursor is absent-valued ("0"), unparsable, or unrecognized — a
// restarted or reconfigured engine — re-baselining the puller
// (X-Ecm-Delta: full). X-Ecm-Cursor carries the cursor the payload brings
// the puller to; delta pulls never build the merged view, so a steady-state
// pull loop costs the server a few stripe clones instead of a P-way merge.
//
// Both modes honor Accept-Encoding: gzip.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if sinceRaw, ok := r.URL.Query()["since"]; ok {
		var since ecmsketch.Cursor
		if len(sinceRaw) > 0 {
			// An unparsable cursor is an unrecognized one: reply full.
			since, _ = ecmsketch.ParseCursor(sinceRaw[0])
		}
		payload, cur, full, err := s.engine.DeltaSnapshot(since)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		kind := wire.KindDelta
		if full {
			kind = wire.KindFull
		}
		wire.WriteSnapshot(w, r, payload, wire.SnapshotMeta{
			Now: s.engine.Now(), Count: s.engine.Count(),
			Cursor: cur.String(), Kind: kind,
		})
		return
	}
	sk, err := s.engine.Snapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("merging shards failed: %w", err))
		return
	}
	wire.WriteSnapshot(w, r, sk.Marshal(), wire.SnapshotMeta{Now: sk.Now(), Count: sk.Count()})
}

// handleAdvance moves the window clock forward without an arrival:
// POST /v1/advance?t=99999.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	t, err := parseU64(r, "t", 0)
	if err != nil || t == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or bad t parameter"))
		return
	}
	s.engine.Advance(t)
	respond(w, map[string]any{"ok": true, "now": u64field(wantStrings(r), t)})
}

// handleTopK reports the current hottest keys: GET /v1/topk?range=60000.
// Available only when the server was configured with TopK > 0.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	rng, err := parseU64(r, "range", s.cfg.WindowLength)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.topkMu.Lock()
	items := s.topk.Top(rng)
	s.topkMu.Unlock()
	// Keys are rendered as decimal strings: uint64 digests exceed the
	// float64-exact integer range of JSON consumers.
	type entry struct {
		Key      string  `json:"key"`
		Estimate float64 `json:"estimate"`
	}
	out := make([]entry, len(items))
	for i, it := range items {
		out[i] = entry{Key: strconv.FormatUint(it.Key, 10), Estimate: it.Estimate}
	}
	respond(w, map[string]any{"top": out, "range": u64field(wantStrings(r), rng)})
}
