package ecmserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ecmsketch"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Config{
		Epsilon:      0.05,
		Delta:        0.05,
		WindowLength: 10000,
		Algorithm:    "eh",
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func doJSON(t *testing.T, srv *Server, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, rd)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 && strings.Contains(rec.Header().Get("Content-Type"), "json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON from %s %s: %v", method, url, err)
		}
	}
	return rec.Code, out
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Algorithm: "bogus"}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := New(Config{Epsilon: 0, Delta: 0.1, WindowLength: 100}); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestAddAndEstimate(t *testing.T) {
	srv := testServer(t)
	for i := 1; i <= 50; i++ {
		code, _ := doJSON(t, srv, "POST", fmt.Sprintf("/add?key=/home&t=%d", i), "")
		if code != http.StatusOK {
			t.Fatalf("add returned %d", code)
		}
	}
	code, out := doJSON(t, srv, "GET", "/estimate?key=/home&range=10000", "")
	if code != http.StatusOK {
		t.Fatalf("estimate returned %d", code)
	}
	if est := out["estimate"].(float64); est < 45 || est > 60 {
		t.Errorf("estimate = %v, want ≈50", est)
	}
	// Unknown key estimates near zero.
	_, out = doJSON(t, srv, "GET", "/estimate?key=/missing", "")
	if est := out["estimate"].(float64); est > 10 {
		t.Errorf("estimate for unseen key = %v", est)
	}
}

func TestAddValidation(t *testing.T) {
	srv := testServer(t)
	for _, url := range []string{
		"/add",              // no key, no t
		"/add?key=a",        // no t
		"/add?key=a&t=abc",  // bad t
		"/add?ikey=zzz&t=5", // bad ikey
		"/estimate",         // no key
		"/estimate?key=a&range=x" /* bad range */} {
		method := "POST"
		if strings.HasPrefix(url, "/estimate") {
			method = "GET"
		}
		code, _ := doJSON(t, srv, method, url, "")
		if code != http.StatusBadRequest {
			t.Errorf("%s %s returned %d, want 400", method, url, code)
		}
	}
}

func TestIntegerKeys(t *testing.T) {
	srv := testServer(t)
	doJSON(t, srv, "POST", "/add?ikey=42&t=1&n=7", "")
	_, out := doJSON(t, srv, "GET", "/estimate?ikey=42", "")
	if est := out["estimate"].(float64); est < 7 {
		t.Errorf("estimate = %v, want ≥7", est)
	}
}

func TestBatchIngest(t *testing.T) {
	srv := testServer(t)
	body := strings.Join([]string{
		"# comment line",
		"/home,1",
		"/home,2",
		"/about,3,5",
		"",
		"garbage-line",
		"/home,notanumber",
		"/home,4",
	}, "\n")
	code, out := doJSON(t, srv, "POST", "/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch returned %d", code)
	}
	if acc := out["accepted"].(float64); acc != 4 {
		t.Errorf("accepted = %v, want 4", acc)
	}
	if _, hasErr := out["firstError"]; !hasErr {
		t.Error("malformed lines not reported")
	}
	_, est := doJSON(t, srv, "GET", "/estimate?key=/about", "")
	if v := est["estimate"].(float64); v < 5 {
		t.Errorf("/about estimate = %v, want ≥5", v)
	}
}

func TestSelfJoinAndTotal(t *testing.T) {
	srv := testServer(t)
	for i := 1; i <= 100; i++ {
		doJSON(t, srv, "POST", fmt.Sprintf("/add?key=k%d&t=%d", i%4, i), "")
	}
	_, sj := doJSON(t, srv, "GET", "/selfjoin", "")
	if v := sj["selfJoin"].(float64); v < 2000 || v > 4000 {
		t.Errorf("selfJoin = %v, want ≈2500 (4 keys × 25²)", v)
	}
	_, tot := doJSON(t, srv, "GET", "/total", "")
	if v := tot["total"].(float64); v < 90 || v > 120 {
		t.Errorf("total = %v, want ≈100", v)
	}
}

func TestStats(t *testing.T) {
	srv := testServer(t)
	doJSON(t, srv, "POST", "/add?key=a&t=5", "")
	code, out := doJSON(t, srv, "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if out["count"].(float64) != 1 || out["now"].(float64) != 5 {
		t.Errorf("stats = %v", out)
	}
	if out["width"].(float64) <= 0 || out["memoryBytes"].(float64) <= 0 {
		t.Errorf("degenerate stats: %v", out)
	}
}

func TestSketchPullAndMerge(t *testing.T) {
	// Two "sites" with identical config; the coordinator pulls both wire
	// sketches and merges them.
	siteA := testServer(t)
	siteB := testServer(t)
	for i := 1; i <= 30; i++ {
		doJSON(t, siteA, "POST", fmt.Sprintf("/add?key=x&t=%d", i), "")
		doJSON(t, siteB, "POST", fmt.Sprintf("/add?key=x&t=%d", i), "")
	}
	pull := func(s *Server) []byte {
		req := httptest.NewRequest("GET", "/sketch", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("sketch pull returned %d", rec.Code)
		}
		return rec.Body.Bytes()
	}
	a, err := ecmsketch.Unmarshal(pull(siteA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ecmsketch.Unmarshal(pull(siteB))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ecmsketch.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est := m.EstimateString("x", 10000); est < 50 || est > 70 {
		t.Errorf("merged estimate = %v, want ≈60", est)
	}
}

func TestAdvanceExpiresWindow(t *testing.T) {
	srv := testServer(t)
	doJSON(t, srv, "POST", "/add?key=old&t=10", "")
	doJSON(t, srv, "POST", "/advance?t=50000", "")
	_, out := doJSON(t, srv, "GET", "/estimate?key=old", "")
	if est := out["estimate"].(float64); est != 0 {
		t.Errorf("estimate after expiry = %v, want 0", est)
	}
	code, _ := doJSON(t, srv, "POST", "/advance", "")
	if code != http.StatusBadRequest {
		t.Errorf("advance without t returned %d", code)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				if i%10 == 0 {
					doJSON(t, srv, "GET", "/estimate?key=hot", "")
				} else {
					doJSON(t, srv, "POST", fmt.Sprintf("/add?key=hot&t=%d", i), "")
				}
			}
		}(g)
	}
	wg.Wait()
	_, out := doJSON(t, srv, "GET", "/stats", "")
	if c := out["count"].(float64); c != 8*180 {
		t.Errorf("count = %v, want %d", c, 8*180)
	}
}

func TestParseAlgo(t *testing.T) {
	for in, want := range map[string]ecmsketch.Algorithm{
		"": ecmsketch.AlgoEH, "eh": ecmsketch.AlgoEH, "EH": ecmsketch.AlgoEH,
		"dw": ecmsketch.AlgoDW, "rw": ecmsketch.AlgoRW,
	} {
		got, err := ParseAlgo(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgo(%q) = %v, %v", in, got, err)
		}
	}
}

func TestIntervalEndpoint(t *testing.T) {
	srv := testServer(t)
	for i := 1; i <= 100; i++ {
		doJSON(t, srv, "POST", fmt.Sprintf("/add?key=x&t=%d", i), "")
	}
	_, out := doJSON(t, srv, "GET", "/interval?key=x&from=20&to=70", "")
	if est := out["estimate"].(float64); est < 35 || est > 65 {
		t.Errorf("interval estimate = %v, want ≈50", est)
	}
	code, _ := doJSON(t, srv, "GET", "/interval?key=x&from=20", "")
	if code != http.StatusBadRequest {
		t.Errorf("interval without to returned %d", code)
	}
	code, _ = doJSON(t, srv, "GET", "/interval?from=1&to=2", "")
	if code != http.StatusBadRequest {
		t.Errorf("interval without key returned %d", code)
	}
}

func TestTopKEndpoint(t *testing.T) {
	srv, err := New(Config{
		Epsilon: 0.05, Delta: 0.05, WindowLength: 10000, TopK: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		doJSON(t, srv, "POST", fmt.Sprintf("/add?key=hot&t=%d", i), "")
		if i%3 == 0 {
			doJSON(t, srv, "POST", fmt.Sprintf("/add?key=warm&t=%d", i), "")
		}
		if i%10 == 0 {
			doJSON(t, srv, "POST", fmt.Sprintf("/add?key=cold&t=%d", i), "")
		}
	}
	code, out := doJSON(t, srv, "GET", "/topk", "")
	if code != http.StatusOK {
		t.Fatalf("/topk returned %d", code)
	}
	top := out["top"].([]any)
	if len(top) != 2 {
		t.Fatalf("top has %d entries, want 2", len(top))
	}
	first := top[0].(map[string]any)
	if want := fmt.Sprintf("%d", ecmsketch.KeyString("hot")); first["key"].(string) != want {
		t.Errorf("rank 1 is %v, want digest of \"hot\" (%s)", first["key"], want)
	}
	if est := first["estimate"].(float64); est < 55 {
		t.Errorf("rank 1 estimate %v, want ≈60", est)
	}
	// Without -topk, the endpoint does not exist.
	plain := testServer(t)
	code, _ = doJSON(t, plain, "GET", "/topk", "")
	if code == http.StatusOK {
		t.Error("/topk served without TopK configured")
	}
}

// TestVersionedRoutes checks every endpoint answers identically under the
// /v1 prefix and its legacy unversioned alias.
func TestVersionedRoutes(t *testing.T) {
	srv := testServer(t)
	for i := 1; i <= 20; i++ {
		code, _ := doJSON(t, srv, "POST", fmt.Sprintf("/v1/add?key=/home&t=%d", i), "")
		if code != http.StatusOK {
			t.Fatalf("/v1/add returned %d", code)
		}
	}
	_, v1 := doJSON(t, srv, "GET", "/v1/estimate?key=/home", "")
	_, legacy := doJSON(t, srv, "GET", "/estimate?key=/home", "")
	if v1["estimate"] != legacy["estimate"] {
		t.Errorf("/v1/estimate %v != /estimate %v", v1["estimate"], legacy["estimate"])
	}
	_, stats := doJSON(t, srv, "GET", "/v1/stats", "")
	if stats["apiVersion"] != "v1" || stats["shards"].(float64) < 1 {
		t.Errorf("stats = %v", stats)
	}
	for _, url := range []string{"/v1/selfjoin", "/v1/total", "/v1/interval?key=/home&from=1&to=9"} {
		code, _ := doJSON(t, srv, "GET", url, "")
		if code != http.StatusOK {
			t.Errorf("GET %s returned %d", url, code)
		}
	}
}

// TestEventsEndpoint covers the JSON batch route, only present under /v1.
func TestEventsEndpoint(t *testing.T) {
	srv := testServer(t)
	body := `[{"key":"/home","t":1},{"key":"/home","t":2,"n":4},{"ikey":"42","t":3}]`
	code, out := doJSON(t, srv, "POST", "/v1/events", body)
	if code != http.StatusOK {
		t.Fatalf("/v1/events returned %d: %v", code, out)
	}
	if out["accepted"].(float64) != 3 {
		t.Errorf("accepted = %v, want 3", out["accepted"])
	}
	_, est := doJSON(t, srv, "GET", "/v1/estimate?key=/home", "")
	if v := est["estimate"].(float64); v < 5 {
		t.Errorf("/home estimate = %v, want ≥5", v)
	}
	_, est = doJSON(t, srv, "GET", "/v1/estimate?ikey=42", "")
	if v := est["estimate"].(float64); v < 1 {
		t.Errorf("ikey 42 estimate = %v, want ≥1", v)
	}
	for _, bad := range []string{
		`not json`,
		`[{"t":5}]`,              // no key
		`[{"key":"x"}]`,          // no t
		`[{"ikey":"zzz","t":1}]`, // bad ikey
	} {
		code, _ := doJSON(t, srv, "POST", "/v1/events", bad)
		if code != http.StatusBadRequest {
			t.Errorf("body %q returned %d, want 400", bad, code)
		}
	}
	// The JSON batch route has no legacy alias.
	code, _ = doJSON(t, srv, "POST", "/events", `[]`)
	if code == http.StatusOK {
		t.Error("/events served without version prefix")
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	code, out := doJSON(t, srv, "POST", "/v1/events",
		`[{"key":"/home","t":1,"n":6},{"key":"/cart","t":2,"n":3},{"ikey":"42","t":3}]`)
	if code != http.StatusOK {
		t.Fatalf("seeding events returned %d: %v", code, out)
	}

	// Happy path: string and integer keys, aggregates, explicit range.
	code, out = doJSON(t, srv, "POST", "/v1/query",
		`{"keys":[{"key":"/home"},{"key":"/cart"},{"ikey":"42"}],"range":10000,"total":true,"selfJoin":true}`)
	if code != http.StatusOK {
		t.Fatalf("/v1/query returned %d: %v", code, out)
	}
	ests, ok := out["estimates"].([]any)
	if !ok || len(ests) != 3 {
		t.Fatalf("estimates = %v, want 3 entries", out["estimates"])
	}
	if v := ests[0].(float64); v < 6 {
		t.Errorf("/home estimate = %v, want ≥6", v)
	}
	if v := ests[2].(float64); v < 1 {
		t.Errorf("ikey 42 estimate = %v, want ≥1", v)
	}
	if v := out["total"].(float64); v < 9 {
		t.Errorf("total = %v, want ≥9", v)
	}
	if _, ok := out["selfJoin"].(float64); !ok {
		t.Errorf("selfJoin missing from reply: %v", out)
	}
	if v := out["now"].(float64); v != 3 {
		t.Errorf("now = %v, want 3", v)
	}

	// Batch answers must exactly match the engine's own consistent cut.
	res, err := srv.Engine().QueryBatch(ecmsketch.QueryBatch{
		Keys: []uint64{ecmsketch.KeyString("/home")}, Range: 10000, Total: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, out = doJSON(t, srv, "POST", "/v1/query", `{"keys":[{"key":"/home"}],"range":10000,"total":true}`)
	if code != http.StatusOK {
		t.Fatalf("/v1/query returned %d: %v", code, out)
	}
	if got := out["estimates"].([]any)[0].(float64); got != res.Estimates[0] {
		t.Errorf("wire estimate %v != engine estimate %v", got, res.Estimates[0])
	}
	if got := out["total"].(float64); got != res.Total {
		t.Errorf("wire total %v != engine total %v", got, res.Total)
	}
	// An unrequested aggregate is omitted from the reply, not zero-filled.
	if _, present := out["selfJoin"]; present {
		t.Errorf("selfJoin present though not requested: %v", out)
	}

	// Aggregate-only query: an empty keys array is legal and estimates is
	// still an array.
	code, out = doJSON(t, srv, "POST", "/v1/query", `{"total":true}`)
	if code != http.StatusOK {
		t.Fatalf("aggregate-only query returned %d: %v", code, out)
	}
	if _, ok := out["estimates"].([]any); !ok {
		t.Errorf("aggregate-only reply estimates = %v, want []", out["estimates"])
	}

	// Malformed bodies are rejected with 400.
	for _, bad := range []string{
		`not json`,
		`[]`,                        // array, not object
		`{"keys":[{}]}`,             // key entry without key or ikey
		`{"keys":[{"ikey":"zzz"}]}`, // bad ikey
		`{"keys":{"key":"/home"}}`,  // keys not an array
		`{"range":"soon"}`,          // bad range type
		`{"bogus":1}`,               // unknown field
		`{"keys":[{"key":"/home"}]`, // truncated body
		`{"keys":[{"ikey":"1"}],"keys":[{"ikey":"2"}]}`, // duplicate field (cap evasion)
		`{"range":100,"range":200}`,                     // duplicate scalar
	} {
		code, _ := doJSON(t, srv, "POST", "/v1/query", bad)
		if code != http.StatusBadRequest {
			t.Errorf("body %q returned %d, want 400", bad, code)
		}
	}

	// Oversized batches are rejected without buffering the tail.
	var big strings.Builder
	big.WriteString(`{"keys":[`)
	for i := 0; i <= 4096; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, `{"ikey":"%d"}`, i)
	}
	big.WriteString(`]}`)
	code, out = doJSON(t, srv, "POST", "/v1/query", big.String())
	if code != http.StatusBadRequest {
		t.Errorf("oversized batch returned %d, want 400", code)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "too many keys") {
		t.Errorf("oversized batch error = %q, want a too-many-keys rejection", msg)
	}

	// The query route has no legacy alias.
	code, _ = doJSON(t, srv, "POST", "/query", `{"total":true}`)
	if code == http.StatusOK {
		t.Error("/query served without version prefix")
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	srv := testServer(t)
	doJSON(t, srv, "POST", "/v1/add?key=alpha&t=100&n=7", "")

	req := httptest.NewRequest("GET", "/v1/snapshot", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /v1/snapshot: %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("Content-Type = %q", got)
	}
	if rec.Header().Get("X-Ecm-Now") != "100" || rec.Header().Get("X-Ecm-Count") != "7" {
		t.Errorf("staleness headers = now %q count %q, want 100/7",
			rec.Header().Get("X-Ecm-Now"), rec.Header().Get("X-Ecm-Count"))
	}
	sk, err := ecmsketch.Unmarshal(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("snapshot payload does not decode: %v", err)
	}
	if sk.Count() != 7 {
		t.Errorf("decoded count = %d, want 7", sk.Count())
	}

	// Same payload as the sketch route.
	req2 := httptest.NewRequest("GET", "/v1/sketch", nil)
	rec2 := httptest.NewRecorder()
	srv.ServeHTTP(rec2, req2)
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Error("/v1/snapshot and /v1/sketch payloads differ")
	}

	// v1-only: no legacy alias.
	req3 := httptest.NewRequest("GET", "/snapshot", nil)
	rec3 := httptest.NewRecorder()
	srv.ServeHTTP(rec3, req3)
	if rec3.Code != 404 {
		t.Errorf("GET /snapshot = %d, want 404 (no legacy alias)", rec3.Code)
	}
}

func TestStatsStringsOptIn(t *testing.T) {
	srv := testServer(t)
	// A tick past 2^53 would be silently rounded by float64 JSON readers;
	// the strings=1 reply preserves it digit-for-digit.
	bigTick := uint64(1)<<60 + 3
	srv.Engine().Add(1, bigTick)

	code, stats := doJSON(t, srv, "GET", "/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if _, ok := stats["now"].(float64); !ok {
		t.Errorf("default stats now = %T, want JSON number", stats["now"])
	}

	code, stats = doJSON(t, srv, "GET", "/v1/stats?strings=1", "")
	if code != 200 {
		t.Fatalf("stats?strings=1: %d", code)
	}
	if got, ok := stats["now"].(string); !ok || got != strconv.FormatUint(bigTick, 10) {
		t.Errorf("strings=1 now = %#v, want %q", stats["now"], strconv.FormatUint(bigTick, 10))
	}
	if got, ok := stats["count"].(string); !ok || got != "1" {
		t.Errorf("strings=1 count = %#v, want \"1\"", stats["count"])
	}
	if _, ok := stats["window"].(string); !ok {
		t.Errorf("strings=1 window = %T, want string", stats["window"])
	}
	if _, ok := stats["viewRebuilds"].(string); !ok {
		t.Errorf("strings=1 viewRebuilds = %T, want string", stats["viewRebuilds"])
	}
	// Non-64-bit fields stay numeric.
	if _, ok := stats["shards"].(float64); !ok {
		t.Errorf("strings=1 shards = %T, want JSON number", stats["shards"])
	}
}

func TestQueryStringsOptIn(t *testing.T) {
	srv := testServer(t)
	bigTick := uint64(1)<<60 + 3
	srv.Engine().Add(42, bigTick)

	body := `{"keys":[{"ikey":"42"}],"range":5000,"total":true}`
	code, out := doJSON(t, srv, "POST", "/v1/query?strings=1", body)
	if code != 200 {
		t.Fatalf("query?strings=1: %d (%v)", code, out)
	}
	if got, ok := out["now"].(string); !ok || got != strconv.FormatUint(bigTick, 10) {
		t.Errorf("strings=1 query now = %#v, want %q", out["now"], strconv.FormatUint(bigTick, 10))
	}
	if got, ok := out["range"].(string); !ok || got != "5000" {
		t.Errorf("strings=1 query range = %#v, want \"5000\"", out["range"])
	}
	if ests, ok := out["estimates"].([]any); !ok || len(ests) != 1 {
		t.Errorf("strings=1 query estimates = %#v", out["estimates"])
	}

	// Default replies stay numeric.
	code, out = doJSON(t, srv, "POST", "/v1/query", body)
	if code != 200 {
		t.Fatalf("query: %d", code)
	}
	if _, ok := out["now"].(float64); !ok {
		t.Errorf("default query now = %T, want JSON number", out["now"])
	}
}
