package ecmserver

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/internal/standing"
)

func authedServer(t *testing.T, token string) *Server {
	t.Helper()
	srv, err := New(Config{
		Epsilon:      0.05,
		Delta:        0.05,
		WindowLength: 10000,
		Algorithm:    "eh",
		Seed:         7,
		AuthToken:    token,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestAuthToken pins the bearer gate: with AuthToken set, every endpoint —
// queries, subscribe, watch, snapshot — refuses missing or wrong tokens
// with 401 and admits the right one; without AuthToken the surface is open.
func TestAuthToken(t *testing.T) {
	srv := authedServer(t, "s3cret")
	paths := []struct{ method, path, body string }{
		{http.MethodGet, "/v1/estimate?ikey=1", ""},
		{http.MethodGet, "/v1/stats", ""},
		{http.MethodGet, "/v1/sketch", ""},
		{http.MethodPost, "/v1/subscribe", `{"queries":[{"kind":"threshold","ikey":"1","value":5}]}`},
		{http.MethodGet, "/v1/watch?sub=nope", ""},
	}
	for _, p := range paths {
		for _, tc := range []struct {
			name, auth string
			wantCode   int
		}{
			{"missing", "", http.StatusUnauthorized},
			{"wrong", "Bearer wrong", http.StatusUnauthorized},
			{"malformed", "s3cret", http.StatusUnauthorized},
			{"good", "Bearer s3cret", 0}, // 0 = anything but 401
		} {
			var body *strings.Reader
			if p.body != "" {
				body = strings.NewReader(p.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(p.method, p.path, body)
			if p.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			if tc.auth != "" {
				req.Header.Set("Authorization", tc.auth)
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if tc.wantCode == http.StatusUnauthorized {
				if rec.Code != http.StatusUnauthorized {
					t.Errorf("%s %s with %s auth: code %d, want 401", p.method, p.path, tc.name, rec.Code)
				}
			} else if rec.Code == http.StatusUnauthorized {
				t.Errorf("%s %s with good auth: still 401", p.method, p.path)
			}
		}
	}

	open := authedServer(t, "")
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	open.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("open server rejected an unauthenticated request: %d", rec.Code)
	}
}

// TestSubscribeValidationAndWatch404 covers the subscribe error surface and
// the watch stream's unknown-subscription reply.
func TestSubscribeValidationAndWatch404(t *testing.T) {
	srv := authedServer(t, "")
	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/subscribe", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	for _, body := range []string{
		`not json`,
		`{"queries":[]}`,
		`{"queries":[{"kind":"threshold","ikey":"1"}]}`,                     // zero threshold
		`{"kind":"threshold"}`,                                              // unknown top-level field
		`{"queries":[{"kind":"nope","ikey":"1","value":5}]}`,                // unknown kind
		`{"queries":[{"kind":"rate","ikey":"1","factor":0}]}`,               // zero factor
		`{"queries":[{"kind":"threshold","value":5}]}`,                      // missing key
		`{"queries":[{"kind":"threshold","key":"a","ikey":"1","value":5}]}`, // both key forms
	} {
		if rec := post(body); rec.Code != http.StatusBadRequest {
			t.Errorf("subscribe %q: code %d, want 400", body, rec.Code)
		}
	}
	if rec := post(`{"queries":[{"kind":"threshold","ikey":"1","value":5}]}`); rec.Code != http.StatusOK {
		t.Errorf("valid subscribe: code %d body %s", rec.Code, rec.Body)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/watch?sub=doesnotexist", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("watch of unknown subscription: code %d, want 404", rec.Code)
	}
	req = httptest.NewRequest(http.MethodDelete, "/v1/subscribe?sub=doesnotexist", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unsubscribe of unknown subscription: code %d, want 404", rec.Code)
	}
}

// TestWatchStreamDeliversOverHTTP runs the full wire path on a real listener:
// subscribe, attach the SSE stream with a real client, fire a crossing
// through ingest, and parse the notify frame off the stream.
func TestWatchStreamDeliversOverHTTP(t *testing.T) {
	srv := authedServer(t, "tok")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	info, err := srv.Standing().Subscribe([]ecmsketch.StandingQuery{
		{Kind: ecmsketch.StandingThreshold, Key: 42, Value: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/watch?sub="+info.ID, nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (event, data string) {
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if event != "" {
					return event, data
				}
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return "", ""
	}
	if ev, _ := readEvent(); ev != "hello" {
		t.Fatalf("first event %q, want hello", ev)
	}

	fired := make(chan struct{})
	go func() {
		srv.Engine().AddBatch([]ecmsketch.Event{{Key: 42, Tick: 1, N: 100}})
		close(fired)
	}()
	ev, data := readEvent()
	if ev != "notify" {
		t.Fatalf("event %q, want notify", ev)
	}
	n, err := standing.ParseNotificationJSON([]byte(data))
	if err != nil {
		t.Fatalf("bad notify payload %q: %v", data, err)
	}
	if n.Key != 42 || !n.Rising || n.Seq != 1 {
		t.Fatalf("notification %+v, want rising on key 42 seq 1", n)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("ingest blocked on delivery")
	}

	// Stats surface the subscription.
	statsReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	statsReq.Header.Set("Authorization", "Bearer tok")
	statsResp, err := ts.Client().Do(statsReq)
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		Standing struct {
			Subscriptions int `json:"subscriptions"`
			Watchers      int `json:"watchers"`
		} `json:"standing"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Standing.Subscriptions != 1 || stats.Standing.Watchers != 1 {
		t.Fatalf("stats standing = %+v, want 1 subscription, 1 watcher", stats.Standing)
	}
}
