// Package ecmsketch is the public API of this repository: a Go
// implementation of the ECM-sketch (Exponential Count-Min sketch) of
// Papapetrou, Garofalakis and Deligiannakis, "Sketch-based Querying of
// Distributed Sliding-Window Data Streams", PVLDB 5(10), 2012.
//
// An ECM-sketch summarizes a high-dimensional data stream over a sliding
// window — time-based or count-based — by replacing each counter of a
// Count-Min sketch with a compact sliding-window synopsis (an exponential
// histogram by default). It answers point, inner-product and self-join
// queries over any suffix of the window with probabilistic accuracy
// guarantees, and sketches built at distributed sites can be aggregated into
// a single sketch of the combined stream with a small, bounded loss of
// accuracy.
//
// # Interface-first API
//
// Every sketch front end satisfies the same four small interfaces —
// Ingestor (Add/AddN/AddBatch/Advance), Querier (Estimate/InnerProduct/
// SelfJoin/EstimateTotal over window suffixes), BatchQuerier (QueryBatch:
// multi-key point queries plus optional aggregates from one consistent
// snapshot) and Snapshotter (Marshal/Snapshot, merge-ready) — collectively
// Engine:
//
//   - *Sketch: the plain single-goroutine ECM-sketch.
//   - *SafeSketch: one sketch behind one mutex, for modest concurrency.
//   - *Sharded: a lock-striped engine of P mergeable per-shard sketches,
//     key-hash routed; point queries hit one stripe, global queries read an
//     immutable snapshot-merged view lock-free (Theorem 4 applied inside
//     one process for throughput, on both the write and the read path).
//   - ecmclient.Client: a remote ecmserve instance behind the same
//     interfaces, over the versioned /v1 HTTP API served by ecmserver.
//
// Pipelines written against the interfaces swap backends by swapping the
// constructor (see examples/sharded). Event is the batch unit: AddBatch
// amortizes lock traffic across a slice of arrivals on every backend.
//
// # Quick start
//
//	sk, err := ecmsketch.New(ecmsketch.Params{
//	    Epsilon:      0.05,            // total error budget
//	    Delta:        0.01,            // failure probability
//	    WindowLength: 24 * 3600 * 1000, // 24h window, millisecond ticks
//	})
//	...
//	sk.AddString(pageURL, uint64(arrivalMillis))
//	views := sk.EstimateString(pageURL, 3600*1000) // last hour
//
// For write-heavy concurrent ingest, substitute the sharded engine:
//
//	eng, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
//	    Params: params, Shards: 16, MergeTTL: 100 * time.Millisecond,
//	})
//
// Higher-level queries (heavy hitters, range counts, quantiles) live behind
// NewHierarchy; hot-item tracking behind NewTopK/NewTopKOver (the latter
// wraps any existing Engine instead of owning a second sketch); continuous
// distributed threshold monitoring behind NewMonitor; multi-site simulation
// and aggregation behind NewCluster.
//
// The implementation packages sit under internal/: window (exponential
// histograms, deterministic and randomized waves), cm (conventional
// Count-Min), core (the ECM-sketch itself), dyadic, geom, distrib,
// workload and experiments (the reproduction of the paper's evaluation).
// The HTTP layer lives in ecmserver (embeddable server) and ecmclient
// (typed client); cmd/ecmserve wires the server behind flags.
package ecmsketch

import (
	"ecmsketch/internal/core"
	"ecmsketch/internal/dyadic"
	"ecmsketch/internal/geom"
	"ecmsketch/internal/hashing"
	"ecmsketch/internal/window"
)

// Tick is the logical timestamp fed with every arrival: a time unit of the
// caller's choice for time-based windows, or the global arrival sequence
// number for count-based windows. Ticks must be non-decreasing.
type Tick = window.Tick

// Sketch is an ECM-sketch. See the package documentation and core.Sketch
// for the full method set: Add/AddN/AddString, Estimate/EstimateString,
// InnerProduct, SelfJoin, EstimateTotal, Merge (package function),
// Marshal/Unmarshal, MemoryBytes.
type Sketch = core.Sketch

// Params configures a Sketch.
type Params = core.Params

// Split is an explicit division of the error budget ε between the Count-Min
// array and the sliding-window counters.
type Split = core.Split

// QueryKind selects the query type the ε-split optimizes memory for.
type QueryKind = core.QueryKind

// Query kinds.
const (
	PointQuery        = core.PointQuery
	InnerProductQuery = core.InnerProductQuery
)

// WindowModel selects time-based or count-based windows.
type WindowModel = window.Model

// Window models.
const (
	TimeBased  = window.TimeBased
	CountBased = window.CountBased
)

// Algorithm selects the sliding-window synopsis behind each counter.
type Algorithm = window.Algorithm

// Counter algorithms. AlgoEH (exponential histograms) is the paper's default
// and the best choice in nearly every regime; AlgoDW trades nothing in space
// but needs the per-window arrival bound up front; AlgoRW is lossless under
// aggregation at a quadratically higher space cost.
const (
	AlgoEH = window.AlgoEH
	AlgoDW = window.AlgoDW
	AlgoRW = window.AlgoRW
)

// New constructs an ECM-sketch.
func New(p Params) (*Sketch, error) { return core.New(p) }

// Unmarshal reconstructs a sketch from Sketch.Marshal output.
func Unmarshal(b []byte) (*Sketch, error) { return core.Unmarshal(b) }

// Merge aggregates identically configured sketches built over disjoint
// streams (e.g. at distributed sites) into a sketch of the order-preserving
// combined stream. Time-based windows only; see core.Merge for error
// semantics.
func Merge(sketches ...*Sketch) (*Sketch, error) { return core.Merge(sketches...) }

// SplitPoint, SplitInnerProduct and SplitPointRW expose the paper's
// memory-optimal ε divisions for callers who pin Params.Split explicitly.
func SplitPoint(eps float64) Split        { return core.SplitPoint(eps) }
func SplitInnerProduct(eps float64) Split { return core.SplitInnerProduct(eps) }
func SplitPointRW(eps float64) Split      { return core.SplitPointRW(eps) }

// KeyString digests a string key (URL, MAC address, user id) into the
// uint64 key space of the sketches. AddString/EstimateString call it
// internally; it is exported so callers can pre-digest hot keys.
func KeyString(s string) uint64 { return hashing.KeyString(s) }

// KeyBytes digests a byte-slice key.
func KeyBytes(b []byte) uint64 { return hashing.KeyBytes(b) }

// Hierarchy answers the derived sliding-window queries of Section 6.1 —
// heavy hitters, range counts, quantiles — via a dyadic stack of
// ECM-sketches.
type Hierarchy = dyadic.Hierarchy

// HierarchyParams configures a Hierarchy.
type HierarchyParams = dyadic.Params

// HeavyItem is one reported frequent item.
type HeavyItem = dyadic.Item

// NewHierarchy constructs a dyadic hierarchy over a 2^DomainBits key
// universe.
func NewHierarchy(p HierarchyParams) (*Hierarchy, error) { return dyadic.New(p) }

// MergeHierarchies aggregates per-site hierarchies level by level.
func MergeHierarchies(hs ...*Hierarchy) (*Hierarchy, error) { return dyadic.Merge(hs...) }

// UnmarshalHierarchy reconstructs a dyadic hierarchy from Hierarchy.Marshal
// output (e.g. pulled from a remote site before MergeHierarchies).
func UnmarshalHierarchy(b []byte) (*Hierarchy, error) { return dyadic.Unmarshal(b) }

// Monitor runs the geometric method (Section 6.2) for continuous threshold
// monitoring of a function of the global (averaged) sketch across sites.
type Monitor = geom.Monitor

// MonitorConfig configures a Monitor.
type MonitorConfig = geom.Config

// MonitorStats is the communication accounting of a Monitor.
type MonitorStats = geom.Stats

// MonitoredFunction is the function whose threshold crossings a Monitor
// tracks; SelfJoinMonitor and L2Monitor are ready-made instances.
type MonitoredFunction = geom.Function

// SelfJoinMonitor monitors the self-join (F₂) estimate.
var SelfJoinMonitor MonitoredFunction = geom.SelfJoinFn{}

// L2Monitor monitors the Euclidean norm of the global sketch vector.
var L2Monitor MonitoredFunction = geom.L2Fn{}

// NewMonitor builds a monitoring deployment of n sites.
func NewMonitor(cfg MonitorConfig, n int) (*Monitor, error) { return geom.NewMonitor(cfg, n) }

// PairMonitor monitors a function of TWO streams per site — by default the
// inner-product (join size) between them, the function type the paper lists
// as ongoing work in Section 6.2.
type PairMonitor = geom.PairMonitor

// Stream selects which of a pair-monitored site's streams an update feeds.
type Stream = geom.Stream

// The two monitored streams of a PairMonitor.
const (
	StreamA = geom.StreamA
	StreamB = geom.StreamB
)

// InnerProductMonitor monitors the inner-product estimate between the two
// streams of a PairMonitor.
var InnerProductMonitor MonitoredFunction = geom.InnerProductFn{}

// NewPairMonitor builds a two-stream monitoring deployment of n sites.
func NewPairMonitor(cfg MonitorConfig, n int) (*PairMonitor, error) {
	return geom.NewPairMonitor(cfg, n)
}
