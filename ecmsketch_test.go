package ecmsketch_test

import (
	"math"
	"testing"

	"ecmsketch"
)

// These tests exercise the repository's public facade end to end, the way a
// downstream user would.

func TestPublicQuickstart(t *testing.T) {
	sk, err := ecmsketch.New(ecmsketch.Params{
		Epsilon:      0.1,
		Delta:        0.1,
		WindowLength: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := ecmsketch.Tick(1); i <= 500; i++ {
		sk.AddString("/home", i)
		if i%5 == 0 {
			sk.AddString("/about", i)
		}
	}
	home := sk.EstimateString("/home", 1000)
	about := sk.EstimateString("/about", 1000)
	if math.Abs(home-500) > 60 {
		t.Errorf("/home estimate %v, want ≈500", home)
	}
	if math.Abs(about-100) > 60 {
		t.Errorf("/about estimate %v, want ≈100", about)
	}
	if home <= about {
		t.Error("popularity ordering lost")
	}
}

func TestPublicMergeAndSerialize(t *testing.T) {
	p := ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, Seed: 5}
	a, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := ecmsketch.Tick(1); i <= 300; i++ {
		a.Add(1, i)
		b.Add(1, i)
		b.Add(2, i)
	}
	enc := b.Marshal()
	dec, err := ecmsketch.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ecmsketch.Merge(a, dec)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Estimate(1, 1000)
	if math.Abs(got-600) > 100 {
		t.Errorf("merged Estimate(1) = %v, want ≈600", got)
	}
}

func TestPublicSplitHelpers(t *testing.T) {
	for _, eps := range []float64{0.05, 0.2} {
		if s := ecmsketch.SplitPoint(eps); math.Abs(s.PointErrorBound()-eps) > 1e-9 {
			t.Errorf("SplitPoint(%v) bound %v", eps, s.PointErrorBound())
		}
		if s := ecmsketch.SplitInnerProduct(eps); math.Abs(s.InnerProductErrorBound()-eps) > 1e-9 {
			t.Errorf("SplitInnerProduct(%v) bound %v", eps, s.InnerProductErrorBound())
		}
	}
	if ecmsketch.KeyString("abc") != ecmsketch.KeyBytes([]byte("abc")) {
		t.Error("KeyString and KeyBytes disagree")
	}
}

func TestPublicHierarchy(t *testing.T) {
	h, err := ecmsketch.NewHierarchy(ecmsketch.HierarchyParams{
		Sketch: ecmsketch.Params{
			Epsilon:      0.05,
			Delta:        0.1,
			WindowLength: 10000,
		},
		DomainBits: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var now ecmsketch.Tick
	for i := 0; i < 2000; i++ {
		now++
		key := uint64(i % 500)
		if i%3 == 0 {
			key = 7
		}
		if err := h.Add(key, now); err != nil {
			t.Fatal(err)
		}
	}
	h.Advance(now)
	hits, err := h.HeavyHitters(0.2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Key != 7 {
		t.Errorf("heavy hitter 7 not found: %v", hits)
	}
	med, err := h.Quantile(0.5, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if med > 512 {
		t.Errorf("median %d implausible", med)
	}
}

func TestPublicMonitor(t *testing.T) {
	m, err := ecmsketch.NewMonitor(ecmsketch.MonitorConfig{
		Sketch: ecmsketch.Params{
			Epsilon:      0.2,
			Delta:        0.2,
			WindowLength: 1000,
		},
		Function:  ecmsketch.SelfJoinMonitor,
		Threshold: 5000,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var now ecmsketch.Tick
	for i := 0; i < 400; i++ {
		now++
		if _, err := m.Update(i%2, 1, now); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Stats().ThresholdAbove {
		t.Errorf("hot key did not cross threshold: f=%v", m.Stats().FunctionValue)
	}
}

func TestPublicCluster(t *testing.T) {
	gen, err := ecmsketch.NewStream(ecmsketch.StreamConfig{
		Events: 8000, Duration: 8000, KeyDomain: 500, Skew: 1.0, Sites: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := gen.Drain()
	cluster, err := ecmsketch.NewCluster(ecmsketch.Params{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: 3,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if height != 2 {
		t.Errorf("height = %d, want 2", height)
	}
	oracle := ecmsketch.NewOracle(10000)
	for _, ev := range events {
		oracle.AddEvent(ev)
	}
	got := root.Estimate(0, 10000)
	want := float64(oracle.Freq(0, 10000))
	if math.Abs(got-want) > 0.3*float64(oracle.Total(10000))+1 {
		t.Errorf("root Estimate(0) = %v, exact %v", got, want)
	}
	if cluster.Network().Bytes() == 0 {
		t.Error("no network accounting")
	}
}
