package ecmsketch_test

import (
	"fmt"

	"ecmsketch"
)

// ExampleNew demonstrates the basic sliding-window frequency workflow.
func ExampleNew() {
	sk, err := ecmsketch.New(ecmsketch.Params{
		Epsilon:      0.01,
		Delta:        0.01,
		WindowLength: 100, // last 100 ticks
	})
	if err != nil {
		panic(err)
	}
	for t := ecmsketch.Tick(1); t <= 60; t++ {
		sk.AddString("/home", t)
	}
	for t := ecmsketch.Tick(61); t <= 120; t++ {
		sk.AddString("/cart", t)
	}
	// The window (20,120] holds 40 /home views and 60 /cart views.
	fmt.Printf("/home ≈ %.0f\n", sk.EstimateString("/home", 100))
	fmt.Printf("/cart ≈ %.0f\n", sk.EstimateString("/cart", 100))
	// Output:
	// /home ≈ 40
	// /cart ≈ 60
}

// ExampleMerge demonstrates order-preserving aggregation of site sketches.
func ExampleMerge() {
	params := ecmsketch.Params{
		Epsilon:      0.01,
		Delta:        0.01,
		WindowLength: 1000,
		Seed:         7, // sites must share the seed to be mergeable
	}
	siteA, _ := ecmsketch.New(params)
	siteB, _ := ecmsketch.New(params)
	for t := ecmsketch.Tick(1); t <= 50; t++ {
		siteA.Add(42, t)
		siteB.Add(42, t)
		siteB.Add(7, t)
	}
	global, err := ecmsketch.Merge(siteA, siteB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("item 42 globally ≈ %.0f\n", global.Estimate(42, 1000))
	fmt.Printf("item 7 globally ≈ %.0f\n", global.Estimate(7, 1000))
	// Output:
	// item 42 globally ≈ 100
	// item 7 globally ≈ 50
}

// ExampleNewWindowedSum demonstrates value-weighted windowed sums.
func ExampleNewWindowedSum() {
	ws, err := ecmsketch.NewWindowedSum(ecmsketch.SumConfig{
		WindowLength: 100,
		Epsilon:      0.01,
		MaxValue:     1 << 20, // bytes per packet
	})
	if err != nil {
		panic(err)
	}
	ws.Add(10, 1500)
	ws.Add(20, 900)
	ws.Add(30, 64)
	fmt.Printf("bytes in window ≈ %.0f\n", ws.SumWindow())
	// The packet at tick 10 expires once the window slides past it.
	ws.Advance(115)
	fmt.Printf("after sliding ≈ %.0f\n", ws.SumWindow())
	// Output:
	// bytes in window ≈ 2464
	// after sliding ≈ 964
}

// ExampleNewTopK demonstrates continuous top-k tracking.
func ExampleNewTopK() {
	tk, err := ecmsketch.NewTopK(2, ecmsketch.Params{
		Epsilon:      0.01,
		Delta:        0.05,
		WindowLength: 1000,
	})
	if err != nil {
		panic(err)
	}
	var t ecmsketch.Tick
	for _, spec := range []struct {
		key uint64
		n   int
	}{{101, 30}, {202, 20}, {303, 5}} {
		for i := 0; i < spec.n; i++ {
			t++
			tk.Offer(spec.key, t)
		}
	}
	for rank, item := range tk.Top(1000) {
		fmt.Printf("#%d: item %d ≈ %.0f\n", rank+1, item.Key, item.Estimate)
	}
	// Output:
	// #1: item 101 ≈ 30
	// #2: item 202 ≈ 20
}
