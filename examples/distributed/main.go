// Distributed aggregation: the Figure 5 scenario. 33 web-server mirrors
// (the wc'98 topology) each summarize their local request stream in an
// ECM-sketch; the sketches are aggregated over a balanced binary tree into a
// single sketch of the union stream, and the root answers sliding-window
// queries about global page popularity. The run reports the accuracy lost to
// aggregation and the bytes shipped.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"

	"ecmsketch"
)

func main() {
	const window = 1_000_000
	// A wc'98-like stream: 33 mirrors, skewed page popularity, diurnal rate.
	gen, err := ecmsketch.NewStream(ecmsketch.StreamConfig{
		Events:    300_000,
		Duration:  2 * window,
		KeyDomain: 1 << 15,
		Skew:      0.85,
		Sites:     33,
		SiteSkew:  0.6,
		Diurnal:   true,
		Seed:      98,
	})
	if err != nil {
		log.Fatal(err)
	}
	events := gen.Drain()

	params := ecmsketch.Params{
		Epsilon:      0.1,
		Delta:        0.1,
		WindowLength: window,
		Seed:         42, // identical seeds make the site sketches mergeable
	}
	cluster, err := ecmsketch.NewCluster(params, 33)
	if err != nil {
		log.Fatal(err)
	}

	// Exact ground truth for the comparison.
	oracle := ecmsketch.NewOracle(window)
	for _, ev := range events {
		oracle.AddEvent(ev)
	}

	// Sites consume their sub-streams concurrently (goroutines model the
	// distributed observers), then the tree aggregation runs.
	cluster.IngestAll(events)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("33 sites, tree height %d, aggregation shipped %d messages / %.1f KiB\n",
		height, cluster.Network().Messages(), float64(cluster.Network().Bytes())/1024)

	// Compare the root's answers against the exact oracle for the hottest
	// pages.
	l1 := float64(oracle.Total(window))
	fmt.Printf("window holds ≈%.0f requests across %d distinct pages\n\n", l1, oracle.DistinctKeys(window))
	fmt.Printf("%8s %12s %12s %12s\n", "page", "true", "estimate", "rel-err")
	var worst float64
	for page := uint64(0); page < 8; page++ {
		want := float64(oracle.Freq(page, window))
		got := root.Estimate(page, window)
		rel := math.Abs(got-want) / l1
		if rel > worst {
			worst = rel
		}
		fmt.Printf("%8d %12.0f %12.0f %12.5f\n", page, want, got, rel)
	}
	fmt.Printf("\nworst relative error %0.5f — configured ε was %.2f\n", worst, params.Epsilon)

	// Global self-join from the root sketch. As in the paper, the error is
	// reported relative to ||a_r||₁², the quantity Theorem 2 bounds.
	sjEst, sjTrue := root.SelfJoin(window), oracle.SelfJoin(window)
	fmt.Printf("global F2 estimate ≈ %.4g (exact %.4g, error %.5f of ‖a‖₁², bound %.2f)\n",
		sjEst, sjTrue, math.Abs(sjEst-sjTrue)/(l1*l1), params.Epsilon)
}
