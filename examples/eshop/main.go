// E-shop ranking: the introduction's third motivating scenario — "ranking
// products in a cloud-based e-shop, based on the number of recent visits of
// each product" — using a COUNT-BASED window: the ranking always reflects
// the last N visits, regardless of how bursty traffic is. A TopK tracker
// maintains the leaderboard without scanning the catalog.
//
// Run with: go run ./examples/eshop
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecmsketch"
)

func main() {
	const lastVisits = 50_000 // rank over the most recent 50k visits
	tk, err := ecmsketch.NewTopK(5, ecmsketch.Params{
		Epsilon:      0.01,
		Delta:        0.05,
		Model:        ecmsketch.CountBased,
		WindowLength: lastVisits,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	var visitSeq ecmsketch.Tick // count-based windows tick per arrival

	// Catalog of 20k products with Zipf popularity; a "flash sale" later
	// rotates which products are hot.
	zipf := rand.NewZipf(rng, 1.2, 8, 20_000)
	visit := func(n int, saleItem uint64) {
		for i := 0; i < n; i++ {
			visitSeq++
			product := zipf.Uint64()
			if saleItem != 0 && rng.Intn(4) == 0 {
				product = saleItem
			}
			tk.Offer(product, visitSeq)
		}
	}
	leaderboard := func(phase string) {
		fmt.Printf("[%s] after %d visits, top products over the last %d visits:\n",
			phase, visitSeq, ecmsketch.Tick(lastVisits))
		for rank, it := range tk.Top(lastVisits) {
			fmt.Printf("   #%d product-%05d ≈ %6.0f visits\n", rank+1, it.Key, it.Estimate)
		}
	}

	visit(80_000, 0)
	leaderboard("steady state")

	fmt.Println()
	visit(40_000, 777) // flash sale on product 777: 25% of traffic
	leaderboard("flash sale")

	fmt.Println()
	visit(60_000, 0) // sale over; its visits age out of the last-50k window
	leaderboard("sale expired")

	fmt.Printf("\nsketch memory: %.1f KiB for a 20k-product catalog\n",
		float64(tk.MemoryBytes())/1024)
	fmt.Println("note: count-based windows rank by recency of *visits*, not wall-clock —")
	fmt.Println("a quiet night never dilutes the leaderboard.")
}
