// Continuous monitoring: the Section 6.2 scenario. Four sites observe local
// streams; the coordinator must fire whenever the self-join (F₂) of the
// global sliding window crosses a threshold — e.g. a skew alarm signalling
// that traffic is concentrating on few keys. The geometric method lets sites
// stay silent while their local drift provably cannot move the global
// function across the threshold, instead of shipping every update.
//
// Run with: go run ./examples/geomonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecmsketch"
)

func main() {
	const window = 200_000
	cfg := ecmsketch.MonitorConfig{
		Sketch: ecmsketch.Params{
			Epsilon:      0.1,
			Delta:        0.1,
			Query:        ecmsketch.InnerProductQuery,
			WindowLength: window,
		},
		Function:   ecmsketch.SelfJoinMonitor,
		Threshold:  2_000_000, // fire when the global F2 estimate crosses this
		CheckEvery: 8,         // batch local checks every 8 arrivals
	}
	mon, err := ecmsketch.NewMonitor(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	var now ecmsketch.Tick
	phase := func(name string, events int, hotShare int) {
		for i := 0; i < events; i++ {
			now += ecmsketch.Tick(rng.Intn(4))
			key := uint64(rng.Intn(2000))
			if hotShare > 0 && rng.Intn(100) < hotShare {
				key = 13 // traffic concentrates on one key
			}
			if _, err := mon.Update(rng.Intn(4), key, now); err != nil {
				log.Fatal(err)
			}
		}
		st := mon.Stats()
		fmt.Printf("[%-12s] f(global)≈%11.0f above=%5v | syncs=%3d crossings=%d sent=%7dB\n",
			name, st.FunctionValue, st.ThresholdAbove, st.Syncs, st.Crossings, st.BytesSent)
	}

	fmt.Printf("monitoring global F2 over a %d-tick window, threshold %.0f\n\n",
		ecmsketch.Tick(window), cfg.Threshold)
	phase("uniform", 30_000, 0)
	phase("concentrate", 30_000, 40)
	phase("cooldown", 10_000, 0)
	now += window // let the hot period expire from the window
	mon.Advance(now)
	phase("after-expiry", 5_000, 0)

	st := mon.Stats()
	naive := mon.NaiveSyncBytes()
	fmt.Printf("\ncommunication: geometric method %d bytes, ship-every-update %d bytes → %.0fx savings\n",
		st.BytesSent, naive, float64(naive)/float64(st.BytesSent))
	fmt.Printf("local sphere checks: %d, violations: %d (%.2f%% of checks forced a sync)\n",
		st.LocalChecks, st.Violations, 100*float64(st.Violations)/float64(st.LocalChecks))
}
