// Join monitoring: continuous tracking of the JOIN SIZE between two
// distributed streams — e.g. clicks ⋈ purchases by user — with the
// geometric method over concatenated ECM-sketch vectors. The coordinator
// fires when the windowed inner product between the streams crosses a
// threshold, and the sites stay silent while their local drift provably
// cannot cause a crossing. This extends Section 6.2 beyond self-joins, the
// direction the paper lists as ongoing work.
//
// Run with: go run ./examples/joinmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecmsketch"
)

func main() {
	const window = 100_000
	mon, err := ecmsketch.NewPairMonitor(ecmsketch.MonitorConfig{
		Sketch: ecmsketch.Params{
			Epsilon:      0.1,
			Delta:        0.1,
			Query:        ecmsketch.InnerProductQuery,
			WindowLength: window,
		},
		Function:   ecmsketch.InnerProductMonitor,
		Threshold:  1_500_000, // above the disjoint-phase collision floor (≈ε·‖a‖·‖b‖)
		CheckEvery: 8,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	var now ecmsketch.Tick
	phase := func(name string, events int, overlap bool) {
		for i := 0; i < events; i++ {
			now++
			site := rng.Intn(3)
			// Stream A: clicks by user; stream B: purchases by user.
			clickUser := uint64(rng.Intn(3000))
			buyUser := uint64(3000 + rng.Intn(3000)) // disjoint user ranges
			if overlap {
				// A campaign converts: the same small user group clicks AND
				// purchases heavily, inflating the join.
				if rng.Intn(2) == 0 {
					clickUser = uint64(rng.Intn(20))
				}
				if rng.Intn(2) == 0 {
					buyUser = uint64(rng.Intn(20))
				}
			}
			if _, err := mon.Update(site, ecmsketch.StreamA, clickUser, now); err != nil {
				log.Fatal(err)
			}
			if _, err := mon.Update(site, ecmsketch.StreamB, buyUser, now); err != nil {
				log.Fatal(err)
			}
		}
		st := mon.Stats()
		fmt.Printf("[%-10s] join(clicks,purchases) ≈ %10.0f above=%5v | syncs=%2d sent=%6dB\n",
			name, st.FunctionValue, st.ThresholdAbove, st.Syncs, st.BytesSent)
	}

	fmt.Println("monitoring windowed join size between two streams across 3 sites")
	fmt.Println()
	phase("disjoint", 20_000, false)
	phase("campaign", 20_000, true)

	st := mon.Stats()
	fmt.Printf("\ncrossings detected: %d, local checks: %d, violations: %d\n",
		st.Crossings, st.LocalChecks, st.Violations)
}
