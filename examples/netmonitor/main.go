// Network monitor: the paper's motivating scenario (Section 1). Routers
// maintain sliding-window counts of messages per target IP; a dyadic
// ECM-sketch hierarchy detects targets whose recent traffic share exceeds a
// threshold — the distributed-trigger building block of DDoS detection — and
// quantiles of the target distribution, all in sketch space.
//
// Run with: go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecmsketch"
)

func main() {
	// 16-bit target space (a /16's worth of hosts), 10-minute window over
	// millisecond ticks.
	const window = 600_000
	h, err := ecmsketch.NewHierarchy(ecmsketch.HierarchyParams{
		Sketch: ecmsketch.Params{
			Epsilon:      0.01,
			Delta:        0.05,
			WindowLength: window,
		},
		DomainBits: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var now ecmsketch.Tick

	feed := func(n int, attack bool) {
		for i := 0; i < n; i++ {
			now += ecmsketch.Tick(rng.Intn(8))
			target := uint64(rng.Intn(1 << 16)) // background scatter
			if attack && rng.Intn(3) == 0 {     // 1/3 of traffic converges
				target = 0xBEEF
			}
			if err := h.Add(target, now); err != nil {
				log.Fatal(err)
			}
		}
	}

	report := func(phase string) {
		h.Advance(now)
		hits, err := h.HeavyHitters(0.05, window) // >5% of window traffic
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] t=%dms, ~%.0f msgs in window, %d hot targets\n",
			phase, now, h.EstimateTotal(window), len(hits))
		for _, it := range hits {
			fmt.Printf("        target %#04x: ≈%.0f msgs — possible overload, trigger coordinator\n",
				it.Key, it.Estimate)
		}
		qs, err := h.Quantiles([]float64{0.5, 0.99}, window)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("        target-space quantiles: median=%#04x p99=%#04x\n", qs[0], qs[1])
	}

	fmt.Println("phase 1: normal background traffic")
	feed(120_000, false)
	report("normal")

	fmt.Println("\nphase 2: traffic converges on one target")
	feed(120_000, true)
	report("attack")

	fmt.Println("\nphase 3: attack stops; the window slides past it")
	now += window // quiet period longer than the window
	h.Advance(now)
	feed(30_000, false) // background traffic resumes
	report("recovered")

	fmt.Printf("\nhierarchy memory: %.1f MiB for a 65536-target space\n",
		float64(h.MemoryBytes())/(1<<20))
}
