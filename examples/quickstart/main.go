// Quickstart: summarize a web-access stream over a sliding window, answer
// point and self-join queries, and ship the sketch over the wire.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecmsketch"
)

func main() {
	// A sketch over a 1-hour window (ticks are milliseconds here), with a
	// total error budget of 2% and failure probability 1%.
	const hour = 3_600_000
	sk, err := ecmsketch.New(ecmsketch.Params{
		Epsilon:      0.02,
		Delta:        0.01,
		WindowLength: hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sketch: %dx%d counters, split eps_cm=%.4f eps_sw=%.4f\n",
		sk.Depth(), sk.Width(), sk.EffectiveSplit().EpsCM, sk.EffectiveSplit().EpsSW)

	// Feed two hours of page views: /home dominates, /search is steady,
	// and a long tail of product pages churns underneath.
	rng := rand.New(rand.NewSource(1))
	var now ecmsketch.Tick
	for i := 0; i < 200_000; i++ {
		now += ecmsketch.Tick(rng.Intn(72)) // ~1 view / 36ms
		switch rng.Intn(10) {
		case 0, 1, 2:
			sk.AddString("/home", now)
		case 3:
			sk.AddString("/search", now)
		default:
			sk.AddString(fmt.Sprintf("/product/%d", rng.Intn(5000)), now)
		}
	}

	// Point queries over nested ranges of the window.
	for _, r := range []ecmsketch.Tick{hour, hour / 6, hour / 60} {
		fmt.Printf("last %4d s: /home ≈ %6.0f views, /search ≈ %6.0f views\n",
			r/1000, sk.EstimateString("/home", r), sk.EstimateString("/search", r))
	}

	// Self-join (second frequency moment) of the last hour — a standard
	// skew statistic used, e.g., for join-size estimation.
	fmt.Printf("F2 over the last hour ≈ %.3g\n", sk.SelfJoin(hour))
	fmt.Printf("total views in window ≈ %.0f\n", sk.EstimateTotal(hour))

	// Ship the sketch to another process and keep querying there.
	wire := sk.Marshal()
	remote, err := ecmsketch.Unmarshal(wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized sketch: %d bytes; remote /home estimate ≈ %.0f\n",
		len(wire), remote.EstimateString("/home", hour))
	fmt.Printf("sketch memory: %d bytes (vs exact per-key tracking of ~5000 keys)\n",
		sk.MemoryBytes())
}
