// Command sharded demonstrates the interface-first API: one ingest-and-query
// pipeline, written purely against ecmsketch.Ingestor/Querier, pointed at
// three interchangeable backends — a plain local Sketch, the lock-striped
// Sharded engine, and a remote ecmserve instance spoken to through
// ecmclient. All three summarize the same synthetic stream and answer the
// same queries within the sketch's error bounds.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ecmsketch"
	"ecmsketch/ecmclient"
	"ecmsketch/ecmserver"
)

const window = 600_000 // 10 minutes of millisecond ticks

// ingest is the shared pipeline: batch the stream and feed any Ingestor.
func ingest(in ecmsketch.Ingestor, events []ecmsketch.Event) {
	const batch = 256
	for off := 0; off < len(events); off += batch {
		end := off + batch
		if end > len(events) {
			end = len(events)
		}
		in.AddBatch(events[off:end])
	}
}

// report is the shared query side: one QueryBatch answers the hot-key
// estimate, the total and the self-join from a single consistent cut of
// the stream — one stripe-merge on the sharded engine, one HTTP round trip
// on the remote client — where three single calls could each observe a
// different state (and cost three round trips).
func report(name string, eng ecmsketch.Engine, hot uint64) {
	res, err := eng.QueryBatch(ecmsketch.QueryBatch{
		Keys:     []uint64{hot},
		Range:    window,
		Total:    true,
		SelfJoin: true,
	})
	if err != nil {
		log.Fatal(name, ": ", err)
	}
	fmt.Printf("%-8s  now=%-9d  hot=%-9.0f  total=%-9.0f  F2=%.3g\n",
		name, res.Now, res.Estimates[0], res.Total, res.SelfJoin)
}

func main() {
	// A skewed synthetic stream: 40k arrivals over the window, zipf keys.
	gen, err := ecmsketch.NewStream(ecmsketch.StreamConfig{
		Events: 40_000, Duration: window, KeyDomain: 10_000, Skew: 1.1, Sites: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	var events []ecmsketch.Event
	hotKey, hotCount := uint64(0), 0
	counts := map[uint64]int{}
	for _, sev := range gen.Drain() {
		events = append(events, ecmsketch.Event{Key: sev.Key, Tick: sev.Time})
		if counts[sev.Key]++; counts[sev.Key] > hotCount {
			hotKey, hotCount = sev.Key, counts[sev.Key]
		}
	}
	fmt.Printf("stream: %d events, hottest key %d appears %d times\n\n", len(events), hotKey, hotCount)

	params := ecmsketch.Params{Epsilon: 0.02, Delta: 0.01, WindowLength: window, Seed: 1}

	// Backend 1: a plain single-goroutine sketch.
	local, err := ecmsketch.New(params)
	if err != nil {
		log.Fatal(err)
	}

	// Backend 2: the lock-striped sharded engine (concurrent ingest,
	// per-key point queries on one stripe, global queries via Theorem 4
	// merge).
	sharded, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
		Params: params, Shards: 8, MergeTTL: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Backend 3: a remote ecmserve instance on a loopback listener, spoken
	// to through the typed client.
	srv, err := ecmserver.New(ecmserver.Config{
		Epsilon: params.Epsilon, Delta: params.Delta, WindowLength: window,
		Seed: params.Seed, Shards: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	remote := ecmclient.New("http://" + ln.Addr().String())

	// The same pipeline, three backends.
	for _, backend := range []struct {
		name string
		eng  ecmsketch.Engine
	}{
		{"sketch", local},
		{"sharded", sharded},
		{"remote", remote},
	} {
		ingest(backend.eng, events)
		report(backend.name, backend.eng, hotKey)
	}
	if err := remote.Err(); err != nil {
		log.Fatal("remote backend failed: ", err)
	}

	// Snapshots from any backend are plain sketches and merge like
	// distributed sites (each backend saw the whole stream, so the merged
	// hot-key estimate triples).
	s1, err := sharded.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	s2, err := remote.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	merged, err := ecmsketch.Merge(local, s1, s2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged 3 backends: hot=%0.f (≈3×%d), count=%d\n",
		merged.Estimate(hotKey, window), hotCount, merged.Count())
}
