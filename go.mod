module ecmsketch

go 1.22
