package ecmsketch_test

import (
	"math"
	"testing"

	"ecmsketch"
)

// TestEndToEndNetworkMonitoring drives the paper's introduction scenario
// through the whole public stack: 33 routers observe a skewed, diurnal
// request stream; their sketches travel a binary aggregation tree; the root
// answers global point and self-join queries; a dyadic hierarchy flags
// overloaded targets; and a geometric monitor guards the global F₂ — all
// cross-checked against the exact oracle.
func TestEndToEndNetworkMonitoring(t *testing.T) {
	const (
		window = 500_000
		events = 60_000
		sites  = 33
		eps    = 0.1
	)
	gen, err := ecmsketch.NewStream(ecmsketch.StreamConfig{
		Events:    events,
		Duration:  2 * window,
		KeyDomain: 1 << 14,
		Skew:      0.9,
		Sites:     sites,
		SiteSkew:  0.6,
		Diurnal:   true,
		Seed:      17,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.Drain()
	oracle := ecmsketch.NewOracle(window)
	for _, ev := range stream {
		oracle.AddEvent(ev)
	}

	// --- distributed summarization + aggregation ---
	params := ecmsketch.Params{
		Epsilon:      eps,
		Delta:        0.1,
		WindowLength: window,
		Seed:         4,
	}
	cluster, err := ecmsketch.NewCluster(params, sites)
	if err != nil {
		t.Fatal(err)
	}
	now := cluster.IngestAll(stream)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if height != 6 {
		t.Errorf("tree height = %d, want 6 for 33 sites", height)
	}
	if cluster.Network().Bytes() == 0 {
		t.Error("aggregation shipped no bytes")
	}

	// Global point queries within ε·‖a‖₁ of the oracle.
	l1 := float64(oracle.Total(window))
	for k := uint64(0); k < 40; k++ {
		got := root.Estimate(k, window)
		want := float64(oracle.Freq(k, window))
		if math.Abs(got-want) > eps*l1 {
			t.Errorf("root Estimate(%d)=%v oracle=%v exceeds ε·‖a‖=%v", k, got, want, eps*l1)
		}
	}
	// Global self-join within ε·‖a‖₁².
	if got, want := root.SelfJoin(window), oracle.SelfJoin(window); math.Abs(got-want) > eps*l1*l1 {
		t.Errorf("root SelfJoin=%v oracle=%v", got, want)
	}

	// --- derived heavy-hitter detection on the union stream ---
	hier, err := ecmsketch.NewHierarchy(ecmsketch.HierarchyParams{
		Sketch: ecmsketch.Params{
			Epsilon:      0.02,
			Delta:        0.1,
			WindowLength: window,
			Seed:         9,
		},
		DomainBits: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range stream {
		if err := hier.Add(ev.Key, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	hier.Advance(now)
	hits, err := hier.HeavyHitters(0.05, window)
	if err != nil {
		t.Fatal(err)
	}
	reported := map[uint64]bool{}
	for _, it := range hits {
		reported[it.Key] = true
	}
	for _, ev := range oracle.HeavyHitters(0.05+0.02, window) {
		if !reported[ev.Key] {
			t.Errorf("true heavy hitter %d (freq %d) missed", ev.Key, ev.Time)
		}
	}

	// --- continuous threshold monitoring over the same stream ---
	mon, err := ecmsketch.NewMonitor(ecmsketch.MonitorConfig{
		Sketch: ecmsketch.Params{
			Epsilon:      0.2,
			Delta:        0.2,
			Query:        ecmsketch.InnerProductQuery,
			WindowLength: window,
			Seed:         2,
		},
		Function:   ecmsketch.SelfJoinMonitor,
		Threshold:  oracle.SelfJoin(window) / float64(4*4) * 1.4,
		CheckEvery: 32,
		Balancing:  true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range stream {
		if _, err := mon.Update(ev.Site%4, ev.Key, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	st := mon.Stats()
	if st.Updates != events {
		t.Errorf("monitor processed %d updates", st.Updates)
	}
	if st.BytesSent >= mon.NaiveSyncBytes() {
		t.Errorf("geometric monitoring sent %d bytes, naive %d — no savings", st.BytesSent, mon.NaiveSyncBytes())
	}

	// --- serialization across the "network" still answers identically ---
	wire := root.Marshal()
	remote, err := ecmsketch.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 20; k++ {
		if a, b := root.Estimate(k, window), remote.Estimate(k, window); a != b {
			t.Fatalf("wire round trip changed Estimate(%d): %v vs %v", k, a, b)
		}
	}
}
