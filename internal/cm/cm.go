// Package cm implements the Count-Min sketch of Cormode & Muthukrishnan: the
// conventional, full-history frequency summary that ECM-sketches extend with
// sliding-window counters. The plain sketch doubles as the paper's baseline
// (unbounded history) and as the "extracted" linear vector representation the
// geometric monitoring method operates on.
package cm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ecmsketch/internal/hashing"
)

// Params configures a Count-Min sketch. Either give the accuracy pair
// (Epsilon, Delta) and let the dimensions be derived as w = ⌈e/ε⌉,
// d = ⌈ln(1/δ)⌉, or fix Width and Depth directly.
type Params struct {
	Epsilon float64
	Delta   float64
	Width   int
	Depth   int
	Seed    uint64
}

// normalize derives missing dimensions and validates the result.
func (p *Params) normalize() error {
	if p.Width == 0 {
		if !(p.Epsilon > 0 && p.Epsilon < 1) {
			return fmt.Errorf("cm: Epsilon must be in (0,1) when Width is unset, got %v", p.Epsilon)
		}
		p.Width = int(math.Ceil(math.E / p.Epsilon))
	}
	if p.Depth == 0 {
		if !(p.Delta > 0 && p.Delta < 1) {
			return fmt.Errorf("cm: Delta must be in (0,1) when Depth is unset, got %v", p.Delta)
		}
		p.Depth = int(math.Ceil(math.Log(1 / p.Delta)))
	}
	if p.Width <= 0 || p.Depth <= 0 {
		return fmt.Errorf("cm: dimensions must be positive, got %dx%d", p.Depth, p.Width)
	}
	return nil
}

// Sketch is a Count-Min sketch over uint64 item keys.
type Sketch struct {
	fam   *hashing.Family
	cells []uint64 // row-major d×w
	w, d  int
	count uint64 // ||a||₁: total inserted value
}

// New constructs a Count-Min sketch.
func New(p Params) (*Sketch, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	fam, err := hashing.NewFamily(p.Seed, p.Depth, p.Width)
	if err != nil {
		return nil, err
	}
	return &Sketch{
		fam:   fam,
		cells: make([]uint64, p.Depth*p.Width),
		w:     p.Width,
		d:     p.Depth,
	}, nil
}

// Width reports the row width w.
func (s *Sketch) Width() int { return s.w }

// Depth reports the number of rows d.
func (s *Sketch) Depth() int { return s.d }

// Count reports ||a||₁, the total inserted value.
func (s *Sketch) Count() uint64 { return s.count }

// Add registers value v for the item key.
func (s *Sketch) Add(key uint64, v uint64) {
	for j := 0; j < s.d; j++ {
		s.cells[j*s.w+s.fam.Hash(j, key)] += v
	}
	s.count += v
}

// Estimate returns the point-query estimate min_j CM[h_j(x), j], which never
// underestimates the true frequency and overestimates by at most ε·||a||₁
// with probability 1-δ.
func (s *Sketch) Estimate(key uint64) uint64 {
	est := s.cells[s.fam.Hash(0, key)]
	for j := 1; j < s.d; j++ {
		if v := s.cells[j*s.w+s.fam.Hash(j, key)]; v < est {
			est = v
		}
	}
	return est
}

// InnerProduct estimates a⊙b = Σ_x f_a(x)·f_b(x) as the minimum over rows of
// the row-wise cell products. Both sketches must share dimensions and hash
// functions.
func (s *Sketch) InnerProduct(o *Sketch) (uint64, error) {
	if !s.Compatible(o) {
		return 0, errors.New("cm: inner product requires identically configured sketches")
	}
	var best uint64 = math.MaxUint64
	for j := 0; j < s.d; j++ {
		var sum uint64
		row := s.cells[j*s.w : (j+1)*s.w]
		orow := o.cells[j*s.w : (j+1)*s.w]
		for i := range row {
			sum += row[i] * orow[i]
		}
		if sum < best {
			best = sum
		}
	}
	return best, nil
}

// SelfJoin estimates the second frequency moment F₂ = Σ_x f(x)².
func (s *Sketch) SelfJoin() uint64 {
	v, _ := s.InnerProduct(s)
	return v
}

// Compatible reports whether two sketches share dimensions and hash
// functions, and hence may be merged or joined.
func (s *Sketch) Compatible(o *Sketch) bool {
	return o != nil && s.w == o.w && s.d == o.d && s.fam.Compatible(o.fam)
}

// Merge adds the counters of o into s (stream concatenation). Count-Min
// sketches are linear, so the merged sketch is exactly the sketch of the
// combined stream.
func (s *Sketch) Merge(o *Sketch) error {
	if !s.Compatible(o) {
		return errors.New("cm: merge requires identically configured sketches")
	}
	for i := range s.cells {
		s.cells[i] += o.cells[i]
	}
	s.count += o.count
	return nil
}

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.cells {
		s.cells[i] = 0
	}
	s.count = 0
}

// MemoryBytes reports the heap footprint.
func (s *Sketch) MemoryBytes() int { return 64 + 8*len(s.cells) }

// Cell returns the raw counter at row j, column i (used by tests and by the
// geometric-method extraction).
func (s *Sketch) Cell(j, i int) uint64 { return s.cells[j*s.w+i] }

// Marshal encodes the sketch: hash-family parameters followed by varint
// cells.
func (s *Sketch) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(s.fam.Marshal())
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], s.count)
	buf.Write(tmp[:n])
	for _, c := range s.cells {
		n = binary.PutUvarint(tmp[:], c)
		buf.Write(tmp[:n])
	}
	return buf.Bytes()
}

// Unmarshal reconstructs a sketch from Marshal output.
func Unmarshal(b []byte) (*Sketch, error) {
	fam, off, err := hashing.UnmarshalFamily(b)
	if err != nil {
		return nil, err
	}
	s := &Sketch{
		fam:   fam,
		w:     fam.Width(),
		d:     fam.Depth(),
		cells: make([]uint64, fam.Depth()*fam.Width()),
	}
	count, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, errors.New("cm: truncated encoding")
	}
	off += n
	s.count = count
	for i := range s.cells {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, errors.New("cm: truncated encoding")
		}
		off += n
		s.cells[i] = v
	}
	return s, nil
}

// Vector is a dense real-valued view of a Count-Min array. The geometric
// monitoring method (Section 6.2) treats extracted sketches as vectors in
// R^(d·w) and performs linear algebra on them: averages, differences, norms.
type Vector struct {
	W, D  int
	Cells []float64
}

// NewVector allocates a zero vector of the given dimensions.
func NewVector(d, w int) *Vector {
	return &Vector{W: w, D: d, Cells: make([]float64, d*w)}
}

// ToVector converts the sketch counters to a real vector.
func (s *Sketch) ToVector() *Vector {
	v := NewVector(s.d, s.w)
	for i, c := range s.cells {
		v.Cells[i] = float64(c)
	}
	return v
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := NewVector(v.D, v.W)
	copy(c.Cells, v.Cells)
	return c
}

// SameShape reports whether two vectors have equal dimensions.
func (v *Vector) SameShape(o *Vector) bool { return o != nil && v.W == o.W && v.D == o.D }

// AddScaled sets v += α·o and returns v.
func (v *Vector) AddScaled(o *Vector, alpha float64) *Vector {
	for i := range v.Cells {
		v.Cells[i] += alpha * o.Cells[i]
	}
	return v
}

// Sub sets v -= o and returns v.
func (v *Vector) Sub(o *Vector) *Vector { return v.AddScaled(o, -1) }

// Scale multiplies v by α and returns v.
func (v *Vector) Scale(alpha float64) *Vector {
	for i := range v.Cells {
		v.Cells[i] *= alpha
	}
	return v
}

// Norm returns the Euclidean norm of v.
func (v *Vector) Norm() float64 {
	var s float64
	for _, c := range v.Cells {
		s += c * c
	}
	return math.Sqrt(s)
}

// Dist returns the Euclidean distance between v and o.
func (v *Vector) Dist(o *Vector) float64 {
	var s float64
	for i := range v.Cells {
		d := v.Cells[i] - o.Cells[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SelfJoin evaluates the self-join estimate of the vector: the minimum over
// rows of the row-wise sum of squared cells. This is the function f whose
// threshold crossings the geometric monitor tracks.
func (v *Vector) SelfJoin() float64 {
	best := math.Inf(1)
	for j := 0; j < v.D; j++ {
		var sum float64
		for i := 0; i < v.W; i++ {
			c := v.Cells[j*v.W+i]
			sum += c * c
		}
		if sum < best {
			best = sum
		}
	}
	return best
}

// Marshal encodes the vector dimensions and cells (8 bytes per cell).
func (v *Vector) Marshal() []byte {
	buf := make([]byte, 8+8*len(v.Cells))
	binary.LittleEndian.PutUint32(buf[0:], uint32(v.D))
	binary.LittleEndian.PutUint32(buf[4:], uint32(v.W))
	for i, c := range v.Cells {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(c))
	}
	return buf
}

// UnmarshalVector reconstructs a vector from Marshal output.
func UnmarshalVector(b []byte) (*Vector, error) {
	if len(b) < 8 {
		return nil, errors.New("cm: truncated vector encoding")
	}
	d := int(binary.LittleEndian.Uint32(b[0:]))
	w := int(binary.LittleEndian.Uint32(b[4:]))
	if d <= 0 || w <= 0 || len(b) != 8+8*d*w {
		return nil, fmt.Errorf("cm: corrupt vector encoding (d=%d w=%d len=%d)", d, w, len(b))
	}
	v := NewVector(d, w)
	for i := range v.Cells {
		v.Cells[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8+8*i:]))
	}
	return v, nil
}
