package cm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecmsketch/internal/hashing"
)

func mustSketch(t *testing.T, p Params) *Sketch {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestParamsDerivation(t *testing.T) {
	s := mustSketch(t, Params{Epsilon: 0.1, Delta: 0.05})
	if want := int(math.Ceil(math.E / 0.1)); s.Width() != want {
		t.Errorf("Width = %d, want %d", s.Width(), want)
	}
	if want := int(math.Ceil(math.Log(20.0))); s.Depth() != want {
		t.Errorf("Depth = %d, want %d", s.Depth(), want)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{},
		{Epsilon: 0.1},
		{Delta: 0.1},
		{Epsilon: 2, Delta: 0.1},
		{Epsilon: 0.1, Delta: 2},
		{Width: -3, Depth: 4},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) succeeded, want error", p)
		}
	}
	// Explicit dimensions need no accuracy parameters.
	if _, err := New(Params{Width: 100, Depth: 4}); err != nil {
		t.Errorf("New with explicit dimensions: %v", err)
	}
}

func TestNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := mustSketch(t, Params{Epsilon: 0.05, Delta: 0.01, Seed: 11})
	truth := map[uint64]uint64{}
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(5000))
		s.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := s.Estimate(k); got < want {
			t.Fatalf("Estimate(%d) = %d < true %d; Count-Min must never underestimate", k, got, want)
		}
	}
}

func TestPointQueryErrorBound(t *testing.T) {
	const eps, delta = 0.01, 0.01
	rng := rand.New(rand.NewSource(3))
	s := mustSketch(t, Params{Epsilon: eps, Delta: delta, Seed: 5})
	truth := map[uint64]uint64{}
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	const n = 200000
	for i := 0; i < n; i++ {
		k := zipf.Uint64()
		s.Add(k, 1)
		truth[k]++
	}
	bad := 0
	for k, want := range truth {
		if float64(s.Estimate(k)-want) > eps*float64(n) {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(truth)); frac > delta*5 {
		t.Errorf("%.2f%% of estimates exceed ε·n, want ≲ δ", 100*frac)
	}
}

func TestLinearity(t *testing.T) {
	// sketch(a) + sketch(b) == sketch(a ++ b), cell for cell.
	p := Params{Epsilon: 0.1, Delta: 0.1, Seed: 7}
	a := mustSketch(t, p)
	b := mustSketch(t, p)
	ab := mustSketch(t, p)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(500))
		v := uint64(rng.Intn(5) + 1)
		if i%2 == 0 {
			a.Add(k, v)
		} else {
			b.Add(k, v)
		}
		ab.Add(k, v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for j := 0; j < a.Depth(); j++ {
		for i := 0; i < a.Width(); i++ {
			if a.Cell(j, i) != ab.Cell(j, i) {
				t.Fatalf("cell (%d,%d): merged=%d direct=%d", j, i, a.Cell(j, i), ab.Cell(j, i))
			}
		}
	}
	if a.Count() != ab.Count() {
		t.Errorf("Count merged=%d direct=%d", a.Count(), ab.Count())
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := mustSketch(t, Params{Epsilon: 0.1, Delta: 0.1, Seed: 1})
	b := mustSketch(t, Params{Epsilon: 0.1, Delta: 0.1, Seed: 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge of different seeds succeeded")
	}
	c := mustSketch(t, Params{Epsilon: 0.2, Delta: 0.1, Seed: 1})
	if err := a.Merge(c); err == nil {
		t.Fatal("Merge of different widths succeeded")
	}
	if _, err := a.InnerProduct(b); err == nil {
		t.Fatal("InnerProduct of different seeds succeeded")
	}
}

func TestInnerProductAccuracy(t *testing.T) {
	const eps = 0.02
	p := Params{Epsilon: eps, Delta: 0.01, Seed: 9}
	a := mustSketch(t, p)
	b := mustSketch(t, p)
	fa := map[uint64]uint64{}
	fb := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		ka, kb := uint64(rng.Intn(300)), uint64(rng.Intn(300))
		a.Add(ka, 1)
		b.Add(kb, 1)
		fa[ka]++
		fb[kb]++
	}
	var want float64
	for k, va := range fa {
		want += float64(va) * float64(fb[k])
	}
	got, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	if float64(got) < want {
		t.Errorf("InnerProduct = %d < true %v; must not underestimate", got, want)
	}
	bound := eps * float64(a.Count()) * float64(b.Count())
	if float64(got)-want > bound {
		t.Errorf("InnerProduct error %v exceeds ε·||a||·||b|| = %v", float64(got)-want, bound)
	}
}

func TestSelfJoin(t *testing.T) {
	s := mustSketch(t, Params{Epsilon: 0.01, Delta: 0.01, Seed: 13})
	// 10 items × frequency 100 → F₂ = 10·100² = 100000.
	for k := uint64(0); k < 10; k++ {
		s.Add(k, 100)
	}
	got := s.SelfJoin()
	if got < 100000 {
		t.Errorf("SelfJoin = %d, want ≥ 100000", got)
	}
	if float64(got) > 100000+0.01*1000*1000 {
		t.Errorf("SelfJoin = %d, exceeds bound", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := mustSketch(t, Params{Epsilon: 0.1, Delta: 0.1, Seed: 21})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		s.Add(uint64(rng.Intn(1000)), uint64(rng.Intn(3)+1))
	}
	dec, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !s.Compatible(dec) {
		t.Fatal("decoded sketch incompatible with original")
	}
	for k := uint64(0); k < 1000; k++ {
		if s.Estimate(k) != dec.Estimate(k) {
			t.Fatalf("Estimate(%d) differs after round trip", k)
		}
	}
	if dec.Count() != s.Count() {
		t.Errorf("Count decoded=%d original=%d", dec.Count(), s.Count())
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	s := mustSketch(t, Params{Epsilon: 0.1, Delta: 0.1})
	s.Add(42, 7)
	enc := s.Marshal()
	for _, cut := range []int{0, 3, 10, len(enc) / 2} {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Errorf("Unmarshal accepted truncation to %d bytes", cut)
		}
	}
}

func TestResetAndMemory(t *testing.T) {
	s := mustSketch(t, Params{Epsilon: 0.1, Delta: 0.1})
	s.Add(1, 5)
	s.Reset()
	if s.Estimate(1) != 0 || s.Count() != 0 {
		t.Error("Reset left state behind")
	}
	if mb := s.MemoryBytes(); mb < 8*s.Width()*s.Depth() {
		t.Errorf("MemoryBytes = %d, smaller than the cell array", mb)
	}
}

func TestQuickEstimateUpperBound(t *testing.T) {
	// Property: for any input multiset, estimate ≥ truth.
	prop := func(keys []uint16) bool {
		s, err := New(Params{Width: 32, Depth: 3, Seed: 99})
		if err != nil {
			return false
		}
		truth := map[uint64]uint64{}
		for _, k := range keys {
			s.Add(uint64(k), 1)
			truth[uint64(k)]++
		}
		for k, want := range truth {
			if s.Estimate(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	v := NewVector(2, 3)
	copy(v.Cells, []float64{1, 2, 3, 4, 5, 6})
	o := v.Clone()
	if !v.SameShape(o) {
		t.Fatal("clone shape mismatch")
	}
	if got := v.Dist(o); got != 0 {
		t.Errorf("Dist to clone = %v", got)
	}
	o.Scale(2)
	if o.Cells[0] != 2 || v.Cells[0] != 1 {
		t.Error("Scale affected the wrong vector")
	}
	o.Sub(v)
	if o.Cells[5] != 6 {
		t.Errorf("Sub: got %v, want 6", o.Cells[5])
	}
	if got, want := v.Norm(), math.Sqrt(91); math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm = %v, want %v", got, want)
	}
	// SelfJoin of the vector: min over rows of Σ cells².
	// Row 0: 1+4+9=14, row 1: 16+25+36=77 → 14.
	if got := v.SelfJoin(); got != 14 {
		t.Errorf("SelfJoin = %v, want 14", got)
	}
}

func TestVectorMarshalRoundTrip(t *testing.T) {
	v := NewVector(3, 5)
	for i := range v.Cells {
		v.Cells[i] = float64(i) * 1.5
	}
	dec, err := UnmarshalVector(v.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalVector: %v", err)
	}
	if dec.Dist(v) != 0 {
		t.Error("vector changed across round trip")
	}
	if _, err := UnmarshalVector(v.Marshal()[:7]); err == nil {
		t.Error("UnmarshalVector accepted truncated input")
	}
}

func TestToVector(t *testing.T) {
	s := mustSketch(t, Params{Width: 8, Depth: 2, Seed: 3})
	s.Add(5, 10)
	v := s.ToVector()
	var sum float64
	for _, c := range v.Cells {
		sum += c
	}
	if sum != 20 { // 10 in each of 2 rows
		t.Errorf("vector mass = %v, want 20", sum)
	}
}

func TestHashFamilyDeterminism(t *testing.T) {
	f1, err := hashing.NewFamily(42, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := hashing.NewFamily(42, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		for k := uint64(0); k < 1000; k++ {
			if f1.Hash(j, k) != f2.Hash(j, k) {
				t.Fatalf("families from equal seeds disagree at (%d,%d)", j, k)
			}
		}
	}
}
