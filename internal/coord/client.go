package coord

import (
	"crypto/tls"
	"crypto/x509"
	"hash/fnv"
	"net"
	"net/http"
	"time"
)

// NewPullClient returns an HTTP client tuned for coordinator pulls: one
// keep-alive transport shared by every site pulled through it, with idle
// pools sized for wide deployments — a coordinator revisiting hundreds of
// distinct site hosts every interval would churn http.DefaultTransport's
// global 100-connection idle cap into a reconnect storm — plus dial, TLS
// and overall timeouts so one unresponsive site cannot wedge a pull
// goroutine forever. A non-nil rootCAs replaces the system trust pool, for
// deployments running their sites behind a private CA (the server side is
// the -tls-cert/-tls-key flags on ecmserve and ecmcoord).
func NewPullClient(timeout time.Duration, rootCAs *x509.CertPool) *http.Client {
	tr := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          4096,
		MaxIdleConnsPerHost:   4,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
	if rootCAs != nil {
		tr.TLSClientConfig = &tls.Config{RootCAs: rootCAs}
	}
	return &http.Client{Transport: tr, Timeout: timeout}
}

// defaultPullClient backs NewHTTPSite when the caller passes no client:
// every such site shares one keep-alive transport and a 30-second pull
// timeout.
var defaultPullClient = NewPullClient(30*time.Second, nil)

// PullStagger returns the deterministic offset in [0, window) at which the
// site named name is fetched inside a pull round — a stable hash of the
// name, so a site lands at the same phase every interval and across
// coordinator restarts, and a fleet of sites spreads near-uniformly over
// the window instead of being hit in one burst. A non-positive window
// disables staggering.
func PullStagger(name string, window time.Duration) time.Duration {
	if window <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return time.Duration(h.Sum64() % uint64(window))
}
