// Package coord is the transport-abstracted coordinator of the paper's
// distributed deployments: remote sites summarize their local sub-streams
// in ECM-sketches, and a coordinator pulls those summaries and aggregates
// them bottom-up over a balanced binary tree (the topology of Section 7.3)
// with the order-preserving merge ⊕.
//
// The Site interface is the transport seam. Two implementations ship:
//
//   - LocalSite wraps any in-process snapshot source (a *core.Sketch, the
//     sharded engine, anything with Snapshot). Its "transfer" is an arena
//     clone — Sketch.Snapshot / EHBank.Clone, three slab memcpys — so the
//     simulated cluster pays no marshal+decode round trip on the merge
//     path. The wire size it reports (Sketch.WireSize) is exactly what
//     shipping the summary would cost, computed without encoding it.
//   - HTTPSite pulls GET /v1/snapshot from an ecmserver deployment (falling
//     back to the legacy /sketch route) and decodes the payload; the wire
//     size it reports is the payload length actually transferred.
//
// Both transports feed one merge path, Coordinator.AggregateTree, so a
// simulation and a networked deployment of the same event log produce
// bit-identical merged summaries and identical Network accounting: sizes
// are measured at the transport boundary, and the tree model charges one
// message per aggregation edge regardless of how the leaves arrived.
package coord

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"ecmsketch/internal/core"
)

// Network accumulates communication-cost accounting across goroutines: the
// byte and message volume of every aggregation edge, the figure the paper's
// distributed experiments report as transfer cost.
type Network struct {
	bytes    atomic.Int64
	messages atomic.Int64
}

// Charge records one message of n payload bytes.
func (n *Network) Charge(payload int) {
	n.bytes.Add(int64(payload))
	n.messages.Add(1)
}

// Bytes reports the total payload volume transferred.
func (n *Network) Bytes() int64 { return n.bytes.Load() }

// Messages reports the number of messages sent.
func (n *Network) Messages() int64 { return n.messages.Load() }

// Site is one summary source behind a transport. Snapshot returns a frozen,
// independently owned sketch of the site's stream — safe to merge, query or
// mutate without affecting the site — plus the wire size shipping that
// summary costs, measured at the transport boundary (actual payload bytes
// for networked sites, the exact would-be encoding size for in-process
// ones).
type Site interface {
	// Name identifies the site in errors and accounting.
	Name() string
	// Snapshot fetches the site's current summary and its transfer size.
	Snapshot() (*core.Sketch, int, error)
}

// SnapshotSource is the fragment of the engine contract an in-process site
// needs: *core.Sketch, the sharded engine and every other local front end
// satisfy it.
type SnapshotSource interface {
	Snapshot() (*core.Sketch, error)
}

// LocalSite adapts an in-process snapshot source as a coordinator site.
type LocalSite struct {
	name string
	src  SnapshotSource
}

// NewLocalSite wraps src as a site named name.
func NewLocalSite(name string, src SnapshotSource) *LocalSite {
	return &LocalSite{name: name, src: src}
}

// Name identifies the site.
func (s *LocalSite) Name() string { return s.name }

// Snapshot clones the source's current state (an arena copy on the default
// exponential-histogram engine) and reports the exact wire size the summary
// would cost to ship, without encoding it.
func (s *LocalSite) Snapshot() (*core.Sketch, int, error) {
	snap, err := s.src.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return snap, snap.WireSize(), nil
}

// maxSnapshotBytes bounds a pulled snapshot payload (1 GiB, matching the
// historical ecmcoord limit) so a misbehaving site cannot exhaust
// coordinator memory.
const maxSnapshotBytes = 1 << 30

// HTTPSite pulls summaries from an ecmserver deployment over HTTP.
type HTTPSite struct {
	name string
	base string
	hc   *http.Client
}

// NewHTTPSite builds a site pulling from the ecmserver instance at baseURL
// (e.g. "http://collector-3:8080"). A nil client uses http.DefaultClient;
// pass one with a Timeout for production pulls.
func NewHTTPSite(baseURL string, hc *http.Client) *HTTPSite {
	if hc == nil {
		hc = http.DefaultClient
	}
	base := strings.TrimRight(baseURL, "/")
	return &HTTPSite{name: base, base: base, hc: hc}
}

// Name identifies the site (its base URL).
func (s *HTTPSite) Name() string { return s.name }

// Snapshot pulls the site's frozen merged view: GET /v1/snapshot, falling
// back to the legacy /sketch route on 404 so coordinators can pull from
// deployments predating the snapshot endpoint. The reported size is the
// payload length actually transferred.
func (s *HTTPSite) Snapshot() (*core.Sketch, int, error) {
	body, status, err := s.fetch("/v1/snapshot")
	if err == nil && status == http.StatusNotFound {
		body, status, err = s.fetch("/sketch")
	}
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, 0, fmt.Errorf("snapshot pull returned status %d", status)
	}
	sk, err := core.Unmarshal(body)
	if err != nil {
		return nil, 0, fmt.Errorf("decoding snapshot (%d bytes): %w", len(body), err)
	}
	return sk, len(body), nil
}

func (s *HTTPSite) fetch(path string) ([]byte, int, error) {
	resp, err := s.hc.Get(s.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("reading snapshot body: %w", err)
	}
	return body, resp.StatusCode, nil
}

// Coordinator aggregates a set of sites' summaries into one sketch of the
// combined stream. It is safe for concurrent use: concurrent AggregateTree
// calls each pull their own snapshots and share only the atomic Network
// counters.
type Coordinator struct {
	sites []Site
	net   *Network

	// pulled counts payload bytes actually fetched from sites (one
	// snapshot per site per pull), as opposed to the Network's
	// aggregation-tree model in which internal edges also ship and a
	// single-site tree ships nothing. Bandwidth monitoring wants this one.
	pulled atomic.Int64
}

// New builds a coordinator over the given sites with fresh network
// accounting.
func New(sites ...Site) *Coordinator { return NewWithNetwork(new(Network), sites...) }

// NewWithNetwork builds a coordinator charging an existing Network — how
// the simulated Cluster threads its historical accounting through the
// shared merge path.
func NewWithNetwork(net *Network, sites ...Site) *Coordinator {
	return &Coordinator{sites: sites, net: net}
}

// Sites exposes the coordinator's site set.
func (c *Coordinator) Sites() []Site { return c.sites }

// Network exposes the communication accounting of the aggregation-tree
// model: one message per tree edge, identical across transports.
func (c *Coordinator) Network() *Network { return c.net }

// PulledBytes reports the total snapshot payload volume fetched from sites
// across all pulls — the actual transfer bill of a networked deployment
// (for in-process sites, the exact volume shipping would have cost).
func (c *Coordinator) PulledBytes() int64 { return c.pulled.Load() }

// pull fetches every site's snapshot concurrently and verifies the
// summaries are mutually mergeable, naming the offending site on failure.
// Nothing is charged here: transfer charges are per aggregation edge, in
// AggregateTree, using the sizes the transports report.
func (c *Coordinator) pull() ([]*core.Sketch, []int, error) {
	parts := make([]*core.Sketch, len(c.sites))
	sizes := make([]int, len(c.sites))
	errs := make([]error, len(c.sites))
	var wg sync.WaitGroup
	for i, site := range c.sites {
		wg.Add(1)
		go func(i int, site Site) {
			defer wg.Done()
			parts[i], sizes[i], errs[i] = site.Snapshot()
		}(i, site)
	}
	wg.Wait()
	// Every successfully fetched payload is charged to the pulled counter
	// even if the pull as a whole fails below: those bytes crossed the
	// transport regardless of whether a sibling site erred.
	for i, err := range errs {
		if err == nil {
			c.pulled.Add(int64(sizes[i]))
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("coord: site %s: %w", c.sites[i].Name(), err)
		}
	}
	for i := 1; i < len(parts); i++ {
		if !parts[0].Compatible(parts[i]) {
			return nil, nil, fmt.Errorf("coord: site %s: sketch parameters incompatible with site %s",
				c.sites[i].Name(), c.sites[0].Name())
		}
	}
	return parts, sizes, nil
}

// AggregateTree pulls every site's summary and merges bottom-up over a
// balanced binary tree of height ⌈log₂ n⌉, as in the paper's distributed
// experiments: all sites are leaves; each aggregation edge ships the
// child's summary (charged to the Network at the size the transport
// reported — the exact encoding size for in-process sites, the transferred
// payload for networked ones), and each internal node merges its children
// with the order-preserving ⊕. An odd node out is promoted to the next
// level, its summary still traveling one hop upward. The root sketch
// summarizing the union stream is returned with the tree height.
func (c *Coordinator) AggregateTree() (*core.Sketch, int, error) {
	if len(c.sites) == 0 {
		return nil, 0, errors.New("coord: no sites to aggregate")
	}
	level, lsz, err := c.pull()
	if err != nil {
		return nil, 0, err
	}
	height := 0
	// Internal-node sizes are computed lazily (sentinel -1) at the moment
	// the node is actually charged for an upward hop: the root never ships
	// anywhere, so its encoding size — a full throwaway Marshal on wave
	// engines — is never computed.
	charge := func(lsz []int, level []*core.Sketch, i int) int {
		if lsz[i] < 0 {
			lsz[i] = level[i].WireSize()
		}
		c.net.Charge(lsz[i])
		return lsz[i]
	}
	for len(level) > 1 {
		next := make([]*core.Sketch, 0, (len(level)+1)/2)
		nsz := make([]int, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				sz := charge(lsz, level, i)
				next = append(next, level[i])
				nsz = append(nsz, sz)
				continue
			}
			charge(lsz, level, i)
			charge(lsz, level, i+1)
			m, err := core.Merge(level[i], level[i+1])
			if err != nil {
				return nil, 0, fmt.Errorf("coord: aggregation at height %d: %w", height, err)
			}
			next = append(next, m)
			nsz = append(nsz, -1)
		}
		level, lsz = next, nsz
		height++
	}
	return level[0], height, nil
}
