// Package coord is the transport-abstracted coordinator of the paper's
// distributed deployments: remote sites summarize their local sub-streams
// in ECM-sketches, and a coordinator pulls those summaries and aggregates
// them bottom-up over a balanced binary tree (the topology of Section 7.3)
// with the order-preserving merge ⊕.
//
// The Site interface is the transport seam. Two implementations ship:
//
//   - LocalSite wraps any in-process snapshot source (a *core.Sketch, the
//     sharded engine, anything with Snapshot). Its "transfer" is an arena
//     clone — Sketch.Snapshot / EHBank.Clone, three slab memcpys — so the
//     simulated cluster pays no marshal+decode round trip on the merge
//     path. The wire size it reports (Sketch.WireSize) is exactly what
//     shipping the summary would cost, computed without encoding it.
//   - HTTPSite pulls GET /v1/snapshot from an ecmserver deployment (falling
//     back to the legacy /sketch route) and decodes the payload; the wire
//     size it reports is the payload length actually transferred.
//
// Both transports feed one merge path, Coordinator.AggregateTree, so a
// simulation and a networked deployment of the same event log produce
// bit-identical merged summaries and identical Network accounting: sizes
// are measured at the transport boundary, and the tree model charges one
// message per aggregation edge regardless of how the leaves arrived.
//
// # Delta pulls
//
// Re-pulling a site every interval ships its whole summary even when almost
// nothing changed. With SetDeltaPulls(true) the coordinator switches to the
// cursor-based incremental protocol: it retains per-site receiver state
// (core.DeltaState), presents each site the cursor from the previous pull,
// and applies the delta the site answers with — only the stripes and cells
// whose version moved cross the transport, and the leaf charge in the
// Network accounting is the actual delta payload size. Any cursor
// invalidation — site restart, parameter change, stale or torn payload —
// makes the coordinator transparently re-pull a full baseline from that
// site; a delta-pulling coordinator's merged result stays byte-identical to
// a full-pulling one's at every pull.
package coord

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecmsketch/internal/core"
	"ecmsketch/internal/wire"
)

// Network accumulates communication-cost accounting across goroutines: the
// byte and message volume of every aggregation edge, the figure the paper's
// distributed experiments report as transfer cost.
type Network struct {
	bytes    atomic.Int64
	messages atomic.Int64
}

// Charge records one message of n payload bytes.
func (n *Network) Charge(payload int) {
	n.bytes.Add(int64(payload))
	n.messages.Add(1)
}

// Bytes reports the total payload volume transferred.
func (n *Network) Bytes() int64 { return n.bytes.Load() }

// Messages reports the number of messages sent.
func (n *Network) Messages() int64 { return n.messages.Load() }

// Site is one summary source behind a transport. Snapshot returns a frozen,
// independently owned sketch of the site's stream — safe to merge, query or
// mutate without affecting the site — plus the wire size shipping that
// summary costs, measured at the transport boundary (actual payload bytes
// for networked sites, the exact would-be encoding size for in-process
// ones). Delta is the incremental counterpart: raw protocol payloads the
// coordinator's per-site DeltaState applies, with the size again measured
// at the transport boundary (for networked sites that is the compressed
// transfer when gzip was negotiated).
type Site interface {
	// Name identifies the site in errors and accounting.
	Name() string
	// Snapshot fetches the site's current summary and its transfer size.
	Snapshot() (*core.Sketch, int, error)
	// Delta fetches the site's update since a cursor: the payload, the
	// cursor it brings the puller to, whether the payload is a full
	// baseline, and the transfer size. Sites that cannot produce deltas
	// (legacy servers, plain snapshot sources) answer every cursor with a
	// full payload and a zero cursor.
	Delta(since core.Cursor) (payload []byte, cur core.Cursor, full bool, size int, err error)
}

// SnapshotSource is the fragment of the engine contract an in-process site
// needs: *core.Sketch, the sharded engine and every other local front end
// satisfy it.
type SnapshotSource interface {
	Snapshot() (*core.Sketch, error)
}

// DeltaSnapshotSource is the optional incremental half of an in-process
// site's engine contract; every front end of the public API satisfies it.
// A LocalSite over a source without it degrades to full payloads per pull.
type DeltaSnapshotSource interface {
	DeltaSnapshot(since core.Cursor) ([]byte, core.Cursor, bool, error)
}

// LocalSite adapts an in-process snapshot source as a coordinator site.
type LocalSite struct {
	name string
	src  SnapshotSource
}

// NewLocalSite wraps src as a site named name.
func NewLocalSite(name string, src SnapshotSource) *LocalSite {
	return &LocalSite{name: name, src: src}
}

// Name identifies the site.
func (s *LocalSite) Name() string { return s.name }

// Snapshot clones the source's current state (an arena copy on the default
// exponential-histogram engine), settles it to its own clock — the
// protocol-wide convention, so in-process and decoded-from-the-wire
// summaries carry one expiry frontier — and reports the exact wire size the
// summary would cost to ship, without encoding it.
func (s *LocalSite) Snapshot() (*core.Sketch, int, error) {
	snap, err := s.src.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	snap.Advance(snap.Now())
	return snap, snap.WireSize(), nil
}

// Delta answers an incremental pull from the source's own DeltaSnapshot
// when it has one; sources without incremental support ship a full settled
// encoding on every pull (with a zero cursor, so the puller keeps asking
// for full). Unlike full Snapshot transfers, delta transfers materialize
// real payload bytes even in-process: the receiver state applies payloads,
// and both transports exercising identical payloads is what the
// cross-transport equivalence tests pin.
func (s *LocalSite) Delta(since core.Cursor) ([]byte, core.Cursor, bool, int, error) {
	if ds, ok := s.src.(DeltaSnapshotSource); ok {
		payload, cur, full, err := ds.DeltaSnapshot(since)
		if err != nil {
			return nil, core.Cursor{}, false, 0, err
		}
		return payload, cur, full, len(payload), nil
	}
	snap, err := s.src.Snapshot()
	if err != nil {
		return nil, core.Cursor{}, false, 0, err
	}
	snap.Advance(snap.Now())
	enc := snap.Marshal()
	return enc, core.Cursor{}, true, len(enc), nil
}

// HTTPSite pulls summaries from an ecmserver deployment over HTTP.
type HTTPSite struct {
	name  string
	base  string
	hc    *http.Client
	token string
}

// NewHTTPSite builds a site pulling from the ecmserver instance at baseURL
// (e.g. "http://collector-3:8080"). A nil client uses the package's shared
// pull client — one keep-alive transport across every such site, with a
// 30-second overall timeout (see NewPullClient); pass an explicit client to
// change timeouts or trust private root CAs.
func NewHTTPSite(baseURL string, hc *http.Client) *HTTPSite {
	if hc == nil {
		hc = defaultPullClient
	}
	base := strings.TrimRight(baseURL, "/")
	return &HTTPSite{name: base, base: base, hc: hc}
}

// Name identifies the site (its base URL, unless renamed with SetName).
func (s *HTTPSite) Name() string { return s.name }

// URL reports the base URL the site pulls from — the piece of a dynamic
// registration worth persisting so membership survives a coordinator
// restart.
func (s *HTTPSite) URL() string { return s.base }

// SetName gives the site a stable identity independent of its address, so a
// site re-registering from a new host/port replaces its old membership entry
// instead of accumulating a duplicate. Configure before handing the site to
// a coordinator; the name keys membership, health, and pull staggering.
func (s *HTTPSite) SetName(name string) {
	if name != "" {
		s.name = name
	}
}

// SetAuthToken makes every pull carry "Authorization: Bearer <tok>" — the
// credential an ecmserver started with a non-empty AuthToken requires. An
// empty token sends no header. Configure before the first pull.
func (s *HTTPSite) SetAuthToken(tok string) { s.token = tok }

// Snapshot pulls the site's frozen merged view: GET /v1/snapshot (offering
// gzip), falling back to the legacy /sketch route on 404 so coordinators
// can pull from deployments predating the snapshot endpoint.
//
// The reported size is the protocol payload length: the figure the paper's
// transfer accounting charges, identical to what the in-process transport
// reports for the same summary. Negotiated compression shrinks the link
// bytes below that figure but deliberately does not enter the accounting —
// otherwise the two transports of the same event log would stop agreeing.
func (s *HTTPSite) Snapshot() (*core.Sketch, int, error) {
	rep, err := s.fetch("/v1/snapshot")
	if err == nil && rep.Status == http.StatusNotFound {
		rep, err = s.fetch("/sketch")
	}
	if err != nil {
		return nil, 0, err
	}
	if rep.Status != http.StatusOK {
		return nil, 0, fmt.Errorf("snapshot pull returned status %d", rep.Status)
	}
	sk, err := core.Unmarshal(rep.Payload)
	if err != nil {
		return nil, 0, fmt.Errorf("decoding snapshot (%d bytes): %w", len(rep.Payload), err)
	}
	return sk, len(rep.Payload), nil
}

// Delta pulls GET /v1/snapshot?since=<cursor>. A delta-speaking server
// answers with an incremental payload (or a full baseline when it does not
// recognize the cursor) plus X-Ecm-Cursor/X-Ecm-Delta headers; a server
// predating the protocol ignores ?since and replies with a plain full
// snapshot and no cursor, which the puller handles as a permanent
// full-pull downgrade. The reported size is the protocol payload length
// (see Snapshot for why negotiated compression stays out of accounting).
func (s *HTTPSite) Delta(since core.Cursor) ([]byte, core.Cursor, bool, int, error) {
	rep, err := s.fetch("/v1/snapshot?since=" + url.QueryEscape(since.String()))
	if err == nil && rep.Status == http.StatusNotFound {
		rep, err = s.fetch("/sketch")
	}
	if err != nil {
		return nil, core.Cursor{}, false, 0, err
	}
	if rep.Status != http.StatusOK {
		return nil, core.Cursor{}, false, 0, fmt.Errorf("snapshot pull returned status %d", rep.Status)
	}
	cur, err := core.ParseCursor(rep.Cursor)
	if err != nil {
		// An unparsable cursor downgrades this reply to cursorless; a full
		// payload still applies, a delta one fails Apply and re-baselines.
		cur = core.Cursor{}
	}
	full := rep.Kind != wire.KindDelta || cur.IsZero()
	return rep.Payload, cur, full, len(rep.Payload), nil
}

func (s *HTTPSite) fetch(pathAndQuery string) (wire.SnapshotReply, error) {
	return wire.FetchSnapshotAuth(s.hc, s.base+pathAndQuery, s.token)
}

// Coordinator aggregates a dynamic set of sites' summaries into one sketch
// of the combined stream. It is safe for concurrent use: pull rounds
// (AggregateTree, AggregateFlat, Refresh) serialize on an internal lock,
// membership calls and root queries interleave freely with them, and the
// per-site receiver states carry their own locks.
type Coordinator struct {
	net *Network

	// pulled counts payload bytes actually fetched from sites (one
	// snapshot per site per pull), as opposed to the Network's
	// aggregation-tree model in which internal edges also ship and a
	// single-site tree ships nothing. Bandwidth monitoring wants this one.
	pulled atomic.Int64

	// delta switches pulls to the cursor-based incremental protocol;
	// resilient switches site failures from round-fatal to health-managed
	// (retained baselines keep serving, flapping sites back off); stagger
	// spreads each site's fetch inside a round by a deterministic
	// per-name offset in [0, stagger).
	delta     bool
	resilient bool
	stagger   time.Duration

	// pullWorkers bounds how many sites a round fetches and decodes
	// concurrently; 0 means the automatic default (see SetPullConcurrency).
	pullWorkers int

	// mu guards the membership list and the pull-round counter.
	mu      sync.RWMutex
	members []*member
	round   uint64

	// pullMu serializes pull rounds: a round holds every member's receiver
	// lock at once (so Refresh can patch the root from shared baselines
	// without cloning them), and two interleaved rounds would deadlock on
	// each other's members.
	pullMu sync.Mutex

	fullPulls, deltaPulls atomic.Uint64

	// changed accumulates which merged-view cells moved across pulls since
	// the last TakeChangedCells — the feed a standing-query registry over
	// the aggregated view re-checks incrementally. Cell indices are shared
	// across sites and the merged root (same (w, d, seed) hash layout), so
	// a union of per-site changed cells is exactly the set of root cells
	// whose estimate may have moved.
	changedMu    sync.Mutex
	changedCells []int
	changedAll   bool

	// rootMu guards the incrementally maintained merged view (Refresh,
	// Snapshot, DeltaSnapshot) and its provenance.
	rootMu    sync.Mutex
	root      *core.Sketch
	contrib   []*member
	lastStats RefreshStats
}

// maxChangedCells bounds the accumulated changed-cell set; past it the
// coordinator degrades to "everything changed", which costs one full
// re-check instead of unbounded memory.
const maxChangedCells = 8192

// siteDeltaState serializes one site's pull→apply→materialize sequence;
// concurrent AggregateTree calls contend here per site instead of corrupting
// the shared baseline.
type siteDeltaState struct {
	mu sync.Mutex
	ds core.DeltaState
}

// New builds a coordinator over the given sites with fresh network
// accounting.
func New(sites ...Site) *Coordinator { return NewWithNetwork(new(Network), sites...) }

// NewWithNetwork builds a coordinator charging an existing Network — how
// the simulated Cluster threads its historical accounting through the
// shared merge path.
func NewWithNetwork(net *Network, sites ...Site) *Coordinator {
	c := &Coordinator{net: net}
	for _, s := range sites {
		c.members = append(c.members, &member{site: s})
	}
	return c
}

// SetDeltaPulls toggles cursor-based incremental pulls (see the package
// comment). Off, every pull fetches full summaries — the pre-delta
// behavior. On, the coordinator retains per-site baselines, presents
// cursors, applies deltas, and transparently re-baselines with a full pull
// whenever a site invalidates its cursor. Configure before the first pull;
// toggling does not drop retained baselines (delta→full→delta keeps the
// cursors, which the next delta pull revalidates against the sites anyway).
func (c *Coordinator) SetDeltaPulls(on bool) { c.delta = on }

// SetResilient switches site-failure handling from round-fatal (any failed
// site fails the whole pull, the strict default) to health-managed: a
// failing site is served from its retained baseline when one exists (delta
// mode) or excluded from the round otherwise, and repeated failures back it
// off exponentially — skipping 1, 2, 4, … up to 32 rounds between probes —
// until a successful probe re-admits it. Configure before the first pull.
func (c *Coordinator) SetResilient(on bool) { c.resilient = on }

// SetPullStagger spreads each site's fetch inside a pull round by a
// deterministic offset in [0, window) derived from the site's name (see
// PullStagger) — so a fleet of coordinators sharing an interval does not
// stampede its sites at the tick. Zero (the default) fetches immediately.
// Configure before the first pull.
func (c *Coordinator) SetPullStagger(window time.Duration) { c.stagger = window }

// SetPullConcurrency bounds the worker pool a pull round fans site fetches
// and payload decodes across. The default (n <= 0) is 4×GOMAXPROCS with a
// floor of 8 — pulls are network-bound, so oversubscribing the cores keeps
// the wire busy while decodes overlap — where the pre-pool behavior spawned
// one goroutine per site: at a 1000-site coordinator that is a 1000-way
// stampede of sockets and decode allocations every interval. Configure
// before the first pull.
func (c *Coordinator) SetPullConcurrency(n int) { c.pullWorkers = n }

// pullPoolSize resolves the round's worker count for n members.
func (c *Coordinator) pullPoolSize(n int) int {
	w := c.pullWorkers
	if w <= 0 {
		w = 4 * runtime.GOMAXPROCS(0)
		if w < 8 {
			w = 8
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DeltaPulls and FullPulls report how many per-site pulls were answered
// incrementally vs with a full baseline since construction (delta mode
// only). A healthy steady state shows full pulls only at bootstrap and
// after site restarts.
func (c *Coordinator) DeltaPulls() uint64 { return c.deltaPulls.Load() }
func (c *Coordinator) FullPulls() uint64  { return c.fullPulls.Load() }

// Sites exposes a snapshot of the coordinator's current site set, in
// membership order.
func (c *Coordinator) Sites() []Site {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Site, len(c.members))
	for i, m := range c.members {
		out[i] = m.site
	}
	return out
}

// Network exposes the communication accounting of the aggregation-tree
// model: one message per tree edge, identical across transports.
func (c *Coordinator) Network() *Network { return c.net }

// PulledBytes reports the total snapshot payload volume fetched from sites
// across all pulls — the actual transfer bill of a networked deployment
// (for in-process sites, the exact volume shipping would have cost).
func (c *Coordinator) PulledBytes() int64 { return c.pulled.Load() }

// noteChanged records moved cells from one site pull. all marks the whole
// summary changed (full baselines, non-delta pulls, wave engines).
func (c *Coordinator) noteChanged(cells []int, all bool) {
	c.changedMu.Lock()
	defer c.changedMu.Unlock()
	if c.changedAll {
		return
	}
	if all || len(c.changedCells)+len(cells) > maxChangedCells {
		c.changedCells, c.changedAll = nil, true
		return
	}
	c.changedCells = append(c.changedCells, cells...)
}

// TakeChangedCells returns the union of cell indices replaced across all
// sites since the previous call, clearing the accumulator. all == true means
// "treat everything as changed" — reported after full baselines, non-delta
// pulls, or when the set outgrew its bound. The slice may contain duplicates
// and is owned by the caller. Serving coordinators hand the result to
// StandingRegistry.RefreshTarget after each refresh.
func (c *Coordinator) TakeChangedCells() (cells []int, all bool) {
	c.changedMu.Lock()
	defer c.changedMu.Unlock()
	cells, all = c.changedCells, c.changedAll
	c.changedCells, c.changedAll = nil, false
	return cells, all
}

// pullOutcome is one member's contribution to a pull round.
type pullOutcome struct {
	part  *core.Sketch // nil when the member is excluded this round
	owned bool         // part is an independent clone, valid past release
	size  int          // payload bytes fetched this round
	stale bool         // served from the retained baseline without contact
	cells []int        // merged-view cells this pull replaced
	all   bool         // the whole summary may have moved
	err   error        // round-fatal in strict mode; recorded when resilient
}

// roundResult is one pull round's members, outcomes, and the release that
// unlocks every member's receiver state (and the round lock). Parts that
// are not owned alias the receiver baselines and must not outlive release.
type roundResult struct {
	round   uint64
	members []*member
	outs    []pullOutcome
	release func()
}

// beginRound snapshots the membership and advances the round counter.
func (c *Coordinator) beginRound() ([]*member, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.round++
	return slices.Clone(c.members), c.round
}

// pullRound fetches every member concurrently (staggered when configured)
// and returns the outcomes with every member's receiver lock still held, so
// callers can merge straight from the shared baselines. Nothing is charged
// to the Network here — the aggregation shapes charge their own edges — but
// fetched bytes are counted toward PulledBytes regardless of what the
// caller does next: they crossed the transport.
func (c *Coordinator) pullRound() roundResult {
	c.pullMu.Lock()
	members, round := c.beginRound()
	outs := make([]pullOutcome, len(members))
	// Bounded worker pool: workers claim members off a shared counter, so a
	// thousand-site round runs pullPoolSize fetch+decode lanes instead of a
	// thousand goroutines. Stagger sleeps serialize within a lane, which
	// still spreads the fleet's fetches inside the round — the stampede the
	// stagger exists to break is across coordinators, not within one.
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := c.pullPoolSize(len(members)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(members) {
					return
				}
				m := members[i]
				if c.stagger > 0 {
					time.Sleep(PullStagger(m.site.Name(), c.stagger))
				}
				m.st.mu.Lock()
				outs[i] = c.pullMemberLocked(m, round)
			}
		}()
	}
	wg.Wait()
	for i := range outs {
		c.pulled.Add(int64(outs[i].size))
	}
	release := func() {
		for _, m := range members {
			m.st.mu.Unlock()
		}
		c.pullMu.Unlock()
	}
	return roundResult{round: round, members: members, outs: outs, release: release}
}

// pullMemberLocked pulls one member (receiver lock held by the caller). In
// resilient mode a backed-off member is not contacted at all, and a failed
// contact degrades to the retained baseline (or exclusion) instead of an
// error; strict mode surfaces the error for the round to fail on.
func (c *Coordinator) pullMemberLocked(m *member, round uint64) pullOutcome {
	if c.resilient && m.backedOff(round) {
		return c.staleOutcome(m)
	}
	var o pullOutcome
	if c.delta {
		o = c.pullDeltaLocked(m)
	} else {
		part, size, err := m.site.Snapshot()
		// A full pull carries no cell-granular change information:
		// everything may have moved.
		o = pullOutcome{part: part, owned: true, size: size, all: true, err: err}
	}
	if o.err == nil {
		m.noteSuccess()
		c.noteChanged(o.cells, o.all)
		return o
	}
	m.noteFailure(round, o.err)
	if !c.resilient {
		return o
	}
	o = c.staleOutcome(m)
	return o
}

// staleOutcome serves a member from its retained baseline — the previous
// view, unchanged, at zero transfer — or excludes it when there is none.
func (c *Coordinator) staleOutcome(m *member) pullOutcome {
	if c.delta && m.st.ds.HasBaseline() {
		if sk, err := m.st.ds.MaterializeShared(); err == nil {
			return pullOutcome{part: sk, stale: true}
		}
	}
	return pullOutcome{}
}

// pullDeltaLocked performs one incremental pull of a member: present the
// held cursor, apply what comes back, and materialize the site's summary
// from the retained baseline. When the application fails — the site
// restarted, the cursor went stale, the payload arrived torn — the receiver
// state has already dropped its baseline, and the coordinator transparently
// re-pulls a full baseline in the same round; both transfers are charged.
// The merged result is byte-identical to what a full pull would have
// fetched.
func (c *Coordinator) pullDeltaLocked(m *member) pullOutcome {
	ds := &m.st.ds
	payload, cur, full, size, err := m.site.Delta(ds.Cursor())
	if err != nil {
		return pullOutcome{err: err}
	}
	total := size
	if applyErr := ds.Apply(payload, cur, full); applyErr != nil {
		payload, cur, full, size, err = m.site.Delta(core.Cursor{})
		total += size
		if err != nil {
			return pullOutcome{err: err}
		}
		if !full {
			return pullOutcome{err: fmt.Errorf("incremental payload for a zero cursor (after %v)", applyErr)}
		}
		if err := ds.Apply(payload, cur, full); err != nil {
			return pullOutcome{err: fmt.Errorf("re-baseline failed: %w (after %v)", err, applyErr)}
		}
	}
	if full {
		c.fullPulls.Add(1)
	} else {
		c.deltaPulls.Add(1)
	}
	cells, all := ds.TakeChangedCells()
	sk, err := ds.MaterializeShared()
	if err != nil {
		return pullOutcome{err: err}
	}
	return pullOutcome{part: sk, size: total, cells: cells, all: all}
}

// foldOutcomes turns a round's outcomes into mergeable parts plus their
// leaf transfer sizes: strict mode surfaces the first site error; resilient
// mode drops excluded members. clone makes shared parts independent of the
// receiver states, for results that must outlive the round's release.
func (c *Coordinator) foldOutcomes(r roundResult, clone bool) ([]*core.Sketch, []int, error) {
	if len(r.members) == 0 {
		return nil, nil, errors.New("coord: no sites to aggregate")
	}
	for i, o := range r.outs {
		if o.err != nil {
			return nil, nil, fmt.Errorf("coord: site %s: %w", r.members[i].site.Name(), o.err)
		}
	}
	parts := make([]*core.Sketch, 0, len(r.outs))
	sizes := make([]int, 0, len(r.outs))
	names := make([]string, 0, len(r.outs))
	for i, o := range r.outs {
		if o.part == nil {
			continue
		}
		p := o.part
		if clone && !o.owned {
			var err error
			if p, err = p.Snapshot(); err != nil {
				return nil, nil, fmt.Errorf("coord: site %s: cloning retained baseline: %w",
					r.members[i].site.Name(), err)
			}
		}
		parts = append(parts, p)
		sizes = append(sizes, o.size)
		names = append(names, r.members[i].site.Name())
	}
	if len(parts) == 0 {
		return nil, nil, errors.New("coord: no sites available (every site excluded by health backoff)")
	}
	for i := 1; i < len(parts); i++ {
		if !parts[0].Compatible(parts[i]) {
			return nil, nil, fmt.Errorf("coord: site %s: sketch parameters incompatible with site %s",
				names[i], names[0])
		}
	}
	return parts, sizes, nil
}

// AggregateTree pulls every site's summary and merges bottom-up over a
// balanced binary tree of height ⌈log₂ n⌉, as in the paper's distributed
// experiments: all sites are leaves; each aggregation edge ships the
// child's summary (charged to the Network at the size the transport
// reported — the exact encoding size for in-process sites, the transferred
// payload for networked ones), and each internal node merges its children
// with the order-preserving ⊕. An odd node out is promoted to the next
// level, its summary still traveling one hop upward. The root sketch
// summarizing the union stream is returned with the tree height.
func (c *Coordinator) AggregateTree() (*core.Sketch, int, error) {
	r := c.pullRound()
	defer r.release()
	// Parts are cloned out of the shared receiver baselines because a
	// single-leaf tree returns the leaf itself as the root.
	level, lsz, err := c.foldOutcomes(r, true)
	if err != nil {
		return nil, 0, err
	}
	height := 0
	// Internal-node sizes are computed lazily (sentinel -1) at the moment
	// the node is actually charged for an upward hop: the root never ships
	// anywhere, so its encoding size — a full throwaway Marshal on wave
	// engines — is never computed.
	charge := func(lsz []int, level []*core.Sketch, i int) int {
		if lsz[i] < 0 {
			lsz[i] = level[i].WireSize()
		}
		c.net.Charge(lsz[i])
		return lsz[i]
	}
	for len(level) > 1 {
		next := make([]*core.Sketch, 0, (len(level)+1)/2)
		nsz := make([]int, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				sz := charge(lsz, level, i)
				next = append(next, level[i])
				nsz = append(nsz, sz)
				continue
			}
			charge(lsz, level, i)
			charge(lsz, level, i+1)
			m, err := core.Merge(level[i], level[i+1])
			if err != nil {
				return nil, 0, fmt.Errorf("coord: aggregation at height %d: %w", height, err)
			}
			next = append(next, m)
			nsz = append(nsz, -1)
		}
		level, lsz = next, nsz
		height++
	}
	return level[0], height, nil
}
