package coord_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecmsketch/internal/coord"
	"ecmsketch/internal/core"
)

func testParams(seed uint64) core.Params {
	return core.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: seed}
}

// feedSketch builds a sketch over a deterministic little stream.
func feedSketch(t *testing.T, p core.Params, keys, events int, salt uint64) *core.Sketch {
	t.Helper()
	s, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < events; i++ {
		s.Add(uint64(i)%uint64(keys)+salt, core.Tick(i/4+1))
	}
	s.Advance(core.Tick(events/4 + 1))
	return s
}

// sketchSite serves enc as a site snapshot on both the /v1/snapshot and
// legacy /sketch routes.
func sketchSite(t *testing.T, enc []byte) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/snapshot" && r.URL.Path != "/sketch" {
			http.NotFound(w, r)
			return
		}
		w.Write(enc)
	}))
}

// TestAggregateTreeAccounting pins the tree accounting the simulation has
// always used, now charged through the transport boundary: 4 leaves → 4
// level-0 transfers + 2 level-1 transfers = 6 messages, bytes equal to the
// exact encoding sizes of the shipped summaries.
func TestAggregateTreeAccounting(t *testing.T) {
	p := testParams(5)
	sites := make([]coord.Site, 4)
	wantLeafBytes := int64(0)
	parts := make([]*core.Sketch, 4)
	for i := range sites {
		parts[i] = feedSketch(t, p, 64, 4000, uint64(i)*1000)
		sites[i] = coord.NewLocalSite(fmt.Sprintf("site-%d", i), parts[i])
		wantLeafBytes += int64(len(parts[i].Marshal()))
	}
	co := coord.New(sites...)
	root, height, err := co.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if height != 2 {
		t.Errorf("height = %d, want 2", height)
	}
	if got := co.Network().Messages(); got != 6 {
		t.Errorf("messages = %d, want 6", got)
	}
	m01, err := core.Merge(parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	m23, err := core.Merge(parts[2], parts[3])
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := wantLeafBytes + int64(len(m01.Marshal())) + int64(len(m23.Marshal()))
	if got := co.Network().Bytes(); got != wantBytes {
		t.Errorf("bytes = %d, want %d (leaf encodings + internal-node encodings)", got, wantBytes)
	}
	if got := co.PulledBytes(); got != wantLeafBytes {
		t.Errorf("pulled bytes = %d, want %d (leaf payloads only)", got, wantLeafBytes)
	}
	var wantCount uint64
	for _, s := range parts {
		wantCount += s.Count()
	}
	if root.Count() != wantCount {
		t.Errorf("root count = %d, want %d", root.Count(), wantCount)
	}
}

// errSite is an in-process site whose transport fails, the local analog of
// an unreachable or torn networked site.
type errSite struct {
	name string
	err  error
}

func (s errSite) Name() string                         { return s.name }
func (s errSite) Snapshot() (*core.Sketch, int, error) { return nil, 0, s.err }
func (s errSite) Delta(core.Cursor) ([]byte, core.Cursor, bool, int, error) {
	return nil, core.Cursor{}, false, 0, s.err
}

// TestCoordinatorFailureModes drives the coordinator through every
// transport failure class — site unreachable, HTTP error status, torn or
// truncated snapshot body, undecodable payload, mismatched sketch
// parameters — over both transports, asserting the failing site is named.
func TestCoordinatorFailureModes(t *testing.T) {
	p := testParams(5)
	good := feedSketch(t, p, 32, 1000, 0)
	goodEnc := good.Marshal()
	badSeed := feedSketch(t, testParams(6), 32, 1000, 0)

	cases := []struct {
		name string
		// sites builds the site list; servers it starts are cleaned up by
		// the test server's Close registered on t.
		sites   func(t *testing.T) []coord.Site
		wantSub string
	}{
		{
			name: "http site unreachable",
			sites: func(t *testing.T) []coord.Site {
				srv := sketchSite(t, goodEnc)
				dead := httptest.NewServer(http.NotFoundHandler())
				dead.Close() // connection refused from now on
				t.Cleanup(srv.Close)
				return []coord.Site{
					coord.NewHTTPSite(srv.URL, nil),
					coord.NewHTTPSite(dead.URL, nil),
				}
			},
			wantSub: "connection refused",
		},
		{
			name: "http site returns 500",
			sites: func(t *testing.T) []coord.Site {
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					http.Error(w, "boom", http.StatusInternalServerError)
				}))
				t.Cleanup(srv.Close)
				return []coord.Site{coord.NewHTTPSite(srv.URL, nil)}
			},
			wantSub: "status 500",
		},
		{
			name: "http torn body (content-length longer than payload)",
			sites: func(t *testing.T) []coord.Site {
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set("Content-Length", fmt.Sprint(len(goodEnc)))
					w.Write(goodEnc[:len(goodEnc)/2])
					// Hijack-free tear: the handler returns early, so the
					// client sees an unexpected EOF mid-body.
				}))
				t.Cleanup(srv.Close)
				return []coord.Site{coord.NewHTTPSite(srv.URL, nil)}
			},
			wantSub: "unexpected EOF",
		},
		{
			name: "http truncated snapshot encoding",
			sites: func(t *testing.T) []coord.Site {
				srv := sketchSite(t, goodEnc[:len(goodEnc)/3])
				t.Cleanup(srv.Close)
				return []coord.Site{coord.NewHTTPSite(srv.URL, nil)}
			},
			wantSub: "decoding snapshot",
		},
		{
			name: "http garbage payload",
			sites: func(t *testing.T) []coord.Site {
				srv := sketchSite(t, []byte("not a sketch at all"))
				t.Cleanup(srv.Close)
				return []coord.Site{coord.NewHTTPSite(srv.URL, nil)}
			},
			wantSub: "decoding snapshot",
		},
		{
			name: "http mismatched params",
			sites: func(t *testing.T) []coord.Site {
				a := sketchSite(t, goodEnc)
				b := sketchSite(t, badSeed.Marshal())
				t.Cleanup(a.Close)
				t.Cleanup(b.Close)
				return []coord.Site{coord.NewHTTPSite(a.URL, nil), coord.NewHTTPSite(b.URL, nil)}
			},
			wantSub: "incompatible",
		},
		{
			name: "local transport failure",
			sites: func(t *testing.T) []coord.Site {
				return []coord.Site{
					coord.NewLocalSite("site-ok", good),
					errSite{name: "site-broken", err: fmt.Errorf("snapshot source gone")},
				}
			},
			wantSub: "site site-broken: snapshot source gone",
		},
		{
			name: "local mismatched params",
			sites: func(t *testing.T) []coord.Site {
				return []coord.Site{
					coord.NewLocalSite("site-a", good),
					coord.NewLocalSite("site-b", badSeed),
				}
			},
			wantSub: "site site-b: sketch parameters incompatible with site site-a",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			co := coord.New(tc.sites(t)...)
			_, _, err := co.AggregateTree()
			if err == nil {
				t.Fatal("AggregateTree succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestNoSites pins the empty-coordinator error.
func TestNoSites(t *testing.T) {
	if _, _, err := coord.New().AggregateTree(); err == nil {
		t.Fatal("aggregating zero sites succeeded")
	}
}

// TestHTTPSiteLegacyFallback pins the /sketch fallback: a site serving only
// the legacy route still aggregates.
func TestHTTPSiteLegacyFallback(t *testing.T) {
	p := testParams(5)
	sk := feedSketch(t, p, 32, 1000, 0)
	enc := sk.Marshal()
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sketch" {
			http.NotFound(w, r)
			return
		}
		w.Write(enc)
	}))
	defer legacy.Close()
	co := coord.New(coord.NewHTTPSite(legacy.URL, nil))
	root, _, err := co.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if root.Count() != sk.Count() {
		t.Errorf("fallback root count = %d, want %d", root.Count(), sk.Count())
	}
}
