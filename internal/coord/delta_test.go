package coord_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ecmsketch"
	"ecmsketch/ecmserver"
	"ecmsketch/internal/coord"
	"ecmsketch/internal/core"
)

// deltaTestEngines builds n sharded engines with strict view freshness and
// distinct preloaded streams, advanced to a common clock.
func deltaTestEngines(t *testing.T, n int) []*ecmsketch.Sharded {
	t.Helper()
	engines := make([]*ecmsketch.Sharded, n)
	for i := range engines {
		eng, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
			Params: ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 50000, Seed: 99},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		var evs []ecmsketch.Event
		for e := 0; e < 2000; e++ {
			evs = append(evs, ecmsketch.Event{Key: uint64(e%83) + uint64(i)*500, Tick: uint64(e/4 + 1)})
		}
		eng.AddBatch(evs)
		eng.Advance(1000)
		engines[i] = eng
	}
	return engines
}

// mutateSlow moves a small key set on every engine — the slow-moving-stream
// regime deltas exist for.
func mutateSlow(engines []*ecmsketch.Sharded, round int) {
	tick := uint64(1000 + round*100)
	for i, eng := range engines {
		var evs []ecmsketch.Event
		for k := 0; k < 4; k++ {
			evs = append(evs, ecmsketch.Event{Key: uint64(round*13 + k + i*500), Tick: tick})
		}
		eng.AddBatch(evs)
		eng.Advance(tick + 50)
	}
}

// TestDeltaCoordinatorBitIdentical is the tentpole equivalence: across
// mutation intervals, a coordinator that baselines once and then only ever
// applies deltas produces merged summaries byte-identical to a coordinator
// doing full pulls at the same versions — over the in-process transport,
// over HTTP, and across the two (all four roots equal every interval) —
// while pulling far fewer bytes.
func TestDeltaCoordinatorBitIdentical(t *testing.T) {
	engines := deltaTestEngines(t, 3)
	localFullSites := make([]coord.Site, len(engines))
	localDeltaSites := make([]coord.Site, len(engines))
	httpFullSites := make([]coord.Site, len(engines))
	httpDeltaSites := make([]coord.Site, len(engines))
	for i, eng := range engines {
		// Serve the same engine the local sites wrap, so all transports
		// observe one state.
		ts := httptest.NewServer(serveEngineOver(eng))
		t.Cleanup(ts.Close)
		localFullSites[i] = coord.NewLocalSite(fmt.Sprintf("site-%d", i), eng)
		localDeltaSites[i] = coord.NewLocalSite(fmt.Sprintf("site-%d", i), eng)
		httpFullSites[i] = coord.NewHTTPSite(ts.URL, nil)
		httpDeltaSites[i] = coord.NewHTTPSite(ts.URL, nil)
	}
	localFull := coord.New(localFullSites...)
	localDelta := coord.New(localDeltaSites...)
	localDelta.SetDeltaPulls(true)
	httpFull := coord.New(httpFullSites...)
	httpDelta := coord.New(httpDeltaSites...)
	httpDelta.SetDeltaPulls(true)

	var fullBytesPrev, deltaBytesPrev, steadyFull, steadyDelta int64
	for round := 0; round < 6; round++ {
		if round > 0 {
			mutateSlow(engines, round)
		}
		roots := make([][]byte, 4)
		for ci, co := range []*coord.Coordinator{localFull, localDelta, httpFull, httpDelta} {
			root, _, err := co.AggregateTree()
			if err != nil {
				t.Fatalf("round %d coordinator %d: %v", round, ci, err)
			}
			roots[ci] = root.Marshal()
		}
		for ci := 1; ci < 4; ci++ {
			if !bytes.Equal(roots[0], roots[ci]) {
				t.Fatalf("round %d: coordinator %d root differs from full-pull root", round, ci)
			}
		}
		if round >= 2 {
			// Steady state: count bytes per interval once both coordinators
			// are warm.
			steadyFull += localFull.PulledBytes() - fullBytesPrev
			steadyDelta += localDelta.PulledBytes() - deltaBytesPrev
		}
		fullBytesPrev = localFull.PulledBytes()
		deltaBytesPrev = localDelta.PulledBytes()
	}
	if got := localDelta.DeltaPulls(); got < 15 {
		t.Fatalf("local delta coordinator answered %d delta pulls, want ≥15", got)
	}
	if got := httpDelta.DeltaPulls(); got < 15 {
		t.Fatalf("http delta coordinator answered %d delta pulls, want ≥15", got)
	}
	if steadyDelta*5 > steadyFull {
		t.Fatalf("steady-state delta bytes %d not ≥5× below full %d", steadyDelta, steadyFull)
	}
}

// serveEngineOver builds an ecmserver-compatible snapshot surface directly
// over an existing engine, so HTTP sites observe exactly the engine the
// in-process sites wrap. Only the routes the coordinator transport speaks
// are needed.
func serveEngineOver(eng *ecmsketch.Sharded) http.Handler {
	srv, err := ecmserver.NewOver(ecmserver.Config{Epsilon: 0.1, Delta: 0.1, WindowLength: 50000, Seed: 99, Shards: 4}, eng)
	if err != nil {
		panic(err)
	}
	return srv
}

// restartableSrc is an in-process snapshot source whose engine can be
// swapped, simulating a site restart (fresh epoch, same or different
// configuration).
type restartableSrc struct {
	mu  sync.Mutex
	eng *ecmsketch.Sharded
}

func (s *restartableSrc) get() *ecmsketch.Sharded {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}
func (s *restartableSrc) swap(e *ecmsketch.Sharded) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = e
}
func (s *restartableSrc) Snapshot() (*ecmsketch.Sketch, error) { return s.get().Snapshot() }
func (s *restartableSrc) DeltaSnapshot(c core.Cursor) ([]byte, core.Cursor, bool, error) {
	return s.get().DeltaSnapshot(c)
}

// tearingSrc truncates one delta payload, simulating a torn transfer that
// passes transport framing but fails protocol validation.
type tearingSrc struct {
	eng  *ecmsketch.Sharded
	arm  bool
	tore bool
}

func (s *tearingSrc) Snapshot() (*ecmsketch.Sketch, error) { return s.eng.Snapshot() }
func (s *tearingSrc) DeltaSnapshot(c core.Cursor) ([]byte, core.Cursor, bool, error) {
	payload, cur, full, err := s.eng.DeltaSnapshot(c)
	if err == nil && !full && s.arm && !s.tore {
		s.tore = true
		payload = payload[:len(payload)-4]
	}
	return payload, cur, full, err
}

// tearingMiddleware is the HTTP analog: it strips the gzip offer (so the
// body is identity-coded), then truncates one delta reply's payload while
// keeping the HTTP framing valid.
func tearingMiddleware(inner http.Handler, arm *bool) http.Handler {
	tore := false
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept-Encoding")
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if *arm && !tore && strings.Contains(r.URL.RawQuery, "since=") &&
			rec.Header().Get("X-Ecm-Delta") == "delta" {
			tore = true
			body = body[:len(body)-4]
		}
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(rec.Code)
		w.Write(body)
	})
}

// TestDeltaFailureModes: stale cursors, site restarts, torn delta bodies
// and parameter mismatches over both transports — asserting the full-pull
// fallback fires and the merged view stays byte-identical to a full-pull
// coordinator's.
func TestDeltaFailureModes(t *testing.T) {
	newEngine := func(seed uint64) *ecmsketch.Sharded {
		eng, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
			Params: ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 50000, Seed: seed},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 500; e++ {
			eng.Add(uint64(e%37), uint64(e/2+1))
		}
		eng.Advance(600)
		return eng
	}

	t.Run("stale-and-garbage-cursors-yield-full", func(t *testing.T) {
		eng := newEngine(7)
		srv := serveEngineOver(eng)
		ts := httptest.NewServer(srv)
		defer ts.Close()
		for _, site := range []coord.Site{
			coord.NewLocalSite("local", eng),
			coord.NewHTTPSite(ts.URL, nil),
		} {
			// A cursor from the future (versions the engine never issued).
			_, cur, full, _, err := site.Delta(core.Cursor{})
			if err != nil || !full {
				t.Fatalf("%s: bootstrap: full=%v err=%v", site.Name(), full, err)
			}
			future := cur.Clone()
			future.Vers[0] += 1 << 40
			_, _, full, _, err = site.Delta(future)
			if err != nil || !full {
				t.Fatalf("%s: future cursor: full=%v err=%v", site.Name(), full, err)
			}
			// A cursor from another engine instance entirely.
			alien := core.Cursor{Epoch: 12345, Vers: make([]uint64, len(cur.Vers))}
			_, _, full, _, err = site.Delta(alien)
			if err != nil || !full {
				t.Fatalf("%s: alien cursor: full=%v err=%v", site.Name(), full, err)
			}
		}
		// Garbage ?since= strings at the HTTP layer reply with full baselines.
		for _, since := range []string{"garbage!!!", "AAAA", ""} {
			resp, err := http.Get(ts.URL + "/v1/snapshot?since=" + since)
			if err != nil {
				t.Fatal(err)
			}
			kind := resp.Header.Get("X-Ecm-Delta")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || kind != "full" {
				t.Fatalf("since=%q: status %d kind %q, want 200 full", since, resp.StatusCode, kind)
			}
		}
	})

	t.Run("site-restart-mid-interval", func(t *testing.T) {
		for _, transport := range []string{"local", "http"} {
			src := &restartableSrc{eng: newEngine(7)}
			peer := newEngine(7)
			var site coord.Site
			if transport == "local" {
				site = coord.NewLocalSite("restartable", src)
			} else {
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					serveEngineOver(src.get()).ServeHTTP(w, r)
				}))
				defer ts.Close()
				site = coord.NewHTTPSite(ts.URL, nil)
			}
			co := coord.New(site, coord.NewLocalSite("peer", peer))
			co.SetDeltaPulls(true)
			if _, _, err := co.AggregateTree(); err != nil {
				t.Fatalf("%s: bootstrap pull: %v", transport, err)
			}
			if _, _, err := co.AggregateTree(); err != nil {
				t.Fatalf("%s: delta pull: %v", transport, err)
			}
			deltasBefore := co.DeltaPulls()
			fullsBefore := co.FullPulls()
			// Restart the site: same stream replayed into a fresh engine —
			// new epoch, so the held cursor must be answered with a full
			// baseline, transparently absorbed.
			src.swap(newEngine(7))
			root, _, err := co.AggregateTree()
			if err != nil {
				t.Fatalf("%s: post-restart pull: %v", transport, err)
			}
			if co.FullPulls() <= fullsBefore {
				t.Fatalf("%s: restart did not force a full pull", transport)
			}
			if co.DeltaPulls() != deltasBefore+1 { // the peer still deltas
				t.Fatalf("%s: peer stopped delta-pulling", transport)
			}
			// The merged view matches a full-pull coordinator over the same
			// engines.
			fullCo := coord.New(coord.NewLocalSite("a", src), coord.NewLocalSite("b", peer))
			want, _, err := fullCo.AggregateTree()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(root.Marshal(), want.Marshal()) {
				t.Fatalf("%s: post-restart merged view diverged", transport)
			}
		}
	})

	t.Run("torn-delta-falls-back-same-interval", func(t *testing.T) {
		for _, transport := range []string{"local", "http"} {
			var site coord.Site
			var arm func()
			eng := newEngine(7)
			if transport == "local" {
				src := &tearingSrc{eng: eng}
				arm = func() { src.arm = true }
				site = coord.NewLocalSite("tearing", src)
			} else {
				armed := false
				ts := httptest.NewServer(tearingMiddleware(serveEngineOver(eng), &armed))
				defer ts.Close()
				arm = func() { armed = true }
				site = coord.NewHTTPSite(ts.URL, nil)
			}
			co := coord.New(site)
			co.SetDeltaPulls(true)
			if _, _, err := co.AggregateTree(); err != nil {
				t.Fatalf("%s: bootstrap: %v", transport, err)
			}
			eng.Add(777, 700)
			arm()
			fullsBefore := co.FullPulls()
			root, _, err := co.AggregateTree()
			if err != nil {
				t.Fatalf("%s: torn pull did not recover: %v", transport, err)
			}
			if co.FullPulls() != fullsBefore+1 {
				t.Fatalf("%s: torn delta did not fall back to a full pull", transport)
			}
			want, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(root.Marshal(), want.Marshal()) {
				t.Fatalf("%s: post-tear merged view diverged", transport)
			}
		}
	})

	t.Run("param-mismatch-names-site", func(t *testing.T) {
		a := newEngine(7)
		b := newEngine(8) // different seed: incompatible
		ts := httptest.NewServer(serveEngineOver(b))
		defer ts.Close()
		for _, sites := range [][]coord.Site{
			{coord.NewLocalSite("site-a", a), coord.NewLocalSite("site-b", b)},
			{coord.NewLocalSite("site-a", a), coord.NewHTTPSite(ts.URL, nil)},
		} {
			co := coord.New(sites...)
			co.SetDeltaPulls(true)
			_, _, err := co.AggregateTree()
			if err == nil || !strings.Contains(err.Error(), "incompatible") {
				t.Fatalf("param mismatch not reported: %v", err)
			}
		}
	})
}
