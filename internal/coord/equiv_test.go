package coord_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/ecmserver"
	"ecmsketch/internal/coord"
)

// newSiteServers builds n ecmserver deployments sharing one sketch
// configuration and feeds each a deterministic, distinct event log,
// returning the running httptest servers. The engines are advanced to a
// common clock so site summaries are alignment-identical regardless of how
// their streams end.
func newSiteServers(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	servers := make([]*httptest.Server, n)
	const now = 5000
	for i := 0; i < n; i++ {
		srv, err := ecmserver.New(ecmserver.Config{
			Epsilon: 0.15, Delta: 0.1, WindowLength: 20000, Seed: 42,
			Shards: 2, // MergeTTL 0: strict freshness, deterministic views
		})
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]ecmsketch.Event, 0, 512)
		for e := 0; e < 4000; e++ {
			batch = append(batch, ecmsketch.Event{
				Key:  uint64(e%97) + uint64(i)*1000, // per-site key bias
				Tick: uint64(e/2 + 1),
				N:    uint64(i%3 + 1),
			})
			if len(batch) == cap(batch) {
				srv.Engine().AddBatch(batch)
				batch = batch[:0]
			}
		}
		srv.Engine().AddBatch(batch)
		srv.Engine().Advance(now)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		servers[i] = ts
	}
	return servers
}

// TestCrossTransportBitIdentical is the transport-abstraction contract: the
// same site engines aggregated through the in-process transport (arena-
// clone snapshots) and through HTTP (GET /v1/snapshot pulls of the same
// engines' frozen views) produce byte-identical merged summaries and
// identical network accounting. Three sites exercise the odd-leaf
// promotion of the aggregation tree.
func TestCrossTransportBitIdentical(t *testing.T) {
	servers := newSiteServers(t, 3)

	local := make([]coord.Site, len(servers))
	networked := make([]coord.Site, len(servers))
	for i, ts := range servers {
		// The same engine behind both transports: what reaches the merge
		// path is an arena clone in one case, shipped-and-decoded view
		// bytes in the other.
		local[i] = ecmsketch.NewLocalSite(fmt.Sprintf("site-%d", i), serverEngine(t, ts))
		networked[i] = coord.NewHTTPSite(ts.URL, nil)
	}

	lc := coord.New(local...)
	lroot, lheight, err := lc.AggregateTree()
	if err != nil {
		t.Fatalf("in-process AggregateTree: %v", err)
	}
	nc := coord.New(networked...)
	nroot, nheight, err := nc.AggregateTree()
	if err != nil {
		t.Fatalf("networked AggregateTree: %v", err)
	}

	if lheight != nheight {
		t.Errorf("tree heights differ: local %d, networked %d", lheight, nheight)
	}
	lenc, nenc := lroot.Marshal(), nroot.Marshal()
	if !bytes.Equal(lenc, nenc) {
		t.Fatalf("merged summaries differ across transports: %d vs %d bytes", len(lenc), len(nenc))
	}
	if lb, nb := lc.Network().Bytes(), nc.Network().Bytes(); lb != nb {
		t.Errorf("network bytes differ: local %d, networked %d", lb, nb)
	}
	if lm, nm := lc.Network().Messages(), nc.Network().Messages(); lm != nm {
		t.Errorf("network messages differ: local %d, networked %d", lm, nm)
	}
	if lroot.Count() == 0 {
		t.Error("merged summary is empty; equivalence is vacuous")
	}
}

// serverEngine recovers the engine behind a site's httptest server. The
// servers in this file are built locally, so the underlying *ecmserver.
// Server is reachable through the handler.
var serverEngines = map[*httptest.Server]*ecmsketch.Sharded{}
var serverEnginesMu sync.Mutex

func serverEngine(t *testing.T, ts *httptest.Server) *ecmsketch.Sharded {
	t.Helper()
	serverEnginesMu.Lock()
	defer serverEnginesMu.Unlock()
	if eng, ok := serverEngines[ts]; ok {
		return eng
	}
	srv, ok := ts.Config.Handler.(*ecmserver.Server)
	if !ok {
		t.Fatalf("test server handler is %T, want *ecmserver.Server", ts.Config.Handler)
	}
	serverEngines[ts] = srv.Engine()
	return srv.Engine()
}

// TestNetworkedCoordinatorPullLoop is the race-enabled loop test: two
// ecmserver sites keep ingesting from writer goroutines while a coordinator
// pulls and merges them over HTTP in a tight loop. Run under -race (as CI
// does for the whole suite) this pins that snapshot serving, view rebuilds
// and coordinator merging share no unsynchronized state; the assertions pin
// that every pull sees a non-regressing stream.
//
// The sites here are built separately from newSiteServers, with a short
// window and fast-advancing writer ticks, so the live window slides during
// the loop and per-pull merge cost plateaus instead of growing with the
// accumulated stream.
func TestNetworkedCoordinatorPullLoop(t *testing.T) {
	servers := make([]*httptest.Server, 2)
	for i := range servers {
		srv, err := ecmserver.New(ecmserver.Config{
			Epsilon: 0.15, Delta: 0.1, WindowLength: 2000, Seed: 42, Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		servers[i] = ts
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, ts := range servers {
		eng := serverEngine(t, ts)
		wg.Add(1)
		go func(i int, eng *ecmsketch.Sharded) {
			defer wg.Done()
			tick := uint64(0)
			batch := make([]ecmsketch.Event, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tick += 8 // stride past the window length so old mass expires
				for j := range batch {
					batch[j] = ecmsketch.Event{Key: uint64(j + i*64), Tick: tick}
				}
				eng.AddBatch(batch)
				// Throttle: contention with the sites' strict-freshness view
				// rebuilds is the point, saturating one core is not.
				time.Sleep(100 * time.Microsecond)
			}
		}(i, eng)
	}

	co := coord.New(
		coord.NewHTTPSite(servers[0].URL, nil),
		coord.NewHTTPSite(servers[1].URL, nil),
	)
	pulls := 8
	if testing.Short() {
		pulls = 3
	}
	var lastCount uint64
	var lastNow uint64
	deadline := time.Now().Add(30 * time.Second)
	for p := 0; p < pulls && time.Now().Before(deadline); p++ {
		root, height, err := co.AggregateTree()
		if err != nil {
			t.Fatalf("pull %d: %v", p, err)
		}
		if height != 1 {
			t.Fatalf("pull %d: height = %d, want 1", p, height)
		}
		if root.Count() < lastCount {
			t.Fatalf("pull %d: merged count regressed %d → %d", p, lastCount, root.Count())
		}
		if root.Now() < lastNow {
			t.Fatalf("pull %d: merged clock regressed %d → %d", p, lastNow, root.Now())
		}
		lastCount, lastNow = root.Count(), root.Now()
	}
	close(stop)
	wg.Wait()
	if lastCount == 0 {
		t.Error("no events observed across the pull loop")
	}
}
