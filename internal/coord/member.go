package coord

// Self-organizing membership: sites join and leave a running coordinator
// (AddSite / RemoveSite), and in resilient mode a health record per member
// drives exclusion and re-admission — a flapping site backs off
// exponentially instead of stalling every round, and one successful probe
// restores it. Membership changes take effect on the next pull round; the
// incremental root detects the contributor-set change and rebuilds itself
// in place (see Refresh).

import "sync"

// member is one site's coordinator-side state: the delta receiver plus the
// health record driving resilient-mode exclusion and re-admission.
type member struct {
	site Site
	st   siteDeltaState

	// Health, guarded by hmu: consecutive failures and the backoff horizon
	// (the round number up to which resilient pulls skip this member).
	hmu       sync.Mutex
	fails     int
	skipUntil uint64
	lastErr   string
}

// maxBackoffRounds caps the exponential failure backoff: a site that keeps
// flapping is probed at least once every 32 rounds rather than decaying out
// of rotation entirely.
const maxBackoffRounds = 32

func (m *member) backedOff(round uint64) bool {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	return round <= m.skipUntil
}

func (m *member) noteSuccess() {
	m.hmu.Lock()
	m.fails, m.skipUntil, m.lastErr = 0, 0, ""
	m.hmu.Unlock()
}

func (m *member) noteFailure(round uint64, err error) {
	m.hmu.Lock()
	m.fails++
	back := uint64(maxBackoffRounds)
	if m.fails <= 6 {
		back = uint64(1) << (m.fails - 1) // 1, 2, 4, 8, 16, 32
	}
	m.skipUntil = round + back
	m.lastErr = err.Error()
	m.hmu.Unlock()
}

// AddSite admits a site into the membership, effective on the next pull
// round. A member with the same name is replaced — a re-registration drops
// the old receiver baseline and health record, so the next pull
// re-bootstraps the site from a full baseline.
func (c *Coordinator) AddSite(s Site) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nm := &member{site: s}
	for i, m := range c.members {
		if m.site.Name() == s.Name() {
			c.members[i] = nm
			return
		}
	}
	c.members = append(c.members, nm)
}

// RemoveSite removes the member named name, reporting whether it existed.
// A round already in flight still counts the site; the next one does not,
// and the incremental root rebuilds without its contribution.
func (c *Coordinator) RemoveSite(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.members {
		if m.site.Name() == name {
			c.members = append(c.members[:i], c.members[i+1:]...)
			return true
		}
	}
	return false
}

// SiteStatus is one member's health as of the last pull round it took part
// in. BackoffRounds is how many rounds remain before the next probe; zero
// means the site is in rotation.
type SiteStatus struct {
	Name          string
	Healthy       bool
	Failures      int
	BackoffRounds uint64
	LastError     string
	HasBaseline   bool
}

// SiteStatuses reports every member's health, in membership order. It may
// block briefly behind an in-flight pull round (the baseline probe shares
// the receiver locks).
func (c *Coordinator) SiteStatuses() []SiteStatus {
	c.mu.RLock()
	members := make([]*member, len(c.members))
	copy(members, c.members)
	round := c.round
	c.mu.RUnlock()
	out := make([]SiteStatus, len(members))
	for i, m := range members {
		m.hmu.Lock()
		st := SiteStatus{
			Name:      m.site.Name(),
			Healthy:   m.fails == 0,
			Failures:  m.fails,
			LastError: m.lastErr,
		}
		if m.skipUntil > round {
			st.BackoffRounds = m.skipUntil - round
		}
		m.hmu.Unlock()
		m.st.mu.Lock()
		st.HasBaseline = m.st.ds.HasBaseline()
		m.st.mu.Unlock()
		out[i] = st
	}
	return out
}
