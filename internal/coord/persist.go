package coord

// Durable coordinator state. ExportState/RestoreState round-trip the
// incrementally maintained merged root through the durable snapshot blob
// codec: the standard Marshal bytes plus the delta-serving sidecars (epoch
// and arrival-mutation version vector) the wire codec deliberately leaves
// out. A coordinator restarted over the blob resumes answering
// DeltaSnapshot from the same epoch and cell versions, so a stacked parent
// holding a pre-restart cursor keeps pulling deltas instead of
// re-baselining — the same contract a durable leaf engine honors.
//
// Only the root travels; per-site receiver baselines do not. The first
// Refresh after a restore therefore re-pulls the sites in full and
// re-derives every root cell in place (the restored contributor set is
// empty, which Refresh already treats as a membership change) — patching
// through ordinary arrival mutations, so the epoch survives and versions
// only advance. If the sites' parameters no longer match the restored
// root, that same Refresh rebuilds from scratch under a fresh epoch,
// exactly as it handles a live parameter change.

import (
	"fmt"

	"ecmsketch/internal/core"
	"ecmsketch/internal/durable"
)

// ExportState serializes the merged root with its delta-serving identity.
// Returns nil before the first successful Refresh (or restore) — there is
// no state worth persisting yet.
func (c *Coordinator) ExportState() []byte {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	if c.root == nil {
		return nil
	}
	ver, vers := c.root.VersionVector()
	snap := &durable.Snapshot{
		Epoch: c.root.Epoch(),
		Gen:   1,
		Now:   uint64(c.root.Now()),
		Parts: []durable.SnapshotPart{{Enc: c.root.Marshal(), Ver: ver, Vers: vers}},
	}
	return snap.Encode()
}

// RestoreState rebuilds the merged root from an ExportState blob. Any
// decode or validation failure leaves the coordinator untouched — it
// simply bootstraps from the sites as if nothing had been persisted.
func (c *Coordinator) RestoreState(blob []byte) error {
	snap, err := durable.DecodeSnapshot(blob)
	if err != nil {
		return fmt.Errorf("coord: durable root: %w", err)
	}
	if len(snap.Parts) != 1 {
		return fmt.Errorf("coord: durable root has %d parts, want 1", len(snap.Parts))
	}
	sk, err := core.Unmarshal(snap.Parts[0].Enc)
	if err != nil {
		return fmt.Errorf("coord: durable root: %w", err)
	}
	sk.SetEpoch(snap.Epoch)
	if err := sk.RestoreVersionVector(snap.Parts[0].Ver, snap.Parts[0].Vers); err != nil {
		return fmt.Errorf("coord: durable root: %w", err)
	}
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	c.root = sk
	c.contrib = nil
	return nil
}
