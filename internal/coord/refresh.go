package coord

// Incremental re-merge and delta re-serving: Refresh maintains one
// persistent merged root instead of rebuilding the aggregation from scratch
// every interval. Each round pulls the sites (delta pulls, normally),
// collects the union of merged-view cells the deltas replaced, and patches
// exactly those cells of the root with core.PatchMerged — whose output is
// pinned byte-identical to a from-scratch flat merge (AggregateFlat) over
// the same parts. Sites with zero changed cells contribute nothing but
// their retained baseline to the replay, and cost nothing beyond it.
//
// Because the root is a long-lived sketch patched through ordinary arrival
// mutations, its cell versions move exactly like a leaf engine's — so the
// coordinator can serve the cursor-based delta protocol upward from the
// root (Snapshot / DeltaSnapshot satisfy the same source contracts leaf
// engines do), and stacked coordinators pull deltas from coordinators the
// way coordinators pull deltas from sites.

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"ecmsketch/internal/core"
)

// RefreshStats describes one successful Refresh round.
type RefreshStats struct {
	// Round is the pull-round number the refresh ran as.
	Round uint64
	// Contributors is how many members' summaries entered the merge;
	// Stale of them were served from retained baselines without contact,
	// and Excluded members contributed nothing at all.
	Contributors, Stale, Excluded int
	// PulledBytes is the payload volume fetched this round.
	PulledBytes int64
	// ChangedCells is the size of the changed-cell union the root was
	// patched from (with duplicates across sites; meaningless when
	// RebuiltAll). RebuiltAll marks a full re-derivation of every root
	// cell: the first round, a contributor-set change, or a pull that lost
	// cell granularity.
	ChangedCells int
	RebuiltAll   bool
	// MergeNs is the wall time the root patch (or bootstrap merge) took
	// this round, and Workers the size of the pool the cell replay fanned
	// across (1 = sequential) — together the effective parallelism of the
	// merge step, surfaced through /v1/stats.
	MergeNs int64
	Workers int
}

// Refresh runs one incremental re-merge round: pull every member, then
// bring the persistent merged root up to date by re-deriving only the cells
// the pulls changed. On any error — a site failure in strict mode, every
// site excluded in resilient mode — the root is left as it was, still
// serving the previous view.
//
// The Network accounting charges the leaf transfers only (the flat merge
// has no internal edges); the tree-model equivalent is AggregateTree.
func (c *Coordinator) Refresh() error {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	r := c.pullRound()
	defer r.release()
	if len(r.members) == 0 {
		return errors.New("coord: no sites to aggregate")
	}
	for i, o := range r.outs {
		if o.err != nil {
			return fmt.Errorf("coord: site %s: %w", r.members[i].site.Name(), o.err)
		}
	}

	stats := RefreshStats{Round: r.round}
	var parts []*core.Sketch
	var contrib []*member
	var union []int
	anyAll := false
	for i, o := range r.outs {
		if o.part == nil {
			stats.Excluded++
			continue
		}
		parts = append(parts, o.part)
		contrib = append(contrib, r.members[i])
		if o.stale {
			stats.Stale++
			continue
		}
		stats.PulledBytes += int64(o.size)
		c.net.Charge(o.size)
		if o.all {
			anyAll = true
		} else {
			union = append(union, o.cells...)
		}
	}
	if len(parts) == 0 {
		return errors.New("coord: no sites available (every site excluded by health backoff)")
	}
	for i := 1; i < len(parts); i++ {
		if !parts[0].Compatible(parts[i]) {
			return fmt.Errorf("coord: site %s: sketch parameters incompatible with site %s",
				contrib[i].site.Name(), contrib[0].site.Name())
		}
	}

	same := slices.Equal(c.contrib, contrib)
	mergeStart := time.Now()
	switch {
	case c.root == nil:
		root, err := core.Merge(parts...)
		if err != nil {
			return fmt.Errorf("coord: %w", err)
		}
		c.root = root
		stats.RebuiltAll = true
	default:
		all := anyAll || !same
		cells := union
		if all {
			cells = nil
		}
		if err := core.PatchMerged(c.root, parts, cells, all, nil); err != nil {
			// Parameters changed under us, or the engine has no cell bank:
			// rebuild from scratch. The fresh epoch invalidates downstream
			// cursors, and those pullers re-baseline — exactly as they
			// would against a restarted leaf.
			root, mergeErr := core.Merge(parts...)
			if mergeErr != nil {
				return fmt.Errorf("coord: %w", mergeErr)
			}
			c.root = root
			c.noteChanged(nil, true)
			all = true
		}
		stats.RebuiltAll = all
		if !same {
			// The contributor set changed: every root cell may have moved,
			// and the standing-query feed must not under-report.
			c.noteChanged(nil, true)
		}
	}
	stats.MergeNs = time.Since(mergeStart).Nanoseconds()
	patched := len(union)
	if stats.RebuiltAll {
		patched = c.root.Depth() * c.root.Width()
	}
	stats.Workers = core.MergeWorkersFor(patched)
	stats.Contributors = len(parts)
	stats.ChangedCells = len(union)
	c.contrib = contrib
	c.lastStats = stats
	return nil
}

// LastRefresh reports the most recent successful Refresh round's stats.
func (c *Coordinator) LastRefresh() RefreshStats {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	return c.lastStats
}

// errNoView is returned by the serving surface before the first successful
// Refresh.
var errNoView = errors.New("coord: no merged view yet (Refresh has not succeeded)")

// Snapshot returns an independent clone of the incrementally maintained
// merged view. It satisfies the same SnapshotSource contract leaf engines
// do, so a coordinator nests under a parent coordinator via NewLocalSite —
// the in-process form of a coordinator hierarchy.
func (c *Coordinator) Snapshot() (*core.Sketch, error) {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	if c.root == nil {
		return nil, errNoView
	}
	return c.root.Snapshot()
}

// DeltaSnapshot serves the cursor-based incremental protocol from the
// merged root: a parent presenting the cursor from its previous pull
// receives only the root cells Refresh re-derived since — in steady state a
// small fraction of the merged view — and any unrecognized cursor receives
// a full baseline. Satisfies DeltaSnapshotSource, so stacked coordinators
// pull deltas through the exact receiver path they use against leaves.
func (c *Coordinator) DeltaSnapshot(since core.Cursor) ([]byte, core.Cursor, bool, error) {
	c.rootMu.Lock()
	defer c.rootMu.Unlock()
	if c.root == nil {
		return nil, core.Cursor{}, false, errNoView
	}
	return c.root.DeltaSnapshot(since)
}

// AggregateFlat pulls every site and merges the summaries with one flat
// n-way ⊕ — the aggregation shape Refresh maintains incrementally, returned
// from scratch. Its result is byte-identical to the root Refresh maintains
// over the same parts (the equivalence the incremental tests pin). Leaf
// transfers are charged to the Network; the flat shape has no internal
// edges, so the returned height is 1 (0 for a single site, as in the tree
// model).
func (c *Coordinator) AggregateFlat() (*core.Sketch, int, error) {
	r := c.pullRound()
	defer r.release()
	parts, sizes, err := c.foldOutcomes(r, false)
	if err != nil {
		return nil, 0, err
	}
	for i := range parts {
		if sizes[i] > 0 {
			c.net.Charge(sizes[i])
		}
	}
	// Merging under the round's locks: the shared parts stay pinned until
	// release, and Merge allocates its own output.
	root, err := core.Merge(parts...)
	if err != nil {
		return nil, 0, fmt.Errorf("coord: %w", err)
	}
	height := 1
	if len(parts) == 1 {
		height = 0
	}
	return root, height, nil
}
