package coord_test

// Tests for the incremental re-merge (Refresh), upward delta serving,
// self-organizing membership, and health-based exclusion of PR 8.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecmsketch"
	"ecmsketch/internal/coord"
	"ecmsketch/internal/core"
)

// flatOver builds a stateless full-pull coordinator over the same engines
// and returns its from-scratch flat merge — the reference the incremental
// root must stay byte-identical to.
func flatOver(t *testing.T, engines []*ecmsketch.Sharded) *core.Sketch {
	t.Helper()
	sites := make([]coord.Site, len(engines))
	for i, eng := range engines {
		sites[i] = coord.NewLocalSite(fmt.Sprintf("site-%d", i), eng)
	}
	root, _, err := coord.New(sites...).AggregateFlat()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRefreshBitIdenticalToFlatMerge is the tentpole equivalence at the
// coordinator level: across mutation intervals — including idle ones where
// most sites have zero changed cells — the incrementally patched root is
// byte-identical to a from-scratch flat merge over the same engines, while
// the steady-state rounds patch only a small cell subset instead of
// rebuilding everything.
func TestRefreshBitIdenticalToFlatMerge(t *testing.T) {
	engines := deltaTestEngines(t, 4)
	sites := make([]coord.Site, len(engines))
	for i, eng := range engines {
		sites[i] = coord.NewLocalSite(fmt.Sprintf("site-%d", i), eng)
	}
	co := coord.New(sites...)
	co.SetDeltaPulls(true)

	if _, err := co.Snapshot(); err == nil {
		t.Fatal("Snapshot before first Refresh should fail")
	}
	patchedRounds := 0
	for round := 0; round < 8; round++ {
		switch {
		case round == 0: // bootstrap
		case round == 5: // idle interval: clocks advance, no arrivals
			for _, eng := range engines {
				eng.Advance(uint64(1000 + round*100 + 50))
			}
		case round == 6: // single-site interval: only one engine moves
			engines[2].Add(424242, uint64(1000+round*100))
			engines[2].Advance(uint64(1000 + round*100 + 50))
		default:
			mutateSlow(engines, round)
		}
		if err := co.Refresh(); err != nil {
			t.Fatalf("round %d: Refresh: %v", round, err)
		}
		st := co.LastRefresh()
		if round == 0 && !st.RebuiltAll {
			t.Fatal("bootstrap round should rebuild all")
		}
		if round > 0 {
			if st.RebuiltAll {
				t.Fatalf("round %d: steady-state refresh rebuilt from scratch", round)
			}
			patchedRounds++
		}
		got, err := co.Snapshot()
		if err != nil {
			t.Fatalf("round %d: Snapshot: %v", round, err)
		}
		want := flatOver(t, engines)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("round %d: incremental root differs from from-scratch flat merge", round)
		}
		if st.Contributors != len(engines) || st.Stale != 0 || st.Excluded != 0 {
			t.Fatalf("round %d: stats %+v, want %d clean contributors", round, st, len(engines))
		}
	}
	if patchedRounds != 7 {
		t.Fatalf("patched %d rounds, want 7", patchedRounds)
	}
}

// TestStackedCoordinatorDeltaServing pins the upward half of the tentpole: a
// parent coordinator pulling a child coordinator receives cursor-based
// deltas from the child's patched root — in steady state a small fraction of
// the full view — and its merged result matches the child's exactly.
func TestStackedCoordinatorDeltaServing(t *testing.T) {
	engines := deltaTestEngines(t, 3)
	leafSites := make([]coord.Site, len(engines))
	for i, eng := range engines {
		leafSites[i] = coord.NewLocalSite(fmt.Sprintf("leaf-%d", i), eng)
	}
	child := coord.New(leafSites...)
	child.SetDeltaPulls(true)

	// The child satisfies SnapshotSource + DeltaSnapshotSource, so it nests
	// under a parent like any engine.
	parent := coord.New(coord.NewLocalSite("child", child))
	parent.SetDeltaPulls(true)

	var fullSize, steadyDelta int64
	for round := 0; round < 6; round++ {
		if round > 0 {
			mutateSlow(engines, round)
		}
		if err := child.Refresh(); err != nil {
			t.Fatalf("round %d: child refresh: %v", round, err)
		}
		before := parent.PulledBytes()
		if err := parent.Refresh(); err != nil {
			t.Fatalf("round %d: parent refresh: %v", round, err)
		}
		pulled := parent.PulledBytes() - before
		if round == 0 {
			fullSize = pulled
		} else if round >= 2 {
			steadyDelta += pulled
		}
		// The parent's incrementally patched root must equal its own
		// from-scratch flat merge over the same child — the same invariant
		// the leaf-level test pins, one level up.
		parentRoot, err := parent.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := coord.New(coord.NewLocalSite("child", child)).AggregateFlat()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(parentRoot.Marshal(), want.Marshal()) {
			t.Fatalf("round %d: parent root differs from from-scratch merge of child", round)
		}
	}
	if parent.DeltaPulls() < 5 {
		t.Fatalf("parent answered %d delta pulls, want ≥5", parent.DeltaPulls())
	}
	if avg := steadyDelta / 4; avg*5 > fullSize {
		t.Fatalf("steady-state parent delta bytes/round %d not ≥5× below full %d", avg, fullSize)
	}
}

// faultSite wraps a Site with switchable failure injection: complete outages
// and torn delta payloads.
type faultSite struct {
	inner coord.Site

	mu   sync.Mutex
	down bool
	tear bool
}

func (s *faultSite) setDown(v bool) { s.mu.Lock(); s.down = v; s.mu.Unlock() }
func (s *faultSite) setTear(v bool) { s.mu.Lock(); s.tear = v; s.mu.Unlock() }
func (s *faultSite) state() (down, tear bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down, s.tear
}

func (s *faultSite) Name() string { return s.inner.Name() }

func (s *faultSite) Snapshot() (*core.Sketch, int, error) {
	if down, _ := s.state(); down {
		return nil, 0, fmt.Errorf("site %s: connection refused", s.Name())
	}
	return s.inner.Snapshot()
}

func (s *faultSite) Delta(since core.Cursor) ([]byte, core.Cursor, bool, int, error) {
	down, tear := s.state()
	if down {
		return nil, core.Cursor{}, false, 0, fmt.Errorf("site %s: connection refused", s.Name())
	}
	payload, cur, full, size, err := s.inner.Delta(since)
	// Tear incremental bodies only — the coordinator's recovery path is a
	// full re-pull, which a real torn link would let through eventually.
	if err == nil && !full && tear && len(payload) > 4 {
		payload = payload[:len(payload)-4]
	}
	return payload, cur, full, size, err
}

// TestResilientFlappingSites is the failure-injection table: a site that
// goes dark for several intervals, one that keeps tearing its delta bodies,
// and one that flaps down-up-down. In every case the resilient coordinator
// keeps serving a view built from the healthy sites (plus the flaky site's
// retained baseline), and re-admits the site once it recovers.
func TestResilientFlappingSites(t *testing.T) {
	cases := []struct {
		name string
		// inject flips the fault for round r and reports whether the faulty
		// site is expected down that round.
		inject func(f *faultSite, round int) bool
		// stale: a down round serves the site's retained baseline rather
		// than excluding it.
		stale bool
	}{
		{
			name: "down-three-intervals",
			inject: func(f *faultSite, round int) bool {
				f.setDown(round >= 2 && round <= 4)
				return round >= 2 && round <= 4
			},
			stale: true,
		},
		{
			name: "torn-bodies-every-round",
			inject: func(f *faultSite, round int) bool {
				// Tearing is absorbed by the transparent same-round full
				// re-pull: never down, never stale.
				f.setTear(round >= 2)
				return false
			},
		},
		{
			name: "flapping",
			inject: func(f *faultSite, round int) bool {
				down := round == 2 || round == 4
				f.setDown(down)
				return down
			},
			stale: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engines := deltaTestEngines(t, 3)
			flaky := &faultSite{inner: coord.NewLocalSite("flaky", engines[0])}
			co := coord.New(
				flaky,
				coord.NewLocalSite("steady-1", engines[1]),
				coord.NewLocalSite("steady-2", engines[2]),
			)
			co.SetDeltaPulls(true)
			co.SetResilient(true)

			downRounds := 0
			for round := 0; round < 12; round++ {
				if round > 0 {
					mutateSlow(engines, round)
				}
				expectDown := tc.inject(flaky, round)
				if err := co.Refresh(); err != nil {
					t.Fatalf("round %d: resilient Refresh failed: %v", round, err)
				}
				st := co.LastRefresh()
				if expectDown {
					downRounds++
					if !tc.stale {
						t.Fatal("test table inconsistent")
					}
				}
				// The view must always be servable, and on rounds where every
				// member contributed fresh it must exactly match a flat merge
				// over the current engines. (A backoff window can keep a
				// recovered site stale for a few rounds past the fault — those
				// rounds are identified by the stats, not the fault schedule.)
				got, err := co.Snapshot()
				if err != nil {
					t.Fatalf("round %d: no servable view: %v", round, err)
				}
				if st.Stale == 0 && st.Excluded == 0 {
					want := flatOver(t, engines)
					if !bytes.Equal(got.Marshal(), want.Marshal()) {
						t.Fatalf("round %d: all-fresh view diverged from flat merge", round)
					}
				}
				if expectDown && st.Stale+st.Excluded == 0 {
					t.Fatalf("round %d: down site neither stale nor excluded: %+v", round, st)
				}
			}
			if downRounds > 0 {
				// After recovery the site must be re-admitted: probe rounds
				// already ran above (the loop extends past the last fault), so
				// health is clean again.
				for _, st := range co.SiteStatuses() {
					if st.Name == "flaky" && (!st.Healthy || st.BackoffRounds > 0) {
						t.Fatalf("recovered site not re-admitted: %+v", st)
					}
				}
			}
			// Final view: everyone healthy, byte-identical to from-scratch.
			got, _ := co.Snapshot()
			want := flatOver(t, engines)
			if !bytes.Equal(got.Marshal(), want.Marshal()) {
				t.Fatal("final view diverged after fault cycle")
			}
		})
	}
}

// TestResilientNoBaselineExclusion: a site that is down from the very first
// round has no retained baseline to serve — it is excluded, the remaining
// sites form the view, and it joins cleanly once it comes up.
func TestResilientNoBaselineExclusion(t *testing.T) {
	engines := deltaTestEngines(t, 2)
	dead := &faultSite{inner: coord.NewLocalSite("dead", engines[0])}
	dead.setDown(true)
	co := coord.New(dead, coord.NewLocalSite("alive", engines[1]))
	co.SetDeltaPulls(true)
	co.SetResilient(true)

	if err := co.Refresh(); err != nil {
		t.Fatalf("bootstrap with dead site: %v", err)
	}
	if st := co.LastRefresh(); st.Excluded != 1 || st.Contributors != 1 {
		t.Fatalf("stats %+v, want 1 contributor 1 excluded", st)
	}
	got, err := co.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := flatOver(t, engines[1:])
	if !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("excluded-site view should equal merge of the remaining site")
	}

	// Recovery: run rounds until the backoff horizon passes, then the site
	// contributes and the view covers both engines.
	dead.setDown(false)
	for round := 0; round < maxProbeRounds(t); round++ {
		if err := co.Refresh(); err != nil {
			t.Fatalf("recovery round %d: %v", round, err)
		}
		if st := co.LastRefresh(); st.Contributors == 2 {
			got, _ := co.Snapshot()
			want := flatOver(t, engines)
			if !bytes.Equal(got.Marshal(), want.Marshal()) {
				t.Fatal("post-recovery view diverged")
			}
			return
		}
	}
	t.Fatal("dead site never re-admitted after recovery")
}

// maxProbeRounds bounds re-admission loops: well past the backoff cap.
func maxProbeRounds(t *testing.T) int { t.Helper(); return 64 }

// TestAllSitesExcluded: when every member is excluded (down with no
// baselines), Refresh reports the condition and an existing view survives.
func TestAllSitesExcluded(t *testing.T) {
	engines := deltaTestEngines(t, 2)
	a := &faultSite{inner: coord.NewLocalSite("a", engines[0])}
	b := &faultSite{inner: coord.NewLocalSite("b", engines[1])}
	co := coord.New(a, b)
	co.SetDeltaPulls(true)
	co.SetResilient(true)
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	before, _ := co.Snapshot()

	// With retained baselines both sites go stale, not excluded: still serving.
	a.setDown(true)
	b.setDown(true)
	if err := co.Refresh(); err != nil {
		t.Fatalf("stale-baseline round: %v", err)
	}
	after, _ := co.Snapshot()
	if !bytes.Equal(before.Marshal(), after.Marshal()) {
		t.Fatal("all-stale round should leave the view exactly as it was")
	}

	// A fresh coordinator with no baselines at all: Refresh errors, no view.
	co2 := coord.New(a, b)
	co2.SetDeltaPulls(true)
	co2.SetResilient(true)
	if err := co2.Refresh(); err == nil {
		t.Fatal("want error when every site is excluded with no baseline")
	}
	if _, err := co2.Snapshot(); err == nil {
		t.Fatal("no view should exist after a fully failed bootstrap")
	}
}

// TestMembershipChangeRebuilds: adding and removing sites mid-flight changes
// the contributor set; the next Refresh rebuilds wholesale (RebuiltAll) and
// the view tracks the new membership byte-for-byte.
func TestMembershipChangeRebuilds(t *testing.T) {
	engines := deltaTestEngines(t, 3)
	co := coord.New(
		coord.NewLocalSite("site-0", engines[0]),
		coord.NewLocalSite("site-1", engines[1]),
	)
	co.SetDeltaPulls(true)
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	if st := co.LastRefresh(); st.RebuiltAll {
		t.Fatal("steady membership should patch, not rebuild")
	}

	co.AddSite(coord.NewLocalSite("site-2", engines[2]))
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	if st := co.LastRefresh(); !st.RebuiltAll || st.Contributors != 3 {
		t.Fatalf("post-add stats %+v, want RebuiltAll with 3 contributors", st)
	}
	got, _ := co.Snapshot()
	if want := flatOver(t, engines); !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("post-add view diverged")
	}

	if !co.RemoveSite("site-0") {
		t.Fatal("RemoveSite(site-0) = false")
	}
	if co.RemoveSite("site-0") {
		t.Fatal("second RemoveSite(site-0) = true")
	}
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	if st := co.LastRefresh(); !st.RebuiltAll || st.Contributors != 2 {
		t.Fatalf("post-remove stats %+v, want RebuiltAll with 2 contributors", st)
	}
	got, _ = co.Snapshot()
	if want := flatOver(t, engines[1:]); !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("post-remove view diverged")
	}

	// Replacing a member under the same name drops its baseline: the next
	// pull re-bootstraps it with a full transfer.
	fulls := co.FullPulls()
	co.AddSite(coord.NewLocalSite("site-1", engines[1]))
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	if co.FullPulls() != fulls+1 {
		t.Fatal("re-registered site did not re-bootstrap from a full pull")
	}
}

// TestDynamicMembershipConcurrent hammers membership mutation, health
// inspection, and upward serving against a running refresh loop — the test
// CI runs under -race.
func TestDynamicMembershipConcurrent(t *testing.T) {
	engines := deltaTestEngines(t, 4)
	co := coord.New(coord.NewLocalSite("anchor", engines[0]))
	co.SetDeltaPulls(true)
	co.SetResilient(true)
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // refresh loop
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			mutateSlow(engines[:1], r)
			if err := co.Refresh(); err != nil {
				t.Errorf("refresh round %d: %v", r, err)
				return
			}
		}
	}()
	go func() { // churn the tail membership
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			name := fmt.Sprintf("churn-%d", r%3)
			co.AddSite(coord.NewLocalSite(name, engines[1+r%3]))
			if r%2 == 1 {
				co.RemoveSite(name)
			}
		}
	}()
	go func() { // observe: health, view, upward deltas
		defer wg.Done()
		var cur core.Cursor
		for r := 0; r < rounds; r++ {
			co.SiteStatuses()
			if _, err := co.Snapshot(); err != nil {
				t.Errorf("observer round %d: %v", r, err)
				return
			}
			if _, next, _, err := co.DeltaSnapshot(cur); err == nil {
				cur = next
			}
		}
	}()
	wg.Wait()

	// Whatever membership survived, one more refresh must converge to the
	// flat merge over exactly those sites' engines.
	if err := co.Refresh(); err != nil {
		t.Fatal(err)
	}
	got, err := co.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var members []*ecmsketch.Sharded
	members = append(members, engines[0])
	for _, st := range co.SiteStatuses() {
		if st.Name != "anchor" {
			var idx int
			fmt.Sscanf(st.Name, "churn-%d", &idx)
			members = append(members, engines[1+idx])
		}
	}
	if want := flatOver(t, members); !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("post-churn view diverged from flat merge over surviving membership")
	}
}

// TestPullStaggerDeterministic pins the stagger function: stable per name,
// inside the window, spread across names, and disabled on a zero window.
func TestPullStaggerDeterministic(t *testing.T) {
	window := 10 * time.Second
	seen := map[time.Duration]int{}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("site-%d", i)
		a := coord.PullStagger(name, window)
		b := coord.PullStagger(name, window)
		if a != b {
			t.Fatalf("%s: stagger not deterministic: %v vs %v", name, a, b)
		}
		if a < 0 || a >= window {
			t.Fatalf("%s: stagger %v outside [0,%v)", name, a, window)
		}
		seen[a]++
	}
	if len(seen) < 16 {
		t.Fatalf("32 names landed on only %d distinct offsets", len(seen))
	}
	if coord.PullStagger("anything", 0) != 0 {
		t.Fatal("zero window must disable staggering")
	}
}
