package core

import (
	"ecmsketch/internal/hashing"
	"ecmsketch/internal/window"
)

// Event is one stream arrival in batched form: key, logical timestamp and
// multiplicity. Batches amortize per-call overhead (and, for concurrent
// front ends, lock traffic) across many arrivals; they are the unit every
// ingest path of the public API accepts.
type Event struct {
	Key  uint64
	Tick Tick
	N    uint64 // arrival multiplicity; 0 is treated as 1
}

// batchScratch is the reusable working memory of the batch ingest pipeline.
// It is retained on the sketch between batches (sized by the largest batch
// seen), so steady-state batch ingest allocates nothing.
type batchScratch struct {
	ticks []Tick   // per event: validated tick
	ns    []uint64 // per event: validated multiplicity
	pos   []int32  // per (row, event): cell column, laid out row-major
}

func (sc *batchScratch) resize(events, d int) {
	if cap(sc.ticks) < events {
		sc.ticks = make([]Tick, events)
		sc.ns = make([]uint64, events)
	}
	sc.ticks = sc.ticks[:events]
	sc.ns = sc.ns[:events]
	if cap(sc.pos) < events*d {
		sc.pos = make([]int32, events*d)
	}
	sc.pos = sc.pos[:events*d]
}

// validate applies the batch clamping contract (see ecmsketch.Ingestor)
// once for the whole slice: zero ticks become 1, and every tick is clamped
// to the running maximum of the batch and to the sketch clock at entry, so
// the applied sequence is non-decreasing. It fills sc.ticks/sc.ns and
// returns the batch's high-water tick and total inserted value.
func (sc *batchScratch) validate(events []Event, clock Tick) (maxTick Tick, total uint64) {
	lo := clock
	if lo == 0 {
		lo = 1 // ticks are 1-based
	}
	for e, ev := range events {
		if ev.Tick > lo {
			lo = ev.Tick
		}
		sc.ticks[e] = lo
		n := ev.N
		if n == 0 {
			n = 1
		}
		sc.ns[e] = n
		total += n
	}
	return lo, total
}

// AddBatch registers a slice of arrivals in one call. Events are applied in
// slice order under the batch clamping contract documented on
// ecmsketch.Ingestor: tick validation happens once per batch, not once per
// counter update.
//
// For the flat exponential-histogram engine the batch is the unit of work
// all the way down: each event's d cell positions are computed once (one
// key fold, d folded hashes), then updates are applied row-major straight
// into the arena, with no per-event interface dispatch.
func (s *Sketch) AddBatch(events []Event) {
	m := len(events)
	if m == 0 {
		return
	}
	sc := &s.batch
	sc.resize(m, s.d)
	maxTick, total := sc.validate(events, s.now)
	if maxTick > s.now {
		s.now = maxTick
	}
	s.count += total
	s.waveVer++

	if s.eh == nil {
		// Wave engines keep per-object counters; apply event-major with the
		// already-validated ticks.
		if s.params.Algorithm == window.AlgoRW {
			for e, ev := range events {
				s.addRW(ev.Key, sc.ticks[e], sc.ns[e])
			}
			return
		}
		for e, ev := range events {
			k := hashing.Fold(ev.Key)
			for j := 0; j < s.d; j++ {
				s.counters[j*s.w+s.fam.HashFolded(j, k)].AddN(sc.ticks[e], sc.ns[e])
			}
		}
		return
	}

	// Flat path. Hash every event once, laying positions out row-major so
	// each row's sweep reads its positions sequentially...
	d := s.d
	for e, ev := range events {
		k := hashing.Fold(ev.Key)
		for j := 0; j < d; j++ {
			sc.pos[j*m+e] = int32(s.fam.HashFolded(j, k))
		}
	}
	// ...then sweep the arena row-major: row j's updates touch only cells
	// [j*w, (j+1)*w), so consecutive updates stay within one row-sized
	// region of the slabs instead of striding across the whole sketch for
	// every event.
	for j := 0; j < d; j++ {
		rowPos := sc.pos[j*m : (j+1)*m]
		s.eh.AddBatchRow(j*s.w, rowPos, sc.ticks, sc.ns)
	}
}

// Snapshot returns an independent copy of the sketch, safe to query, merge
// or ship elsewhere while the original keeps ingesting.
//
// For the flat exponential-histogram engine the copy is an arena clone —
// three slab memcpys plus a fixed header, no per-counter walking — which is
// what makes copy-on-read stripe snapshots cheap enough for the sharded
// engine to take under a stripe lock. Wave engines fall back to a
// serialize + decode round trip.
func (s *Sketch) Snapshot() (*Sketch, error) {
	if s.eh == nil {
		return Unmarshal(s.Marshal())
	}
	c := *s
	c.eh = s.eh.Clone()
	c.batch = batchScratch{} // scratch is per-owner working memory
	return &c, nil
}
