package core

// Event is one stream arrival in batched form: key, logical timestamp and
// multiplicity. Batches amortize per-call overhead (and, for concurrent
// front ends, lock traffic) across many arrivals; they are the unit every
// ingest path of the public API accepts.
type Event struct {
	Key  uint64
	Tick Tick
	N    uint64 // arrival multiplicity; 0 is treated as 1
}

// AddBatch registers a slice of arrivals in one call. Events are applied in
// slice order; ticks must be non-decreasing across the batch as for AddN
// (regressed ticks are clamped forward).
func (s *Sketch) AddBatch(events []Event) {
	for _, ev := range events {
		n := ev.N
		if n == 0 {
			n = 1
		}
		s.AddN(ev.Key, ev.Tick, n)
	}
}

// Snapshot returns an independent copy of the sketch (serialize + decode),
// safe to query, merge or ship elsewhere while the original keeps ingesting.
func (s *Sketch) Snapshot() (*Sketch, error) { return Unmarshal(s.Marshal()) }
