package core

import (
	"ecmsketch/internal/hashing"
)

// Event is one stream arrival in batched form: key, logical timestamp and
// multiplicity. Batches amortize per-call overhead (and, for concurrent
// front ends, lock traffic) across many arrivals; they are the unit every
// ingest path of the public API accepts.
type Event struct {
	Key  uint64
	Tick Tick
	N    uint64 // arrival multiplicity; 0 is treated as 1
}

// batchScratch is the reusable working memory of the batch ingest pipeline.
// It is retained on the sketch between batches (sized by the largest batch
// seen), so steady-state batch ingest allocates nothing.
type batchScratch struct {
	ticks []Tick   // per event: validated tick
	ns    []uint64 // per event: validated multiplicity
	pos   []int32  // per (row, event): cell column, laid out row-major

	// Key cache: a direct-mapped table of recently hashed keys and their d
	// row positions, persistent across batches. Repeated keys — within one
	// batch or across a stream of batches — fold and row-hash once and then
	// copy the d cached positions, which is what makes skewed workloads
	// (the Count-Min regime) cheaper per event than uniform ones. Collisions
	// simply overwrite: the cache is advisory, never authoritative.
	ckKey  []uint64
	ckPos  []int32 // ckSlots rows of d positions each
	ckSeen []bool

	// Row grouping: per-column chains built in O(events) per row, emitting
	// an application order that visits one cell's events consecutively (in
	// batch order) before moving to the next cell. head/colStamp are sized
	// by the row width; next/distinct/order by the batch.
	head     []int32
	colStamp []uint32
	colEpoch uint32
	next     []int32
	distinct []int32
	order    []int32
}

func (sc *batchScratch) resize(events, d int) {
	if cap(sc.ticks) < events {
		sc.ticks = make([]Tick, events)
		sc.ns = make([]uint64, events)
	}
	sc.ticks = sc.ticks[:events]
	sc.ns = sc.ns[:events]
	if cap(sc.pos) < events*d {
		sc.pos = make([]int32, events*d)
	}
	sc.pos = sc.pos[:events*d]
}

// ckSlots sizes the persistent key cache (power of two). At 8 Ki slots the
// cache costs ~100 KiB of scratch per sketch and keeps the sole-occupant
// rate high for working sets into the few-thousand-key range.
const ckSlots = 1 << 13

// hashBatch fills sc.pos with every event's d cell columns, laid out
// row-major. When useCache is set, keys hit the persistent cache first; each
// miss is folded and row-hashed once and refills its slot, so both in-batch
// and cross-batch key repetition amortize the d row hashes.
//
// The cache is gated on batch width (the grouping condition, see AddBatch)
// because it only pays while its table stays cache-resident: d row hashes
// are a handful of ALU ops, so a probe that misses to DRAM costs more than
// it saves. Deep batches keep the table hot between probes; tiny batches —
// in particular the per-stripe sub-batches a Sharded engine routes, whose 16
// stripes would otherwise thrash 16 separate tables — hash directly.
func (s *Sketch) hashBatch(events []Event, m int, useCache bool) {
	sc := &s.batch
	d := s.d
	if !useCache {
		for e, ev := range events {
			k := hashing.Fold(ev.Key)
			for j := 0; j < d; j++ {
				sc.pos[j*m+e] = int32(s.fam.HashFolded(j, k))
			}
		}
		return
	}
	if sc.ckKey == nil {
		sc.ckKey = make([]uint64, ckSlots)
		sc.ckPos = make([]int32, ckSlots*d)
		sc.ckSeen = make([]bool, ckSlots)
	}
	const mask = ckSlots - 1
	for e, ev := range events {
		x := hashing.Mix64(ev.Key)
		slot := int(x) & mask
		cp := sc.ckPos[slot*d : slot*d+d : slot*d+d]
		if sc.ckSeen[slot] && sc.ckKey[slot] == ev.Key {
			for j := 0; j < d; j++ {
				sc.pos[j*m+e] = cp[j]
			}
			continue
		}
		sc.ckSeen[slot] = true
		sc.ckKey[slot] = ev.Key
		k := hashing.FoldMixed(x) // reuse the slot derivation's mix
		for j := 0; j < d; j++ {
			p := int32(s.fam.HashFolded(j, k))
			sc.pos[j*m+e] = p
			cp[j] = p
		}
	}
}

// groupRow returns an application order for one row of positions that groups
// events by cell, preserving batch order within each cell. Cells are
// independent, so inter-cell reordering never changes any counter's content —
// only the memory locality of the sweep. The order is built in O(events) with
// epoch-stamped per-column chains; no per-row clearing of width-sized arrays.
func (sc *batchScratch) groupRow(rowPos []int32, w int) []int32 {
	m := len(rowPos)
	if cap(sc.head) < w {
		sc.head = make([]int32, w)
		sc.colStamp = make([]uint32, w)
		sc.colEpoch = 0
	}
	sc.head = sc.head[:w]
	sc.colStamp = sc.colStamp[:w]
	if cap(sc.next) < m {
		sc.next = make([]int32, m)
		sc.distinct = make([]int32, m)
		sc.order = make([]int32, m)
	}
	sc.next = sc.next[:m]
	sc.distinct = sc.distinct[:m]
	sc.order = sc.order[:m]
	sc.colEpoch++
	if sc.colEpoch == 0 {
		clear(sc.colStamp)
		sc.colEpoch = 1
	}
	nd := 0
	for e := m - 1; e >= 0; e-- { // prepend while walking backwards: chains end up in batch order
		p := rowPos[e]
		if sc.colStamp[p] != sc.colEpoch {
			sc.colStamp[p] = sc.colEpoch
			sc.head[p] = -1
			sc.distinct[nd] = p
			nd++
		}
		sc.next[e] = sc.head[p]
		sc.head[p] = int32(e)
	}
	idx := 0
	for _, p := range sc.distinct[:nd] {
		for e := sc.head[p]; e >= 0; e = sc.next[e] {
			sc.order[idx] = e
			idx++
		}
	}
	return sc.order
}

// validate applies the batch clamping contract (see ecmsketch.Ingestor)
// once for the whole slice: zero ticks become 1, and every tick is clamped
// to the running maximum of the batch and to the sketch clock at entry, so
// the applied sequence is non-decreasing. It fills sc.ticks/sc.ns and
// returns the batch's high-water tick, total inserted value, and whether
// every event is a unit arrival (the dominant case, which lets the bank
// sweeps skip their multiplicity loops).
func (sc *batchScratch) validate(events []Event, clock Tick) (maxTick Tick, total uint64, allUnit bool) {
	lo := clock
	if lo == 0 {
		lo = 1 // ticks are 1-based
	}
	allUnit = true
	for e, ev := range events {
		if ev.Tick > lo {
			lo = ev.Tick
		}
		sc.ticks[e] = lo
		n := ev.N
		if n == 0 {
			n = 1
		} else if n > 1 {
			allUnit = false
		}
		sc.ns[e] = n
		total += n
	}
	return lo, total, allUnit
}

// AddBatch registers a slice of arrivals in one call. Events are applied in
// slice order under the batch clamping contract documented on
// ecmsketch.Ingestor: tick validation happens once per batch, not once per
// counter update.
//
// For the flat exponential-histogram engine the batch is the unit of work
// all the way down: each event's d cell positions are computed once (one
// key fold, d folded hashes), then updates are applied row-major straight
// into the arena, with no per-event interface dispatch.
func (s *Sketch) AddBatch(events []Event) {
	m := len(events)
	if m == 0 {
		return
	}
	sc := &s.batch
	sc.resize(m, s.d)
	maxTick, total, allUnit := sc.validate(events, s.now)
	if maxTick > s.now {
		s.now = maxTick
	}
	s.count += total
	s.waveVer++
	ns := sc.ns
	if allUnit {
		ns = nil // all-unit batch: the bank sweeps skip the multiplicity loop
	}

	if s.bank == nil {
		// The exact engine keeps per-object counters; apply event-major with
		// the already-validated ticks.
		for e, ev := range events {
			k := hashing.Fold(ev.Key)
			for j := 0; j < s.d; j++ {
				s.counters[j*s.w+s.fam.HashFolded(j, k)].AddN(sc.ticks[e], sc.ns[e])
			}
		}
		return
	}

	// Flat path. Hash every event once — repeated keys once per stream of
	// batches, via the persistent key cache on deep batches — laying
	// positions out row-major so each row's sweep reads its positions
	// sequentially...
	d := s.d
	deep := m >= groupFactor*s.w
	s.hashBatch(events, m, deep)

	if s.rw != nil {
		// Randomized waves consume identifiers, not multiplicities: every
		// unit arrival draws a fresh identifier shared by its d cells (the
		// duplicate-insensitive union depends on that sharing), so the
		// application is event-major. The memoized positions still amortize
		// the d row hashes across repeated keys and repeated multiplicities.
		for e := range events {
			t := sc.ticks[e]
			for u := uint64(0); u < sc.ns[e]; u++ {
				s.seq++
				id := hashing.Mix64(s.salt ^ s.seq)
				for j := 0; j < d; j++ {
					s.rw.AddID(j*s.w+int(sc.pos[j*m+e]), t, id)
				}
			}
		}
		return
	}

	// ...then sweep the arena row-major: row j's updates touch only cells
	// [j*w, (j+1)*w), so consecutive updates stay within one row-sized
	// region of the slabs instead of striding across the whole sketch for
	// every event.
	//
	// Key grouping is adaptive. When the batch is much wider than the row —
	// several events per column on average — a grouped order coalesces every
	// cell's arrivals into one pass over its hot header, directory and slab
	// lines, and the win grows with the collision count. Below that point the
	// grouped walk costs more than it saves (the order indirection defeats
	// the sequential streaming of the position/tick arrays), so small batches
	// apply in batch order.
	group := deep
	for j := 0; j < d; j++ {
		rowPos := sc.pos[j*m : (j+1)*m]
		if !group {
			if s.eh != nil {
				s.eh.AddBatchRow(j*s.w, rowPos, sc.ticks, ns)
			} else {
				s.dw.AddBatchRow(j*s.w, rowPos, sc.ticks, ns)
			}
			continue
		}
		order := sc.groupRow(rowPos, s.w)
		if s.eh != nil {
			s.eh.AddBatchRowOrdered(j*s.w, rowPos, sc.ticks, ns, order)
		} else {
			s.dw.AddBatchRowOrdered(j*s.w, rowPos, sc.ticks, ns, order)
		}
	}
}

// groupFactor is the average events-per-column threshold above which a
// batch counts as deep: deep batches are applied in key-grouped order and
// hash through the persistent key cache; see AddBatch and hashBatch.
const groupFactor = 4

// Snapshot returns an independent copy of the sketch, safe to query, merge
// or ship elsewhere while the original keeps ingesting.
//
// For the flat engines (all three paper algorithms) the copy is an arena
// clone — a few slab memcpys plus a fixed header, no per-counter walking —
// which is what makes copy-on-read stripe snapshots cheap enough for the
// sharded engine to take under a stripe lock. The test-only exact engine
// falls back to a serialize + decode round trip.
func (s *Sketch) Snapshot() (*Sketch, error) {
	if s.bank == nil {
		return Unmarshal(s.Marshal())
	}
	c := *s
	switch {
	case s.eh != nil:
		c.eh = s.eh.Clone()
		c.bank = c.eh
	case s.dw != nil:
		c.dw = s.dw.Clone()
		c.bank = c.dw
	default:
		c.rw = s.rw.Clone()
		c.bank = c.rw
	}
	c.batch = batchScratch{} // scratch is per-owner working memory
	return &c, nil
}
