package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ecmsketch/internal/window"
)

// TestAddBatchSequentialEquivalence pins the batch ingest pipeline to the
// sequential path byte-for-byte: for every algorithm, applying a random
// stream through AddBatch must leave a sketch whose encoding is identical to
// one fed the same events through per-event AddN. The stream is shaped to
// cross every branch of the pipeline — batches below and above the grouping
// threshold (plain vs key-grouped sweeps), all-unit and mixed-multiplicity
// batches (nil vs populated ns), repeated keys (the persistent key cache),
// and a window short enough that cascades and expiry run throughout.
func TestAddBatchSequentialEquivalence(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		t.Run(fmt.Sprint(algo), func(t *testing.T) {
			p := Params{Epsilon: 0.2, Delta: 0.2, WindowLength: 500, Seed: 13, Algorithm: algo}
			if algo == window.AlgoDW || algo == window.AlgoRW {
				p.UpperBound = 1 << 16
			}
			batched, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			// Default identifier salts are per-instance (sketch-level for
			// auto-ids, per-cell for bank-generated ones, and the cell salts
			// are wire-encoded); pin both so the RW engines draw identical
			// event identifiers and the encodings can be byte-compared at all.
			batched.SetIDSalt(77)
			seq.SetIDSalt(77)
			if algo == window.AlgoRW {
				for i := 0; i < batched.d*batched.w; i++ {
					batched.rw.SetCellIDSalt(i, uint64(i)*0x9e3779b97f4a7c15+1)
					seq.rw.SetCellIDSalt(i, uint64(i)*0x9e3779b97f4a7c15+1)
				}
			}
			w := batched.fam.Width()
			rng := rand.New(rand.NewSource(99))
			tick := Tick(1)
			for round := 0; round < 40; round++ {
				// Alternate small batches (plain sweep) and batches several
				// times wider than the row (grouped sweep), and all-unit
				// rounds with mixed-multiplicity ones.
				m := 1 + rng.Intn(8)
				if round%2 == 1 {
					m = groupFactor*w + rng.Intn(3*w)
				}
				evs := make([]Event, m)
				for i := range evs {
					if rng.Intn(4) == 0 {
						tick += Tick(rng.Intn(60))
					}
					n := uint64(1)
					if round%4 == 2 {
						n = uint64(1 + rng.Intn(3))
					}
					evs[i] = Event{Key: rng.Uint64() % 64, Tick: tick, N: n}
				}
				batched.AddBatch(evs)
				for _, ev := range evs {
					seq.AddN(ev.Key, ev.Tick, ev.N)
				}
				if got, want := batched.Marshal(), seq.Marshal(); !bytes.Equal(got, want) {
					t.Fatalf("round %d (batch of %d): batched encoding diverged from sequential", round, m)
				}
			}
		})
	}
}
