package core

import (
	"math"
	"testing"

	"ecmsketch/internal/window"
)

func TestQueryKindString(t *testing.T) {
	if PointQuery.String() != "point" || InnerProductQuery.String() != "inner-product" {
		t.Error("QueryKind.String mismatch")
	}
	if QueryKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestNaiveSplit(t *testing.T) {
	s := NaiveSplit(0.1)
	if !s.valid() {
		t.Fatalf("NaiveSplit invalid: %+v", s)
	}
	if math.Abs(s.PointErrorBound()-0.1) > 1e-9 {
		t.Errorf("NaiveSplit point bound %v", s.PointErrorBound())
	}
	// For inner products, the naive split does NOT satisfy the Theorem 2
	// budget — that gap is what SplitInnerProduct exists for.
	if s.InnerProductErrorBound() <= 0.1 {
		t.Errorf("naive split unexpectedly meets the inner-product bound: %v",
			s.InnerProductErrorBound())
	}
}

func TestParamsAccessorAndSalt(t *testing.T) {
	p := Params{Epsilon: 0.2, Delta: 0.2, WindowLength: 100, Seed: 3}
	s := mustECM(t, p)
	if got := s.Params(); got.Epsilon != 0.2 || got.WindowLength != 100 {
		t.Errorf("Params() = %+v", got)
	}
	s.SetIDSalt(42) // deterministic RW identifiers for multi-process setups
	if s.salt != 42 {
		t.Errorf("salt = %d", s.salt)
	}
}

func TestExtractVectorMass(t *testing.T) {
	s := mustECM(t, Params{Epsilon: 0.2, Delta: 0.2, WindowLength: 1000, Seed: 8})
	for i := Tick(1); i <= 50; i++ {
		s.Add(7, i)
	}
	v := s.ExtractVector(1000)
	if v.D != s.Depth() || v.W != s.Width() {
		t.Fatalf("vector shape %dx%d, sketch %dx%d", v.D, v.W, s.Depth(), s.Width())
	}
	// Every row holds the full 50 arrivals (one loaded cell per row).
	for j := 0; j < v.D; j++ {
		var row float64
		for i := 0; i < v.W; i++ {
			row += v.Cells[j*v.W+i]
		}
		if row != 50 {
			t.Errorf("row %d mass = %v, want 50", j, row)
		}
	}
	// Default-algorithm sketches run on the flat arena engine, with no
	// per-cell counter objects to hand out.
	if s.eh == nil {
		t.Error("EH sketch is not using the flat engine")
	}
	if s.counters != nil {
		t.Error("flat sketch still carries per-object counters")
	}
}

func TestMergeErrorPaths(t *testing.T) {
	p := Params{Epsilon: 0.2, Delta: 0.2, WindowLength: 100, Seed: 1}
	a := mustECM(t, p)
	if _, err := Merge(a, nil); err == nil {
		t.Error("nil input accepted")
	}
	// Exact-algorithm sketches cannot be built through core (no such Params
	// path), so the unsupported-algorithm branch is exercised via a DW/EH
	// mismatch instead.
	pd := p
	pd.Algorithm = window.AlgoDW
	d := mustECM(t, pd)
	if _, err := Merge(a, d); err == nil {
		t.Error("algorithm mismatch accepted")
	}
	// DW sketches merge fine on their own.
	d2 := mustECM(t, pd)
	d.Add(1, 1)
	d2.Add(1, 1)
	m, err := Merge(d, d2)
	if err != nil {
		t.Fatalf("DW merge: %v", err)
	}
	if got := m.Estimate(1, 100); got != 2 {
		t.Errorf("merged DW estimate = %v, want 2", got)
	}
}
