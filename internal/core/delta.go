package core

// This file is the delta half of the snapshot protocol: cursor-based
// incremental pulls that ship only what changed since the puller's last
// cursor, instead of the whole summary on every pull.
//
// The contract, end to end:
//
//   - A producer (one sketch, or a striped engine of several) hands out a
//     Cursor with every snapshot: its process-random epoch plus one version
//     per part. Versions count arrival-content mutations only — expiry and
//     clock movement are deterministic functions of (content, clock), so
//     they never need to ship; the receiver replays them by advancing to
//     the clock carried in each delta.
//   - Given a cursor it recognizes (same epoch, versions not from the
//     future), the producer emits a delta: for each part whose version
//     moved, the cells whose per-cell version moved, as ordinary cell
//     encodings, plus the part's clock/count header. An unchanged part
//     contributes zero bytes; an unchanged cell inside a changed part
//     contributes zero bytes. There is no explicit tombstone list: content
//     that died of expiry is reproduced by the receiver advancing its copy
//     to the delta's clock, and a cell fully emptied by expiry after new
//     arrivals ships as an (empty) cell encoding like any other change.
//   - A receiver (DeltaState) holds the parts as decoded sketches, applies
//     deltas in place, and materializes the full summary on demand. The
//     reconstruction is byte-identical (Marshal) to a full snapshot taken
//     at the same versions — the equivalence tests pin this across both
//     the in-process and HTTP transports.
//   - Anything off-protocol — unknown epoch (site restart, parameter
//     change), versions from the future, torn or corrupt payloads — fails
//     the Apply, which resets the receiver state so the caller falls back
//     to a full pull. Invalidation is always safe: a full pull re-baselines.
//
// Delta payloads carry cells in the config-elided bare form
// (window.AppendMarshalCellBare): a delta only ever applies against a
// baseline whose Config was already validated, so repeating the shared
// per-cell Config (~30 bytes) per changed cell would roughly double a
// sparse delta pre-gzip. The cell decoder accepts both forms, so payloads
// from producers still shipping full-form cells keep applying; full
// snapshots are byte-identical to what they always were.

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"ecmsketch/internal/hashing"
	"ecmsketch/internal/window"
)

// Delta payload tags, continuing the 0xEC (wireECM) namespace.
const (
	wireDelta      byte = 0xED // single-sketch incremental delta
	wireMultiFull  byte = 0xEE // multipart baseline: one sketch encoding per part
	wireMultiDelta byte = 0xEF // multipart delta: sub-deltas for changed parts
)

// maxDeltaParts bounds the part count a multipart payload may declare;
// real producers have one part per lock stripe, far below this.
const maxDeltaParts = 1 << 12

// epochBase seeds epoch generation with process randomness, so two
// processes (or two runs of one binary) can never hand out colliding
// epochs: a cursor issued by a dead instance must not validate against its
// replacement.
var epochBase = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded mode: epochs stay unique within the process.
		return 0x9e37_79b9_7f4a_7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var epochSeq atomic.Uint64

// NewEpoch returns a nonzero process-random identifier for one serving
// engine instance. Epoch 0 is reserved for the zero cursor ("no baseline").
func NewEpoch() uint64 {
	e := hashing.Mix64(epochBase ^ epochSeq.Add(1))
	if e == 0 {
		e = 1
	}
	return e
}

func newEpoch() uint64 { return NewEpoch() }

// Cursor names a producer state in the delta-snapshot protocol: the
// producing engine instance (Epoch) and one arrival-mutation version per
// part (a single sketch has one part; a striped engine has one per stripe).
// Cursors are opaque to pullers — obtained from one pull, echoed on the
// next — and validated, never trusted: a cursor the producer does not
// recognize yields a full snapshot.
type Cursor struct {
	Epoch uint64
	Vers  []uint64
}

// IsZero reports whether the cursor is the zero cursor ("no baseline"): a
// puller presents it to request a fresh baseline, and a producer that does
// not speak the protocol returns it.
func (c Cursor) IsZero() bool { return c.Epoch == 0 && len(c.Vers) == 0 }

// Clone returns an independent copy (cursors share no state with their
// origin, so pulls retained across goroutines stay race-free).
func (c Cursor) Clone() Cursor {
	return Cursor{Epoch: c.Epoch, Vers: append([]uint64(nil), c.Vers...)}
}

// String renders the cursor in its URL-safe wire form (the ?since= value
// and X-Ecm-Cursor header of the HTTP protocol): "0" for the zero cursor,
// otherwise unpadded base64url over a varint-packed binary encoding.
func (c Cursor) String() string {
	if c.IsZero() {
		return "0"
	}
	b := binary.AppendUvarint(nil, c.Epoch)
	b = binary.AppendUvarint(b, uint64(len(c.Vers)))
	for _, v := range c.Vers {
		b = binary.AppendUvarint(b, v)
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// ParseCursor decodes the String form. The empty string parses as the zero
// cursor; anything malformed is an error (servers treat it as "no usable
// cursor" and reply with a full baseline).
func ParseCursor(s string) (Cursor, error) {
	if s == "" || s == "0" {
		return Cursor{}, nil
	}
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Cursor{}, fmt.Errorf("core: bad cursor: %v", err)
	}
	var c Cursor
	off := 0
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated cursor")
		}
		off += n
		return v, nil
	}
	if c.Epoch, err = getU(); err != nil {
		return Cursor{}, err
	}
	n, err := getU()
	if err != nil {
		return Cursor{}, err
	}
	if n > maxDeltaParts {
		return Cursor{}, fmt.Errorf("core: cursor declares %d parts", n)
	}
	c.Vers = make([]uint64, n)
	for i := range c.Vers {
		if c.Vers[i], err = getU(); err != nil {
			return Cursor{}, err
		}
	}
	if off != len(b) {
		return Cursor{}, errors.New("core: trailing bytes in cursor")
	}
	return c, nil
}

// DeltaVersion reports the sketch's arrival-mutation version — the scalar a
// cursor carries per part. The flat engines (all three paper algorithms)
// track it in their bank, alongside the per-cell versions that make deltas
// cell-granular; the test-only exact engine keeps a sketch-level counter and
// ships full on any change.
func (s *Sketch) DeltaVersion() uint64 {
	if s.bank != nil {
		return s.bank.Version()
	}
	return s.waveVer
}

// Epoch reports the engine-instance identifier cursors are bound to.
func (s *Sketch) Epoch() uint64 { return s.epoch }

// SetEpoch overrides the engine-instance identifier. The one legitimate
// caller is durable recovery: a restarted engine that restored its
// predecessor's exact content and version vector may also adopt its epoch,
// so cursors issued before the crash keep validating. Injecting an epoch
// without restoring the matching state silently serves wrong deltas —
// every other path should let New mint a fresh epoch and re-baseline.
func (s *Sketch) SetEpoch(e uint64) { s.epoch = e }

// VersionVector exports the change-tracking state behind DeltaVersion: the
// arrival-mutation counter plus per-cell last-modified versions. Wire
// encodings deliberately omit these (Unmarshal starts a new engine
// instance under a fresh epoch); durable snapshots persist them as a
// sidecar next to the Marshal bytes so a restart restores cursor
// continuity. The test-only exact engine tracks a sketch-level counter and
// exports a nil vector.
func (s *Sketch) VersionVector() (uint64, []uint64) {
	if s.bank != nil {
		return s.bank.VersionVector()
	}
	return s.waveVer, nil
}

// RestoreVersionVector installs previously exported change-tracking state;
// the counterpart of VersionVector for durable recovery.
func (s *Sketch) RestoreVersionVector(version uint64, vers []uint64) error {
	if s.bank == nil {
		if len(vers) != 0 {
			return fmt.Errorf("core: exact engine has no per-cell versions, got %d", len(vers))
		}
		s.waveVer = version
		return nil
	}
	return s.bank.RestoreVersionVector(version, vers)
}

// DeltaSnapshot implements the cursor-based snapshot contract on a single
// sketch. Given the cursor from a previous pull it returns an incremental
// payload holding only the cells that changed since (full == false); given
// a cursor it does not recognize — zero, another epoch, versions from the
// future — it returns a full snapshot (standard Marshal bytes,
// full == true) re-baselining the puller. The returned cursor names the
// state the payload brings the puller to.
//
// The sketch is settled (advanced to its own clock) as a side effect, so
// the emitted state and all later deltas share one expiry frontier; this
// never changes query answers or the cursor.
func (s *Sketch) DeltaSnapshot(since Cursor) ([]byte, Cursor, bool, error) {
	ver := s.DeltaVersion()
	cur := Cursor{Epoch: s.epoch, Vers: []uint64{ver}}
	ok := since.Epoch == s.epoch && len(since.Vers) == 1 && since.Vers[0] <= ver
	// The exact engine has no per-cell change tracking: it answers with an
	// empty delta when nothing changed and a full snapshot otherwise.
	if ok && (s.bank != nil || since.Vers[0] == ver) {
		s.Advance(s.now)
		return s.appendDelta(nil, s.epoch, since.Vers[0]), cur, false, nil
	}
	s.Advance(s.now)
	return s.Marshal(), cur, true, nil
}

// AppendDeltaSince appends the sketch's incremental encoding since version
// base, stamped with the producing engine's epoch (a striped engine stamps
// its own epoch on every stripe's sub-delta). The sketch is settled first.
func (s *Sketch) AppendDeltaSince(dst []byte, epoch, base uint64) []byte {
	s.Advance(s.now)
	return s.appendDelta(dst, epoch, base)
}

// appendDelta appends the wireDelta encoding: a header naming the version
// span and carrying the clock/count fields, then one bare (config-elided)
// cell encoding per changed cell. The caller must have settled the sketch.
func (s *Sketch) appendDelta(dst []byte, epoch, base uint64) []byte {
	dst = append(dst, wireDelta)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, base)
	dst = binary.AppendUvarint(dst, s.DeltaVersion())
	dst = binary.AppendUvarint(dst, s.now)
	dst = binary.AppendUvarint(dst, s.count)
	dst = binary.AppendUvarint(dst, s.salt)
	dst = binary.AppendUvarint(dst, s.seq)
	if s.bank == nil {
		// The exact engine only emits deltas for the nothing-changed case.
		return binary.AppendUvarint(dst, 0)
	}
	changed := 0
	for i := 0; i < s.d*s.w; i++ {
		if s.bank.CellChangedSince(i, base) {
			changed++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(changed))
	prev := 0
	var cell []byte
	var scratch []window.Bucket
	for i := 0; i < s.d*s.w; i++ {
		if !s.bank.CellChangedSince(i, base) {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i-prev))
		prev = i
		switch {
		case s.eh != nil:
			cell, scratch = s.eh.AppendMarshalCellBare(cell[:0], i, scratch)
		case s.dw != nil:
			cell = s.dw.AppendMarshalCellBare(cell[:0], i)
		default:
			cell = s.rw.AppendMarshalCellBare(cell[:0], i)
		}
		dst = binary.AppendUvarint(dst, uint64(len(cell)))
		dst = append(dst, cell...)
	}
	return dst
}

// applyDelta applies a wireDelta payload produced against version base by
// an engine with the given epoch: changed cells are replaced by their
// shipped encodings, everything else is carried to the delta's clock, so
// the sketch ends byte-identical (Marshal) to the producer's settled state
// at the returned new version. Validation is strict — any mismatch or
// truncation errors out, and the caller must treat the sketch as torn.
// record, when non-nil, receives the index of every replaced cell — the
// change feed standing-query evaluation on coordinators is driven by.
func (s *Sketch) applyDelta(payload []byte, epoch, base uint64, record func(int)) (uint64, error) {
	if len(payload) == 0 || payload[0] != wireDelta {
		return 0, errors.New("core: not a delta encoding")
	}
	off := 1
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated delta")
		}
		off += n
		return v, nil
	}
	hdr := struct{ epoch, base, ver, now, count, salt, seq, changed uint64 }{}
	for _, f := range []*uint64{
		&hdr.epoch, &hdr.base, &hdr.ver, &hdr.now, &hdr.count, &hdr.salt, &hdr.seq, &hdr.changed,
	} {
		v, err := getU()
		if err != nil {
			return 0, err
		}
		*f = v
	}
	if hdr.epoch != epoch {
		return 0, fmt.Errorf("core: delta epoch %x does not match %x", hdr.epoch, epoch)
	}
	if hdr.base != base {
		return 0, fmt.Errorf("core: delta base version %d does not match held version %d", hdr.base, base)
	}
	if hdr.ver < hdr.base {
		return 0, errors.New("core: delta version regressed")
	}
	if s.bank == nil && hdr.changed != 0 {
		return 0, errors.New("core: cell-granular delta for a per-object engine")
	}
	if hdr.changed > uint64(len(payload)) { // ≥1 byte per changed cell
		return 0, errors.New("core: corrupt delta")
	}
	prev := 0
	for k := uint64(0); k < hdr.changed; k++ {
		dIdx, err := getU()
		if err != nil {
			return 0, err
		}
		// Bound the increment before converting: a huge varint would wrap
		// int and sneak a negative index past the range check.
		if dIdx > uint64(s.d*s.w) {
			return 0, fmt.Errorf("core: delta cell index increment %d out of range", dIdx)
		}
		idx := prev + int(dIdx)
		if idx >= s.d*s.w || (k > 0 && dIdx == 0) {
			return 0, fmt.Errorf("core: delta cell index %d out of range", idx)
		}
		prev = idx
		ln, err := getU()
		if err != nil {
			return 0, err
		}
		if ln > uint64(len(payload)-off) {
			return 0, errors.New("core: truncated delta cell")
		}
		enc := payload[off : off+int(ln)]
		off += int(ln)
		s.bank.ResetCell(idx)
		if err := s.bank.UnmarshalCell(idx, enc); err != nil {
			return 0, fmt.Errorf("core: delta cell %d: %w", idx, err)
		}
		if record != nil {
			record(idx)
		}
	}
	if off != len(payload) {
		return 0, errors.New("core: trailing bytes in delta")
	}
	if hdr.now > s.now {
		s.now = hdr.now
	}
	s.count, s.salt, s.seq = hdr.count, hdr.salt, hdr.seq
	// Settle every cell — including the unchanged ones — to the delta's
	// clock: this replays the producer's expiry exactly (no tombstones on
	// the wire; expiry is deterministic). Cells the replay mutates join the
	// change feed — their estimates moved (for the wave synopses possibly
	// upward, when expiry forces a coarser level) even though no encoding
	// for them was shipped.
	if s.bank != nil && record != nil {
		s.bank.AdvanceAllNoting(s.now, record)
	} else {
		s.Advance(s.now)
	}
	return hdr.ver, nil
}

// EncodeMultiFull frames a striped engine's baseline snapshot: every part's
// full encoding, length-prefixed, under one header. The receiver holds the
// parts individually so later multipart deltas can update them in place.
func EncodeMultiFull(epoch uint64, now Tick, parts [][]byte) []byte {
	dst := []byte{wireMultiFull}
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(len(parts)))
	dst = binary.AppendUvarint(dst, now)
	for _, enc := range parts {
		dst = binary.AppendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// PartDelta is one changed part of a multipart delta: the part's index and
// its wireDelta sub-payload. Unchanged parts do not appear at all.
type PartDelta struct {
	Index   int
	Payload []byte
}

// EncodeMultiDelta frames a striped engine's incremental snapshot: the
// engine clock (which carries expiry to every part, changed or not) and the
// changed parts' sub-deltas. An idle engine frames an empty delta of a few
// bytes.
func EncodeMultiDelta(epoch uint64, now Tick, nparts int, changed []PartDelta) []byte {
	dst := []byte{wireMultiDelta}
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(nparts))
	dst = binary.AppendUvarint(dst, now)
	dst = binary.AppendUvarint(dst, uint64(len(changed)))
	prev := 0
	for _, pd := range changed {
		dst = binary.AppendUvarint(dst, uint64(pd.Index-prev))
		prev = pd.Index
		dst = binary.AppendUvarint(dst, uint64(len(pd.Payload)))
		dst = append(dst, pd.Payload...)
	}
	return dst
}

// DeltaState is the receiving half of the protocol: it holds one producer's
// parts as decoded sketches, applies full and incremental payloads, and
// materializes the combined summary on demand. A coordinator keeps one per
// site.
//
// DeltaState is not safe for concurrent use; callers serialize access (the
// coordinator holds a per-site mutex across pull→apply→materialize).
type DeltaState struct {
	epoch uint64
	vers  []uint64
	parts []*Sketch
	now   Tick
	// merged caches the cross-part Merge of Materialize. Instead of being
	// invalidated wholesale, it is patched in place (PatchMerged) from the
	// cells deltas actually changed — mergedDirty/mergedDirtyAll mirror the
	// external change feed for that purpose — so a steady-state pull costs
	// re-deriving a handful of cells, not a P-way merge.
	merged         *Sketch
	mergedDirty    []int
	mergedDirtyAll bool

	// changed accumulates the cell indices replaced by applied deltas
	// since the last TakeChangedCells — the change feed coordinators hand
	// to standing-query evaluation. Cell positions are geometry-relative
	// (width·depth·seed), identical across parts and the merged summary.
	// changedAll stands in for the whole index space when cell granularity
	// is unavailable: full baselines, whole-part replacements, or an
	// accumulation past maxTrackedCells.
	changed    []int
	changedAll bool

	fulls, deltas uint64
}

// maxTrackedCells caps the changed-cell accumulation; past it, the set
// degrades to "everything changed" rather than growing without bound.
const maxTrackedCells = 4096

// noteCell records one changed cell into both accumulations: the external
// change feed (TakeChangedCells) and the merged-cache dirty set. A negative
// index signals that cell granularity was lost and every cell may have
// changed.
func (st *DeltaState) noteCell(idx int) {
	noteInto(&st.changed, &st.changedAll, idx)
	noteInto(&st.mergedDirty, &st.mergedDirtyAll, idx)
}

func noteInto(cells *[]int, all *bool, idx int) {
	if *all {
		return
	}
	if idx < 0 || len(*cells) >= maxTrackedCells {
		*cells, *all = nil, true
		return
	}
	*cells = append(*cells, idx)
}

// TakeChangedCells returns and clears the cell indices changed by applies
// since the previous call. all reports that cell granularity was lost
// (full baseline, whole-part swap, overflow) and every cell may have
// changed. The returned slice may hold duplicates.
func (st *DeltaState) TakeChangedCells() (cells []int, all bool) {
	cells, all = st.changed, st.changedAll
	st.changed, st.changedAll = nil, false
	return cells, all
}

// HasBaseline reports whether a baseline has been applied.
func (st *DeltaState) HasBaseline() bool { return len(st.parts) > 0 }

// Cursor names the state currently held — the value to present on the next
// pull. Zero until a baseline with a cursor is applied, and zero again
// whenever the producer does not speak the protocol (so the puller keeps
// requesting full snapshots).
func (st *DeltaState) Cursor() Cursor {
	if !st.HasBaseline() || st.epoch == 0 {
		return Cursor{}
	}
	return Cursor{Epoch: st.epoch, Vers: append([]uint64(nil), st.vers...)}
}

// FullApplies and DeltaApplies report how many full baselines and
// incremental deltas this state has absorbed — the observability hook the
// fallback tests (and coordinator stats) read.
func (st *DeltaState) FullApplies() uint64  { return st.fulls }
func (st *DeltaState) DeltaApplies() uint64 { return st.deltas }

// Reset drops the baseline; the next Cursor is zero and the next pull must
// be full. A coordinator that keeps serving its previous view across a
// site's bad pull snapshots the materialization before resetting.
func (st *DeltaState) Reset() { *st = DeltaState{fulls: st.fulls, deltas: st.deltas} }

// Apply absorbs one pull: payload plus the cursor and full flag the
// producer returned alongside it. Any validation failure — wrong epoch,
// version mismatch, torn or corrupt payload — drops the baseline and
// returns the error, so the caller's next pull re-baselines with a full
// snapshot. A failed Apply never leaves a half-updated baseline in use.
func (st *DeltaState) Apply(payload []byte, cur Cursor, full bool) error {
	if err := st.apply(payload, cur, full); err != nil {
		st.Reset()
		return err
	}
	if full {
		st.fulls++
	} else {
		st.deltas++
	}
	return nil
}

func (st *DeltaState) apply(payload []byte, cur Cursor, full bool) error {
	if len(payload) == 0 {
		return errors.New("core: empty snapshot payload")
	}
	if full {
		return st.applyFull(payload, cur)
	}
	if !st.HasBaseline() || st.epoch == 0 {
		return errors.New("core: delta payload without a baseline")
	}
	switch payload[0] {
	case wireDelta:
		if len(st.parts) != 1 {
			return fmt.Errorf("core: single-part delta against %d-part baseline", len(st.parts))
		}
		ver, err := st.parts[0].applyDelta(payload, st.epoch, st.vers[0], st.noteCell)
		if err != nil {
			return err
		}
		if len(cur.Vers) != 1 || cur.Vers[0] != ver {
			return errors.New("core: delta cursor does not match applied version")
		}
		st.vers[0] = ver
		if n := st.parts[0].Now(); n > st.now {
			st.now = n
		}
		return nil
	case wireMultiDelta:
		return st.applyMultiDelta(payload, cur)
	default:
		return fmt.Errorf("core: unknown delta tag 0x%02x", payload[0])
	}
}

func (st *DeltaState) applyFull(payload []byte, cur Cursor) error {
	switch payload[0] {
	case wireECM, wireSparse:
		sk, err := UnmarshalAny(payload)
		if err != nil {
			return err
		}
		sk.Advance(sk.Now()) // protocol state is the settled state
		st.parts = []*Sketch{sk}
		st.now = sk.Now()
	case wireMultiFull:
		epoch, now, parts, err := decodeMultiFull(payload)
		if err != nil {
			return err
		}
		if !cur.IsZero() && cur.Epoch != epoch {
			return errors.New("core: baseline epoch does not match its cursor")
		}
		for _, p := range parts {
			p.Advance(now) // settle to the engine clock up front
		}
		st.parts = parts
		st.now = now
	default:
		return fmt.Errorf("core: unknown snapshot tag 0x%02x", payload[0])
	}
	// A fresh baseline invalidates any cell-granular accumulation and the
	// merged cache (the old parts are gone; patching has nothing to patch).
	st.changed, st.changedAll = nil, true
	st.merged, st.mergedDirty, st.mergedDirtyAll = nil, nil, false
	if cur.IsZero() {
		// Producer does not speak cursors (legacy server, plain snapshot
		// source): keep pulling full.
		st.epoch, st.vers = 0, nil
	} else {
		if len(cur.Vers) != len(st.parts) {
			return fmt.Errorf("core: cursor names %d parts, baseline holds %d", len(cur.Vers), len(st.parts))
		}
		st.epoch = cur.Epoch
		st.vers = append([]uint64(nil), cur.Vers...)
	}
	return nil
}

func (st *DeltaState) applyMultiDelta(payload []byte, cur Cursor) error {
	off := 1
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated multipart delta")
		}
		off += n
		return v, nil
	}
	epoch, err := getU()
	if err != nil {
		return err
	}
	if epoch != st.epoch {
		return fmt.Errorf("core: multipart delta epoch %x does not match %x", epoch, st.epoch)
	}
	nparts, err := getU()
	if err != nil {
		return err
	}
	if int(nparts) != len(st.parts) {
		return fmt.Errorf("core: multipart delta names %d parts, baseline holds %d", nparts, len(st.parts))
	}
	now, err := getU()
	if err != nil {
		return err
	}
	nChanged, err := getU()
	if err != nil {
		return err
	}
	if nChanged > nparts {
		return errors.New("core: multipart delta changes more parts than exist")
	}
	if len(cur.Vers) != len(st.parts) {
		return errors.New("core: multipart delta cursor part count mismatch")
	}
	newVers := append([]uint64(nil), st.vers...)
	prev := 0
	for k := uint64(0); k < nChanged; k++ {
		dIdx, err := getU()
		if err != nil {
			return err
		}
		// Same int-wrap guard as the cell path: bound before converting.
		if dIdx > uint64(len(st.parts)) {
			return fmt.Errorf("core: multipart delta part index increment %d out of range", dIdx)
		}
		idx := prev + int(dIdx)
		if idx >= len(st.parts) || (k > 0 && dIdx == 0) {
			return fmt.Errorf("core: multipart delta part index %d out of range", idx)
		}
		prev = idx
		ln, err := getU()
		if err != nil {
			return err
		}
		if ln > uint64(len(payload)-off) {
			return errors.New("core: truncated multipart sub-delta")
		}
		sub := payload[off : off+int(ln)]
		off += int(ln)
		if len(sub) > 0 && (sub[0] == wireECM || sub[0] == wireSparse) {
			// Whole-part replacement: how a producer without cell-granular
			// change tracking ships a changed stripe. The part's new version
			// comes from the cursor alone.
			sk, err := UnmarshalAny(sub)
			if err != nil {
				return fmt.Errorf("core: part %d: %w", idx, err)
			}
			sk.Advance(sk.Now())
			st.parts[idx] = sk
			newVers[idx] = cur.Vers[idx]
			// No cell granularity on replacement: anything may differ, and
			// the merged cache cannot be patched across a part-object swap.
			st.changed, st.changedAll = nil, true
			st.merged, st.mergedDirty, st.mergedDirtyAll = nil, nil, false
			continue
		}
		ver, err := st.parts[idx].applyDelta(sub, st.epoch, st.vers[idx], st.noteCell)
		if err != nil {
			return fmt.Errorf("core: part %d: %w", idx, err)
		}
		newVers[idx] = ver
	}
	if off != len(payload) {
		return errors.New("core: trailing bytes in multipart delta")
	}
	// The cursor must name exactly the state we just built: changed parts
	// at their sub-delta versions, unchanged parts where they were.
	for i, v := range newVers {
		if cur.Vers[i] != v {
			return fmt.Errorf("core: multipart delta cursor version mismatch at part %d", i)
		}
	}
	st.vers = newVers
	if now > st.now {
		st.now = now
	}
	// Settle every part — changed or not — to the engine clock with expiry
	// noting. Sub-deltas only advance their own part to its stripe clock,
	// and an unchanged part ships zero bytes yet still expires under the
	// moving engine clock: both gaps would otherwise leak expired content
	// past the change feed (and past the merged-cache patch, which trusts
	// the feed to name every divergent cell).
	for _, p := range st.parts {
		if p.Now() < st.now {
			p.AdvanceNoting(st.now, st.noteCell)
		}
	}
	return nil
}

func decodeMultiFull(payload []byte) (epoch uint64, now Tick, parts []*Sketch, err error) {
	off := 1
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated multipart baseline")
		}
		off += n
		return v, nil
	}
	if epoch, err = getU(); err != nil {
		return 0, 0, nil, err
	}
	nparts, err := getU()
	if err != nil {
		return 0, 0, nil, err
	}
	if nparts == 0 || nparts > maxDeltaParts {
		return 0, 0, nil, fmt.Errorf("core: multipart baseline declares %d parts", nparts)
	}
	if now, err = getU(); err != nil {
		return 0, 0, nil, err
	}
	parts = make([]*Sketch, nparts)
	for i := range parts {
		ln, err := getU()
		if err != nil {
			return 0, 0, nil, err
		}
		if ln > uint64(len(payload)-off) {
			return 0, 0, nil, errors.New("core: truncated multipart baseline part")
		}
		sk, err := UnmarshalAny(payload[off : off+int(ln)])
		if err != nil {
			return 0, 0, nil, fmt.Errorf("core: baseline part %d: %w", i, err)
		}
		off += int(ln)
		parts[i] = sk
	}
	if off != len(payload) {
		return 0, 0, nil, errors.New("core: trailing bytes in multipart baseline")
	}
	return epoch, now, parts, nil
}

// Materialize returns an independent sketch of the producer's combined
// state at the held cursor: the single part cloned, or the parts merged
// (with the same order-preserving ⊕, over parts advanced to the engine
// clock, that the producer's own full snapshot path uses — which is what
// makes delta reconstruction byte-identical to full pulls). The result is
// freshly owned on every call.
func (st *DeltaState) Materialize() (*Sketch, error) {
	m, err := st.MaterializeShared()
	if err != nil {
		return nil, err
	}
	return m.Snapshot()
}

// MaterializeShared is Materialize without the defensive clone: it returns
// the combined summary the state holds internally — the single part itself,
// or the cached cross-part merge, patched in place (PatchMerged) from the
// cells the applied deltas actually changed rather than re-merged P-ways.
// The caller must treat the result as read-only and must not retain it
// across a later Apply, which mutates it; a coordinator serving many sites
// uses this to feed its own merge without one arena clone per site per
// interval. The patched cache is byte-identical (Marshal) to a from-scratch
// Merge of the parts — the identity the delta equivalence tests pin.
func (st *DeltaState) MaterializeShared() (*Sketch, error) {
	if !st.HasBaseline() {
		return nil, errors.New("core: no baseline to materialize")
	}
	// Applies settle parts to the engine clock already; this catches states
	// populated before that invariant held (and costs nothing when settled).
	for _, p := range st.parts {
		if p.Now() < st.now {
			p.AdvanceNoting(st.now, st.noteCell)
		}
	}
	if len(st.parts) == 1 {
		st.mergedDirty, st.mergedDirtyAll = nil, false
		return st.parts[0], nil
	}
	switch {
	case st.merged == nil:
		m, err := Merge(st.parts...)
		if err != nil {
			return nil, err
		}
		st.merged = m
	case st.mergedDirtyAll || len(st.mergedDirty) > 0 || st.merged.Now() < st.now:
		if err := PatchMerged(st.merged, st.parts, st.mergedDirty, st.mergedDirtyAll, nil); err != nil {
			// Patching validates before mutating, so the cache is intact but
			// stale; rebuild it from scratch.
			m, merr := Merge(st.parts...)
			if merr != nil {
				return nil, merr
			}
			st.merged = m
		}
	}
	st.mergedDirty, st.mergedDirtyAll = nil, false
	return st.merged, nil
}
