package core

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"ecmsketch/internal/window"
)

// Golden-vector tests for the delta wire format. Delta payloads carry
// changed cells in the config-elided bare form (window.AppendMarshalCellBare);
// these vectors pin that framing byte-for-byte so it cannot drift silently,
// and the fallback test proves the decoder still accepts the older framing
// that shipped full-form (config-carrying) cells, so payloads from producers
// predating the bare form keep applying. Full snapshots are pinned
// separately by golden_test.go — eliding per-cell configs from deltas left
// them untouched.
//
// The producer is rebuilt deterministically: every input to the payload —
// events, clock, seed, identifier salt, epoch — is fixed, so the emitted
// bytes are a pure function of the encoder.

const (
	deltaGoldenEpoch = 0x5eed_cafe_f00d_d1ce
	deltaGoldenSalt  = 0x1122_3344_5566_7788

	// deltaGoldenBaseHex is the producer's full snapshot (standard Marshal
	// bytes) at the baseline version; deltaGoldenDeltaHex is the wireDelta
	// payload for the mutations between baseline and final state, cells in
	// bare form.
	deltaGoldenBaseHex  = "ec000000000000d03f000000000000d03f000000e80700091802804a7fb97937be3f804a7fb97937be3f140888ef99abc5e88c9111002be100e807804a7fb97937be3f000000000000c03fe8070914060a000100000100000100000100000105000119e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe8070914001fe100e807804a7fb97937be3f000000000000c03fe8070914020c000100000119e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe8070914001fe100e807804a7fb97937be3f000000000000c03fe8070914020c000100000119e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe8070914002be100e807804a7fb97937be3f000000000000c03fe8070914060a000100000100000100000100000105000119e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe80709140019e100e807804a7fb97937be3f000000000000c03fe807091400"
	deltaGoldenDeltaHex = "edcea3b780efdff2f65e060ab0091488ef99abc5e88c91110004001de4b00908bc050002000001000001000001000001000001000001000001050ee4b00903c1050001000001000001221de4b00908bc050002000001000001000001000001000001000001000001060ee4b00903c1050001000001000001"
	// deltaGoldenFinalHex is the producer's Marshal after the delta — what a
	// receiver that applies either payload form over the baseline must hold.
	deltaGoldenFinalHex = "ec000000000000d03f000000000000d03f000000e80700091802804a7fb97937be3f804a7fb97937be3fb0091488ef99abc5e88c91110033e100e807804a7fb97937be3f000000000000c03fe80709b00908bc0500020000010000010000010000010000010000010000011ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b0090024e100e807804a7fb97937be3f000000000000c03fe80709b00903c10500010000010000011ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b0090033e100e807804a7fb97937be3f000000000000c03fe80709b00908bc0500020000010000010000010000010000010000010000011ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b0090024e100e807804a7fb97937be3f000000000000c03fe80709b00903c10500010000010000011ae100e807804a7fb97937be3f000000000000c03fe80709b009001ae100e807804a7fb97937be3f000000000000c03fe80709b00900"
)

// deltaGoldenProducer replays the fixed history: a baseline batch, then a
// second wave of arrivals plus enough clock movement to expire part of the
// baseline, so the delta exercises replaced cells, emptied cells and
// untouched cells at once. Returns the sketch settled at the baseline
// version (phase 0) or the final version (phase 1).
func deltaGoldenProducer(t *testing.T, phase int) *Sketch {
	t.Helper()
	s, err := New(Params{Epsilon: 0.25, Delta: 0.25, WindowLength: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.epoch = deltaGoldenEpoch
	s.SetIDSalt(deltaGoldenSalt)
	s.AddBatch([]Event{
		{Key: 3, Tick: 10, N: 5},
		{Key: 7, Tick: 12, N: 2},
		{Key: 3, Tick: 15, N: 1},
	})
	s.Advance(20)
	if phase == 0 {
		return s
	}
	s.AddBatch([]Event{
		{Key: 3, Tick: 700, N: 9},
		{Key: 11, Tick: 705, N: 3},
	})
	s.Advance(1200) // slides the window past the baseline arrivals
	return s
}

// TestGoldenDeltaEncode pins the bare-cell wireDelta framing: the
// deterministic producer must emit exactly the golden bytes, and its full
// snapshots at both ends must match their pinned forms.
func TestGoldenDeltaEncode(t *testing.T) {
	base := deltaGoldenProducer(t, 0)
	if got := hex.EncodeToString(base.Marshal()); got != deltaGoldenBaseHex {
		t.Fatalf("baseline snapshot drifted from golden:\n got %s\nwant %s", got, deltaGoldenBaseHex)
	}
	baseVer := base.DeltaVersion()

	final := deltaGoldenProducer(t, 1)
	payload := final.AppendDeltaSince(nil, deltaGoldenEpoch, baseVer)
	if got := hex.EncodeToString(payload); got != deltaGoldenDeltaHex {
		t.Fatalf("delta payload drifted from golden:\n got %s\nwant %s", got, deltaGoldenDeltaHex)
	}
	if got := hex.EncodeToString(final.Marshal()); got != deltaGoldenFinalHex {
		t.Fatalf("final snapshot drifted from golden:\n got %s\nwant %s", got, deltaGoldenFinalHex)
	}
}

// TestGoldenDeltaDecode applies the pinned payload over the pinned baseline
// and requires byte-identical reconstruction — the decoder contract frozen
// against the golden bytes rather than against whatever the current encoder
// happens to emit.
func TestGoldenDeltaDecode(t *testing.T) {
	receiver := mustGoldenSketch(t, deltaGoldenBaseHex)
	payload, err := hex.DecodeString(deltaGoldenDeltaHex)
	if err != nil {
		t.Fatal(err)
	}
	// The held base version is cursor state, tracked by DeltaState rather
	// than the decoded sketch; here it is the producer's baseline version.
	baseVer := deltaGoldenProducer(t, 0).DeltaVersion()
	var replaced []int
	newVer, err := receiver.applyDelta(payload, deltaGoldenEpoch, baseVer, func(idx int) {
		replaced = append(replaced, idx)
	})
	if err != nil {
		t.Fatalf("applying golden delta: %v", err)
	}
	if got := hex.EncodeToString(receiver.Marshal()); got != deltaGoldenFinalHex {
		t.Fatalf("golden delta reconstruction diverged:\n got %s\nwant %s", got, deltaGoldenFinalHex)
	}
	if newVer != deltaGoldenProducer(t, 1).DeltaVersion() {
		t.Fatalf("golden delta advanced to version %d, want the producer's", newVer)
	}
	if len(replaced) == 0 {
		t.Fatal("golden delta replaced no cells; the vector should carry changes")
	}
}

// appendDeltaFullForm re-frames a sketch's delta with full-form
// (config-carrying) cells — the framing producers shipped before the bare
// form. Header and per-cell index/length framing are identical; only the
// cell encodings differ.
func appendDeltaFullForm(s *Sketch, epoch, base uint64) []byte {
	dst := []byte{wireDelta}
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, base)
	dst = binary.AppendUvarint(dst, s.DeltaVersion())
	dst = binary.AppendUvarint(dst, uint64(s.now))
	dst = binary.AppendUvarint(dst, s.count)
	dst = binary.AppendUvarint(dst, s.salt)
	dst = binary.AppendUvarint(dst, s.seq)
	changed := 0
	for i := 0; i < s.d*s.w; i++ {
		if s.eh.CellChangedSince(i, base) {
			changed++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(changed))
	prev := 0
	var cell []byte
	var scratch []window.Bucket
	for i := 0; i < s.d*s.w; i++ {
		if !s.eh.CellChangedSince(i, base) {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i-prev))
		prev = i
		cell, scratch = s.eh.AppendMarshalCell(cell[:0], i, scratch)
		dst = binary.AppendUvarint(dst, uint64(len(cell)))
		dst = append(dst, cell...)
	}
	return dst
}

// TestGoldenDeltaFullFormFallback: a payload framed the old way — same
// header, full-form cells — must still apply, reconstructing exactly the
// same state as the bare-form golden. This is the compatibility half of the
// bare-cell change: old producers keep working against new receivers.
func TestGoldenDeltaFullFormFallback(t *testing.T) {
	final := deltaGoldenProducer(t, 1)
	baseVer := deltaGoldenProducer(t, 0).DeltaVersion()
	oldForm := appendDeltaFullForm(final, deltaGoldenEpoch, baseVer)

	bare, err := hex.DecodeString(deltaGoldenDeltaHex)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(oldForm, bare) {
		t.Fatal("full-form payload should differ from the bare golden (configs on the wire)")
	}
	if len(oldForm) <= len(bare) {
		t.Fatalf("full-form payload (%d B) not larger than bare (%d B); config elision buys nothing", len(oldForm), len(bare))
	}

	receiver := mustGoldenSketch(t, deltaGoldenBaseHex)
	if _, err := receiver.applyDelta(oldForm, deltaGoldenEpoch, baseVer, nil); err != nil {
		t.Fatalf("applying full-form delta: %v", err)
	}
	if got := hex.EncodeToString(receiver.Marshal()); got != deltaGoldenFinalHex {
		t.Fatalf("full-form reconstruction diverged:\n got %s\nwant %s", got, deltaGoldenFinalHex)
	}

	// A full-form cell whose embedded config does not match the receiver's
	// bank is rejected — the config check is what the bare form elides, not
	// skips.
	other, err := New(Params{Epsilon: 0.25, Delta: 0.25, WindowLength: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	other.epoch = deltaGoldenEpoch
	other.SetIDSalt(deltaGoldenSalt)
	other.AddN(3, 10, 5)
	mismatched := appendDeltaFullForm(other, deltaGoldenEpoch, 0)
	fresh := mustGoldenSketch(t, deltaGoldenBaseHex)
	if _, err := fresh.applyDelta(mismatched, deltaGoldenEpoch, 0, nil); err == nil {
		t.Fatal("full-form delta with mismatched cell config applied; want config error")
	}
}
