package core

import (
	"bytes"
	"testing"

	"ecmsketch/internal/window"
)

func deltaTestParams() Params {
	return Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, Seed: 42}
}

// TestCursorRoundTrip pins the wire form: zero ↔ "0"/"" and binary round
// trips, with malformed strings rejected.
func TestCursorRoundTrip(t *testing.T) {
	zero, err := ParseCursor("")
	if err != nil || !zero.IsZero() {
		t.Fatalf("empty string: got %+v, %v", zero, err)
	}
	if got := (Cursor{}).String(); got != "0" {
		t.Fatalf("zero cursor string = %q", got)
	}
	c := Cursor{Epoch: 0xdeadbeefcafe, Vers: []uint64{0, 7, 1 << 60}}
	back, err := ParseCursor(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != c.Epoch || len(back.Vers) != 3 || back.Vers[2] != 1<<60 {
		t.Fatalf("round trip: got %+v want %+v", back, c)
	}
	for _, bad := range []string{"!!!", "AAAA", "kg"} {
		if _, err := ParseCursor(bad); err == nil {
			t.Errorf("ParseCursor(%q) accepted", bad)
		}
	}
}

// TestDeltaReconstructsBitIdentical is the core equivalence property: a
// receiver that baselines once and then only ever applies deltas holds
// state byte-identical (Marshal) to the producer at every cursor, across
// mutation rounds, idle rounds (clock-only movement) and window expiry.
func TestDeltaReconstructsBitIdentical(t *testing.T) {
	s, err := New(deltaTestParams())
	if err != nil {
		t.Fatal(err)
	}
	var st DeltaState
	tick := Tick(1)
	for round := 0; round < 30; round++ {
		switch {
		case round%7 == 3:
			// Idle round: the clock moves (expiring content), nothing arrives.
			tick += 400
			s.Advance(tick)
		case round%5 == 4:
			// Dense round.
			var evs []Event
			for k := 0; k < 50; k++ {
				tick++
				evs = append(evs, Event{Key: uint64(k * 17), Tick: tick, N: uint64(k%3 + 1)})
			}
			s.AddBatch(evs)
		default:
			// Sparse round: a couple of keys move.
			tick += 90
			s.AddN(uint64(round), tick, 2)
			s.AddN(12345, tick, 1)
		}
		payload, cur, full, err := s.DeltaSnapshot(st.Cursor())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round > 0 && full {
			t.Fatalf("round %d: expected a delta, got a full snapshot", round)
		}
		if err := st.Apply(payload, cur, full); err != nil {
			t.Fatalf("round %d: apply: %v", round, err)
		}
		got, err := st.Materialize()
		if err != nil {
			t.Fatalf("round %d: materialize: %v", round, err)
		}
		if !bytes.Equal(got.Marshal(), s.Marshal()) {
			t.Fatalf("round %d: reconstruction diverged from producer", round)
		}
	}
	if st.DeltaApplies() < 25 || st.FullApplies() != 1 {
		t.Fatalf("applies: %d delta / %d full, want ≥25 / 1", st.DeltaApplies(), st.FullApplies())
	}
}

// TestDeltaSparsity: a one-key change ships a payload proportional to d
// cells, far below the full encoding.
func TestDeltaSparsity(t *testing.T) {
	p := deltaTestParams()
	p.Epsilon = 0.01 // wide sketch so one key touches a small fraction of cells
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		s.Add(uint64(k), Tick(k+1))
	}
	var st DeltaState
	payload, cur, full, _ := s.DeltaSnapshot(Cursor{})
	if !full {
		t.Fatal("bootstrap pull not full")
	}
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	fullLen := len(payload)
	s.Add(99999, 600)
	payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
	if full {
		t.Fatal("expected delta")
	}
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	if len(payload)*10 > fullLen {
		t.Fatalf("one-key delta %dB not ≪ full %dB", len(payload), fullLen)
	}
	got, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), s.Marshal()) {
		t.Fatal("sparse delta reconstruction diverged")
	}
}

// TestDeltaWaveCellGranular: since the wave engines moved onto the flat
// arenas they ship cell-granular deltas exactly like the exponential
// histograms — empty when idle, a few changed cells (not a full snapshot)
// after a single-key mutation, reconstructing byte-identically.
func TestDeltaWaveCellGranular(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoDW, window.AlgoRW} {
		t.Run(algo.String(), func(t *testing.T) {
			p := deltaTestParams()
			p.Algorithm = algo
			p.UpperBound = 1 << 16
			s, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			s.Add(1, 1)
			var st DeltaState
			payload, cur, full, _ := s.DeltaSnapshot(st.Cursor())
			if !full {
				t.Fatal("bootstrap pull not full")
			}
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatal(err)
			}
			// Idle: an empty delta, applied cleanly.
			payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
			if full {
				t.Fatal("idle wave pull should be an (empty) delta")
			}
			if len(payload) > 64 {
				t.Fatalf("idle wave delta is %dB", len(payload))
			}
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatal(err)
			}
			// Mutated: an incremental delta shipping only the touched cells,
			// far below a full snapshot.
			fullLen := len(s.Marshal())
			s.Add(2, 5)
			payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
			if full {
				t.Fatal("mutated wave pull should be an incremental delta")
			}
			if len(payload)*4 > fullLen {
				t.Fatalf("one-key wave delta %dB not ≪ full %dB", len(payload), fullLen)
			}
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatal(err)
			}
			got, err := st.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Marshal(), s.Marshal()) {
				t.Fatal("wave reconstruction diverged")
			}
		})
	}
}

// TestDeltaExpiryJoinsChangeFeed: applying a delta that advances the
// receiver's clock replays the producer's expiry, and the cells that
// replay mutates must join the changed-cell feed even though no encoding
// for them was shipped — their estimates moved (for the wave synopses
// possibly upward, when expiry forces a coarser level), and standing-query
// evaluation over the feed must treat them as touched.
func TestDeltaExpiryJoinsChangeFeed(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		t.Run(algo.String(), func(t *testing.T) {
			p := deltaTestParams()
			p.Algorithm = algo
			p.UpperBound = 1 << 16
			s, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 8; k++ {
				s.Add(uint64(k), Tick(k+1))
			}
			var st DeltaState
			payload, cur, full, _ := s.DeltaSnapshot(st.Cursor())
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatal(err)
			}
			st.TakeChangedCells() // drop the baseline's changed-all marker

			// Pure advance far past the window: every cell's content expires
			// on the producer, and the pull ships a delta with zero cell
			// encodings — only the new clock.
			s.Advance(5000)
			payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
			if full {
				t.Fatal("advance-only pull should be a delta")
			}
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatal(err)
			}
			cells, all := st.TakeChangedCells()
			if all {
				t.Fatal("advance-only delta must keep cell granularity")
			}
			if len(cells) == 0 {
				t.Fatal("expiry emptied every touched cell, yet the change feed is empty")
			}
			got, err := st.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Marshal(), s.Marshal()) {
				t.Fatal("expiry replay diverged from producer")
			}

			// A second identical pull changes nothing and notes nothing.
			payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatal(err)
			}
			if cells, all := st.TakeChangedCells(); all || len(cells) != 0 {
				t.Fatalf("idle pull noted changes: %v all=%v", cells, all)
			}
		})
	}
}

// TestDeltaIndexOverflowRejected: a crafted payload whose cell- or
// part-index varint would wrap int must error (and drop the baseline), not
// panic — a compromised site must never crash the coordinator.
func TestDeltaIndexOverflowRejected(t *testing.T) {
	s, err := New(deltaTestParams())
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1, 1)
	craft := func(changed bool) []byte {
		// Header: tag, epoch, base, ver, now, count, salt, seq, nChanged=1,
		// then a cell index increment of 2^63.
		dst := []byte{wireDelta}
		for _, v := range []uint64{s.epoch, s.DeltaVersion(), s.DeltaVersion(), 5, 1, s.salt, s.seq, 1} {
			dst = appendUvarintForTest(dst, v)
		}
		if changed {
			dst = appendUvarintForTest(dst, 1<<63)
			dst = appendUvarintForTest(dst, 0)
		}
		return dst
	}
	var st DeltaState
	payload, cur, full, _ := s.DeltaSnapshot(Cursor{})
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	evil := craft(true)
	if err := st.Apply(evil, st.Cursor(), false); err == nil {
		t.Fatal("overflowing cell index accepted")
	}
	if st.HasBaseline() {
		t.Fatal("overflowing payload left a baseline in use")
	}

	// Multipart part-index variant against a sharded-shaped baseline.
	parts := [][]byte{s.Marshal(), s.Marshal()}
	epoch := NewEpoch()
	base := EncodeMultiFull(epoch, s.Now(), parts)
	cur = Cursor{Epoch: epoch, Vers: []uint64{1, 1}}
	var mst DeltaState
	if err := mst.Apply(base, cur, true); err != nil {
		t.Fatal(err)
	}
	evil = []byte{wireMultiDelta}
	for _, v := range []uint64{epoch, 2, 5, 1, 1 << 63, 0} { // partIdx increment 2^63
		evil = appendUvarintForTest(evil, v)
	}
	if err := mst.Apply(evil, cur, false); err == nil {
		t.Fatal("overflowing part index accepted")
	}
}

func appendUvarintForTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// TestDeltaInvalidation: unknown epochs, future versions and torn payloads
// reject, drop the baseline, and recover through the next full pull.
func TestDeltaInvalidation(t *testing.T) {
	s, err := New(deltaTestParams())
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1, 1)
	var st DeltaState
	payload, cur, full, _ := s.DeltaSnapshot(Cursor{})
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}

	// Producer restart: a fresh engine with the same content has a new
	// epoch, so the held cursor yields a full snapshot.
	s2, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	_, _, full, _ = s2.DeltaSnapshot(st.Cursor())
	if !full {
		t.Fatal("restarted producer must not honor a stale-epoch cursor")
	}

	// Future cursor: versions the producer never issued yield full.
	bad := st.Cursor()
	bad.Vers[0] += 1000
	_, _, full, _ = s.DeltaSnapshot(bad)
	if !full {
		t.Fatal("future cursor must yield a full snapshot")
	}

	// Torn delta body: applying a truncated payload errors and drops the
	// baseline, so the next pull re-baselines.
	s.Add(2, 10)
	payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
	if full {
		t.Fatal("expected delta")
	}
	if err := st.Apply(payload[:len(payload)-3], cur, full); err == nil {
		t.Fatal("torn delta accepted")
	}
	if st.HasBaseline() {
		t.Fatal("torn apply must drop the baseline")
	}
	if !st.Cursor().IsZero() {
		t.Fatal("cursor after torn apply must be zero")
	}
	payload, cur, full, _ = s.DeltaSnapshot(st.Cursor())
	if !full {
		t.Fatal("zero cursor must yield full")
	}
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	got, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), s.Marshal()) {
		t.Fatal("recovery reconstruction diverged")
	}
}
