package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/hashing"
	"ecmsketch/internal/window"
)

// Tick re-exports the window package's logical timestamp.
type Tick = window.Tick

// Params configures an ECM-sketch.
type Params struct {
	// Epsilon is the total error budget ε of the sketch. It is divided
	// between the Count-Min array and the sliding-window counters according
	// to Query and Algorithm, unless an explicit Split is given.
	Epsilon float64
	// Delta is the total failure probability δ. Deterministic window
	// synopses charge it entirely to the Count-Min array (δ_cm = δ,
	// Theorem 1); randomized waves split it evenly (Theorem 3).
	Delta float64
	// Query selects which query type memory is optimized for.
	Query QueryKind
	// Algorithm selects the sliding-window synopsis implementing each
	// counter: window.AlgoEH (default), window.AlgoDW, or window.AlgoRW.
	Algorithm window.Algorithm
	// Model selects time-based or count-based windows.
	Model window.Model
	// WindowLength is N, the window length in ticks.
	WindowLength Tick
	// UpperBound is u(N,S), the per-window arrival bound required by wave
	// synopses; 0 defaults to WindowLength.
	UpperBound uint64
	// Seed derives all hash functions. Sketches must share a Seed (and all
	// dimensions) to be mergeable.
	Seed uint64
	// Split optionally overrides the automatic ε division.
	Split *Split
	// Width and Depth optionally override the derived Count-Min dimensions.
	Width, Depth int
}

// ecmSaltCounter hands out distinct default identifier salts to sketches in
// the same process so that auto-generated randomized-wave event identifiers
// never collide across sites.
var ecmSaltCounter uint64

// Sketch is an ECM-sketch: a d×w Count-Min array whose counters are sliding
// window synopses. It supports point queries, inner-product and self-join
// queries over any sub-range of the window, and order-preserving aggregation
// with other sketches of identical configuration.
//
// Sketch is not safe for concurrent use; distributed sites each own one.
type Sketch struct {
	params   Params
	split    Split
	fam      *hashing.Family
	counters []window.Counter // row-major d×w
	w, d     int
	wcfg     window.Config
	now      Tick
	count    uint64 // arrivals (total inserted value) since stream start
	salt     uint64
	seq      uint64
}

// New constructs an ECM-sketch.
func New(p Params) (*Sketch, error) {
	split, err := resolveSplit(&p)
	if err != nil {
		return nil, err
	}
	w, d := p.Width, p.Depth
	if w == 0 {
		w = int(math.Ceil(math.E / split.EpsCM))
	}
	deltaCM := p.Delta
	if p.Algorithm == window.AlgoRW {
		deltaCM = p.Delta / 2
	}
	if d == 0 {
		if !(deltaCM > 0 && deltaCM < 1) {
			return nil, fmt.Errorf("core: Delta must be in (0,1), got %v", p.Delta)
		}
		d = int(math.Ceil(math.Log(1 / deltaCM)))
	}
	if w <= 0 || d <= 0 {
		return nil, fmt.Errorf("core: dimensions must be positive, got %dx%d", d, w)
	}
	fam, err := hashing.NewFamily(p.Seed, d, w)
	if err != nil {
		return nil, err
	}
	wcfg := window.Config{
		Model:      p.Model,
		Length:     p.WindowLength,
		Epsilon:    split.EpsSW,
		Delta:      p.Delta / 2, // only used by RW counters
		UpperBound: p.UpperBound,
		Seed:       p.Seed,
	}
	s := &Sketch{
		params:   p,
		split:    split,
		fam:      fam,
		counters: make([]window.Counter, d*w),
		w:        w,
		d:        d,
		wcfg:     wcfg,
		salt:     hashing.Mix64(atomic.AddUint64(&ecmSaltCounter, 1) * 0x94d049bb133111eb),
	}
	for i := range s.counters {
		c, err := window.New(p.Algorithm, wcfg)
		if err != nil {
			return nil, err
		}
		s.counters[i] = c
	}
	return s, nil
}

func resolveSplit(p *Params) (Split, error) {
	if p.WindowLength == 0 {
		return Split{}, errors.New("core: WindowLength must be positive")
	}
	if p.Split != nil {
		if !p.Split.valid() {
			return Split{}, fmt.Errorf("core: explicit split %+v invalid", *p.Split)
		}
		return *p.Split, nil
	}
	if !(p.Epsilon > 0 && p.Epsilon < 1) {
		return Split{}, fmt.Errorf("core: Epsilon must be in (0,1), got %v", p.Epsilon)
	}
	var s Split
	switch {
	case p.Algorithm == window.AlgoRW:
		s = SplitPointRW(p.Epsilon)
	case p.Query == InnerProductQuery:
		s = SplitInnerProduct(p.Epsilon)
	default:
		s = SplitPoint(p.Epsilon)
	}
	if !s.valid() {
		return Split{}, fmt.Errorf("core: derived split %+v invalid for ε=%v", s, p.Epsilon)
	}
	return s, nil
}

// Params returns the sketch configuration.
func (s *Sketch) Params() Params { return s.params }

// EffectiveSplit returns the ε division in use.
func (s *Sketch) EffectiveSplit() Split { return s.split }

// Width reports the Count-Min row width.
func (s *Sketch) Width() int { return s.w }

// Depth reports the number of Count-Min rows.
func (s *Sketch) Depth() int { return s.d }

// Count reports ||a||₁: the total value inserted since stream start
// (not windowed).
func (s *Sketch) Count() uint64 { return s.count }

// Now reports the latest tick observed.
func (s *Sketch) Now() Tick { return s.now }

// SetIDSalt overrides the salt used for auto-generated randomized-wave event
// identifiers; see window.RW.SetIDSalt.
func (s *Sketch) SetIDSalt(salt uint64) { s.salt = salt }

// Add registers one arrival of item key at tick t.
func (s *Sketch) Add(key uint64, t Tick) { s.AddN(key, t, 1) }

// AddString registers one arrival of a string-keyed item at tick t.
func (s *Sketch) AddString(key string, t Tick) { s.AddN(hashing.KeyString(key), t, 1) }

// AddN registers n simultaneous arrivals of item key at tick t. For
// randomized-wave sketches each unit arrival receives a fresh unique event
// identifier shared by the d counters it lands in.
func (s *Sketch) AddN(key uint64, t Tick, n uint64) {
	if t > s.now {
		s.now = t
	}
	s.count += n
	if s.params.Algorithm == window.AlgoRW {
		for u := uint64(0); u < n; u++ {
			s.seq++
			id := hashing.Mix64(s.salt ^ s.seq)
			for j := 0; j < s.d; j++ {
				rw := s.counters[j*s.w+s.fam.Hash(j, key)].(*window.RW)
				rw.AddID(t, id)
			}
		}
		return
	}
	for j := 0; j < s.d; j++ {
		s.counters[j*s.w+s.fam.Hash(j, key)].AddN(t, n)
	}
}

// Advance moves the window of every counter forward to tick t.
func (s *Sketch) Advance(t Tick) {
	if t > s.now {
		s.now = t
	}
	for _, c := range s.counters {
		c.Advance(t)
	}
}

// Estimate answers the point query (key, r): the estimated frequency of the
// item within the last r ticks, as min_j E(h_j(key), j, r).
func (s *Sketch) Estimate(key uint64, r Tick) float64 {
	est := math.Inf(1)
	for j := 0; j < s.d; j++ {
		c := s.counters[j*s.w+s.fam.Hash(j, key)]
		// Counters are only advanced on their own arrivals; align them with
		// the sketch clock so expired content does not linger.
		c.Advance(s.now)
		if v := c.EstimateRange(r); v < est {
			est = v
		}
	}
	return est
}

// EstimateString answers a point query for a string-keyed item.
func (s *Sketch) EstimateString(key string, r Tick) float64 {
	return s.Estimate(hashing.KeyString(key), r)
}

// EstimateInterval estimates the frequency of key within the tick interval
// (from, to], an arbitrary sub-range of the window, as the difference of two
// suffix estimates per counter. The window error doubles to 2·ε_sw compared
// to suffix queries; the Count-Min collision term is unchanged.
func (s *Sketch) EstimateInterval(key uint64, from, to Tick) float64 {
	if to <= from {
		return 0
	}
	est := math.Inf(1)
	for j := 0; j < s.d; j++ {
		c := s.counters[j*s.w+s.fam.Hash(j, key)]
		c.Advance(s.now)
		v := c.EstimateSince(from) - c.EstimateSince(to)
		if v < 0 {
			v = 0
		}
		if v < est {
			est = v
		}
	}
	return est
}

// EstimateWindow answers the point query over the whole window.
func (s *Sketch) EstimateWindow(key uint64) float64 {
	return s.Estimate(key, s.wcfg.Length)
}

// InnerProduct estimates a_r ⊙ b_r = Σ_x f_a(x,r)·f_b(x,r) as
// min_j Σ_i E_a(i,j,r)·E_b(i,j,r) (Section 4.1). Both sketches must share
// configuration.
func (s *Sketch) InnerProduct(o *Sketch, r Tick) (float64, error) {
	if !s.Compatible(o) {
		return 0, errors.New("core: inner product requires identically configured sketches")
	}
	best := math.Inf(1)
	for j := 0; j < s.d; j++ {
		var sum float64
		for i := 0; i < s.w; i++ {
			a := s.counters[j*s.w+i]
			b := o.counters[j*s.w+i]
			a.Advance(s.now)
			b.Advance(o.now)
			ea := a.EstimateRange(r)
			if ea == 0 {
				continue
			}
			sum += ea * b.EstimateRange(r)
		}
		if sum < best {
			best = sum
		}
	}
	return best, nil
}

// SelfJoin estimates the second frequency moment F₂ of the stream within the
// last r ticks.
func (s *Sketch) SelfJoin(r Tick) float64 {
	v, _ := s.InnerProduct(s, r)
	return v
}

// Compatible reports whether two sketches share dimensions, window
// configuration and hash functions, and hence may be merged or joined.
func (s *Sketch) Compatible(o *Sketch) bool {
	if o == nil || s.w != o.w || s.d != o.d || !s.fam.Compatible(o.fam) {
		return false
	}
	return s.wcfg.Model == o.wcfg.Model &&
		s.wcfg.Length == o.wcfg.Length &&
		s.wcfg.Epsilon == o.wcfg.Epsilon &&
		s.params.Algorithm == o.params.Algorithm
}

// ExtractVector evaluates every counter over the last r ticks and returns
// the result as a dense real vector — the representation the geometric
// monitoring method (Section 6.2) does linear algebra on.
func (s *Sketch) ExtractVector(r Tick) *cm.Vector {
	v := cm.NewVector(s.d, s.w)
	for i, c := range s.counters {
		c.Advance(s.now)
		v.Cells[i] = c.EstimateRange(r)
	}
	return v
}

// EstimateTotal estimates ||a_r||₁, the total number of arrivals within the
// last r ticks, by averaging the counter sums of each row and taking the
// row minimum. The paper recommends this estimator (Section 6.1) over an
// auxiliary sliding window because per-cell errors cancel within a row.
func (s *Sketch) EstimateTotal(r Tick) float64 {
	best := math.Inf(1)
	for j := 0; j < s.d; j++ {
		var sum float64
		for i := 0; i < s.w; i++ {
			c := s.counters[j*s.w+i]
			c.Advance(s.now)
			sum += c.EstimateRange(r)
		}
		if sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// MemoryBytes reports the heap footprint of the sketch.
func (s *Sketch) MemoryBytes() int {
	n := 128
	for _, c := range s.counters {
		n += c.MemoryBytes()
	}
	return n
}

// Reset empties every counter, keeping the configuration.
func (s *Sketch) Reset() {
	for _, c := range s.counters {
		c.Reset()
	}
	s.now = 0
	s.count = 0
	s.seq = 0
}

// counterAt exposes a counter for white-box tests and serialization.
func (s *Sketch) counterAt(j, i int) window.Counter { return s.counters[j*s.w+i] }
