package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/hashing"
	"ecmsketch/internal/window"
)

// Tick re-exports the window package's logical timestamp.
type Tick = window.Tick

// Params configures an ECM-sketch.
type Params struct {
	// Epsilon is the total error budget ε of the sketch. It is divided
	// between the Count-Min array and the sliding-window counters according
	// to Query and Algorithm, unless an explicit Split is given.
	Epsilon float64
	// Delta is the total failure probability δ. Deterministic window
	// synopses charge it entirely to the Count-Min array (δ_cm = δ,
	// Theorem 1); randomized waves split it evenly (Theorem 3).
	Delta float64
	// Query selects which query type memory is optimized for.
	Query QueryKind
	// Algorithm selects the sliding-window synopsis implementing each
	// counter: window.AlgoEH (default), window.AlgoDW, or window.AlgoRW.
	Algorithm window.Algorithm
	// Model selects time-based or count-based windows.
	Model window.Model
	// WindowLength is N, the window length in ticks.
	WindowLength Tick
	// UpperBound is u(N,S), the per-window arrival bound required by wave
	// synopses; 0 defaults to WindowLength.
	UpperBound uint64
	// Seed derives all hash functions. Sketches must share a Seed (and all
	// dimensions) to be mergeable.
	Seed uint64
	// Split optionally overrides the automatic ε division.
	Split *Split
	// Width and Depth optionally override the derived Count-Min dimensions.
	Width, Depth int
}

// ecmSaltCounter hands out distinct default identifier salts to sketches in
// the same process so that auto-generated randomized-wave event identifiers
// never collide across sites.
var ecmSaltCounter uint64

// cellBank is the algorithm-independent surface of the flat arena engines
// (window.EHBank, window.DWBank, window.RWBank): everything the sketch needs
// per cell except ingest and serialization, which stay on the concrete types
// — ingest because the per-algorithm entry points differ (bucketed AddN
// versus per-identifier AddID), serialization because the bank encoders
// append into caller-owned scratch without interface-boxing allocations.
type cellBank interface {
	Advance(i int, t Tick)
	AdvanceAll(t Tick)
	AdvanceAllNoting(t Tick, note func(int))
	Now(i int) Tick
	EstimateSince(i int, since Tick) float64
	EstimateRange(i int, r Tick) float64
	Version() uint64
	VersionVector() (uint64, []uint64)
	RestoreVersionVector(version uint64, vers []uint64) error
	CellChangedSince(i int, since uint64) bool
	CellUntouched(i int) bool
	ResetCell(i int)
	Reset()
	MemoryBytes() int
	MarshalCellSize(i int) int
	UnmarshalCell(i int, enc []byte) error
}

// Sketch is an ECM-sketch: a d×w Count-Min array whose counters are sliding
// window synopses. It supports point queries, inner-product and self-join
// queries over any sub-range of the window, and order-preserving aggregation
// with other sketches of identical configuration.
//
// All three paper algorithms keep their d×w counters in one flat arena
// (window.EHBank, window.DWBank, window.RWBank): a contiguous slab addressed
// row-major, with no per-counter heap objects and no interface dispatch on
// the ingest path. Only the test-only exact algorithm keeps one
// window.Counter object per cell.
//
// Sketch is not safe for concurrent use; distributed sites each own one.
type Sketch struct {
	params   Params
	split    Split
	fam      *hashing.Family
	eh       *window.EHBank   // flat EH engine; non-nil iff Algorithm == AlgoEH
	dw       *window.DWBank   // flat DW engine; non-nil iff Algorithm == AlgoDW
	rw       *window.RWBank   // flat RW engine; non-nil iff Algorithm == AlgoRW
	bank     cellBank         // whichever of the three is in use, or nil
	counters []window.Counter // row-major d×w; only for the exact algorithm
	w, d     int
	wcfg     window.Config
	now      Tick
	count    uint64 // arrivals (total inserted value) since stream start
	salt     uint64
	seq      uint64
	batch    batchScratch

	// epoch identifies this engine instance to the delta-snapshot protocol
	// (see Cursor): process-random at construction, so cursors issued by a
	// predecessor — a restarted site, a re-decoded sketch — never validate
	// against this instance. Snapshot clones share the lineage (and the
	// cell versions), so they keep the epoch.
	epoch uint64
	// waveVer is the mutation counter behind DeltaVersion for per-object
	// (wave) engines; the flat engine tracks versions in the bank itself.
	waveVer uint64
}

// New constructs an ECM-sketch.
func New(p Params) (*Sketch, error) {
	split, err := resolveSplit(&p)
	if err != nil {
		return nil, err
	}
	w, d := p.Width, p.Depth
	if w == 0 {
		w = int(math.Ceil(math.E / split.EpsCM))
	}
	deltaCM := p.Delta
	if p.Algorithm == window.AlgoRW {
		deltaCM = p.Delta / 2
	}
	if d == 0 {
		if !(deltaCM > 0 && deltaCM < 1) {
			return nil, fmt.Errorf("core: Delta must be in (0,1), got %v", p.Delta)
		}
		d = int(math.Ceil(math.Log(1 / deltaCM)))
	}
	if w <= 0 || d <= 0 {
		return nil, fmt.Errorf("core: dimensions must be positive, got %dx%d", d, w)
	}
	fam, err := hashing.NewFamily(p.Seed, d, w)
	if err != nil {
		return nil, err
	}
	wcfg := window.Config{
		Model:      p.Model,
		Length:     p.WindowLength,
		Epsilon:    split.EpsSW,
		Delta:      p.Delta / 2, // only used by RW counters
		UpperBound: p.UpperBound,
		Seed:       p.Seed,
	}
	s := &Sketch{
		params: p,
		split:  split,
		fam:    fam,
		w:      w,
		d:      d,
		wcfg:   wcfg,
		salt:   hashing.Mix64(atomic.AddUint64(&ecmSaltCounter, 1) * 0x94d049bb133111eb),
		epoch:  newEpoch(),
	}
	switch p.Algorithm {
	case window.AlgoEH:
		bank, err := window.NewEHBank(wcfg, d*w)
		if err != nil {
			return nil, err
		}
		s.eh = bank
		s.bank = bank
		return s, nil
	case window.AlgoDW:
		bank, err := window.NewDWBank(wcfg, d*w)
		if err != nil {
			return nil, err
		}
		s.dw = bank
		s.bank = bank
		return s, nil
	case window.AlgoRW:
		bank, err := window.NewRWBank(wcfg, d*w)
		if err != nil {
			return nil, err
		}
		s.rw = bank
		s.bank = bank
		return s, nil
	}
	s.counters = make([]window.Counter, d*w)
	for i := range s.counters {
		c, err := window.New(p.Algorithm, wcfg)
		if err != nil {
			return nil, err
		}
		s.counters[i] = c
	}
	return s, nil
}

func resolveSplit(p *Params) (Split, error) {
	if p.WindowLength == 0 {
		return Split{}, errors.New("core: WindowLength must be positive")
	}
	if p.Split != nil {
		if !p.Split.valid() {
			return Split{}, fmt.Errorf("core: explicit split %+v invalid", *p.Split)
		}
		return *p.Split, nil
	}
	if !(p.Epsilon > 0 && p.Epsilon < 1) {
		return Split{}, fmt.Errorf("core: Epsilon must be in (0,1), got %v", p.Epsilon)
	}
	var s Split
	switch {
	case p.Algorithm == window.AlgoRW:
		s = SplitPointRW(p.Epsilon)
	case p.Query == InnerProductQuery:
		s = SplitInnerProduct(p.Epsilon)
	default:
		s = SplitPoint(p.Epsilon)
	}
	if !s.valid() {
		return Split{}, fmt.Errorf("core: derived split %+v invalid for ε=%v", s, p.Epsilon)
	}
	return s, nil
}

// Params returns the sketch configuration.
func (s *Sketch) Params() Params { return s.params }

// EffectiveSplit returns the ε division in use.
func (s *Sketch) EffectiveSplit() Split { return s.split }

// Width reports the Count-Min row width.
func (s *Sketch) Width() int { return s.w }

// Depth reports the number of Count-Min rows.
func (s *Sketch) Depth() int { return s.d }

// Count reports ||a||₁: the total value inserted since stream start
// (not windowed).
func (s *Sketch) Count() uint64 { return s.count }

// Now reports the latest tick observed.
func (s *Sketch) Now() Tick { return s.now }

// SetIDSalt overrides the salt used for auto-generated randomized-wave event
// identifiers; see window.RW.SetIDSalt.
func (s *Sketch) SetIDSalt(salt uint64) { s.salt = salt }

// NormalizeCellSalts re-derives every randomized-wave cell's auto-identifier
// salt deterministically from the sketch identifier salt; a no-op for the
// other algorithms. Cell salts default to process-unique values (so bank-level
// auto-identifiers never collide across sites), but they are serialized, so
// two identically configured sketches differ byte-wise until normalized.
// Engines that never draw cell-level auto-identifiers — the sharded engine
// inserts through the sketch salt — normalize them to make identically
// configured instances byte-deterministic, which durable recovery tests
// compare against.
func (s *Sketch) NormalizeCellSalts() {
	if s.rw == nil {
		return
	}
	for i := 0; i < s.d*s.w; i++ {
		s.rw.SetCellIDSalt(i, hashing.Mix64(s.salt^(uint64(i)+1)*0xD1B54A32D192ED03))
	}
}

// Add registers one arrival of item key at tick t.
func (s *Sketch) Add(key uint64, t Tick) { s.AddN(key, t, 1) }

// AddString registers one arrival of a string-keyed item at tick t.
func (s *Sketch) AddString(key string, t Tick) { s.AddN(hashing.KeyString(key), t, 1) }

// AddN registers n simultaneous arrivals of item key at tick t. For
// randomized-wave sketches each unit arrival receives a fresh unique event
// identifier shared by the d counters it lands in.
func (s *Sketch) AddN(key uint64, t Tick, n uint64) {
	if t > s.now {
		s.now = t
	}
	s.count += n
	s.waveVer++
	if s.params.Algorithm == window.AlgoRW {
		s.addRW(key, t, n)
		return
	}
	k := hashing.Fold(key)
	switch {
	case s.eh != nil:
		for j := 0; j < s.d; j++ {
			s.eh.AddN(j*s.w+s.fam.HashFolded(j, k), t, n)
		}
	case s.dw != nil:
		for j := 0; j < s.d; j++ {
			s.dw.AddN(j*s.w+s.fam.HashFolded(j, k), t, n)
		}
	default:
		for j := 0; j < s.d; j++ {
			s.counters[j*s.w+s.fam.HashFolded(j, k)].AddN(t, n)
		}
	}
}

// addRW inserts n unit arrivals with fresh identifiers into the d
// randomized-wave counters owning key; callers maintain s.now and s.count.
// The d counters share each arrival's identifier — that is what makes the
// position-wise merge union duplicate-insensitive across sites.
func (s *Sketch) addRW(key uint64, t Tick, n uint64) {
	k := hashing.Fold(key)
	for u := uint64(0); u < n; u++ {
		s.seq++
		id := hashing.Mix64(s.salt ^ s.seq)
		for j := 0; j < s.d; j++ {
			s.rw.AddID(j*s.w+s.fam.HashFolded(j, k), t, id)
		}
	}
}

// SetClock raises the sketch clock to t without advancing any counter —
// subsequent arrivals clamp against t, but no expiry runs. This is the
// durable-replay seam: WAL batch records carry the clock from immediately
// before the original apply, and replay must reproduce the clamp while
// leaving every cell's expiry to run exactly where the original ran it (at
// inserts and at logged advances; randomized-wave content depends on that
// ordering through capacity eviction). Not for general use — Advance is
// the normal way to move the window.
func (s *Sketch) SetClock(t Tick) {
	if t > s.now {
		s.now = t
	}
}

// Advance moves the window of every counter forward to tick t.
func (s *Sketch) Advance(t Tick) {
	if t > s.now {
		s.now = t
	}
	if s.bank != nil {
		s.bank.AdvanceAll(t)
		return
	}
	for _, c := range s.counters {
		c.Advance(t)
	}
}

// AdvanceNoting moves the window of every counter forward to tick t like
// Advance and calls note(i) for each cell whose retained content the move
// actually changed (expiry dropped content). Receivers replaying a
// producer's clock use it to keep their changed-cell feed exact; the
// test-only per-object engines have no per-cell expiry reporting, so there
// the move falls back to Advance and note(-1) signals that granularity was
// lost (any cell may have changed) whenever the clock actually moved.
func (s *Sketch) AdvanceNoting(t Tick, note func(int)) {
	if s.bank != nil {
		if t > s.now {
			s.now = t
		}
		s.bank.AdvanceAllNoting(t, note)
		return
	}
	moved := t > s.now
	s.Advance(t)
	if moved && note != nil {
		note(-1)
	}
}

// cellEstimateRange evaluates counter idx over the last r ticks. Counters
// are only advanced on their own arrivals; the helper first aligns them with
// the sketch clock so expired content does not linger.
func (s *Sketch) cellEstimateRange(idx int, r Tick) float64 {
	if s.bank != nil {
		s.bank.Advance(idx, s.now)
		return s.bank.EstimateRange(idx, r)
	}
	c := s.counters[idx]
	c.Advance(s.now)
	return c.EstimateRange(r)
}

// cellEstimateSince evaluates counter idx for ticks > since, aligning the
// counter with the sketch clock first.
func (s *Sketch) cellEstimateSince(idx int, since Tick) float64 {
	if s.bank != nil {
		s.bank.Advance(idx, s.now)
		return s.bank.EstimateSince(idx, since)
	}
	c := s.counters[idx]
	c.Advance(s.now)
	return c.EstimateSince(since)
}

// Estimate answers the point query (key, r): the estimated frequency of the
// item within the last r ticks, as min_j E(h_j(key), j, r).
func (s *Sketch) Estimate(key uint64, r Tick) float64 {
	k := hashing.Fold(key)
	est := math.Inf(1)
	for j := 0; j < s.d; j++ {
		if v := s.cellEstimateRange(j*s.w+s.fam.HashFolded(j, k), r); v < est {
			est = v
		}
	}
	return est
}

// EstimateString answers a point query for a string-keyed item.
func (s *Sketch) EstimateString(key string, r Tick) float64 {
	return s.Estimate(hashing.KeyString(key), r)
}

// CellIndices appends the d counter indices key's estimate is read from —
// the cells j·w + h_j(key) the min in Estimate ranges over. The mapping
// depends only on the sketch geometry (width, depth, seed), so it is
// identical across every stripe, part and merged summary of one deployment;
// standing-query evaluation uses it to intersect watched keys with changed
// cells. Hash families are immutable, so this is safe without locks.
func (s *Sketch) CellIndices(key uint64, dst []int) []int {
	k := hashing.Fold(key)
	for j := 0; j < s.d; j++ {
		dst = append(dst, j*s.w+s.fam.HashFolded(j, k))
	}
	return dst
}

// EstimateInterval estimates the frequency of key within the tick interval
// (from, to], an arbitrary sub-range of the window, as the difference of two
// suffix estimates per counter. The window error doubles to 2·ε_sw compared
// to suffix queries; the Count-Min collision term is unchanged.
func (s *Sketch) EstimateInterval(key uint64, from, to Tick) float64 {
	if to <= from {
		return 0
	}
	k := hashing.Fold(key)
	est := math.Inf(1)
	for j := 0; j < s.d; j++ {
		idx := j*s.w + s.fam.HashFolded(j, k)
		v := s.cellEstimateSince(idx, from) - s.cellEstimateSince(idx, to)
		if v < 0 {
			v = 0
		}
		if v < est {
			est = v
		}
	}
	return est
}

// EstimateWindow answers the point query over the whole window.
func (s *Sketch) EstimateWindow(key uint64) float64 {
	return s.Estimate(key, s.wcfg.Length)
}

// InnerProduct estimates a_r ⊙ b_r = Σ_x f_a(x,r)·f_b(x,r) as
// min_j Σ_i E_a(i,j,r)·E_b(i,j,r) (Section 4.1). Both sketches must share
// configuration.
func (s *Sketch) InnerProduct(o *Sketch, r Tick) (float64, error) {
	if !s.Compatible(o) {
		return 0, errors.New("core: inner product requires identically configured sketches")
	}
	best := math.Inf(1)
	for j := 0; j < s.d; j++ {
		var sum float64
		for i := 0; i < s.w; i++ {
			idx := j*s.w + i
			ea := s.cellEstimateRange(idx, r)
			if ea == 0 {
				continue
			}
			sum += ea * o.cellEstimateRange(idx, r)
		}
		if sum < best {
			best = sum
		}
	}
	return best, nil
}

// SelfJoin estimates the second frequency moment F₂ of the stream within the
// last r ticks.
func (s *Sketch) SelfJoin(r Tick) float64 {
	v, _ := s.InnerProduct(s, r)
	return v
}

// Compatible reports whether two sketches share dimensions, window
// configuration and hash functions, and hence may be merged or joined.
func (s *Sketch) Compatible(o *Sketch) bool {
	if o == nil || s.w != o.w || s.d != o.d || !s.fam.Compatible(o.fam) {
		return false
	}
	return s.wcfg.Model == o.wcfg.Model &&
		s.wcfg.Length == o.wcfg.Length &&
		s.wcfg.Epsilon == o.wcfg.Epsilon &&
		s.params.Algorithm == o.params.Algorithm
}

// ExtractVector evaluates every counter over the last r ticks and returns
// the result as a dense real vector — the representation the geometric
// monitoring method (Section 6.2) does linear algebra on.
func (s *Sketch) ExtractVector(r Tick) *cm.Vector {
	v := cm.NewVector(s.d, s.w)
	for i := range v.Cells {
		v.Cells[i] = s.cellEstimateRange(i, r)
	}
	return v
}

// EstimateTotal estimates ||a_r||₁, the total number of arrivals within the
// last r ticks, by averaging the counter sums of each row and taking the
// row minimum. The paper recommends this estimator (Section 6.1) over an
// auxiliary sliding window because per-cell errors cancel within a row.
func (s *Sketch) EstimateTotal(r Tick) float64 {
	best := math.Inf(1)
	for j := 0; j < s.d; j++ {
		var sum float64
		for i := 0; i < s.w; i++ {
			sum += s.cellEstimateRange(j*s.w+i, r)
		}
		if sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// MemoryBytes reports the heap footprint of the sketch. The flat engine
// reports the arena slabs directly; per-object engines sum their counters.
func (s *Sketch) MemoryBytes() int {
	n := 128
	if s.bank != nil {
		return n + s.bank.MemoryBytes()
	}
	for _, c := range s.counters {
		n += c.MemoryBytes()
	}
	return n
}

// Reset empties every counter, keeping the configuration (and, for the flat
// engines, the arena capacity).
func (s *Sketch) Reset() {
	if s.bank != nil {
		s.bank.Reset()
	}
	for _, c := range s.counters {
		c.Reset()
	}
	s.now = 0
	s.count = 0
	s.seq = 0
	s.waveVer++
}
