package core

import (
	"math"
	"math/rand"
	"testing"

	"ecmsketch/internal/window"
)

// exactOracle tracks exact per-item sliding-window frequencies for
// evaluation, mirroring what the paper's experiments compute from the raw
// trace.
type exactOracle struct {
	length Tick
	perKey map[uint64]*window.Exact
	total  *window.Exact
	now    Tick
}

func newExactOracle(length Tick) *exactOracle {
	tot, _ := window.NewExact(window.Config{Length: length})
	return &exactOracle{length: length, perKey: map[uint64]*window.Exact{}, total: tot}
}

func (o *exactOracle) add(key uint64, t Tick) {
	x, ok := o.perKey[key]
	if !ok {
		x, _ = window.NewExact(window.Config{Length: o.length})
		o.perKey[key] = x
	}
	x.Add(t)
	o.total.Add(t)
	if t > o.now {
		o.now = t
	}
}

func (o *exactOracle) freq(key uint64, r Tick) uint64 {
	x, ok := o.perKey[key]
	if !ok {
		return 0
	}
	x.Advance(o.now)
	return x.CountRange(r)
}

func (o *exactOracle) totalIn(r Tick) uint64 {
	o.total.Advance(o.now)
	return o.total.CountRange(r)
}

func (o *exactOracle) selfJoin(r Tick) float64 {
	var s float64
	for _, x := range o.perKey {
		x.Advance(o.now)
		f := float64(x.CountRange(r))
		s += f * f
	}
	return s
}

func mustECM(t *testing.T, p Params) *Sketch {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSplitsSatisfyBounds(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.2, 0.25, 0.5} {
		p := SplitPoint(eps)
		if !p.valid() {
			t.Errorf("SplitPoint(%v) invalid: %+v", eps, p)
		}
		if got := p.PointErrorBound(); math.Abs(got-eps) > 1e-9 {
			t.Errorf("SplitPoint(%v).PointErrorBound() = %v", eps, got)
		}
		ip := SplitInnerProduct(eps)
		if !ip.valid() {
			t.Errorf("SplitInnerProduct(%v) invalid: %+v", eps, ip)
		}
		if got := ip.InnerProductErrorBound(); math.Abs(got-eps) > 1e-9 {
			t.Errorf("SplitInnerProduct(%v).InnerProductErrorBound() = %v", eps, got)
		}
		rw := SplitPointRW(eps)
		if !rw.valid() {
			t.Errorf("SplitPointRW(%v) invalid: %+v", eps, rw)
		}
		if got := rw.PointErrorBound(); math.Abs(got-eps) > 1e-9 {
			t.Errorf("SplitPointRW(%v).PointErrorBound() = %v", eps, got)
		}
	}
}

func TestSplitRWFavorsWindowError(t *testing.T) {
	// Randomized waves pay 1/ε² for window error, so the RW-optimal split
	// must allocate a larger ε_sw than the deterministic-optimal split.
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		det, rw := SplitPoint(eps), SplitPointRW(eps)
		if rw.EpsSW <= det.EpsSW {
			t.Errorf("eps=%v: RW split ε_sw=%v not larger than deterministic %v", eps, rw.EpsSW, det.EpsSW)
		}
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{},
		{Epsilon: 0.1, Delta: 0.1},        // no window
		{WindowLength: 100, Delta: 0.1},   // no epsilon
		{WindowLength: 100, Epsilon: 0.1}, // no delta
		{WindowLength: 100, Epsilon: 2, Delta: 0.1}, // bad epsilon
		{WindowLength: 100, Epsilon: 0.1, Delta: 0.1, Split: &Split{EpsCM: 0, EpsSW: 0.1}},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) succeeded, want error", p)
		}
	}
}

func TestECMPointQueryBound(t *testing.T) {
	const eps, delta = 0.1, 0.1
	const N = 2000
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW} {
		s := mustECM(t, Params{
			Epsilon: eps, Delta: delta, Algorithm: algo,
			WindowLength: N, UpperBound: 30000, Seed: 42,
		})
		oracle := newExactOracle(N)
		rng := rand.New(rand.NewSource(31))
		zipf := rand.NewZipf(rng, 1.1, 1, 2000)
		var now Tick
		for i := 0; i < 30000; i++ {
			now += Tick(rng.Intn(2))
			k := zipf.Uint64()
			s.Add(k, now)
			oracle.add(k, now)
		}
		s.Advance(now)
		for _, r := range []Tick{N, N / 2, N / 5} {
			l1 := float64(oracle.totalIn(r))
			for k := uint64(0); k < 50; k++ {
				got := s.Estimate(k, r)
				want := float64(oracle.freq(k, r))
				if got-want > eps*l1+1 {
					t.Errorf("%v: Estimate(%d,%d)=%v true=%v exceeds ε·||a_r||=%v",
						algo, k, r, got, want, eps*l1)
				}
				// The estimate may undershoot only by the window error:
				// fˆ ≥ (1-ε_sw)·f.
				if got < (1-s.EffectiveSplit().EpsSW)*want-1 {
					t.Errorf("%v: Estimate(%d,%d)=%v undershoots true %v beyond ε_sw", algo, k, r, got, want)
				}
			}
		}
	}
}

func TestECMRWPointQuery(t *testing.T) {
	const eps, delta = 0.25, 0.2
	const N = 1500
	s := mustECM(t, Params{
		Epsilon: eps, Delta: delta, Algorithm: window.AlgoRW,
		WindowLength: N, UpperBound: 20000, Seed: 17,
	})
	oracle := newExactOracle(N)
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.1, 1, 500)
	var now Tick
	for i := 0; i < 20000; i++ {
		now += Tick(rng.Intn(2))
		k := zipf.Uint64()
		s.Add(k, now)
		oracle.add(k, now)
	}
	s.Advance(now)
	l1 := float64(oracle.totalIn(N))
	bad := 0
	const checks = 40
	for k := uint64(0); k < checks; k++ {
		got := s.Estimate(k, N)
		want := float64(oracle.freq(k, N))
		if math.Abs(got-want) > eps*l1+1 {
			bad++
		}
	}
	if bad > checks/5 {
		t.Errorf("RW sketch exceeded bound on %d/%d point queries", bad, checks)
	}
}

func TestECMSelfJoin(t *testing.T) {
	const eps = 0.05
	const N = 2000
	s := mustECM(t, Params{
		Epsilon: eps, Delta: 0.05, Query: InnerProductQuery,
		WindowLength: N, Seed: 7,
	})
	oracle := newExactOracle(N)
	rng := rand.New(rand.NewSource(13))
	zipf := rand.NewZipf(rng, 1.3, 1, 300)
	var now Tick
	for i := 0; i < 25000; i++ {
		now += Tick(rng.Intn(2))
		k := zipf.Uint64()
		s.Add(k, now)
		oracle.add(k, now)
	}
	s.Advance(now)
	for _, r := range []Tick{N, N / 2} {
		got := s.SelfJoin(r)
		want := oracle.selfJoin(r)
		l1 := float64(oracle.totalIn(r))
		if math.Abs(got-want) > eps*l1*l1+1 {
			t.Errorf("SelfJoin(%d) = %v, true %v, bound %v", r, got, want, eps*l1*l1)
		}
	}
}

func TestECMInnerProduct(t *testing.T) {
	const eps = 0.1
	const N = 1000
	p := Params{Epsilon: eps, Delta: 0.1, Query: InnerProductQuery, WindowLength: N, Seed: 77}
	a := mustECM(t, p)
	b := mustECM(t, p)
	oa := newExactOracle(N)
	ob := newExactOracle(N)
	rng := rand.New(rand.NewSource(5))
	var now Tick
	for i := 0; i < 15000; i++ {
		now += Tick(rng.Intn(2))
		ka, kb := uint64(rng.Intn(100)), uint64(rng.Intn(100))
		a.Add(ka, now)
		b.Add(kb, now)
		oa.add(ka, now)
		ob.add(kb, now)
	}
	a.Advance(now)
	b.Advance(now)
	got, err := a.InnerProduct(b, N)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for k := uint64(0); k < 100; k++ {
		want += float64(oa.freq(k, N)) * float64(ob.freq(k, N))
	}
	la, lb := float64(oa.totalIn(N)), float64(ob.totalIn(N))
	if math.Abs(got-want) > eps*la*lb+1 {
		t.Errorf("InnerProduct = %v, true %v, bound %v", got, want, eps*la*lb)
	}
	// Incompatible sketches are rejected.
	other := mustECM(t, Params{Epsilon: eps, Delta: 0.1, WindowLength: N, Seed: 78})
	if _, err := a.InnerProduct(other, N); err == nil {
		t.Error("InnerProduct across different seeds succeeded")
	}
}

func TestECMEstimateTotal(t *testing.T) {
	const N = 1000
	s := mustECM(t, Params{Epsilon: 0.1, Delta: 0.1, WindowLength: N, Seed: 9})
	oracle := newExactOracle(N)
	rng := rand.New(rand.NewSource(71))
	var now Tick
	for i := 0; i < 10000; i++ {
		now += Tick(rng.Intn(2))
		k := uint64(rng.Intn(400))
		s.Add(k, now)
		oracle.add(k, now)
	}
	s.Advance(now)
	got := s.EstimateTotal(N)
	want := float64(oracle.totalIn(N))
	if math.Abs(got-want) > 0.15*want+1 {
		t.Errorf("EstimateTotal = %v, exact %v", got, want)
	}
}

func TestECMStringKeys(t *testing.T) {
	s := mustECM(t, Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Seed: 4})
	for i := 0; i < 20; i++ {
		s.AddString("/index.html", Tick(i+1))
	}
	s.AddString("/other.html", 20)
	if got := s.EstimateString("/index.html", 100); got < 20 {
		t.Errorf("EstimateString = %v, want ≥ 20", got)
	}
}

func TestECMCountBasedWindow(t *testing.T) {
	// Count-based model: ticks are global arrival indexes; the window is
	// the last N arrivals of the whole stream.
	const N = 500
	s := mustECM(t, Params{
		Epsilon: 0.1, Delta: 0.1, Model: window.CountBased,
		WindowLength: N, Seed: 3,
	})
	// 1000 arrivals alternating between two keys: the last 500 arrivals
	// contain 250 of each.
	for seq := Tick(1); seq <= 1000; seq++ {
		s.Add(uint64(seq%2), seq)
	}
	for k := uint64(0); k < 2; k++ {
		got := s.Estimate(k, N)
		if math.Abs(got-250) > 0.15*250+1 {
			t.Errorf("count-based Estimate(%d) = %v, want ≈250", k, got)
		}
	}
}

func TestECMReset(t *testing.T) {
	s := mustECM(t, Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Seed: 2})
	s.Add(1, 10)
	s.Reset()
	if s.EstimateWindow(1) != 0 || s.Count() != 0 || s.Now() != 0 {
		t.Error("Reset left state behind")
	}
}

func TestECMMemorySmallerForLargerEps(t *testing.T) {
	build := func(eps float64) int {
		s := mustECM(t, Params{Epsilon: eps, Delta: 0.1, WindowLength: 5000, Seed: 6})
		rng := rand.New(rand.NewSource(12))
		var now Tick
		for i := 0; i < 20000; i++ {
			now += Tick(rng.Intn(2))
			s.Add(uint64(rng.Intn(1000)), now)
		}
		return s.MemoryBytes()
	}
	if m5, m25 := build(0.05), build(0.25); m5 <= m25 {
		t.Errorf("memory(ε=0.05)=%d not larger than memory(ε=0.25)=%d", m5, m25)
	}
}

func TestECMDWAndEHCloseAgreement(t *testing.T) {
	// The two deterministic variants should produce similar estimates on the
	// same stream with the same split.
	p := Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, UpperBound: 10000, Seed: 19}
	pe := p
	pe.Algorithm = window.AlgoEH
	pd := p
	pd.Algorithm = window.AlgoDW
	eh := mustECM(t, pe)
	dw := mustECM(t, pd)
	rng := rand.New(rand.NewSource(8))
	var now Tick
	for i := 0; i < 10000; i++ {
		now += Tick(rng.Intn(2))
		k := uint64(rng.Intn(50))
		eh.Add(k, now)
		dw.Add(k, now)
	}
	eh.Advance(now)
	dw.Advance(now)
	for k := uint64(0); k < 50; k++ {
		ge, gd := eh.Estimate(k, 1000), dw.Estimate(k, 1000)
		if base := math.Max(ge, gd); base > 20 && math.Abs(ge-gd) > 0.3*base {
			t.Errorf("EH=%v DW=%v disagree for key %d", ge, gd, k)
		}
	}
}
