package core

import (
	"testing"
)

// FuzzUnmarshalECM: the sketch decoder must never panic on arbitrary bytes.
func FuzzUnmarshalECM(f *testing.F) {
	s, err := New(Params{Epsilon: 0.2, Delta: 0.2, WindowLength: 500, Seed: 2})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 300; i++ {
		s.Add(uint64(i%17), i)
	}
	enc := s.Marshal()
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte{0xEC})
	f.Add(enc[:len(enc)/3])
	mut := append([]byte(nil), enc...)
	mut[len(mut)/4] ^= 0x5A
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Unmarshal(data)
		if err != nil {
			return
		}
		if got := dec.Estimate(3, 500); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
		dec.Add(1, dec.Now()+1)
		_ = dec.SelfJoin(100)
	})
}

// FuzzECMPointBound drives a sketch with arbitrary small streams and checks
// the Theorem 1 bound against a brute-force count.
func FuzzECMPointBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{0, 1, 0, 2, 1})
	f.Add([]byte{9, 9, 9}, []byte{3, 3, 3})
	f.Fuzz(func(t *testing.T, gaps, keys []byte) {
		if len(gaps) == 0 || len(keys) == 0 {
			return
		}
		const eps = 0.25
		s, err := New(Params{Epsilon: eps, Delta: 0.1, WindowLength: 300, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		exact := map[uint64][]Tick{}
		var now Tick
		var all []Tick
		for i, g := range gaps {
			now += Tick(g % 7)
			if now == 0 {
				now = 1
			}
			k := uint64(keys[i%len(keys)] % 16)
			s.Add(k, now)
			exact[k] = append(exact[k], now)
			all = append(all, now)
		}
		s.Advance(now)
		// Window (now-300, now].
		var ws Tick
		if now > 300 {
			ws = now - 300
		}
		inWin := func(ts []Tick) float64 {
			c := 0.0
			for _, tt := range ts {
				if tt > ws {
					c++
				}
			}
			return c
		}
		l1 := inWin(all)
		split := s.EffectiveSplit()
		for k, ts := range exact {
			got := s.Estimate(k, 300)
			want := inWin(ts)
			if got-want > eps*l1+1 {
				t.Fatalf("Estimate(%d)=%v true=%v exceeds ε·‖a‖=%v", k, got, want, eps*l1)
			}
			if got < (1-split.EpsSW)*want-1 {
				t.Fatalf("Estimate(%d)=%v undershoots true %v beyond ε_sw=%v", k, got, want, split.EpsSW)
			}
		}
	})
}
