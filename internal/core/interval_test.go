package core

import (
	"math"
	"math/rand"
	"testing"

	"ecmsketch/internal/window"
)

func TestECMEstimateIntervalAgainstOracle(t *testing.T) {
	const eps, N = 0.1, 2000
	s := mustECM(t, Params{Epsilon: eps, Delta: 0.1, WindowLength: N, Seed: 21})
	oracle := newExactOracle(N)
	rng := rand.New(rand.NewSource(77))
	zipf := rand.NewZipf(rng, 1.2, 1, 200)
	var now Tick
	for i := 0; i < 20000; i++ {
		now += Tick(rng.Intn(2))
		k := zipf.Uint64()
		s.Add(k, now)
		oracle.add(k, now)
	}
	s.Advance(now)
	var ws Tick
	if now > N {
		ws = now - N
	}
	l1 := float64(oracle.totalIn(N))
	for trial := 0; trial < 100; trial++ {
		from := ws + Tick(rng.Intn(int(now-ws)))
		to := from + Tick(rng.Intn(int(now-from))+1)
		k := uint64(rng.Intn(20))
		got := s.EstimateInterval(k, from, to)
		// Exact interval frequency from two suffix counts.
		x := oracle.perKey[k]
		var want float64
		if x != nil {
			x.Advance(now)
			want = float64(x.CountSince(from)) - float64(x.CountSince(to))
		}
		// Interval queries carry 2ε_sw window error plus the CM collision
		// term; bound loosely by 2ε·‖a‖₁.
		if math.Abs(got-want) > 2*eps*l1+1 {
			t.Errorf("EstimateInterval(%d, %d, %d) = %v, exact %v", k, from, to, got, want)
		}
	}
	// Degenerate intervals.
	if got := s.EstimateInterval(1, 50, 50); got != 0 {
		t.Errorf("empty interval = %v", got)
	}
	if got := s.EstimateInterval(1, 60, 50); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
}

func TestECMDimensionOverrides(t *testing.T) {
	s := mustECM(t, Params{
		Epsilon: 0.1, Delta: 0.1, WindowLength: 100,
		Width: 64, Depth: 5, Seed: 1,
	})
	if s.Width() != 64 || s.Depth() != 5 {
		t.Errorf("dimensions %dx%d, want 5x64", s.Depth(), s.Width())
	}
	// Overridden dimensions round-trip through serialization.
	s.Add(1, 1)
	dec, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Width() != 64 || dec.Depth() != 5 {
		t.Errorf("decoded dimensions %dx%d", dec.Depth(), dec.Width())
	}
}

func TestECMAdvanceOnlyStream(t *testing.T) {
	s := mustECM(t, Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Seed: 1})
	s.Advance(1000)
	if s.Now() != 1000 || s.Count() != 0 {
		t.Errorf("Advance-only state: now=%d count=%d", s.Now(), s.Count())
	}
	if got := s.EstimateWindow(7); got != 0 {
		t.Errorf("estimate on empty sketch = %v", got)
	}
	s.Add(7, 1500)
	if got := s.EstimateWindow(7); got != 1 {
		t.Errorf("estimate = %v, want 1", got)
	}
}

func TestECMAddNZero(t *testing.T) {
	s := mustECM(t, Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Seed: 1})
	s.AddN(3, 10, 0)
	if s.Count() != 0 {
		t.Errorf("AddN(.,.,0) counted: %d", s.Count())
	}
	if s.Now() != 10 {
		t.Errorf("AddN(.,.,0) did not advance clock: %d", s.Now())
	}
}

func TestECMRWCountBasedSupported(t *testing.T) {
	// RW counters work under the count-based model for single-stream use.
	s := mustECM(t, Params{
		Epsilon: 0.25, Delta: 0.2, Algorithm: window.AlgoRW,
		Model: window.CountBased, WindowLength: 200, UpperBound: 2000, Seed: 6,
	})
	for seq := Tick(1); seq <= 1000; seq++ {
		s.Add(uint64(seq%4), seq)
	}
	got := s.Estimate(0, 200)
	if math.Abs(got-50) > 40 {
		t.Errorf("count-based RW Estimate = %v, want ≈50", got)
	}
}
