package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ecmsketch/internal/window"
)

const (
	wireECM byte = 0xEC
	// wireSparse is the elided-cell sketch encoding (MarshalSparse): the
	// same header as wireECM, then the indices of cells whose encoding a
	// fresh sketch advanced to the header clock reproduces exactly, then the
	// remaining cells in config-elided bare form. Multipart baselines use it
	// per stripe, where most cells are untouched.
	wireSparse byte = 0xF0
)

func appendF64(dst []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(dst, tmp[:]...)
}

// appendMarshalHeader appends the fixed sketch header shared by the dense
// (wireECM) and sparse (wireSparse) encodings: every field between the tag
// byte and the cell payloads.
func (s *Sketch) appendMarshalHeader(dst []byte) []byte {
	dst = appendF64(dst, s.params.Epsilon)
	dst = appendF64(dst, s.params.Delta)
	dst = append(dst, byte(s.params.Query), byte(s.params.Algorithm), byte(s.params.Model))
	dst = binary.AppendUvarint(dst, s.params.WindowLength)
	dst = binary.AppendUvarint(dst, s.params.UpperBound)
	dst = binary.AppendUvarint(dst, s.params.Seed)
	dst = binary.AppendUvarint(dst, uint64(s.w))
	dst = binary.AppendUvarint(dst, uint64(s.d))
	dst = appendF64(dst, s.split.EpsCM)
	dst = appendF64(dst, s.split.EpsSW)
	dst = binary.AppendUvarint(dst, s.now)
	dst = binary.AppendUvarint(dst, s.count)
	dst = binary.AppendUvarint(dst, s.salt)
	dst = binary.AppendUvarint(dst, s.seq)
	return dst
}

// Marshal encodes the sketch: configuration header followed by each
// counter's own encoding, length-prefixed. The encoded size is what the
// distributed experiments charge as network volume when a site ships its
// local sketch to an aggregator.
func (s *Sketch) Marshal() []byte {
	dst := []byte{wireECM}
	dst = s.appendMarshalHeader(dst)
	if s.bank != nil {
		// Flat engines: encode each cell straight out of the arena through
		// call-local scratch buffers — the arena itself is only read, so
		// frozen sketches (the sharded engine's published views) marshal
		// concurrently without coordination. The bytes are identical to what
		// a per-object counter holding the same content would write.
		var cell []byte
		var scratch []window.Bucket
		for i := 0; i < s.d*s.w; i++ {
			switch {
			case s.eh != nil:
				cell, scratch = s.eh.AppendMarshalCell(cell[:0], i, scratch)
			case s.dw != nil:
				cell = s.dw.AppendMarshalCell(cell[:0], i)
			default:
				cell = s.rw.AppendMarshalCell(cell[:0], i)
			}
			dst = binary.AppendUvarint(dst, uint64(len(cell)))
			dst = append(dst, cell...)
		}
		return dst
	}
	for _, c := range s.counters {
		var enc []byte
		switch cc := c.(type) {
		case *window.DW:
			enc = cc.Marshal()
		case *window.RW:
			enc = cc.Marshal()
		case *window.EH:
			enc = cc.Marshal()
		default:
			// Exact counters are test-only and not serialized.
			enc = nil
		}
		dst = binary.AppendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// WireSize reports len(s.Marshal()) without producing the encoding: the
// fixed header fields are summed directly and, on the flat engines (all
// three paper algorithms), each cell's size comes from a slab walk that
// never materializes bytes. This is what lets the coordinator's network
// accounting charge a snapshot's transfer cost at the transport boundary
// while the merge path consumes the snapshot itself — no marshal+decode
// round trip just to know what shipping it would cost. The test-only exact
// engine falls back to encoding and measuring.
func (s *Sketch) WireSize() int {
	if s.bank == nil {
		return len(s.Marshal())
	}
	n := 1 + // wireECM tag
		8 + 8 + // Epsilon, Delta
		3 + // Query, Algorithm, Model bytes
		window.UvarintLen(s.params.WindowLength) +
		window.UvarintLen(s.params.UpperBound) +
		window.UvarintLen(s.params.Seed) +
		window.UvarintLen(uint64(s.w)) +
		window.UvarintLen(uint64(s.d)) +
		8 + 8 + // split.EpsCM, split.EpsSW
		window.UvarintLen(s.now) +
		window.UvarintLen(s.count) +
		window.UvarintLen(s.salt) +
		window.UvarintLen(s.seq)
	for i := 0; i < s.d*s.w; i++ {
		c := s.bank.MarshalCellSize(i)
		n += window.UvarintLen(uint64(c)) + c
	}
	return n
}

// marshalHeader is the decoded fixed sketch header shared by the dense and
// sparse encodings.
type marshalHeader struct {
	p                Params
	now              Tick
	count, salt, seq uint64
}

// readMarshalHeader decodes the header appendMarshalHeader wrote, starting
// at off (just past the tag byte), and returns the offset of the first cell
// payload.
func readMarshalHeader(b []byte, off int) (marshalHeader, int, error) {
	var h marshalHeader
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated encoding")
		}
		off += n
		return v, nil
	}
	getF := func() (float64, error) {
		if off+8 > len(b) {
			return 0, errors.New("core: truncated encoding")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v, nil
	}
	getB := func() (byte, error) {
		if off >= len(b) {
			return 0, errors.New("core: truncated encoding")
		}
		v := b[off]
		off++
		return v, nil
	}

	var err error
	if h.p.Epsilon, err = getF(); err != nil {
		return h, 0, err
	}
	if h.p.Delta, err = getF(); err != nil {
		return h, 0, err
	}
	q, err := getB()
	if err != nil {
		return h, 0, err
	}
	h.p.Query = QueryKind(q)
	a, err := getB()
	if err != nil {
		return h, 0, err
	}
	h.p.Algorithm = window.Algorithm(a)
	m, err := getB()
	if err != nil {
		return h, 0, err
	}
	h.p.Model = window.Model(m)
	if h.p.WindowLength, err = getU(); err != nil {
		return h, 0, err
	}
	if h.p.UpperBound, err = getU(); err != nil {
		return h, 0, err
	}
	if h.p.Seed, err = getU(); err != nil {
		return h, 0, err
	}
	wu, err := getU()
	if err != nil {
		return h, 0, err
	}
	du, err := getU()
	if err != nil {
		return h, 0, err
	}
	if wu == 0 || du == 0 || wu > 1<<20 || du > 1<<8 || wu*du > 1<<22 {
		return h, 0, fmt.Errorf("core: corrupt dimensions %dx%d", du, wu)
	}
	h.p.Width, h.p.Depth = int(wu), int(du)
	var split Split
	if split.EpsCM, err = getF(); err != nil {
		return h, 0, err
	}
	if split.EpsSW, err = getF(); err != nil {
		return h, 0, err
	}
	h.p.Split = &split
	if h.now, err = getU(); err != nil {
		return h, 0, err
	}
	if h.count, err = getU(); err != nil {
		return h, 0, err
	}
	if h.salt, err = getU(); err != nil {
		return h, 0, err
	}
	if h.seq, err = getU(); err != nil {
		return h, 0, err
	}
	return h, off, nil
}

// Unmarshal reconstructs a sketch from Marshal output. The decoded sketch
// answers every query identically to the encoded one and remains mergeable
// with its lineage.
func Unmarshal(b []byte) (*Sketch, error) {
	if len(b) == 0 || b[0] != wireECM {
		return nil, errors.New("core: not an ECM-sketch encoding")
	}
	h, off, err := readMarshalHeader(b, 1)
	if err != nil {
		return nil, err
	}
	s, err := New(h.p)
	if err != nil {
		return nil, err
	}
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated encoding")
		}
		off += n
		return v, nil
	}
	for i := 0; i < s.d*s.w; i++ {
		ln, err := getU()
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(b)-off) {
			return nil, errors.New("core: truncated counter encoding")
		}
		enc := b[off : off+int(ln)]
		off += int(ln)
		// Decode straight into the flat arena; cross-version encodings from
		// the per-object engines restore identically.
		if s.bank == nil {
			return nil, fmt.Errorf("core: cannot decode algorithm %v", h.p.Algorithm)
		}
		if err := s.bank.UnmarshalCell(i, enc); err != nil {
			return nil, fmt.Errorf("core: counter %d: %w", i, err)
		}
	}
	s.now = h.now
	s.count = h.count
	s.salt = h.salt
	s.seq = h.seq
	return s, nil
}
