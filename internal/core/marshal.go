package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ecmsketch/internal/window"
)

const wireECM byte = 0xEC

// Marshal encodes the sketch: configuration header followed by each
// counter's own encoding, length-prefixed. The encoded size is what the
// distributed experiments charge as network volume when a site ships its
// local sketch to an aggregator.
func (s *Sketch) Marshal() []byte {
	var buf bytes.Buffer
	buf.WriteByte(wireECM)
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putF := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf.Write(b[:])
	}
	putF(s.params.Epsilon)
	putF(s.params.Delta)
	buf.WriteByte(byte(s.params.Query))
	buf.WriteByte(byte(s.params.Algorithm))
	buf.WriteByte(byte(s.params.Model))
	putU(s.params.WindowLength)
	putU(s.params.UpperBound)
	putU(s.params.Seed)
	putU(uint64(s.w))
	putU(uint64(s.d))
	putF(s.split.EpsCM)
	putF(s.split.EpsSW)
	putU(s.now)
	putU(s.count)
	putU(s.salt)
	putU(s.seq)
	if s.bank != nil {
		// Flat engines: encode each cell straight out of the arena through
		// call-local scratch buffers — the arena itself is only read, so
		// frozen sketches (the sharded engine's published views) marshal
		// concurrently without coordination. The bytes are identical to what
		// a per-object counter holding the same content would write.
		var cell []byte
		var scratch []window.Bucket
		for i := 0; i < s.d*s.w; i++ {
			switch {
			case s.eh != nil:
				cell, scratch = s.eh.AppendMarshalCell(cell[:0], i, scratch)
			case s.dw != nil:
				cell = s.dw.AppendMarshalCell(cell[:0], i)
			default:
				cell = s.rw.AppendMarshalCell(cell[:0], i)
			}
			putU(uint64(len(cell)))
			buf.Write(cell)
		}
		return buf.Bytes()
	}
	for _, c := range s.counters {
		var enc []byte
		switch cc := c.(type) {
		case *window.DW:
			enc = cc.Marshal()
		case *window.RW:
			enc = cc.Marshal()
		case *window.EH:
			enc = cc.Marshal()
		default:
			// Exact counters are test-only and not serialized.
			enc = nil
		}
		putU(uint64(len(enc)))
		buf.Write(enc)
	}
	return buf.Bytes()
}

// WireSize reports len(s.Marshal()) without producing the encoding: the
// fixed header fields are summed directly and, on the flat engines (all
// three paper algorithms), each cell's size comes from a slab walk that
// never materializes bytes. This is what lets the coordinator's network
// accounting charge a snapshot's transfer cost at the transport boundary
// while the merge path consumes the snapshot itself — no marshal+decode
// round trip just to know what shipping it would cost. The test-only exact
// engine falls back to encoding and measuring.
func (s *Sketch) WireSize() int {
	if s.bank == nil {
		return len(s.Marshal())
	}
	n := 1 + // wireECM tag
		8 + 8 + // Epsilon, Delta
		3 + // Query, Algorithm, Model bytes
		window.UvarintLen(s.params.WindowLength) +
		window.UvarintLen(s.params.UpperBound) +
		window.UvarintLen(s.params.Seed) +
		window.UvarintLen(uint64(s.w)) +
		window.UvarintLen(uint64(s.d)) +
		8 + 8 + // split.EpsCM, split.EpsSW
		window.UvarintLen(s.now) +
		window.UvarintLen(s.count) +
		window.UvarintLen(s.salt) +
		window.UvarintLen(s.seq)
	for i := 0; i < s.d*s.w; i++ {
		c := s.bank.MarshalCellSize(i)
		n += window.UvarintLen(uint64(c)) + c
	}
	return n
}

// Unmarshal reconstructs a sketch from Marshal output. The decoded sketch
// answers every query identically to the encoded one and remains mergeable
// with its lineage.
func Unmarshal(b []byte) (*Sketch, error) {
	if len(b) == 0 || b[0] != wireECM {
		return nil, errors.New("core: not an ECM-sketch encoding")
	}
	off := 1
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated encoding")
		}
		off += n
		return v, nil
	}
	getF := func() (float64, error) {
		if off+8 > len(b) {
			return 0, errors.New("core: truncated encoding")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v, nil
	}
	getB := func() (byte, error) {
		if off >= len(b) {
			return 0, errors.New("core: truncated encoding")
		}
		v := b[off]
		off++
		return v, nil
	}

	var p Params
	var err error
	if p.Epsilon, err = getF(); err != nil {
		return nil, err
	}
	if p.Delta, err = getF(); err != nil {
		return nil, err
	}
	q, err := getB()
	if err != nil {
		return nil, err
	}
	p.Query = QueryKind(q)
	a, err := getB()
	if err != nil {
		return nil, err
	}
	p.Algorithm = window.Algorithm(a)
	m, err := getB()
	if err != nil {
		return nil, err
	}
	p.Model = window.Model(m)
	if p.WindowLength, err = getU(); err != nil {
		return nil, err
	}
	if p.UpperBound, err = getU(); err != nil {
		return nil, err
	}
	if p.Seed, err = getU(); err != nil {
		return nil, err
	}
	wu, err := getU()
	if err != nil {
		return nil, err
	}
	du, err := getU()
	if err != nil {
		return nil, err
	}
	if wu == 0 || du == 0 || wu > 1<<20 || du > 1<<8 || wu*du > 1<<22 {
		return nil, fmt.Errorf("core: corrupt dimensions %dx%d", du, wu)
	}
	p.Width, p.Depth = int(wu), int(du)
	var split Split
	if split.EpsCM, err = getF(); err != nil {
		return nil, err
	}
	if split.EpsSW, err = getF(); err != nil {
		return nil, err
	}
	p.Split = &split
	now, err := getU()
	if err != nil {
		return nil, err
	}
	count, err := getU()
	if err != nil {
		return nil, err
	}
	salt, err := getU()
	if err != nil {
		return nil, err
	}
	seq, err := getU()
	if err != nil {
		return nil, err
	}
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(du)*int(wu); i++ {
		ln, err := getU()
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(b)-off) {
			return nil, errors.New("core: truncated counter encoding")
		}
		enc := b[off : off+int(ln)]
		off += int(ln)
		// Decode straight into the flat arena; cross-version encodings from
		// the per-object engines restore identically.
		if s.bank == nil {
			return nil, fmt.Errorf("core: cannot decode algorithm %v", p.Algorithm)
		}
		if err := s.bank.UnmarshalCell(i, enc); err != nil {
			return nil, fmt.Errorf("core: counter %d: %w", i, err)
		}
	}
	s.now = now
	s.count = count
	s.salt = salt
	s.seq = seq
	return s, nil
}
