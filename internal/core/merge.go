package core

import (
	"errors"
	"fmt"

	"ecmsketch/internal/hashing"
	"ecmsketch/internal/window"
)

// Merge performs the order-preserving aggregation CM⊕ = CM₁ ⊕ ... ⊕ CMₙ of
// Section 5.3: counter (i,j) of the output is the ⊕-aggregation of counter
// (i,j) of every input. All inputs must be identically configured (same
// dimensions, hash functions, window configuration and synopsis algorithm).
//
// For exponential-histogram and deterministic-wave sketches the aggregation
// is the deterministic replay of Section 5.1 and inflates the window error
// to ε_sw + ε'_sw + ε_sw·ε'_sw per counter (the Count-Min error ε_cm is
// unaffected, since the array dimensions are fixed). For randomized-wave
// sketches the aggregation is lossless (Section 5.2). Count-based sketches
// cannot be aggregated at all; Merge rejects them.
func Merge(inputs ...*Sketch) (*Sketch, error) {
	if len(inputs) == 0 {
		return nil, errors.New("core: Merge requires at least one input")
	}
	first := inputs[0]
	for i, in := range inputs[1:] {
		if in == nil {
			return nil, fmt.Errorf("core: Merge input %d is nil", i+1)
		}
		if !first.Compatible(in) {
			return nil, fmt.Errorf("core: Merge input %d incompatible with input 0", i+1)
		}
	}
	if first.params.Algorithm != window.AlgoRW && first.wcfg.Model != window.TimeBased {
		return nil, errors.New("core: order-preserving aggregation requires time-based windows")
	}
	out, err := New(first.params)
	if err != nil {
		return nil, err
	}
	// New assigned the output a fresh process-local identifier salt, which
	// would make merged encodings differ run to run in that one field.
	// Derive it deterministically from the inputs instead: merged summaries
	// must be reproducible byte-for-byte across processes and transports —
	// the coordinator's cross-transport equivalence contract — while the
	// mixing still gives the output an ID space distinct from each input's
	// for any future randomized-wave ingest.
	salt := uint64(0x9e37_79b9_7f4a_7c15)
	for _, in := range inputs {
		salt = hashing.Mix64(salt ^ in.salt)
	}
	out.salt = salt
	var now Tick
	var count uint64
	for _, in := range inputs {
		if in.now > now {
			now = in.now
		}
		count += in.count
	}
	switch first.params.Algorithm {
	case window.AlgoEH, window.AlgoDW, window.AlgoRW:
		// Flat engines: replay every input cell straight into the output
		// arena — the same per-cell aggregation the per-object engines
		// perform (EH/DW: the Theorem 4 half/half replay, tick-ordered
		// across inputs; RW: the lossless position-wise union of Section
		// 5.2). Cells are independent, so large arrays fan the replay across
		// a bounded worker pool; the output is byte-identical to the
		// sequential cell loop either way (see parallel.go).
		applyMergeCells(out, inputs, nil, true, now, false)
	default:
		return nil, fmt.Errorf("core: algorithm %v does not support aggregation", first.params.Algorithm)
	}
	out.now = now
	out.count = count
	out.Advance(now)
	return out, nil
}

// MergedPointErrorBound bounds the point-query error factor of a sketch
// produced by Merge from sketches with window error epsSW and Count-Min
// error epsCM: the window error inflates to ε_sw+ε'_sw+ε_swε'_sw (here with
// ε'_sw = ε_sw), and the total follows Section 5.3.
func MergedPointErrorBound(s Split) float64 {
	esw := window.MergedRelativeError(s.EpsSW, s.EpsSW)
	return esw + s.EpsCM + esw*s.EpsCM
}

// HierarchicalPointErrorBound bounds the point-query error factor after h
// levels of hierarchical aggregation (Section 5.1 multi-level analysis
// applied to every counter).
func HierarchicalPointErrorBound(s Split, h int) float64 {
	esw := window.MultiLevelRelativeError(s.EpsSW, h)
	return esw + s.EpsCM + esw*s.EpsCM
}
