package core

import (
	"math"
	"math/rand"
	"testing"

	"ecmsketch/internal/window"
)

// buildDistributed splits one Zipf stream across n site sketches and an
// exact oracle over the union.
func buildDistributed(t *testing.T, p Params, n, events int, seed int64) ([]*Sketch, *exactOracle, Tick) {
	t.Helper()
	sites := make([]*Sketch, n)
	for i := range sites {
		sites[i] = mustECM(t, p)
	}
	oracle := newExactOracle(p.WindowLength)
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 1, 1000)
	var now Tick
	for i := 0; i < events; i++ {
		now += Tick(rng.Intn(2))
		k := zipf.Uint64()
		sites[rng.Intn(n)].Add(k, now)
		oracle.add(k, now)
	}
	for _, s := range sites {
		s.Advance(now)
	}
	return sites, oracle, now
}

func TestMergeEHSketches(t *testing.T) {
	const eps, N = 0.1, 2000
	p := Params{Epsilon: eps, Delta: 0.1, WindowLength: N, Seed: 55}
	sites, oracle, _ := buildDistributed(t, p, 4, 24000, 91)
	merged, err := Merge(sites...)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	bound := MergedPointErrorBound(merged.EffectiveSplit())
	l1 := float64(oracle.totalIn(N))
	for k := uint64(0); k < 60; k++ {
		got := merged.Estimate(k, N)
		want := float64(oracle.freq(k, N))
		if math.Abs(got-want) > bound*l1+1 {
			t.Errorf("merged Estimate(%d)=%v true=%v bound=%v", k, got, want, bound*l1)
		}
	}
	var sum uint64
	for _, s := range sites {
		sum += s.Count()
	}
	if merged.Count() != sum {
		t.Errorf("merged Count=%d, want %d", merged.Count(), sum)
	}
}

func TestMergeRWSketchesLossless(t *testing.T) {
	const eps, N = 0.25, 1000
	p := Params{Epsilon: eps, Delta: 0.2, Algorithm: window.AlgoRW, WindowLength: N, UpperBound: 8000, Seed: 66}
	sites, oracle, _ := buildDistributed(t, p, 3, 8000, 17)
	merged, err := Merge(sites...)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	l1 := float64(oracle.totalIn(N))
	bad := 0
	for k := uint64(0); k < 40; k++ {
		got := merged.Estimate(k, N)
		want := float64(oracle.freq(k, N))
		if math.Abs(got-want) > eps*l1+1 {
			bad++
		}
	}
	if bad > 8 {
		t.Errorf("merged RW sketch exceeded bound on %d/40 queries", bad)
	}
}

func TestMergeRejectsIncompatible(t *testing.T) {
	p1 := Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Seed: 1}
	p2 := Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100, Seed: 2}
	a, b := mustECM(t, p1), mustECM(t, p2)
	if _, err := Merge(a, b); err == nil {
		t.Fatal("Merge across seeds succeeded")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("Merge of nothing succeeded")
	}
	// Count-based sketches cannot be aggregated (Figure 2).
	pc := Params{Epsilon: 0.1, Delta: 0.1, Model: window.CountBased, WindowLength: 100, Seed: 1}
	c, d := mustECM(t, pc), mustECM(t, pc)
	if _, err := Merge(c, d); err == nil {
		t.Fatal("Merge of count-based sketches succeeded; paper proves impossibility")
	}
}

func TestHierarchicalMerge(t *testing.T) {
	// Tree aggregation as in the distributed experiments: 8 sites merged
	// pairwise over 3 levels.
	const eps, N = 0.1, 2000
	p := Params{Epsilon: eps, Delta: 0.1, WindowLength: N, Seed: 40}
	sites, oracle, _ := buildDistributed(t, p, 8, 32000, 23)
	level := sites
	h := 0
	for len(level) > 1 {
		var next []*Sketch
		for i := 0; i < len(level); i += 2 {
			m, err := Merge(level[i], level[i+1])
			if err != nil {
				t.Fatalf("Merge at level %d: %v", h, err)
			}
			next = append(next, m)
		}
		level = next
		h++
	}
	root := level[0]
	bound := HierarchicalPointErrorBound(root.EffectiveSplit(), h)
	l1 := float64(oracle.totalIn(N))
	for k := uint64(0); k < 50; k++ {
		got := root.Estimate(k, N)
		want := float64(oracle.freq(k, N))
		if math.Abs(got-want) > bound*l1+1 {
			t.Errorf("h=%d Estimate(%d)=%v true=%v bound=%v", h, k, got, want, bound*l1)
		}
	}
}

func TestECMMarshalRoundTrip(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		p := Params{Epsilon: 0.2, Delta: 0.1, Algorithm: algo, WindowLength: 500, UpperBound: 4000, Seed: 10}
		s := mustECM(t, p)
		rng := rand.New(rand.NewSource(44))
		var now Tick
		for i := 0; i < 4000; i++ {
			now += Tick(rng.Intn(2))
			s.Add(uint64(rng.Intn(100)), now)
		}
		s.Advance(now)
		dec, err := Unmarshal(s.Marshal())
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", algo, err)
		}
		if !s.Compatible(dec) {
			t.Fatalf("%v: decoded sketch incompatible", algo)
		}
		for k := uint64(0); k < 100; k++ {
			if g, w := dec.Estimate(k, 500), s.Estimate(k, 500); g != w {
				t.Fatalf("%v: Estimate(%d) decoded=%v original=%v", algo, k, g, w)
			}
		}
		if dec.Count() != s.Count() || dec.Now() != s.Now() {
			t.Errorf("%v: metadata mismatch after round trip", algo)
		}
	}
}

func TestECMUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal([]byte{0x00, 0x01}); err == nil {
		t.Error("Unmarshal of wrong tag succeeded")
	}
	p := Params{Epsilon: 0.2, Delta: 0.1, WindowLength: 100, Seed: 1}
	s := mustECM(t, p)
	s.Add(1, 1)
	enc := s.Marshal()
	for _, cut := range []int{1, 8, 20, len(enc) / 2} {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Errorf("Unmarshal accepted truncation to %d bytes", cut)
		}
	}
}

func TestMergeOfDecodedSketches(t *testing.T) {
	// The distributed pipeline: sites serialize, aggregator decodes and
	// merges. Must agree with merging the originals.
	p := Params{Epsilon: 0.15, Delta: 0.1, WindowLength: 1000, Seed: 33}
	sites, _, _ := buildDistributed(t, p, 2, 6000, 3)
	d0, err := Unmarshal(sites[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Unmarshal(sites[1].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Merge(sites[0], sites[1])
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if a, b := m1.Estimate(k, 1000), m2.Estimate(k, 1000); a != b {
			t.Fatalf("Estimate(%d): merge-of-originals=%v merge-of-decoded=%v", k, a, b)
		}
	}
}
