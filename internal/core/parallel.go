package core

// Parallel cell merging. Merge and PatchMerged re-derive destination cells
// one at a time, and each cell's output is a deterministic function of (that
// cell's input content, the merged clock) — cells are independent. The
// destination arena is not: appending a bucket may grow the shared slab or
// re-lay the level directories, and every mutation stamps the bank-wide
// version counter. So workers never touch the destination. Each worker folds
// a contiguous chunk of the cell list into a private chunk-sized scratch
// bank and encodes every merged cell in the bare per-cell wire form; a
// short sequential graft then replays the delta receiver's reset+decode
// path into the destination. Encode→decode reproduces a cell's canonical
// structure exactly (the producer/receiver equivalence the delta protocol
// pins), so the patched sketch Marshals byte-identically to the sequential
// replay — the equivalence TestParallelMergeByteIdentical gates.
//
// Version stamps are not part of Marshal output and absolute values differ
// between the two paths (replay and decode bump the counter a different
// number of times); what delta serving needs — every re-derived cell
// stamped above any previously issued cursor — holds on both, because both
// mutate exactly the re-derived cells.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ecmsketch/internal/window"
)

// mergeProcs caps the merge/patch worker pool; 0 means automatic
// (GOMAXPROCS). Stored atomically so benchmarks and servers can retune a
// live process.
var mergeProcs atomic.Int64

// SetMergeParallelism caps the number of worker goroutines Merge and
// PatchMerged fan cell replay across. n <= 0 restores the automatic choice
// (GOMAXPROCS at call time). 1 forces the sequential path — the twin the
// byte-identity tests compare against.
func SetMergeParallelism(n int) {
	if n < 0 {
		n = 0
	}
	mergeProcs.Store(int64(n))
}

// MergeParallelism reports the configured worker cap (0 = automatic).
func MergeParallelism() int { return int(mergeProcs.Load()) }

// minCellsPerMergeWorker keeps small patches sequential: below this many
// cells per worker the scratch-bank setup and graft cost more than the
// replay they parallelize.
const minCellsPerMergeWorker = 64

// MergeWorkersFor reports how many workers a merge or patch over ncells
// cells would fan across under the current configuration — 1 means the
// sequential path. Exposed so callers can report effective parallelism
// (coordinator refresh stats) without threading a value out of PatchMerged.
func MergeWorkersFor(ncells int) int {
	p := int(mergeProcs.Load())
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if lim := ncells / minCellsPerMergeWorker; p > lim {
		p = lim
	}
	if p < 1 {
		p = 1
	}
	return p
}

// applyMergeCells re-derives the destination cells named by cells (every
// cell when all) from the inputs at merged clock now. reset empties each
// cell first, as PatchMerged requires on a live destination; Merge passes
// false for its virgin output bank. Parallel when the cell count warrants
// it, byte-identical to the sequential replay either way.
func applyMergeCells(dst *Sketch, inputs []*Sketch, cells []int, all bool, now Tick, reset bool) {
	count := len(cells)
	if all {
		count = dst.d * dst.w
	}
	if w := MergeWorkersFor(count); w > 1 {
		if applyMergeCellsParallel(dst, inputs, cells, all, now, w) == nil {
			return
		}
		// A worker failed (scratch construction or a graft decode): fall
		// back to the in-place replay. Cells the graft already replaced are
		// re-derived from scratch, so the fallback must reset even on a
		// virgin destination.
		reset = true
	}
	applyMergeCellsSeq(dst, inputs, cells, all, now, reset)
}

// applyMergeCellsSeq is the single-goroutine replay: reset (when asked) and
// re-merge each destination cell in place, in cell order.
func applyMergeCellsSeq(dst *Sketch, inputs []*Sketch, cells []int, all bool, now Tick, reset bool) {
	n := dst.d * dst.w
	forEach := func(merge func(idx int)) {
		if all {
			for idx := 0; idx < n; idx++ {
				if reset {
					dst.bank.ResetCell(idx)
				}
				merge(idx)
			}
			return
		}
		for _, idx := range cells {
			if reset {
				dst.bank.ResetCell(idx)
			}
			merge(idx)
		}
	}
	switch {
	case dst.eh != nil:
		lists := make([][]window.Bucket, len(inputs))
		forEach(func(idx int) {
			for k, in := range inputs {
				lists[k] = in.eh.AppendBuckets(lists[k][:0], idx)
			}
			dst.eh.MergeCell(idx, now, lists)
		})
	case dst.dw != nil:
		ins := make([]*window.DWBank, len(inputs))
		for k, in := range inputs {
			ins[k] = in.dw
		}
		forEach(func(idx int) { dst.dw.MergeCell(idx, now, ins) })
	default:
		ins := make([]*window.RWBank, len(inputs))
		for k, in := range inputs {
			ins[k] = in.rw
		}
		forEach(func(idx int) { dst.rw.MergeCell(idx, ins) })
	}
}

// mergeChunk is one worker's contiguous share of the cell list and its
// encoded output: buf holds the bare cell encodings back to back, ends[j]
// the end offset of the chunk's j-th cell.
type mergeChunk struct {
	lo, hi int
	buf    []byte
	ends   []int
	err    error
}

// applyMergeCellsParallel fans the per-cell replay across workers private
// scratch banks (phase 1, parallel — inputs are only read) and grafts the
// encoded results into dst through the delta receiver's reset+decode path
// (phase 2, sequential, cheap: decode is a structured copy, not a replay).
// On error dst may be partially grafted; the caller re-runs the sequential
// replay, which re-derives every cell whole.
func applyMergeCellsParallel(dst *Sketch, inputs []*Sketch, cells []int, all bool, now Tick, workers int) error {
	count := len(cells)
	if all {
		count = dst.d * dst.w
	}
	cellAt := func(i int) int {
		if all {
			return i
		}
		return cells[i]
	}

	chunks := make([]mergeChunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chunks[w].lo = count * w / workers
		chunks[w].hi = count * (w + 1) / workers
		wg.Add(1)
		go func(ch *mergeChunk) {
			defer wg.Done()
			ch.err = mergeChunkCells(ch, dst, inputs, cellAt, now)
		}(&chunks[w])
	}
	wg.Wait()
	for w := range chunks {
		if chunks[w].err != nil {
			return chunks[w].err
		}
	}
	for w := range chunks {
		ch := &chunks[w]
		start := 0
		for j, end := range ch.ends {
			idx := cellAt(ch.lo + j)
			dst.bank.ResetCell(idx)
			if err := dst.bank.UnmarshalCell(idx, ch.buf[start:end]); err != nil {
				return err
			}
			start = end
		}
	}
	return nil
}

// mergeChunkCells merges one chunk's cells into a private scratch bank and
// encodes each merged cell into ch.buf. The scratch bank is chunk-sized:
// local cell j holds the merge of the inputs' cell cellAt(ch.lo+j).
func mergeChunkCells(ch *mergeChunk, dst *Sketch, inputs []*Sketch, cellAt func(int) int, now Tick) error {
	n := ch.hi - ch.lo
	if n == 0 {
		return nil
	}
	ch.ends = make([]int, 0, n)
	switch {
	case dst.eh != nil:
		scratch, err := window.NewEHBank(dst.wcfg, n)
		if err != nil {
			return err
		}
		lists := make([][]window.Bucket, len(inputs))
		var bs []window.Bucket
		for j := 0; j < n; j++ {
			idx := cellAt(ch.lo + j)
			for k, in := range inputs {
				lists[k] = in.eh.AppendBuckets(lists[k][:0], idx)
			}
			scratch.MergeCell(j, now, lists)
			ch.buf, bs = scratch.AppendMarshalCellBare(ch.buf, j, bs)
			ch.ends = append(ch.ends, len(ch.buf))
		}
	case dst.dw != nil:
		scratch, err := window.NewDWBank(dst.wcfg, n)
		if err != nil {
			return err
		}
		ins := make([]*window.DWBank, len(inputs))
		for k, in := range inputs {
			ins[k] = in.dw
		}
		for j := 0; j < n; j++ {
			scratch.MergeCellFrom(j, cellAt(ch.lo+j), now, ins)
			ch.buf = scratch.AppendMarshalCellBare(ch.buf, j)
			ch.ends = append(ch.ends, len(ch.buf))
		}
	default:
		scratch, err := window.NewRWBank(dst.wcfg, n)
		if err != nil {
			return err
		}
		ins := make([]*window.RWBank, len(inputs))
		for k, in := range inputs {
			ins[k] = in.rw
		}
		for j := 0; j < n; j++ {
			scratch.MergeCellFrom(j, cellAt(ch.lo+j), ins)
			ch.buf = scratch.AppendMarshalCellBare(ch.buf, j)
			ch.ends = append(ch.ends, len(ch.buf))
		}
	}
	return nil
}
