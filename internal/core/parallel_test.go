package core

import (
	"bytes"
	"testing"

	"ecmsketch/internal/window"
)

// parallelParams gives the merge an array large enough (256 cells) that the
// worker pool actually engages when parallelism is forced on.
func parallelParams(algo window.Algorithm) Params {
	return Params{Epsilon: 0.1, Delta: 0.1, Width: 128, Depth: 2,
		WindowLength: 1000, Seed: 42, Algorithm: algo, UpperBound: 1 << 16}
}

// loadInputs builds n compatible sketches with overlapping, skewed activity
// settled to a common clock.
func loadInputs(t *testing.T, algo window.Algorithm, n int) []*Sketch {
	t.Helper()
	inputs := make([]*Sketch, n)
	for i := range inputs {
		s, err := New(parallelParams(algo))
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = s
	}
	tick := Tick(0)
	for k, in := range inputs {
		for j := 0; j < 300; j++ {
			tick++
			in.AddN(uint64(k*977+j*131), tick, uint64(j%5+1))
			in.AddN(uint64(j%17), tick, 1) // shared hot keys across inputs
		}
	}
	for _, in := range inputs {
		in.Advance(tick)
	}
	return inputs
}

// TestParallelMergeByteIdentical pins that Merge fanned across a worker
// pool marshals byte-identically to the sequential cell loop, for all three
// algorithms, including the single-input degenerate shape.
func TestParallelMergeByteIdentical(t *testing.T) {
	defer SetMergeParallelism(0)
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		t.Run(algo.String(), func(t *testing.T) {
			inputs := loadInputs(t, algo, 4)
			for _, nIn := range []int{1, 4} {
				SetMergeParallelism(1)
				seq, err := Merge(inputs[:nIn]...)
				if err != nil {
					t.Fatal(err)
				}
				SetMergeParallelism(8)
				par, err := Merge(inputs[:nIn]...)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(seq.Marshal(), par.Marshal()) {
					t.Fatalf("%d-input parallel merge diverged from sequential", nIn)
				}
			}
		})
	}
}

// TestParallelPatchMergedByteIdentical runs the incremental refresh loop of
// TestPatchMergedMatchesMerge with the worker pool forced on, pinning the
// parallel patch byte-identical to a sequential twin maintained side by
// side — across dense, sparse, single-site and idle rounds, and through a
// membership-change rebuild.
func TestParallelPatchMergedByteIdentical(t *testing.T) {
	defer SetMergeParallelism(0)
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		t.Run(algo.String(), func(t *testing.T) {
			const nInputs = 4
			inputs := make([]*Sketch, nInputs)
			for i := range inputs {
				s, err := New(parallelParams(algo))
				if err != nil {
					t.Fatal(err)
				}
				inputs[i] = s
			}
			SetMergeParallelism(1)
			seq, err := Merge(inputs...)
			if err != nil {
				t.Fatal(err)
			}
			SetMergeParallelism(8)
			par, err := Merge(inputs...)
			if err != nil {
				t.Fatal(err)
			}
			seqFeed, parFeed := newPatchFeed(inputs), newPatchFeed(inputs)

			tick := Tick(0)
			for round := 0; round < 20; round++ {
				switch round % 4 {
				case 0: // dense: every input busy, wide key spread
					for k, in := range inputs {
						for j := 0; j < 120; j++ {
							tick++
							in.AddN(uint64(k*977+j*131+round), tick, uint64(j%5+1))
						}
					}
				case 1: // single site: one input, few keys
					in := inputs[round%nInputs]
					for j := 0; j < 3; j++ {
						tick += 7
						in.AddN(uint64(round*31+j), tick, 2)
					}
				case 2: // skewed: two inputs hammer the same keys
					for _, in := range inputs[:2] {
						tick++
						in.AddN(42, tick, 9)
						in.AddN(43, tick, 1)
					}
				case 3: // idle: clocks move, windows expire
					tick += 700
				}
				for _, in := range inputs {
					in.AdvanceNoting(tick, func(idx int) {
						seqFeed.note(idx)
						parFeed.note(idx)
					})
				}
				SetMergeParallelism(1)
				if err := PatchMerged(seq, inputs, seqFeed.take(inputs), false, nil); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				SetMergeParallelism(8)
				if err := PatchMerged(par, inputs, parFeed.take(inputs), false, nil); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if !bytes.Equal(seq.Marshal(), par.Marshal()) {
					t.Fatalf("round %d: parallel patch diverged from sequential", round)
				}
			}

			// Membership change: all=true rebuild over a shrunk input set.
			SetMergeParallelism(1)
			if err := PatchMerged(seq, inputs[1:], nil, true, nil); err != nil {
				t.Fatal(err)
			}
			SetMergeParallelism(8)
			if err := PatchMerged(par, inputs[1:], nil, true, nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seq.Marshal(), par.Marshal()) {
				t.Fatal("membership-change rebuild diverged from sequential")
			}

			// The patched roots must also serve deltas: a puller holding a
			// pre-patch cursor materializes the same state from either root.
			if _, _, _, err := par.DeltaSnapshot(Cursor{}); err != nil {
				t.Fatalf("parallel-patched root cannot serve deltas: %v", err)
			}
		})
	}
}

// TestMergeWorkersFor pins the pool-sizing policy: never more workers than
// the configured cap, never so many that a worker gets under the minimum
// chunk, never fewer than one.
func TestMergeWorkersFor(t *testing.T) {
	defer SetMergeParallelism(0)
	SetMergeParallelism(4)
	if got := MergeWorkersFor(0); got != 1 {
		t.Errorf("MergeWorkersFor(0) = %d, want 1", got)
	}
	if got := MergeWorkersFor(minCellsPerMergeWorker - 1); got != 1 {
		t.Errorf("tiny patch got %d workers, want 1", got)
	}
	if got := MergeWorkersFor(minCellsPerMergeWorker * 2); got != 2 {
		t.Errorf("2-chunk patch got %d workers, want 2", got)
	}
	if got := MergeWorkersFor(1 << 20); got != 4 {
		t.Errorf("huge patch got %d workers, want cap 4", got)
	}
	if MergeParallelism() != 4 {
		t.Errorf("MergeParallelism() = %d, want 4", MergeParallelism())
	}
	SetMergeParallelism(-3)
	if MergeParallelism() != 0 {
		t.Errorf("negative cap not normalized to automatic")
	}
}
