package core

import (
	"errors"
	"math"
)

// QueryBatch is a multi-key sliding-window query request: point estimates
// for every key in Keys, plus optionally the total count and the self-join
// size, all evaluated over the same window suffix. Batching queries is the
// read-side counterpart of batching Events on ingest: one QueryBatch is
// answered from one consistent cut of the stream, where the equivalent
// sequence of single-key calls on a concurrent engine could interleave with
// writers and observe a different state per call.
type QueryBatch struct {
	// Keys are the point-query keys; Estimates in the result aligns with
	// this slice index by index. Empty is allowed (e.g. total-only queries).
	Keys []uint64
	// Range is the window suffix r to evaluate, in ticks; 0 means the whole
	// window.
	Range Tick
	// Total requests an EstimateTotal (‖a_r‖₁) alongside the point answers.
	Total bool
	// SelfJoin requests a SelfJoin (F₂) estimate alongside the point answers.
	SelfJoin bool
}

// QueryResult answers a QueryBatch.
type QueryResult struct {
	// Estimates holds one point estimate per requested key, in request order.
	Estimates []float64
	// Total is the ‖a_r‖₁ estimate; meaningful only if requested.
	Total float64
	// SelfJoin is the F₂ estimate; meaningful only if requested.
	SelfJoin float64
	// Now is the engine clock the answers were evaluated at.
	Now Tick
	// Range is the resolved window suffix (the request's Range, with 0
	// replaced by the window length).
	Range Tick
}

// QueryBatch answers a multi-key query in one pass. Point answers are
// exactly Estimate(key, r) for each key; when both Total and SelfJoin are
// requested they share a single sweep over the counter array (half the cell
// evaluations of two separate calls) while remaining bit-identical to
// EstimateTotal and SelfJoin run back to back.
//
// The error return exists for the BatchQuerier contract shared with
// concurrent and remote front ends; a local sketch never fails.
func (s *Sketch) QueryBatch(q QueryBatch) (QueryResult, error) {
	r := q.Range
	if r == 0 {
		r = s.wcfg.Length
	}
	res := QueryResult{Now: s.now, Range: r}
	if len(q.Keys) > 0 {
		res.Estimates = make([]float64, len(q.Keys))
		for i, key := range q.Keys {
			res.Estimates[i] = s.Estimate(key, r)
		}
	}
	switch {
	case q.Total && q.SelfJoin:
		res.Total, res.SelfJoin = s.totalAndSelfJoin(r)
	case q.Total:
		res.Total = s.EstimateTotal(r)
	case q.SelfJoin:
		res.SelfJoin = s.SelfJoin(r)
	}
	return res, nil
}

// QueryDirect answers the point-only form of QueryBatch. A single sketch
// has no stripes: every key already reads its own cells with zero merge
// error, so the direct read and the consistent batch coincide. The method
// exists so local sketches satisfy the same DirectQuerier contract the
// sharded engine exposes, including its aggregate rejection — a caller
// switching a front end never has a query class silently change meaning.
func (s *Sketch) QueryDirect(q QueryBatch) (QueryResult, error) {
	if q.Total || q.SelfJoin {
		return QueryResult{}, errors.New("core: direct reads answer point queries only (request aggregates via QueryBatch)")
	}
	return s.QueryBatch(q)
}

// totalAndSelfJoin evaluates every counter once and derives both the
// ‖a_r‖₁ and F₂ estimates, with the same per-row accumulation order (and
// hence bit-identical results) as EstimateTotal and SelfJoin run separately.
func (s *Sketch) totalAndSelfJoin(r Tick) (total, selfJoin float64) {
	bestSum := math.Inf(1)
	bestSq := math.Inf(1)
	for j := 0; j < s.d; j++ {
		var sum, sq float64
		for i := 0; i < s.w; i++ {
			v := s.cellEstimateRange(j*s.w+i, r)
			sum += v
			if v != 0 {
				sq += v * v
			}
		}
		if sum < bestSum {
			bestSum = sum
		}
		if sq < bestSq {
			bestSq = sq
		}
	}
	if math.IsInf(bestSum, 1) {
		bestSum = 0
	}
	return bestSum, bestSq
}
