package core

// Incremental re-merge: maintain an existing Merge output in place instead
// of re-merging P-ways every interval. PatchMerged re-derives exactly the
// cells named by the change feed and re-advances the rest, and the result is
// byte-identical (Marshal) to a from-scratch Merge over the same inputs —
// the equivalence the coordinator's incremental refresh and the DeltaState
// materialize cache are pinned against.
//
// Why patching is exact: Merge's per-cell output is a deterministic function
// of (that cell's input lists, the merged clock). A cell whose input lists
// did not change replays to the same pre-advance state it had last interval,
// and window expiry is monotone in the clock — advancing the retained state
// from the old merged clock to the new one drops exactly the content a
// from-scratch replay followed by a single advance would drop. So unchanged
// cells need only the advance, and changed cells need only their own replay.
// (This holds for the flat P-way Merge; the pairwise AggregateTree shape
// re-replays already-merged histograms, whose half/half splits are not
// stable under patching — which is why the incremental path is defined
// against Merge and the coordinator's incremental mode merges flat.)

import (
	"errors"
	"fmt"
	"slices"

	"ecmsketch/internal/hashing"
)

// PatchMerged updates dst — a sketch produced by Merge(inputs...) — to the
// inputs' current state, given the indices of every cell whose content
// changed in any input since dst was produced (or all == true when cell
// granularity was lost). cells may hold duplicates and need not be sorted.
// Input order must match the order dst was merged in: the merged identifier
// salt folds over inputs in sequence.
//
// Mutated cells bump dst's bank version and per-cell stamps like any other
// arrival mutation, so a dst serving delta snapshots advertises exactly the
// patched cells to its own pullers; clock-driven expiry on untouched cells
// deliberately does not bump versions (receivers replay expiry themselves)
// but is reported to note, when non-nil, for the change feed.
//
// On error dst is unmodified: validation happens before the first mutation.
func PatchMerged(dst *Sketch, inputs []*Sketch, cells []int, all bool, note func(int)) error {
	if dst == nil || len(inputs) == 0 {
		return errors.New("core: PatchMerged requires a destination and at least one input")
	}
	if dst.bank == nil {
		return fmt.Errorf("core: algorithm %v does not support incremental re-merge", dst.params.Algorithm)
	}
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("core: PatchMerged input %d is nil", i)
		}
		if !dst.Compatible(in) {
			return fmt.Errorf("core: PatchMerged input %d incompatible with destination", i)
		}
	}

	// Scalars, exactly as Merge computes them.
	salt := uint64(0x9e37_79b9_7f4a_7c15)
	var now Tick
	var count uint64
	for _, in := range inputs {
		salt = hashing.Mix64(salt ^ in.salt)
		if in.now > now {
			now = in.now
		}
		count += in.count
	}

	n := dst.d * dst.w
	if !all {
		cells = slices.Clone(cells)
		slices.Sort(cells)
		cells = slices.Compact(cells)
		for _, idx := range cells {
			if idx < 0 || idx >= n {
				return fmt.Errorf("core: PatchMerged cell index %d out of range", idx)
			}
		}
	}
	// Re-derive the changed cells: reset and replay each one, fanned across
	// a bounded worker pool when the patch is large enough to warrant it
	// (byte-identical to the sequential replay either way; see parallel.go).
	applyMergeCells(dst, inputs, cells, all, now, true)
	dst.salt = salt
	dst.count = count
	dst.seq = 0
	dst.now = now
	dst.AdvanceNoting(now, note)
	return nil
}
