package core

import (
	"bytes"
	"testing"

	"ecmsketch/internal/window"
)

// patchFeed tracks, per input, the bank version at the last patch and
// collects the union of changed cells across inputs — the same feed a
// coordinator assembles from its sites' delta applications.
type patchFeed struct {
	baseVers []uint64
	cells    map[int]struct{}
}

func newPatchFeed(inputs []*Sketch) *patchFeed {
	f := &patchFeed{baseVers: make([]uint64, len(inputs)), cells: map[int]struct{}{}}
	for i, in := range inputs {
		f.baseVers[i] = in.DeltaVersion()
	}
	return f
}

func (f *patchFeed) note(idx int) { f.cells[idx] = struct{}{} }

// take collects arrival-changed cells since the last take (expiry-noted
// cells arrive via note) and resets the baselines.
func (f *patchFeed) take(inputs []*Sketch) []int {
	n := inputs[0].d * inputs[0].w
	for k, in := range inputs {
		for i := 0; i < n; i++ {
			if in.bank.CellChangedSince(i, f.baseVers[k]) {
				f.cells[i] = struct{}{}
			}
		}
		f.baseVers[k] = in.DeltaVersion()
	}
	out := make([]int, 0, len(f.cells))
	for idx := range f.cells {
		out = append(out, idx)
	}
	f.cells = map[int]struct{}{}
	return out
}

// TestPatchMergedMatchesMerge pins the incremental re-merge equivalence for
// all three algorithms: a merged sketch patched every interval from the
// changed-cell feed stays byte-identical (Marshal) to a from-scratch Merge
// over the same inputs, across dense, sparse, skewed and idle intervals.
func TestPatchMergedMatchesMerge(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		t.Run(algo.String(), func(t *testing.T) {
			const nInputs = 4
			inputs := make([]*Sketch, nInputs)
			for i := range inputs {
				s, err := New(sparseParams(algo))
				if err != nil {
					t.Fatal(err)
				}
				inputs[i] = s
			}
			merged, err := Merge(inputs...)
			if err != nil {
				t.Fatal(err)
			}
			feed := newPatchFeed(inputs)

			tick := Tick(0)
			for round := 0; round < 30; round++ {
				switch round % 4 {
				case 0: // dense: every input busy
					for k, in := range inputs {
						for j := 0; j < 40; j++ {
							tick++
							in.AddN(uint64(k*977+j*131), tick, uint64(j%5+1))
						}
					}
				case 1: // sparse: one input, few keys
					in := inputs[round%nInputs]
					for j := 0; j < 3; j++ {
						tick += 7
						in.AddN(uint64(round*31+j), tick, 2)
					}
				case 2: // skewed: two inputs hammer the same keys
					for _, in := range inputs[:2] {
						tick++
						in.AddN(42, tick, 9)
						in.AddN(43, tick, 1)
					}
				case 3: // idle: clocks move, windows expire
					tick += 700
				}
				// Settle everyone to a common interval clock, feeding expiry
				// notes into the union like a coordinator's apply step does.
				for _, in := range inputs {
					in.AdvanceNoting(tick, feed.note)
				}
				if err := PatchMerged(merged, inputs, feed.take(inputs), false, nil); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				fresh, err := Merge(inputs...)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if !bytes.Equal(merged.Marshal(), fresh.Marshal()) {
					t.Fatalf("round %d: patched merge diverged from from-scratch merge", round)
				}
			}

			// Membership change: rebuild in place with all=true over a
			// different input set; byte-identical to a fresh flat merge.
			if err := PatchMerged(merged, inputs[1:], nil, true, nil); err != nil {
				t.Fatal(err)
			}
			fresh, err := Merge(inputs[1:]...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged.Marshal(), fresh.Marshal()) {
				t.Fatal("all=true rebuild diverged from from-scratch merge")
			}
		})
	}
}

// TestPatchMergedValidation pins that bad calls fail before mutating dst.
func TestPatchMergedValidation(t *testing.T) {
	a, err := New(sparseParams(window.AlgoEH))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sparseParams(window.AlgoEH))
	if err != nil {
		t.Fatal(err)
	}
	a.AddN(1, 5, 3)
	b.AddN(2, 6, 4)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	before := merged.Marshal()

	if err := PatchMerged(nil, []*Sketch{a}, nil, true, nil); err == nil {
		t.Error("nil destination accepted")
	}
	if err := PatchMerged(merged, nil, nil, true, nil); err == nil {
		t.Error("no inputs accepted")
	}
	if err := PatchMerged(merged, []*Sketch{a, nil}, nil, true, nil); err == nil {
		t.Error("nil input accepted")
	}
	other, err := New(Params{Epsilon: 0.05, Delta: 0.1, WindowLength: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := PatchMerged(merged, []*Sketch{a, other}, nil, true, nil); err == nil {
		t.Error("incompatible input accepted")
	}
	if err := PatchMerged(merged, []*Sketch{a, b}, []int{merged.d * merged.w}, false, nil); err == nil {
		t.Error("out-of-range cell index accepted")
	}
	if !bytes.Equal(merged.Marshal(), before) {
		t.Error("failed PatchMerged mutated the destination")
	}
}
