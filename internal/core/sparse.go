package core

// Sparse sketch encoding (wireSparse): the hybrid-bootstrap half of the
// delta protocol. A multipart baseline carries every stripe's full d×w cell
// array, but a stripe holds only its share of the keyspace, so most of its
// cells are untouched — and an untouched cell at the sketch clock encodes to
// exactly what a fresh cell advanced there would. MarshalSparse elides those
// cells, listing their indices instead of their encodings, and ships the
// rest in the config-elided bare form deltas already use. The decoder
// reconstructs a sketch byte-identical (Marshal) to the dense original, so
// every downstream invariant — merge identity, delta application, cursor
// validity — is untouched; only the baseline transfer shrinks, from ~2× the
// merged-view encoding to roughly the occupied cells alone.
//
// Randomized-wave cells carry one process-random field even when untouched
// (the auto-identifier salt), which the sparse form ships as a compact
// per-elided-cell list — still an order of magnitude below the cell's dense
// encoding, whose per-copy level directories dominate.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ecmsketch/internal/window"
)

// MarshalSparse encodes the sketch like Marshal but elides cells whose
// encoding the decoder can reproduce without bytes: untouched cells sitting
// at the sketch clock. UnmarshalAny inverts it; the reconstruction is
// byte-identical (Marshal) to the dense encoding. Falls back to the dense
// form when nothing can be elided (or for the test-only per-object engines),
// so the result is never meaningfully larger than Marshal.
func (s *Sketch) MarshalSparse() []byte {
	if s.bank == nil {
		return s.Marshal()
	}
	n := s.d * s.w
	var elided []int
	for i := 0; i < n; i++ {
		if s.bank.CellUntouched(i) && s.bank.Now(i) == s.now {
			elided = append(elided, i)
		}
	}
	if len(elided) == 0 {
		return s.Marshal()
	}
	dst := []byte{wireSparse}
	dst = s.appendMarshalHeader(dst)
	dst = binary.AppendUvarint(dst, uint64(len(elided)))
	prev := 0
	for _, idx := range elided {
		dst = binary.AppendUvarint(dst, uint64(idx-prev))
		prev = idx
	}
	if s.rw != nil {
		for _, idx := range elided {
			dst = binary.AppendUvarint(dst, s.rw.CellIDSalt(idx))
		}
	}
	var cell []byte
	var scratch []window.Bucket
	k := 0
	for i := 0; i < n; i++ {
		if k < len(elided) && elided[k] == i {
			k++
			continue
		}
		switch {
		case s.eh != nil:
			cell, scratch = s.eh.AppendMarshalCellBare(cell[:0], i, scratch)
		case s.dw != nil:
			cell = s.dw.AppendMarshalCellBare(cell[:0], i)
		default:
			cell = s.rw.AppendMarshalCellBare(cell[:0], i)
		}
		dst = binary.AppendUvarint(dst, uint64(len(cell)))
		dst = append(dst, cell...)
	}
	return dst
}

// UnmarshalAny reconstructs a sketch from either encoding: dense (wireECM,
// Marshal) or sparse (wireSparse, MarshalSparse). Receivers in the delta
// protocol decode through this, so producers may ship whichever form is
// smaller.
func UnmarshalAny(b []byte) (*Sketch, error) {
	if len(b) == 0 {
		return nil, errors.New("core: empty sketch encoding")
	}
	switch b[0] {
	case wireECM:
		return Unmarshal(b)
	case wireSparse:
		return unmarshalSparse(b)
	}
	return nil, errors.New("core: not an ECM-sketch encoding")
}

func unmarshalSparse(b []byte) (*Sketch, error) {
	h, off, err := readMarshalHeader(b, 1)
	if err != nil {
		return nil, err
	}
	s, err := New(h.p)
	if err != nil {
		return nil, err
	}
	if s.bank == nil {
		return nil, fmt.Errorf("core: sparse encoding for algorithm %v", h.p.Algorithm)
	}
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, errors.New("core: truncated sparse encoding")
		}
		off += n
		return v, nil
	}
	n := s.d * s.w
	nElided, err := getU()
	if err != nil {
		return nil, err
	}
	if nElided > uint64(n) {
		return nil, fmt.Errorf("core: sparse encoding elides %d of %d cells", nElided, n)
	}
	elided := make([]int, nElided)
	skip := make([]bool, n)
	prev := 0
	for k := range elided {
		dIdx, err := getU()
		if err != nil {
			return nil, err
		}
		// Bound the increment before converting: a huge varint would wrap
		// int and sneak a negative index past the range check.
		if dIdx > uint64(n) {
			return nil, fmt.Errorf("core: sparse cell index increment %d out of range", dIdx)
		}
		idx := prev + int(dIdx)
		if idx >= n || (k > 0 && dIdx == 0) {
			return nil, fmt.Errorf("core: sparse cell index %d out of range", idx)
		}
		prev = idx
		elided[k] = idx
		skip[idx] = true
	}
	var salts []uint64
	if s.rw != nil {
		salts = make([]uint64, nElided)
		for k := range salts {
			if salts[k], err = getU(); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < n; i++ {
		if skip[i] {
			continue
		}
		ln, err := getU()
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(b)-off) {
			return nil, errors.New("core: truncated sparse cell encoding")
		}
		enc := b[off : off+int(ln)]
		off += int(ln)
		if err := s.bank.UnmarshalCell(i, enc); err != nil {
			return nil, fmt.Errorf("core: sparse cell %d: %w", i, err)
		}
	}
	if off != len(b) {
		return nil, errors.New("core: trailing bytes in sparse encoding")
	}
	// Elided cells are fresh cells moved to the header clock (with their
	// identifier salt restored for randomized waves); shipped cells carry
	// their own clocks, so only the elided ones are advanced here.
	for k, idx := range elided {
		if s.rw != nil {
			s.rw.SetCellIDSalt(idx, salts[k])
		}
		s.bank.Advance(idx, h.now)
	}
	s.now = h.now
	s.count = h.count
	s.salt = h.salt
	s.seq = h.seq
	return s, nil
}
