package core

import (
	"bytes"
	"testing"

	"ecmsketch/internal/window"
)

func sparseParams(algo window.Algorithm) Params {
	return Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, Seed: 42, Algorithm: algo, UpperBound: 1 << 16}
}

// TestSparseRoundTripBitIdentical pins the sparse encoding contract for all
// three algorithms: the decoded sketch marshals byte-identically to the
// dense original, across fresh, sparsely occupied, settled and fully
// expired states — and actually elides, shrinking sparse baselines.
func TestSparseRoundTripBitIdentical(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		t.Run(algo.String(), func(t *testing.T) {
			s, err := New(sparseParams(algo))
			if err != nil {
				t.Fatal(err)
			}
			check := func(stage string, wantSmaller bool) {
				t.Helper()
				dense := s.Marshal()
				sparse := s.MarshalSparse()
				back, err := UnmarshalAny(sparse)
				if err != nil {
					t.Fatalf("%s: decode sparse: %v", stage, err)
				}
				if !bytes.Equal(back.Marshal(), dense) {
					t.Fatalf("%s: sparse round trip is not byte-identical to dense", stage)
				}
				if wantSmaller && len(sparse) >= len(dense) {
					t.Fatalf("%s: sparse %d B not smaller than dense %d B", stage, len(sparse), len(dense))
				}
				if !wantSmaller && len(sparse) > len(dense) {
					t.Fatalf("%s: sparse %d B larger than dense %d B", stage, len(sparse), len(dense))
				}
			}

			check("fresh", true)

			// A handful of keys: most cells stay untouched mid-ingest (cell
			// clocks diverge from the sketch clock, so elision is partial but
			// the round trip must still be exact).
			for k := 0; k < 8; k++ {
				s.AddN(uint64(k*1007), Tick(10+k), uint64(k+1))
			}
			check("unsettled", false)

			// Settled: untouched cells sit at the sketch clock and elide.
			s.Advance(s.Now())
			check("settled", true)

			// Everything expired: EH cells drain back to untouched (and
			// elide again); wave cells keep rank/eviction marks and ship.
			s.Advance(s.Now() + 10*1000)
			check("expired", true)
		})
	}
}

// TestSparseRejectsCorrupt exercises the sparse decoder's validation: out
// of range and duplicate elided indices, truncation, and trailing bytes.
func TestSparseRejectsCorrupt(t *testing.T) {
	s, err := New(sparseParams(window.AlgoEH))
	if err != nil {
		t.Fatal(err)
	}
	s.AddN(7, 5, 3)
	s.Advance(s.Now())
	enc := s.MarshalSparse()
	if enc[0] != wireSparse {
		t.Fatalf("expected a sparse encoding, tag 0x%02x", enc[0])
	}
	if _, err := UnmarshalAny(enc[:len(enc)-1]); err == nil {
		t.Error("truncated sparse encoding accepted")
	}
	if _, err := UnmarshalAny(append(append([]byte(nil), enc...), 0xAA)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := UnmarshalAny([]byte{wireSparse}); err == nil {
		t.Error("empty sparse body accepted")
	}
}
