// Package core implements the ECM-sketch (Exponential Count-Min sketch), the
// paper's primary contribution: a Count-Min sketch whose counters are
// sliding-window synopses, summarizing the item frequencies of a
// high-dimensional stream over time-based or count-based sliding windows
// with probabilistic accuracy guarantees, and supporting order-preserving
// aggregation of sketches built at distributed sites.
package core

import (
	"fmt"
	"math"
)

// QueryKind selects which query type the ε-split optimizes memory for.
type QueryKind uint8

const (
	// PointQuery optimizes for point (frequency) queries: the total error of
	// an estimate fˆ(x,r) is at most (ε_sw+ε_cm+ε_swε_cm)·||a_r||₁ with
	// probability 1-δ (Theorem 1).
	PointQuery QueryKind = iota
	// InnerProductQuery optimizes for inner-product/self-join queries, whose
	// error bound is (ε_sw²+2ε_sw+ε_cm(1+ε_sw)²)·||a_r||₁·||b_r||₁
	// (Theorem 2).
	InnerProductQuery
)

// String names the query kind.
func (k QueryKind) String() string {
	switch k {
	case PointQuery:
		return "point"
	case InnerProductQuery:
		return "inner-product"
	default:
		return fmt.Sprintf("QueryKind(%d)", uint8(k))
	}
}

// Split is a division of the total error budget ε between the Count-Min
// array (EpsCM, which sets the array width) and the per-counter sliding
// window synopses (EpsSW).
type Split struct {
	EpsCM float64
	EpsSW float64
}

// SplitPoint returns the memory-optimal split for point queries on
// deterministic-synopsis sketches (Section 4.1):
//
//	ε_sw = ε_cm = √(1+ε) − 1
//
// which satisfies ε_sw + ε_cm + ε_sw·ε_cm = ε while minimizing the
// O(1/(ε_sw·ε_cm)) memory bound.
func SplitPoint(eps float64) Split {
	v := math.Sqrt(1+eps) - 1
	return Split{EpsCM: v, EpsSW: v}
}

// SplitInnerProduct returns the memory-optimal split for inner-product
// queries (Section 4.1):
//
//	ε_sw = −1 − (3+3ε)/(3^(4/3)·A) + A/3^(2/3),
//	A    = (9+9ε+√3·√(28+57ε+30ε²+ε³))^(1/3)
//	ε_cm = (ε − ε_sw² − 2ε_sw) / (1+ε_sw)²
//
// which satisfies ε_sw² + 2ε_sw + ε_cm(1+ε_sw)² = ε.
func SplitInnerProduct(eps float64) Split {
	a := math.Cbrt(9 + 9*eps + math.Sqrt(3)*math.Sqrt(28+57*eps+30*eps*eps+eps*eps*eps))
	esw := -1 - (3+3*eps)/(math.Pow(3, 4.0/3)*a) + a/math.Pow(3, 2.0/3)
	ecm := (eps - esw*esw - 2*esw) / ((1 + esw) * (1 + esw))
	return Split{EpsCM: ecm, EpsSW: esw}
}

// SplitPointRW returns the memory-optimal split for point queries on
// randomized-wave sketches, whose window synopses cost O(1/ε_sw²) instead of
// O(1/ε_sw) (Section 4.2.2):
//
//	ε_sw = (√(ε²+10ε+9) + ε − 3)/4
//	ε_cm = (3ε − √(ε²+10ε+9) + 3)/(ε + √(ε²+10ε+9) + 1)
func SplitPointRW(eps float64) Split {
	r := math.Sqrt(eps*eps + 10*eps + 9)
	return Split{
		EpsSW: (r + eps - 3) / 4,
		EpsCM: (3*eps - r + 3) / (eps + r + 1),
	}
}

// NaiveSplit halves the budget between the two sources of error without
// regard to memory: ε_sw = ε_cm = ε/2 would overshoot the combined bound
// slightly, so the naive split solves x + x + x² = ε. It exists as the
// ablation baseline for the optimal splits above.
func NaiveSplit(eps float64) Split {
	// 2x + x² = ε  ⇒  x = √(1+ε) − 1 — which for point queries coincides
	// with the optimal split; for inner products it does not.
	x := math.Sqrt(1+eps) - 1
	return Split{EpsCM: x, EpsSW: x}
}

// PointErrorBound evaluates the combined point-query error factor
// ε_sw + ε_cm + ε_sw·ε_cm of a split (Theorem 1).
func (s Split) PointErrorBound() float64 {
	return s.EpsSW + s.EpsCM + s.EpsSW*s.EpsCM
}

// InnerProductErrorBound evaluates the combined inner-product error factor
// ε_sw² + 2ε_sw + ε_cm(1+ε_sw)² of a split (Theorem 2).
func (s Split) InnerProductErrorBound() float64 {
	return s.EpsSW*s.EpsSW + 2*s.EpsSW + s.EpsCM*(1+s.EpsSW)*(1+s.EpsSW)
}

// valid reports whether both components are usable error parameters. The
// lower bound mirrors window.MinEpsilon: splits below it would demand
// absurd (and overflow-prone) allocations.
func (s Split) valid() bool {
	const min = 1e-4
	return s.EpsCM >= min && s.EpsCM < 1 && s.EpsSW >= min && s.EpsSW < 1
}
