package core

import (
	"math/rand"
	"testing"

	"ecmsketch/internal/window"
)

// TestWireSizeMatchesMarshal pins WireSize to the one thing it promises:
// exactly len(Marshal()), for every counter algorithm, at every stream
// stage the coordinator charges transfers at (empty, mid-stream, advanced,
// merged).
func TestWireSizeMatchesMarshal(t *testing.T) {
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		p := Params{
			Epsilon: 0.15, Delta: 0.1, WindowLength: 5000,
			Algorithm: algo, UpperBound: 20000, Seed: 7,
		}
		s := mustECM(t, p)
		check := func(stage string, sk *Sketch) {
			t.Helper()
			if got, want := sk.WireSize(), len(sk.Marshal()); got != want {
				t.Errorf("algo %v, %s: WireSize() = %d, len(Marshal()) = %d", algo, stage, got, want)
			}
		}
		check("empty", s)
		rng := rand.New(rand.NewSource(3))
		var now Tick
		for i := 0; i < 8000; i++ {
			now += Tick(rng.Intn(2))
			if now == 0 {
				now = 1
			}
			s.Add(rng.Uint64()%512, now)
		}
		check("mid-stream", s)
		s.Advance(now + 3000)
		check("advanced (partially expired)", s)

		other := mustECM(t, p)
		for i := 0; i < 2000; i++ {
			other.Add(rng.Uint64()%512, Tick(i/2+1))
		}
		other.Advance(now + 3000)
		m, err := Merge(s, other)
		if err != nil {
			t.Fatalf("algo %v: Merge: %v", algo, err)
		}
		check("merged", m)
	}
}
