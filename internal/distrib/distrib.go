// Package distrib simulates the paper's distributed deployments: n sites
// each observe a local sub-stream and summarize it in an ECM-sketch; the
// sketches are then aggregated bottom-up over a balanced binary tree (the
// topology of Section 7.3), with every edge shipping a serialized sketch
// whose size is charged as network volume.
//
// Sites run as goroutines consuming their own event channels, which is the
// natural Go model for physically distributed stream observers. Aggregation
// is the shared coordinator core of internal/coord: every site contributes
// a frozen snapshot (an arena clone, not a marshal+decode round trip), and
// every aggregation edge is charged to the Network at the exact size the
// shipped encoding would have — so the measured transfer volumes are what a
// networked deployment pays, and the merged result is bit-identical to what
// a coordinator pulling the same sites over HTTP computes.
package distrib

import (
	"fmt"
	"sync"

	"ecmsketch/internal/coord"
	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
	"ecmsketch/internal/workload"
)

// Tick re-exports the logical timestamp type.
type Tick = window.Tick

// Network is the communication-cost accounting of the coordinator core.
type Network = coord.Network

// Cluster is a set of simulated sites sharing one sketch configuration.
// Site channels carry event batches, not single events: feeding batched
// keeps the channel traffic (and, inside each site, the per-arrival call
// overhead) proportional to batches rather than arrivals.
type Cluster struct {
	params  core.Params
	sites   []*core.Sketch
	chans   []chan []workload.Event
	wg      sync.WaitGroup
	net     Network
	started bool
}

// NewCluster builds n sites with identically configured (and hence
// mergeable) ECM-sketches. Randomized-wave sketches receive distinct
// identifier salts so their auto-generated event identifiers stay globally
// unique.
func NewCluster(p core.Params, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distrib: need at least one site, got %d", n)
	}
	c := &Cluster{params: p}
	for i := 0; i < n; i++ {
		s, err := core.New(p)
		if err != nil {
			return nil, fmt.Errorf("distrib: site %d: %w", i, err)
		}
		s.SetIDSalt(0x5151_0000_0000_0001 * uint64(i+1))
		c.sites = append(c.sites, s)
	}
	return c, nil
}

// Sites exposes the local sketches (after Wait, for inspection).
func (c *Cluster) Sites() []*core.Sketch { return c.sites }

// Network exposes the communication accounting.
func (c *Cluster) Network() *Network { return &c.net }

// Start launches one goroutine per site, each consuming its own event
// channel into its local sketch.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.chans = make([]chan []workload.Event, len(c.sites))
	for i := range c.sites {
		c.chans[i] = make(chan []workload.Event, 64)
		c.wg.Add(1)
		go func(idx int) {
			defer c.wg.Done()
			s := c.sites[idx]
			var buf []core.Event
			for batch := range c.chans[idx] {
				buf = buf[:0]
				for _, ev := range batch {
					buf = append(buf, core.Event{Key: ev.Key, Tick: ev.Time, N: 1})
				}
				s.AddBatch(buf)
			}
		}(i)
	}
}

// Feed routes one event to its site (ev.Site modulo the cluster size).
func (c *Cluster) Feed(ev workload.Event) {
	c.chans[ev.Site%len(c.sites)] <- []workload.Event{ev}
}

// FeedBatch routes a batch of events, grouping them per site so each site
// channel receives at most one message for the whole batch. Per-site event
// order follows slice order.
func (c *Cluster) FeedBatch(events []workload.Event) {
	groups := make([][]workload.Event, len(c.sites))
	for _, ev := range events {
		idx := ev.Site % len(c.sites)
		groups[idx] = append(groups[idx], ev)
	}
	for i, g := range groups {
		if len(g) > 0 {
			c.chans[i] <- g
		}
	}
}

// Wait closes the site channels and blocks until every site has drained its
// stream, then aligns all site windows to the given tick.
func (c *Cluster) Wait(now Tick) {
	for _, ch := range c.chans {
		close(ch)
	}
	c.wg.Wait()
	c.started = false
	for _, s := range c.sites {
		s.Advance(now)
	}
}

// ingestChunk is the batch size IngestAll slices a pre-generated stream
// into before routing it to the sites.
const ingestChunk = 512

// IngestAll runs the full pipeline for a pre-generated stream: start the
// sites, feed every event in site-grouped batches, and wait for
// completion. It returns the final stream tick.
func (c *Cluster) IngestAll(events []workload.Event) Tick {
	c.Start()
	var now Tick
	for _, ev := range events {
		if ev.Time > now {
			now = ev.Time
		}
	}
	for off := 0; off < len(events); off += ingestChunk {
		end := off + ingestChunk
		if end > len(events) {
			end = len(events)
		}
		c.FeedBatch(events[off:end])
	}
	c.Wait(now)
	return now
}

// AggregateTree merges the site sketches bottom-up over a balanced binary
// tree of height ⌈log₂ n⌉, as in the distributed experiments. It is a thin
// shim over the shared coordinator core: each site becomes an in-process
// coord.Site whose snapshot is an arena clone and whose transfer is charged
// at the exact encoding size, preserving the historical per-edge accounting
// (one message per aggregation edge, odd nodes re-charged as they are
// promoted) without any marshal+decode on the merge path. The root sketch
// summarizing the union stream is returned together with the tree height.
func (c *Cluster) AggregateTree() (*core.Sketch, int, error) {
	sites := make([]coord.Site, len(c.sites))
	for i, s := range c.sites {
		sites[i] = coord.NewLocalSite(fmt.Sprintf("site-%d", i), s)
	}
	return coord.NewWithNetwork(&c.net, sites...).AggregateTree()
}

// CentralizedBaseline builds a single sketch over the same events, the
// centralized reference the distributed error is compared against (Table 4).
func CentralizedBaseline(p core.Params, events []workload.Event) (*core.Sketch, error) {
	s, err := core.New(p)
	if err != nil {
		return nil, err
	}
	var now Tick
	for _, ev := range events {
		s.Add(ev.Key, ev.Time)
		if ev.Time > now {
			now = ev.Time
		}
	}
	s.Advance(now)
	return s, nil
}

// TreeHeight returns ⌈log₂ n⌉, the aggregation depth of a balanced binary
// tree over n leaves.
func TreeHeight(n int) int {
	h := 0
	for size := 1; size < n; size <<= 1 {
		h++
	}
	return h
}
