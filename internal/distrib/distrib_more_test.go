package distrib

import (
	"math"
	"testing"

	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
	"ecmsketch/internal/workload"
)

func TestDWClusterAggregates(t *testing.T) {
	// Deterministic-wave sketches also merge through the tree (Section 5.1
	// "Deterministic Waves"); the paper excludes them from its distributed
	// plots only because they offer no advantage over EH.
	p := testParams()
	p.Algorithm = window.AlgoDW
	p.UpperBound = 20000
	events := genEvents(t, 12000, 4)
	cluster, err := NewCluster(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		t.Fatalf("AggregateTree(DW): %v", err)
	}
	if height != 2 {
		t.Errorf("height = %d", height)
	}
	oracle := workload.NewOracle(p.WindowLength)
	for _, ev := range events {
		oracle.AddEvent(ev)
	}
	l1 := float64(oracle.Total(p.WindowLength))
	bound := core.HierarchicalPointErrorBound(root.EffectiveSplit(), height)
	for k := uint64(0); k < 50; k++ {
		got := root.Estimate(k, p.WindowLength)
		want := float64(oracle.Freq(k, p.WindowLength))
		if math.Abs(got-want) > bound*l1+1 {
			t.Errorf("DW root Estimate(%d)=%v true=%v", k, got, want)
		}
	}
}

func TestClusterReuseAfterWait(t *testing.T) {
	// A cluster can ingest several batches: Start/Feed/Wait cycles compose.
	p := testParams()
	cluster, err := NewCluster(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := genEvents(t, 2000, 2)
	batch2 := genEvents(t, 2000, 2)
	cluster.IngestAll(batch1)
	cluster.IngestAll(batch2)
	var total uint64
	for _, s := range cluster.Sites() {
		total += s.Count()
	}
	if total != 4000 {
		t.Errorf("sites hold %d events, want 4000", total)
	}
}

func TestCentralizedBaselineMatchesSingleSite(t *testing.T) {
	p := testParams()
	events := genEvents(t, 5000, 1)
	central, err := CentralizedBaseline(p, events)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	site := cluster.Sites()[0]
	for k := uint64(0); k < 100; k++ {
		if a, b := central.Estimate(k, p.WindowLength), site.Estimate(k, p.WindowLength); a != b {
			t.Fatalf("Estimate(%d): central=%v site=%v", k, a, b)
		}
	}
}

func TestRWClusterSaltsDistinct(t *testing.T) {
	// Randomized-wave sites must not share identifier salts, or merged
	// union counts would collapse duplicates that are distinct events.
	p := testParams()
	p.Algorithm = window.AlgoRW
	p.Epsilon = 0.25
	p.UpperBound = 10000
	cluster, err := NewCluster(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every site sees the same key at the same ticks: a salt collision
	// would make merged estimates ≈ one site's worth instead of three.
	cluster.Start()
	for i := 0; i < 900; i++ {
		cluster.Feed(workload.Event{Key: 5, Time: Tick(i/3 + 1), Site: i % 3})
	}
	cluster.Wait(300)
	root, _, err := cluster.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	got := root.Estimate(5, p.WindowLength)
	if got < 600 {
		t.Errorf("merged RW estimate %v, want ≈900 (salt collision collapses to ≈300)", got)
	}
}
