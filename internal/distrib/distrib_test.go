package distrib

import (
	"math"
	"testing"

	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
	"ecmsketch/internal/workload"
)

func testParams() core.Params {
	return core.Params{
		Epsilon:      0.1,
		Delta:        0.1,
		WindowLength: 50000,
		Seed:         99,
	}
}

func genEvents(t *testing.T, n, sites int) []workload.Event {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{
		Events: n, Duration: 40000, KeyDomain: 2000, Skew: 1.0,
		Sites: sites, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Drain()
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(testParams(), 0); err == nil {
		t.Error("0 sites accepted")
	}
	bad := testParams()
	bad.Epsilon = 0
	if _, err := NewCluster(bad, 2); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestClusterIngestAndAggregate(t *testing.T) {
	events := genEvents(t, 20000, 8)
	cluster, err := NewCluster(testParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	now := cluster.IngestAll(events)
	oracle := workload.NewOracle(50000)
	for _, ev := range events {
		oracle.AddEvent(ev)
	}
	root, height, err := cluster.AggregateTree()
	if err != nil {
		t.Fatalf("AggregateTree: %v", err)
	}
	if height != 3 {
		t.Errorf("tree height = %d, want 3 for 8 sites", height)
	}
	if root.Now() != now {
		t.Errorf("root Now = %d, want %d", root.Now(), now)
	}
	// Root estimates within the hierarchical bound of the union truth.
	bound := core.HierarchicalPointErrorBound(root.EffectiveSplit(), height)
	l1 := float64(oracle.Total(50000))
	for k := uint64(0); k < 100; k++ {
		got := root.Estimate(k, 50000)
		want := float64(oracle.Freq(k, 50000))
		if math.Abs(got-want) > bound*l1+1 {
			t.Errorf("root Estimate(%d)=%v true=%v bound=%v", k, got, want, bound*l1)
		}
	}
	// Total mass is preserved by order-preserving aggregation.
	if root.Count() != uint64(len(events)) {
		t.Errorf("root Count = %d, want %d", root.Count(), len(events))
	}
}

func TestNetworkAccounting(t *testing.T) {
	events := genEvents(t, 5000, 4)
	cluster, err := NewCluster(testParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	if cluster.Network().Bytes() != 0 {
		t.Error("network charged before aggregation")
	}
	if _, _, err := cluster.AggregateTree(); err != nil {
		t.Fatal(err)
	}
	// 4 leaves → 2 merges at level 0 (4 transfers) + 1 merge at level 1
	// (2 transfers) = 6 messages.
	if got := cluster.Network().Messages(); got != 6 {
		t.Errorf("messages = %d, want 6", got)
	}
	if cluster.Network().Bytes() <= 0 {
		t.Error("no bytes charged")
	}
}

func TestOddSiteCount(t *testing.T) {
	events := genEvents(t, 6000, 5)
	cluster, err := NewCluster(testParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if height != 3 {
		t.Errorf("height = %d, want 3 for 5 sites", height)
	}
	if root.Count() != uint64(len(events)) {
		t.Errorf("root Count = %d, want %d", root.Count(), len(events))
	}
}

func TestSingleSiteAggregation(t *testing.T) {
	events := genEvents(t, 3000, 1)
	cluster, err := NewCluster(testParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	if height != 0 {
		t.Errorf("height = %d, want 0", height)
	}
	if cluster.Network().Bytes() != 0 {
		t.Error("single site charged network bytes")
	}
	if root.Count() != uint64(len(events)) {
		t.Error("root is not the site sketch")
	}
}

func TestDistributedVsCentralized(t *testing.T) {
	// Table 4's structure: distributed aggregation loses little accuracy
	// compared to a centralized sketch over the same stream.
	events := genEvents(t, 30000, 16)
	p := testParams()
	cluster, err := NewCluster(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	cluster.IngestAll(events)
	root, _, err := cluster.AggregateTree()
	if err != nil {
		t.Fatal(err)
	}
	central, err := CentralizedBaseline(p, events)
	if err != nil {
		t.Fatal(err)
	}
	oracle := workload.NewOracle(p.WindowLength)
	for _, ev := range events {
		oracle.AddEvent(ev)
	}
	l1 := float64(oracle.Total(p.WindowLength))
	var errC, errD float64
	n := 0
	for k := uint64(0); k < 200; k++ {
		want := float64(oracle.Freq(k, p.WindowLength))
		errC += math.Abs(central.Estimate(k, p.WindowLength)-want) / l1
		errD += math.Abs(root.Estimate(k, p.WindowLength)-want) / l1
		n++
	}
	errC /= float64(n)
	errD /= float64(n)
	t.Logf("centralized=%.5f distributed=%.5f ratio=%.3f", errC, errD, errD/math.Max(errC, 1e-12))
	// Distributed error can exceed centralized, but must stay far below the
	// analytic worst case (paper: ratio ≈ 1.0–1.25 observed vs 3× bound).
	if errD > 3*errC+0.01 {
		t.Errorf("distributed error %.5f vastly exceeds centralized %.5f", errD, errC)
	}
}

func TestRWClusterLosslessAndCostly(t *testing.T) {
	// Fig. 5's structure: RW aggregation is lossless but ships an order of
	// magnitude more bytes than EH.
	p := testParams()
	p.Epsilon = 0.2
	p.UpperBound = 50000
	events := genEvents(t, 10000, 4)

	eh, err := NewCluster(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	eh.IngestAll(events)
	if _, _, err := eh.AggregateTree(); err != nil {
		t.Fatal(err)
	}

	prw := p
	prw.Algorithm = window.AlgoRW
	rw, err := NewCluster(prw, 4)
	if err != nil {
		t.Fatal(err)
	}
	rw.IngestAll(events)
	if _, _, err := rw.AggregateTree(); err != nil {
		t.Fatal(err)
	}
	ehB, rwB := eh.Network().Bytes(), rw.Network().Bytes()
	if rwB < 5*ehB {
		t.Errorf("RW transferred %d bytes vs EH %d; expected ≥5× gap", rwB, ehB)
	}
}

func TestTreeHeight(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 33: 6, 256: 8, 535: 10}
	for n, want := range cases {
		if got := TreeHeight(n); got != want {
			t.Errorf("TreeHeight(%d) = %d, want %d", n, got, want)
		}
	}
}
