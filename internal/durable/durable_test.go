package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"ecmsketch/internal/core"
)

// stores returns one of each Store implementation, file-backed rooted in a
// fresh temp dir, so every test runs against both.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	return map[string]Store{"mem": NewMemStore(), "file": fs}
}

func TestStoreBlobRoundTrip(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Load("snapshot"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load missing: got %v, want ErrNotFound", err)
			}
			want := []byte("hello durable world")
			if err := st.Save("snapshot", want); err != nil {
				t.Fatalf("Save: %v", err)
			}
			got, err := st.Load("snapshot")
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("Load: %q, %v", got, err)
			}
			// Overwrite is atomic replace, not append.
			want2 := []byte("v2")
			if err := st.Save("snapshot", want2); err != nil {
				t.Fatalf("Save 2: %v", err)
			}
			if got, _ := st.Load("snapshot"); !bytes.Equal(got, want2) {
				t.Fatalf("Load after overwrite: %q", got)
			}
			if err := st.Delete("snapshot"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := st.Load("snapshot"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load after delete: got %v, want ErrNotFound", err)
			}
			// Deleting a missing blob is idempotent.
			if err := st.Delete("snapshot"); err != nil {
				t.Fatalf("Delete missing: %v", err)
			}
		})
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "../escape"} {
				if err := st.Save(bad, []byte("x")); err == nil {
					t.Errorf("Save(%q): no error", bad)
				}
				if _, err := st.OpenLog(bad); err == nil {
					t.Errorf("OpenLog(%q): no error", bad)
				}
			}
		})
	}
}

func TestLogPersistsAcrossReopen(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			log, err := st.OpenLog("wal-1")
			if err != nil {
				t.Fatalf("OpenLog: %v", err)
			}
			for _, p := range []string{"one", "two", "three"} {
				if err := log.Append([]byte(p)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := log.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if n, err := log.Size(); err != nil || n != int64(len("onetwothree")) {
				t.Fatalf("Size: %d, %v", n, err)
			}
			if err := log.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Reopen: the engine-restart path.
			log, err = st.OpenLog("wal-1")
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			data, err := log.ReadAll()
			if err != nil || string(data) != "onetwothree" {
				t.Fatalf("ReadAll after reopen: %q, %v", data, err)
			}
			if err := log.Truncate(3); err != nil {
				t.Fatalf("Truncate: %v", err)
			}
			if data, _ := log.ReadAll(); string(data) != "one" {
				t.Fatalf("ReadAll after truncate: %q", data)
			}
			// Appends land after the truncation point.
			if err := log.Append([]byte("!")); err != nil {
				t.Fatalf("Append after truncate: %v", err)
			}
			if data, _ := log.ReadAll(); string(data) != "one!" {
				t.Fatalf("ReadAll after truncate+append: %q", data)
			}
			log.Close()
		})
	}
}

func TestWALReplayRoundTrip(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			log, err := st.OpenLog("wal")
			if err != nil {
				t.Fatal(err)
			}
			w := NewWAL(log)
			payloads := [][]byte{[]byte("a"), []byte("bb"), {}, []byte("dddd")}
			for i, p := range payloads {
				if err := w.Append(p, i%2 == 0); err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
			}
			recs, bytesN, _ := w.Stats()
			if recs != uint64(len(payloads)) || bytesN == 0 {
				t.Fatalf("Stats: %d records %d bytes", recs, bytesN)
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			log, err = st.OpenLog("wal")
			if err != nil {
				t.Fatal(err)
			}
			got, err := Replay(log)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if len(got) != len(payloads) {
				t.Fatalf("Replay: %d records, want %d", len(got), len(payloads))
			}
			for i := range got {
				if !bytes.Equal(got[i], payloads[i]) {
					t.Fatalf("record %d: %q want %q", i, got[i], payloads[i])
				}
			}
			log.Close()
		})
	}
}

// TestWALTornTail covers the crash shapes replay must absorb: a frame cut
// mid-payload, a frame cut mid-header, a CRC-corrupted frame, and pure
// trailing garbage. In every case the intact prefix survives and the log
// is truncated so the next append continues cleanly.
func TestWALTornTail(t *testing.T) {
	frame := func(p []byte) []byte {
		var b []byte
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(p, castagnoli))
		return append(b, p...)
	}
	good := [][]byte{[]byte("alpha"), []byte("beta")}
	var prefix []byte
	for _, p := range good {
		prefix = append(prefix, frame(p)...)
	}
	cases := map[string][]byte{
		"cut mid-payload": frame([]byte("gamma-long-payload"))[:frameHeader+4],
		"cut mid-header":  {0x09, 0x00, 0x00},
		"bad crc": func() []byte {
			f := frame([]byte("gamma"))
			f[4] ^= 0xFF
			return f
		}(),
		"garbage":         {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06},
		"absurd length":   binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 1<<30), 0),
		"clean (no tail)": nil,
	}
	for name, tail := range cases {
		t.Run(name, func(t *testing.T) {
			st := NewMemStore()
			log, err := st.OpenLog("wal")
			if err != nil {
				t.Fatal(err)
			}
			if err := log.Append(append(append([]byte(nil), prefix...), tail...)); err != nil {
				t.Fatal(err)
			}
			recs, err := Replay(log)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if len(recs) != len(good) {
				t.Fatalf("got %d records, want %d", len(recs), len(good))
			}
			for i := range recs {
				if !bytes.Equal(recs[i], good[i]) {
					t.Fatalf("record %d: %q", i, recs[i])
				}
			}
			if n, _ := log.Size(); n != int64(len(prefix)) {
				t.Fatalf("log not truncated: size %d want %d", n, len(prefix))
			}
			// The WAL continues from the truncation point.
			w := NewWAL(log)
			if err := w.Append([]byte("resumed"), true); err != nil {
				t.Fatal(err)
			}
			recs, err = Replay(log)
			if err != nil || len(recs) != len(good)+1 || string(recs[len(good)]) != "resumed" {
				t.Fatalf("replay after resume: %d recs, %v", len(recs), err)
			}
			log.Close()
		})
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := &Snapshot{
		Epoch:       0xDEADBEEF,
		Gen:         7,
		Now:         123456,
		Fingerprint: 0xCAFEBABE12345678,
		Parts: []SnapshotPart{
			{Enc: []byte("part-zero"), Ver: 42, Vers: []uint64{1, 2, 3, 42}},
			{Enc: nil, Ver: 0, Vers: nil},
			{Enc: []byte{0xFF}, Ver: 1 << 40, Vers: []uint64{1 << 40}},
		},
	}
	blob := s.Encode()
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Epoch != s.Epoch || got.Gen != s.Gen || got.Now != s.Now || got.Fingerprint != s.Fingerprint {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Parts) != len(s.Parts) {
		t.Fatalf("parts: %d", len(got.Parts))
	}
	for i := range s.Parts {
		if !bytes.Equal(got.Parts[i].Enc, s.Parts[i].Enc) || got.Parts[i].Ver != s.Parts[i].Ver ||
			!reflect.DeepEqual(append([]uint64{}, got.Parts[i].Vers...), append([]uint64{}, s.Parts[i].Vers...)) {
			t.Fatalf("part %d mismatch: %+v want %+v", i, got.Parts[i], s.Parts[i])
		}
	}
}

func TestSnapshotCodecRejectsCorruption(t *testing.T) {
	blob := (&Snapshot{Epoch: 1, Gen: 1, Now: 9, Fingerprint: 5,
		Parts: []SnapshotPart{{Enc: []byte("abc"), Ver: 3, Vers: []uint64{3}}}}).Encode()
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("nil blob: no error")
	}
	if _, err := DecodeSnapshot(blob[:len(blob)-1]); err == nil {
		t.Error("truncated blob: no error")
	}
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x01
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Errorf("bit flip at %d: no error", i)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("trailing byte: no error")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecordHeader, Epoch: 99, Gen: 3, Fingerprint: 0xABCD},
		{Kind: RecordBatch, Part: 5, Tick: 1000, Ver: 77, Events: []core.Event{
			{Key: 1, Tick: 1000, N: 1}, {Key: 0xFFFFFFFFFFFFFFFF, Tick: 1001, N: 12},
		}},
		{Kind: RecordBatch, Part: 0, Tick: 0, Ver: 1, Events: nil},
		{Kind: RecordAdvance, Part: 2, Tick: 424242},
	}
	for i, r := range recs {
		b := AppendRecord(nil, &r)
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != r.Kind || got.Epoch != r.Epoch || got.Gen != r.Gen ||
			got.Fingerprint != r.Fingerprint || got.Part != r.Part ||
			got.Tick != r.Tick || got.Ver != r.Ver || len(got.Events) != len(r.Events) {
			t.Fatalf("record %d mismatch: %+v want %+v", i, got, r)
		}
		for j := range r.Events {
			if got.Events[j] != r.Events[j] {
				t.Fatalf("record %d event %d: %+v", i, j, got.Events[j])
			}
		}
	}
}

func TestRecordCodecRejectsCorruption(t *testing.T) {
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("empty record: no error")
	}
	if _, err := DecodeRecord([]byte{0x7F}); err == nil {
		t.Error("unknown kind: no error")
	}
	b := AppendRecord(nil, &Record{Kind: RecordBatch, Part: 1, Tick: 2, Ver: 3,
		Events: []core.Event{{Key: 4, Tick: 5, N: 6}}})
	if _, err := DecodeRecord(b[:len(b)-1]); err == nil {
		t.Error("truncated record: no error")
	}
	if _, err := DecodeRecord(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing bytes: no error")
	}
}
