package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileStore is the file-backed Store: one flat directory, one file per
// blob or log, no dependencies beyond the standard library. Blob saves
// are crash-atomic — written to a temp file, fsynced, renamed into place,
// then the directory fsynced — so a reader (including recovery after a
// crash mid-save) always observes either the old or the new contents.
type FileStore struct {
	dir string
	// mu serializes blob saves per store so two concurrent Save calls for
	// one name can't interleave their temp-file lifecycles.
	mu sync.Mutex
}

// NewFileStore opens (creating if needed) the store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating store directory: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir reports the directory the store persists into.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) path(name string) string { return filepath.Join(f.dir, name) }

func (f *FileStore) Load(name string) ([]byte, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(f.path(name))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	return b, err
}

func (f *FileStore) Save(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp := f.path(name + ".tmp")
	file, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		os.Remove(tmp)
		return err
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, f.path(name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return f.syncDir()
}

// syncDir fsyncs the store directory so a rename (or remove) survives a
// crash; filesystems that reject directory fsync are tolerated.
func (f *FileStore) syncDir() error {
	d, err := os.Open(f.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

func (f *FileStore) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := os.Remove(f.path(name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return f.syncDir()
}

func (f *FileStore) OpenLog(name string) (Log, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	// O_APPEND keeps every write at the tail even across duplicate handles;
	// reads and truncation go through ReadAt/Truncate, which O_APPEND does
	// not restrict.
	file, err := os.OpenFile(f.path(name), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &fileLog{f: file}, nil
}

type fileLog struct {
	mu sync.Mutex
	f  *os.File
}

func (l *fileLog) Append(p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.f.Write(p)
	return err
}

func (l *fileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

func (l *fileLog) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (l *fileLog) ReadAll() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size())
	n, err := l.f.ReadAt(buf, 0)
	if err != nil && n != len(buf) {
		return nil, err
	}
	return buf[:n], nil
}

func (l *fileLog) Truncate(size int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Truncate(size)
}

func (l *fileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
