package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ecmsketch/internal/core"
)

// Snapshot blob layout: magic "ECMD", format byte, then uvarint-packed
// fields and length-prefixed part payloads, closed by a little-endian
// CRC-32C over everything before it. The whole blob is saved atomically
// (Store.Save), so recovery sees either a complete intact snapshot or
// none; a failed magic, format or CRC means the blob cannot be trusted
// and all durable state is discarded to a fresh epoch.
var snapshotMagic = []byte{'E', 'C', 'M', 'D'}

const snapshotFormat = 1

// maxSnapshotParts mirrors the delta protocol's part bound; real engines
// have one part per lock stripe.
const maxSnapshotParts = 1 << 12

// Snapshot is the durable image of an engine at one instant: identity
// (epoch, generation, configuration fingerprint), the engine clock, and
// per part the ordinary wire encoding plus the version vector the wire
// format deliberately omits.
type Snapshot struct {
	Epoch       uint64
	Gen         uint64
	Now         uint64
	Fingerprint uint64
	Parts       []SnapshotPart
}

// SnapshotPart is one striped part: Enc is the part's standard Marshal
// bytes (byte-identical to what the wire ships), Ver/Vers the
// arrival-mutation version state at capture.
type SnapshotPart struct {
	Enc  []byte
	Ver  uint64
	Vers []uint64
}

// Encode serializes the snapshot blob.
func (s *Snapshot) Encode() []byte {
	dst := append([]byte(nil), snapshotMagic...)
	dst = append(dst, snapshotFormat)
	dst = binary.AppendUvarint(dst, s.Epoch)
	dst = binary.AppendUvarint(dst, s.Gen)
	dst = binary.AppendUvarint(dst, s.Now)
	dst = binary.AppendUvarint(dst, s.Fingerprint)
	dst = binary.AppendUvarint(dst, uint64(len(s.Parts)))
	for i := range s.Parts {
		p := &s.Parts[i]
		dst = binary.AppendUvarint(dst, uint64(len(p.Enc)))
		dst = append(dst, p.Enc...)
		dst = binary.AppendUvarint(dst, p.Ver)
		dst = binary.AppendUvarint(dst, uint64(len(p.Vers)))
		for _, v := range p.Vers {
			dst = binary.AppendUvarint(dst, v)
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst, castagnoli))
}

// DecodeSnapshot parses and validates a snapshot blob. Any failure —
// wrong magic, unknown format, bad CRC, truncation — returns an error;
// the caller treats it as "no usable snapshot" and discards.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapshotMagic)+1+4 {
		return nil, errors.New("durable: snapshot blob too short")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, errors.New("durable: snapshot CRC mismatch")
	}
	if string(body[:4]) != string(snapshotMagic) {
		return nil, errors.New("durable: not a snapshot blob")
	}
	if body[4] != snapshotFormat {
		return nil, fmt.Errorf("durable: unknown snapshot format %d", body[4])
	}
	off := 5
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, errors.New("durable: truncated snapshot")
		}
		off += n
		return v, nil
	}
	var s Snapshot
	var err error
	if s.Epoch, err = getU(); err != nil {
		return nil, err
	}
	if s.Gen, err = getU(); err != nil {
		return nil, err
	}
	if s.Now, err = getU(); err != nil {
		return nil, err
	}
	if s.Fingerprint, err = getU(); err != nil {
		return nil, err
	}
	nparts, err := getU()
	if err != nil {
		return nil, err
	}
	if nparts > maxSnapshotParts {
		return nil, fmt.Errorf("durable: snapshot declares %d parts", nparts)
	}
	s.Parts = make([]SnapshotPart, nparts)
	for i := range s.Parts {
		ln, err := getU()
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(body)-off) {
			return nil, errors.New("durable: truncated snapshot part")
		}
		s.Parts[i].Enc = body[off : off+int(ln)]
		off += int(ln)
		if s.Parts[i].Ver, err = getU(); err != nil {
			return nil, err
		}
		nvers, err := getU()
		if err != nil {
			return nil, err
		}
		if nvers > uint64(len(body)-off) { // each version is ≥ 1 byte
			return nil, errors.New("durable: truncated version vector")
		}
		if nvers > 0 {
			s.Parts[i].Vers = make([]uint64, nvers)
			for j := range s.Parts[i].Vers {
				if s.Parts[i].Vers[j], err = getU(); err != nil {
					return nil, err
				}
			}
		}
	}
	if off != len(body) {
		return nil, errors.New("durable: trailing bytes in snapshot")
	}
	return &s, nil
}

// WAL record kinds. Every segment starts with one Header record binding
// it to an epoch and generation; Batch and Advance records mirror the
// engine's applied mutations in per-part apply order.
const (
	// RecordHeader: Epoch, Gen, Fingerprint.
	RecordHeader byte = 0
	// RecordBatch: Part, Tick (the part's clock immediately before the
	// apply — replay restores it clock-only, no settling, so expiry runs
	// exactly where the original ran it), Ver (the part's arrival-mutation
	// version immediately after — replay skips records the restored
	// snapshot already covers and cross-checks the rest), Events.
	RecordBatch byte = 1
	// RecordAdvance: Part, Tick (clock target; idempotent on replay).
	RecordAdvance byte = 2
)

// Record is one WAL entry; which fields are meaningful depends on Kind.
type Record struct {
	Kind        byte
	Epoch       uint64
	Gen         uint64
	Fingerprint uint64
	Part        uint64
	Tick        uint64
	Ver         uint64
	Events      []core.Event
}

// AppendRecord appends the record's payload encoding (the bytes inside a
// WAL frame) to dst.
func AppendRecord(dst []byte, r *Record) []byte {
	dst = append(dst, r.Kind)
	switch r.Kind {
	case RecordHeader:
		dst = binary.AppendUvarint(dst, r.Epoch)
		dst = binary.AppendUvarint(dst, r.Gen)
		dst = binary.AppendUvarint(dst, r.Fingerprint)
	case RecordBatch:
		dst = binary.AppendUvarint(dst, r.Part)
		dst = binary.AppendUvarint(dst, r.Tick)
		dst = binary.AppendUvarint(dst, r.Ver)
		dst = binary.AppendUvarint(dst, uint64(len(r.Events)))
		for _, ev := range r.Events {
			dst = binary.AppendUvarint(dst, ev.Key)
			dst = binary.AppendUvarint(dst, ev.Tick)
			dst = binary.AppendUvarint(dst, ev.N)
		}
	case RecordAdvance:
		dst = binary.AppendUvarint(dst, r.Part)
		dst = binary.AppendUvarint(dst, r.Tick)
	}
	return dst
}

// DecodeRecord parses one WAL record payload.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, errors.New("durable: empty WAL record")
	}
	r := Record{Kind: b[0]}
	off := 1
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, errors.New("durable: truncated WAL record")
		}
		off += n
		return v, nil
	}
	var err error
	switch r.Kind {
	case RecordHeader:
		if r.Epoch, err = getU(); err != nil {
			return Record{}, err
		}
		if r.Gen, err = getU(); err != nil {
			return Record{}, err
		}
		if r.Fingerprint, err = getU(); err != nil {
			return Record{}, err
		}
	case RecordBatch:
		if r.Part, err = getU(); err != nil {
			return Record{}, err
		}
		if r.Tick, err = getU(); err != nil {
			return Record{}, err
		}
		if r.Ver, err = getU(); err != nil {
			return Record{}, err
		}
		nev, err := getU()
		if err != nil {
			return Record{}, err
		}
		if nev > uint64(len(b)-off) { // each event is ≥ 3 bytes
			return Record{}, errors.New("durable: truncated WAL batch")
		}
		r.Events = make([]core.Event, nev)
		for i := range r.Events {
			if r.Events[i].Key, err = getU(); err != nil {
				return Record{}, err
			}
			if r.Events[i].Tick, err = getU(); err != nil {
				return Record{}, err
			}
			if r.Events[i].N, err = getU(); err != nil {
				return Record{}, err
			}
		}
	case RecordAdvance:
		if r.Part, err = getU(); err != nil {
			return Record{}, err
		}
		if r.Tick, err = getU(); err != nil {
			return Record{}, err
		}
	default:
		return Record{}, fmt.Errorf("durable: unknown WAL record kind %d", r.Kind)
	}
	if off != len(b) {
		return Record{}, errors.New("durable: trailing bytes in WAL record")
	}
	return r, nil
}
