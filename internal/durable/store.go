// Package durable is the storage subsystem behind restart-surviving
// engines: a small pluggable Store interface (in-memory default,
// file-backed implementation in-tree, no external dependencies), a
// CRC-framed write-ahead log with clean torn-tail truncation, and the
// codecs for snapshot blobs and WAL records.
//
// The durability contract, end to end:
//
//   - A checkpoint is one atomically saved snapshot blob: the engine
//     epoch, a generation number, the engine clock, and — per part — the
//     part's ordinary wire encoding (byte-identical Marshal) plus the
//     version vector the wire format deliberately omits.
//   - Between checkpoints every applied mutation is appended to the
//     generation's WAL as a CRC-framed record carrying the events with
//     their final ticks, the part clock before the apply, and the
//     arrival-mutation version after it. Replay is idempotent: records
//     whose post-apply version the restored snapshot already covers are
//     skipped, so a WAL segment overlapping its checkpoint is harmless.
//   - Recovery loads the newest intact snapshot, replays the segments of
//     its generation and the next (at most those two can exist), and
//     resumes under the persisted epoch. A torn or CRC-failing WAL tail
//     truncates cleanly to the last intact frame; a snapshot or WAL
//     header that fails validation discards all durable state and starts
//     a fresh epoch — the existing cursor-invalidation path — rather
//     than serving corrupt state.
package durable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a blob that has never been saved (or was deleted).
var ErrNotFound = errors.New("durable: not found")

// Store is the pluggable persistence hook. Implementations must make Save
// atomic (a reader never observes a half-written blob) and durable on
// return; logs are append-only streams whose durability is explicit via
// Log.Sync. Two stores never share a namespace: each engine owns one
// Store (for FileStore, one directory).
//
// All methods must be safe for concurrent use.
type Store interface {
	// Load returns the blob's current contents, ErrNotFound if absent.
	Load(name string) ([]byte, error)
	// Save atomically replaces the blob and makes it durable before
	// returning (file-backed stores fsync, then rename into place).
	Save(name string, data []byte) error
	// Delete removes a blob or log; deleting an absent name is a no-op.
	Delete(name string) error
	// OpenLog opens an append-only log, creating it empty if missing.
	OpenLog(name string) (Log, error)
}

// Log is an append-only byte stream. Append buffers through the OS (or
// memory); Sync makes everything appended so far durable. Truncate
// discards a torn tail during recovery.
type Log interface {
	Append(p []byte) error
	Sync() error
	Size() (int64, error)
	// ReadAll returns the log's full contents from the beginning.
	ReadAll() ([]byte, error)
	// Truncate discards everything past offset size.
	Truncate(size int64) error
	Close() error
}

// validName rejects names that would escape a file-backed store's
// directory; the engine only uses flat names ("snapshot", "wal-3", ...).
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("durable: invalid blob name %q", name)
	}
	return nil
}

// MemStore is the dependency-free in-memory Store: durable exactly as
// long as the Store value lives, which is what tests and single-process
// restarts (engine rebuilt over the same MemStore) need.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
	logs  map[string]*memLogData
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte), logs: make(map[string]*memLogData)}
}

func (m *MemStore) Load(name string) ([]byte, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[name]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), b...), nil
}

func (m *MemStore) Save(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[name] = append([]byte(nil), data...)
	return nil
}

func (m *MemStore) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, name)
	delete(m.logs, name)
	return nil
}

func (m *MemStore) OpenLog(name string) (Log, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.logs[name]
	if !ok {
		d = &memLogData{}
		m.logs[name] = d
	}
	return &memLog{data: d}, nil
}

// Names lists every stored blob and log, sorted; exposed for tests.
func (m *MemStore) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for n := range m.blobs {
		out = append(out, n)
	}
	for n := range m.logs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// memLogData is the shared backing of a named in-memory log; handles from
// repeated OpenLog calls (engine restarts) all see it.
type memLogData struct {
	mu  sync.Mutex
	buf []byte
}

type memLog struct{ data *memLogData }

func (l *memLog) Append(p []byte) error {
	l.data.mu.Lock()
	defer l.data.mu.Unlock()
	l.data.buf = append(l.data.buf, p...)
	return nil
}

func (l *memLog) Sync() error { return nil }

func (l *memLog) Size() (int64, error) {
	l.data.mu.Lock()
	defer l.data.mu.Unlock()
	return int64(len(l.data.buf)), nil
}

func (l *memLog) ReadAll() ([]byte, error) {
	l.data.mu.Lock()
	defer l.data.mu.Unlock()
	return append([]byte(nil), l.data.buf...), nil
}

func (l *memLog) Truncate(size int64) error {
	l.data.mu.Lock()
	defer l.data.mu.Unlock()
	if size < 0 || size > int64(len(l.data.buf)) {
		return fmt.Errorf("durable: truncate %d out of range (log is %d bytes)", size, len(l.data.buf))
	}
	l.data.buf = l.data.buf[:size]
	return nil
}

func (l *memLog) Close() error { return nil }
