package durable

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
	"time"
)

// WAL frame layout: [u32 payload length][u32 CRC-32C of payload][payload],
// both integers little-endian. Frames are self-delimiting, so replay needs
// no index; a frame whose length runs past the file or whose CRC fails
// marks the torn tail — everything before it is intact, everything from it
// on is truncated.
const frameHeader = 8

// maxFrame bounds a single record; real records are a sub-batch of events
// (a few KB), so anything near this is corruption, not data.
const maxFrame = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL frames records onto one log segment and tracks the observability
// counters /v1/stats reports: records and bytes appended to this segment,
// and the latency of the last fsync. Appends go to the OS immediately
// (page cache); Sync makes them durable. Safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	log     Log
	buf     []byte
	records uint64
	bytes   uint64
	dirty   bool
	syncNs  int64
}

// NewWAL wraps an open log segment.
func NewWAL(log Log) *WAL { return &WAL{log: log} }

// Append frames and writes one record; with sync set it is fsynced before
// returning (the fsync-every-append durability policy).
func (w *WAL) Append(payload []byte, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, payload...)
	if err := w.log.Append(w.buf); err != nil {
		return err
	}
	w.records++
	w.bytes += uint64(len(w.buf))
	w.dirty = true
	if sync {
		return w.syncLocked()
	}
	return nil
}

// Sync makes every appended record durable; a no-op when nothing was
// appended since the last call.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.dirty {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	start := time.Now()
	if err := w.log.Sync(); err != nil {
		return err
	}
	w.syncNs = time.Since(start).Nanoseconds()
	w.dirty = false
	return nil
}

// ResetStats zeroes the records/bytes counters (the segment header is
// framing, not logged work, so openers reset after writing it).
func (w *WAL) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records, w.bytes = 0, 0
}

// Stats reports records/bytes appended to this segment and the last fsync
// latency in nanoseconds (0 until the first sync).
func (w *WAL) Stats() (records, bytes uint64, lastSyncNs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes, w.syncNs
}

// Close closes the underlying segment without syncing (Checkpoint syncs
// explicitly before rotating a segment out).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Close()
}

// Replay decodes every intact frame of a log segment in append order. A
// torn or CRC-failing tail — a crash mid-append, or garbage — is truncated
// off the log in place, so the next append starts at the last intact
// frame; the intact prefix is returned either way. Frame payloads alias
// one ReadAll buffer.
func Replay(log Log) ([][]byte, error) {
	data, err := log.ReadAll()
	if err != nil {
		return nil, err
	}
	var recs [][]byte
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame || off+frameHeader+n > len(data) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		recs = append(recs, payload)
		off += frameHeader + n
	}
	if off < len(data) {
		if err := log.Truncate(int64(off)); err != nil {
			return nil, err
		}
	}
	return recs, nil
}
