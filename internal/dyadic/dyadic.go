// Package dyadic layers a dyadic-range hierarchy over ECM-sketches to answer
// the derived sliding-window queries of Section 6.1: finding frequent items
// (heavy hitters) by group testing, range-count queries, and quantiles.
//
// The hierarchy keeps log₂|U| ECM-sketches: the i-th sketch summarizes the
// stream projected onto dyadic ranges of length 2^i, i.e. an arrival x is
// registered under key ⌊x/2^i⌋. Frequent-item detection then descends from
// the coarsest ranges, pruning every subtree whose estimated count falls
// below the threshold; range counts decompose any interval into O(log|U|)
// dyadic pieces; quantiles follow a rank-guided root-to-leaf walk.
package dyadic

import (
	"errors"
	"fmt"
	"sort"

	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
)

// Tick re-exports the logical timestamp type.
type Tick = window.Tick

// Params configures a dyadic hierarchy.
type Params struct {
	// Sketch configures the per-level ECM-sketches. Its Delta is divided by
	// 2·DomainBits across levels so the union bound of Theorem 5 holds.
	Sketch core.Params
	// DomainBits fixes the key universe U = [0, 2^DomainBits).
	DomainBits int
}

// Hierarchy is a stack of ECM-sketches over dyadic aggregates of the key
// domain. Level 0 summarizes individual items; level i summarizes ranges of
// length 2^i.
type Hierarchy struct {
	levels []*core.Sketch
	bits   int
	params Params
}

// New constructs a dyadic hierarchy.
func New(p Params) (*Hierarchy, error) {
	if p.DomainBits <= 0 || p.DomainBits > 40 {
		return nil, fmt.Errorf("dyadic: DomainBits must be in [1,40], got %d", p.DomainBits)
	}
	sp := p.Sketch
	if sp.Delta > 0 {
		sp.Delta = sp.Delta / float64(2*p.DomainBits)
	}
	h := &Hierarchy{bits: p.DomainBits, params: p}
	for i := 0; i < p.DomainBits; i++ {
		lp := sp
		lp.Seed = sp.Seed + uint64(i)*0x9e3779b97f4a7c15
		s, err := core.New(lp)
		if err != nil {
			return nil, fmt.Errorf("dyadic: level %d: %w", i, err)
		}
		h.levels = append(h.levels, s)
	}
	return h, nil
}

// DomainBits reports log₂ of the key universe size.
func (h *Hierarchy) DomainBits() int { return h.bits }

// Add registers one arrival of item x at tick t. x must lie in the domain.
func (h *Hierarchy) Add(x uint64, t Tick) error {
	if x >= uint64(1)<<uint(h.bits) {
		return fmt.Errorf("dyadic: item %d outside domain of %d bits", x, h.bits)
	}
	for i, s := range h.levels {
		s.Add(x>>uint(i), t)
	}
	return nil
}

// Advance moves every level's window forward to tick t.
func (h *Hierarchy) Advance(t Tick) {
	for _, s := range h.levels {
		s.Advance(t)
	}
}

// Now reports the latest tick observed.
func (h *Hierarchy) Now() Tick { return h.levels[0].Now() }

// EstimateItem estimates the frequency of item x within the last r ticks.
func (h *Hierarchy) EstimateItem(x uint64, r Tick) float64 {
	return h.levels[0].Estimate(x, r)
}

// EstimateTotal estimates ||a_r||₁ from the level-0 sketch by row-averaging
// (the estimator Section 6.1 recommends: per-cell window errors cancel
// within a row, so no auxiliary synopsis is needed).
func (h *Hierarchy) EstimateTotal(r Tick) float64 {
	return h.levels[0].EstimateTotal(r)
}

// Item is a frequent-item report.
type Item struct {
	Key      uint64
	Estimate float64
}

// HeavyHitters returns every item whose estimated frequency within the last
// r ticks is at least phi·||a_r||₁, for a relative threshold phi ∈ (0,1).
// Per Theorem 5, every item with true frequency ≥ (φ+ε)·||a_r||₁ is
// reported, and with probability 1-δ no item below φ·||a_r||₁ is reported.
func (h *Hierarchy) HeavyHitters(phi float64, r Tick) ([]Item, error) {
	if !(phi > 0 && phi < 1) {
		return nil, fmt.Errorf("dyadic: phi must be in (0,1), got %v", phi)
	}
	total := h.EstimateTotal(r)
	if total == 0 {
		return nil, nil // empty window: nothing can be frequent
	}
	return h.HeavyHittersAbs(phi*total, r)
}

// HeavyHittersAbs returns every item whose estimated frequency within the
// last r ticks is at least threshold (an absolute count), via group-testing
// descent over the dyadic levels.
func (h *Hierarchy) HeavyHittersAbs(threshold float64, r Tick) ([]Item, error) {
	if threshold <= 0 {
		return nil, errors.New("dyadic: threshold must be positive")
	}
	var out []Item
	top := h.bits - 1
	// Two ranges cover the domain at the coarsest stored level.
	var walk func(level int, prefix uint64)
	walk = func(level int, prefix uint64) {
		est := h.levels[level].Estimate(prefix, r)
		if est < threshold {
			return // no item below this range can reach the threshold
		}
		if level == 0 {
			out = append(out, Item{Key: prefix, Estimate: est})
			return
		}
		walk(level-1, prefix<<1)
		walk(level-1, prefix<<1|1)
	}
	walk(top, 0)
	walk(top, 1)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// RangeCount estimates the number of arrivals with keys in [lo, hi]
// (inclusive) within the last r ticks by summing the canonical dyadic
// decomposition of the interval — at most 2·log|U| sketch queries.
func (h *Hierarchy) RangeCount(lo, hi uint64, r Tick) (float64, error) {
	max := uint64(1)<<uint(h.bits) - 1
	if lo > hi || hi > max {
		return 0, fmt.Errorf("dyadic: invalid range [%d,%d] in %d-bit domain", lo, hi, h.bits)
	}
	var sum float64
	for lo <= hi {
		// The largest dyadic block starting at lo that fits inside [lo,hi].
		level := 0
		for level < h.bits-1 {
			next := level + 1
			if lo&(uint64(1)<<uint(next)-1) != 0 {
				break // lo not aligned to the next block size
			}
			if lo+uint64(1)<<uint(next)-1 > hi {
				break // next block overshoots hi
			}
			level = next
		}
		sum += h.levels[level].Estimate(lo>>uint(level), r)
		blockEnd := lo + uint64(1)<<uint(level) - 1
		if blockEnd == max {
			break
		}
		lo = blockEnd + 1
	}
	return sum, nil
}

// Quantile returns the approximate q-quantile (q ∈ [0,1]) of the item
// distribution within the last r ticks: the smallest key whose prefix range
// [0, key] holds at least q·||a_r||₁ arrivals. The walk descends the dyadic
// tree comparing the remaining rank against the left child's estimate.
func (h *Hierarchy) Quantile(q float64, r Tick) (uint64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("dyadic: quantile must be in [0,1], got %v", q)
	}
	total := h.EstimateTotal(r)
	if total == 0 {
		return 0, errors.New("dyadic: empty window")
	}
	rank := q * total
	var prefix uint64
	// Choose the top-level half first.
	left := h.levels[h.bits-1].Estimate(0, r)
	if rank > left {
		rank -= left
		prefix = 1
	}
	for level := h.bits - 1; level > 0; level-- {
		l := h.levels[level-1].Estimate(prefix<<1, r)
		if rank <= l {
			prefix = prefix << 1
		} else {
			rank -= l
			prefix = prefix<<1 | 1
		}
	}
	return prefix, nil
}

// Quantiles evaluates several quantiles in one pass.
func (h *Hierarchy) Quantiles(qs []float64, r Tick) ([]uint64, error) {
	out := make([]uint64, len(qs))
	for i, q := range qs {
		v, err := h.Quantile(q, r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// MemoryBytes reports the footprint across all levels.
func (h *Hierarchy) MemoryBytes() int {
	n := 0
	for _, s := range h.levels {
		n += s.MemoryBytes()
	}
	return n
}

// Merge aggregates hierarchies built at distributed sites level by level
// (order-preserving, Section 5.3 applied per level). All inputs must share
// configuration.
func Merge(inputs ...*Hierarchy) (*Hierarchy, error) {
	if len(inputs) == 0 {
		return nil, errors.New("dyadic: Merge requires at least one input")
	}
	first := inputs[0]
	for i, in := range inputs[1:] {
		if in == nil || in.bits != first.bits {
			return nil, fmt.Errorf("dyadic: Merge input %d incompatible", i+1)
		}
	}
	out := &Hierarchy{bits: first.bits, params: first.params}
	for lvl := 0; lvl < first.bits; lvl++ {
		ins := make([]*core.Sketch, len(inputs))
		for k, in := range inputs {
			ins[k] = in.levels[lvl]
		}
		m, err := core.Merge(ins...)
		if err != nil {
			return nil, fmt.Errorf("dyadic: level %d: %w", lvl, err)
		}
		out.levels = append(out.levels, m)
	}
	return out, nil
}
