package dyadic

import (
	"math"
	"math/rand"
	"testing"

	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
)

func testParams(bits int, eps float64) Params {
	return Params{
		Sketch: core.Params{
			Epsilon:      eps,
			Delta:        0.1,
			WindowLength: 2000,
			Seed:         11,
		},
		DomainBits: bits,
	}
}

func mustHierarchy(t *testing.T, p Params) *Hierarchy {
	t.Helper()
	h, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{DomainBits: 0}); err == nil {
		t.Error("DomainBits 0 accepted")
	}
	if _, err := New(Params{DomainBits: 64}); err == nil {
		t.Error("DomainBits 64 accepted")
	}
	p := testParams(8, 0.1)
	p.Sketch.Epsilon = 0
	if _, err := New(p); err == nil {
		t.Error("invalid sketch params accepted")
	}
}

func TestAddRejectsOutOfDomain(t *testing.T) {
	h := mustHierarchy(t, testParams(4, 0.1))
	if err := h.Add(16, 1); err == nil {
		t.Error("item 16 accepted in a 4-bit domain")
	}
	if err := h.Add(15, 1); err != nil {
		t.Errorf("item 15 rejected: %v", err)
	}
}

// skewedStream feeds a stream where a few keys dominate, and returns the
// exact windowed frequencies.
func skewedStream(t *testing.T, h *Hierarchy, events int, seed int64) (map[uint64]uint64, Tick, uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	freq := map[uint64]uint64{}
	domain := uint64(1) << uint(h.bits)
	var now Tick
	var total uint64
	for i := 0; i < events; i++ {
		var k uint64
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // 40%: key 3
			k = 3 % domain
		case 4, 5: // 20%: key 100
			k = 100 % domain
		default: // 40%: uniform tail
			k = rng.Uint64() % domain
		}
		now++
		if err := h.Add(k, now); err != nil {
			t.Fatal(err)
		}
		// The window never expires within this test (events ≤ window).
		freq[k]++
		total++
	}
	h.Advance(now)
	return freq, now, total
}

func TestHeavyHittersFindDominantKeys(t *testing.T) {
	h := mustHierarchy(t, testParams(10, 0.05))
	freq, _, total := skewedStream(t, h, 1500, 5)
	hits, err := h.HeavyHitters(0.1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, it := range hits {
		found[it.Key] = true
	}
	// Keys at ~40% and ~20% of the stream must be reported.
	for _, k := range []uint64{3, 100} {
		if !found[k] {
			t.Errorf("key %d (freq %d of %d) not reported as heavy hitter", k, freq[k], total)
		}
	}
	// Nothing with a true frequency below (φ-ε)·total should appear.
	for _, it := range hits {
		if f := freq[it.Key]; float64(f) < (0.1-0.06)*float64(total) {
			t.Errorf("spurious heavy hitter %d with true frequency %d of %d", it.Key, f, total)
		}
	}
	// Results sorted by estimate, descending.
	for i := 1; i < len(hits); i++ {
		if hits[i].Estimate > hits[i-1].Estimate {
			t.Error("heavy hitters not sorted by estimate")
		}
	}
}

func TestHeavyHittersValidation(t *testing.T) {
	h := mustHierarchy(t, testParams(6, 0.1))
	if _, err := h.HeavyHitters(0, 100); err == nil {
		t.Error("phi 0 accepted")
	}
	if _, err := h.HeavyHitters(1, 100); err == nil {
		t.Error("phi 1 accepted")
	}
	if _, err := h.HeavyHittersAbs(-1, 100); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestHeavyHittersRespectWindow(t *testing.T) {
	// A key that was heavy long ago but silent recently must not be
	// reported once the window slides past its reign.
	p := testParams(8, 0.05)
	p.Sketch.WindowLength = 100
	h := mustHierarchy(t, p)
	for i := Tick(1); i <= 80; i++ {
		if err := h.Add(7, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := Tick(200); i <= 280; i++ {
		if err := h.Add(9, i); err != nil {
			t.Fatal(err)
		}
	}
	h.Advance(280)
	hits, err := h.HeavyHitters(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range hits {
		if it.Key == 7 {
			t.Error("expired key 7 reported as heavy hitter")
		}
	}
	if len(hits) == 0 || hits[0].Key != 9 {
		t.Errorf("current heavy key 9 not reported (got %v)", hits)
	}
}

func TestRangeCount(t *testing.T) {
	h := mustHierarchy(t, testParams(8, 0.05))
	// Keys 0..255; add key k exactly k%4+1 times at distinct ticks.
	var now Tick
	truth := make([]uint64, 256)
	for k := uint64(0); k < 256; k++ {
		n := k%4 + 1
		for j := uint64(0); j < n; j++ {
			now++
			if err := h.Add(k, now); err != nil {
				t.Fatal(err)
			}
		}
		truth[k] = n
	}
	h.Advance(now)
	cases := [][2]uint64{{0, 255}, {0, 0}, {255, 255}, {10, 20}, {7, 200}, {128, 131}}
	for _, c := range cases {
		var want float64
		for k := c[0]; k <= c[1]; k++ {
			want += float64(truth[k])
		}
		got, err := h.RangeCount(c[0], c[1], 2000)
		if err != nil {
			t.Fatalf("RangeCount(%v): %v", c, err)
		}
		tol := 0.1*640 + 2 // ε per dyadic piece relative to ||a||₁=640
		if math.Abs(got-want) > tol {
			t.Errorf("RangeCount(%d,%d) = %v, want %v ± %v", c[0], c[1], got, want, tol)
		}
	}
	if _, err := h.RangeCount(5, 3, 100); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := h.RangeCount(0, 256, 100); err == nil {
		t.Error("out-of-domain range accepted")
	}
}

func TestQuantiles(t *testing.T) {
	h := mustHierarchy(t, testParams(10, 0.05))
	// Uniform keys 0..1023, one arrival each: the q-quantile is ≈ 1024·q.
	var now Tick
	for k := uint64(0); k < 1024; k++ {
		now++
		if err := h.Add(k, now); err != nil {
			t.Fatal(err)
		}
	}
	h.Advance(now)
	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	got, err := h.Quantiles(qs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want := q * 1024
		if math.Abs(float64(got[i])-want) > 0.1*1024 {
			t.Errorf("Quantile(%v) = %d, want ≈ %v", q, got[i], want)
		}
	}
	if _, err := h.Quantile(-0.1, 100); err == nil {
		t.Error("negative quantile accepted")
	}
	if _, err := h.Quantile(1.5, 100); err == nil {
		t.Error("quantile > 1 accepted")
	}
}

func TestQuantileEmptyWindow(t *testing.T) {
	h := mustHierarchy(t, testParams(6, 0.1))
	if _, err := h.Quantile(0.5, 100); err == nil {
		t.Error("quantile over empty window succeeded")
	}
}

func TestHierarchyMerge(t *testing.T) {
	p := testParams(8, 0.05)
	a := mustHierarchy(t, p)
	b := mustHierarchy(t, p)
	union := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(9))
	var now Tick
	for i := 0; i < 1200; i++ {
		now++
		k := uint64(rng.Intn(50))
		if i%10 < 4 {
			k = 5 // 40% heavy key
		}
		tgt := a
		if rng.Intn(2) == 0 {
			tgt = b
		}
		if err := tgt.Add(k, now); err != nil {
			t.Fatal(err)
		}
		union[k]++
	}
	a.Advance(now)
	b.Advance(now)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	hits, err := m.HeavyHitters(0.2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Key != 5 {
		t.Errorf("merged hierarchy missed global heavy hitter 5: %v", hits)
	}
	// Merged estimate of the heavy key close to the union truth.
	got := m.EstimateItem(5, 2000)
	want := float64(union[5])
	if math.Abs(got-want) > 0.25*want+2 {
		t.Errorf("merged EstimateItem(5) = %v, union truth %v", got, want)
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("Merge of nothing accepted")
	}
	a := mustHierarchy(t, testParams(8, 0.1))
	b := mustHierarchy(t, testParams(6, 0.1))
	if _, err := Merge(a, b); err == nil {
		t.Error("Merge of different domains accepted")
	}
}

func TestMemoryScalesWithLevels(t *testing.T) {
	small := mustHierarchy(t, testParams(4, 0.1))
	large := mustHierarchy(t, testParams(16, 0.1))
	if small.MemoryBytes() >= large.MemoryBytes() {
		t.Errorf("4-bit hierarchy (%dB) not smaller than 16-bit (%dB)",
			small.MemoryBytes(), large.MemoryBytes())
	}
	if small.DomainBits() != 4 || large.DomainBits() != 16 {
		t.Error("DomainBits mismatch")
	}
}

func TestHierarchyCountBasedRejectsMerge(t *testing.T) {
	p := testParams(6, 0.1)
	p.Sketch.Model = window.CountBased
	a := mustHierarchy(t, p)
	b := mustHierarchy(t, p)
	if _, err := Merge(a, b); err == nil {
		t.Error("Merge of count-based hierarchies accepted")
	}
}
