package dyadic

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ecmsketch/internal/core"
)

const wireHierarchy byte = 0xD7

// Marshal encodes the hierarchy: domain size followed by each level's
// ECM-sketch encoding, length-prefixed. A serialized hierarchy lets
// distributed sites ship their dyadic stacks to an aggregator that merges
// them level by level (see Merge) without sharing memory.
func (h *Hierarchy) Marshal() []byte {
	var out []byte
	out = append(out, wireHierarchy)
	out = binary.AppendUvarint(out, uint64(h.bits))
	for _, s := range h.levels {
		enc := s.Marshal()
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// Unmarshal reconstructs a hierarchy from Marshal output. The decoded
// hierarchy answers every query identically to the encoded one and remains
// mergeable with its lineage.
func Unmarshal(b []byte) (*Hierarchy, error) {
	if len(b) == 0 || b[0] != wireHierarchy {
		return nil, errors.New("dyadic: not a hierarchy encoding")
	}
	off := 1
	bits, n := binary.Uvarint(b[off:])
	if n <= 0 || bits == 0 || bits > 40 {
		return nil, fmt.Errorf("dyadic: corrupt domain bits %d", bits)
	}
	off += n
	h := &Hierarchy{bits: int(bits)}
	for i := 0; i < int(bits); i++ {
		ln, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, errors.New("dyadic: truncated encoding")
		}
		off += n
		if ln > uint64(len(b)-off) {
			return nil, errors.New("dyadic: truncated level encoding")
		}
		s, err := core.Unmarshal(b[off : off+int(ln)])
		if err != nil {
			return nil, fmt.Errorf("dyadic: level %d: %w", i, err)
		}
		off += int(ln)
		h.levels = append(h.levels, s)
	}
	return h, nil
}
