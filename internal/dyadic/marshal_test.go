package dyadic

import (
	"testing"
)

func TestHierarchyMarshalRoundTrip(t *testing.T) {
	h := mustHierarchy(t, testParams(10, 0.05))
	var now Tick
	for i := 0; i < 800; i++ {
		now++
		key := uint64(i % 300)
		if i%4 == 0 {
			key = 42
		}
		if err := h.Add(key, now); err != nil {
			t.Fatal(err)
		}
	}
	h.Advance(now)
	dec, err := Unmarshal(h.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if dec.DomainBits() != 10 {
		t.Errorf("DomainBits = %d", dec.DomainBits())
	}
	for k := uint64(0); k < 300; k++ {
		if a, b := h.EstimateItem(k, 2000), dec.EstimateItem(k, 2000); a != b {
			t.Fatalf("EstimateItem(%d) changed: %v vs %v", k, a, b)
		}
	}
	hh1, err := h.HeavyHitters(0.1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	hh2, err := dec.HeavyHitters(0.1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hh1) != len(hh2) {
		t.Fatalf("heavy hitters differ: %v vs %v", hh1, hh2)
	}
	for i := range hh1 {
		if hh1[i] != hh2[i] {
			t.Fatalf("heavy hitter %d differs: %v vs %v", i, hh1[i], hh2[i])
		}
	}
}

func TestHierarchyUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal([]byte{0x00}); err == nil {
		t.Error("wrong tag accepted")
	}
	if _, err := Unmarshal([]byte{wireHierarchy, 99}); err == nil {
		t.Error("oversized domain accepted")
	}
	h := mustHierarchy(t, testParams(6, 0.1))
	if err := h.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	enc := h.Marshal()
	for _, cut := range []int{1, 2, len(enc) / 2, len(enc) - 1} {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Errorf("truncation to %d accepted", cut)
		}
	}
}

func TestDecodedHierarchiesMerge(t *testing.T) {
	// The distributed heavy-hitter pipeline: sites serialize their stacks,
	// the aggregator decodes and merges.
	p := testParams(8, 0.05)
	a := mustHierarchy(t, p)
	b := mustHierarchy(t, p)
	var now Tick
	for i := 0; i < 600; i++ {
		now++
		if err := a.Add(uint64(i%40), now); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(7, now); err != nil { // site b hammers key 7
			t.Fatal(err)
		}
	}
	a.Advance(now)
	b.Advance(now)
	da, err := Unmarshal(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(da, db)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := m.HeavyHitters(0.3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Key != 7 {
		t.Errorf("merged decoded hierarchies missed key 7: %v", hits)
	}
}
