package dyadic

import (
	"testing"
	"testing/quick"

	"ecmsketch/internal/core"
)

// Property tests on the dyadic machinery over arbitrary small streams.

func quickHierarchy(bits int) (*Hierarchy, error) {
	return New(Params{
		Sketch: core.Params{
			Epsilon:      0.05,
			Delta:        0.1,
			WindowLength: 1 << 20, // nothing expires within these tests
			Seed:         31,
		},
		DomainBits: bits,
	})
}

func TestQuickRangeCountConsistency(t *testing.T) {
	// Property: RangeCount(lo,hi) ≈ Σ per-item estimates, and the full-range
	// count ≈ total arrivals.
	prop := func(keys []uint8, loRaw, hiRaw uint8) bool {
		if len(keys) == 0 {
			return true
		}
		h, err := quickHierarchy(8)
		if err != nil {
			return false
		}
		truth := make([]float64, 256)
		var now Tick
		for _, k := range keys {
			now++
			if err := h.Add(uint64(k), now); err != nil {
				return false
			}
			truth[k]++
		}
		lo, hi := uint64(loRaw), uint64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		got, err := h.RangeCount(lo, hi, 1<<20)
		if err != nil {
			return false
		}
		var want float64
		for k := lo; k <= hi; k++ {
			want += truth[k]
		}
		n := float64(len(keys))
		// Each dyadic piece carries ε relative to ‖a‖₁; ≤16 pieces in an
		// 8-bit domain.
		return got >= want-1 && got-want <= 0.05*n*16+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	// Property: quantiles are monotone in q.
	prop := func(keys []uint8) bool {
		if len(keys) < 4 {
			return true
		}
		h, err := quickHierarchy(8)
		if err != nil {
			return false
		}
		var now Tick
		for _, k := range keys {
			now++
			if err := h.Add(uint64(k), now); err != nil {
				return false
			}
		}
		qs, err := h.Quantiles([]float64{0.1, 0.3, 0.5, 0.7, 0.9}, 1<<20)
		if err != nil {
			return false
		}
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickHeavyHittersContainTrueHeavies(t *testing.T) {
	// Property (Theorem 5 side A): items above (φ+ε)·n are always reported.
	prop := func(keys []uint8, hot uint8, extra uint8) bool {
		h, err := quickHierarchy(8)
		if err != nil {
			return false
		}
		truth := make([]float64, 256)
		var now Tick
		add := func(k uint8) bool {
			now++
			if err := h.Add(uint64(k), now); err != nil {
				return false
			}
			truth[k]++
			return true
		}
		for _, k := range keys {
			if !add(k) {
				return false
			}
		}
		// Force one genuinely heavy item: at least half the stream.
		for i := 0; i <= len(keys)+int(extra%16); i++ {
			if !add(hot) {
				return false
			}
		}
		var n float64
		for _, c := range truth {
			n += c
		}
		const phi = 0.3
		hits, err := h.HeavyHitters(phi, 1<<20)
		if err != nil {
			return false
		}
		reported := map[uint64]bool{}
		for _, it := range hits {
			reported[it.Key] = true
		}
		for k := 0; k < 256; k++ {
			if truth[k] >= (phi+0.05)*n && !reported[uint64(k)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
