package experiments

import (
	"fmt"
	"math"
	"time"

	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
)

// CentralizedRow is one point of Figure 4: a sketch variant at one ε,
// configured (ε-split) for one query type, with its memory footprint and
// observed errors.
type CentralizedRow struct {
	Dataset string
	Algo    window.Algorithm
	Eps     float64
	Query   core.QueryKind
	Memory  int     // bytes after ingesting the stream
	AvgErr  float64 // mean observed relative error across ranges/items
	MaxErr  float64 // maximum observed relative error
	Queries int     // number of individual queries evaluated
	Skipped bool    // true when the configuration was not run (paper: RW at low ε)
	Reason  string
}

// CentralizedConfig bounds the evaluation work.
type CentralizedConfig struct {
	// Epsilons to sweep; the paper uses [0.05, 0.25].
	Epsilons []float64
	// Delta is fixed at 0.1 in the paper.
	Delta float64
	// Algorithms to compare.
	Algorithms []window.Algorithm
	// MaxPointKeys caps the number of distinct items point-queried per
	// range (the paper queries all; we sample for laptop runtimes and note
	// it in EXPERIMENTS.md). 0 means all.
	MaxPointKeys int
	// SkipRWBelow skips randomized-wave runs with ε below this value, as
	// the paper's own ε=0.05 RW run could not complete.
	SkipRWBelow float64
}

// DefaultCentralizedConfig mirrors the paper's Figure 4 sweep.
func DefaultCentralizedConfig() CentralizedConfig {
	return CentralizedConfig{
		Epsilons:     []float64{0.05, 0.10, 0.15, 0.20, 0.25},
		Delta:        0.1,
		Algorithms:   []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW},
		MaxPointKeys: 1500,
		SkipRWBelow:  0.10,
	}
}

// RunCentralized reproduces Figure 4(a)-(d): for every (algorithm, ε) it
// builds a point-optimized and a self-join-optimized sketch over the whole
// stream, then evaluates point queries for the distinct items of each query
// range and one self-join query per range, reporting observed error versus
// memory. Randomized waves are excluded from self-join rows, as the paper's
// RW variant carries no inner-product guarantee.
func RunCentralized(ds Dataset, cfg CentralizedConfig) ([]CentralizedRow, error) {
	var rows []CentralizedRow
	for _, algo := range cfg.Algorithms {
		for _, eps := range cfg.Epsilons {
			if algo == window.AlgoRW && eps < cfg.SkipRWBelow {
				rows = append(rows, CentralizedRow{
					Dataset: ds.Name, Algo: algo, Eps: eps, Query: core.PointQuery,
					Skipped: true, Reason: "RW memory infeasible (paper: did not complete)",
				})
				continue
			}
			pointRow, err := centralizedPoint(ds, algo, eps, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, pointRow)
			if algo == window.AlgoRW {
				continue // no self-join guarantee for RW (Section 7.2)
			}
			sjRow, err := centralizedSelfJoin(ds, algo, eps, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, sjRow)
		}
	}
	return rows, nil
}

func newSketch(ds Dataset, algo window.Algorithm, eps, delta float64, q core.QueryKind) (*core.Sketch, error) {
	return core.New(core.Params{
		Epsilon:      eps,
		Delta:        delta,
		Query:        q,
		Algorithm:    algo,
		WindowLength: ds.Window,
		UpperBound:   ds.UpperBound,
		Seed:         1234,
	})
}

func ingest(s *core.Sketch, ds Dataset) {
	var now Tick
	for _, ev := range ds.Events {
		s.Add(ev.Key, ev.Time)
		now = ev.Time
	}
	s.Advance(now)
}

func centralizedPoint(ds Dataset, algo window.Algorithm, eps float64, cfg CentralizedConfig) (CentralizedRow, error) {
	s, err := newSketch(ds, algo, eps, cfg.Delta, core.PointQuery)
	if err != nil {
		return CentralizedRow{}, fmt.Errorf("experiments: %v ε=%v: %w", algo, eps, err)
	}
	ingest(s, ds)
	row := CentralizedRow{Dataset: ds.Name, Algo: algo, Eps: eps, Query: core.PointQuery, Memory: s.MemoryBytes()}
	row.AvgErr, row.MaxErr, row.Queries = evalPointQueries(s, ds, cfg.MaxPointKeys)
	return row, nil
}

// minRangeMass is the smallest ||a_r||₁ a query range must hold to enter the
// error statistics. The paper's real traces carry ≥10³ events even in their
// smallest 10-second range; our scaled streams are sparser, and a range with
// a handful of events makes relative error degenerate (one item of absolute
// error being half the range mass). EXPERIMENTS.md documents this floor.
const minRangeMass = 100

// evalPointQueries runs, for every query range, one point query per distinct
// item within the range (sampled down to maxKeys), measuring the error
// relative to ||a_r||₁ as in Section 7.1.
func evalPointQueries(s *core.Sketch, ds Dataset, maxKeys int) (avg, max float64, n int) {
	keys := ds.Oracle.Keys()
	var sum float64
	for _, r := range ds.QueryRanges() {
		l1 := float64(ds.Oracle.Total(r))
		if l1 < minRangeMass {
			continue
		}
		step := 1
		if maxKeys > 0 && len(keys) > maxKeys {
			step = len(keys) / maxKeys
		}
		for i := 0; i < len(keys); i += step {
			k := keys[i]
			want := float64(ds.Oracle.Freq(k, r))
			if want == 0 && ds.Oracle.Freq(k, ds.Window) == 0 {
				continue // item entirely outside the window: not "in range"
			}
			got := s.Estimate(k, r)
			e := math.Abs(got-want) / l1
			sum += e
			if e > max {
				max = e
			}
			n++
		}
	}
	if n > 0 {
		avg = sum / float64(n)
	}
	return avg, max, n
}

func centralizedSelfJoin(ds Dataset, algo window.Algorithm, eps float64, cfg CentralizedConfig) (CentralizedRow, error) {
	s, err := newSketch(ds, algo, eps, cfg.Delta, core.InnerProductQuery)
	if err != nil {
		return CentralizedRow{}, fmt.Errorf("experiments: %v ε=%v: %w", algo, eps, err)
	}
	ingest(s, ds)
	row := CentralizedRow{Dataset: ds.Name, Algo: algo, Eps: eps, Query: core.InnerProductQuery, Memory: s.MemoryBytes()}
	row.AvgErr, row.MaxErr, row.Queries = evalSelfJoinQueries(s, ds)
	return row, nil
}

// evalSelfJoinQueries runs one self-join query per range, with errors
// relative to ||a_r||₁² (Section 7.1).
func evalSelfJoinQueries(s *core.Sketch, ds Dataset) (avg, max float64, n int) {
	var sum float64
	for _, r := range ds.QueryRanges() {
		l1 := float64(ds.Oracle.Total(r))
		if l1 < minRangeMass {
			continue
		}
		want := ds.Oracle.SelfJoin(r)
		got := s.SelfJoin(r)
		e := math.Abs(got-want) / (l1 * l1)
		sum += e
		if e > max {
			max = e
		}
		n++
	}
	if n > 0 {
		avg = sum / float64(n)
	}
	return avg, max, n
}

// UpdateRateRow is one cell of Table 3: sustained updates per second for a
// sketch variant at ε=0.1.
type UpdateRateRow struct {
	Dataset       string
	Algo          window.Algorithm
	Eps           float64
	UpdatesPerSec float64
	Events        int
}

// RunUpdateRates reproduces Table 3: wall-clock ingest throughput of the
// three variants at ε=0.1 (point-optimized, as in the centralized setup).
func RunUpdateRates(ds Dataset, eps, delta float64, algos []window.Algorithm) ([]UpdateRateRow, error) {
	var rows []UpdateRateRow
	for _, algo := range algos {
		s, err := newSketch(ds, algo, eps, delta, core.PointQuery)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ingest(s, ds)
		elapsed := time.Since(start).Seconds()
		rows = append(rows, UpdateRateRow{
			Dataset:       ds.Name,
			Algo:          algo,
			Eps:           eps,
			UpdatesPerSec: float64(len(ds.Events)) / elapsed,
			Events:        len(ds.Events),
		})
	}
	return rows, nil
}
