package experiments

import (
	"time"

	"ecmsketch/internal/window"
)

// ComplexityRow is one empirical scaling point backing Table 2: the measured
// memory and per-update cost of a single sliding-window counter at a given
// ε, used to check the advertised asymptotics (EH/DW memory linear in 1/ε,
// RW quadratic; O(1) amortized updates).
type ComplexityRow struct {
	Algo        window.Algorithm
	Eps         float64
	MemoryBytes int
	NsPerUpdate float64
	NsPerQuery  float64
}

// AnalyticComplexity returns the rows of Table 2 verbatim, as the paper
// states them.
func AnalyticComplexity() []string {
	return []string{
		"                     Exponential Histogram           Deterministic Wave              Randomized Wave",
		"Memory               O(1/eps ln(1/d) ln^2 g(N,S))    O(1/eps ln(1/d) ln^2 g(N,S))    O(1/eps^2 ln^2(d) ln^2 u(N,S))",
		"Amortized update     O(ln(1/d))                      O(ln(1/d))                      O(ln^2(d))",
		"Worst-case update    O(ln(1/d) ln(u(N,S)))           O(ln(1/d))*                     O(ln^2(d) ln(u(N,S)))",
		"Query                O(ln(1/d) ln(u(N,S))/sqrt(e))   O(ln(1/d) ln(u(N,S))/sqrt(e))   O(ln^2(d)(ln u(N,S)+1/e^2))",
		"",
		"g(N,S) = max(u(N,S), N).",
		"* the default DW inserts rank r into levels 0..tz(r): O(1) amortized,",
		"  O(log u) worst-case. window.DWConst implements the paper's strict O(1)",
		"  worst case (single placement per arrival, union reconstruction at query).",
	}
}

// RunComplexity measures one counter of each kind across an ε sweep,
// validating the memory asymptotics empirically.
func RunComplexity(epsilons []float64, events int) ([]ComplexityRow, error) {
	if events <= 0 {
		events = 200000
	}
	var rows []ComplexityRow
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW} {
		for _, eps := range epsilons {
			cfg := window.Config{
				Length:     Tick(events),
				Epsilon:    eps,
				Delta:      0.1,
				UpperBound: uint64(events),
			}
			c, err := window.New(algo, cfg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for i := 0; i < events; i++ {
				c.Add(Tick(i + 1))
			}
			upd := time.Since(start)
			const queries = 2000
			start = time.Now()
			var sink float64
			for i := 0; i < queries; i++ {
				sink += c.EstimateRange(Tick(1 + i*events/queries))
			}
			qry := time.Since(start)
			_ = sink
			rows = append(rows, ComplexityRow{
				Algo:        algo,
				Eps:         eps,
				MemoryBytes: c.MemoryBytes(),
				NsPerUpdate: float64(upd.Nanoseconds()) / float64(events),
				NsPerQuery:  float64(qry.Nanoseconds()) / queries,
			})
		}
	}
	return rows, nil
}
