// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 7) on the synthetic stand-ins for the wc'98 and snmp
// traces. Each experiment is a pure function from a Dataset and parameters
// to structured result rows, shared by the ecmbench command and the
// bench_test.go benchmarks.
package experiments

import (
	"fmt"

	"ecmsketch/internal/window"
	"ecmsketch/internal/workload"
)

// Tick re-exports the logical timestamp type.
type Tick = window.Tick

// Dataset is a fully materialized evaluation stream with its exact oracle.
type Dataset struct {
	Name   string
	Events []workload.Event
	// Window is the monitored sliding-window length (the paper uses 10⁶
	// seconds ≈ 11.5 days of the 92-day wc'98 trace).
	Window Tick
	// Duration is the tick span of the stream.
	Duration Tick
	// Sites is the native site count of the trace (33 wc'98 servers, 535
	// snmp APs).
	Sites int
	// Oracle holds the exact sliding-window statistics.
	Oracle *workload.Oracle
	// UpperBound is u(N,S) for wave-based sketches.
	UpperBound uint64
}

// Scale multiplies the default event counts; 1 is the standard laptop-scale
// run used by ecmbench, smaller fractions are used by unit benchmarks.
type Scale struct {
	Events int
}

// DefaultScale is the event count used by full ecmbench runs.
const DefaultScale = 400000

// LoadWC98 materializes the wc'98-like dataset. The stream spans 2·10⁶ ticks
// with a 10⁶-tick sliding window, mirroring the paper's ratio of window to
// trace length.
func LoadWC98(events int) (Dataset, error) {
	return load("wc98", events, func(n int, dur Tick) (*workload.Generator, error) {
		return workload.WorldCup98Like(n, dur, 9802)
	}, 33)
}

// LoadSNMP materializes the snmp-like dataset.
func LoadSNMP(events int) (Dataset, error) {
	return load("snmp", events, func(n int, dur Tick) (*workload.Generator, error) {
		return workload.SNMPLike(n, dur, 535)
	}, 535)
}

func load(name string, events int, mk func(int, Tick) (*workload.Generator, error), sites int) (Dataset, error) {
	if events <= 0 {
		events = DefaultScale
	}
	duration := Tick(2_000_000)
	g, err := mk(events, duration)
	if err != nil {
		return Dataset{}, fmt.Errorf("experiments: loading %s: %w", name, err)
	}
	evs := g.Drain()
	win := duration / 2
	oracle := workload.NewOracle(win)
	for _, ev := range evs {
		oracle.AddEvent(ev)
	}
	return Dataset{
		Name:       name,
		Events:     evs,
		Window:     win,
		Duration:   duration,
		Sites:      sites,
		Oracle:     oracle,
		UpperBound: uint64(events), // conservative, as the paper recommends
	}, nil
}

// QueryRanges returns the paper's exponentially growing query ranges
// [t−10^i, t], capped at the window length.
func (d Dataset) QueryRanges() []Tick {
	var out []Tick
	for r := Tick(10); r < d.Window; r *= 10 {
		out = append(out, r)
	}
	return append(out, d.Window)
}
