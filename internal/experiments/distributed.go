package experiments

import (
	"fmt"
	"math"

	"ecmsketch/internal/core"
	"ecmsketch/internal/distrib"
	"ecmsketch/internal/window"
)

// DistributedRow is one point of Figure 5: a variant at one ε aggregated
// over the dataset's native site topology, with the total transfer volume
// and the observed error at the root.
type DistributedRow struct {
	Dataset    string
	Algo       window.Algorithm
	Eps        float64
	Query      core.QueryKind
	Sites      int
	TreeHeight int
	Transfer   int64 // bytes shipped during aggregation
	AvgErr     float64
	MaxErr     float64
	Skipped    bool
	Reason     string
}

// DistributedConfig bounds the Figure 5 sweep.
type DistributedConfig struct {
	Epsilons     []float64
	Delta        float64
	MaxPointKeys int
	SkipRWBelow  float64
}

// DefaultDistributedConfig mirrors the paper's Figure 5 sweep: EH and RW
// variants (DW offers no advantage over EH and is excluded, Section 7.3).
func DefaultDistributedConfig() DistributedConfig {
	return DistributedConfig{
		Epsilons:     []float64{0.05, 0.10, 0.15, 0.20, 0.25},
		Delta:        0.1,
		MaxPointKeys: 1000,
		SkipRWBelow:  0.10,
	}
}

// RunDistributed reproduces Figure 5: the dataset's stream is split across
// its native sites (33 wc'98 servers / 535 snmp APs) arranged as leaves of a
// balanced binary tree; sketches are aggregated to the root and the root's
// observed error is reported against the total transfer volume.
func RunDistributed(ds Dataset, cfg DistributedConfig) ([]DistributedRow, error) {
	var rows []DistributedRow
	for _, algo := range []window.Algorithm{window.AlgoEH, window.AlgoRW} {
		for _, eps := range cfg.Epsilons {
			if algo == window.AlgoRW && eps < cfg.SkipRWBelow {
				rows = append(rows, DistributedRow{
					Dataset: ds.Name, Algo: algo, Eps: eps, Query: core.PointQuery,
					Sites: ds.Sites, Skipped: true,
					Reason: "RW memory infeasible (paper: did not complete)",
				})
				continue
			}
			row, err := runDistributedOnce(ds, algo, eps, cfg.Delta, ds.Sites, core.PointQuery, cfg.MaxPointKeys)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if algo == window.AlgoEH {
				sj, err := runDistributedOnce(ds, algo, eps, cfg.Delta, ds.Sites, core.InnerProductQuery, cfg.MaxPointKeys)
				if err != nil {
					return nil, err
				}
				rows = append(rows, sj)
			}
		}
	}
	return rows, nil
}

func runDistributedOnce(ds Dataset, algo window.Algorithm, eps, delta float64, sites int, q core.QueryKind, maxKeys int) (DistributedRow, error) {
	p := core.Params{
		Epsilon:      eps,
		Delta:        delta,
		Query:        q,
		Algorithm:    algo,
		WindowLength: ds.Window,
		UpperBound:   ds.UpperBound,
		Seed:         1234,
	}
	cluster, err := distrib.NewCluster(p, sites)
	if err != nil {
		return DistributedRow{}, fmt.Errorf("experiments: %s %v ε=%v: %w", ds.Name, algo, eps, err)
	}
	cluster.IngestAll(ds.Events)
	root, height, err := cluster.AggregateTree()
	if err != nil {
		return DistributedRow{}, fmt.Errorf("experiments: aggregating %s %v ε=%v: %w", ds.Name, algo, eps, err)
	}
	row := DistributedRow{
		Dataset: ds.Name, Algo: algo, Eps: eps, Query: q,
		Sites: sites, TreeHeight: height, Transfer: cluster.Network().Bytes(),
	}
	if q == core.InnerProductQuery {
		row.AvgErr, row.MaxErr, _ = evalSelfJoinQueries(root, ds)
	} else {
		row.AvgErr, row.MaxErr, _ = evalPointQueries(root, ds, maxKeys)
	}
	return row, nil
}

// RatioRow is one row of Table 4: centralized vs distributed observed error.
type RatioRow struct {
	Dataset     string
	Algo        window.Algorithm
	Eps         float64
	Query       core.QueryKind
	Centralized float64
	Distributed float64
	Ratio       float64
}

// RunCentralizedVsDistributed reproduces Table 4 for the given ε values:
// the same stream summarized centrally and via tree aggregation, with the
// error inflation ratio.
func RunCentralizedVsDistributed(ds Dataset, epsilons []float64, delta float64, maxKeys int) ([]RatioRow, error) {
	var rows []RatioRow
	for _, eps := range epsilons {
		for _, spec := range []struct {
			algo window.Algorithm
			q    core.QueryKind
		}{
			{window.AlgoEH, core.PointQuery},
			{window.AlgoEH, core.InnerProductQuery},
			{window.AlgoRW, core.PointQuery},
		} {
			central, err := newSketch(ds, spec.algo, eps, delta, spec.q)
			if err != nil {
				return nil, err
			}
			ingest(central, ds)
			var cAvg float64
			if spec.q == core.InnerProductQuery {
				cAvg, _, _ = evalSelfJoinQueries(central, ds)
			} else {
				cAvg, _, _ = evalPointQueries(central, ds, maxKeys)
			}
			drow, err := runDistributedOnce(ds, spec.algo, eps, delta, ds.Sites, spec.q, maxKeys)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RatioRow{
				Dataset: ds.Name, Algo: spec.algo, Eps: eps, Query: spec.q,
				Centralized: cAvg, Distributed: drow.AvgErr,
				Ratio: drow.AvgErr / math.Max(cAvg, 1e-12),
			})
		}
	}
	return rows, nil
}

// ScalingRow is one point of Figure 6: error and network cost at a given
// artificial network size.
type ScalingRow struct {
	Dataset  string
	Algo     window.Algorithm
	Query    core.QueryKind
	Nodes    int
	AvgErr   float64
	Transfer int64
}

// RunScaling reproduces Figure 6: an artificial network of i nodes,
// i ∈ {1,2,4,...,256}, with the stream divided uniformly across them
// (events are reassigned round-robin), ε = δ = 0.1.
func RunScaling(ds Dataset, eps, delta float64, maxNodes int, maxKeys int) ([]ScalingRow, error) {
	if maxNodes <= 0 {
		maxNodes = 256
	}
	var rows []ScalingRow
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		for _, spec := range []struct {
			algo window.Algorithm
			q    core.QueryKind
		}{
			{window.AlgoEH, core.PointQuery},
			{window.AlgoEH, core.InnerProductQuery},
			{window.AlgoRW, core.PointQuery},
		} {
			row, err := runScalingOnce(ds, spec.algo, eps, delta, nodes, spec.q, maxKeys)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runScalingOnce(ds Dataset, algo window.Algorithm, eps, delta float64, nodes int, q core.QueryKind, maxKeys int) (ScalingRow, error) {
	p := core.Params{
		Epsilon:      eps,
		Delta:        delta,
		Query:        q,
		Algorithm:    algo,
		WindowLength: ds.Window,
		UpperBound:   ds.UpperBound,
		Seed:         1234,
	}
	cluster, err := distrib.NewCluster(p, nodes)
	if err != nil {
		return ScalingRow{}, err
	}
	cluster.Start()
	var now Tick
	for i, ev := range ds.Events {
		ev.Site = i % nodes // uniform division across the artificial network
		if ev.Time > now {
			now = ev.Time
		}
		cluster.Feed(ev)
	}
	cluster.Wait(now)
	root, _, err := cluster.AggregateTree()
	if err != nil {
		return ScalingRow{}, err
	}
	row := ScalingRow{Dataset: ds.Name, Algo: algo, Query: q, Nodes: nodes, Transfer: cluster.Network().Bytes()}
	if q == core.InnerProductQuery {
		row.AvgErr, _, _ = evalSelfJoinQueries(root, ds)
	} else {
		row.AvgErr, _, _ = evalPointQueries(root, ds, maxKeys)
	}
	return row, nil
}
