package experiments

import (
	"math"
	"strings"
	"testing"

	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
)

// smallWC is a shared scaled-down dataset for experiment tests.
func smallWC(t testing.TB) Dataset {
	t.Helper()
	ds, err := LoadWC98(25000)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallSNMP(t testing.TB) Dataset {
	t.Helper()
	ds, err := LoadSNMP(25000)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetsLoad(t *testing.T) {
	wc := smallWC(t)
	if len(wc.Events) != 25000 || wc.Sites != 33 {
		t.Errorf("wc98: %d events, %d sites", len(wc.Events), wc.Sites)
	}
	sn := smallSNMP(t)
	if len(sn.Events) != 25000 || sn.Sites != 535 {
		t.Errorf("snmp: %d events, %d sites", len(sn.Events), sn.Sites)
	}
	rs := wc.QueryRanges()
	if len(rs) == 0 || rs[len(rs)-1] != wc.Window {
		t.Errorf("QueryRanges = %v, want trailing window", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i] <= rs[i-1] {
			t.Error("query ranges not increasing")
		}
	}
}

func TestRunCentralizedShape(t *testing.T) {
	ds := smallWC(t)
	cfg := CentralizedConfig{
		Epsilons:     []float64{0.1, 0.25},
		Delta:        0.1,
		Algorithms:   []window.Algorithm{window.AlgoEH, window.AlgoDW, window.AlgoRW},
		MaxPointKeys: 200,
		SkipRWBelow:  0.10,
	}
	rows, err := RunCentralized(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]CentralizedRow{}
	for _, r := range rows {
		if r.Skipped {
			continue
		}
		byKey[string(AlgoLabel(r.Algo))+"/"+r.Query.String()+"/"+formatEps(r.Eps)] = r
		// The headline claim: observed error below the configured ε.
		if r.AvgErr > r.Eps {
			t.Errorf("%v %v ε=%v: avg error %v exceeds ε", r.Algo, r.Query, r.Eps, r.AvgErr)
		}
		if r.MaxErr > r.Eps*1.2+0.01 {
			t.Errorf("%v %v ε=%v: max error %v far exceeds ε", r.Algo, r.Query, r.Eps, r.MaxErr)
		}
		if r.Memory <= 0 || r.Queries <= 0 {
			t.Errorf("%v: degenerate row %+v", r.Algo, r)
		}
	}
	// Memory ordering at equal ε: RW ≫ DW ≥ EH (Fig. 4's headline).
	eh := byKey["ECM-EH/point/0.10"]
	dw := byKey["ECM-DW/point/0.10"]
	rw := byKey["ECM-RW/point/0.10"]
	if !(rw.Memory > 5*eh.Memory) {
		t.Errorf("RW memory %d not ≫ EH %d", rw.Memory, eh.Memory)
	}
	if !(dw.Memory >= eh.Memory) {
		t.Errorf("DW memory %d < EH %d", dw.Memory, eh.Memory)
	}
	// Smaller ε costs more memory.
	eh25 := byKey["ECM-EH/point/0.25"]
	if !(eh.Memory > eh25.Memory) {
		t.Errorf("EH memory at ε=0.1 (%d) not above ε=0.25 (%d)", eh.Memory, eh25.Memory)
	}
}

func formatEps(e float64) string {
	switch {
	case math.Abs(e-0.10) < 1e-9:
		return "0.10"
	case math.Abs(e-0.25) < 1e-9:
		return "0.25"
	default:
		return "other"
	}
}

func TestRunUpdateRates(t *testing.T) {
	ds := SubsetEvents(smallWC(t), 10000)
	rows, err := RunUpdateRates(ds, 0.1, 0.1, []window.Algorithm{window.AlgoEH, window.AlgoRW})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.UpdatesPerSec <= 0 {
			t.Errorf("%v: non-positive rate", r.Algo)
		}
	}
	// EH must ingest faster than RW (Table 3's ordering).
	if rows[0].UpdatesPerSec < rows[1].UpdatesPerSec {
		t.Errorf("EH rate %v below RW rate %v", rows[0].UpdatesPerSec, rows[1].UpdatesPerSec)
	}
}

func TestRunDistributedShape(t *testing.T) {
	ds := smallWC(t)
	cfg := DistributedConfig{
		Epsilons:     []float64{0.1},
		Delta:        0.1,
		MaxPointKeys: 150,
		SkipRWBelow:  0.1,
	}
	rows, err := RunDistributed(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ehPoint, rwPoint *DistributedRow
	for i := range rows {
		r := &rows[i]
		if r.Skipped {
			continue
		}
		if r.Algo == window.AlgoEH && r.Query == core.PointQuery {
			ehPoint = r
		}
		if r.Algo == window.AlgoRW && r.Query == core.PointQuery {
			rwPoint = r
		}
		if r.Transfer <= 0 {
			t.Errorf("%+v: no transfer recorded", *r)
		}
	}
	if ehPoint == nil || rwPoint == nil {
		t.Fatal("missing EH or RW point rows")
	}
	// Fig. 5's headline: RW network cost ≥ an order of magnitude above EH.
	if rwPoint.Transfer < 5*ehPoint.Transfer {
		t.Errorf("RW transfer %d not ≫ EH %d", rwPoint.Transfer, ehPoint.Transfer)
	}
	// Aggregated error still below ε.
	if ehPoint.AvgErr > 0.1 {
		t.Errorf("distributed EH avg error %v exceeds ε", ehPoint.AvgErr)
	}
}

func TestRunCentralizedVsDistributed(t *testing.T) {
	ds := SubsetEvents(smallWC(t), 15000)
	rows, err := RunCentralizedVsDistributed(ds, []float64{0.2}, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		// Table 4: modest inflation (paper observes ≤1.25; we allow slack
		// for the small stream).
		if r.Ratio > 3 {
			t.Errorf("%v %v: ratio %v too large", r.Algo, r.Query, r.Ratio)
		}
	}
}

func TestRunScaling(t *testing.T) {
	ds := SubsetEvents(smallSNMP(t), 15000)
	rows, err := RunScaling(ds, 0.1, 0.1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	// nodes ∈ {1,2,4} × 3 specs = 9 rows.
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	// Transfer grows with node count for EH point rows.
	var t1, t4 int64
	for _, r := range rows {
		if r.Algo == window.AlgoEH && r.Query == core.PointQuery {
			switch r.Nodes {
			case 1:
				t1 = r.Transfer
			case 4:
				t4 = r.Transfer
			}
		}
	}
	if t4 <= t1 {
		t.Errorf("transfer at 4 nodes (%d) not above 1 node (%d)", t4, t1)
	}
}

func TestRunComplexity(t *testing.T) {
	rows, err := RunComplexity([]float64{0.1, 0.2}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	mem := map[string]int{}
	for _, r := range rows {
		if r.MemoryBytes <= 0 || r.NsPerUpdate <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		mem[r.Algo.String()+formatEps(r.Eps)] = r.MemoryBytes
	}
	// RW quadratic vs EH linear in 1/ε: the RW/EH memory gap widens as ε
	// shrinks.
	gap01 := float64(mem["RW0.10"]) / float64(mem["EH0.10"])
	gap02 := float64(mem["RW"+"other"]) / float64(mem["EH"+"other"])
	if gap01 <= gap02 {
		t.Errorf("RW/EH memory gap did not widen: %.1f (ε=0.1) vs %.1f (ε=0.2)", gap01, gap02)
	}
	if lines := AnalyticComplexity(); len(lines) < 5 || !strings.Contains(lines[1], "Memory") {
		t.Error("AnalyticComplexity table malformed")
	}
}

func TestRunHeavyHittersExperiment(t *testing.T) {
	ds := smallWC(t)
	rows, err := RunHeavyHitters(ds, 0.02, []float64{0.01, 0.05}, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Recall < 1 {
			t.Errorf("phi=%v: recall %v < 1; Theorem 5 guarantees detection above (φ+ε)", r.Phi, r.Recall)
		}
		if r.Precision < 0.99 {
			t.Errorf("phi=%v: precision %v; items below (φ−ε) slipped through", r.Phi, r.Precision)
		}
	}
}

func TestRunGeometricExperiment(t *testing.T) {
	ds := SubsetEvents(smallWC(t), 8000)
	row, err := RunGeometric(ds, 4, 0.5, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if row.Updates != 8000 {
		t.Errorf("updates = %d", row.Updates)
	}
	if row.Syncs == 0 {
		t.Error("no syncs at all (threshold calibration broken)")
	}
	if row.Savings < 2 {
		t.Errorf("geometric savings %.1fx below 2x", row.Savings)
	}
}

func TestRunAblationSplit(t *testing.T) {
	ds := SubsetEvents(smallWC(t), 15000)
	rows, err := RunAblationSplit(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestPrintersDoNotPanic(t *testing.T) {
	var sb strings.Builder
	PrintCentralized(&sb, []CentralizedRow{{Dataset: "wc98", Eps: 0.1}, {Dataset: "wc98", Skipped: true, Reason: "x"}})
	PrintUpdateRates(&sb, []UpdateRateRow{{Dataset: "wc98"}})
	PrintDistributed(&sb, []DistributedRow{{Dataset: "wc98"}, {Skipped: true}})
	PrintRatios(&sb, []RatioRow{{Dataset: "snmp"}})
	PrintScaling(&sb, []ScalingRow{{Dataset: "snmp"}})
	PrintComplexity(&sb, []ComplexityRow{{Eps: 0.1}})
	PrintHeavyHitters(&sb, []HeavyHitterRow{{Phi: 0.01}})
	PrintGeom(&sb, GeomRow{})
	PrintAblationSplit(&sb, []AblationSplitRow{{Split: "x"}})
	if sb.Len() == 0 {
		t.Error("printers produced no output")
	}
}

func TestRunMotivation(t *testing.T) {
	ds := smallWC(t)
	rows, err := RunMotivation(ds, 0.01, 0.1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	cmRow, ecmRow := rows[0], rows[1]
	// The full-history summary must leak (roughly) all expired mass; the
	// windowed summary must not.
	if cmRow.StaleLeak < 0.7 {
		t.Errorf("full-history CM stale leak %v, want ≳1", cmRow.StaleLeak)
	}
	if ecmRow.StaleLeak > cmRow.StaleLeak/2 {
		t.Errorf("ECM stale leak %v not well below CM %v", ecmRow.StaleLeak, cmRow.StaleLeak)
	}
	if ecmRow.AvgErr >= cmRow.AvgErr {
		t.Errorf("ECM avg err %v not below CM %v", ecmRow.AvgErr, cmRow.AvgErr)
	}
}
