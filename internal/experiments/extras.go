package experiments

import (
	"fmt"

	"ecmsketch/internal/core"
	"ecmsketch/internal/dyadic"
	"ecmsketch/internal/geom"
	"ecmsketch/internal/window"
	"ecmsketch/internal/workload"
)

// HeavyHitterRow summarizes one φ point of the Section 6.1 functional
// validation: precision/recall of sketch-reported heavy hitters against the
// exact oracle.
type HeavyHitterRow struct {
	Dataset   string
	Phi       float64
	Reported  int
	TrueCount int
	Recall    float64 // fraction of true hitters reported
	Precision float64 // fraction of reports with frequency ≥ (φ−ε)·||a||₁
	Memory    int
}

// RunHeavyHitters validates the dyadic group-testing heavy-hitter detection
// of Section 6.1 on a dataset: per Theorem 5, recall of items above
// (φ+ε)·||a||₁ must be 1, and no reported item may fall below the (φ−ε)
// guard band.
func RunHeavyHitters(ds Dataset, eps float64, phis []float64, domainBits int) ([]HeavyHitterRow, error) {
	h, err := dyadic.New(dyadic.Params{
		Sketch: core.Params{
			Epsilon:      eps,
			Delta:        0.1,
			WindowLength: ds.Window,
			UpperBound:   ds.UpperBound,
			Seed:         77,
		},
		DomainBits: domainBits,
	})
	if err != nil {
		return nil, err
	}
	var now Tick
	mask := uint64(1)<<uint(domainBits) - 1
	for _, ev := range ds.Events {
		if err := h.Add(ev.Key&mask, ev.Time); err != nil {
			return nil, err
		}
		now = ev.Time
	}
	h.Advance(now)

	var rows []HeavyHitterRow
	total := float64(ds.Oracle.Total(ds.Window))
	for _, phi := range phis {
		hits, err := h.HeavyHitters(phi, ds.Window)
		if err != nil {
			return nil, err
		}
		reported := map[uint64]bool{}
		for _, it := range hits {
			reported[it.Key] = true
		}
		// Ground truth from the oracle.
		mustFind := 0
		found := 0
		for _, k := range ds.Oracle.Keys() {
			f := float64(ds.Oracle.Freq(k&mask, ds.Window))
			if f >= (phi+eps)*total {
				mustFind++
				if reported[k&mask] {
					found++
				}
			}
		}
		ok := 0
		for _, it := range hits {
			if float64(ds.Oracle.Freq(it.Key, ds.Window)) >= (phi-eps)*total {
				ok++
			}
		}
		row := HeavyHitterRow{
			Dataset:   ds.Name,
			Phi:       phi,
			Reported:  len(hits),
			TrueCount: mustFind,
			Memory:    h.MemoryBytes(),
		}
		if mustFind > 0 {
			row.Recall = float64(found) / float64(mustFind)
		} else {
			row.Recall = 1
		}
		if len(hits) > 0 {
			row.Precision = float64(ok) / float64(len(hits))
		} else {
			row.Precision = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeomRow summarizes one geometric-monitoring run (Section 6.2).
type GeomRow struct {
	Dataset    string
	Sites      int
	Threshold  float64
	Updates    int
	Syncs      int
	Crossings  int
	BytesSent  int
	NaiveBytes int
	Savings    float64 // naive / geometric transfer ratio
}

// RunGeometric monitors a self-join threshold over the dataset distributed
// across a few sites, reporting the communication the geometric method
// spends against the ship-every-update naive baseline.
func RunGeometric(ds Dataset, sites int, thresholdFactor float64, maxEvents int) (GeomRow, error) {
	if sites <= 0 {
		sites = 4
	}
	if maxEvents <= 0 || maxEvents > len(ds.Events) {
		maxEvents = len(ds.Events)
	}
	// Calibrate the threshold: thresholdFactor × the final self-join of the
	// per-site average stream (≈ crossing mid-run as mass accumulates).
	oracleSJ := ds.Oracle.SelfJoin(ds.Window)
	threshold := thresholdFactor * oracleSJ / float64(sites*sites)
	cfg := geom.Config{
		Sketch: core.Params{
			Epsilon:      0.2,
			Delta:        0.2,
			Query:        core.InnerProductQuery,
			WindowLength: ds.Window,
			UpperBound:   ds.UpperBound,
			Seed:         55,
		},
		Function:   geom.SelfJoinFn{},
		Threshold:  threshold,
		CheckEvery: 16,
	}
	m, err := geom.NewMonitor(cfg, sites)
	if err != nil {
		return GeomRow{}, err
	}
	for i := 0; i < maxEvents; i++ {
		ev := ds.Events[i]
		if _, err := m.Update(ev.Site%sites, ev.Key, ev.Time); err != nil {
			return GeomRow{}, err
		}
	}
	st := m.Stats()
	naive := m.NaiveSyncBytes()
	row := GeomRow{
		Dataset:    ds.Name,
		Sites:      sites,
		Threshold:  threshold,
		Updates:    st.Updates,
		Syncs:      st.Syncs,
		Crossings:  st.Crossings,
		BytesSent:  st.BytesSent,
		NaiveBytes: naive,
	}
	if st.BytesSent > 0 {
		row.Savings = float64(naive) / float64(st.BytesSent)
	}
	return row, nil
}

// AblationSplitRow compares the paper's memory-optimal ε split against the
// naive split on the same workload (DESIGN.md §4).
type AblationSplitRow struct {
	Dataset string
	Eps     float64
	Split   string
	Memory  int
	AvgErr  float64
}

// RunAblationSplit quantifies what the inner-product-optimal split buys over
// the point-optimal split when answering self-join queries.
func RunAblationSplit(ds Dataset, eps float64) ([]AblationSplitRow, error) {
	var rows []AblationSplitRow
	for _, spec := range []struct {
		name  string
		split core.Split
	}{
		{"optimal-ip", core.SplitInnerProduct(eps)},
		{"point-split", core.SplitPoint(eps)},
	} {
		sp := spec.split
		s, err := core.New(core.Params{
			Delta:        0.1,
			WindowLength: ds.Window,
			UpperBound:   ds.UpperBound,
			Seed:         1234,
			Split:        &sp,
			Epsilon:      eps,
		})
		if err != nil {
			return nil, err
		}
		ingest(s, ds)
		avg, _, _ := evalSelfJoinQueries(s, ds)
		rows = append(rows, AblationSplitRow{
			Dataset: ds.Name, Eps: eps, Split: spec.name,
			Memory: s.MemoryBytes(), AvgErr: avg,
		})
	}
	return rows, nil
}

// SubsetEvents returns a dataset restricted to its first n events, with the
// oracle rebuilt to match. Used by benchmarks to bound runtime.
func SubsetEvents(ds Dataset, n int) Dataset {
	if n >= len(ds.Events) {
		return ds
	}
	out := ds
	out.Events = ds.Events[:n]
	out.Oracle = workload.NewOracle(ds.Window)
	for _, ev := range out.Events {
		out.Oracle.AddEvent(ev)
	}
	return out
}

// CheckShape verifies a comparative claim of the paper's evaluation and
// returns a formatted verdict line; used by ecmbench to print the
// "who wins" summary of EXPERIMENTS.md.
func CheckShape(name string, ok bool) string {
	verdict := "HOLDS"
	if !ok {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("  [%s] %s", verdict, name)
}

// AlgoLabel renders the paper's variant names (ECM-EH, ECM-DW, ECM-RW).
func AlgoLabel(a window.Algorithm) string { return "ECM-" + a.String() }
