package experiments

import (
	"fmt"
	"io"

	"ecmsketch/internal/core"
	"ecmsketch/internal/geom"
	"ecmsketch/internal/window"
)

// GeomScaleRow is one point of the geometric-monitoring scaling study: the
// communication spent by the protocol at a given site count, with and
// without the balancing optimization.
type GeomScaleRow struct {
	Dataset   string
	Sites     int
	Balancing bool
	Syncs     int
	Balances  int
	BytesSent int
	Naive     int
	Savings   float64
}

// RunGeometricScaling monitors the dataset's self-join across growing site
// counts, quantifying how the geometric method's communication scales and
// what balancing buys as the deployment grows (the regime Sharfman et al.
// designed it for: one site's burst cancels against its peers).
func RunGeometricScaling(ds Dataset, siteCounts []int, balancing []bool, maxEvents int) ([]GeomScaleRow, error) {
	if maxEvents <= 0 || maxEvents > len(ds.Events) {
		maxEvents = len(ds.Events)
	}
	var rows []GeomScaleRow
	for _, n := range siteCounts {
		for _, bal := range balancing {
			// Threshold at the per-site average scale, just above the
			// stream's operating point so violations occur but crossings
			// are rare.
			oracleSJ := ds.Oracle.SelfJoin(ds.Window)
			threshold := 1.5 * oracleSJ / float64(n*n)
			cfg := geom.Config{
				Sketch: core.Params{
					Epsilon:      0.2,
					Delta:        0.2,
					Query:        core.InnerProductQuery,
					WindowLength: ds.Window,
					UpperBound:   ds.UpperBound,
					Seed:         55,
				},
				Function:   geom.SelfJoinFn{},
				Threshold:  threshold,
				CheckEvery: 16,
				Balancing:  bal,
			}
			m, err := geom.NewMonitor(cfg, n)
			if err != nil {
				return nil, err
			}
			for i := 0; i < maxEvents; i++ {
				ev := ds.Events[i]
				if _, err := m.Update(ev.Site%n, ev.Key, ev.Time); err != nil {
					return nil, err
				}
			}
			st := m.Stats()
			naive := m.NaiveSyncBytes()
			row := GeomScaleRow{
				Dataset:   ds.Name,
				Sites:     n,
				Balancing: bal,
				Syncs:     st.Syncs,
				Balances:  st.BalanceSuccesses,
				BytesSent: st.BytesSent,
				Naive:     naive,
			}
			if st.BytesSent > 0 {
				row.Savings = float64(naive) / float64(st.BytesSent)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintGeomScaling renders the scaling rows.
func PrintGeomScaling(w io.Writer, rows []GeomScaleRow) {
	fmt.Fprintf(w, "%-6s %6s %10s %6s %9s %12s %12s %9s\n",
		"data", "sites", "balancing", "syncs", "balances", "sent(B)", "naive(B)", "savings")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %6d %10v %6d %9d %12d %12d %8.1fx\n",
			r.Dataset, r.Sites, r.Balancing, r.Syncs, r.Balances, r.BytesSent, r.Naive, r.Savings)
	}
}

// PlanRow compares hierarchical aggregation with and without per-level ε
// planning (Section 5.1 multi-level analysis): planned sketches start
// tighter so the root meets the user's target after h merge levels.
type PlanRow struct {
	Dataset  string
	Strategy string // "planned" or "naive"
	LevelEps float64
	RootErr  float64
	Bound    float64
	Memory   int
}

// RunPlanAblation aggregates the dataset over its native tree twice: once
// with sites configured at the target ε (naive — the root may exceed the
// target in the worst case) and once with sites configured at
// PlanLevelEpsilon(target, h) (planned — the root provably meets it).
func RunPlanAblation(ds Dataset, target float64, maxKeys int) ([]PlanRow, error) {
	h := treeHeightFor(ds.Sites)
	var rows []PlanRow
	for _, spec := range []struct {
		name string
		eps  float64
	}{
		{"naive", target},
		{"planned", window.PlanLevelEpsilon(target, h)},
	} {
		row, err := runDistributedOnce(ds, window.AlgoEH, spec.eps, 0.1, ds.Sites, core.PointQuery, maxKeys)
		if err != nil {
			return nil, err
		}
		split := core.SplitPoint(spec.eps)
		rows = append(rows, PlanRow{
			Dataset:  ds.Name,
			Strategy: spec.name,
			LevelEps: spec.eps,
			RootErr:  row.AvgErr,
			Bound:    core.HierarchicalPointErrorBound(split, h),
			Memory:   int(row.Transfer), // transfer tracks sketch size at this ε
		})
	}
	return rows, nil
}

func treeHeightFor(n int) int {
	h := 0
	for size := 1; size < n; size <<= 1 {
		h++
	}
	return h
}

// PrintPlanAblation renders the planning ablation rows.
func PrintPlanAblation(w io.Writer, rows []PlanRow) {
	fmt.Fprintf(w, "%-6s %-8s %10s %10s %10s %12s\n",
		"data", "strategy", "level-eps", "root-err", "bound", "transfer(B)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-8s %10.4f %10.5f %10.5f %12d\n",
			r.Dataset, r.Strategy, r.LevelEps, r.RootErr, r.Bound, r.Memory)
	}
}
