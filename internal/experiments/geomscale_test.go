package experiments

import (
	"strings"
	"testing"
)

func TestRunGeometricScaling(t *testing.T) {
	ds := SubsetEvents(smallWC(t), 10000)
	rows, err := RunGeometricScaling(ds, []int{2, 4}, []bool{false, true}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byKey := map[string]GeomScaleRow{}
	for _, r := range rows {
		if r.Syncs == 0 {
			t.Errorf("%+v: no syncs at all", r)
		}
		if r.Savings < 1 {
			t.Errorf("%+v: geometric method worse than naive", r)
		}
		key := "plain"
		if r.Balancing {
			key = "bal"
		}
		byKey[key+itoa(r.Sites)] = r
	}
	// Balancing must not increase global syncs.
	for _, n := range []string{"2", "4"} {
		if byKey["bal"+n].Syncs > byKey["plain"+n].Syncs {
			t.Errorf("sites=%s: balancing increased syncs %d > %d",
				n, byKey["bal"+n].Syncs, byKey["plain"+n].Syncs)
		}
	}
	var sb strings.Builder
	PrintGeomScaling(&sb, rows)
	if !strings.Contains(sb.String(), "balancing") {
		t.Error("printer output malformed")
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestRunPlanAblation(t *testing.T) {
	ds := SubsetEvents(smallWC(t), 15000)
	rows, err := RunPlanAblation(ds, 0.15, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var naive, planned PlanRow
	for _, r := range rows {
		switch r.Strategy {
		case "naive":
			naive = r
		case "planned":
			planned = r
		}
	}
	// Planning tightens the per-level ε below the target.
	if planned.LevelEps >= naive.LevelEps {
		t.Errorf("planned level ε %v not below target %v", planned.LevelEps, naive.LevelEps)
	}
	// The planned bound must meet the target; the naive bound exceeds it.
	if planned.Bound > 0.15+1e-9 {
		t.Errorf("planned bound %v exceeds target", planned.Bound)
	}
	if naive.Bound <= 0.15 {
		t.Errorf("naive bound %v unexpectedly within target", naive.Bound)
	}
	// Observed root errors respect the planned bound.
	if planned.RootErr > 0.15 {
		t.Errorf("planned root error %v exceeds target", planned.RootErr)
	}
	// Tighter sketches cost more transfer.
	if planned.Memory <= naive.Memory {
		t.Errorf("planned transfer %d not above naive %d", planned.Memory, naive.Memory)
	}
	var sb strings.Builder
	PrintPlanAblation(&sb, rows)
	if !strings.Contains(sb.String(), "planned") {
		t.Error("printer output malformed")
	}
}

func TestTreeHeightFor(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 1, 33: 6, 535: 10} {
		if got := treeHeightFor(n); got != want {
			t.Errorf("treeHeightFor(%d) = %d, want %d", n, got, want)
		}
	}
}
