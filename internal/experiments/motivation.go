package experiments

import (
	"math"
	"sort"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
)

// MotivationRow quantifies the paper's premise (Section 1): a conventional
// full-history Count-Min sketch cannot answer sliding-window queries — stale
// arrivals never expire, so its estimates carry the entire expired mass of
// each item — while the ECM-sketch tracks the window.
type MotivationRow struct {
	Summary string  // "full-history CM" or "ECM-EH"
	Memory  int     // bytes
	AvgErr  float64 // mean relative error vs windowed truth, over all items
	MaxErr  float64
	// StaleLeak is the diagnostic: over the items with the most expired
	// mass, the fraction of that expired mass still visible in the
	// estimate: (estimate − windowed truth) / expired. A full-history
	// summary leaks ≈1.0; a windowed summary leaks ≈0.
	StaleLeak float64
}

// RunMotivation ingests the dataset into both summaries and evaluates
// whole-window point queries against the exact windowed oracle.
func RunMotivation(ds Dataset, eps, delta float64, maxKeys int) ([]MotivationRow, error) {
	plain, err := cm.New(cm.Params{Epsilon: eps, Delta: delta, Seed: 1234})
	if err != nil {
		return nil, err
	}
	ecm, err := newSketch(ds, window.AlgoEH, eps, delta, core.PointQuery)
	if err != nil {
		return nil, err
	}
	fullFreq := map[uint64]float64{}
	var now Tick
	for _, ev := range ds.Events {
		plain.Add(ev.Key, 1)
		ecm.Add(ev.Key, ev.Time)
		fullFreq[ev.Key]++
		now = ev.Time
	}
	ecm.Advance(now)

	keys := ds.Oracle.Keys()
	step := 1
	if maxKeys > 0 && len(keys) > maxKeys {
		step = len(keys) / maxKeys
	}
	l1 := float64(ds.Oracle.Total(ds.Window))

	// Items ranked by expired mass (full-history count minus windowed
	// count): where the two summaries must differ the most.
	type staleKey struct {
		key     uint64
		expired float64
	}
	var stale []staleKey
	for k, full := range fullFreq {
		exp := full - float64(ds.Oracle.Freq(k, ds.Window))
		if exp > 0 {
			stale = append(stale, staleKey{k, exp})
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].expired > stale[j].expired })
	if len(stale) > 10 {
		stale = stale[:10]
	}

	eval := func(est func(uint64) float64) MotivationRow {
		var row MotivationRow
		var sumErr float64
		n := 0
		for i := 0; i < len(keys); i += step {
			k := keys[i]
			want := float64(ds.Oracle.Freq(k, ds.Window))
			e := math.Abs(est(k)-want) / l1
			sumErr += e
			if e > row.MaxErr {
				row.MaxErr = e
			}
			n++
		}
		row.AvgErr = sumErr / float64(n)
		// Aggregate leak over the top stale items: total excess estimate
		// mass divided by total expired mass, so heavy items dominate and
		// per-item collision noise cancels out.
		var excess, expired float64
		for _, sk := range stale {
			want := float64(ds.Oracle.Freq(sk.key, ds.Window))
			excess += est(sk.key) - want
			expired += sk.expired
		}
		if expired > 0 {
			row.StaleLeak = excess / expired
		}
		return row
	}

	cmRow := eval(func(k uint64) float64 { return float64(plain.Estimate(k)) })
	cmRow.Summary = "full-history CM"
	cmRow.Memory = plain.MemoryBytes()
	ecmRow := eval(func(k uint64) float64 { return ecm.Estimate(k, ds.Window) })
	ecmRow.Summary = "ECM-EH"
	ecmRow.Memory = ecm.MemoryBytes()
	return []MotivationRow{cmRow, ecmRow}, nil
}
