package experiments

import (
	"fmt"
	"io"
)

// Human-readable renderers producing the same rows/series the paper
// reports; consumed by cmd/ecmbench and pasted into EXPERIMENTS.md.

// PrintCentralized renders Figure 4 rows.
func PrintCentralized(w io.Writer, rows []CentralizedRow) {
	fmt.Fprintf(w, "%-6s %-7s %-5s %-13s %12s %10s %10s %8s\n",
		"data", "variant", "eps", "query", "memory(B)", "avg-err", "max-err", "queries")
	for _, r := range rows {
		if r.Skipped {
			fmt.Fprintf(w, "%-6s %-7s %-5.2f %-13s %12s  (skipped: %s)\n",
				r.Dataset, AlgoLabel(r.Algo), r.Eps, r.Query, "N/A", r.Reason)
			continue
		}
		fmt.Fprintf(w, "%-6s %-7s %-5.2f %-13s %12d %10.5f %10.5f %8d\n",
			r.Dataset, AlgoLabel(r.Algo), r.Eps, r.Query, r.Memory, r.AvgErr, r.MaxErr, r.Queries)
	}
}

// PrintUpdateRates renders Table 3 rows.
func PrintUpdateRates(w io.Writer, rows []UpdateRateRow) {
	fmt.Fprintf(w, "%-6s %-7s %-5s %15s %10s\n", "data", "variant", "eps", "updates/sec", "events")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-7s %-5.2f %15.0f %10d\n",
			r.Dataset, AlgoLabel(r.Algo), r.Eps, r.UpdatesPerSec, r.Events)
	}
}

// PrintDistributed renders Figure 5 rows.
func PrintDistributed(w io.Writer, rows []DistributedRow) {
	fmt.Fprintf(w, "%-6s %-7s %-5s %-13s %6s %14s %10s %10s\n",
		"data", "variant", "eps", "query", "sites", "transfer(B)", "avg-err", "max-err")
	for _, r := range rows {
		if r.Skipped {
			fmt.Fprintf(w, "%-6s %-7s %-5.2f %-13s %6d  (skipped: %s)\n",
				r.Dataset, AlgoLabel(r.Algo), r.Eps, r.Query, r.Sites, r.Reason)
			continue
		}
		fmt.Fprintf(w, "%-6s %-7s %-5.2f %-13s %6d %14d %10.5f %10.5f\n",
			r.Dataset, AlgoLabel(r.Algo), r.Eps, r.Query, r.Sites, r.Transfer, r.AvgErr, r.MaxErr)
	}
}

// PrintRatios renders Table 4 rows.
func PrintRatios(w io.Writer, rows []RatioRow) {
	fmt.Fprintf(w, "%-6s %-7s %-5s %-13s %12s %12s %8s\n",
		"data", "variant", "eps", "query", "centralized", "distributed", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-7s %-5.2f %-13s %12.5f %12.5f %8.3f\n",
			r.Dataset, AlgoLabel(r.Algo), r.Eps, r.Query, r.Centralized, r.Distributed, r.Ratio)
	}
}

// PrintScaling renders Figure 6 rows.
func PrintScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "%-6s %-7s %-13s %6s %10s %14s\n",
		"data", "variant", "query", "nodes", "avg-err", "transfer(B)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-7s %-13s %6d %10.5f %14d\n",
			r.Dataset, AlgoLabel(r.Algo), r.Query, r.Nodes, r.AvgErr, r.Transfer)
	}
}

// PrintComplexity renders the empirical Table 2 check.
func PrintComplexity(w io.Writer, rows []ComplexityRow) {
	fmt.Fprintf(w, "%-7s %-5s %12s %12s %12s\n", "variant", "eps", "memory(B)", "ns/update", "ns/query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %-5.2f %12d %12.1f %12.1f\n",
			r.Algo, r.Eps, r.MemoryBytes, r.NsPerUpdate, r.NsPerQuery)
	}
}

// PrintHeavyHitters renders the Section 6.1 validation rows.
func PrintHeavyHitters(w io.Writer, rows []HeavyHitterRow) {
	fmt.Fprintf(w, "%-6s %-7s %9s %9s %8s %10s %12s\n",
		"data", "phi", "reported", "true", "recall", "precision", "memory(B)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-7.4f %9d %9d %8.3f %10.3f %12d\n",
			r.Dataset, r.Phi, r.Reported, r.TrueCount, r.Recall, r.Precision, r.Memory)
	}
}

// PrintGeom renders the Section 6.2 monitoring summary.
func PrintGeom(w io.Writer, r GeomRow) {
	fmt.Fprintf(w, "dataset=%s sites=%d threshold=%.0f\n", r.Dataset, r.Sites, r.Threshold)
	fmt.Fprintf(w, "updates=%d syncs=%d crossings=%d\n", r.Updates, r.Syncs, r.Crossings)
	fmt.Fprintf(w, "geometric transfer=%dB naive transfer=%dB savings=%.1fx\n",
		r.BytesSent, r.NaiveBytes, r.Savings)
}

// PrintAblationSplit renders the ε-split ablation rows.
func PrintAblationSplit(w io.Writer, rows []AblationSplitRow) {
	fmt.Fprintf(w, "%-6s %-5s %-12s %12s %10s\n", "data", "eps", "split", "memory(B)", "avg-err")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-5.2f %-12s %12d %10.5f\n", r.Dataset, r.Eps, r.Split, r.Memory, r.AvgErr)
	}
}

// PrintMotivation renders the full-history-vs-windowed comparison.
func PrintMotivation(w io.Writer, rows []MotivationRow) {
	fmt.Fprintf(w, "%-16s %12s %10s %10s %12s\n", "summary", "memory(B)", "avg-err", "max-err", "stale-leak")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12d %10.5f %10.5f %12.2f\n", r.Summary, r.Memory, r.AvgErr, r.MaxErr, r.StaleLeak)
	}
}
