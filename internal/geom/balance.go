package geom

import "ecmsketch/internal/cm"

// Balancing (Sharfman et al., Section 5 of the geometric-method paper) is
// the standard optimization layered on the basic protocol: when one site's
// sphere test fails, the coordinator first tries to pair the violating site
// with a few peers and average their drift vectors. If the sphere built
// from the *balanced* vector is single-sided, the involved sites absorb
// slack vectors that move their drifts to the common average, and the
// violation is resolved with O(|group|) messages instead of a full
// synchronization of every site.
//
// Correctness: the global statistics vector is the average of all drift
// vectors; replacing a subset of drifts by their mean preserves that
// average, so the convex-hull/sphere-cover argument of the method is
// unaffected. Slack vectors always sum to zero across sites.

// balance attempts to resolve a violation at site v without a global sync.
// It returns true on success. Communication is charged per vector moved:
// each enlisted peer ships its drift to the coordinator and receives a
// slack update back.
func (m *Monitor) balance(v *Site, t Tick) bool {
	if !m.cfg.Balancing || len(m.sites) < 2 {
		return false
	}
	m.stats.BalanceAttempts++
	group := []*Site{v}
	sum := m.drift(v)
	vecBytes := len(sum.Marshal())
	// The violator's drift travels to the coordinator.
	m.stats.MessagesSent++
	m.stats.BytesSent += vecBytes
	for _, peer := range m.sites {
		if peer == v {
			continue
		}
		// Enlist the peer: its drift travels to the coordinator.
		group = append(group, peer)
		sum.AddScaled(m.drift(peer), 1)
		m.stats.MessagesSent++
		m.stats.BytesSent += vecBytes
		b := sum.Clone().Scale(1 / float64(len(group)))
		if m.sphereSafe(b) {
			m.applyBalance(group, b, vecBytes)
			m.stats.BalanceSuccesses++
			return true
		}
	}
	return false // every site enlisted and still unsafe: full sync needed
}

// drift computes a site's current drift vector u_i = e + Δv_i + slack_i.
func (m *Monitor) drift(s *Site) *cm.Vector {
	cur := s.sketch.ExtractVector(m.cfg.QueryRange)
	u := cur.Clone().Sub(s.lastSync).AddScaled(m.estimate, 1)
	if s.slack != nil {
		u.AddScaled(s.slack, 1)
	}
	return u
}

// sphereSafe tests whether the sphere with diameter [e, u] keeps the
// function on the currently recorded side of the threshold.
func (m *Monitor) sphereSafe(u *cm.Vector) bool {
	center := m.estimate.Clone().AddScaled(u, 1).Scale(0.5)
	radius := m.estimate.Dist(u) / 2
	lo, hi := m.cfg.Function.BoundsOnBall(center, radius)
	if m.stats.ThresholdAbove {
		return lo > m.cfg.Threshold
	}
	return hi <= m.cfg.Threshold
}

// applyBalance assigns each group member the slack that moves its drift to
// the balanced vector b. Slacks remain zero-sum: Σ_j (b − u_j) = |G|·b −
// Σ u_j = 0 by construction of b.
func (m *Monitor) applyBalance(group []*Site, b *cm.Vector, vecBytes int) {
	for _, s := range group {
		u := m.drift(s)
		delta := b.Clone().Sub(u)
		if s.slack == nil {
			s.slack = delta
		} else {
			s.slack.AddScaled(delta, 1)
		}
		// The coordinator ships the slack update back to the site.
		m.stats.MessagesSent++
		m.stats.BytesSent += vecBytes
	}
}

// clearSlacks resets all slack vectors; called on every global
// synchronization, which re-baselines the drifts.
func (m *Monitor) clearSlacks() {
	for _, s := range m.sites {
		s.slack = nil
	}
}
