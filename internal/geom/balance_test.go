package geom

import (
	"math/rand"
	"testing"
)

// runMonitored drives an identical stream through a monitor and returns its
// final stats. Opposite-drift traffic: sites take turns being hot, so their
// drifts naturally cancel — the regime balancing is designed for.
func runMonitored(t *testing.T, balancing bool, seed int64) Stats {
	t.Helper()
	// The monitored function applies to the AVERAGE of the site vectors, so
	// the threshold lives at the per-site scale: the stream's operating
	// point is ≈2–4e3 here.
	cfg := Config{
		Sketch:     testSketchParams(),
		Function:   SelfJoinFn{},
		Threshold:  2000,
		CheckEvery: 4,
		Balancing:  balancing,
	}
	m, err := NewMonitor(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var now Tick
	for i := 0; i < 6000; i++ {
		now++
		// Alternating site-local bursts with a shared background.
		site := (i / 50) % 4
		key := uint64(rng.Intn(60))
		if rng.Intn(3) == 0 {
			key = uint64(100 + site) // per-site hot key
		}
		if _, err := m.Update(site, key, now); err != nil {
			t.Fatal(err)
		}
	}
	return m.Stats()
}

func TestBalancingReducesSyncs(t *testing.T) {
	plain := runMonitored(t, false, 11)
	balanced := runMonitored(t, true, 11)
	if balanced.BalanceAttempts == 0 {
		t.Fatal("balancing never attempted; stream did not trigger violations")
	}
	if balanced.BalanceSuccesses == 0 {
		t.Error("balancing never succeeded")
	}
	// The optimization's purpose: most violations resolve without a global
	// sync. (Bytes can tie at tiny site counts — a balance round among 4
	// sites costs about as much as a sync of 4 sites; the savings scale
	// with the site count.)
	if balanced.Syncs*2 > plain.Syncs {
		t.Errorf("balancing did not reduce syncs meaningfully: %d vs %d", balanced.Syncs, plain.Syncs)
	}
	t.Logf("plain: syncs=%d bytes=%d | balanced: syncs=%d bytes=%d attempts=%d successes=%d",
		plain.Syncs, plain.BytesSent, balanced.Syncs, balanced.BytesSent,
		balanced.BalanceAttempts, balanced.BalanceSuccesses)
}

func TestBalancingPreservesCorrectness(t *testing.T) {
	// The protocol invariant must survive balancing: the recorded threshold
	// side always matches the true global value.
	cfg := Config{
		Sketch:    testSketchParams(),
		Function:  SelfJoinFn{},
		Threshold: 1500,
		Balancing: true,
	}
	m, err := NewMonitor(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	var now Tick
	for i := 0; i < 1500; i++ {
		now++
		key := uint64(rng.Intn(150))
		if i > 700 && rng.Intn(3) == 0 {
			key = 9
		}
		if _, err := m.Update(rng.Intn(3), key, now); err != nil {
			t.Fatal(err)
		}
		gv := m.GlobalValue(now)
		if (gv > cfg.Threshold) != m.Stats().ThresholdAbove {
			t.Fatalf("step %d: global f=%v but monitor believes above=%v (balancing broke soundness)",
				i, gv, m.Stats().ThresholdAbove)
		}
	}
	if m.Stats().BalanceAttempts == 0 {
		t.Log("note: no balance attempts in this run")
	}
}

func TestBalancingDisabledByDefault(t *testing.T) {
	st := runMonitored(t, false, 3)
	if st.BalanceAttempts != 0 || st.BalanceSuccesses != 0 {
		t.Errorf("balancing ran while disabled: %+v", st)
	}
}

func TestBalanceSingleSiteFallsThrough(t *testing.T) {
	cfg := Config{
		Sketch:    testSketchParams(),
		Function:  SelfJoinFn{},
		Threshold: 100,
		Balancing: true,
	}
	m, err := NewMonitor(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var now Tick
	for i := 0; i < 200; i++ {
		now++
		if _, err := m.Update(0, 1, now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.BalanceSuccesses != 0 {
		t.Error("single-site deployment cannot balance")
	}
	if !st.ThresholdAbove {
		t.Error("crossing missed")
	}
}
