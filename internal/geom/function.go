// Package geom implements the geometric method of Sharfman et al. for
// continuous monitoring of threshold crossings of non-linear functions over
// the average of distributed local statistics vectors — here, vectors
// extracted from ECM-sketches, which is how Section 6.2 extends the method
// to sliding-window streams.
//
// Each site tracks a drift vector u_i = e + Δv_i, where e is the global
// estimate vector agreed at the last synchronization and Δv_i the site's
// local change since then. The global statistics vector (the average of the
// local vectors) is guaranteed to lie in the convex hull of the drift
// vectors, and that hull is covered by the union of the spheres B(κ_i, α_i)
// with κ_i = (e+u_i)/2 and α_i = ‖e−u_i‖/2. As long as the monitored
// function stays on one side of the threshold over every sphere, no global
// threshold crossing can have occurred and no communication is needed.
package geom

import (
	"fmt"
	"math"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/hashing"
)

// Function is a monitored function over extracted sketch vectors, together
// with the closed-form extrema over a ball that the geometric method needs.
type Function interface {
	// Value evaluates the function at a vector.
	Value(v *cm.Vector) float64
	// BoundsOnBall returns lower and upper bounds of the function over the
	// closed ball of the given radius centered at center. Bounds need not be
	// tight, but must be sound: lo ≤ f(x) ≤ hi for every x in the ball.
	BoundsOnBall(center *cm.Vector, radius float64) (lo, hi float64)
	// Name identifies the function in logs and reports.
	Name() string
}

// SelfJoinFn monitors the self-join (second frequency moment F₂) estimate of
// the global sketch: f(v) = min_j Σ_i v[j,i]², the row-minimum of squared
// row norms.
//
// Its extrema over a ball admit the closed form the paper alludes to: within
// radius α of the center, each row's norm varies by at most α, so the row's
// squared norm lies in [max(0,‖κ_j‖−α)², (‖κ_j‖+α)²]. The row-minimum of the
// per-row lower bounds lower-bounds f, and the row-minimum of the upper
// bounds upper-bounds it (min_x min_j g_j(x) = min_j min_x g_j(x), and
// max_x min_j g_j(x) ≤ min_j max_x g_j(x)).
type SelfJoinFn struct{}

// Value evaluates the self-join estimate.
func (SelfJoinFn) Value(v *cm.Vector) float64 { return v.SelfJoin() }

// BoundsOnBall returns the self-join extrema over a ball.
func (SelfJoinFn) BoundsOnBall(center *cm.Vector, radius float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(1)
	for j := 0; j < center.D; j++ {
		var norm2 float64
		for i := 0; i < center.W; i++ {
			c := center.Cells[j*center.W+i]
			norm2 += c * c
		}
		norm := math.Sqrt(norm2)
		rlo := norm - radius
		if rlo < 0 {
			rlo = 0
		}
		rhi := norm + radius
		if v := rlo * rlo; v < lo {
			lo = v
		}
		if v := rhi * rhi; v < hi {
			hi = v
		}
	}
	return lo, hi
}

// Name identifies the function.
func (SelfJoinFn) Name() string { return "self-join" }

// PointFn monitors the frequency estimate of one item: f(v) = min_j
// v[j, h_j(key)]. Within a ball of radius α each coordinate varies by at
// most α, so the estimate varies within [f(κ) − α, f(κ) + α]. No clamping is
// applied: drift vectors are differences and may carry negative cells.
type PointFn struct {
	fam *hashing.Family
	key uint64
}

// NewPointFn builds a point-query monitor for the item key over sketches
// whose Count-Min rows hash with fam.
func NewPointFn(fam *hashing.Family, key uint64) *PointFn {
	return &PointFn{fam: fam, key: key}
}

// Value evaluates the point estimate at a vector.
func (p *PointFn) Value(v *cm.Vector) float64 {
	est := math.Inf(1)
	for j := 0; j < v.D; j++ {
		if c := v.Cells[j*v.W+p.fam.Hash(j, p.key)]; c < est {
			est = c
		}
	}
	return est
}

// BoundsOnBall returns the point-estimate extrema over a ball.
func (p *PointFn) BoundsOnBall(center *cm.Vector, radius float64) (lo, hi float64) {
	v := p.Value(center)
	return v - radius, v + radius
}

// Name identifies the function.
func (p *PointFn) Name() string { return fmt.Sprintf("point(%d)", p.key) }

// L2Fn monitors the Euclidean norm of the global vector; useful as a simple
// sanity function in tests since its ball extrema are exact.
type L2Fn struct{}

// Value evaluates the norm.
func (L2Fn) Value(v *cm.Vector) float64 { return v.Norm() }

// BoundsOnBall returns the exact norm extrema over a ball.
func (L2Fn) BoundsOnBall(center *cm.Vector, radius float64) (lo, hi float64) {
	n := center.Norm()
	lo = n - radius
	if lo < 0 {
		lo = 0
	}
	return lo, n + radius
}

// Name identifies the function.
func (L2Fn) Name() string { return "l2-norm" }
