package geom

import (
	"math"
	"math/rand"
	"testing"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/core"
	"ecmsketch/internal/hashing"
)

func testSketchParams() core.Params {
	return core.Params{
		Epsilon:      0.2,
		Delta:        0.2,
		WindowLength: 1000,
		Seed:         21,
	}
}

func TestSelfJoinFnBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fn := SelfJoinFn{}
	for trial := 0; trial < 200; trial++ {
		center := cm.NewVector(3, 8)
		for i := range center.Cells {
			center.Cells[i] = rng.Float64() * 10
		}
		radius := rng.Float64() * 5
		lo, hi := fn.BoundsOnBall(center, radius)
		// Sample points in the ball; all values must respect the bounds.
		for probe := 0; probe < 30; probe++ {
			p := center.Clone()
			var norm2 float64
			dir := make([]float64, len(p.Cells))
			for i := range dir {
				dir[i] = rng.NormFloat64()
				norm2 += dir[i] * dir[i]
			}
			scale := rng.Float64() * radius / math.Sqrt(norm2)
			for i := range p.Cells {
				p.Cells[i] += dir[i] * scale
			}
			v := fn.Value(p)
			if v < lo-1e-6 || v > hi+1e-6 {
				t.Fatalf("self-join %v outside bounds [%v,%v] (radius %v)", v, lo, hi, radius)
			}
		}
		if v := fn.Value(center); v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("center value %v outside its own bounds [%v,%v]", v, lo, hi)
		}
	}
}

func TestPointFnBoundsSound(t *testing.T) {
	fam, err := hashing.NewFamily(5, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	fn := NewPointFn(fam, 42)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		center := cm.NewVector(3, 16)
		for i := range center.Cells {
			center.Cells[i] = rng.Float64() * 20
		}
		radius := rng.Float64() * 3
		lo, hi := fn.BoundsOnBall(center, radius)
		for probe := 0; probe < 20; probe++ {
			p := center.Clone()
			for i := range p.Cells {
				p.Cells[i] += (rng.Float64()*2 - 1) * radius / math.Sqrt(float64(len(p.Cells)))
			}
			v := fn.Value(p)
			if v < lo-1e-6 || v > hi+1e-6 {
				t.Fatalf("point estimate %v outside [%v,%v]", v, lo, hi)
			}
		}
	}
}

func TestL2FnBoundsExact(t *testing.T) {
	v := cm.NewVector(1, 3)
	copy(v.Cells, []float64{3, 4, 0})
	lo, hi := L2Fn{}.BoundsOnBall(v, 2)
	if lo != 3 || hi != 7 {
		t.Errorf("L2 bounds = [%v,%v], want [3,7]", lo, hi)
	}
	lo, _ = L2Fn{}.BoundsOnBall(v, 10)
	if lo != 0 {
		t.Errorf("L2 lower bound = %v, want clamped 0", lo)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(Config{Function: SelfJoinFn{}, Sketch: testSketchParams()}, 0); err == nil {
		t.Error("0 sites accepted")
	}
	if _, err := NewMonitor(Config{Sketch: testSketchParams()}, 2); err == nil {
		t.Error("nil function accepted")
	}
	bad := testSketchParams()
	bad.Epsilon = 0
	if _, err := NewMonitor(Config{Function: SelfJoinFn{}, Sketch: bad}, 2); err == nil {
		t.Error("invalid sketch params accepted")
	}
}

func TestMonitorDetectsCrossing(t *testing.T) {
	cfg := Config{
		Sketch:    testSketchParams(),
		Function:  SelfJoinFn{},
		Threshold: 2000,
	}
	m, err := NewMonitor(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a uniform trickle (low F₂), then hammer a single key so the
	// global self-join explodes past the threshold.
	var now Tick
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		now++
		if _, err := m.Update(rng.Intn(4), uint64(rng.Intn(200)), now); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().ThresholdAbove {
		t.Fatalf("monitor already above threshold after uniform phase: f=%v", m.Stats().FunctionValue)
	}
	for i := 0; i < 600; i++ {
		now++
		if _, err := m.Update(rng.Intn(4), 7, now); err != nil { // one hot key
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if !st.ThresholdAbove {
		t.Errorf("monitor missed the threshold crossing: f=%v, threshold=%v", st.FunctionValue, cfg.Threshold)
	}
	if st.Crossings == 0 {
		t.Error("no crossing recorded")
	}
	if st.Syncs == 0 || st.BytesSent == 0 {
		t.Error("no synchronization accounting recorded")
	}
}

func TestMonitorSavesCommunication(t *testing.T) {
	cfg := Config{
		Sketch:     testSketchParams(),
		Function:   SelfJoinFn{},
		Threshold:  1e12, // far away: stable stream should rarely sync
		CheckEvery: 1,
	}
	m, err := NewMonitor(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var now Tick
	for i := 0; i < 2000; i++ {
		now++
		if _, err := m.Update(rng.Intn(4), uint64(rng.Intn(100)), now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Syncs > 3 {
		t.Errorf("stable stream far from threshold caused %d syncs, want ≤3", st.Syncs)
	}
	if naive := m.NaiveSyncBytes(); st.BytesSent >= naive/10 {
		t.Errorf("geometric method sent %d bytes, naive %d; want ≥10× savings", st.BytesSent, naive)
	}
}

func TestMonitorNoFalseNegatives(t *testing.T) {
	// Soundness of the protocol: whenever all sites pass their sphere test,
	// the true global function value is on the recorded side of the
	// threshold. We verify by evaluating the global value out of band at
	// every step.
	cfg := Config{
		Sketch:    testSketchParams(),
		Function:  SelfJoinFn{},
		Threshold: 1500,
	}
	m, err := NewMonitor(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var now Tick
	for i := 0; i < 1500; i++ {
		now++
		key := uint64(rng.Intn(150))
		if i > 700 && rng.Intn(3) == 0 {
			key = 9 // growing hot key drives F₂ upward through the threshold
		}
		if _, err := m.Update(rng.Intn(3), key, now); err != nil {
			t.Fatal(err)
		}
		gv := m.GlobalValue(now)
		side := gv > cfg.Threshold
		if side != m.Stats().ThresholdAbove {
			// A transient mismatch is only legitimate in the same Update
			// step that triggers a sync; since Update syncs eagerly, the
			// recorded side must always match the global value.
			t.Fatalf("step %d: global f=%v (above=%v) but monitor believes above=%v",
				i, gv, side, m.Stats().ThresholdAbove)
		}
	}
}

func TestMonitorPointFunction(t *testing.T) {
	sp := testSketchParams()
	probe, err := core.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := hashing.NewFamily(sp.Seed, probe.Depth(), probe.Width())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Sketch:    sp,
		Function:  NewPointFn(fam, 42),
		Threshold: 50, // global average frequency of item 42
	}
	m, err := NewMonitor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var now Tick
	for i := 0; i < 90; i++ { // 45 per site < threshold on the average
		now++
		if _, err := m.Update(i%2, 42, now); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().ThresholdAbove {
		t.Errorf("average frequency 45 reported above threshold 50: f=%v", m.Stats().FunctionValue)
	}
	for i := 0; i < 60; i++ {
		now++
		if _, err := m.Update(i%2, 42, now); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Stats().ThresholdAbove {
		t.Errorf("average frequency 75 not reported above threshold 50: f=%v", m.Stats().FunctionValue)
	}
}

func TestMonitorAdvanceExpiresAndResyncs(t *testing.T) {
	// After the hot period leaves the window, Advance must detect the
	// downward crossing.
	sp := testSketchParams()
	sp.WindowLength = 200
	cfg := Config{Sketch: sp, Function: SelfJoinFn{}, Threshold: 900}
	m, err := NewMonitor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var now Tick
	for i := 0; i < 200; i++ {
		now++
		if _, err := m.Update(i%2, 1, now); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Stats().ThresholdAbove {
		t.Fatalf("hot key did not push F₂ above threshold: f=%v", m.Stats().FunctionValue)
	}
	m.Advance(now + 500) // slide far past the hot period
	if m.Stats().ThresholdAbove {
		t.Errorf("expired window still above threshold: f=%v", m.Stats().FunctionValue)
	}
}

func TestMonitorCheckEveryThrottles(t *testing.T) {
	mk := func(every int) Stats {
		cfg := Config{Sketch: testSketchParams(), Function: SelfJoinFn{}, Threshold: 1e12, CheckEvery: every}
		m, err := NewMonitor(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		var now Tick
		for i := 0; i < 500; i++ {
			now++
			if _, err := m.Update(i%2, uint64(i%50), now); err != nil {
				t.Fatal(err)
			}
		}
		return m.Stats()
	}
	s1, s10 := mk(1), mk(10)
	if s10.LocalChecks >= s1.LocalChecks {
		t.Errorf("CheckEvery=10 performed %d checks, CheckEvery=1 %d; throttle ineffective",
			s10.LocalChecks, s1.LocalChecks)
	}
}
