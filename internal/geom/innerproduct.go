package geom

import (
	"math"

	"ecmsketch/internal/cm"
)

// InnerProductFn monitors the inner product (join size) estimate between TWO
// streams observed at every site: each site extracts the vectors of both of
// its local sketches, and the monitored vector is their concatenation
// [va ‖ vb]. The function is f(v) = min_j Σ_i va[j,i]·vb[j,i], the Section
// 4.1 estimator evaluated on the averaged vectors.
//
// The paper lists closed-form sphere extrema beyond self-joins as ongoing
// work ("we are still working on this problem"); this implementation ships
// the bilinear bound: within radius α of κ = [κa ‖ κb], displacements
// (da, db) satisfy ‖da‖²+‖db‖² ≤ α², so per row
//
//	|⟨xa,xb⟩ − ⟨κa,κb⟩| ≤ √(‖κa‖²+‖κb‖²)·α + α²/2,
//
// by Cauchy-Schwarz on the cross terms and AM-GM on ‖da‖‖db‖ ≤ α²/2. The
// row-minimum of per-row bounds bounds the minimum estimator as in
// SelfJoinFn.
type InnerProductFn struct{}

// Value evaluates the inner-product estimate on a concatenated vector. The
// vector must have an even cell count: the first half is stream a, the
// second stream b, with identical (D, W/2) layouts.
func (InnerProductFn) Value(v *cm.Vector) float64 {
	half := len(v.Cells) / 2
	w := v.W / 2
	best := math.Inf(1)
	for j := 0; j < v.D; j++ {
		var sum float64
		for i := 0; i < w; i++ {
			sum += v.Cells[j*w+i] * v.Cells[half+j*w+i]
		}
		if sum < best {
			best = sum
		}
	}
	return best
}

// BoundsOnBall returns sound inner-product extrema over a ball around the
// concatenated center.
func (InnerProductFn) BoundsOnBall(center *cm.Vector, radius float64) (lo, hi float64) {
	half := len(center.Cells) / 2
	w := center.W / 2
	lo, hi = math.Inf(1), math.Inf(1)
	for j := 0; j < center.D; j++ {
		var dot, na2, nb2 float64
		for i := 0; i < w; i++ {
			a := center.Cells[j*w+i]
			b := center.Cells[half+j*w+i]
			dot += a * b
			na2 += a * a
			nb2 += b * b
		}
		slack := math.Sqrt(na2+nb2)*radius + radius*radius/2
		if v := dot - slack; v < lo {
			lo = v
		}
		if v := dot + slack; v < hi {
			hi = v
		}
	}
	return lo, hi
}

// Name identifies the function.
func (InnerProductFn) Name() string { return "inner-product" }

// ConcatVectors builds the monitored [va ‖ vb] layout from two extracted
// sketch vectors of identical shape.
func ConcatVectors(va, vb *cm.Vector) *cm.Vector {
	out := cm.NewVector(va.D, va.W*2)
	copy(out.Cells[:len(va.Cells)], va.Cells)
	copy(out.Cells[len(va.Cells):], vb.Cells)
	return out
}
