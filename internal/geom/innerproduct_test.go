package geom

import (
	"math"
	"math/rand"
	"testing"

	"ecmsketch/internal/cm"
)

func TestInnerProductFnValue(t *testing.T) {
	// Two 1x3 "sketches": a = [1,2,3], b = [4,5,6] → ⟨a,b⟩ = 32.
	va := cm.NewVector(1, 3)
	copy(va.Cells, []float64{1, 2, 3})
	vb := cm.NewVector(1, 3)
	copy(vb.Cells, []float64{4, 5, 6})
	v := ConcatVectors(va, vb)
	if got := (InnerProductFn{}).Value(v); got != 32 {
		t.Errorf("Value = %v, want 32", got)
	}
}

func TestInnerProductFnRowMin(t *testing.T) {
	// Two rows: row 0 dot = 10, row 1 dot = 2 → min 2.
	va := cm.NewVector(2, 2)
	copy(va.Cells, []float64{1, 3, 1, 1})
	vb := cm.NewVector(2, 2)
	copy(vb.Cells, []float64{1, 3, 1, 1})
	v := ConcatVectors(va, vb)
	if got := (InnerProductFn{}).Value(v); got != 2 {
		t.Errorf("Value = %v, want 2", got)
	}
}

func TestInnerProductFnBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fn := InnerProductFn{}
	for trial := 0; trial < 200; trial++ {
		center := cm.NewVector(2, 12) // 2 rows × (6 cells per stream × 2)
		for i := range center.Cells {
			center.Cells[i] = rng.Float64()*8 - 1
		}
		radius := rng.Float64() * 4
		lo, hi := fn.BoundsOnBall(center, radius)
		if v := fn.Value(center); v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("center value %v outside its own bounds [%v,%v]", v, lo, hi)
		}
		for probe := 0; probe < 40; probe++ {
			p := center.Clone()
			dir := make([]float64, len(p.Cells))
			var norm2 float64
			for i := range dir {
				dir[i] = rng.NormFloat64()
				norm2 += dir[i] * dir[i]
			}
			scale := rng.Float64() * radius / math.Sqrt(norm2)
			for i := range p.Cells {
				p.Cells[i] += dir[i] * scale
			}
			v := fn.Value(p)
			if v < lo-1e-6 || v > hi+1e-6 {
				t.Fatalf("probe value %v outside bounds [%v,%v] (radius %v)", v, lo, hi, radius)
			}
		}
	}
}

func TestInnerProductFnName(t *testing.T) {
	if (InnerProductFn{}).Name() != "inner-product" {
		t.Error("Name mismatch")
	}
}
