package geom

import (
	"errors"
	"fmt"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/core"
	"ecmsketch/internal/window"
)

// Tick re-exports the logical timestamp type.
type Tick = window.Tick

// Config configures a monitoring deployment.
type Config struct {
	// Sketch configures each site's local ECM-sketch. All sites share it.
	Sketch core.Params
	// QueryRange is the sliding-window sub-range r the monitored function is
	// evaluated over.
	QueryRange Tick
	// Function is the monitored function f.
	Function Function
	// Threshold is the value T whose crossings f(global vector) is monitored
	// for.
	Threshold float64
	// CheckEvery throttles local constraint checks to once per this many
	// arrivals per site (1 = check on every arrival). Extraction of the
	// local vector costs O(d·w) counter queries, so real deployments batch.
	CheckEvery int
	// Balancing enables the pairwise violation-resolution optimization of
	// Sharfman et al.: a local violation first tries to cancel against
	// peers' opposite drifts before forcing a full synchronization.
	Balancing bool
}

// Stats accumulates the communication accounting the experiments report.
type Stats struct {
	Updates          int     // stream arrivals processed
	LocalChecks      int     // sphere tests performed
	Violations       int     // local constraint violations raised
	Syncs            int     // full synchronizations triggered
	BalanceAttempts  int     // violations the balancing optimization tried to absorb
	BalanceSuccesses int     // violations resolved without a full sync
	MessagesSent     int     // site→coordinator and coordinator→site messages
	BytesSent        int     // total payload bytes shipped
	ThresholdAbove   bool    // current side of the threshold
	Crossings        int     // detected threshold crossings
	FunctionValue    float64 // f(e) after the last synchronization
}

// Site is one stream-observing node participating in the monitoring
// protocol. It owns a local ECM-sketch, the current global estimate vector,
// and its snapshot from the last synchronization.
type Site struct {
	id       int
	sketch   *core.Sketch
	lastSync *cm.Vector // v_i at the last synchronization
	slack    *cm.Vector // zero-sum balancing adjustment, nil when unused
	sinceChk int
}

// Sketch exposes the site's local sketch (e.g. to feed it externally).
func (s *Site) Sketch() *core.Sketch { return s.sketch }

// ID reports the site index.
func (s *Site) ID() int { return s.id }

// Monitor is the coordinator of the geometric monitoring protocol,
// orchestrating n sites in-process. The transport is simulated; the
// accounting (messages, bytes) is what a networked deployment would pay.
type Monitor struct {
	cfg      Config
	sites    []*Site
	estimate *cm.Vector // global estimate vector e
	stats    Stats
}

// NewMonitor builds a deployment of n sites.
func NewMonitor(cfg Config, n int) (*Monitor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("geom: need at least one site, got %d", n)
	}
	if cfg.Function == nil {
		return nil, errors.New("geom: Function must be set")
	}
	if cfg.QueryRange == 0 {
		cfg.QueryRange = cfg.Sketch.WindowLength
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	m := &Monitor{cfg: cfg}
	for i := 0; i < n; i++ {
		sk, err := core.New(cfg.Sketch)
		if err != nil {
			return nil, fmt.Errorf("geom: site %d: %w", i, err)
		}
		m.sites = append(m.sites, &Site{id: i, sketch: sk})
	}
	// Initialize with an explicit synchronization so every site holds e.
	m.synchronize(0)
	return m, nil
}

// Sites returns the participating sites.
func (m *Monitor) Sites() []*Site { return m.sites }

// Stats returns a copy of the accumulated statistics.
func (m *Monitor) Stats() Stats { return m.stats }

// Estimate returns the current global estimate vector e.
func (m *Monitor) Estimate() *cm.Vector { return m.estimate.Clone() }

// Update feeds one arrival (item key at tick t) observed by site idx, runs
// the site's local constraint check, and synchronizes if the check cannot
// rule out a threshold crossing. It reports whether a synchronization
// happened.
func (m *Monitor) Update(idx int, key uint64, t Tick) (synced bool, err error) {
	if idx < 0 || idx >= len(m.sites) {
		return false, fmt.Errorf("geom: site %d out of range", idx)
	}
	s := m.sites[idx]
	s.sketch.Add(key, t)
	m.stats.Updates++
	s.sinceChk++
	if s.sinceChk < m.cfg.CheckEvery {
		return false, nil
	}
	s.sinceChk = 0
	if m.checkLocal(s, t) {
		return false, nil
	}
	m.stats.Violations++
	if m.balance(s, t) {
		return false, nil
	}
	m.synchronize(t)
	return true, nil
}

// Advance moves every site's window to tick t and re-checks constraints
// (window expiry shrinks counters, which can also cross the threshold).
// It reports whether a synchronization happened.
func (m *Monitor) Advance(t Tick) bool {
	synced := false
	for _, s := range m.sites {
		s.sketch.Advance(t)
	}
	for _, s := range m.sites {
		if !m.checkLocal(s, t) {
			m.stats.Violations++
			m.synchronize(t)
			synced = true
			break
		}
	}
	return synced
}

// checkLocal runs the sphere test for one site: construct the drift vector
// u_i = e + (v_i(t) − v_i(sync)) + slack_i, form the sphere with diameter
// [e, u_i], and test whether the function is single-sided over it. Returns
// true when the site can stay silent.
func (m *Monitor) checkLocal(s *Site, t Tick) bool {
	m.stats.LocalChecks++
	return m.sphereSafe(m.drift(s))
}

// synchronize collects every site's current local vector, recomputes the
// global estimate (their average), redistributes it, and re-evaluates the
// function side. Communication is charged per the vector encodings shipped.
func (m *Monitor) synchronize(t Tick) {
	n := len(m.sites)
	var avg *cm.Vector
	for _, s := range m.sites {
		v := s.sketch.ExtractVector(m.cfg.QueryRange)
		s.lastSync = v
		m.stats.MessagesSent++
		m.stats.BytesSent += len(v.Marshal())
		if avg == nil {
			avg = v.Clone()
		} else {
			avg.AddScaled(v, 1)
		}
	}
	avg.Scale(1 / float64(n))
	m.estimate = avg
	m.clearSlacks()
	// Broadcast e back to the sites.
	m.stats.MessagesSent += n
	m.stats.BytesSent += n * len(avg.Marshal())
	m.stats.Syncs++
	val := m.cfg.Function.Value(avg)
	above := val > m.cfg.Threshold
	if m.stats.Syncs > 1 && above != m.stats.ThresholdAbove {
		m.stats.Crossings++
	}
	m.stats.ThresholdAbove = above
	m.stats.FunctionValue = val
}

// GlobalValue computes the exact current value of the monitored function on
// the true average of the site vectors — the quantity the protocol tracks
// without centralizing. Exposed for verification and experiments.
func (m *Monitor) GlobalValue(t Tick) float64 {
	var avg *cm.Vector
	for _, s := range m.sites {
		s.sketch.Advance(t)
		v := s.sketch.ExtractVector(m.cfg.QueryRange)
		if avg == nil {
			avg = v
		} else {
			avg.AddScaled(v, 1)
		}
	}
	avg.Scale(1 / float64(len(m.sites)))
	return m.cfg.Function.Value(avg)
}

// NaiveSyncBytes estimates what a naive protocol — every site ships its
// vector to the coordinator on every arrival — would have transferred for
// the same number of updates. Used to report communication savings.
func (m *Monitor) NaiveSyncBytes() int {
	if len(m.sites) == 0 {
		return 0
	}
	vecBytes := len(m.sites[0].sketch.ExtractVector(m.cfg.QueryRange).Marshal())
	return m.stats.Updates * vecBytes
}
