package geom

import (
	"errors"
	"fmt"

	"ecmsketch/internal/cm"
	"ecmsketch/internal/core"
)

// PairMonitor runs the geometric method over TWO streams observed at every
// site, monitoring a function of the concatenated global vectors — in
// particular the inner-product (join size) between the streams via
// InnerProductFn. This is the "additional function types" direction the
// paper leaves as ongoing work in Section 6.2.
//
// Each site keeps one ECM-sketch per stream; its local statistics vector is
// [va ‖ vb]. Everything else — drift vectors, spheres, synchronizations —
// is the standard protocol on the doubled vector space.
type PairMonitor struct {
	cfg      Config
	sites    []*PairSite
	estimate *cm.Vector
	stats    Stats
}

// PairSite is one node of a PairMonitor.
type PairSite struct {
	id       int
	a, b     *core.Sketch
	lastSync *cm.Vector
	sinceChk int
}

// SketchA returns the site's first-stream sketch.
func (s *PairSite) SketchA() *core.Sketch { return s.a }

// SketchB returns the site's second-stream sketch.
func (s *PairSite) SketchB() *core.Sketch { return s.b }

// NewPairMonitor builds a two-stream deployment of n sites. cfg.Function
// defaults to InnerProductFn when unset.
func NewPairMonitor(cfg Config, n int) (*PairMonitor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("geom: need at least one site, got %d", n)
	}
	if cfg.Function == nil {
		cfg.Function = InnerProductFn{}
	}
	if cfg.QueryRange == 0 {
		cfg.QueryRange = cfg.Sketch.WindowLength
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	m := &PairMonitor{cfg: cfg}
	for i := 0; i < n; i++ {
		a, err := core.New(cfg.Sketch)
		if err != nil {
			return nil, fmt.Errorf("geom: site %d stream a: %w", i, err)
		}
		b, err := core.New(cfg.Sketch)
		if err != nil {
			return nil, fmt.Errorf("geom: site %d stream b: %w", i, err)
		}
		m.sites = append(m.sites, &PairSite{id: i, a: a, b: b})
	}
	m.synchronize()
	return m, nil
}

// Stats returns a copy of the accumulated statistics.
func (m *PairMonitor) Stats() Stats { return m.stats }

// Stream selects which of a site's streams an update belongs to.
type Stream uint8

// The two monitored streams.
const (
	StreamA Stream = iota
	StreamB
)

// Update feeds one arrival of stream st at site idx and runs the local
// constraint check. It reports whether a synchronization happened.
func (m *PairMonitor) Update(idx int, st Stream, key uint64, t Tick) (bool, error) {
	if idx < 0 || idx >= len(m.sites) {
		return false, fmt.Errorf("geom: site %d out of range", idx)
	}
	if st != StreamA && st != StreamB {
		return false, errors.New("geom: unknown stream")
	}
	s := m.sites[idx]
	if st == StreamA {
		s.a.Add(key, t)
	} else {
		s.b.Add(key, t)
	}
	m.stats.Updates++
	s.sinceChk++
	if s.sinceChk < m.cfg.CheckEvery {
		return false, nil
	}
	s.sinceChk = 0
	if m.checkLocal(s) {
		return false, nil
	}
	m.stats.Violations++
	m.synchronize()
	return true, nil
}

func (m *PairMonitor) extract(s *PairSite) *cm.Vector {
	va := s.a.ExtractVector(m.cfg.QueryRange)
	vb := s.b.ExtractVector(m.cfg.QueryRange)
	return ConcatVectors(va, vb)
}

func (m *PairMonitor) checkLocal(s *PairSite) bool {
	m.stats.LocalChecks++
	cur := m.extract(s)
	drift := cur.Clone().Sub(s.lastSync).AddScaled(m.estimate, 1)
	center := m.estimate.Clone().AddScaled(drift, 1).Scale(0.5)
	radius := m.estimate.Dist(drift) / 2
	lo, hi := m.cfg.Function.BoundsOnBall(center, radius)
	if m.stats.ThresholdAbove {
		return lo > m.cfg.Threshold
	}
	return hi <= m.cfg.Threshold
}

func (m *PairMonitor) synchronize() {
	n := len(m.sites)
	var avg *cm.Vector
	for _, s := range m.sites {
		v := m.extract(s)
		s.lastSync = v
		m.stats.MessagesSent++
		m.stats.BytesSent += len(v.Marshal())
		if avg == nil {
			avg = v.Clone()
		} else {
			avg.AddScaled(v, 1)
		}
	}
	avg.Scale(1 / float64(n))
	m.estimate = avg
	m.stats.MessagesSent += n
	m.stats.BytesSent += n * len(avg.Marshal())
	m.stats.Syncs++
	val := m.cfg.Function.Value(avg)
	above := val > m.cfg.Threshold
	if m.stats.Syncs > 1 && above != m.stats.ThresholdAbove {
		m.stats.Crossings++
	}
	m.stats.ThresholdAbove = above
	m.stats.FunctionValue = val
}

// GlobalValue computes the monitored function on the true average of the
// concatenated site vectors, for verification.
func (m *PairMonitor) GlobalValue(t Tick) float64 {
	var avg *cm.Vector
	for _, s := range m.sites {
		s.a.Advance(t)
		s.b.Advance(t)
		v := m.extract(s)
		if avg == nil {
			avg = v
		} else {
			avg.AddScaled(v, 1)
		}
	}
	avg.Scale(1 / float64(len(m.sites)))
	return m.cfg.Function.Value(avg)
}
