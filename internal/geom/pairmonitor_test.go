package geom

import (
	"math/rand"
	"testing"
)

func TestPairMonitorValidation(t *testing.T) {
	if _, err := NewPairMonitor(Config{Sketch: testSketchParams()}, 0); err == nil {
		t.Error("0 sites accepted")
	}
	bad := testSketchParams()
	bad.Epsilon = 0
	if _, err := NewPairMonitor(Config{Sketch: bad}, 2); err == nil {
		t.Error("invalid sketch params accepted")
	}
	m, err := NewPairMonitor(Config{Sketch: testSketchParams(), Threshold: 1e9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(5, StreamA, 1, 1); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := m.Update(0, Stream(9), 1, 1); err == nil {
		t.Error("bogus stream accepted")
	}
}

func TestPairMonitorDetectsJoinGrowth(t *testing.T) {
	// Streams a and b start disjoint (inner product ≈ collision noise,
	// bounded by ε·‖a‖·‖b‖), then start sharing keys: the true join size
	// explodes past the threshold.
	cfg := Config{
		Sketch:     testSketchParams(),
		Threshold:  20000,
		CheckEvery: 4,
	}
	m, err := NewPairMonitor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var now Tick
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 800; i++ { // disjoint phase: a gets keys <100, b keys ≥1000
		now++
		site := i % 2
		if _, err := m.Update(site, StreamA, uint64(rng.Intn(100)), now); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Update(site, StreamB, uint64(1000+rng.Intn(100)), now); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().ThresholdAbove {
		t.Fatalf("disjoint streams already above threshold: f=%v", m.Stats().FunctionValue)
	}
	for i := 0; i < 800; i++ { // overlap phase: both hammer key 7
		now++
		site := i % 2
		if _, err := m.Update(site, StreamA, 7, now); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Update(site, StreamB, 7, now); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if !st.ThresholdAbove {
		t.Errorf("join growth missed: f=%v threshold=%v", st.FunctionValue, cfg.Threshold)
	}
	if st.Crossings == 0 {
		t.Error("no crossing recorded")
	}
}

func TestPairMonitorSoundness(t *testing.T) {
	// As for the single-stream monitor: whenever all sites stay silent, the
	// recorded threshold side matches the true global value.
	cfg := Config{Sketch: testSketchParams(), Threshold: 150}
	m, err := NewPairMonitor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	var now Tick
	for i := 0; i < 600; i++ {
		now++
		site := rng.Intn(2)
		keyA := uint64(rng.Intn(50))
		keyB := uint64(rng.Intn(50)) // overlapping domains: join grows
		if _, err := m.Update(site, StreamA, keyA, now); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Update(site, StreamB, keyB, now); err != nil {
			t.Fatal(err)
		}
		gv := m.GlobalValue(now)
		if (gv > cfg.Threshold) != m.Stats().ThresholdAbove {
			t.Fatalf("step %d: global f=%v but monitor believes above=%v",
				i, gv, m.Stats().ThresholdAbove)
		}
	}
}

func TestPairMonitorSavesCommunication(t *testing.T) {
	cfg := Config{
		Sketch:     testSketchParams(),
		Threshold:  1e12,
		CheckEvery: 2,
	}
	m, err := NewPairMonitor(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var now Tick
	for i := 0; i < 1500; i++ {
		now++
		if _, err := m.Update(rng.Intn(3), Stream(i%2), uint64(rng.Intn(200)), now); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Syncs > 3 {
		t.Errorf("far-threshold stream caused %d syncs", st.Syncs)
	}
}
