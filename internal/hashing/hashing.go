// Package hashing provides the small universal-hash families used throughout
// the ECM-sketch implementation: pairwise-independent hashing for Count-Min
// rows, and a 64-bit mixer used to derive item identifiers and the geometric
// level assignment of randomized waves.
//
// Everything here is deterministic given a seed, which is what makes sketches
// built at different sites composable: two sketches agree on their hash
// functions exactly when they were constructed from the same seed.
package hashing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// mersennePrime31 is 2^31-1, the classic modulus for the Carter-Wegman
// multiply-add family. Our row widths are far below 2^31, so a 31-bit field
// is sufficient and keeps all arithmetic in uint64 without overflow.
const mersennePrime31 = (1 << 31) - 1

// PairwiseFunc is one member of a pairwise-independent family mapping 64-bit
// keys to [0, width).
type PairwiseFunc struct {
	a, b  uint64
	width uint64
	// magic is ⌈2^64/width⌉ (wrapping), precomputed for the exact
	// multiply-based remainder in HashFolded (Lemire's fastmod): hash paths
	// run d reductions per arrival, and a 128-bit multiply is several times
	// cheaper than a hardware divide.
	magic uint64
}

// NewPairwiseFunc derives the i-th hash function of width w from a seed.
// Functions derived from equal (seed, i, w) triples are identical, and
// functions with distinct i behave as independent members of the family.
func NewPairwiseFunc(seed uint64, i int, w int) (PairwiseFunc, error) {
	if w <= 0 {
		return PairwiseFunc{}, fmt.Errorf("hashing: width must be positive, got %d", w)
	}
	if uint64(w) > mersennePrime31 {
		return PairwiseFunc{}, fmt.Errorf("hashing: width %d exceeds field size", w)
	}
	// Derive a and b by mixing the seed with the row index. a must be
	// non-zero modulo p for pairwise independence.
	a := Mix64(seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
	b := Mix64(seed ^ (0xbf58476d1ce4e5b9 * uint64(i+7)))
	a = a%(mersennePrime31-1) + 1 // a in [1, p-1]
	b = b % mersennePrime31       // b in [0, p-1]
	return PairwiseFunc{a: a, b: b, width: uint64(w), magic: ^uint64(0)/uint64(w) + 1}, nil
}

// Hash maps a 64-bit key to a bucket in [0, width).
func (f PairwiseFunc) Hash(key uint64) int {
	return f.HashFolded(Fold(key))
}

// Fold compresses a 64-bit key into the 31-bit hash field. The fold is a
// fixed permutation-then-reduce shared by every function of every family, so
// ingest paths that hash one key with d row functions (an ECM-sketch update)
// pay the mix once and reuse the folded key via HashFolded.
func Fold(key uint64) uint64 {
	return FoldMixed(Mix64(key))
}

// FoldMixed folds an already-mixed key (Mix64 output) into the hash field:
// Fold(key) == FoldMixed(Mix64(key)). Callers that have paid the mix for
// other purposes (cache slot derivation) reuse it here.
func FoldMixed(x uint64) uint64 {
	lo := x & mersennePrime31
	hi := x >> 31
	return (lo + hi) % mersennePrime31
}

// HashFolded maps an already-folded key (see Fold) to a bucket in
// [0, width). Hash(key) == HashFolded(Fold(key)) for every key.
func (f PairwiseFunc) HashFolded(k uint64) int {
	h := (f.a*k + f.b) % mersennePrime31
	// h % width via fastmod: exact for h, width < 2^32.
	mod, _ := bits.Mul64(f.magic*h, f.width)
	return int(mod)
}

// Width reports the range size of the function.
func (f PairwiseFunc) Width() int { return int(f.width) }

// Family is an ordered set of d pairwise-independent functions of equal
// width, as used by the rows of a Count-Min array.
type Family struct {
	seed  uint64
	funcs []PairwiseFunc
}

// NewFamily builds d functions of width w from a seed.
func NewFamily(seed uint64, d, w int) (*Family, error) {
	if d <= 0 {
		return nil, fmt.Errorf("hashing: depth must be positive, got %d", d)
	}
	fs := make([]PairwiseFunc, d)
	for i := range fs {
		f, err := NewPairwiseFunc(seed, i, w)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return &Family{seed: seed, funcs: fs}, nil
}

// Depth reports the number of functions in the family.
func (fam *Family) Depth() int { return len(fam.funcs) }

// Width reports the common range size of the family.
func (fam *Family) Width() int { return fam.funcs[0].Width() }

// Seed reports the seed the family was derived from.
func (fam *Family) Seed() uint64 { return fam.seed }

// Hash maps a key with the i-th function of the family.
func (fam *Family) Hash(i int, key uint64) int { return fam.funcs[i].Hash(key) }

// HashFolded maps an already-folded key (see Fold) with the i-th function.
func (fam *Family) HashFolded(i int, k uint64) int { return fam.funcs[i].HashFolded(k) }

// Compatible reports whether two families were derived identically and hence
// hash every key to the same cells. Sketches may only be merged when their
// families are compatible.
func (fam *Family) Compatible(other *Family) bool {
	if other == nil {
		return false
	}
	return fam.seed == other.seed && len(fam.funcs) == len(other.funcs) &&
		fam.funcs[0].width == other.funcs[0].width
}

// Mix64 is the SplitMix64 finalizer: a fixed bijection on 64-bit integers
// with strong avalanche behaviour. It is used to turn sequence numbers and
// string digests into well-spread identifiers.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyBytes digests an arbitrary byte string into a 64-bit key using the
// FNV-1a core followed by a finalizer mix. It exists so callers can feed
// string-keyed items (URLs, MAC addresses) into the sketches.
func KeyBytes(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return Mix64(h)
}

// KeyString digests a string into a 64-bit key; see KeyBytes.
func KeyString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Mix64(h)
}

// KeyUint64 digests an integer key. Integer keys are mixed so that dense
// domains (0,1,2,...) spread across sketch cells.
func KeyUint64(x uint64) uint64 { return Mix64(x) }

// GeometricLevel assigns a key to a level with Pr[level = l] = 2^-(l+1),
// the assignment used by randomized-wave synopses: level = number of
// trailing zeros of a hashed key, capped at max.
func GeometricLevel(seed, key uint64, max int) int {
	h := Mix64(seed ^ Mix64(key))
	l := bits.TrailingZeros64(h)
	if l > max {
		return max
	}
	return l
}

// Marshal encodes the family parameters (seed, depth, width) in 20 bytes.
// The functions themselves are re-derived on Unmarshal, so serialized
// sketches stay small.
func (fam *Family) Marshal() []byte {
	buf := make([]byte, 20)
	binary.LittleEndian.PutUint64(buf[0:], fam.seed)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(fam.funcs)))
	binary.LittleEndian.PutUint64(buf[12:], fam.funcs[0].width)
	return buf
}

// UnmarshalFamily reconstructs a family from Marshal output and returns the
// number of bytes consumed.
func UnmarshalFamily(b []byte) (*Family, int, error) {
	if len(b) < 20 {
		return nil, 0, errors.New("hashing: truncated family encoding")
	}
	seed := binary.LittleEndian.Uint64(b[0:])
	d := int(binary.LittleEndian.Uint32(b[8:]))
	w := int(binary.LittleEndian.Uint64(b[12:]))
	if d <= 0 || d > 1<<20 || w <= 0 {
		return nil, 0, fmt.Errorf("hashing: corrupt family encoding (d=%d w=%d)", d, w)
	}
	fam, err := NewFamily(seed, d, w)
	if err != nil {
		return nil, 0, err
	}
	return fam, 20, nil
}
