package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPairwiseFuncValidation(t *testing.T) {
	if _, err := NewPairwiseFunc(1, 0, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewPairwiseFunc(1, 0, -5); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NewPairwiseFunc(1, 0, 1<<32); err == nil {
		t.Error("oversized width accepted")
	}
}

func TestHashInRange(t *testing.T) {
	prop := func(seed, key uint64, wRaw uint16) bool {
		w := int(wRaw%1000) + 1
		f, err := NewPairwiseFunc(seed, 3, w)
		if err != nil {
			return false
		}
		h := f.Hash(key)
		return h >= 0 && h < w
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	f1, _ := NewPairwiseFunc(99, 2, 64)
	f2, _ := NewPairwiseFunc(99, 2, 64)
	for k := uint64(0); k < 10000; k++ {
		if f1.Hash(k) != f2.Hash(k) {
			t.Fatalf("same-seed functions disagree at %d", k)
		}
	}
}

func TestHashDistribution(t *testing.T) {
	// Dense sequential keys should spread roughly uniformly.
	const w, n = 64, 64000
	f, _ := NewPairwiseFunc(7, 0, w)
	counts := make([]int, w)
	for k := uint64(0); k < n; k++ {
		counts[f.Hash(k)]++
	}
	mean := float64(n) / w
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > mean/2 {
			t.Errorf("bucket %d has %d keys, mean %v; distribution too skewed", i, c, mean)
		}
	}
}

func TestFamilyRowsDiffer(t *testing.T) {
	fam, err := NewFamily(5, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	const n = 1000
	for k := uint64(0); k < n; k++ {
		if fam.Hash(0, k) == fam.Hash(1, k) {
			same++
		}
	}
	// Two independent functions of width 128 collide on ~1/128 of keys.
	if same > n/16 {
		t.Errorf("rows 0 and 1 agree on %d/%d keys; not independent", same, n)
	}
}

func TestFamilyCompatible(t *testing.T) {
	a, _ := NewFamily(1, 3, 50)
	b, _ := NewFamily(1, 3, 50)
	c, _ := NewFamily(2, 3, 50)
	d, _ := NewFamily(1, 4, 50)
	if !a.Compatible(b) {
		t.Error("identical families not compatible")
	}
	if a.Compatible(c) || a.Compatible(d) || a.Compatible(nil) {
		t.Error("incompatible families reported compatible")
	}
}

func TestFamilyMarshalRoundTrip(t *testing.T) {
	fam, _ := NewFamily(123, 5, 77)
	dec, n, err := UnmarshalFamily(fam.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("consumed %d bytes, want 20", n)
	}
	if !fam.Compatible(dec) {
		t.Error("decoded family incompatible")
	}
	for j := 0; j < 5; j++ {
		for k := uint64(0); k < 100; k++ {
			if fam.Hash(j, k) != dec.Hash(j, k) {
				t.Fatalf("decoded family disagrees at (%d,%d)", j, k)
			}
		}
	}
	if _, _, err := UnmarshalFamily(fam.Marshal()[:10]); err == nil {
		t.Error("truncated family accepted")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window of inputs.
	seen := map[uint64]uint64{}
	for x := uint64(0); x < 100000; x++ {
		m := Mix64(x)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix64 collision: %d and %d", prev, x)
		}
		seen[m] = x
	}
}

func TestKeyStringMatchesKeyBytes(t *testing.T) {
	for _, s := range []string{"", "a", "/index.html", "00:11:22:33:44:55"} {
		if KeyString(s) != KeyBytes([]byte(s)) {
			t.Errorf("KeyString(%q) != KeyBytes", s)
		}
	}
}

func TestGeometricLevelDistribution(t *testing.T) {
	// Pr[level = l] = 2^-(l+1): roughly half the keys land at level 0.
	const n = 100000
	counts := map[int]int{}
	for k := uint64(0); k < n; k++ {
		counts[GeometricLevel(42, k, 62)]++
	}
	if c := counts[0]; math.Abs(float64(c)-n/2) > n/20 {
		t.Errorf("level 0 has %d of %d keys, want ≈ half", c, n)
	}
	if c := counts[1]; math.Abs(float64(c)-n/4) > n/20 {
		t.Errorf("level 1 has %d of %d keys, want ≈ quarter", c, n)
	}
}

func TestGeometricLevelCap(t *testing.T) {
	for k := uint64(0); k < 10000; k++ {
		if l := GeometricLevel(1, k, 3); l > 3 {
			t.Fatalf("level %d exceeds cap 3", l)
		}
	}
}

func TestGeometricLevelDeterministic(t *testing.T) {
	for k := uint64(0); k < 1000; k++ {
		if GeometricLevel(9, k, 30) != GeometricLevel(9, k, 30) {
			t.Fatal("GeometricLevel not deterministic")
		}
	}
}

// TestHashFoldedMatchesDivision pins the fastmod reduction in HashFolded to
// the plain % operator it replaced, across widths (including 1 and primes)
// and the full folded-key range boundaries.
func TestHashFoldedMatchesDivision(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 55, 109, 544, 1 << 20, (1 << 31) - 2} {
		f, err := NewPairwiseFunc(12345, 3, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []uint64{0, 1, 2, 1000003, mersennePrime31 - 1} {
			h := (f.a*k + f.b) % mersennePrime31
			want := int(h % f.width)
			if got := f.HashFolded(k); got != want {
				t.Fatalf("w=%d k=%d: fastmod %d, division %d", w, k, got, want)
			}
		}
		rng := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 20000; i++ {
			rng = Mix64(rng + uint64(i))
			k := rng % mersennePrime31
			h := (f.a*k + f.b) % mersennePrime31
			want := int(h % f.width)
			if got := f.HashFolded(k); got != want {
				t.Fatalf("w=%d k=%d: fastmod %d, division %d", w, k, got, want)
			}
		}
	}
}

// TestHashEqualsHashFolded pins the two-step fold+reduce path to the
// original one-shot Hash for random keys.
func TestHashEqualsHashFolded(t *testing.T) {
	f, err := NewPairwiseFunc(99, 1, 101)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		key := Mix64(i * 0x9e3779b97f4a7c15)
		if f.Hash(key) != f.HashFolded(Fold(key)) {
			t.Fatalf("key %d: Hash %d != HashFolded(Fold) %d", key, f.Hash(key), f.HashFolded(Fold(key)))
		}
	}
}
