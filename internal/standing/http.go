package standing

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ecmsketch/internal/core"
	"ecmsketch/internal/hashing"
	"ecmsketch/internal/wire"
)

// Service mounts a Registry on an HTTP mux. Both ecmserver and the
// coordinator server route to the same handlers, so the subscribe/watch
// wire contract cannot drift between surfaces.
type Service struct {
	Reg *Registry
	// KeepAlive is the SSE comment-ping interval holding idle connections
	// open through proxies. Default 15s.
	KeepAlive time.Duration
}

// --- subscribe wire format ---

// wireKeyRef is a key reference: "key" hashes a string (KeyString), "ikey"
// is a decimal uint64 — the same pair every query endpoint accepts.
type wireKeyRef struct {
	Key  string `json:"key,omitempty"`
	IKey string `json:"ikey,omitempty"`
}

func (kr wireKeyRef) resolve() (uint64, error) {
	switch {
	case kr.Key != "" && kr.IKey != "":
		return 0, errors.New("give key or ikey, not both")
	case kr.Key != "":
		return hashing.KeyString(kr.Key), nil
	case kr.IKey != "":
		v, err := strconv.ParseUint(kr.IKey, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad ikey %q", kr.IKey)
		}
		return v, nil
	}
	return 0, errors.New("missing key")
}

type wireQuery struct {
	Kind        string       `json:"kind"`
	Key         string       `json:"key,omitempty"`
	IKey        string       `json:"ikey,omitempty"`
	Keys        []wireKeyRef `json:"keys,omitempty"`
	K           int          `json:"k,omitempty"`
	Range       uint64       `json:"range,omitempty"`
	Value       float64      `json:"value,omitempty"`
	Below       bool         `json:"below,omitempty"`
	Factor      float64      `json:"factor,omitempty"`
	RankChanges bool         `json:"rankChanges,omitempty"`
}

type wireSubscribeRequest struct {
	Queries []wireQuery `json:"queries"`
}

type wireSubscribeReply struct {
	Subscription string   `json:"subscription"`
	Queries      []string `json:"queries"`
}

func (wq wireQuery) toQuery() (Query, error) {
	kind, err := parseKind(wq.Kind)
	if err != nil {
		return Query{}, err
	}
	q := Query{
		Kind:        kind,
		Range:       core.Tick(wq.Range),
		Value:       wq.Value,
		Below:       wq.Below,
		Factor:      wq.Factor,
		K:           wq.K,
		RankChanges: wq.RankChanges,
	}
	if wq.Key != "" || wq.IKey != "" {
		key, err := wireKeyRef{Key: wq.Key, IKey: wq.IKey}.resolve()
		if err != nil {
			return Query{}, err
		}
		q.Key = key
	} else if kind != KindTopK {
		return Query{}, errors.New("missing key")
	}
	for _, kr := range wq.Keys {
		key, err := kr.resolve()
		if err != nil {
			return Query{}, err
		}
		q.Keys = append(q.Keys, key)
	}
	return q, nil
}

// HandleSubscribe is POST /v1/subscribe: register a batch of standing
// queries, reply with the subscription ID and per-query IDs.
func (sv *Service) HandleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req wireSubscribeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		wire.Error(w, http.StatusBadRequest, fmt.Errorf("bad subscribe body: %w", err))
		return
	}
	queries := make([]Query, 0, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.toQuery()
		if err != nil {
			wire.Error(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		queries = append(queries, q)
	}
	info, err := sv.Reg.Subscribe(queries)
	if err != nil {
		wire.Error(w, http.StatusBadRequest, err)
		return
	}
	reply := wireSubscribeReply{Subscription: info.ID, Queries: make([]string, len(info.Queries))}
	for i, id := range info.Queries {
		reply.Queries[i] = strconv.FormatUint(id, 10)
	}
	wire.Respond(w, reply)
}

// HandleUnsubscribe is DELETE /v1/subscribe?sub=ID: remove the subscription
// and end its watch streams with a bye.
func (sv *Service) HandleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("sub")
	if id == "" {
		wire.Error(w, http.StatusBadRequest, errors.New("missing sub parameter"))
		return
	}
	if !sv.Reg.Unsubscribe(id) {
		wire.Error(w, http.StatusNotFound, ErrUnknownSubscription)
		return
	}
	wire.Respond(w, map[string]bool{"ok": true})
}

// --- SSE stream ---

// Stream events, in the standard id:/event:/data: framing:
//
//	hello   — stream opened; data carries the subscription ID and the
//	          sequence the stream starts at.
//	notify  — one fired notification (see notification JSON); id: is its
//	          per-subscription sequence number, the resume cursor.
//	dropped — delivery gap: data carries how many notifications between
//	          the previous and the next delivered sequence were lost
//	          (slow consumer, or a resume past the ring horizon).
//	bye     — the subscription was removed server-side; do not reconnect.
//
// Comment lines (": ka") are keep-alives.

// HandleWatch is GET /v1/watch?sub=ID[&resume=SEQ]: attach an SSE stream.
// With resume, notifications after SEQ still held by the replay ring are
// re-delivered first (exactly-once across a reconnect when the ring covers
// the gap; an explicit dropped marker when it does not).
func (sv *Service) HandleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("sub")
	if id == "" {
		wire.Error(w, http.StatusBadRequest, errors.New("missing sub parameter"))
		return
	}
	var resume uint64
	replay := false
	if v := r.URL.Query().Get("resume"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			wire.Error(w, http.StatusBadRequest, errors.New("bad resume cursor"))
			return
		}
		resume, replay = n, true
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		wire.Error(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	watcher, missed, last, err := sv.Reg.Attach(id, resume, replay)
	if err != nil {
		wire.Error(w, http.StatusNotFound, ErrUnknownSubscription)
		return
	}
	defer sv.Reg.Detach(watcher)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: 2000\nevent: hello\ndata: {\"sub\":%q,\"seq\":\"%d\"}\n\n", id, last)

	emit := func(n Notification) {
		if n.Seq > last+1 {
			fmt.Fprintf(w, "event: dropped\ndata: {\"missed\":%d}\n\n", n.Seq-last-1)
		}
		last = n.Seq
		fmt.Fprintf(w, "id: %d\nevent: notify\ndata: %s\n\n", n.Seq, AppendNotificationJSON(nil, n))
	}
	for _, n := range missed {
		emit(n)
	}
	fl.Flush()

	ka := sv.KeepAlive
	if ka <= 0 {
		ka = 15 * time.Second
	}
	ticker := time.NewTicker(ka)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case n, open := <-watcher.C:
			if !open {
				// Kicked (subscription lives: end quietly, the client
				// reconnects) or unsubscribed (say goodbye).
				if !sv.Reg.Has(id) {
					fmt.Fprint(w, "event: bye\ndata: {}\n\n")
					fl.Flush()
				}
				return
			}
			emit(n)
			// Drain whatever queued behind it before flushing once.
		drain:
			for {
				select {
				case n, open := <-watcher.C:
					if !open {
						if !sv.Reg.Has(id) {
							fmt.Fprint(w, "event: bye\ndata: {}\n\n")
						}
						fl.Flush()
						return
					}
					emit(n)
				default:
					break drain
				}
			}
			fl.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ": ka\n\n")
			fl.Flush()
		}
	}
}

// --- notification JSON (the data: payload of notify events) ---

// wireNotification mirrors Notification on the wire. Per the repo's JSON
// conventions, full-range 64-bit fields (keys, ticks, nanotimes) travel as
// decimal strings; small counters stay numeric.
type wireNotification struct {
	Seq     uint64         `json:"seq"`
	Query   uint64         `json:"query"`
	Kind    string         `json:"kind"`
	Key     string         `json:"key,omitempty"`
	Value   float64        `json:"value"`
	Prev    float64        `json:"prev"`
	Rising  bool           `json:"rising"`
	Now     string         `json:"now"`
	At      string         `json:"at"`
	Top     []wireTopEntry `json:"top,omitempty"`
	Entered []string       `json:"entered,omitempty"`
	Left    []string       `json:"left,omitempty"`
}

type wireTopEntry struct {
	Key      string  `json:"key"`
	Estimate float64 `json:"estimate"`
}

func u64s(v uint64) string { return strconv.FormatUint(v, 10) }

// AppendNotificationJSON encodes a notification as the SSE data payload.
func AppendNotificationJSON(dst []byte, n Notification) []byte {
	wn := wireNotification{
		Seq:    n.Seq,
		Query:  n.Query,
		Kind:   n.Kind.String(),
		Value:  n.Value,
		Prev:   n.Prev,
		Rising: n.Rising,
		Now:    u64s(uint64(n.Now)),
		At:     strconv.FormatInt(n.At, 10),
	}
	if n.Kind != KindTopK {
		wn.Key = u64s(n.Key)
	}
	for _, it := range n.Top {
		wn.Top = append(wn.Top, wireTopEntry{Key: u64s(it.Key), Estimate: it.Estimate})
	}
	for _, k := range n.Entered {
		wn.Entered = append(wn.Entered, u64s(k))
	}
	for _, k := range n.Left {
		wn.Left = append(wn.Left, u64s(k))
	}
	b, err := json.Marshal(wn)
	if err != nil {
		// Marshaling a plain struct cannot fail; keep the stream alive
		// with an empty object if it somehow does.
		return append(dst, '{', '}')
	}
	return append(dst, b...)
}

// ParseNotificationJSON decodes a notify data payload — the client half of
// AppendNotificationJSON, exported so ecmclient shares one codec.
func ParseNotificationJSON(data []byte) (Notification, error) {
	var wn wireNotification
	if err := json.Unmarshal(data, &wn); err != nil {
		return Notification{}, err
	}
	kind, err := parseKind(wn.Kind)
	if err != nil {
		return Notification{}, err
	}
	n := Notification{
		Seq:    wn.Seq,
		Query:  wn.Query,
		Kind:   kind,
		Value:  wn.Value,
		Prev:   wn.Prev,
		Rising: wn.Rising,
	}
	if wn.Key != "" {
		if n.Key, err = strconv.ParseUint(wn.Key, 10, 64); err != nil {
			return Notification{}, fmt.Errorf("bad key: %w", err)
		}
	}
	if wn.Now != "" {
		now, err := strconv.ParseUint(wn.Now, 10, 64)
		if err != nil {
			return Notification{}, fmt.Errorf("bad now: %w", err)
		}
		n.Now = core.Tick(now)
	}
	if wn.At != "" {
		if n.At, err = strconv.ParseInt(wn.At, 10, 64); err != nil {
			return Notification{}, fmt.Errorf("bad at: %w", err)
		}
	}
	for _, te := range wn.Top {
		k, err := strconv.ParseUint(te.Key, 10, 64)
		if err != nil {
			return Notification{}, fmt.Errorf("bad top key: %w", err)
		}
		n.Top = append(n.Top, Item{Key: k, Estimate: te.Estimate})
	}
	for _, s := range wn.Entered {
		k, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Notification{}, fmt.Errorf("bad entered key: %w", err)
		}
		n.Entered = append(n.Entered, k)
	}
	for _, s := range wn.Left {
		k, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Notification{}, fmt.Errorf("bad left key: %w", err)
		}
		n.Left = append(n.Left, k)
	}
	return n, nil
}
