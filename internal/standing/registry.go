package standing

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ecmsketch/internal/core"
)

// ErrUnknownSubscription is returned by Attach for an ID that was never
// registered or has been unsubscribed.
var ErrUnknownSubscription = errors.New("standing: unknown subscription")

// Registry holds the standing queries of one engine or coordinator, runs
// the incremental evaluator on its change notes, and fans fired
// notifications out to attached watchers. All methods are safe for
// concurrent use; evaluation is serialized on one mutex, so crossings get
// gap-free per-subscription sequence numbers.
type Registry struct {
	mu      sync.Mutex
	cfg     Config
	target  Target
	indexer CellIndexer
	subs    map[string]*subscription
	preds   []*pred
	// lastNow is the target clock at the previous evaluation pass — the
	// advance detector.
	lastNow core.Tick
	nextID  uint64
	dropped uint64
	// scratch buffers reused across evaluation passes (all under mu).
	cellScratch []int
	itemScratch []Item
}

// subscription groups the queries registered by one Subscribe call, the
// sequence counter, the replay ring and the attached watchers.
type subscription struct {
	id       string
	queries  []uint64
	seq      uint64
	ring     []Notification
	watchers map[*Watcher]struct{}
}

// Watcher is one delivery endpoint of a subscription. Receive from C;
// a closed C means the subscription was kicked or removed — re-Attach (the
// subscription may still exist) or stop.
type Watcher struct {
	C   <-chan Notification
	ch  chan Notification
	sub *subscription
}

// pred is one registered query plus its incremental-evaluation state.
type pred struct {
	id  uint64
	sub *subscription
	q   Query
	// cells are the Count-Min cell indices the predicate's estimate reads
	// (nil until an indexing target is bound, or for learned top-k, whose
	// candidate set is open).
	cells []int
	// learned marks a top-k query without an explicit watchlist: its
	// candidates are admitted from the touched keys of ingest notes.
	learned bool
	// Threshold/rate edge state. high is the armed bit; estimates start
	// implicitly below every threshold, so the first evaluation of an
	// already-hot key is a rising edge and fires.
	high    bool
	prevVal float64
	// Top-k state: candidate scores, current membership in rank order.
	scores  map[uint64]float64
	members []Item
}

// NewRegistry builds an empty registry. Bind a target before or after
// registering queries; unbound registries accept subscriptions and start
// evaluating at bind time.
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:  cfg.withDefaults(),
		subs: make(map[string]*subscription),
	}
}

// SetLimits overrides the ring and queue capacities for subscriptions and
// watchers created after the call (testing hook for drop/resume paths).
func (r *Registry) SetLimits(ring, queue int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ring > 0 {
		r.cfg.RingSize = ring
	}
	if queue > 0 {
		r.cfg.QueueSize = queue
	}
}

// SetWindow sets the default evaluation range for queries registered without
// an explicit Range. Serving coordinators call it once they learn the window
// from the first merged root's parameters, rather than from configuration.
func (r *Registry) SetWindow(w core.Tick) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w > 0 {
		r.cfg.Window = w
	}
}

// SetStrictAdvance toggles the conservative re-check policy for pure clock
// advances (needed when the target's expiry is randomized, i.e. the rw
// engine, whose untouched estimates are not monotone under advances).
func (r *Registry) SetStrictAdvance(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.StrictAdvance = on
}

// Bind points the evaluator at its target engine and runs an initial pass
// over any queries registered while unbound. Rebinding (coordinators swap
// in a fresh merged root every refresh) goes through RefreshTarget instead,
// which also carries the changed-cell set.
func (r *Registry) Bind(t Target) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bindLocked(t)
	if t != nil {
		now := t.Now()
		if now > r.lastNow {
			r.lastNow = now
		}
		for _, p := range r.preds {
			r.evalLocked(p, t, now)
		}
	}
}

func (r *Registry) bindLocked(t Target) {
	r.target = t
	r.indexer = nil
	if t != nil {
		r.indexer, _ = t.(CellIndexer)
	}
	if r.indexer != nil {
		for _, p := range r.preds {
			r.indexLocked(p)
		}
	}
}

// indexLocked resolves the predicate's cell list against the bound indexer.
// Cell positions depend only on the sketch geometry (width, depth, seed),
// which every stripe, part and merged root of one deployment shares, so the
// list stays valid across coordinator rebinds.
func (r *Registry) indexLocked(p *pred) {
	if p.learned || r.indexer == nil || p.cells != nil {
		return
	}
	switch p.q.Kind {
	case KindThreshold, KindRate:
		p.cells = r.indexer.CellIndices(p.q.Key, make([]int, 0, 8))
	case KindTopK:
		cells := make([]int, 0, 8*len(p.q.Keys))
		for _, k := range p.q.Keys {
			cells = r.indexer.CellIndices(k, cells)
		}
		sort.Ints(cells)
		p.cells = cells
	}
}

// SubscriptionInfo is Subscribe's receipt: the subscription ID watchers
// attach with, and one query ID per registered query (in input order) that
// notifications reference.
type SubscriptionInfo struct {
	ID      string
	Queries []uint64
}

// Subscribe registers a batch of standing queries as one subscription. If a
// target is bound, each query is evaluated immediately: predicates whose
// condition already holds fire their initial notification (e.g. a threshold
// query on an already-hot key fires rising at registration).
func (r *Registry) Subscribe(queries []Query) (SubscriptionInfo, error) {
	if len(queries) == 0 {
		return SubscriptionInfo{}, fmt.Errorf("standing: subscription needs at least one query")
	}
	if len(queries) > maxQueriesPerSubscription {
		return SubscriptionInfo{}, fmt.Errorf("standing: at most %d queries per subscription, got %d", maxQueriesPerSubscription, len(queries))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, q := range queries {
		if err := q.validate(r.cfg.RequireKeys); err != nil {
			return SubscriptionInfo{}, fmt.Errorf("standing: query %d: %w", i, err)
		}
	}
	if len(r.subs) >= r.cfg.MaxSubscriptions {
		return SubscriptionInfo{}, fmt.Errorf("standing: subscription limit reached (%d)", r.cfg.MaxSubscriptions)
	}
	s := &subscription{
		id:       r.newIDLocked(),
		ring:     make([]Notification, r.cfg.RingSize),
		watchers: make(map[*Watcher]struct{}),
	}
	info := SubscriptionInfo{ID: s.id, Queries: make([]uint64, 0, len(queries))}
	for _, q := range queries {
		r.nextID++
		p := &pred{id: r.nextID, sub: s, q: q}
		if q.Kind == KindTopK {
			p.scores = make(map[uint64]float64, len(q.Keys))
			for _, k := range q.Keys {
				p.scores[k] = 0
			}
			p.learned = len(q.Keys) == 0
		}
		r.indexLocked(p)
		r.preds = append(r.preds, p)
		s.queries = append(s.queries, p.id)
		info.Queries = append(info.Queries, p.id)
	}
	r.subs[s.id] = s
	if t := r.target; t != nil {
		now := t.Now()
		for _, id := range s.queries {
			r.evalLocked(r.predByIDLocked(id), t, now)
		}
	}
	return info, nil
}

const maxQueriesPerSubscription = 1024

func (r *Registry) predByIDLocked(id uint64) *pred {
	for _, p := range r.preds {
		if p.id == id {
			return p
		}
	}
	return nil
}

func (r *Registry) newIDLocked() string {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back
			// to a counter-derived ID rather than panicking in a server.
			r.nextID++
			return fmt.Sprintf("sub-%d", r.nextID)
		}
		id := hex.EncodeToString(b[:])
		if _, taken := r.subs[id]; !taken {
			return id
		}
	}
}

// Unsubscribe removes a subscription, its queries, and closes all attached
// watchers (their streams end with a bye). Reports whether the ID existed.
func (r *Registry) Unsubscribe(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return false
	}
	delete(r.subs, id)
	kept := r.preds[:0]
	for _, p := range r.preds {
		if p.sub != s {
			kept = append(kept, p)
		}
	}
	r.preds = kept
	for w := range s.watchers {
		close(w.ch)
	}
	s.watchers = make(map[*Watcher]struct{})
	return true
}

// Kick closes every watcher of a subscription without removing it — the
// server-side connection drop (streams end; clients reconnect and resume).
func (r *Registry) Kick(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return false
	}
	for w := range s.watchers {
		close(w.ch)
	}
	s.watchers = make(map[*Watcher]struct{})
	return true
}

// Has reports whether a subscription is still registered — how a watch
// stream whose channel closed tells "reconnect later" (kicked) from "gone"
// (unsubscribed).
func (r *Registry) Has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.subs[id]
	return ok
}

// Attach registers a delivery endpoint on a subscription. With replay set,
// notifications after sequence number resume still held by the ring are
// returned for re-delivery and live delivery continues from there — the
// registry lock makes the handoff exact: nothing fired between the replay
// snapshot and the watcher becoming live. Without replay, delivery starts
// at the current sequence. start is the sequence the stream's gap
// accounting begins at.
func (r *Registry) Attach(id string, resume uint64, replay bool) (w *Watcher, missed []Notification, start uint64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return nil, nil, 0, ErrUnknownSubscription
	}
	w = &Watcher{ch: make(chan Notification, r.cfg.QueueSize), sub: s}
	w.C = w.ch
	s.watchers[w] = struct{}{}
	start = s.seq
	if replay {
		start = resume
		ringLen := uint64(len(s.ring))
		lo := resume + 1
		if s.seq > ringLen && lo < s.seq-ringLen+1 {
			lo = s.seq - ringLen + 1
		}
		for i := lo; i <= s.seq; i++ {
			if e := s.ring[(i-1)%ringLen]; e.Seq == i {
				missed = append(missed, e)
			}
		}
	}
	return w, missed, start, nil
}

// Detach unregisters a watcher (stream ended). Safe after Kick/Unsubscribe
// already removed it.
func (r *Registry) Detach(w *Watcher) {
	if w == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(w.sub.watchers, w)
}

// Stats reports registry occupancy: subscriptions, registered queries,
// attached watchers, and notifications dropped on full watcher queues.
func (r *Registry) Stats() (subs, queries, watchers int, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.subs {
		watchers += len(s.watchers)
	}
	return len(r.subs), len(r.preds), watchers, r.dropped
}

// --- Notifier hooks (ingest-side change feed) ---

// NoteKey notes one touched key (the AddN path).
func (r *Registry) NoteKey(key uint64) {
	r.noteKeys([]uint64{key})
}

// NoteEvents notes a landed batch (the AddBatch path): the touched keys are
// mapped to their cells and only intersecting predicates are re-checked.
func (r *Registry) NoteEvents(events []core.Event) {
	if len(events) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.preds) == 0 {
		r.syncClockLocked()
		return
	}
	keys := make([]uint64, len(events))
	for i := range events {
		keys[i] = events[i].Key
	}
	r.notePassLocked(r.cellSetLocked(keys), keys)
}

// NoteAdvance notes a pure clock advance (expiry only, no arrivals).
func (r *Registry) NoteAdvance() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.preds) == 0 {
		r.syncClockLocked()
		return
	}
	r.notePassLocked(changeSet{}, nil)
}

func (r *Registry) noteKeys(keys []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.preds) == 0 {
		r.syncClockLocked()
		return
	}
	r.notePassLocked(r.cellSetLocked(keys), keys)
}

// NoteCells notes externally-observed cell changes — the coordinator path
// feeds the delta stream's changed-cell indices here (via RefreshTarget).
// all marks "everything may have changed" (full pulls, whole-part swaps).
func (r *Registry) NoteCells(cells []int, all bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.preds) == 0 {
		r.syncClockLocked()
		return
	}
	set := changeSet{all: all}
	if !all {
		set.cells = make(map[int]struct{}, len(cells))
		for _, c := range cells {
			set.cells[c] = struct{}{}
		}
	}
	r.notePassLocked(set, nil)
}

// RefreshTarget atomically swaps the evaluation target (a coordinator's
// freshly merged root) and runs a pass over the accumulated changed cells.
// The old and new roots share sketch geometry, so predicate cell lists
// carry over.
func (r *Registry) RefreshTarget(t Target, cells []int, all bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bindLocked(t)
	if t == nil {
		return
	}
	if len(r.preds) == 0 {
		r.syncClockLocked()
		return
	}
	set := changeSet{all: all}
	if !all {
		set.cells = make(map[int]struct{}, len(cells))
		for _, c := range cells {
			set.cells[c] = struct{}{}
		}
	}
	r.notePassLocked(set, nil)
}

// syncClockLocked keeps the advance detector current while no queries are
// registered, so the first registered query doesn't see a phantom advance.
func (r *Registry) syncClockLocked() {
	if t := r.target; t != nil {
		if now := t.Now(); now > r.lastNow {
			r.lastNow = now
		}
	}
}

// changeSet is the per-pass description of what moved: a cell-index set, or
// the all flag when cell granularity is unavailable (no indexer bound, full
// snapshot applied, oversize delta).
type changeSet struct {
	cells map[int]struct{}
	all   bool
}

func (c changeSet) any() bool { return c.all || len(c.cells) > 0 }

// cellSetLocked maps touched keys to the set of Count-Min cells they land
// in. Without a cell indexer every touch conservatively marks everything.
func (r *Registry) cellSetLocked(keys []uint64) changeSet {
	if r.indexer == nil {
		return changeSet{all: len(keys) > 0}
	}
	set := changeSet{cells: make(map[int]struct{}, 4*len(keys))}
	for _, k := range keys {
		r.cellScratch = r.indexer.CellIndices(k, r.cellScratch[:0])
		for _, c := range r.cellScratch {
			set.cells[c] = struct{}{}
		}
	}
	return set
}

// notePassLocked is the incremental evaluation pass: admit learned top-k
// candidates from the touched keys, then re-check exactly the predicates
// the change set or the clock advance can affect.
func (r *Registry) notePassLocked(changed changeSet, keys []uint64) {
	t := r.target
	if t == nil {
		return
	}
	now := t.Now()
	advanced := now > r.lastNow
	if advanced {
		r.lastNow = now
	}
	for _, p := range r.preds {
		if p.learned && len(keys) > 0 {
			for _, k := range keys {
				if _, ok := p.scores[k]; !ok {
					p.scores[k] = 0
				}
			}
		}
		if r.affectedLocked(p, changed, advanced) {
			r.evalLocked(p, t, now)
		}
	}
}

// affectedLocked decides whether a predicate needs re-checking this pass.
// This is where the incrementality lives — and where its correctness
// argument is pinned by the oracle-equivalence tests:
//
//   - Touched (its cells intersect the change set): always re-check. Cell
//     granularity, not key granularity, so collision-induced estimate
//     changes are caught.
//   - Untouched but the clock advanced: expiry can only lower untouched
//     estimates, so a disarmed threshold stays below and is skipped; armed
//     thresholds (falling edges), rate (the preceding window shrinking can
//     raise the ratio) and top-k (relative order can shuffle) re-check.
func (r *Registry) affectedLocked(p *pred, changed changeSet, advanced bool) bool {
	var touched bool
	if changed.all {
		touched = true
	} else if p.learned || p.cells == nil {
		touched = changed.any()
	} else {
		for _, c := range p.cells {
			if _, ok := changed.cells[c]; ok {
				touched = true
				break
			}
		}
	}
	if touched {
		return true
	}
	switch p.q.Kind {
	case KindThreshold:
		return advanced && (p.high || r.cfg.StrictAdvance)
	default: // KindRate, KindTopK
		return advanced
	}
}

// rangeOf resolves a query's evaluation range: explicit Range, else the
// configured window, else the whole stream seen so far.
func (r *Registry) rangeOf(p *pred, now core.Tick) core.Tick {
	rng := p.q.Range
	if rng == 0 {
		rng = r.cfg.Window
	}
	if rng == 0 {
		rng = now
	}
	return rng
}

func (r *Registry) evalLocked(p *pred, t Target, now core.Tick) {
	switch p.q.Kind {
	case KindThreshold:
		r.evalThresholdLocked(p, t, now)
	case KindRate:
		r.evalRateLocked(p, t, now)
	case KindTopK:
		r.evalTopKLocked(p, t, now)
	}
}

func (r *Registry) evalThresholdLocked(p *pred, t Target, now core.Tick) {
	cur := t.Estimate(p.q.Key, r.rangeOf(p, now))
	high := cur >= p.q.Value
	if high != p.high {
		// Rising edges fire plain thresholds; falling edges fire Below
		// ones. The implicit prior state is "below", so registration on an
		// already-hot key is a rising edge, and a Below query arms
		// silently until the key first exceeds the level.
		if high != p.q.Below {
			r.fireLocked(p, Notification{
				Kind:   KindThreshold,
				Key:    p.q.Key,
				Value:  cur,
				Prev:   p.prevVal,
				Rising: high,
				Now:    now,
			})
		}
	}
	p.high, p.prevVal = high, cur
}

func (r *Registry) evalRateLocked(p *pred, t Target, now core.Tick) {
	rng := r.rangeOf(p, now)
	cur := t.Estimate(p.q.Key, rng)
	var from, to core.Tick
	if now > rng {
		to = now - rng
	}
	if now > 2*rng {
		from = now - 2*rng
	}
	var prev float64
	if to > from {
		prev = t.EstimateInterval(p.q.Key, from, to)
	}
	high := cur > 0 && cur >= p.q.Factor*prev && cur >= p.q.Value
	if high && !p.high {
		r.fireLocked(p, Notification{
			Kind:   KindRate,
			Key:    p.q.Key,
			Value:  cur,
			Prev:   prev,
			Rising: true,
			Now:    now,
		})
	}
	p.high, p.prevVal = high, cur
}

func (r *Registry) evalTopKLocked(p *pred, t Target, now core.Tick) {
	rng := r.rangeOf(p, now)
	scored := r.itemScratch[:0]
	for k := range p.scores {
		est := t.Estimate(k, rng)
		p.scores[k] = est
		scored = append(scored, Item{Key: k, Estimate: est})
	}
	r.itemScratch = scored
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Estimate != scored[j].Estimate {
			return scored[i].Estimate > scored[j].Estimate
		}
		return scored[i].Key < scored[j].Key
	})
	// Learned candidate sets are trimmed like the TopK tracker: keep the
	// best half of the overprovisioned bound, which always covers the
	// current membership (4k ≥ k).
	if p.learned && len(scored) > 8*p.q.K {
		for _, it := range scored[4*p.q.K:] {
			delete(p.scores, it.Key)
		}
		scored = scored[:4*p.q.K]
	}
	n := p.q.K
	if n > len(scored) {
		n = len(scored)
	}
	members := make([]Item, 0, n)
	for _, it := range scored[:n] {
		if it.Estimate > 0 {
			members = append(members, it)
		}
	}

	fire := len(members) != len(p.members)
	if !fire {
		for i := range members {
			if members[i].Key != p.members[i].Key {
				fire = true
				break
			}
		}
		if fire && !p.q.RankChanges {
			// Same size, different order — only a membership change
			// matters unless rank changes were asked for.
			fire = !sameKeySet(members, p.members)
		}
	}
	if fire {
		entered, left := membershipDiff(members, p.members)
		r.fireLocked(p, Notification{
			Kind:    KindTopK,
			Now:     now,
			Top:     members,
			Entered: entered,
			Left:    left,
		})
	}
	p.members = members
}

func sameKeySet(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[uint64]struct{}, len(a))
	for _, it := range a {
		in[it.Key] = struct{}{}
	}
	for _, it := range b {
		if _, ok := in[it.Key]; !ok {
			return false
		}
	}
	return true
}

func membershipDiff(cur, prev []Item) (entered, left []uint64) {
	was := make(map[uint64]struct{}, len(prev))
	for _, it := range prev {
		was[it.Key] = struct{}{}
	}
	is := make(map[uint64]struct{}, len(cur))
	for _, it := range cur {
		is[it.Key] = struct{}{}
		if _, ok := was[it.Key]; !ok {
			entered = append(entered, it.Key)
		}
	}
	for _, it := range prev {
		if _, ok := is[it.Key]; !ok {
			left = append(left, it.Key)
		}
	}
	sort.Slice(entered, func(i, j int) bool { return entered[i] < entered[j] })
	sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
	return entered, left
}

// fireLocked stamps, rings and fans out one notification. The watcher send
// is non-blocking: a full queue drops (counted; the stream's gap accounting
// surfaces it to that watcher as a dropped marker) so delivery can never
// stall the mutating goroutine.
func (r *Registry) fireLocked(p *pred, n Notification) {
	s := p.sub
	s.seq++
	n.Seq = s.seq
	n.Query = p.id
	n.At = time.Now().UnixNano()
	s.ring[(s.seq-1)%uint64(len(s.ring))] = n
	for w := range s.watchers {
		select {
		case w.ch <- n:
		default:
			r.dropped++
		}
	}
}
