// Package standing is the continuous-query subsystem of the repository:
// a registry of standing queries over a sliding-window sketch engine —
// threshold crossings on window counts, top-k membership/rank changes, and
// windowed rate-of-change — evaluated incrementally as mutations land, and
// a bounded fan-out hub pushing the resulting notifications to any number
// of subscribers over Server-Sent Events.
//
// # Incremental evaluation
//
// The pull-based query surface answers "what is the count now"; a standing
// query answers "tell me when the count crosses X" without anyone polling.
// The evaluator never rebuilds a merged view and never scans the key
// universe. Instead it is driven by the engine's own change feed:
//
//   - On an ingest engine (Sharded), every mutation path notes the touched
//     keys (the Notifier hook). Keys map to their d Count-Min cells, and
//     only predicates whose cells intersect the touched set are re-checked
//     — which also catches crossings caused by hash collisions, where
//     another key's arrivals inflate a watched key's estimate.
//   - On a coordinator, the delta-snapshot protocol's cell-replacement
//     stream (core.DeltaState) reports exactly which cells changed since
//     the previous pull; predicates are re-checked by cell intersection
//     after each refresh.
//   - A pure clock advance (expiry, no arrivals) re-checks only the
//     predicates it can affect: estimates of untouched keys are
//     non-increasing under expiry, so a below-threshold predicate cannot
//     rise and is skipped; armed (above-threshold) predicates, rate
//     predicates and top-k predicates are re-checked. (For EH the
//     monotonicity argument holds cell by cell. DW estimates can *rise*
//     when expiry pops a wave position, but the engines report every
//     expiry-mutated cell through the same change feed as arrivals —
//     core.Sketch advances its banks with AdvanceAllNoting — so such
//     cells are "touched", never skipped, and the fast path stays safe.
//     Randomized waves resample at level switches, which perturbs
//     untouched cells' estimates without mutating them; Config's
//     StrictAdvance disables the skip for those deployments.)
//
// Evaluation runs synchronously on the mutating goroutine — after the
// engine's own locks are released — so the fired crossings are a
// deterministic function of the batch sequence (the oracle-equivalence
// tests pin this). Delivery is asynchronous: firing appends to a
// per-subscription ring and does a non-blocking send to each attached
// watcher, so a slow subscriber drops notifications (surfaced to it as a
// gap marker) rather than ever blocking ingest.
//
// # Delivery contract
//
// At-least-once per crossing: every fired crossing reaches every attached
// watcher that keeps up, and survives reconnection via the per-subscription
// sequence number (resume replays from the retained ring). A watcher that
// falls behind its buffered queue, or resumes past the ring horizon, loses
// the oldest notifications and receives an explicit dropped marker naming
// how many it missed — never silently.
package standing

import (
	"fmt"

	"ecmsketch/internal/core"
)

// Kind names a standing-query predicate type.
type Kind uint8

const (
	// KindThreshold fires when a key's windowed estimate crosses Value:
	// on the rising edge (below → at-or-above), or on the falling edge
	// when Below is set.
	KindThreshold Kind = iota + 1
	// KindTopK fires when the top-K membership over the candidate set
	// changes (or, with RankChanges, when the rank order changes).
	KindTopK
	// KindRate fires on the rising edge of window-over-window growth: the
	// current window's estimate is at least Factor times the preceding
	// (equal-length) window's, and at least Value (the noise floor).
	KindRate

	// KindDropped is never stored by the registry; it is the client-side
	// representation of a delivery gap marker (see Notification.Missed).
	KindDropped Kind = 0xFF
)

// String names the kind on the wire ("threshold", "topk", "rate").
func (k Kind) String() string {
	switch k {
	case KindThreshold:
		return "threshold"
	case KindTopK:
		return "topk"
	case KindRate:
		return "rate"
	case KindDropped:
		return "dropped"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// parseKind is String's inverse for the subscribe wire format.
func parseKind(s string) (Kind, error) {
	switch s {
	case "threshold":
		return KindThreshold, nil
	case "topk":
		return KindTopK, nil
	case "rate":
		return KindRate, nil
	}
	return 0, fmt.Errorf("unknown query kind %q (want threshold, topk or rate)", s)
}

// Query is one standing query. Zero Range means the registry's default
// window (the engine's whole window).
type Query struct {
	Kind Kind
	// Key is the watched item for threshold and rate queries.
	Key uint64
	// Range is the window suffix (in ticks) the predicate evaluates over.
	Range core.Tick
	// Value is the threshold level (KindThreshold, required positive) or
	// the minimum current-window count for a rate alert (KindRate,
	// optional noise floor).
	Value float64
	// Below makes a threshold query fire on the falling edge instead.
	Below bool
	// Factor is the window-over-window growth ratio of a rate query.
	Factor float64
	// K is the membership size of a top-k query.
	K int
	// Keys is the explicit candidate watchlist of a top-k query. Optional
	// on ingest engines (candidates are then learned from the touched
	// keys, like the TopK tracker); required on coordinator surfaces,
	// which observe cell deltas, never raw keys.
	Keys []uint64
	// RankChanges additionally fires top-k on rank-order changes among
	// unchanged membership.
	RankChanges bool
}

// maxTopKCandidates bounds explicit watchlists and learned candidate sets.
const maxTopKCandidates = 4096

// validate rejects malformed queries at registration, not at evaluation.
func (q Query) validate(requireKeys bool) error {
	switch q.Kind {
	case KindThreshold:
		if !(q.Value > 0) {
			return fmt.Errorf("threshold query needs a positive value, got %v", q.Value)
		}
	case KindRate:
		if !(q.Factor > 0) {
			return fmt.Errorf("rate query needs a positive factor, got %v", q.Factor)
		}
		if q.Value < 0 {
			return fmt.Errorf("rate query floor must be non-negative, got %v", q.Value)
		}
	case KindTopK:
		if q.K <= 0 || q.K > maxTopKCandidates {
			return fmt.Errorf("top-k query needs k in [1,%d], got %d", maxTopKCandidates, q.K)
		}
		if len(q.Keys) > maxTopKCandidates {
			return fmt.Errorf("top-k watchlist holds %d keys, at most %d", len(q.Keys), maxTopKCandidates)
		}
		if requireKeys && len(q.Keys) == 0 {
			return fmt.Errorf("top-k queries on this surface need an explicit keys watchlist (coordinators see cell deltas, not raw keys)")
		}
	default:
		return fmt.Errorf("unknown query kind %d", q.Kind)
	}
	return nil
}

// Item is one ranked member of a top-k notification.
type Item struct {
	Key      uint64
	Estimate float64
}

// Notification is one fired standing-query event. Seq is the
// per-subscription sequence number (1-based, gap-free per subscription) the
// resume protocol is built on; At is the wall-clock fire time in Unix
// nanoseconds, carried for delivery-latency measurement and not part of the
// deterministic evaluation contract.
type Notification struct {
	Seq    uint64
	Query  uint64
	Kind   Kind
	Key    uint64
	Value  float64
	Prev   float64
	Rising bool
	Now    core.Tick
	At     int64
	// Top, Entered, Left carry top-k results: the current membership in
	// rank order and the keys that entered/left since the last firing.
	Top     []Item
	Entered []uint64
	Left    []uint64
	// Missed is non-zero only on client-side gap markers (KindDropped):
	// the number of notifications lost to a slow consumer or an
	// out-of-horizon resume.
	Missed uint64
}

// Target is what the evaluator needs from the engine it watches: point and
// interval estimates plus the clock. Sharded, *core.Sketch (a coordinator's
// merged root) and SafeSketch all satisfy it.
type Target interface {
	Estimate(key uint64, r core.Tick) float64
	EstimateInterval(key uint64, from, to core.Tick) float64
	Now() core.Tick
}

// CellIndexer is the optional half of the target contract that makes
// evaluation cell-granular: it maps a key to the d Count-Min cells its
// estimate is read from. Targets without it degrade to re-checking every
// predicate whenever anything was touched — correct, never required.
type CellIndexer interface {
	CellIndices(key uint64, dst []int) []int
}

// Config configures a Registry.
type Config struct {
	// Window is the default Range of queries that leave it zero — the
	// engine's window length.
	Window core.Tick
	// RingSize is the per-subscription replay buffer (notifications
	// retained for reconnect-with-resume). Default 1024.
	RingSize int
	// QueueSize is the per-watcher buffered delivery queue; a watcher
	// whose queue is full drops (and later sees a gap marker). Default 256.
	QueueSize int
	// MaxSubscriptions bounds registry memory. Default 16384.
	MaxSubscriptions int
	// RequireKeys makes top-k queries demand an explicit watchlist —
	// set on coordinator surfaces, which never observe raw keys.
	RequireKeys bool
	// StrictAdvance re-checks every predicate on pure clock advances,
	// for engines whose estimates can change on cells the change feed
	// does not report as mutated. Only the randomized-wave algorithm
	// needs it (sampling noise at level switches); EH is monotone under
	// expiry, and DW's expiry-driven rises are reported cell-granularly
	// through the change feed (window.AdvanceAllNoting), so both run the
	// fast path — below-threshold predicates skipped on advances — with
	// StrictAdvance off.
	StrictAdvance bool
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.MaxSubscriptions <= 0 {
		c.MaxSubscriptions = 16384
	}
	return c
}
