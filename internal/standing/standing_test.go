package standing

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ecmsketch/internal/core"
)

// fakeTarget is a hand-steered evaluation target: tests set estimates and
// the clock directly, so predicate semantics are pinned without sketch
// error in the way. It deliberately does not implement CellIndexer — every
// note conservatively re-checks everything, which is the documented
// no-indexer degradation.
type fakeTarget struct {
	now  core.Tick
	est  map[uint64]float64
	prev map[uint64]float64 // EstimateInterval answers, keyed by item
}

func (f *fakeTarget) Estimate(key uint64, r core.Tick) float64 { return f.est[key] }
func (f *fakeTarget) EstimateInterval(key uint64, from, to core.Tick) float64 {
	return f.prev[key]
}
func (f *fakeTarget) Now() core.Tick { return f.now }

func newTestRegistry(t *testing.T, ft *fakeTarget) *Registry {
	t.Helper()
	r := NewRegistry(Config{Window: 100})
	r.Bind(ft)
	return r
}

func drain(w *Watcher) []Notification {
	var out []Notification
	for {
		select {
		case n, ok := <-w.C:
			if !ok {
				return out
			}
			out = append(out, n)
		default:
			return out
		}
	}
}

func mustSubscribe(t *testing.T, r *Registry, qs ...Query) (SubscriptionInfo, *Watcher) {
	t.Helper()
	info, err := r.Subscribe(qs)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	w, _, _, err := r.Attach(info.ID, 0, false)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return info, w
}

func TestThresholdEdges(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 10}}
	r := newTestRegistry(t, ft)

	// Registration on an already-hot key is a rising edge and fires; the
	// watcher attached after Subscribe must replay it to see it, so attach
	// first via a second subscription order: subscribe, then read the ring.
	info, err := r.Subscribe([]Query{{Kind: KindThreshold, Key: 1, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	w, missed, _, err := r.Attach(info.ID, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(missed) != 1 || !missed[0].Rising || missed[0].Value != 10 {
		t.Fatalf("want initial rising fire at 10, got %+v", missed)
	}

	// Staying high: no re-fire.
	ft.est[1] = 12
	r.NoteKey(1)
	if got := drain(w); len(got) != 0 {
		t.Fatalf("no edge, but fired: %+v", got)
	}
	// Falling below: plain threshold stays silent, but disarms.
	ft.est[1] = 2
	r.NoteKey(1)
	if got := drain(w); len(got) != 0 {
		t.Fatalf("falling edge fired a plain threshold: %+v", got)
	}
	// Crossing up again: fires.
	ft.est[1] = 7
	r.NoteKey(1)
	got := drain(w)
	if len(got) != 1 || !got[0].Rising || got[0].Value != 7 {
		t.Fatalf("want rising fire at 7, got %+v", got)
	}
	if got[0].Query != info.Queries[0] {
		t.Fatalf("notification names query %d, want %d", got[0].Query, info.Queries[0])
	}
}

func TestThresholdBelowFiresOnFallingEdge(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 10}}
	r := newTestRegistry(t, ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindThreshold, Key: 1, Value: 5, Below: true})
	// Arming (already above) is silent for a Below query.
	if got := drain(w); len(got) != 0 {
		t.Fatalf("arming fired: %+v", got)
	}
	ft.est[1] = 1
	r.NoteKey(1)
	got := drain(w)
	if len(got) != 1 || got[0].Rising || got[0].Value != 1 {
		t.Fatalf("want falling fire at 1, got %+v", got)
	}
}

func TestDisarmedThresholdSkippedOnAdvance(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 1}}
	r := newTestRegistry(t, ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindThreshold, Key: 1, Value: 5})
	// A pure advance must not even evaluate a disarmed threshold: plant an
	// above-threshold estimate, advance, and verify nothing fires (the
	// registry skipped it; expiry can only lower untouched estimates, so
	// this situation cannot arise on a real monotone engine).
	ft.est[1] = 100
	ft.now = 20
	r.NoteAdvance()
	if got := drain(w); len(got) != 0 {
		t.Fatalf("disarmed threshold evaluated on advance: %+v", got)
	}
	// A touch does evaluate it.
	r.NoteKey(1)
	if got := drain(w); len(got) != 1 {
		t.Fatalf("touch did not fire: %+v", got)
	}
}

func TestStrictAdvanceRechecksDisarmed(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 1}}
	r := NewRegistry(Config{Window: 100, StrictAdvance: true})
	r.Bind(ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindThreshold, Key: 1, Value: 5})
	ft.est[1] = 100
	ft.now = 20
	r.NoteAdvance()
	if got := drain(w); len(got) != 1 {
		t.Fatalf("strict advance did not re-check disarmed threshold: %+v", got)
	}
}

func TestRateFires(t *testing.T) {
	ft := &fakeTarget{now: 300, est: map[uint64]float64{1: 4}, prev: map[uint64]float64{1: 10}}
	r := newTestRegistry(t, ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindRate, Key: 1, Range: 100, Factor: 2, Value: 5})
	if got := drain(w); len(got) != 0 {
		t.Fatalf("fired below factor: %+v", got)
	}
	// cur 25 >= 2*prev(10) and >= Value(5): fires once, rising only.
	ft.est[1] = 25
	r.NoteKey(1)
	got := drain(w)
	if len(got) != 1 || got[0].Value != 25 || got[0].Prev != 10 {
		t.Fatalf("want rate fire cur=25 prev=10, got %+v", got)
	}
	// Still high: no re-fire until it drops and spikes again.
	ft.est[1] = 30
	r.NoteKey(1)
	if got := drain(w); len(got) != 0 {
		t.Fatalf("re-fired while high: %+v", got)
	}
	ft.est[1] = 6 // below factor*prev: disarms
	r.NoteKey(1)
	ft.est[1] = 40
	r.NoteKey(1)
	if got := drain(w); len(got) != 1 {
		t.Fatalf("second spike did not fire: %+v", got)
	}
}

func TestTopKMembership(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 5, 2: 3, 3: 1}}
	r := newTestRegistry(t, ft)
	info, err := r.Subscribe([]Query{{Kind: KindTopK, K: 2, Keys: []uint64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	w, missed, _, err := r.Attach(info.ID, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// Initial membership {1,2} fires at registration.
	if len(missed) != 1 || len(missed[0].Top) != 2 || missed[0].Top[0].Key != 1 || missed[0].Top[1].Key != 2 {
		t.Fatalf("want initial top [1 2], got %+v", missed)
	}
	// Key 3 overtakes: entered/left diff.
	ft.est[3] = 10
	r.NoteKey(3)
	got := drain(w)
	if len(got) != 1 {
		t.Fatalf("membership change did not fire: %+v", got)
	}
	n := got[0]
	if len(n.Entered) != 1 || n.Entered[0] != 3 || len(n.Left) != 1 || n.Left[0] != 2 {
		t.Fatalf("want entered [3] left [2], got entered %v left %v", n.Entered, n.Left)
	}
	if n.Top[0].Key != 3 || n.Top[1].Key != 1 {
		t.Fatalf("want top [3 1], got %+v", n.Top)
	}
	// Rank swap without membership change: silent unless RankChanges.
	ft.est[1], ft.est[3] = 20, 10
	r.NoteKey(1)
	if got := drain(w); len(got) != 0 {
		t.Fatalf("rank-only change fired without RankChanges: %+v", got)
	}
}

func TestTopKRankChanges(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 5, 2: 3}}
	r := newTestRegistry(t, ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindTopK, K: 2, Keys: []uint64{1, 2}, RankChanges: true})
	ft.est[2] = 9
	r.NoteKey(2)
	got := drain(w)
	if len(got) != 1 || got[0].Top[0].Key != 2 {
		t.Fatalf("rank change did not fire with RankChanges: %+v", got)
	}
}

func TestLearnedTopKAdmitsTouchedKeys(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{7: 4}}
	r := newTestRegistry(t, ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindTopK, K: 3})
	ft.est[7] = 4
	r.NoteKey(7)
	got := drain(w)
	if len(got) != 1 || len(got[0].Top) != 1 || got[0].Top[0].Key != 7 {
		t.Fatalf("learned candidate not admitted: %+v", got)
	}
}

func TestRequireKeysRejectsLearnedTopK(t *testing.T) {
	r := NewRegistry(Config{Window: 100, RequireKeys: true})
	if _, err := r.Subscribe([]Query{{Kind: KindTopK, K: 3}}); err == nil {
		t.Fatal("learned top-k accepted on a RequireKeys registry")
	}
	if _, err := r.Subscribe([]Query{{Kind: KindTopK, K: 3, Keys: []uint64{1, 2}}}); err != nil {
		t.Fatalf("explicit top-k rejected: %v", err)
	}
}

func TestValidation(t *testing.T) {
	r := NewRegistry(Config{Window: 100})
	bad := []Query{
		{Kind: KindThreshold, Key: 1},              // zero threshold
		{Kind: KindRate, Key: 1},                   // zero factor
		{Kind: KindTopK},                           // zero K
		{Kind: KindTopK, K: maxTopKCandidates + 1}, // oversize K
		{Kind: Kind(99), Key: 1, Value: 1},         // unknown kind
		{Kind: KindThreshold, Key: 1, Value: -1},   // negative
	}
	for i, q := range bad {
		if _, err := r.Subscribe([]Query{q}); err == nil {
			t.Errorf("bad query %d accepted: %+v", i, q)
		}
	}
	if _, err := r.Subscribe(nil); err == nil {
		t.Error("empty subscription accepted")
	}
}

func TestRingReplayAndGap(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 0}}
	r := NewRegistry(Config{Window: 100, RingSize: 4})
	r.Bind(ft)
	info, err := r.Subscribe([]Query{{Kind: KindThreshold, Key: 1, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Fire 6 crossings: seqs 1..6; the 4-slot ring retains 3..6.
	for i := 0; i < 6; i++ {
		ft.est[1] = 10
		r.NoteKey(1)
		ft.est[1] = 0
		r.NoteKey(1)
	}
	w, missed, start, err := r.Attach(info.ID, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Detach(w)
	if start != 0 {
		t.Fatalf("start = %d, want the resume point 0", start)
	}
	if len(missed) != 4 {
		t.Fatalf("replay returned %d notifications, want the 4 the ring holds", len(missed))
	}
	for i, n := range missed {
		if want := uint64(3 + i); n.Seq != want {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, n.Seq, want)
		}
	}
	// Resuming inside the ring horizon replays exactly the tail.
	w2, missed2, _, err := r.Attach(info.ID, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Detach(w2)
	if len(missed2) != 2 || missed2[0].Seq != 5 || missed2[1].Seq != 6 {
		t.Fatalf("resume=4 replayed %+v, want seqs [5 6]", missed2)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{1: 0}}
	r := NewRegistry(Config{Window: 100, QueueSize: 1})
	r.Bind(ft)
	_, w := mustSubscribe(t, r, Query{Kind: KindThreshold, Key: 1, Value: 5})
	for i := 0; i < 3; i++ {
		ft.est[1] = 10
		r.NoteKey(1)
		ft.est[1] = 0
		r.NoteKey(1)
	}
	if _, _, _, dropped := r.Stats(); dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (queue of 1, 3 fires, nothing drained)", dropped)
	}
	got := drain(w)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("queued notification = %+v, want the first fire", got)
	}
}

func TestUnsubscribeClosesWatchers(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{}}
	r := newTestRegistry(t, ft)
	info, w := mustSubscribe(t, r, Query{Kind: KindThreshold, Key: 1, Value: 5})
	if !r.Unsubscribe(info.ID) {
		t.Fatal("Unsubscribe reported unknown ID")
	}
	if _, ok := <-w.C; ok {
		t.Fatal("watcher channel still open after Unsubscribe")
	}
	if r.Has(info.ID) {
		t.Fatal("Has true after Unsubscribe")
	}
	if _, _, _, err := r.Attach(info.ID, 0, false); err == nil {
		t.Fatal("Attach succeeded after Unsubscribe")
	}
}

func TestKickClosesWatchersButKeepsSubscription(t *testing.T) {
	ft := &fakeTarget{now: 10, est: map[uint64]float64{}}
	r := newTestRegistry(t, ft)
	info, w := mustSubscribe(t, r, Query{Kind: KindThreshold, Key: 1, Value: 5})
	if !r.Kick(info.ID) {
		t.Fatal("Kick reported unknown ID")
	}
	if _, ok := <-w.C; ok {
		t.Fatal("watcher channel still open after Kick")
	}
	if !r.Has(info.ID) {
		t.Fatal("subscription gone after Kick")
	}
	if _, _, _, err := r.Attach(info.ID, 0, false); err != nil {
		t.Fatalf("re-Attach after Kick: %v", err)
	}
}

// flipTarget is a race-safe target whose one key flips between hot and
// cold, driving threshold edges from a concurrent storm goroutine.
type flipTarget struct{ hot atomic.Bool }

func (f *flipTarget) Estimate(key uint64, r core.Tick) float64 {
	if f.hot.Load() {
		return 10
	}
	return 0
}
func (f *flipTarget) EstimateInterval(key uint64, from, to core.Tick) float64 { return 0 }
func (f *flipTarget) Now() core.Tick                                          { return 10 }

// TestLifecycleChurnRace exercises concurrent subscribe/attach/detach/
// unsubscribe against a notification storm; run with -race.
func TestLifecycleChurnRace(t *testing.T) {
	ft := &flipTarget{}
	r := NewRegistry(Config{Window: 100})
	r.Bind(ft)
	stop := make(chan struct{})
	var storm, churn sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ft.hot.Store(!ft.hot.Load())
			r.NoteKey(1)
			r.NoteAdvance()
		}
	}()
	for g := 0; g < 8; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for i := 0; i < 50; i++ {
				info, err := r.Subscribe([]Query{{Kind: KindThreshold, Key: 1, Value: 5}})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				w, _, _, err := r.Attach(info.ID, 0, i%2 == 0)
				if err != nil {
					t.Errorf("goroutine %d: Attach: %v", g, err)
					return
				}
				drain(w)
				if i%3 == 0 {
					r.Kick(info.ID)
				}
				r.Detach(w)
				if !r.Unsubscribe(info.ID) {
					t.Errorf("goroutine %d: Unsubscribe lost the subscription", g)
					return
				}
			}
		}(g)
	}
	churn.Wait()
	close(stop)
	storm.Wait()
	if subs, _, _, _ := r.Stats(); subs != 0 {
		t.Fatalf("%d subscriptions leaked", subs)
	}
}

func TestNotificationJSONRoundTrip(t *testing.T) {
	for _, n := range []Notification{
		{Seq: 3, Query: 7, Kind: KindThreshold, Key: 1<<63 + 5, Value: 12.5, Prev: 1, Rising: true, Now: 1 << 62, At: 1234567890123456789},
		{Seq: 9, Query: 2, Kind: KindTopK, Now: 44, Top: []Item{{Key: 18446744073709551615, Estimate: 2.5}, {Key: 3, Estimate: 1}}, Entered: []uint64{3}, Left: []uint64{9}},
		{Seq: 1, Query: 1, Kind: KindRate, Key: 8, Value: 30, Prev: 10, Rising: true, Now: 100},
	} {
		enc := AppendNotificationJSON(nil, n)
		dec, err := ParseNotificationJSON(enc)
		if err != nil {
			t.Fatalf("parse %s: %v", enc, err)
		}
		if fmt.Sprintf("%+v", dec) != fmt.Sprintf("%+v", n) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v\n enc %s", n, dec, enc)
		}
	}
}
