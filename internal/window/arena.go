package window

import (
	"fmt"
	"math"
)

// This file implements the flat-memory exponential-histogram engine: a bank
// of EH counters whose buckets all live in one contiguous arena instead of
// one growable deque per (cell, level).
//
// The per-object layout (type EH) allocates a []bucket ring per size class of
// every counter — for a d×w ECM-sketch that is thousands of tiny heap
// objects, and every Add chases counter pointer → level slice → ring buffer
// before touching a bucket. The bank replaces all of that with three slabs:
//
//	cells []ehCell  — one fixed-size record per counter (clock, total, #levels)
//	dirs  []ehLevel — the level directories: cell i's levels are the
//	                  fixed-stride run dirs[i*maxLv : i*maxLv+nLv]
//	slab  []bucket  — ring storage, carved into fixed-size chunks of
//	                  stride = capPerLv+1 buckets, one chunk per live level
//
// A level's ring can never outgrow its chunk: the EH cascade fires as soon as
// a size class exceeds capPerLv buckets, so occupancy peaks at capPerLv+1 —
// exactly the chunk size. Chunks are handed out from the end of the slab and
// never freed (an empty level keeps its chunk for refills, matching the old
// deques, which never shrank either).
//
// The algorithm is deliberately identical to type EH — same insert cascade,
// same expiry, same estimate arithmetic in the same order — so a bank cell
// and an EH fed the same stream return bit-identical answers and marshal to
// byte-identical encodings. Tests assert both.

// ehCell is the per-counter header of a bank.
type ehCell struct {
	total   uint64 // sum of live bucket sizes
	now     Tick   // latest tick observed by this cell
	oldEnd  Tick   // cached end of the globally oldest bucket; emptyOldEnd when none
	oldLv   int16  // cached level holding that bucket (highest non-empty)
	nLv     int16  // live size classes; levels [0, nLv) of the directory
	started bool
}

// emptyOldEnd marks an empty cell's oldEnd cache: no bucket can ever expire
// against it, so the expiry fast path short-circuits. The zero value (a
// fresh or Reset cell) conservatively forces a recompute instead.
const emptyOldEnd = ^Tick(0)

// ehLevel locates one size class's ring inside the slab.
type ehLevel struct {
	off  int32  // ring storage: slab[off : off+stride]
	head uint16 // offset of the oldest bucket within the ring
	n    uint16 // live buckets in the ring
}

// EHBank is a bank of n exponential-histogram counters backed by one
// contiguous bucket arena. Cells are addressed by index; an ECM-sketch lays
// its d×w counters out row-major and addresses cell j*w+i.
//
// EHBank is not safe for concurrent use.
type EHBank struct {
	cfg      Config
	capPerLv int // merge threshold per size class: ⌈k/2⌉+2
	stride   int // ring capacity per level chunk: capPerLv+1
	maxLv    int // directory stride; grows (rarely) when any cell exceeds it
	cells    []ehCell
	dirs     []ehLevel
	slab     []bucket

	// version counts arrival-content mutations of the whole bank, and
	// vers[i] records the bank version at cell i's last such mutation —
	// the change tracking behind delta snapshots (only cells with
	// vers[i] > cursor ship). Expiry and Advance deliberately do not bump:
	// they are pure functions of (content, clock), so a receiver holding
	// the same content replays them exactly by advancing to the same tick.
	version uint64
	vers    []uint64
}

// NewEHBank constructs a bank of n empty exponential histograms, each with
// relative error cfg.Epsilon over a window of cfg.Length ticks.
func NewEHBank(cfg Config, n int) (*EHBank, error) {
	if err := cfg.Validate(AlgoEH); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("window: bank size must be positive, got %d", n)
	}
	k := int(math.Ceil(1 / cfg.Epsilon))
	capPerLv := (k+1)/2 + 2
	const initialMaxLv = 4
	return &EHBank{
		cfg:      cfg,
		capPerLv: capPerLv,
		stride:   capPerLv + 1,
		maxLv:    initialMaxLv,
		cells:    make([]ehCell, n),
		dirs:     make([]ehLevel, n*initialMaxLv),
		vers:     make([]uint64, n),
	}, nil
}

// Version reports the bank's arrival-mutation counter: it grows on every
// content change by arrival (AddN with n > 0, restores, merges) and is the
// scalar a delta cursor compares against. Advance-only clock movement does
// not bump it.
func (b *EHBank) Version() uint64 { return b.version }

// CellChangedSince reports whether cell i's content changed by arrival after
// bank version since. Cells whose content only moved through expiry are not
// reported: expiry is deterministically replayed by advancing the receiver's
// copy to the same clock.
func (b *EHBank) CellChangedSince(i int, since uint64) bool { return b.vers[i] > since }

// noteCellMutation stamps cell i as changed at a fresh bank version.
func (b *EHBank) noteCellMutation(i int) {
	b.version++
	b.vers[i] = b.version
}

// VersionVector exports the bank's change-tracking state — the
// arrival-mutation counter plus the per-cell last-modified versions. The
// wire encodings deliberately omit versions (they are engine-instance
// state, meaningful only next to the epoch a cursor is bound to); durable
// snapshots persist them as a sidecar so a restarted engine keeps honoring
// cursors issued before the crash. The returned slice is a copy.
func (b *EHBank) VersionVector() (uint64, []uint64) {
	return b.version, append([]uint64(nil), b.vers...)
}

// RestoreVersionVector installs previously exported change-tracking state.
func (b *EHBank) RestoreVersionVector(version uint64, vers []uint64) error {
	if len(vers) != len(b.vers) {
		return fmt.Errorf("window: version vector has %d cells, bank has %d", len(vers), len(b.vers))
	}
	for i, v := range vers {
		if v > version {
			return fmt.Errorf("window: cell %d version %d exceeds bank version %d", i, v, version)
		}
	}
	b.version = version
	copy(b.vers, vers)
	return nil
}

// Config returns the shared configuration of the bank's cells.
func (b *EHBank) Config() Config { return b.cfg }

// Len reports the number of cells.
func (b *EHBank) Len() int { return len(b.cells) }

// level returns the lv-th size class of cell i; it must exist.
func (b *EHBank) level(i, lv int) *ehLevel { return &b.dirs[i*b.maxLv+lv] }

// at returns the j-th bucket (from the oldest) of a level's ring.
func (b *EHBank) at(d *ehLevel, j int) bucket {
	p := int(d.head) + j
	if p >= b.stride {
		p -= b.stride
	}
	return b.slab[int(d.off)+p]
}

func (b *EHBank) pushBack(d *ehLevel, bk bucket) {
	p := int(d.head) + int(d.n)
	if p >= b.stride {
		p -= b.stride
	}
	b.slab[int(d.off)+p] = bk
	d.n++
}

func (b *EHBank) popFront(d *ehLevel) bucket {
	bk := b.slab[int(d.off)+int(d.head)]
	d.head++
	if int(d.head) == b.stride {
		d.head = 0
	}
	d.n--
	return bk
}

// front returns the oldest bucket of a level's ring.
func (b *EHBank) front(d *ehLevel) bucket {
	return b.slab[int(d.off)+int(d.head)]
}

// searchEndAfter returns the index (from the front) of the oldest bucket of
// the level with end > s, or d.n if none.
func (b *EHBank) searchEndAfter(d *ehLevel, s Tick) int {
	lo, hi := 0, int(d.n)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.at(d, mid).end > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// addLevel appends one size class to cell i, carving a fresh chunk from the
// end of the slab.
func (b *EHBank) addLevel(i int) {
	c := &b.cells[i]
	if int(c.nLv) == b.maxLv {
		b.growDirs()
	}
	need := len(b.slab) + b.stride
	if cap(b.slab) >= need {
		// Reslicing may expose stale buckets from before a Reset; harmless,
		// since ring entries are always written before they are read.
		b.slab = b.slab[:need]
	} else {
		grown := make([]bucket, need, need*2)
		copy(grown, b.slab)
		b.slab = grown
	}
	b.dirs[i*b.maxLv+int(c.nLv)] = ehLevel{off: int32(need - b.stride)}
	c.nLv++
}

// growDirs doubles the per-cell directory stride, re-laying the directory
// slab out. This happens O(log log total) times over a bank's lifetime.
func (b *EHBank) growDirs() {
	newMax := b.maxLv * 2
	nd := make([]ehLevel, len(b.cells)*newMax)
	for i := range b.cells {
		copy(nd[i*newMax:], b.dirs[i*b.maxLv:i*b.maxLv+int(b.cells[i].nLv)])
	}
	b.dirs = nd
	b.maxLv = newMax
}

// Add registers one arrival at tick t in cell i.
func (b *EHBank) Add(i int, t Tick) { b.AddN(i, t, 1) }

// AddN registers n simultaneous arrivals at tick t in cell i. The semantics
// mirror EH.AddN exactly: ticks are 1-based, slight regressions are clamped
// to the cell's clock, and the n arrivals insert as n unit buckets with
// cascading merges.
func (b *EHBank) AddN(i int, t Tick, n uint64) {
	if n == 0 {
		b.Advance(i, t)
		return
	}
	c := &b.cells[i]
	if t == 0 {
		t = 1 // ticks are 1-based; tick 0 means "before the stream"
	}
	if t < c.now {
		t = c.now // clamp slight out-of-order arrivals
	}
	c.now = t
	if !c.started || c.total == 0 {
		c.started = true
		// The unit about to be inserted becomes the globally oldest bucket.
		c.oldEnd = t
		c.oldLv = 0
	}
	if c.nLv == 0 {
		b.addLevel(i)
	}
	for u := uint64(0); u < n; u++ {
		// Inlined unit insert into level 0; the cascade fires only when the
		// class actually overflows (roughly every other insert).
		d := &b.dirs[i*b.maxLv]
		p := int(d.head) + int(d.n)
		if p >= b.stride {
			p -= b.stride
		}
		b.slab[int(d.off)+p] = bucket{start: t, end: t}
		d.n++
		c.total++
		if int(d.n) > b.capPerLv {
			b.cascade(i, c, 0)
		}
	}
	b.noteCellMutation(i)
	b.expire(c, i)
}

// AddBatchRow applies one row of a validated batch: event e inserts ns[e]
// arrivals at ticks[e] into cell base+pos[e]. A nil ns means every event is
// a unit arrival, letting the sweep skip the multiplicity loop entirely.
// Ticks must already be non-decreasing and ≥ 1, and multiplicities ≥ 1 (the
// engine-level batch validation guarantees this). The body is AddN inlined —
// the position, tick and multiplicity arrays stream sequentially, the bank's
// slices live in registers across events, and no per-event call crosses the
// package boundary. Expiry and version stamping run once per event, exactly
// where AddN runs them, so bucket structure and delta-cursor versions stay
// byte-identical to the sequential path.
func (b *EHBank) AddBatchRow(base int, pos []int32, ticks []Tick, ns []uint64) {
	stride := b.stride
	capLv := b.capPerLv
	winLen := b.cfg.Length
	cells := b.cells
	maxLv := b.maxLv
	dirs := b.dirs
	slab := b.slab
	for e, p := range pos {
		i := base + int(p)
		c := &cells[i]
		t := ticks[e]
		if t < c.now {
			t = c.now // clamp slight out-of-order arrivals, as AddN does
		}
		c.now = t
		if !c.started || c.total == 0 {
			c.started = true
			c.oldEnd = t
			c.oldLv = 0
		}
		if c.nLv == 0 {
			b.addLevel(i)
			maxLv, dirs, slab = b.maxLv, b.dirs, b.slab
		}
		d := &dirs[i*maxLv]
		n := uint64(1)
		if ns != nil {
			n = ns[e]
		}
		for {
			pp := int(d.head) + int(d.n)
			if pp >= stride {
				pp -= stride
			}
			slab[int(d.off)+pp] = bucket{start: t, end: t}
			d.n++
			c.total++
			if int(d.n) > capLv {
				// Most cascades are a single level-0→1 merge that propagates
				// no further (level 1 overflows only every ~capLv merges);
				// that case runs inline without touching slab/dirs pointers.
				nx := (*ehLevel)(nil)
				if int(c.nLv) >= 2 {
					nx = &dirs[i*maxLv+1]
				}
				if nx != nil && int(nx.n) < capLv {
					end := mergeOldest(d, nx, slab, stride)
					if c.oldLv == 0 {
						c.oldLv = 1
						c.oldEnd = end
					}
				} else {
					b.cascade(i, c, 0)
					maxLv, dirs, slab = b.maxLv, b.dirs, b.slab
					d = &dirs[i*maxLv]
				}
			}
			if n--; n == 0 {
				break
			}
		}
		b.noteCellMutation(i)
		if t >= winLen && c.oldEnd <= t-winLen {
			// Inline of expire's no-op fast path: only call when the oldest
			// bucket's end has actually left the window.
			b.expire(c, i)
		}
	}
}

// AddBatchRowOrdered applies one row of a validated batch in the grouped
// order named by order (indices into pos/ticks/ns, grouped by cell
// position): consecutive touches of the same cell reuse its hot header,
// directory and slab lines instead of random-walking the arena once per
// event. Grouping is semantics-preserving because cells are independent and
// the grouping keeps each cell's arrivals in batch order.
//
// The insert loop is AddN's body inlined the same way AddBatchRow's is (nil
// ns again means all-unit arrivals), with the cell header, directory pointer
// and level-0 existence check hoisted across each run of same-cell events.
// Version stamping and expiry run once per event, exactly where AddN runs
// them: bank versions ride inside delta cursors, so even their cadence is
// pinned by the golden wire vectors.
func (b *EHBank) AddBatchRowOrdered(base int, pos []int32, ticks []Tick, ns []uint64, order []int32) {
	stride := b.stride
	capLv := b.capPerLv
	winLen := b.cfg.Length
	cells := b.cells
	maxLv := b.maxLv
	dirs := b.dirs
	slab := b.slab
	kmax := len(order)
	for k := 0; k < kmax; {
		e := int(order[k])
		p := pos[e]
		i := base + int(p)
		c := &cells[i]
		if c.nLv == 0 {
			b.addLevel(i)
			maxLv, dirs, slab = b.maxLv, b.dirs, b.slab
		}
		d := &dirs[i*maxLv]
		for {
			t := ticks[e]
			if t < c.now {
				t = c.now // clamp slight out-of-order arrivals, as AddN does
			}
			c.now = t
			if !c.started || c.total == 0 {
				c.started = true
				c.oldEnd = t
				c.oldLv = 0
			}
			n := uint64(1)
			if ns != nil {
				n = ns[e]
			}
			for {
				pp := int(d.head) + int(d.n)
				if pp >= stride {
					pp -= stride
				}
				slab[int(d.off)+pp] = bucket{start: t, end: t}
				d.n++
				c.total++
				if int(d.n) > capLv {
					// Single-level fast path; see AddBatchRow.
					nx := (*ehLevel)(nil)
					if int(c.nLv) >= 2 {
						nx = &dirs[i*maxLv+1]
					}
					if nx != nil && int(nx.n) < capLv {
						end := mergeOldest(d, nx, slab, stride)
						if c.oldLv == 0 {
							c.oldLv = 1
							c.oldEnd = end
						}
					} else {
						b.cascade(i, c, 0)
						maxLv, dirs, slab = b.maxLv, b.dirs, b.slab
						d = &dirs[i*maxLv]
					}
				}
				if n--; n == 0 {
					break
				}
			}
			b.noteCellMutation(i)
			if t >= winLen && c.oldEnd <= t-winLen {
				b.expire(c, i)
			}
			k++
			if k == kmax {
				break
			}
			e = int(order[k])
			if pos[e] != p {
				break
			}
		}
	}
}

// mergeOldest pops the two oldest buckets of ring d and pushes their union
// onto ring nx, returning the union's end. Small enough to inline into the
// batch sweeps' single-level fast path.
func mergeOldest(d, nx *ehLevel, slab []bucket, stride int) Tick {
	p0 := int(d.head)
	p1 := p0 + 1
	if p1 >= stride {
		p1 -= stride
	}
	off := int(d.off)
	older := slab[off+p0]
	newer := slab[off+p1]
	h := p1 + 1
	if h >= stride {
		h -= stride
	}
	d.head = uint16(h)
	d.n -= 2
	pp := int(nx.head) + int(nx.n)
	if pp >= stride {
		pp -= stride
	}
	slab[int(nx.off)+pp] = bucket{start: older.start, end: newer.end}
	nx.n++
	return newer.end
}

// cascade merges the two oldest buckets of any size class exceeding its
// budget into one bucket of the next class, starting at level from.
//
// The loop fires roughly once per insert amortized, so it stays lean: the
// directory base is strength-reduced out of the level lookups and the
// next-level push is ring arithmetic inline, with pointers re-resolved only
// on the rare paths that may move the directory or the slab.
func (b *EHBank) cascade(i int, c *ehCell, from int) {
	db := i * b.maxLv
	stride := b.stride
	for lv := from; lv < int(c.nLv); lv++ {
		d := &b.dirs[db+lv]
		if int(d.n) <= b.capPerLv {
			break
		}
		if lv+1 == int(c.nLv) {
			b.addLevel(i) // may re-lay the directory out (growDirs)
			db = i * b.maxLv
			d = &b.dirs[db+lv]
		}
		nx := &b.dirs[db+lv+1]
		if int(nx.n) >= stride {
			// Full rings only occur while restoring corrupt encodings.
			b.ensureRoom(i, c, lv+1)
			db = i * b.maxLv
			d = &b.dirs[db+lv]
			nx = &b.dirs[db+lv+1]
		}
		end := mergeOldest(d, nx, b.slab, stride)
		if lv+1 > int(c.oldLv) {
			// The merge consumed the two globally oldest buckets (lv was the
			// oldest level) and their union, just pushed into the previously
			// empty level above, is the new globally oldest bucket.
			c.oldLv = int16(lv + 1)
			c.oldEnd = end
		}
	}
}

// ensureRoom guarantees level lv of cell i can absorb one push. Levels are
// full only while restoring corrupt encodings (normal cascades peak at
// exactly the ring capacity after their push); room is made the same way a
// cascade would, merging the two oldest buckets upward.
func (b *EHBank) ensureRoom(i int, c *ehCell, lv int) {
	if int(b.level(i, lv).n) < b.stride {
		return
	}
	if lv+1 == int(c.nLv) {
		b.addLevel(i)
	}
	b.ensureRoom(i, c, lv+1)
	d := b.level(i, lv)
	older := b.popFront(d)
	newer := b.popFront(d)
	b.pushBack(b.level(i, lv+1), bucket{start: older.start, end: newer.end})
}

// expire drops buckets of cell i whose newest arrival left the window,
// reporting whether any bucket was actually dropped. The cached
// (oldLv, oldEnd) pair short-circuits the common case — nothing to
// expire — without touching the level directory or the slab.
func (b *EHBank) expire(c *ehCell, i int) bool {
	if c.now < b.cfg.Length {
		return false
	}
	cut := c.now - b.cfg.Length // ticks ≤ cut are outside the window
	if c.oldEnd > cut {
		return false
	}
	popped := false
	for {
		lv := b.oldestLevel(i, c)
		if lv < 0 {
			c.oldLv = 0
			c.oldEnd = emptyOldEnd
			return popped
		}
		c.oldLv = int16(lv)
		d := b.level(i, lv)
		f := b.front(d)
		if f.end > cut {
			c.oldEnd = f.end
			return popped
		}
		b.popFront(d)
		c.total -= uint64(1) << uint(lv)
		popped = true
	}
}

// oldestLevel returns the highest non-empty level of cell i, which holds
// the globally oldest bucket, or -1 when the cell is empty. The cached
// oldLv bounds the scan: levels above it are always empty.
func (b *EHBank) oldestLevel(i int, c *ehCell) int {
	for lv := int(c.oldLv); lv >= 0; lv-- {
		if b.level(i, lv).n > 0 {
			return lv
		}
	}
	return -1
}

// Advance moves cell i's window to tick t, expiring old buckets.
func (b *EHBank) Advance(i int, t Tick) {
	c := &b.cells[i]
	if t > c.now {
		c.now = t
	}
	b.expire(c, i)
}

// AdvanceAll moves every cell's window to tick t.
func (b *EHBank) AdvanceAll(t Tick) {
	for i := range b.cells {
		b.Advance(i, t)
	}
}

// AdvanceAllNoting moves every cell's window to tick t like AdvanceAll and
// calls note(i) for each cell whose retained content the move actually
// changed (expiry dropped buckets). Delta receivers replaying a producer's
// clock use this to keep their changed-cell feed exact: an expired cell's
// estimate moves even though no new encoding for it was shipped.
func (b *EHBank) AdvanceAllNoting(t Tick, note func(int)) {
	for i := range b.cells {
		c := &b.cells[i]
		if t > c.now {
			c.now = t
		}
		if b.expire(c, i) {
			note(i)
		}
	}
}

// Now reports the latest tick observed by cell i.
func (b *EHBank) Now(i int) Tick { return b.cells[i].now }

// Total reports the exact sum of cell i's live bucket sizes.
func (b *EHBank) Total(i int) uint64 { return b.cells[i].total }

// EstimateSince estimates the number of arrivals in cell i with tick >
// since; the arithmetic matches EH.EstimateSince operation for operation.
func (b *EHBank) EstimateSince(i int, since Tick) float64 {
	c := &b.cells[i]
	if c.total == 0 {
		return 0
	}
	// Clamp the query to the window.
	if c.now >= b.cfg.Length {
		if ws := c.now - b.cfg.Length; since < ws {
			since = ws
		}
	}
	est := 0.0
	straddleResolved := false
	for lv := int(c.nLv) - 1; lv >= 0; lv-- {
		d := b.level(i, lv)
		idx := b.searchEndAfter(d, since)
		cnt := int(d.n) - idx
		if cnt == 0 {
			continue
		}
		size := float64(uint64(1) << uint(lv))
		if !straddleResolved {
			// The globally oldest bucket with end > since lives in the
			// highest level that has one; only it can straddle the boundary.
			straddleResolved = true
			if b.at(d, idx).start <= since {
				est += size / 2
				cnt--
			}
		}
		est += float64(cnt) * size
	}
	return est
}

// EstimateRange estimates arrivals in cell i within the last r ticks.
func (b *EHBank) EstimateRange(i int, r Tick) float64 {
	r = clampRange(r, b.cfg.Length)
	return b.EstimateSince(i, rangeToSince(b.cells[i].now, r))
}

// EstimateWindow estimates arrivals in cell i within the whole window.
func (b *EHBank) EstimateWindow(i int) float64 { return b.EstimateRange(i, b.cfg.Length) }

// NumBuckets reports the number of live buckets in cell i.
func (b *EHBank) NumBuckets(i int) int {
	c := &b.cells[i]
	n := 0
	for lv := 0; lv < int(c.nLv); lv++ {
		n += int(b.level(i, lv).n)
	}
	return n
}

// AppendBuckets appends cell i's live buckets, ordered oldest to newest, to
// dst and returns the extended slice.
func (b *EHBank) AppendBuckets(dst []Bucket, i int) []Bucket {
	c := &b.cells[i]
	for lv := int(c.nLv) - 1; lv >= 0; lv-- {
		d := b.level(i, lv)
		size := uint64(1) << uint(lv)
		for j := 0; j < int(d.n); j++ {
			bk := b.at(d, j)
			dst = append(dst, Bucket{Start: bk.start, End: bk.end, Size: size})
		}
	}
	return dst
}

// Buckets returns a snapshot of cell i's live buckets, oldest to newest.
func (b *EHBank) Buckets(i int) []Bucket {
	return b.AppendBuckets(make([]Bucket, 0, b.NumBuckets(i)), i)
}

// RestoreBucket appends a decoded bucket into cell i's size class directly,
// bypassing the cascade; callers feed buckets oldest to newest and finish
// with NormalizeRestored, mirroring the EH restore path. Inputs decoded from
// valid encodings never overflow a ring; a corrupt overfull class is repaired
// by cascading before the insert.
func (b *EHBank) RestoreBucket(i int, bk Bucket) {
	c := &b.cells[i]
	lv := 0
	for s := bk.Size; s > 1; s >>= 1 {
		lv++
	}
	for int(c.nLv) <= lv {
		b.addLevel(i)
	}
	b.ensureRoom(i, c, lv)
	b.pushBack(b.level(i, lv), bucket{start: bk.Start, end: bk.End})
	c.total += uint64(1) << uint(lv)
	if bk.End > c.now {
		c.now = bk.End
	}
	c.started = true
	b.noteCellMutation(i)
}

// NormalizeRestored re-checks cell i's class budgets after a restore;
// decoded histograms are already canonical, so for valid inputs this is a
// no-op walk that repairs corrupt inputs instead of violating invariants.
// It also rebuilds the expiry cache, which restores leave stale.
func (b *EHBank) NormalizeRestored(i int) {
	c := &b.cells[i]
	for lv := 0; lv < int(c.nLv); lv++ {
		if int(b.level(i, lv).n) > b.capPerLv {
			b.cascade(i, c, lv)
		}
	}
	c.oldLv = int16(int(c.nLv) - 1)
	if c.oldLv < 0 {
		c.oldLv = 0
	}
	if lv := b.oldestLevel(i, c); lv >= 0 {
		c.oldLv = int16(lv)
		c.oldEnd = b.front(b.level(i, lv)).end
	} else {
		c.oldLv = 0
		c.oldEnd = emptyOldEnd
	}
}

// MergeCell replays the order-preserving aggregation of Section 5.1
// (Theorem 4) into cell i: each input bucket list contributes ⌈s/2⌉ arrivals
// at its start tick and ⌊s/2⌋ at its end tick, replayed in global tick
// order, exactly as MergeEH does for the per-object engine. Cell i must be
// empty. now advances the cell's clock to the inputs' high-water tick.
func (b *EHBank) MergeCell(i int, now Tick, inputs [][]Bucket) {
	for _, ev := range replayEventsFromBuckets(inputs, splitHalfHalf) {
		b.AddN(i, ev.t, ev.n)
	}
	b.Advance(i, now)
}

// Clone returns an independent deep copy of the bank: three slab memcpys
// plus the fixed header, with no per-counter walking. This is what makes
// copy-on-read snapshots of a whole ECM-sketch cheap enough to take inside
// a stripe lock — cost is proportional to the arena footprint, not to the
// number of counters or buckets.
//
// The clone owns its slabs outright (no aliasing with the source), so
// source and clone may afterwards be used from different goroutines without
// coordination.
func (b *EHBank) Clone() *EHBank {
	c := &EHBank{
		cfg:      b.cfg,
		capPerLv: b.capPerLv,
		stride:   b.stride,
		maxLv:    b.maxLv,
		version:  b.version,
		cells:    make([]ehCell, len(b.cells)),
		dirs:     make([]ehLevel, len(b.dirs)),
		slab:     make([]bucket, len(b.slab)),
		vers:     make([]uint64, len(b.vers)),
	}
	copy(c.cells, b.cells)
	copy(c.dirs, b.dirs)
	copy(c.slab, b.slab)
	copy(c.vers, b.vers)
	return c
}

// MemoryBytes reports the heap footprint of the whole bank: the flat slabs,
// plus a small fixed header. Unlike the per-object engine there is no
// per-level allocator overhead to account for.
func (b *EHBank) MemoryBytes() int {
	const (
		cellBytes   = 32 // ehCell: 3×8-byte words + packed level indices/flag
		levelBytes  = 8  // ehLevel: off + head + n
		bucketBytes = 16 // two 8-byte ticks; size implied by the level
		verBytes    = 8  // per-cell last-modified version
	)
	return 96 + len(b.cells)*(cellBytes+verBytes) + len(b.dirs)*levelBytes + cap(b.slab)*bucketBytes
}

// CellUntouched reports whether cell i holds no retained content: no live
// buckets (never touched, or everything expired). Together with the cell
// clock this is the sparse-baseline elision predicate — an untouched cell at
// the sketch clock encodes byte-identically to a fresh cell advanced there,
// so a baseline need not ship it.
func (b *EHBank) CellUntouched(i int) bool {
	return b.cells[i].total == 0
}

// ResetCell empties cell i, keeping its carved level chunks for refills —
// the receiving half of a delta application replaces a changed cell by
// resetting it and decoding the shipped encoding into the empty cell.
func (b *EHBank) ResetCell(i int) {
	c := &b.cells[i]
	for lv := 0; lv < int(c.nLv); lv++ {
		d := b.level(i, lv)
		d.head, d.n = 0, 0
	}
	*c = ehCell{nLv: c.nLv}
	b.noteCellMutation(i)
}

// Reset empties every cell, keeping the configuration and retaining the
// arena's capacity for refills. Every cell counts as mutated: a delta cursor
// taken before a Reset must see all content re-shipped.
func (b *EHBank) Reset() {
	for i := range b.cells {
		b.cells[i] = ehCell{}
	}
	for i := range b.dirs {
		b.dirs[i] = ehLevel{}
	}
	b.slab = b.slab[:0]
	b.version++
	for i := range b.vers {
		b.vers[i] = b.version
	}
}
