package window

import (
	"bytes"
	"math/rand"
	"testing"
)

// The flat bank is a layout change, not an algorithm change: every test here
// drives an EHBank cell and a per-object EH with the same stream and demands
// bit-identical behaviour — estimates, bucket lists, encodings, merges.

// ehStream is one deterministic pseudo-random arrival stream.
type ehStream struct {
	t Tick
	n uint64
}

func randomStream(rng *rand.Rand, events int, maxGap, maxN int) []ehStream {
	s := make([]ehStream, events)
	var now Tick
	for i := range s {
		now += Tick(rng.Intn(maxGap + 1)) // gap 0 keeps same-tick bursts common
		s[i] = ehStream{t: now, n: uint64(rng.Intn(maxN) + 1)}
	}
	return s
}

func checkCellEqualsEH(t *testing.T, b *EHBank, i int, h *EH) {
	t.Helper()
	if got, want := b.Now(i), h.Now(); got != want {
		t.Fatalf("Now: bank %d, EH %d", got, want)
	}
	if got, want := b.Total(i), h.Total(); got != want {
		t.Fatalf("Total: bank %d, EH %d", got, want)
	}
	hb, bb := h.Buckets(), b.Buckets(i)
	if len(hb) != len(bb) {
		t.Fatalf("bucket count: bank %d, EH %d", len(bb), len(hb))
	}
	for j := range hb {
		if hb[j] != bb[j] {
			t.Fatalf("bucket %d: bank %+v, EH %+v", j, bb[j], hb[j])
		}
	}
	now := h.Now()
	for _, since := range []Tick{0, 1, now / 3, now / 2, now - 1, now} {
		if got, want := b.EstimateSince(i, since), h.EstimateSince(since); got != want {
			t.Fatalf("EstimateSince(%d): bank %v, EH %v", since, got, want)
		}
	}
	for _, r := range []Tick{0, 1, now / 2, now, now * 2} {
		if got, want := b.EstimateRange(i, r), h.EstimateRange(r); got != want {
			t.Fatalf("EstimateRange(%d): bank %v, EH %v", r, got, want)
		}
	}
	if got, want := b.EstimateWindow(i), h.EstimateWindow(); got != want {
		t.Fatalf("EstimateWindow: bank %v, EH %v", got, want)
	}
	if got, want := func() []byte { enc, _ := b.AppendMarshalCell(nil, i, nil); return enc }(), h.Marshal(); !bytes.Equal(got, want) {
		t.Fatalf("encodings differ: bank %d bytes, EH %d bytes", len(got), len(want))
	}
}

func TestBankMatchesEHRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []Config{
		{Length: 1 << 12, Epsilon: 0.05},
		{Length: 1 << 12, Epsilon: 0.2},
		{Length: 200, Epsilon: 0.5}, // tiny rings, heavy cascading and expiry
		{Length: 64, Epsilon: 0.01}, // wide rings, constant expiry
		{Length: 1 << 20, Epsilon: 0.1, Model: CountBased},
	} {
		for trial := 0; trial < 8; trial++ {
			b, err := NewEHBank(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			h, err := NewEH(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Cell 1 receives the stream; neighbours stay empty to catch
			// cross-cell bleed through the shared slabs.
			for _, ev := range randomStream(rng, 4000, 4, 3) {
				b.AddN(1, ev.t, ev.n)
				h.AddN(ev.t, ev.n)
			}
			checkCellEqualsEH(t, b, 1, h)
			for _, i := range []int{0, 2} {
				if b.Total(i) != 0 || b.NumBuckets(i) != 0 || b.EstimateWindow(i) != 0 {
					t.Fatalf("cfg %+v: untouched cell %d not empty", cfg, i)
				}
			}
		}
	}
}

func TestBankIndependentCells(t *testing.T) {
	cfg := Config{Length: 1 << 10, Epsilon: 0.1}
	const cells = 17
	b, err := NewEHBank(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*EH, cells)
	for i := range hs {
		if hs[i], err = NewEH(cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave independent streams across all cells, with different
	// densities so cells grow different level structures (forcing directory
	// growth for the busy ones while sparse ones stay at one level).
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 30000; step++ {
		i := rng.Intn(cells)
		t1 := Tick(step/10 + 1)
		n := uint64(i%3 + 1)
		b.AddN(i, t1, n)
		hs[i].AddN(t1, n)
	}
	for i := range hs {
		checkCellEqualsEH(t, b, i, hs[i])
	}
	// Advance far enough to expire everything, cell by cell.
	far := Tick(1 << 20)
	for i := range hs {
		b.Advance(i, far)
		hs[i].Advance(far)
		checkCellEqualsEH(t, b, i, hs[i])
		if b.Total(i) != 0 {
			t.Fatalf("cell %d not empty after expiry", i)
		}
	}
}

func TestBankAdvanceAllAndReset(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.2}
	b, err := NewEHBank(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for tk := Tick(1); tk <= 50; tk++ {
			b.Add(i, tk)
		}
	}
	b.AdvanceAll(120)
	for i := 0; i < 4; i++ {
		if got := b.Now(i); got != 120 {
			t.Fatalf("cell %d Now = %d after AdvanceAll", i, got)
		}
		// Ticks 1..20 fell out of the (20,120] window.
		if got := b.EstimateWindow(i); got < 25 || got > 35 {
			t.Fatalf("cell %d estimate %v after expiry, want ≈30", i, got)
		}
	}
	b.Reset()
	for i := 0; i < 4; i++ {
		if b.Total(i) != 0 || b.Now(i) != 0 || b.EstimateWindow(i) != 0 {
			t.Fatalf("cell %d not reset", i)
		}
	}
	// Refill after Reset reuses the retained arena; behaviour must match a
	// fresh histogram exactly.
	h, _ := NewEH(cfg)
	for tk := Tick(1); tk <= 80; tk++ {
		b.AddN(2, tk, 2)
		h.AddN(tk, 2)
	}
	checkCellEqualsEH(t, b, 2, h)
}

func TestBankUnmarshalCellRoundTrip(t *testing.T) {
	cfg := Config{Length: 1 << 12, Epsilon: 0.05}
	h, err := NewEH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, ev := range randomStream(rng, 5000, 3, 2) {
		h.AddN(ev.t, ev.n)
	}
	enc := h.Marshal()

	b, err := NewEHBank(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalCell(1, enc); err != nil {
		t.Fatalf("UnmarshalCell: %v", err)
	}
	checkCellEqualsEH(t, b, 1, h)

	// Mismatched configuration is rejected rather than silently adopted.
	other, err := NewEHBank(Config{Length: 1 << 11, Epsilon: 0.05}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.UnmarshalCell(0, enc); err == nil {
		t.Fatal("UnmarshalCell accepted an encoding with a different config")
	}
	// Truncated input errors out instead of panicking.
	if err := b.UnmarshalCell(0, enc[:len(enc)/2]); err == nil {
		t.Fatal("UnmarshalCell accepted truncated input")
	}
}

func TestBankMergeCellMatchesMergeEH(t *testing.T) {
	cfg := Config{Length: 1 << 11, Epsilon: 0.1, Model: TimeBased}
	rng := rand.New(rand.NewSource(9))
	a, _ := NewEH(cfg)
	c, _ := NewEH(cfg)
	for _, ev := range randomStream(rng, 3000, 2, 2) {
		a.AddN(ev.t, ev.n)
	}
	for _, ev := range randomStream(rng, 2000, 3, 3) {
		c.AddN(ev.t, ev.n)
	}
	want, err := MergeEH(cfg, a, c)
	if err != nil {
		t.Fatal(err)
	}
	now := a.Now()
	if c.Now() > now {
		now = c.Now()
	}
	b, err := NewEHBank(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.MergeCell(2, now, [][]Bucket{a.Buckets(), c.Buckets()})
	checkCellEqualsEH(t, b, 2, want)
}

func TestBankMemoryBytesAndLen(t *testing.T) {
	cfg := Config{Length: 1 << 12, Epsilon: 0.05}
	b, err := NewEHBank(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d", b.Len())
	}
	validated := cfg
	if err := validated.Validate(AlgoEH); err != nil {
		t.Fatal(err)
	}
	if b.Config() != validated {
		t.Fatalf("Config = %+v, want %+v", b.Config(), validated)
	}
	empty := b.MemoryBytes()
	if empty <= 0 {
		t.Fatalf("empty MemoryBytes = %d", empty)
	}
	for tk := Tick(1); tk <= 10000; tk++ {
		b.Add(int(tk)%8, tk)
	}
	if full := b.MemoryBytes(); full <= empty {
		t.Fatalf("MemoryBytes did not grow: empty %d, full %d", empty, full)
	}
}

func TestNewEHBankValidation(t *testing.T) {
	if _, err := NewEHBank(Config{Length: 0, Epsilon: 0.1}, 1); err == nil {
		t.Error("zero-length window accepted")
	}
	if _, err := NewEHBank(Config{Length: 10, Epsilon: 0.1}, 0); err == nil {
		t.Error("empty bank accepted")
	}
	if _, err := NewEHBank(Config{Length: 10, Epsilon: 2}, 1); err == nil {
		t.Error("invalid epsilon accepted")
	}
}
