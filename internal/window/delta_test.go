package window

import (
	"bytes"
	"testing"
)

// TestBankVersioning pins the change-tracking contract behind delta
// snapshots: arrivals bump the bank version and stamp their cell; clock
// movement (Advance, even one that expires buckets) does not; Reset marks
// every cell changed.
func TestBankVersioning(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.2}
	b, err := NewEHBank(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version() != 0 {
		t.Fatalf("fresh bank version %d", b.Version())
	}
	b.AddN(2, 10, 3)
	v1 := b.Version()
	if v1 == 0 || !b.CellChangedSince(2, 0) || b.CellChangedSince(1, 0) {
		t.Fatalf("AddN stamping wrong: version %d", v1)
	}
	// Advancing far enough to expire cell 2's content moves no versions:
	// expiry is the receiver's job, replayed deterministically by clock.
	b.AdvanceAll(500)
	if b.Total(2) != 0 {
		t.Fatal("expected expiry")
	}
	if b.Version() != v1 || b.CellChangedSince(2, v1) {
		t.Fatal("Advance must not bump versions")
	}
	b.Reset()
	for i := 0; i < 4; i++ {
		if !b.CellChangedSince(i, v1) {
			t.Fatalf("Reset did not mark cell %d changed", i)
		}
	}
}

// TestResetCellRestoresBitIdentical: resetting a cell and decoding another
// cell's encoding into it reproduces that encoding exactly — the receiver
// half of a cell-granular delta.
func TestResetCellRestoresBitIdentical(t *testing.T) {
	cfg := Config{Length: 1000, Epsilon: 0.1}
	b, err := NewEHBank(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		b.AddN(0, Tick(i+1), uint64(i%3+1))
		if i%2 == 0 {
			b.AddN(1, Tick(i+1), 1)
		}
	}
	var enc0 []byte
	var scratch []Bucket
	enc0, scratch = b.AppendMarshalCell(nil, 0, scratch)

	// Overwrite cell 1 with cell 0's state.
	b.ResetCell(1)
	if b.Total(1) != 0 || b.NumBuckets(1) != 0 {
		t.Fatal("ResetCell left content")
	}
	if err := b.UnmarshalCell(1, enc0); err != nil {
		t.Fatal(err)
	}
	enc1, _ := b.AppendMarshalCell(nil, 1, scratch)
	if !bytes.Equal(enc0, enc1) {
		t.Fatal("restored cell does not re-encode bit-identically")
	}
	// And the restored cell keeps working: arrivals and expiry behave.
	b.AddN(1, 2000, 1)
	if b.Total(1) == 0 {
		t.Fatal("restored cell rejected arrivals")
	}
}
