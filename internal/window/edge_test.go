package window

import (
	"math/rand"
	"testing"
)

// Edge-case coverage shared across the synopses.

func TestCountersAdvanceBeforeFirstAdd(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.1, Delta: 0.1}
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW, AlgoExact} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Advance(500)
		if got := c.EstimateWindow(); got != 0 {
			t.Errorf("%v: estimate after bare Advance = %v", algo, got)
		}
		c.Add(600)
		if got := c.EstimateWindow(); got != 1 {
			t.Errorf("%v: estimate = %v, want 1", algo, got)
		}
	}
}

func TestCountersAddNZero(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.1, Delta: 0.1}
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW, AlgoExact} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(10)
		c.AddN(200, 0) // advances the clock, expires the first arrival
		if got := c.EstimateWindow(); got != 0 {
			t.Errorf("%v: estimate = %v after AddN(..,0) expiry", algo, got)
		}
		if c.Now() != 200 {
			t.Errorf("%v: Now = %d, want 200", algo, c.Now())
		}
	}
}

func TestCountersTickZeroArrival(t *testing.T) {
	// Tick 0 is a legal arrival time; the window boundary arithmetic must
	// not underflow.
	cfg := Config{Length: 10, Epsilon: 0.1, Delta: 0.1}
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW, AlgoExact} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(0)
		if got := c.EstimateWindow(); got != 1 {
			t.Errorf("%v: estimate = %v, want 1", algo, got)
		}
		c.Advance(11)
		if got := c.EstimateWindow(); got != 0 {
			t.Errorf("%v: tick-0 arrival did not expire: %v", algo, got)
		}
	}
}

func TestCountersLargeTickJumps(t *testing.T) {
	// Sparse streams with giant gaps: everything between bursts expires.
	cfg := Config{Length: 1000, Epsilon: 0.1, Delta: 0.1, UpperBound: 10000}
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for burst := 0; burst < 5; burst++ {
			base := Tick(burst) * 1_000_000
			for i := Tick(0); i < 100; i++ {
				c.Add(base + i)
			}
		}
		got := c.EstimateWindow()
		if got < 80 || got > 130 {
			t.Errorf("%v: estimate = %v, want ≈100 (only the last burst lives)", algo, got)
		}
	}
}

func TestEHWorstCaseAdversarialBoundary(t *testing.T) {
	// Query boundaries placed exactly at every bucket edge: the half-bucket
	// correction must stay within ε at each.
	const eps = 0.1
	cfg := Config{Length: 100000, Epsilon: eps}
	h := mustEH(t, cfg)
	x := mustExact(t, cfg)
	rng := rand.New(rand.NewSource(15))
	var now Tick
	for i := 0; i < 30000; i++ {
		now += Tick(rng.Intn(3))
		h.Add(now)
		x.Add(now)
	}
	for _, b := range h.Buckets() {
		for _, edge := range []Tick{b.Start, b.End, b.Start - 1, b.End + 1} {
			got := h.EstimateSince(edge)
			want := float64(x.CountSince(edge))
			if abs64(got-want) > eps*want+0.5 {
				t.Fatalf("boundary %d: estimate %v, exact %v", edge, got, want)
			}
		}
	}
}

func TestEHMassiveAddN(t *testing.T) {
	h := mustEH(t, Config{Length: 1 << 30, Epsilon: 0.1})
	h.AddN(100, 1_000_000)
	if got := h.EstimateWindow(); got != 1_000_000 {
		t.Errorf("EstimateWindow = %v, want exactly 1e6 (single-tick mass)", got)
	}
	if nb := h.NumBuckets(); nb > 200 {
		t.Errorf("1e6 arrivals in %d buckets, want O(log n/ε)", nb)
	}
}

func TestDWUpperBoundViolationDegradesGracefully(t *testing.T) {
	// Feeding more arrivals per window than u(N,S) promised must not panic
	// or return nonsense (error may exceed ε — the contract was broken).
	cfg := Config{Length: 10000, Epsilon: 0.1, UpperBound: 100}
	w := mustDW(t, cfg)
	for i := Tick(1); i <= 5000; i++ {
		w.Add(i)
	}
	got := w.EstimateWindow()
	if got <= 0 || got > 10000 {
		t.Errorf("estimate %v implausible under bound violation", got)
	}
}

func TestRWSaltsDifferAcrossInstances(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.2, Delta: 0.2, Seed: 1}
	a := mustRW(t, cfg)
	b := mustRW(t, cfg)
	if a.salt == b.salt {
		t.Error("two RW instances share an identifier salt")
	}
}
