package window

import (
	"fmt"
	"math"
)

// Bucket is one exponential-histogram bucket: Size arrivals whose ticks fall
// in [Start, End]. Buckets are exposed so that order-preserving aggregation
// (and serialization) can replay their contents.
type Bucket struct {
	Start Tick
	End   Tick
	Size  uint64
}

// bucketDeque is a ring buffer of buckets ordered oldest (front) to newest
// (back). Per the paper's implementation notes (§7.1), each histogram level
// keeps its own deque, which gives random access for binary search and
// constant-time merges of the two oldest buckets.
type bucketDeque struct {
	buf  []bucket
	head int
	n    int
}

// bucket is the in-memory layout: the size is implied by the level (2^level),
// so only the boundaries are stored.
type bucket struct {
	start Tick
	end   Tick
}

func (d *bucketDeque) len() int { return d.n }

func (d *bucketDeque) at(i int) bucket {
	return d.buf[(d.head+i)%len(d.buf)]
}

func (d *bucketDeque) front() bucket { return d.buf[d.head] }

func (d *bucketDeque) pushBack(b bucket) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = b
	d.n++
}

func (d *bucketDeque) popFront() bucket {
	b := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return b
}

func (d *bucketDeque) grow() {
	nc := len(d.buf) * 2
	if nc == 0 {
		nc = 4
	}
	nb := make([]bucket, nc)
	for i := 0; i < d.n; i++ {
		nb[i] = d.at(i)
	}
	d.buf = nb
	d.head = 0
}

// searchEndAfter returns the index (from the front) of the oldest bucket with
// end > s, or d.n if none.
func (d *bucketDeque) searchEndAfter(s Tick) int {
	lo, hi := 0, d.n
	for lo < hi {
		mid := (lo + hi) / 2
		if d.at(mid).end > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// EH is an exponential histogram (Datar, Gionis, Indyk, Motwani) for the
// basic-counting problem over a sliding window. It maintains buckets of
// exponentially increasing sizes; at most k/2+2 buckets exist per size class,
// where k = ⌈1/ε⌉, which bounds the relative error of any suffix query by ε:
// the only uncertain contribution is the oldest, partially overlapping
// bucket, whose size is at most an ε fraction of the arrivals after it
// (invariant 1 of the paper).
//
// Unlike the textbook formulation, each bucket also records the tick of its
// oldest arrival. This costs one extra word per bucket and is what enables
// the order-preserving aggregation of Section 5.1 (Theorem 4); it also lets
// point queries skip the half-bucket correction when the query boundary
// falls in the gap between two buckets.
type EH struct {
	cfg      Config
	capPerLv int // merge threshold per size class: ⌈k/2⌉+2
	levels   []bucketDeque
	total    uint64 // sum of sizes of live buckets
	now      Tick
	started  bool
	first    Tick // tick of the earliest arrival still summarized
}

// NewEH constructs an exponential histogram with relative error cfg.Epsilon
// over a window of cfg.Length ticks.
func NewEH(cfg Config) (*EH, error) {
	if err := cfg.Validate(AlgoEH); err != nil {
		return nil, err
	}
	k := int(math.Ceil(1 / cfg.Epsilon))
	return &EH{
		cfg:      cfg,
		capPerLv: (k+1)/2 + 2,
	}, nil
}

// Config returns the configuration the histogram was built with.
func (h *EH) Config() Config { return h.cfg }

// Add registers one arrival at tick t.
func (h *EH) Add(t Tick) { h.AddN(t, 1) }

// AddN registers n simultaneous arrivals at tick t. The exponential
// histogram's canonical form requires power-of-two bucket sizes, so the n
// arrivals are inserted as n unit buckets; cascading merges keep the
// amortized cost per unit constant.
func (h *EH) AddN(t Tick, n uint64) {
	if n == 0 {
		h.Advance(t)
		return
	}
	if t == 0 {
		t = 1 // ticks are 1-based; tick 0 means "before the stream"
	}
	if t < h.now {
		t = h.now // clamp slight out-of-order arrivals
	}
	h.now = t
	if !h.started || h.total == 0 {
		h.first = t
		h.started = true
	}
	for i := uint64(0); i < n; i++ {
		h.insertUnit(t)
	}
	h.expire()
}

// Advance moves the window to tick t, expiring old buckets.
func (h *EH) Advance(t Tick) {
	if t > h.now {
		h.now = t
	}
	h.expire()
}

// Now reports the latest observed tick.
func (h *EH) Now() Tick { return h.now }

func (h *EH) insertUnit(t Tick) {
	if len(h.levels) == 0 {
		h.levels = append(h.levels, bucketDeque{})
	}
	h.levels[0].pushBack(bucket{start: t, end: t})
	h.total++
	// Cascade merges: whenever a size class exceeds its budget, merge its
	// two oldest buckets into one bucket of the next class.
	for lv := 0; lv < len(h.levels); lv++ {
		if h.levels[lv].len() <= h.capPerLv {
			break
		}
		older := h.levels[lv].popFront()
		newer := h.levels[lv].popFront()
		if lv+1 == len(h.levels) {
			h.levels = append(h.levels, bucketDeque{})
		}
		h.levels[lv+1].pushBack(bucket{start: older.start, end: newer.end})
	}
}

// expire drops buckets whose newest arrival left the window.
func (h *EH) expire() {
	if h.now < h.cfg.Length {
		return
	}
	cut := h.now - h.cfg.Length // ticks ≤ cut are outside the window
	for {
		lv := h.oldestLevel()
		if lv < 0 {
			return
		}
		b := h.levels[lv].front()
		if b.end > cut {
			return
		}
		h.levels[lv].popFront()
		h.total -= uint64(1) << uint(lv)
	}
}

// oldestLevel returns the highest non-empty level, which holds the globally
// oldest bucket, or -1 when the histogram is empty.
func (h *EH) oldestLevel() int {
	for lv := len(h.levels) - 1; lv >= 0; lv-- {
		if h.levels[lv].len() > 0 {
			return lv
		}
	}
	return -1
}

// EstimateSince estimates the number of arrivals with tick > since.
// Buckets fully inside the range are counted exactly; the oldest bucket
// overlapping the boundary contributes half its size.
func (h *EH) EstimateSince(since Tick) float64 {
	if h.total == 0 {
		return 0
	}
	// Clamp the query to the window.
	if h.now >= h.cfg.Length {
		if ws := h.now - h.cfg.Length; since < ws {
			since = ws
		}
	}
	est := 0.0
	straddleResolved := false
	for lv := len(h.levels) - 1; lv >= 0; lv-- {
		d := &h.levels[lv]
		idx := d.searchEndAfter(since)
		cnt := d.len() - idx
		if cnt == 0 {
			continue
		}
		size := float64(uint64(1) << uint(lv))
		if !straddleResolved {
			// The globally oldest bucket with end > since lives in the
			// highest level that has one; only it can straddle the boundary.
			straddleResolved = true
			if d.at(idx).start <= since {
				est += size / 2
				cnt--
			}
		}
		est += float64(cnt) * size
	}
	return est
}

// EstimateRange estimates arrivals within the last r ticks.
func (h *EH) EstimateRange(r Tick) float64 {
	r = clampRange(r, h.cfg.Length)
	return h.EstimateSince(rangeToSince(h.now, r))
}

// EstimateWindow estimates arrivals within the whole window.
func (h *EH) EstimateWindow() float64 { return h.EstimateRange(h.cfg.Length) }

// Buckets returns a snapshot of the live buckets ordered oldest to newest.
func (h *EH) Buckets() []Bucket {
	out := make([]Bucket, 0, h.numBuckets())
	for lv := len(h.levels) - 1; lv >= 0; lv-- {
		d := &h.levels[lv]
		size := uint64(1) << uint(lv)
		for i := 0; i < d.len(); i++ {
			b := d.at(i)
			out = append(out, Bucket{Start: b.start, End: b.end, Size: size})
		}
	}
	return out
}

func (h *EH) numBuckets() int {
	n := 0
	for i := range h.levels {
		n += h.levels[i].len()
	}
	return n
}

// NumBuckets reports the number of live buckets.
func (h *EH) NumBuckets() int { return h.numBuckets() }

// Total reports the exact sum of live bucket sizes. Note that the oldest
// bucket may partially precede the window, so Total can exceed the true
// window count by up to the oldest bucket's size.
func (h *EH) Total() uint64 { return h.total }

// MemoryBytes reports the heap footprint of the histogram.
func (h *EH) MemoryBytes() int {
	const bucketBytes = 16 // two 8-byte ticks; size is implied by the level
	n := 64                // struct header
	for i := range h.levels {
		n += 32 + cap(h.levels[i].buf)*bucketBytes
	}
	return n
}

// Reset empties the histogram, keeping its configuration.
func (h *EH) Reset() {
	h.levels = nil
	h.total = 0
	h.now = 0
	h.started = false
	h.first = 0
}

// checkInvariant verifies invariant 1 of the paper for every bucket:
// |b_j| ≤ 2ε(1 + Σ_{i<j} |b_i|), with bucket 1 the most recent. It returns
// the first violation found, and is used by tests only.
func (h *EH) checkInvariant() error {
	bs := h.Buckets() // oldest → newest
	// Walk from the newest backwards accumulating the "more recent" sum.
	var recent uint64
	for i := len(bs) - 1; i >= 0; i-- {
		b := bs[i]
		// Allow the standard slack of one size class: the canonical EH bound
		// is |b| ≤ 2ε(1+recent)+1 after rounding k to an integer.
		limit := 2*h.cfg.Epsilon*float64(1+recent) + 1
		if float64(b.Size) > limit+1e-9 {
			return fmt.Errorf("window: EH invariant violated: bucket size %d > %.3f (recent=%d)", b.Size, limit, recent)
		}
		recent += b.Size
	}
	return nil
}
