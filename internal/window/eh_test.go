package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEH(t *testing.T, cfg Config) *EH {
	t.Helper()
	h, err := NewEH(cfg)
	if err != nil {
		t.Fatalf("NewEH: %v", err)
	}
	return h
}

func mustExact(t *testing.T, cfg Config) *Exact {
	t.Helper()
	x, err := NewExact(cfg)
	if err != nil {
		t.Fatalf("NewExact: %v", err)
	}
	return x
}

func TestEHConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero length", Config{Epsilon: 0.1}},
		{"zero epsilon", Config{Length: 100}},
		{"epsilon one", Config{Length: 100, Epsilon: 1}},
		{"negative epsilon", Config{Length: 100, Epsilon: -0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEH(tc.cfg); err == nil {
				t.Fatalf("NewEH(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
}

func TestEHEmpty(t *testing.T) {
	h := mustEH(t, Config{Length: 100, Epsilon: 0.1})
	if got := h.EstimateWindow(); got != 0 {
		t.Errorf("empty EstimateWindow = %v, want 0", got)
	}
	if got := h.EstimateSince(50); got != 0 {
		t.Errorf("empty EstimateSince = %v, want 0", got)
	}
	if h.NumBuckets() != 0 {
		t.Errorf("empty NumBuckets = %d, want 0", h.NumBuckets())
	}
}

func TestEHSingleArrival(t *testing.T) {
	h := mustEH(t, Config{Length: 100, Epsilon: 0.1})
	h.Add(10)
	if got := h.EstimateWindow(); got != 1 {
		t.Errorf("EstimateWindow = %v, want 1", got)
	}
	if got := h.EstimateSince(10); got != 0 {
		t.Errorf("EstimateSince(10) = %v, want 0 (range is exclusive of since)", got)
	}
	if got := h.EstimateSince(9); got != 1 {
		t.Errorf("EstimateSince(9) = %v, want 1", got)
	}
}

func TestEHExpiry(t *testing.T) {
	h := mustEH(t, Config{Length: 10, Epsilon: 0.1})
	h.Add(1)
	h.Add(2)
	h.Advance(12)
	// Window covers (2, 12]: the arrival at 1 is expired, the arrival at 2
	// is exactly at the boundary and also out.
	if got := h.EstimateWindow(); got != 0 {
		t.Errorf("EstimateWindow after expiry = %v, want 0", got)
	}
	h.Add(13)
	if got := h.EstimateWindow(); got != 1 {
		t.Errorf("EstimateWindow = %v, want 1", got)
	}
}

func TestEHExactWhenSmall(t *testing.T) {
	// With fewer arrivals than one size class can hold, every estimate is
	// exact regardless of the boundary.
	h := mustEH(t, Config{Length: 1000, Epsilon: 0.2})
	for i := Tick(1); i <= 5; i++ {
		h.Add(i * 10)
	}
	for since := Tick(0); since <= 60; since += 5 {
		want := 0.0
		for i := Tick(1); i <= 5; i++ {
			if i*10 > since {
				want++
			}
		}
		if got := h.EstimateSince(since); got != want {
			t.Errorf("EstimateSince(%d) = %v, want %v", since, got, want)
		}
	}
}

func TestEHRelativeErrorBound(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		rng := rand.New(rand.NewSource(42))
		cfg := Config{Length: 5000, Epsilon: eps}
		h := mustEH(t, cfg)
		x := mustExact(t, cfg)
		var now Tick
		for i := 0; i < 20000; i++ {
			now += Tick(rng.Intn(3))
			h.Add(now)
			x.Add(now)
			if i%97 == 0 {
				checkSuffixQueries(t, "EH", h, x, eps, now, rng)
			}
		}
	}
}

// checkSuffixQueries compares the synopsis estimate against the exact count
// for a set of random suffix ranges and the full window.
func checkSuffixQueries(t *testing.T, name string, c Counter, x *Exact, eps float64, now Tick, rng *rand.Rand) {
	t.Helper()
	n := x.cfg.Length
	ranges := []Tick{n, n / 2, n / 4, 1 + Tick(rng.Intn(int(n)))}
	for _, r := range ranges {
		got := c.EstimateRange(r)
		want := float64(x.CountRange(r))
		if want == 0 {
			continue
		}
		if diff := abs64(got - want); diff > eps*want+0.5 {
			t.Fatalf("%s ε=%v: EstimateRange(%d)=%v, exact=%v, |err|=%v > ε·n=%v (now=%d)",
				name, eps, r, got, want, diff, eps*want, now)
		}
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestEHInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := mustEH(t, Config{Length: 2000, Epsilon: 0.1})
	var now Tick
	for i := 0; i < 5000; i++ {
		now += Tick(rng.Intn(2))
		h.AddN(now, uint64(1+rng.Intn(3)))
		if i%211 == 0 {
			if err := h.checkInvariant(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestEHAddNMatchesRepeatedAdd(t *testing.T) {
	cfg := Config{Length: 500, Epsilon: 0.1}
	a := mustEH(t, cfg)
	b := mustEH(t, cfg)
	for i := Tick(1); i <= 100; i++ {
		a.AddN(i, 3)
		for j := 0; j < 3; j++ {
			b.Add(i)
		}
	}
	if ea, eb := a.EstimateWindow(), b.EstimateWindow(); ea != eb {
		t.Errorf("AddN total %v != repeated Add total %v", ea, eb)
	}
}

func TestEHOutOfOrderClamped(t *testing.T) {
	h := mustEH(t, Config{Length: 100, Epsilon: 0.1})
	h.Add(50)
	h.Add(40) // clamped to 50
	if got := h.Now(); got != 50 {
		t.Errorf("Now = %d, want 50", got)
	}
	if got := h.EstimateSince(45); got != 2 {
		t.Errorf("EstimateSince(45) = %v, want 2 (out-of-order arrival clamped forward)", got)
	}
}

func TestEHReset(t *testing.T) {
	h := mustEH(t, Config{Length: 100, Epsilon: 0.1})
	for i := Tick(1); i < 50; i++ {
		h.Add(i)
	}
	h.Reset()
	if h.EstimateWindow() != 0 || h.NumBuckets() != 0 || h.Now() != 0 {
		t.Errorf("Reset left state: window=%v buckets=%d now=%d", h.EstimateWindow(), h.NumBuckets(), h.Now())
	}
	h.Add(5)
	if got := h.EstimateWindow(); got != 1 {
		t.Errorf("EstimateWindow after reset+add = %v, want 1", got)
	}
}

func TestEHMemoryGrowsSublinearly(t *testing.T) {
	h := mustEH(t, Config{Length: 1 << 20, Epsilon: 0.1})
	for i := Tick(1); i <= 1<<16; i++ {
		h.Add(i)
	}
	// 2^16 arrivals summarized in O(log(n)/ε) buckets.
	if nb := h.NumBuckets(); nb > 200 {
		t.Errorf("NumBuckets = %d for 65536 arrivals, want O(log n / eps) ≈ ≤200", nb)
	}
	if mb := h.MemoryBytes(); mb > 1<<14 {
		t.Errorf("MemoryBytes = %d, want well under 16KiB", mb)
	}
}

func TestEHBucketsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := mustEH(t, Config{Length: 10000, Epsilon: 0.1})
	var now Tick
	for i := 0; i < 3000; i++ {
		now += Tick(rng.Intn(3))
		h.Add(now)
	}
	bs := h.Buckets()
	for i := 1; i < len(bs); i++ {
		if bs[i-1].End > bs[i].Start {
			t.Fatalf("buckets overlap: [%d,%d] then [%d,%d]", bs[i-1].Start, bs[i-1].End, bs[i].Start, bs[i].End)
		}
		if bs[i-1].Size < bs[i].Size {
			t.Fatalf("bucket sizes increase with recency: %d then %d", bs[i-1].Size, bs[i].Size)
		}
	}
	var total uint64
	for _, b := range bs {
		total += b.Size
	}
	if total != h.Total() {
		t.Errorf("bucket sizes sum to %d, Total() = %d", total, h.Total())
	}
}

// TestEHQuickSuffixAccuracy is a property test: for arbitrary arrival
// patterns, every suffix estimate is within ε of the exact count.
func TestEHQuickSuffixAccuracy(t *testing.T) {
	const eps = 0.15
	prop := func(gaps []uint8, queryAt uint16) bool {
		cfg := Config{Length: 300, Epsilon: eps}
		h, _ := NewEH(cfg)
		x, _ := NewExact(cfg)
		var now Tick
		for _, g := range gaps {
			now += Tick(g % 5)
			h.Add(now)
			x.Add(now)
		}
		since := Tick(queryAt)
		got := h.EstimateSince(since)
		want := float64(x.CountSince(since))
		return abs64(got-want) <= eps*want+0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEHCountBasedModel(t *testing.T) {
	// Count-based windows: ticks are arrival sequence numbers. Window of the
	// last 100 arrivals; each counter-relevant arrival carries the global
	// arrival index.
	cfg := Config{Model: CountBased, Length: 100, Epsilon: 0.1}
	h := mustEH(t, cfg)
	x := mustExact(t, cfg)
	for seq := Tick(1); seq <= 1000; seq++ {
		if seq%3 == 0 { // only every third global arrival hits this counter
			h.Add(seq)
			x.Add(seq)
		} else {
			h.Advance(seq)
			x.Advance(seq)
		}
	}
	got := h.EstimateWindow()
	want := float64(x.CountRange(100))
	if abs64(got-want) > 0.1*want+0.5 {
		t.Errorf("count-based EstimateWindow = %v, exact = %v", got, want)
	}
}
